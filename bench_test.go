package flare

// One benchmark per table and figure in the paper's evaluation, plus
// micro-benchmarks and ablations of the core design choices. The
// table/figure benchmarks run the full experiment pipeline at Quick
// scale (shortened durations, 3 seeded runs per point — the shapes match
// the paper; cmd/flarebench -scale full reproduces the paper-scale
// outputs). Headline numbers are reported as benchmark metrics.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/benchmarks"
	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/experiments"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/oneapi"
	"github.com/flare-sim/flare/internal/sim"
)

// benchScale trims the experiments to benchmark-friendly durations.
func benchScale() experiments.Scale {
	return experiments.Scale{DurationFactor: 0.05, Runs: 2}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 && len(rep.Series) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

func BenchmarkTable1StaticTestbed(b *testing.B)   { runExperiment(b, "table1") }
func BenchmarkTable2DynamicTestbed(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkFig4StaticTimeseries(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig5DynamicTimeseries(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6StaticCDF(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7MobileCDF(b *testing.B)         { runExperiment(b, "fig7") }
func BenchmarkFig8Relaxation(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig9SolverScaling(b *testing.B)     { runExperiment(b, "fig9") }
func BenchmarkFig10Coexistence(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11AlphaSweep(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkFig12DeltaSweep(b *testing.B)       { runExperiment(b, "fig12") }

// --- Core solver micro-benchmarks (the Figure 9 measurement, isolated).

func solverProblem(nFlows int, ladder has.Ladder) *core.Problem {
	rng := sim.NewRNG(1)
	p := &core.Problem{
		Flows:        make([]core.VideoFlow, nFlows),
		NumDataFlows: 4,
		Alpha:        1,
		TotalRBs:     50_000,
		BAISeconds:   1,
	}
	for u := range p.Flows {
		p.Flows[u] = core.VideoFlow{
			ID:         u,
			Ladder:     ladder,
			Beta:       10,
			ThetaBps:   0.2e6,
			PrevLevel:  rng.Intn(ladder.Len()+1) - 1,
			RBsPerByte: 1 / (5 + rng.Float64()*30),
		}
	}
	return p
}

func benchSolver(b *testing.B, nFlows int, relaxed bool) {
	b.Helper()
	p := solverProblem(nFlows, has.FineLadder())
	exact := core.NewExactSolver()
	relax := core.NewRelaxedSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if relaxed {
			_, err = relax.Solve(p)
		} else {
			_, err = exact.Solve(p)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSolver8(b *testing.B)     { benchSolver(b, 8, false) }
func BenchmarkExactSolver32(b *testing.B)    { benchSolver(b, 32, false) }
func BenchmarkExactSolver128(b *testing.B)   { benchSolver(b, 128, false) }
func BenchmarkRelaxedSolver8(b *testing.B)   { benchSolver(b, 8, true) }
func BenchmarkRelaxedSolver32(b *testing.B)  { benchSolver(b, 32, true) }
func BenchmarkRelaxedSolver128(b *testing.B) { benchSolver(b, 128, true) }

// --- Radio substrate micro-benchmarks.

func benchScheduler(b *testing.B, sched lte.Scheduler, nFlows int) {
	b.Helper()
	enb := lte.NewENodeB(lte.NewUniformStaticChannel(nFlows, 12), sched)
	bearers := make([]*lte.Bearer, nFlows)
	for i := range bearers {
		cls := lte.ClassData
		gbr := 0.0
		if i%2 == 0 {
			cls = lte.ClassVideo
			gbr = 1e6
		}
		bearers[i] = &lte.Bearer{ID: i, UE: i, Class: cls, GBRBits: gbr}
		if _, err := enb.AddBearer(bearers[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, br := range bearers {
			if br.Backlog() < 10_000 {
				br.Enqueue(100_000)
			}
		}
		enb.RunTTI(int64(i))
	}
}

func BenchmarkSchedulerPF8(b *testing.B)       { benchScheduler(b, lte.PFScheduler{}, 8) }
func BenchmarkSchedulerPF64(b *testing.B)      { benchScheduler(b, lte.PFScheduler{}, 64) }
func BenchmarkSchedulerTwoPhase8(b *testing.B) { benchScheduler(b, lte.TwoPhaseGBRScheduler{}, 8) }
func BenchmarkSchedulerPSS8(b *testing.B)      { benchScheduler(b, lte.PrioritySetScheduler{}, 8) }

// --- End-to-end cell simulation throughput (simulated seconds per
// wall second is the figure of merit: ns/op divided by 60 virtual s).

func benchCell(b *testing.B, scheme cellsim.Scheme) {
	b.Helper()
	cfg := cellsim.DefaultConfig(scheme)
	cfg.Duration = 60 * time.Second
	cfg.NumVideo = 8
	cfg.SegmentDuration = 2 * time.Second
	cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: 12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := cellsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCellSimFLARE(b *testing.B)   { benchCell(b, cellsim.SchemeFLARE) }
func BenchmarkCellSimFESTIVE(b *testing.B) { benchCell(b, cellsim.SchemeFESTIVE) }
func BenchmarkCellSimAVIS(b *testing.B)    { benchCell(b, cellsim.SchemeAVIS) }

// BenchmarkEngineTick measures the engine's raw TTI loop through the
// driver seam: a 16-flow FLARE cell over one simulated minute (60 000
// TTIs plus control intervals per iteration). This is the hot path the
// scheme-driver refactor must not tax — compare against
// BenchmarkCellSimFLARE history when touching the engine or driver
// interfaces.
func BenchmarkEngineTick(b *testing.B) {
	// The workload lives in internal/benchmarks so flarebench -json and
	// the CI regression gate measure exactly this benchmark.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cellsim.Run(benchmarks.EngineTickConfig(uint64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchmarks.EngineSimSeconds/float64(b.Elapsed().Seconds()/float64(b.N)), "simsec/sec")
}

// BenchmarkEngineTickRecording runs the same canonical workload with
// the telemetry flight recorder enabled (ring buffer only, no
// streaming sink): every BAI solve, clamp, install, delivery, and
// stall is recorded. The gap against BenchmarkEngineTick documents the
// recording-enabled overhead, which must stay small (<15% simsec/sec)
// — the budget that makes always-on recording viable in tests and
// debugging runs. The disabled path costs nothing by construction
// (nil recorder, zero allocations; pinned in internal/obs tests).
func BenchmarkEngineTickRecording(b *testing.B) {
	rec := obs.New(obs.Options{RingSize: 4096})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchmarks.EngineTickConfig(uint64(i + 1))
		cfg.Obs = rec
		if _, err := cellsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	if rec.Metrics().Events.Load() == 0 {
		b.Fatal("recording benchmark recorded no events")
	}
	b.ReportMetric(benchmarks.EngineSimSeconds/float64(b.Elapsed().Seconds()/float64(b.N)), "simsec/sec")
	b.ReportMetric(float64(rec.Metrics().Events.Load())/float64(b.N), "events/op")
}

// BenchmarkMixedCell measures the mixed-scheme path: two driver groups
// (FLARE + FESTIVE) sharing one cell, exercising per-group control
// ticks, the two-phase scheduler, and per-scheme result attribution.
func BenchmarkMixedCell(b *testing.B) {
	cfg := cellsim.DefaultConfig(cellsim.SchemeFLARE)
	cfg.Duration = 60 * time.Second
	cfg.NumVideo = 0
	cfg.VideoGroups = []cellsim.FlowGroup{
		{Scheme: cellsim.SchemeFLARE, Count: 4},
		{Scheme: cellsim.SchemeFESTIVE, Count: 4},
	}
	cfg.SegmentDuration = 2 * time.Second
	cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: 12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := cellsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ClientsByScheme(cellsim.SchemeFLARE)) != 4 ||
			len(res.ClientsByScheme(cellsim.SchemeFESTIVE)) != 4 {
			b.Fatal("mixed cell lost a group")
		}
	}
}

// --- Multi-cell scaling (the BENCH_multicell.json workload): n
// independent FLARE cells over a shared OneAPI server, run through the
// inter-cell worker pool. The figure of merit is aggregate simulated
// seconds per wall second (cells x 15 simsec per op). workers=1 pins
// the serial baseline the parallel points are compared against.

func benchMultiCell(b *testing.B, cells, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		server := oneapi.NewServer(core.DefaultConfig(), nil)
		cfgs := benchmarks.MultiCellConfigs(cells, uint64(i*cells+1))
		res, err := cellsim.RunMultiConfig(context.Background(),
			cellsim.MultiConfig{Workers: workers}, server, cfgs...)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != cells {
			b.Fatalf("%d cells, want %d", len(res.Cells), cells)
		}
	}
	agg := float64(cells) * benchmarks.MultiCellSimSeconds
	b.ReportMetric(agg/(b.Elapsed().Seconds()/float64(b.N)), "simsec/sec")
}

func BenchmarkMultiCell(b *testing.B) {
	for _, cells := range benchmarks.MultiCellCounts() {
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			benchMultiCell(b, cells, 0) // 0 = GOMAXPROCS workers
		})
	}
}

// BenchmarkMultiCellSerial16 is the workers=1 baseline for the 16-cell
// point — the denominator of the scaling claim.
func BenchmarkMultiCellSerial16(b *testing.B) { benchMultiCell(b, 16, 1) }

// --- Ablation: Algorithm 1's streak gate on vs off (delta 4 vs 0),
// reported via the gate's direct cost.

func BenchmarkGateApply(b *testing.B) {
	g := core.NewGate(4)
	for i := 0; i < b.N; i++ {
		g.Apply(i%16, 2, 3)
	}
}

func BenchmarkExtCoexistence(b *testing.B)   { runExperiment(b, "ext-coexist") }
func BenchmarkExtABRComparison(b *testing.B) { runExperiment(b, "ext-abr") }
func BenchmarkExtFaults(b *testing.B)        { runExperiment(b, "ext-faults") }
func BenchmarkExtSaturation(b *testing.B)    { runExperiment(b, "ext-saturation") }
