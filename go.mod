module github.com/flare-sim/flare

go 1.22
