// Package flare is a from-scratch reproduction of "FLARE: Coordinated
// Rate Adaptation for HTTP Adaptive Streaming in Cellular Networks"
// (ICDCS 2017): a fog-style HAS system in which a OneAPI network server
// and client-side player plugins jointly choose video bitrates for every
// flow in an LTE cell.
//
// The package is a facade over the implementation packages:
//
//   - internal/core — the FLARE bitrate optimisation (Eq. 2-4), the exact
//     and continuous-relaxation solvers, Algorithm 1, and the per-cell
//     controller;
//   - internal/lte, internal/transport, internal/has — the radio, TCP,
//     and streaming substrates;
//   - internal/abr, internal/avis — the FESTIVE, GOOGLE, and AVIS
//     baselines the paper compares against;
//   - internal/oneapi — the client/network coordination overlay (both
//     in-process and JSON-over-HTTP);
//   - internal/cellsim — the scenario runner tying everything together;
//   - internal/experiments — one reproducible experiment per table and
//     figure in the paper's evaluation;
//   - internal/testbed — the software femtocell used by the examples.
//
// Quick start:
//
//	cfg := flare.DefaultScenario(flare.SchemeFLARE)
//	cfg.Duration = 2 * time.Minute
//	res, err := flare.RunScenario(cfg)
//	if err != nil { ... }
//	fmt.Println(res.MeanClientRate(), res.MeanChanges())
package flare

import (
	"net/http"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/experiments"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/metrics"
	"github.com/flare-sim/flare/internal/oneapi"
)

// Scenario configuration and execution (see internal/cellsim).
type (
	// Scenario describes one simulated cell: flow populations, channel
	// model, scheme under test, and all algorithm parameters.
	Scenario = cellsim.Config
	// ChannelSpec selects and parameterises the link model.
	ChannelSpec = cellsim.ChannelSpec
	// Scheme names the rate-adaptation system under test.
	Scheme = cellsim.Scheme
	// SchemeGroup assigns a block of a cell's video clients to one
	// scheme's driver (mixed-scheme cells via Scenario.VideoGroups).
	SchemeGroup = cellsim.FlowGroup
	// Result is a completed run's per-flow outcomes and series.
	Result = cellsim.Result
	// ClientResult is one video client's outcome.
	ClientResult = cellsim.ClientResult
	// DataResult is one data flow's outcome.
	DataResult = cellsim.DataResult
)

// The rate-adaptation systems the paper evaluates, plus two extension
// baselines from the client-side literature it cites.
const (
	SchemeFLARE   = cellsim.SchemeFLARE
	SchemeFESTIVE = cellsim.SchemeFESTIVE
	SchemeGOOGLE  = cellsim.SchemeGOOGLE
	SchemeAVIS    = cellsim.SchemeAVIS
	SchemeBBA     = cellsim.SchemeBBA
	SchemeMPC     = cellsim.SchemeMPC
)

// Channel model kinds.
const (
	ChannelStatic   = cellsim.ChannelStatic
	ChannelCyclic   = cellsim.ChannelCyclic
	ChannelMobility = cellsim.ChannelMobility
	ChannelTrace    = cellsim.ChannelTrace
)

// DefaultScenario returns the paper's Table III/IV baseline scenario for
// the given scheme: 8 video clients, 10 s segments, the simulation
// ladder, and default algorithm parameters.
func DefaultScenario(scheme Scheme) Scenario {
	return cellsim.DefaultConfig(scheme)
}

// RunScenario executes a scenario deterministically (the Seed field
// fixes every random stream) and returns the collected metrics.
func RunScenario(cfg Scenario) (*Result, error) {
	return cellsim.Run(cfg)
}

// Bitrate ladders (see internal/has).
type Ladder = has.Ladder

// Ladder constructors matching the paper's encodings.
var (
	// NewLadderKbps builds a ladder from Kbps values.
	NewLadderKbps = has.NewLadderKbps
	// TestbedLadder is the femtocell testbed's 8-level encoding set.
	TestbedLadder = has.TestbedLadder
	// SimLadder is the Table III simulation ladder.
	SimLadder = has.SimLadder
	// FineLadder is the dense 100..1200 Kbps ladder of Figures 8-10.
	FineLadder = has.FineLadder
)

// FLARE controller (see internal/core) — for embedding the paper's
// optimiser in other systems.
type (
	// ControllerConfig parameterises the FLARE controller.
	ControllerConfig = core.Config
	// Controller runs the per-cell bitrate optimisation once per BAI.
	Controller = core.Controller
	// Preferences are optional client-side hints (bitrate caps etc).
	Preferences = core.Preferences
	// FlowStats is the per-flow eNodeB accounting for one BAI.
	FlowStats = core.FlowStats
	// Assignment is one flow's per-BAI bitrate decision.
	Assignment = core.Assignment
)

// NewController builds a FLARE controller.
func NewController(cfg ControllerConfig) *Controller {
	return core.NewController(cfg)
}

// DefaultControllerConfig returns the paper's Table IV parameters.
func DefaultControllerConfig() ControllerConfig {
	return core.DefaultConfig()
}

// OneAPI coordination overlay (see internal/oneapi).
type (
	// OneAPIServer coordinates plugins, PCRF/PCEF, and controllers.
	OneAPIServer = oneapi.Server
	// OneAPIClient is the plugin-side HTTP client for one video flow.
	OneAPIClient = oneapi.Client
)

// NewOneAPIServer builds a OneAPI server whose per-cell controllers use
// cfg.
func NewOneAPIServer(cfg ControllerConfig) *OneAPIServer {
	return oneapi.NewServer(cfg, nil)
}

// OneAPIHandler exposes a OneAPI server over JSON/HTTP in the shape of
// the OMA RESTful Network APIs.
func OneAPIHandler(s *OneAPIServer) http.Handler {
	return oneapi.Handler(s)
}

// NewOneAPIClient creates a plugin client for one flow against a OneAPI
// server base URL.
func NewOneAPIClient(baseURL string, cellID, flowID int, httpc *http.Client) *OneAPIClient {
	return oneapi.NewClient(baseURL, cellID, flowID, httpc)
}

// Experiments (see internal/experiments) — the paper's tables & figures.
type (
	// Experiment is one reproducible paper artefact.
	Experiment = experiments.Experiment
	// ExperimentReport is an experiment's rendered outcome.
	ExperimentReport = experiments.Report
	// ExperimentScale shrinks durations/run counts for quick runs.
	ExperimentScale = experiments.Scale
)

// Experiment registry and scales.
var (
	// AllExperiments returns every table/figure experiment.
	AllExperiments = experiments.All
	// ExperimentByID looks an experiment up ("table1", "fig6", ...).
	ExperimentByID = experiments.ByID
	// FullScale reproduces the paper's durations and 20 runs per point.
	FullScale = experiments.Full
	// QuickScale is sized for tests and benchmarks.
	QuickScale = experiments.Quick
)

// Metrics helpers re-exported for downstream analysis.
var (
	// JainIndex computes Jain's fairness index.
	JainIndex = metrics.JainIndex
	// HarmonicMean computes the harmonic mean (zeros skipped).
	HarmonicMean = metrics.HarmonicMean
)

// MultiCellResult holds per-cell outcomes of a shared-server run.
type MultiCellResult = cellsim.MultiResult

// RunMultiCell executes several cells concurrently, any scheme per cell.
// FLARE cells share the given OneAPI server — the paper's "a single
// OneAPI server can manage multiple BSs" deployment; other schemes
// ignore it (and it may be nil when no cell runs FLARE).
func RunMultiCell(server *OneAPIServer, cells ...Scenario) (*MultiCellResult, error) {
	return cellsim.RunMulti(server, cells...)
}
