package flare_test

import (
	"fmt"
	"time"

	flare "github.com/flare-sim/flare"
)

// ExampleRunScenario runs a small deterministic FLARE cell and prints
// its headline metrics.
func ExampleRunScenario() {
	cfg := flare.DefaultScenario(flare.SchemeFLARE)
	cfg.Seed = 7
	cfg.Duration = 60 * time.Second
	cfg.NumVideo = 2
	cfg.SegmentDuration = 2 * time.Second
	cfg.Ladder = flare.TestbedLadder()
	cfg.Channel = flare.ChannelSpec{Kind: flare.ChannelStatic, StaticITbs: 8}

	res, err := flare.RunScenario(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("clients: %d\n", len(res.Clients))
	fmt.Printf("stalls: %.0f s\n", res.TotalStallSeconds())
	fmt.Printf("fair: %v\n", res.JainOfTputs() > 0.8)
	// Output:
	// clients: 2
	// stalls: 0 s
	// fair: true
}

// ExampleController drives the paper's bitrate optimiser directly: one
// registered flow, three bitrate assignment intervals.
func ExampleController() {
	ctl := flare.NewController(flare.DefaultControllerConfig())
	if err := ctl.Register(1, flare.SimLadder(), flare.Preferences{}); err != nil {
		fmt.Println("error:", err)
		return
	}
	// The eNodeB reports 20 bytes per resource block — a healthy radio.
	stats := map[int]flare.FlowStats{1: {Bytes: 2_000_000, RBs: 100_000}}
	for bai := 0; bai < 3; bai++ {
		assignments, err := ctl.RunBAI(stats, 0)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("BAI %d: %.0f Kbps\n", bai+1, assignments[0].RateBps/1000)
	}
	// Output:
	// BAI 1: 3000 Kbps
	// BAI 2: 3000 Kbps
	// BAI 3: 3000 Kbps
}

// ExampleLadder shows ladder selection helpers.
func ExampleLadder() {
	l := flare.NewLadderKbps(200, 310, 450, 790)
	fmt.Println(l.Rate(l.HighestAtMost(500_000)))
	fmt.Println(l.Rate(l.HighestAtMost(10_000)))
	// Output:
	// 450000
	// 200000
}
