package flare

import (
	"net/http/httptest"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/oneapi"
)

func TestFacadeQuickScenario(t *testing.T) {
	cfg := DefaultScenario(SchemeFLARE)
	cfg.Duration = 60 * time.Second
	cfg.NumVideo = 2
	cfg.SegmentDuration = 2 * time.Second
	cfg.Channel = ChannelSpec{Kind: ChannelStatic, StaticITbs: 10}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clients) != 2 {
		t.Fatalf("%d clients", len(res.Clients))
	}
	if res.MeanClientRate() <= 0 {
		t.Fatal("no video delivered")
	}
}

func TestFacadeLadders(t *testing.T) {
	if TestbedLadder().Len() != 8 || SimLadder().Len() != 6 || FineLadder().Len() != 12 {
		t.Fatal("ladder lengths wrong")
	}
	if l := NewLadderKbps(100, 200); l.Rate(1) != 200_000 {
		t.Fatal("NewLadderKbps wrong")
	}
}

func TestFacadeController(t *testing.T) {
	c := NewController(DefaultControllerConfig())
	if err := c.Register(1, SimLadder(), Preferences{}); err != nil {
		t.Fatal(err)
	}
	as, err := c.RunBAI(map[int]FlowStats{1: {Bytes: 100_000, RBs: 10_000}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 {
		t.Fatalf("assignments %v", as)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	if len(AllExperiments()) != 15 {
		t.Fatalf("%d experiments", len(AllExperiments()))
	}
	if _, err := ExperimentByID("table1"); err != nil {
		t.Fatal(err)
	}
	if FullScale().Runs != 20 {
		t.Fatal("full scale wrong")
	}
	if QuickScale().Runs < 1 {
		t.Fatal("quick scale wrong")
	}
}

func TestFacadeMetrics(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1}); j != 1 {
		t.Fatalf("Jain = %v", j)
	}
	if h := HarmonicMean([]float64{2, 2}); h != 2 {
		t.Fatalf("harmonic = %v", h)
	}
}

func TestFacadeMultiCell(t *testing.T) {
	server := NewOneAPIServer(DefaultControllerConfig())
	cfg := DefaultScenario(SchemeFLARE)
	cfg.Duration = 45 * time.Second
	cfg.NumVideo = 2
	cfg.SegmentDuration = 2 * time.Second
	cfg.Channel = ChannelSpec{Kind: ChannelStatic, StaticITbs: 10}
	res, err := RunMultiCell(server, cfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
}

func TestFacadeOneAPIHTTPRoundTrip(t *testing.T) {
	server := NewOneAPIServer(DefaultControllerConfig())
	ts := httptest.NewServer(OneAPIHandler(server))
	defer ts.Close()

	plugin := NewOneAPIClient(ts.URL, 0, 1, ts.Client())
	if err := plugin.Open(SimLadder(), Preferences{}); err != nil {
		t.Fatal(err)
	}
	defer plugin.Close()
	if _, err := server.RunBAI(0, oneapi.StatsReport{
		Flows: map[int]FlowStats{1: {Bytes: 100_000, RBs: 10_000}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	a, ok, err := plugin.Poll()
	if err != nil || !ok || a.RateBps <= 0 {
		t.Fatalf("poll: %+v ok=%v err=%v", a, ok, err)
	}
}
