package testbed

import (
	"sync"

	"github.com/flare-sim/flare/internal/lte"
)

// OverrideChannel is the testbed's iTbs Override Module: it lets the
// operator force each UE's MCS at runtime — the mechanism the paper uses
// to "emulate time-varying link bandwidth by changing the index of the
// Transport Block Size". An optional per-UE program automates the
// dynamic-scenario cycles. Safe for concurrent use.
type OverrideChannel struct {
	mu      sync.Mutex
	values  []int
	program func(ue int, tti int64) (iTbs int, ok bool)
}

var _ lte.Channel = (*OverrideChannel)(nil)

// NewOverrideChannel creates an override channel with every UE at the
// given initial iTbs.
func NewOverrideChannel(numUEs, initialITbs int) *OverrideChannel {
	vals := make([]int, numUEs)
	for i := range vals {
		vals[i] = lte.ClampITbs(initialITbs)
	}
	return &OverrideChannel{values: vals}
}

// SetITbs forces a UE's MCS index.
func (c *OverrideChannel) SetITbs(ue, iTbs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ue >= 0 && ue < len(c.values) {
		c.values[ue] = lte.ClampITbs(iTbs)
	}
}

// SetProgram installs an automatic override: on every Update, program is
// consulted per UE and, when ok, its value is applied (the dynamic
// scenario's 1->12->1 cycling). A nil program disables automation.
func (c *OverrideChannel) SetProgram(program func(ue int, tti int64) (int, bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.program = program
}

// Update implements lte.Channel.
func (c *OverrideChannel) Update(tti int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.program == nil {
		return
	}
	for ue := range c.values {
		if v, ok := c.program(ue, tti); ok {
			c.values[ue] = lte.ClampITbs(v)
		}
	}
}

// ITbs implements lte.Channel.
func (c *OverrideChannel) ITbs(ue int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.values[ue]
}

// NumUEs implements lte.Channel.
func (c *OverrideChannel) NumUEs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.values)
}

// CycleProgram returns a program reproducing the paper's dynamic
// scenario: iTbs ramps min->max over half the period and back, with each
// UE offset by offsetTTIs*ue ("each UE starts the cycle with a different
// offset").
func CycleProgram(minITbs, maxITbs int, periodTTIs, offsetTTIs int64) func(int, int64) (int, bool) {
	span := float64(maxITbs - minITbs)
	half := periodTTIs / 2
	return func(ue int, tti int64) (int, bool) {
		if periodTTIs <= 0 {
			return 0, false
		}
		phase := (tti + offsetTTIs*int64(ue)) % periodTTIs
		var frac float64
		if phase < half {
			frac = float64(phase) / float64(half)
		} else {
			frac = float64(periodTTIs-phase) / float64(periodTTIs-half)
		}
		return minITbs + int(frac*span+0.5), true
	}
}
