package testbed

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/metrics"
)

// UEPlayerConfig parameterises a testbed player.
type UEPlayerConfig struct {
	// MediaBaseURL is the media server root.
	MediaBaseURL string
	// StartupSegments must be buffered before playback starts/resumes.
	StartupSegments int
	// MaxBufferSeconds pauses requests while the buffer is full.
	MaxBufferSeconds float64
	// PollAssignment, if non-nil, is consulted before each segment for
	// the FLARE plugin's current assignment in bits/s (0 = none yet).
	PollAssignment func() float64
}

func (c *UEPlayerConfig) applyDefaults() {
	if c.StartupSegments <= 0 {
		c.StartupSegments = 2
	}
	if c.MaxBufferSeconds <= 0 {
		c.MaxBufferSeconds = 30
	}
}

// UEPlayer is a real-time HAS player streaming over genuine HTTP through
// the software femtocell. It reuses the same Adapter implementations as
// the simulator (FESTIVE, GOOGLE, FLARE plugin).
type UEPlayer struct {
	cfg     UEPlayerConfig
	client  *http.Client
	adapter has.Adapter
	clock   *VirtualClock

	mu        sync.Mutex
	records   []has.SegmentRecord
	qualities []int
	buffer    float64 // virtual seconds, as of lastAt
	lastAt    float64
	playing   bool
	stalled   bool
	everPlay  bool
	stallSec  float64
}

// NewUEPlayer builds a player over the given (air-shaped) HTTP client.
func NewUEPlayer(cfg UEPlayerConfig, client *http.Client, adapter has.Adapter, clock *VirtualClock) (*UEPlayer, error) {
	if client == nil || adapter == nil || clock == nil {
		return nil, fmt.Errorf("testbed: player needs client, adapter, and clock")
	}
	if cfg.MediaBaseURL == "" {
		return nil, fmt.Errorf("testbed: player needs a media base URL")
	}
	cfg.applyDefaults()
	return &UEPlayer{cfg: cfg, client: client, adapter: adapter, clock: clock}, nil
}

// FetchMPD downloads and parses the presentation description.
func (p *UEPlayer) FetchMPD(ctx context.Context) (*has.MPD, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, MPDURL(p.cfg.MediaBaseURL), nil)
	if err != nil {
		return nil, fmt.Errorf("testbed: build MPD request: %w", err)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("testbed: fetch MPD: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("testbed: fetch MPD: HTTP %d", resp.StatusCode)
	}
	var mpd has.MPD
	if err := json.NewDecoder(resp.Body).Decode(&mpd); err != nil {
		return nil, fmt.Errorf("testbed: decode MPD: %w", err)
	}
	return &mpd, nil
}

// Run streams segments until the context is cancelled or the
// presentation ends. It blocks; run it in a goroutine.
func (p *UEPlayer) Run(ctx context.Context) error {
	mpd, err := p.FetchMPD(ctx)
	if err != nil {
		return err
	}
	ladder := mpd.Ladder()
	if err := ladder.Validate(); err != nil {
		return fmt.Errorf("testbed: MPD ladder: %w", err)
	}
	segSec := mpd.SegmentSeconds()
	lastQ := -1

	for seg := 0; mpd.TotalSegments <= 0 || seg < mpd.TotalSegments; seg++ {
		if ctx.Err() != nil {
			return nil
		}
		// Buffer cap: wait until there is room for one more segment.
		for {
			p.advance()
			p.mu.Lock()
			full := p.buffer >= p.cfg.MaxBufferSeconds
			p.mu.Unlock()
			if !full || ctx.Err() != nil {
				break
			}
			p.clock.Sleep(200 * time.Millisecond)
		}
		if ctx.Err() != nil {
			return nil
		}

		q := p.nextQuality(ladder, lastQ, seg)
		start := p.clock.Seconds()
		size, err := p.download(ctx, seg, q)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("testbed: segment %d: %w", seg, err)
		}
		end := p.clock.Seconds()
		dl := end - start
		if dl <= 0 {
			dl = 0.001
		}
		rec := has.SegmentRecord{
			Index:         seg,
			Quality:       q,
			RateBps:       ladder.Rate(q),
			Bytes:         size,
			StartTTI:      int64(start * lte.TTIsPerSecond),
			EndTTI:        int64(end * lte.TTIsPerSecond),
			ThroughputBps: float64(size) * 8 / dl,
		}
		p.adapter.OnSegmentComplete(rec)
		p.completeSegment(rec, segSec)
		lastQ = q
	}
	return nil
}

func (p *UEPlayer) nextQuality(ladder has.Ladder, lastQ, seg int) int {
	if p.cfg.PollAssignment != nil {
		if bps := p.cfg.PollAssignment(); bps > 0 {
			return ladder.HighestAtMost(bps)
		}
		return 0
	}
	p.advance()
	p.mu.Lock()
	st := has.State{
		NowTTI:             int64(p.clock.Seconds() * lte.TTIsPerSecond),
		BufferSeconds:      p.buffer,
		LastQuality:        lastQ,
		SegmentsDownloaded: seg,
		Ladder:             ladder,
		Playing:            p.playing,
	}
	p.mu.Unlock()
	return ladder.Clamp(p.adapter.NextQuality(st))
}

func (p *UEPlayer) download(ctx context.Context, seg, rep int) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		SegmentURL(p.cfg.MediaBaseURL, seg, rep), nil)
	if err != nil {
		return 0, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return io.Copy(io.Discard, resp.Body)
}

// advance drains playback and accrues stall time up to the current
// virtual instant.
func (p *UEPlayer) advance() {
	now := p.clock.Seconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	dt := now - p.lastAt
	if dt <= 0 {
		return
	}
	p.lastAt = now
	if p.playing {
		if dt <= p.buffer {
			p.buffer -= dt
			return
		}
		p.stallSec += dt - p.buffer
		p.buffer = 0
		p.playing = false
		p.stalled = true
		return
	}
	if p.stalled {
		p.stallSec += dt
	}
}

func (p *UEPlayer) completeSegment(rec has.SegmentRecord, segSec float64) {
	p.advance()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.records = append(p.records, rec)
	p.qualities = append(p.qualities, rec.Quality)
	p.buffer += segSec
	if !p.playing && p.buffer >= float64(p.cfg.StartupSegments)*segSec {
		p.playing = true
		p.stalled = false
		p.everPlay = true
	}
}

// Stats summarises the session so far.
type Stats struct {
	// Segments is the number of completed downloads.
	Segments int
	// AvgRateBps is the mean selected encoding rate.
	AvgRateBps float64
	// Changes counts bitrate switches.
	Changes int
	// StallSeconds is the rebuffering time after playback start.
	StallSeconds float64
	// BufferSeconds is the current buffer level.
	BufferSeconds float64
}

// Stats returns a snapshot of the player's QoE counters.
func (p *UEPlayer) Stats() Stats {
	p.advance()
	p.mu.Lock()
	defer p.mu.Unlock()
	rates := make([]float64, len(p.records))
	for i, r := range p.records {
		rates[i] = r.RateBps
	}
	changes := 0
	for i := 1; i < len(p.qualities); i++ {
		if p.qualities[i] != p.qualities[i-1] {
			changes++
		}
	}
	return Stats{
		Segments:      len(p.records),
		AvgRateBps:    metrics.Mean(rates),
		Changes:       changes,
		StallSeconds:  p.stallSec,
		BufferSeconds: p.buffer,
	}
}
