package testbed

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/oneapi"
)

// ENodeBConfig parameterises the software femtocell.
type ENodeBConfig struct {
	// NumUEs is the number of attachable UEs.
	NumUEs int
	// InitialITbs is every UE's starting MCS (the static scenario
	// uses 2).
	InitialITbs int
	// Speedup accelerates scenario time (1 = real time).
	Speedup float64
	// TickInterval is the wall-clock MAC tick (default 5 ms); each tick
	// runs the TTIs that elapsed in virtual time.
	TickInterval time.Duration
	// QueueLimit is the per-bearer downlink queue in bytes.
	QueueLimit int64
	// OneAPIBaseURL, when set, enables the Communication Module: the
	// Statistics Reporter's per-BAI report is POSTed there and the
	// returned GBR assignments are installed (Continuous GBR Updater).
	OneAPIBaseURL string
	// CellID identifies this cell at the OneAPI server.
	CellID int
	// StatsInterval is the reporting BAI in virtual time (default 1 s).
	StatsInterval time.Duration
	// NumDataFlows is reported to the OneAPI server in lieu of a PCRF
	// connection.
	NumDataFlows int
	// HTTPClient performs the Communication Module's requests.
	HTTPClient *http.Client
}

func (c *ENodeBConfig) applyDefaults() {
	if c.Speedup < 1 {
		c.Speedup = 1
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 5 * time.Millisecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 256 << 10
	}
	if c.StatsInterval <= 0 {
		c.StatsInterval = time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
}

// ENodeB is the software femtocell base station. It owns the radio
// substrate (Scheduler Module + RB & Rate Trace Module), the iTbs
// Override Module (Channel), and the Statistics Reporter / Communication
// Module loop toward the OneAPI server.
type ENodeB struct {
	cfg     ENodeBConfig
	clock   *VirtualClock
	channel *OverrideChannel

	mu    sync.Mutex
	cond  *sync.Cond
	radio *lte.ENodeB
	conns map[int]*shapedBody // active shaped response per bearer
	tti   int64

	stop chan struct{}
	wg   sync.WaitGroup

	// OnAssignments, if set, observes each BAI's assignments after they
	// are enforced (used by tests and by local plugin delivery).
	OnAssignments func([]core.Assignment)
}

// NewENodeB builds and starts the femtocell. Call Stop when done.
func NewENodeB(cfg ENodeBConfig) (*ENodeB, error) {
	if cfg.NumUEs <= 0 {
		return nil, fmt.Errorf("testbed: need at least one UE, got %d", cfg.NumUEs)
	}
	cfg.applyDefaults()
	e := &ENodeB{
		cfg:     cfg,
		clock:   NewVirtualClock(cfg.Speedup),
		channel: NewOverrideChannel(cfg.NumUEs, cfg.InitialITbs),
		conns:   make(map[int]*shapedBody),
		stop:    make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	e.radio = lte.NewENodeB(e.channel, lte.TwoPhaseGBRScheduler{})
	e.wg.Add(1)
	go e.run()
	return e, nil
}

// Clock returns the testbed's virtual clock.
func (e *ENodeB) Clock() *VirtualClock { return e.clock }

// Channel returns the iTbs Override Module.
func (e *ENodeB) Channel() *OverrideChannel { return e.channel }

// Stop halts the MAC loop and unblocks any waiting readers.
func (e *ENodeB) Stop() {
	close(e.stop)
	e.wg.Wait()
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Attach creates a bearer for a UE and returns its ID plus an HTTP
// client whose response bodies are paced by this cell's air interface.
func (e *ENodeB) Attach(ue int, class lte.BearerClass) (int, *http.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := len(e.radio.Bearers())
	b := &lte.Bearer{ID: id, UE: ue, Class: class, QueueLimit: e.cfg.QueueLimit}
	if _, err := e.radio.AddBearer(b); err != nil {
		return 0, nil, err
	}
	b.OnDeliver = func(n int64) {
		if conn := e.conns[id]; conn != nil {
			conn.allowance += n
		}
	}
	client := &http.Client{
		Transport: &airTransport{enb: e, bearerID: id, base: http.DefaultTransport},
	}
	return id, client, nil
}

// SetGBR installs a guaranteed bit rate on a bearer (the Continuous GBR
// Updater's local interface).
func (e *ENodeB) SetGBR(bearerID int, gbrBits float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.radio.SetGBR(bearerID, gbrBits)
}

// BearerTotals returns a bearer's cumulative RB/byte accounting from the
// RB & Rate Trace Module.
func (e *ENodeB) BearerTotals(bearerID int) (lte.WindowStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.radio.BearerByID(bearerID)
	if b == nil {
		return lte.WindowStats{}, fmt.Errorf("testbed: no bearer %d", bearerID)
	}
	return b.TotalStats(), nil
}

// run is the MAC loop: advance the radio to the virtual-clock TTI, then
// fire the Statistics Reporter when a BAI has elapsed.
func (e *ENodeB) run() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.TickInterval)
	defer ticker.Stop()
	var lastStats time.Duration
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
		}
		target := int64(e.clock.Now() / time.Millisecond)
		e.mu.Lock()
		// Cap the catch-up burst so a scheduling hiccup can't stall the
		// loop; the virtual clock keeps overall progress honest.
		if target > e.tti+1000 {
			e.tti = target - 1000
		}
		for e.tti < target {
			e.radio.RunTTI(e.tti)
			e.tti++
		}
		e.cond.Broadcast()
		e.mu.Unlock()

		if now := e.clock.Now(); now-lastStats >= e.cfg.StatsInterval {
			lastStats = now
			e.reportStats()
		}
	}
}

// reportStats implements the Statistics Reporter + Communication Module:
// collect per-video-bearer windows, POST them to the OneAPI server, and
// enforce the returned GBRs.
func (e *ENodeB) reportStats() {
	report := oneapi.StatsReport{
		Flows:        make(map[int]core.FlowStats),
		NumDataFlows: e.cfg.NumDataFlows,
	}
	e.mu.Lock()
	for _, b := range e.radio.Bearers() {
		if b.Class != lte.ClassVideo {
			continue
		}
		w := b.CollectWindow()
		report.Flows[b.ID] = core.FlowStats{
			Bytes:          w.Bytes,
			RBs:            w.RBs,
			BytesPerRBHint: lte.BitsPerRB(e.channel.ITbs(b.UE)) / 8,
		}
	}
	e.mu.Unlock()

	if e.cfg.OneAPIBaseURL == "" {
		return
	}
	assignments, err := oneapi.ReportStats(e.cfg.HTTPClient, e.cfg.OneAPIBaseURL, e.cfg.CellID, report)
	if err != nil {
		// The next BAI retries; a lost report only delays adaptation.
		return
	}
	e.mu.Lock()
	for _, a := range assignments {
		_ = e.radio.SetGBR(a.FlowID, a.RateBps)
	}
	cb := e.OnAssignments
	e.mu.Unlock()
	if cb != nil {
		cb(assignments)
	}
}

// stopped reports whether Stop was called (for reader loops).
func (e *ENodeB) stopped() bool {
	select {
	case <-e.stop:
		return true
	default:
		return false
	}
}

// airTransport shapes HTTP response bodies through the air interface.
type airTransport struct {
	enb      *ENodeB
	bearerID int
	base     http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *airTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp.Body = t.enb.shape(t.bearerID, resp.Body)
	return resp, nil
}

// shapedBody delivers an upstream response body at the rate the radio
// serves the bearer: a pump goroutine pushes upstream bytes into the
// bearer queue (blocking on queue-full backpressure), and Read hands
// bytes to the UE only as the Scheduler Module drains them.
type shapedBody struct {
	enb    *ENodeB
	bearer *lte.Bearer
	src    io.ReadCloser

	// guarded by enb.mu
	fifo      []byte
	allowance int64
	srcDone   bool
	closed    bool
}

func (e *ENodeB) shape(bearerID int, src io.ReadCloser) io.ReadCloser {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.radio.BearerByID(bearerID)
	if b == nil {
		return src // unknown bearer: pass through unshaped
	}
	s := &shapedBody{enb: e, bearer: b, src: src}
	e.conns[bearerID] = s
	go s.pump()
	return s
}

// pump moves upstream bytes into the bearer queue with backpressure.
func (s *shapedBody) pump() {
	buf := make([]byte, 16<<10)
	for {
		n, err := s.src.Read(buf)
		if n > 0 {
			off := 0
			s.enb.mu.Lock()
			for off < n && !s.closed && !s.enb.stopped() {
				acc := s.bearer.Enqueue(int64(n - off))
				if acc == 0 {
					s.enb.cond.Wait()
					continue
				}
				s.fifo = append(s.fifo, buf[off:off+int(acc)]...)
				off += int(acc)
			}
			s.enb.mu.Unlock()
		}
		if err != nil {
			s.enb.mu.Lock()
			s.srcDone = true
			s.enb.cond.Broadcast()
			s.enb.mu.Unlock()
			return
		}
	}
}

// Read implements io.Reader, delivering bytes as radio grants allow.
func (s *shapedBody) Read(p []byte) (int, error) {
	s.enb.mu.Lock()
	defer s.enb.mu.Unlock()
	for {
		if s.closed {
			return 0, fmt.Errorf("testbed: read on closed body")
		}
		n := int64(len(s.fifo))
		if s.allowance < n {
			n = s.allowance
		}
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		if n > 0 {
			copy(p, s.fifo[:n])
			s.fifo = s.fifo[n:]
			s.allowance -= n
			return int(n), nil
		}
		if s.srcDone && len(s.fifo) == 0 {
			return 0, io.EOF
		}
		if s.enb.stopped() {
			return 0, io.EOF
		}
		s.enb.cond.Wait()
	}
}

// Close implements io.Closer.
func (s *shapedBody) Close() error {
	s.enb.mu.Lock()
	s.closed = true
	delete(s.enb.conns, s.bearer.ID)
	s.enb.cond.Broadcast()
	s.enb.mu.Unlock()
	return s.src.Close()
}
