package testbed

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/flare-sim/flare/internal/has"
)

// MediaServer serves a synthetic DASH presentation over real HTTP:
//
//	GET /video/mpd.json       -> the MPD (segment timing + ladder)
//	GET /video/seg/{i}/{rep}  -> segment i at representation rep
//
// Segment bodies are generated on the fly at the exact encoded size, so
// the testbed exercises genuine HTTP transfers without shipping media.
type MediaServer struct {
	mpd *has.MPD
}

// NewMediaServer builds a media server for one synthetic presentation.
func NewMediaServer(ladder has.Ladder, segDur time.Duration, totalSegments int) (*MediaServer, error) {
	mpd, err := has.NewMPD(ladder, segDur, totalSegments)
	if err != nil {
		return nil, err
	}
	return &MediaServer{mpd: mpd}, nil
}

// MPD returns the served presentation description.
func (m *MediaServer) MPD() *has.MPD { return m.mpd }

// Handler returns the server's HTTP handler.
func (m *MediaServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /video/mpd.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Encoding errors here mean a dead client connection; there is
		// nothing further to do with them.
		_ = json.NewEncoder(w).Encode(m.mpd)
	})
	mux.HandleFunc("GET /video/seg/{idx}/{rep}", func(w http.ResponseWriter, r *http.Request) {
		idx, err1 := strconv.Atoi(r.PathValue("idx"))
		rep, err2 := strconv.Atoi(r.PathValue("rep"))
		if err1 != nil || err2 != nil {
			http.Error(w, "bad segment path", http.StatusBadRequest)
			return
		}
		if idx < 0 || (m.mpd.TotalSegments > 0 && idx >= m.mpd.TotalSegments) {
			http.Error(w, "segment out of range", http.StatusNotFound)
			return
		}
		if rep < 0 || rep >= len(m.mpd.Representations) {
			http.Error(w, "representation out of range", http.StatusNotFound)
			return
		}
		size := m.mpd.SegmentBytesAt(idx, rep)
		w.Header().Set("Content-Type", "video/mp4")
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		writeSyntheticBody(w, size)
	})
	return mux
}

// writeSyntheticBody streams size bytes of deterministic filler.
func writeSyntheticBody(w http.ResponseWriter, size int64) {
	chunk := make([]byte, 32<<10)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	for size > 0 {
		n := int64(len(chunk))
		if n > size {
			n = size
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return // client went away mid-segment
		}
		size -= n
	}
}

// SegmentURL builds the URL path for a segment.
func SegmentURL(base string, idx, rep int) string {
	return fmt.Sprintf("%s/video/seg/%d/%d", base, idx, rep)
}

// MPDURL builds the URL path for the MPD.
func MPDURL(base string) string { return base + "/video/mpd.json" }
