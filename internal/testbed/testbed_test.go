package testbed

import (
	"context"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/oneapi"
	"github.com/flare-sim/flare/internal/sim"
)

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(10)
	if c.Speedup() != 10 {
		t.Fatalf("speedup %v", c.Speedup())
	}
	start := c.Now()
	time.Sleep(50 * time.Millisecond)
	elapsed := c.Now() - start
	if elapsed < 400*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("virtual elapsed %v for 50 ms wall at 10x", elapsed)
	}
	// Clamping.
	if NewVirtualClock(0).Speedup() != 1 {
		t.Fatal("speedup not clamped")
	}
}

func TestOverrideChannel(t *testing.T) {
	c := NewOverrideChannel(2, 5)
	if c.NumUEs() != 2 || c.ITbs(0) != 5 {
		t.Fatal("initial state wrong")
	}
	c.SetITbs(0, 12)
	if c.ITbs(0) != 12 || c.ITbs(1) != 5 {
		t.Fatal("SetITbs wrong")
	}
	c.SetITbs(1, 99) // clamped
	if c.ITbs(1) != lte.MaxITbs {
		t.Fatal("clamp failed")
	}
	c.SetITbs(5, 3) // out of range UE: no-op
}

func TestCycleProgram(t *testing.T) {
	prog := CycleProgram(1, 12, 1000, 500)
	v0, ok := prog(0, 0)
	if !ok || v0 != 1 {
		t.Fatalf("phase 0 = %d", v0)
	}
	vHalf, _ := prog(0, 500)
	if vHalf != 12 {
		t.Fatalf("half period = %d", vHalf)
	}
	// UE 1 is offset by half a period.
	v1, _ := prog(1, 0)
	if v1 != 12 {
		t.Fatalf("offset UE at phase 0 = %d", v1)
	}
}

func TestMediaServerServesMPDAndSegments(t *testing.T) {
	ms, err := NewMediaServer(has.TestbedLadder(), 2*time.Second, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(MPDURL(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) == 0 {
		t.Fatalf("MPD fetch: %d", resp.StatusCode)
	}

	// Segment size must match the encoding exactly.
	resp, err = srv.Client().Get(SegmentURL(srv.URL, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	want := ms.MPD().SegmentBytes(2)
	if n != want {
		t.Fatalf("segment size %d, want %d", n, want)
	}

	// Out-of-range requests 404.
	for _, path := range []string{
		SegmentURL(srv.URL, 99, 0),
		SegmentURL(srv.URL, 0, 99),
	} {
		resp, err := srv.Client().Get(path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestENodeBShapesThroughput(t *testing.T) {
	ms, err := NewMediaServer(has.TestbedLadder(), 2*time.Second, 100)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()

	enb, err := NewENodeB(ENodeBConfig{NumUEs: 1, InitialITbs: 2, Speedup: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer enb.Stop()
	_, client, err := enb.Attach(0, lte.ClassVideo)
	if err != nil {
		t.Fatal(err)
	}

	// Download one 790 kbps segment (~197 KB) through the shaped path.
	start := enb.Clock().Seconds()
	resp, err := client.Get(SegmentURL(srv.URL, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := enb.Clock().Seconds() - start
	if n != ms.MPD().SegmentBytes(3) {
		t.Fatalf("got %d bytes", n)
	}
	// The cell at iTbs 2 carries ~4.4 Mbps: the 1.58 Mbit segment needs
	// at least ~0.3 virtual seconds; allow generous slack both ways.
	tput := float64(n) * 8 / elapsed
	if tput > 1.5*lte.CellRateBps(2) {
		t.Fatalf("throughput %.0f exceeds shaped link %.0f", tput, lte.CellRateBps(2))
	}
	if tput < 0.2*lte.CellRateBps(2) {
		t.Fatalf("throughput %.0f implausibly low", tput)
	}
}

func TestENodeBValidation(t *testing.T) {
	if _, err := NewENodeB(ENodeBConfig{NumUEs: 0}); err == nil {
		t.Fatal("zero UEs accepted")
	}
}

func TestEPCAttachLimits(t *testing.T) {
	enb, err := NewENodeB(ENodeBConfig{NumUEs: 2, InitialITbs: 10, Speedup: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer enb.Stop()
	epc := NewEPC(enb)
	if _, _, err := epc.Attach(lte.ClassVideo); err != nil {
		t.Fatal(err)
	}
	if _, _, err := epc.Attach(lte.ClassData); err != nil {
		t.Fatal(err)
	}
	if _, _, err := epc.Attach(lte.ClassData); err == nil {
		t.Fatal("third attach on a 2-UE cell accepted")
	}
	if epc.NumDataSessions() != 1 {
		t.Fatalf("data sessions %d", epc.NumDataSessions())
	}
	if len(epc.Sessions()) != 2 {
		t.Fatalf("sessions %d", len(epc.Sessions()))
	}
}

func TestUEPlayerStreamsWithFestive(t *testing.T) {
	ms, err := NewMediaServer(has.TestbedLadder(), time.Second, 12)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()

	enb, err := NewENodeB(ENodeBConfig{NumUEs: 1, InitialITbs: 8, Speedup: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer enb.Stop()
	epc := NewEPC(enb)
	_, client, err := epc.Attach(lte.ClassVideo)
	if err != nil {
		t.Fatal(err)
	}

	player, err := NewUEPlayer(UEPlayerConfig{
		MediaBaseURL:     srv.URL,
		MaxBufferSeconds: 20,
	}, client, abr.NewFestive(abr.DefaultFestiveConfig(), testRNG()), enb.Clock())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := player.Run(ctx); err != nil {
		t.Fatal(err)
	}
	st := player.Stats()
	if st.Segments != 12 {
		t.Fatalf("downloaded %d segments, want 12", st.Segments)
	}
	if st.AvgRateBps <= 0 {
		t.Fatal("zero average rate")
	}
}

func TestUEPlayerValidation(t *testing.T) {
	clock := NewVirtualClock(1)
	if _, err := NewUEPlayer(UEPlayerConfig{}, nil, nil, clock); err == nil {
		t.Fatal("nil client/adapter accepted")
	}
}

// TestFullFLARETestbedLoop is the end-to-end testbed: media server +
// OneAPI server + software eNodeB + a FLARE-plugin UE, all over real
// HTTP. The plugin registers its ladder, the eNB reports stats per BAI,
// the OneAPI server assigns bitrates and GBRs, and the player follows
// the assignments.
func TestFullFLARETestbedLoop(t *testing.T) {
	ms, err := NewMediaServer(has.TestbedLadder(), time.Second, 15)
	if err != nil {
		t.Fatal(err)
	}
	mediaSrv := httptest.NewServer(ms.Handler())
	defer mediaSrv.Close()

	cfg := core.DefaultConfig()
	cfg.Delta = 1
	cfg.BAI = time.Second
	oneAPI := oneapi.NewServer(cfg, nil)
	apiSrv := httptest.NewServer(oneapi.Handler(oneAPI))
	defer apiSrv.Close()

	enb, err := NewENodeB(ENodeBConfig{
		NumUEs:        1,
		InitialITbs:   8,
		Speedup:       30,
		OneAPIBaseURL: apiSrv.URL,
		StatsInterval: time.Second,
		HTTPClient:    apiSrv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer enb.Stop()
	epc := NewEPC(enb)
	sess, client, err := epc.Attach(lte.ClassVideo)
	if err != nil {
		t.Fatal(err)
	}

	// The plugin registers the flow's ladder with the OneAPI server.
	plugin := oneapi.NewClient(apiSrv.URL, 0, sess.BearerID, apiSrv.Client())
	if err := plugin.Open(has.TestbedLadder(), core.Preferences{}); err != nil {
		t.Fatal(err)
	}
	defer plugin.Close()

	player, err := NewUEPlayer(UEPlayerConfig{
		MediaBaseURL:     mediaSrv.URL,
		MaxBufferSeconds: 15,
		PollAssignment: func() float64 {
			a, ok, err := plugin.Poll()
			if err != nil || !ok {
				return 0
			}
			return a.RateBps
		},
	}, client, abr.NewFlarePlugin(), enb.Clock())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := player.Run(ctx); err != nil {
		t.Fatal(err)
	}
	st := player.Stats()
	if st.Segments != 15 {
		t.Fatalf("downloaded %d segments, want 15", st.Segments)
	}
	// The cell is ~9 Mbps at iTbs 8 with one client: the assignment
	// must have climbed off the lowest rung.
	if st.AvgRateBps <= 200_000 {
		t.Fatalf("assignments never climbed: avg %.0f", st.AvgRateBps)
	}
	// GBR must have been installed at the eNodeB.
	totals, err := enb.BearerTotals(sess.BearerID)
	if err != nil {
		t.Fatal(err)
	}
	if totals.Bytes == 0 || totals.RBs == 0 {
		t.Fatal("RB & Rate Trace Module recorded nothing")
	}
}

func testRNG() *sim.RNG { return sim.NewRNG(1) }

func TestENodeBDynamicCycleProgram(t *testing.T) {
	// The iTbs Override Module's cycle program drives the dynamic
	// scenario: link capacity observed through the air interface must
	// differ between the trough and the peak of the cycle.
	ms, err := NewMediaServer(has.TestbedLadder(), time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()

	enb, err := NewENodeB(ENodeBConfig{NumUEs: 1, InitialITbs: 1, Speedup: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer enb.Stop()
	// 20 s virtual period: trough at phase 0, peak at phase 10 s.
	enb.Channel().SetProgram(CycleProgram(1, 12, 20_000, 0))
	_, client, err := enb.Attach(0, lte.ClassVideo)
	if err != nil {
		t.Fatal(err)
	}

	fetch := func() float64 {
		start := enb.Clock().Seconds()
		resp, err := client.Get(SegmentURL(srv.URL, 0, 4)) // 1100 kbps segment
		if err != nil {
			t.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return float64(n) * 8 / (enb.Clock().Seconds() - start)
	}

	// Near the trough (cycle starts at iTbs 1).
	troughTput := fetch()
	// Wait for the peak half of the cycle.
	for enb.Clock().Seconds() < 9 {
		enb.Clock().Sleep(500 * time.Millisecond)
	}
	peakTput := fetch()
	if peakTput < 1.3*troughTput {
		t.Fatalf("cycle had no effect: trough %.0f, peak %.0f bps", troughTput, peakTput)
	}
}
