package testbed

import (
	"fmt"
	"net/http"
	"sync"

	"github.com/flare-sim/flare/internal/lte"
)

// EPC is the minimal evolved-packet-core stand-in the testbed needs in
// place of the paper's commercial EPC emulator: it handles UE attach
// (assigning UE indices and default bearers at the eNodeB) and tracks
// which sessions are video vs data so the OneAPI server's PCRF view can
// be fed.
type EPC struct {
	enb *ENodeB

	mu       sync.Mutex
	nextUE   int
	sessions map[int]Session
}

// Session describes one attached UE's bearer.
type Session struct {
	// UE is the radio-side UE index.
	UE int
	// BearerID is the default bearer at the eNodeB.
	BearerID int
	// Class is the traffic class the bearer was set up with.
	Class lte.BearerClass
}

// NewEPC wires an EPC to a cell.
func NewEPC(enb *ENodeB) *EPC {
	return &EPC{enb: enb, sessions: make(map[int]Session)}
}

// Attach admits a UE with a default bearer of the given class and
// returns the session plus an HTTP client routed through the air
// interface.
func (e *EPC) Attach(class lte.BearerClass) (Session, *http.Client, error) {
	e.mu.Lock()
	ue := e.nextUE
	if ue >= e.enb.Channel().NumUEs() {
		e.mu.Unlock()
		return Session{}, nil, fmt.Errorf("testbed: cell is full (%d UEs)", ue)
	}
	e.nextUE++
	e.mu.Unlock()

	bearerID, client, err := e.enb.Attach(ue, class)
	if err != nil {
		return Session{}, nil, err
	}
	s := Session{UE: ue, BearerID: bearerID, Class: class}
	e.mu.Lock()
	e.sessions[bearerID] = s
	e.mu.Unlock()
	return s, client, nil
}

// Sessions returns a snapshot of the attached sessions.
func (e *EPC) Sessions() []Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		out = append(out, s)
	}
	return out
}

// NumDataSessions counts attached data-class sessions.
func (e *EPC) NumDataSessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, s := range e.sessions {
		if s.Class == lte.ClassData {
			n++
		}
	}
	return n
}
