// Package testbed is the software femtocell: a real-time eNodeB
// emulation carrying genuine HTTP traffic between real players and a
// real media server through the TTI-level radio substrate.
//
// It reproduces the paper's Section III-B testbed (Figure 2/3) without
// the JL-620 hardware: the six MAC modules — Scheduler, RB & Rate Trace,
// iTbs Override, Continuous GBR Updater, Statistics Reporter, and
// Communication — are implemented against internal/lte, and the UEs'
// HTTP downloads are paced by the per-TTI scheduling decisions exactly
// as the femtocell's air interface would pace them. A virtual clock with
// a configurable speedup lets the 10-minute paper scenarios run in
// seconds of wall time.
package testbed

import "time"

// VirtualClock maps wall time onto accelerated scenario time.
type VirtualClock struct {
	start   time.Time
	speedup float64
}

// NewVirtualClock starts a clock running at speedup x real time.
// Speedups below 1 are clamped to 1.
func NewVirtualClock(speedup float64) *VirtualClock {
	if speedup < 1 {
		speedup = 1
	}
	return &VirtualClock{start: time.Now(), speedup: speedup}
}

// Speedup returns the acceleration factor.
func (c *VirtualClock) Speedup() float64 { return c.speedup }

// Now returns the elapsed virtual time.
func (c *VirtualClock) Now() time.Duration {
	return time.Duration(float64(time.Since(c.start)) * c.speedup)
}

// Seconds returns the elapsed virtual time in seconds.
func (c *VirtualClock) Seconds() float64 { return c.Now().Seconds() }

// Sleep pauses for a virtual duration (a shorter wall-time sleep).
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / c.speedup))
}
