package buildinfo_test

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"github.com/flare-sim/flare/internal/buildinfo"
)

func TestVersionNonEmpty(t *testing.T) {
	if v := buildinfo.Version(); v == "" {
		t.Fatal("Version() returned empty string")
	}
}

func TestPrintFormat(t *testing.T) {
	var buf bytes.Buffer
	buildinfo.Print(&buf, "flaresim")
	out := buf.String()
	for _, want := range []string{"flaresim ", runtime.Version(), runtime.GOOS + "/" + runtime.GOARCH} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print output missing %q: %q", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Print output not newline-terminated: %q", out)
	}
}
