// Package buildinfo exposes one version string for every binary in the
// repository, derived from the module build metadata stamped by the Go
// toolchain (module version under `go install`, VCS revision under a
// plain `go build` in a git checkout). Binaries wire it to a -version
// flag so deployed artifacts are identifiable without guessing.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version returns a single-line version string: the module version when
// stamped, otherwise the VCS revision (+dirty marker), otherwise
// "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return "devel"
}

// Print writes the standard -version output for the named binary:
// name, version, and the toolchain it was built with.
func Print(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s (%s, %s/%s)\n", name, Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
