package benchmarks

import (
	"bufio"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/flare-sim/flare/internal/cellsim"
)

// MultiCellSimSeconds is the simulated duration of each cell in one
// MultiCell iteration; aggregate simsec/sec = cells * MultiCellSimSeconds
// / wall seconds per op.
const MultiCellSimSeconds = 15

// MultiCellConfig returns one cell of the multi-cell scaling workload: a
// FLARE cell kept busy by greedy data flows, short enough that the
// 64-cell point stays benchmark-friendly. Every cell of a run gets a
// distinct seed so the cells don't march in lockstep.
func MultiCellConfig(seed uint64) cellsim.Config {
	cfg := cellsim.DefaultConfig(cellsim.SchemeFLARE)
	cfg.Duration = MultiCellSimSeconds * time.Second
	cfg.NumVideo = 8
	cfg.NumData = 2
	cfg.SegmentDuration = 2 * time.Second
	cfg.Flare.BAI = 1 * time.Second
	cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: 12}
	cfg.Seed = seed
	return cfg
}

// MultiCellConfigs returns the configs for an n-cell run, seeded
// seedBase, seedBase+1, ...
func MultiCellConfigs(n int, seedBase uint64) []cellsim.Config {
	cfgs := make([]cellsim.Config, n)
	for i := range cfgs {
		cfgs[i] = MultiCellConfig(seedBase + uint64(i))
	}
	return cfgs
}

// MultiCellCounts is the committed scaling curve: the cell counts
// measured into BENCH_multicell.json and gated in CI.
func MultiCellCounts() []int { return []int{1, 4, 16, 64} }

// CPUModel best-effort identifies the host CPU so committed benchmark
// numbers are interpretable across machines. Linux only (reads
// /proc/cpuinfo); other platforms fall back to the architecture name.
func CPUModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return runtime.GOARCH
}
