// Package benchmarks defines the canonical engine benchmark workloads
// shared by the go-test benchmarks (bench_test.go) and the flarebench
// -json harness, so the committed BENCH_engine.json numbers and the CI
// regression gate measure exactly the workload the benchmarks do.
package benchmarks

import (
	"time"

	"github.com/flare-sim/flare/internal/cellsim"
)

// EngineSimSeconds is the simulated duration of one EngineTick
// iteration; simsec/sec = EngineSimSeconds / wall seconds per op.
const EngineSimSeconds = 60

// EngineTickConfig returns the engine hot-path workload: a 16-flow
// FLARE cell with 4 greedy data flows over one simulated minute on a
// static channel with a 1 s BAI. The greedy data flows keep the cell
// saturated, so the workload measures the busy path (scheduler, solver,
// transport, events) rather than the fast-forward idle path.
func EngineTickConfig(seed uint64) cellsim.Config {
	cfg := cellsim.DefaultConfig(cellsim.SchemeFLARE)
	cfg.Duration = EngineSimSeconds * time.Second
	cfg.NumVideo = 16
	cfg.NumData = 4
	cfg.SegmentDuration = 2 * time.Second
	cfg.Flare.BAI = 1 * time.Second
	cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: 12}
	cfg.Seed = seed
	return cfg
}
