package benchmarks

import (
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/loadgen"
)

// The canonical control-plane load workload behind BenchmarkOneAPILoad
// (flarebench -json-oneapi and the BENCH_oneapi.json CI gate): a modest
// city slice — 16 cells × 16 sessions, 30 unpaced BAI rounds with light
// churn — sized so the gate costs seconds on the CI container. The
// 10,000-session acceptance run is the same driver scaled up
// (flareload -cells 100 -sessions 100); its numbers go in the README
// table, not the gate.
const (
	OneAPICells           = 16
	OneAPISessionsPerCell = 16
	OneAPIRounds          = 30
	OneAPIChurnEvery      = 10
)

// OneAPIServerConfig is the controller configuration of the server
// under test: defaults with Delta=1 so every round can move
// assignments (the enforcement path stays busy).
func OneAPIServerConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Delta = 1
	return cfg
}

// OneAPILoadConfig returns the canonical load-driver configuration
// aimed at baseURL.
func OneAPILoadConfig(baseURL string) loadgen.Config {
	return loadgen.Config{
		BaseURL:         baseURL,
		Cells:           OneAPICells,
		SessionsPerCell: OneAPISessionsPerCell,
		Rounds:          OneAPIRounds,
		ChurnEvery:      OneAPIChurnEvery,
	}
}
