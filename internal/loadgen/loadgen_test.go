package loadgen_test

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/loadgen"
	"github.com/flare-sim/flare/internal/oneapi"
)

func newTestServer(t *testing.T, shards int) (*oneapi.Server, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Delta = 1
	s := oneapi.NewServerSharded(cfg, nil, shards)
	t.Cleanup(s.Close)
	srv := httptest.NewServer(oneapi.Handler(s))
	t.Cleanup(srv.Close)
	return s, srv
}

// TestRunPerCell drives the per-cell stats path end to end against an
// in-process sharded server: every open, round, and poll must succeed
// and the summary must account for all of them.
func TestRunPerCell(t *testing.T) {
	_, srv := newTestServer(t, 8)
	cfg := loadgen.Config{
		BaseURL:         srv.URL,
		Cells:           4,
		SessionsPerCell: 3,
		Rounds:          3,
		ChurnEvery:      2,
	}
	tr := &loadgen.Tracker{}
	res, err := loadgen.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpenErrors != 0 || res.RoundErrors != 0 || res.PollErrors != 0 {
		t.Fatalf("errors in clean run: %+v", res)
	}
	// 12 initial opens + one churn re-open per cell (round 2).
	if res.OpenedSessions != 12+4 {
		t.Errorf("opened %d sessions, want 16", res.OpenedSessions)
	}
	if res.RoundsTotal != 12 {
		t.Errorf("rounds = %d, want 12 (4 cells x 3)", res.RoundsTotal)
	}
	if res.Polls != 36 {
		t.Errorf("polls = %d, want 36", res.Polls)
	}
	if res.P50Seconds <= 0 || res.P99Seconds < res.P50Seconds {
		t.Errorf("degenerate percentiles: p50=%g p99=%g", res.P50Seconds, res.P99Seconds)
	}
	if res.SessionsPerSec <= 0 || res.RoundsPerSec <= 0 {
		t.Errorf("degenerate rates: %+v", res)
	}

	body := &strings.Builder{}
	if err := tr.WritePrometheus(body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"flareload_opens_total 16",
		"flareload_rounds_total 12",
		"flareload_polls_total 36",
		"flareload_round_seconds_count 12",
		"flareload_round_seconds_bucket",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, body.String())
		}
	}
}

// TestRunBatch drives the aggregated stats path: one batch POST per
// round fans every cell's BAI across the server's worker pool.
func TestRunBatch(t *testing.T) {
	_, srv := newTestServer(t, 8)
	res, err := loadgen.Run(loadgen.Config{
		BaseURL:         srv.URL,
		Cells:           5,
		SessionsPerCell: 2,
		Rounds:          4,
		Batch:           true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpenErrors != 0 || res.RoundErrors != 0 || res.PollErrors != 0 {
		t.Fatalf("errors in clean batch run: %+v", res)
	}
	if res.RoundsTotal != 20 {
		t.Errorf("rounds = %d, want 20 (5 cells x 4)", res.RoundsTotal)
	}
	if res.Polls != 40 {
		t.Errorf("polls = %d, want 40", res.Polls)
	}
}

// TestConfigValidation pins the config errors.
func TestConfigValidation(t *testing.T) {
	for _, cfg := range []loadgen.Config{
		{},
		{BaseURL: "http://x", Cells: 0, SessionsPerCell: 1},
		{BaseURL: "http://x", Cells: 1, SessionsPerCell: 1, Rounds: -1},
	} {
		if _, err := loadgen.Run(cfg, nil); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}
