// Package loadgen replays synthetic control-plane traffic against a
// live OneAPI server: per cell, a synthetic eNodeB posting statistics
// reports (one BAI round each) and a population of plugin clients
// opening sessions, polling assignments, and churning. It measures what
// the city-scale story needs measured — sustained sessions/sec on the
// open path and BAI round-trip latency percentiles on the stats path —
// through the same histogram machinery the server's own /metrics uses.
//
// The driver is deliberately deterministic in what it sends (synthetic
// per-flow radio accounting derived from flow and round indices, no
// randomness), so two runs against equal servers issue identical
// request streams; only timing varies.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/oneapi"
)

// Config parameterises one load run.
type Config struct {
	// BaseURL is the OneAPI server under test (e.g. http://127.0.0.1:8480).
	BaseURL string
	// Cells is the number of synthetic eNodeBs; each runs concurrently
	// in its own goroutine, so this is also the request concurrency.
	Cells int
	// SessionsPerCell is the plugin population per cell; total
	// concurrent sessions = Cells × SessionsPerCell.
	SessionsPerCell int
	// FirstCell offsets the cell-ID range to [FirstCell,
	// FirstCell+Cells): several drivers can share one server without
	// colliding on cells (whose per-cell report sequencing would
	// reject a second driver's restarted Seq stream as stale).
	FirstCell int
	// Rounds is how many BAI rounds each cell drives (report + polls).
	Rounds int
	// Interval paces a cell's rounds (the production BAI cadence);
	// 0 runs rounds back-to-back — the benchmark mode.
	Interval time.Duration
	// ChurnEvery, when positive, closes and re-opens one session per
	// cell every that many rounds, exercising the session lifecycle
	// under load.
	ChurnEvery int
	// Batch drives the stats path through /oneapi/v4/stats/batch — one
	// aggregation site reporting every cell per round, exercising the
	// server's worker-pool fan-out — instead of per-cell stats POSTs.
	Batch bool
	// Ladder is the bitrate ladder sessions register (nil = has.SimLadder).
	Ladder []float64
	// HTTPClient overrides the tuned default transport.
	HTTPClient *http.Client
}

func (c *Config) validate() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL is required")
	}
	if c.Cells < 1 || c.SessionsPerCell < 1 {
		return fmt.Errorf("loadgen: need at least 1 cell and 1 session per cell (have %d × %d)",
			c.Cells, c.SessionsPerCell)
	}
	if c.Rounds < 0 || c.ChurnEvery < 0 || c.FirstCell < 0 {
		return fmt.Errorf("loadgen: Rounds, ChurnEvery, and FirstCell must be >= 0")
	}
	return nil
}

// Tracker accumulates live counters and the round-latency histogram; it
// is safe for concurrent use and exportable in Prometheus text format
// while a run is in flight (the flareload /metrics endpoint).
type Tracker struct {
	Opens      atomic.Int64
	OpenErrors atomic.Int64
	Rounds     atomic.Int64
	// RoundErrors counts failed stats exchanges (transport errors or
	// non-enforcement server errors). In batch mode each cell's slot in
	// the batch counts separately, so the two modes are comparable.
	RoundErrors atomic.Int64
	Polls       atomic.Int64
	PollErrors  atomic.Int64
	Closes      atomic.Int64

	// RoundLatency observes one stats exchange (report POST → decoded
	// assignments) per cell per round, the BAI round-trip the paper's
	// control loop sits on.
	RoundLatency obs.Histogram
}

// WritePrometheus renders the tracker in Prometheus text format,
// prefixed flareload_.
func (t *Tracker) WritePrometheus(w io.Writer) error {
	rows := []struct {
		name string
		v    int64
	}{
		{"opens_total", t.Opens.Load()},
		{"open_errors_total", t.OpenErrors.Load()},
		{"rounds_total", t.Rounds.Load()},
		{"round_errors_total", t.RoundErrors.Load()},
		{"polls_total", t.Polls.Load()},
		{"poll_errors_total", t.PollErrors.Load()},
		{"closes_total", t.Closes.Load()},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "# TYPE flareload_%s counter\nflareload_%s %d\n", r.name, r.name, r.v); err != nil {
			return err
		}
	}
	return t.RoundLatency.WritePrometheus(w, "flareload_round_seconds")
}

// MetricsHandler serves the tracker at GET /metrics shape.
func MetricsHandler(t *Tracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = t.WritePrometheus(w)
	})
}

// Result is the summary of one run.
type Result struct {
	Cells           int     `json:"cells"`
	SessionsPerCell int     `json:"sessions_per_cell"`
	Sessions        int     `json:"sessions"`
	Rounds          int     `json:"rounds"`
	Batch           bool    `json:"batch,omitempty"`
	OpenedSessions  int64   `json:"opened_sessions"`
	OpenErrors      int64   `json:"open_errors,omitempty"`
	OpenSeconds     float64 `json:"open_seconds"`
	SessionsPerSec  float64 `json:"sessions_per_sec"`
	RoundsTotal     int64   `json:"rounds_total"`
	RoundErrors     int64   `json:"round_errors,omitempty"`
	Polls           int64   `json:"polls"`
	PollErrors      int64   `json:"poll_errors,omitempty"`
	RoundSeconds    float64 `json:"round_phase_seconds"`
	RoundsPerSec    float64 `json:"rounds_per_sec"`
	P50Seconds      float64 `json:"p50_seconds"`
	P95Seconds      float64 `json:"p95_seconds"`
	P99Seconds      float64 `json:"p99_seconds"`
}

// DefaultTransport returns an http.Client tuned for driving one host at
// high concurrency: Go's default 2 idle connections per host would
// reconnect per request at load-test fan-out.
func DefaultTransport(concurrency int) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        concurrency + 64,
		MaxIdleConnsPerHost: concurrency + 64,
		IdleConnTimeout:     90 * time.Second,
	}
	return &http.Client{Transport: tr}
}

// cellWorker is one synthetic eNodeB plus its plugin population.
type cellWorker struct {
	cellID  int
	clients []*oneapi.Client
	flows   []int
	ladder  []float64
}

// Run executes one load scenario and returns its summary. tr may be nil
// (a private tracker is used); pass one to export live /metrics during
// the run.
func Run(cfg Config, tr *Tracker) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if tr == nil {
		tr = &Tracker{}
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = DefaultTransport(cfg.Cells)
	}
	ladder := cfg.Ladder
	if ladder == nil {
		ladder = has.SimLadder()
	}

	workers := make([]*cellWorker, cfg.Cells)
	for c := range workers {
		cellID := cfg.FirstCell + c
		w := &cellWorker{cellID: cellID, ladder: ladder}
		for i := 0; i < cfg.SessionsPerCell; i++ {
			flowID := cellID*cfg.SessionsPerCell + i
			w.flows = append(w.flows, flowID)
			w.clients = append(w.clients, oneapi.NewClient(cfg.BaseURL, cellID, flowID, httpc))
		}
		workers[c] = w
	}

	// Phase 1 — session storm: every cell opens its whole population
	// concurrently. Opens/sec over this phase is the sustained
	// session-establishment rate.
	openStart := time.Now()
	forEach(workers, func(w *cellWorker) {
		for _, cl := range w.clients {
			if err := cl.Open(has.Ladder(w.ladder), core.Preferences{}); err != nil {
				tr.OpenErrors.Add(1)
				continue
			}
			tr.Opens.Add(1)
		}
	})
	openSeconds := time.Since(openStart).Seconds()

	// Phase 2 — BAI rounds: per round, each cell's eNodeB reports stats
	// (timed: this is the BAI round-trip) and its plugins poll.
	roundStart := time.Now()
	if cfg.Batch {
		runBatchRounds(cfg, httpc, workers, tr)
	} else {
		forEach(workers, func(w *cellWorker) {
			for r := 1; r <= cfg.Rounds; r++ {
				w.round(cfg, httpc, tr, r)
				if cfg.Interval > 0 {
					time.Sleep(cfg.Interval)
				}
			}
		})
	}
	roundSeconds := time.Since(roundStart).Seconds()

	res := Result{
		Cells:           cfg.Cells,
		SessionsPerCell: cfg.SessionsPerCell,
		Sessions:        cfg.Cells * cfg.SessionsPerCell,
		Rounds:          cfg.Rounds,
		Batch:           cfg.Batch,
		OpenedSessions:  tr.Opens.Load(),
		OpenErrors:      tr.OpenErrors.Load(),
		OpenSeconds:     openSeconds,
		RoundsTotal:     tr.Rounds.Load(),
		RoundErrors:     tr.RoundErrors.Load(),
		Polls:           tr.Polls.Load(),
		PollErrors:      tr.PollErrors.Load(),
		RoundSeconds:    roundSeconds,
		P50Seconds:      tr.RoundLatency.Quantile(0.50),
		P95Seconds:      tr.RoundLatency.Quantile(0.95),
		P99Seconds:      tr.RoundLatency.Quantile(0.99),
	}
	if openSeconds > 0 {
		res.SessionsPerSec = float64(res.OpenedSessions) / openSeconds
	}
	if roundSeconds > 0 {
		res.RoundsPerSec = float64(res.RoundsTotal) / roundSeconds
	}
	return res, nil
}

// round drives one BAI round for one cell: timed stats report, churn
// step, then the plugin polls.
func (w *cellWorker) round(cfg Config, httpc *http.Client, tr *Tracker, r int) {
	report := w.report(r)
	t0 := time.Now()
	_, err := oneapi.ReportStatsContext(context.Background(), httpc, cfg.BaseURL, w.cellID, report)
	tr.RoundLatency.Observe(time.Since(t0).Nanoseconds())
	tr.Rounds.Add(1)
	if err != nil {
		var enforceErr *oneapi.EnforceError
		if !errors.As(err, &enforceErr) {
			tr.RoundErrors.Add(1)
		}
	}
	w.churn(cfg, tr, r)
	for _, cl := range w.clients {
		tr.Polls.Add(1)
		if _, _, err := cl.Poll(); err != nil {
			tr.PollErrors.Add(1)
		}
	}
}

// churn closes and immediately re-opens one rotating session, so the
// open/close path stays hot during the round phase.
func (w *cellWorker) churn(cfg Config, tr *Tracker, r int) {
	if cfg.ChurnEvery <= 0 || r%cfg.ChurnEvery != 0 {
		return
	}
	i := (r / cfg.ChurnEvery) % len(w.clients)
	cl := w.clients[i]
	if err := cl.Close(); err == nil {
		tr.Closes.Add(1)
	}
	if err := cl.Open(has.Ladder(w.ladder), core.Preferences{}); err != nil {
		tr.OpenErrors.Add(1)
	} else {
		tr.Opens.Add(1)
	}
}

// report builds the cell's synthetic radio accounting for round r:
// per-flow bytes/RBs derived from flow and round indices, so the
// request stream is deterministic (and each flow's numbers vary round
// to round like a live cell's would).
func (w *cellWorker) report(r int) oneapi.StatsReport {
	flows := make(map[int]core.FlowStats, len(w.flows))
	for _, f := range w.flows {
		flows[f] = core.FlowStats{
			Bytes: int64(400_000 + (f*31+r*17_001)%200_000),
			RBs:   int64(6_000 + (f*13+r*7_001)%6_000),
		}
	}
	return oneapi.StatsReport{Flows: flows, NumDataFlows: 0, Seq: int64(r)}
}

// runBatchRounds drives the stats path through the batch endpoint: one
// aggregation site reports every cell per round (the whole batch POST
// is one observation — the fan-out happens server-side), while polls
// still fan out per cell.
func runBatchRounds(cfg Config, httpc *http.Client, workers []*cellWorker, tr *Tracker) {
	for r := 1; r <= cfg.Rounds; r++ {
		reports := make([]oneapi.CellReport, len(workers))
		for i, w := range workers {
			reports[i] = oneapi.CellReport{CellID: w.cellID, Report: w.report(r)}
		}
		t0 := time.Now()
		resp, err := oneapi.ReportStatsBatch(context.Background(), httpc, cfg.BaseURL, reports)
		tr.RoundLatency.Observe(time.Since(t0).Nanoseconds())
		tr.Rounds.Add(int64(len(workers)))
		if err != nil {
			tr.RoundErrors.Add(int64(len(workers)))
		} else {
			for _, res := range resp.Results {
				if res.Code != "" {
					tr.RoundErrors.Add(1)
				}
			}
		}
		forEach(workers, func(w *cellWorker) {
			w.churn(cfg, tr, r)
			for _, cl := range w.clients {
				tr.Polls.Add(1)
				if _, _, err := cl.Poll(); err != nil {
					tr.PollErrors.Add(1)
				}
			}
		})
		if cfg.Interval > 0 {
			time.Sleep(cfg.Interval)
		}
	}
}

// forEach runs fn per worker concurrently and waits for all.
func forEach(workers []*cellWorker, fn func(*cellWorker)) {
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *cellWorker) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
