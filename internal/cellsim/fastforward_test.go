package cellsim

import (
	"reflect"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/metrics"
)

// The fast-forward equivalence gate: the quiescence-aware kernel must
// produce byte-identical results to the naive TTI-by-TTI loop for every
// scheme, every channel model, mixed-scheme cells, fault injection, and
// series collection. Any divergence means a skipped TTI was not
// actually dead — a determinism bug, not a tolerance issue, so the
// comparisons are exact.

// runBothLoops executes cfg once per loop flavour and returns
// (naive, fast) results with wall-clock noise stripped.
func runBothLoops(t *testing.T, cfg Config) (*Result, *Result) {
	t.Helper()
	naiveCfg := cfg
	naiveCfg.DisableFastForward = true
	fastCfg := cfg
	fastCfg.DisableFastForward = false

	naive, err := Run(naiveCfg)
	if err != nil {
		t.Fatalf("naive run: %v", err)
	}
	fast, err := Run(fastCfg)
	if err != nil {
		t.Fatalf("fast run: %v", err)
	}
	return stripWallClock(naive), stripWallClock(fast)
}

// seriesPoints flattens a slice of time series for exact comparison.
func seriesPoints(ss []*metrics.TimeSeries) [][]metrics.Point {
	out := make([][]metrics.Point, len(ss))
	for i, s := range ss {
		out[i] = s.Points()
	}
	return out
}

func assertIdentical(t *testing.T, name string, naive, fast *Result) {
	t.Helper()
	if len(naive.SolveTimesSec) != len(fast.SolveTimesSec) {
		t.Fatalf("%s: BAI counts diverged: naive %d, fast %d",
			name, len(naive.SolveTimesSec), len(fast.SolveTimesSec))
	}
	if !reflect.DeepEqual(seriesPoints(naive.VideoRateSeries), seriesPoints(fast.VideoRateSeries)) ||
		!reflect.DeepEqual(seriesPoints(naive.BufferSeries), seriesPoints(fast.BufferSeries)) ||
		!reflect.DeepEqual(seriesPoints(naive.DataTputSeries), seriesPoints(fast.DataTputSeries)) {
		t.Fatalf("%s: time series diverged between naive and fast-forward loops", name)
	}
	// Series compared above; the structs hold pointers, so blank them
	// for the DeepEqual over everything else.
	n, f := *naive, *fast
	n.VideoRateSeries, f.VideoRateSeries = nil, nil
	n.BufferSeries, f.BufferSeries = nil, nil
	n.DataTputSeries, f.DataTputSeries = nil, nil
	if !reflect.DeepEqual(&n, &f) {
		t.Fatalf("%s: fast-forward diverged from naive loop:\nnaive %+v\nfast  %+v", name, naive, fast)
	}
}

// TestFastForwardEquivalenceAllSchemes pins every scheme on the golden
// scenario (cyclic channel, video + data + legacy populations).
func TestFastForwardEquivalenceAllSchemes(t *testing.T) {
	for _, scheme := range []Scheme{
		SchemeFLARE, SchemeFESTIVE, SchemeGOOGLE, SchemeAVIS, SchemeBBA, SchemeMPC,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			cfg := goldenConfig(scheme)
			naive, fast := runBothLoops(t, cfg)
			assertIdentical(t, scheme.String(), naive, fast)
		})
	}
}

// TestFastForwardEquivalenceStaticIdleCell is the scenario with the most
// dead air (static channel, no data flows): the fast loop skips the
// most TTIs here, so it is the strongest exercise of the idle replay.
func TestFastForwardEquivalenceStaticIdleCell(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 0)
	cfg.Duration = 180 * time.Second
	naive, fast := runBothLoops(t, cfg)
	assertIdentical(t, "static-idle", naive, fast)
}

// TestFastForwardEquivalenceMobility covers the stateful channel: the
// random-waypoint walk consumes RNG at every position step, so the
// catch-up path must replay exactly the draws the naive loop makes.
func TestFastForwardEquivalenceMobility(t *testing.T) {
	cfg := quickConfig(SchemeFESTIVE, 2, 1)
	cfg.Duration = 90 * time.Second
	mob := lte.DefaultMobilityConfig(0) // NumUEs overridden by the engine
	cfg.Channel = ChannelSpec{Kind: ChannelMobility, Mobility: mob}
	naive, fast := runBothLoops(t, cfg)
	assertIdentical(t, "mobility", naive, fast)
}

// TestFastForwardEquivalenceMixedCell covers multi-group cells: two
// schemes with different control ticks sharing one radio.
func TestFastForwardEquivalenceMixedCell(t *testing.T) {
	cfg := mixedConfig(2, 2)
	cfg.Duration = 90 * time.Second
	naive, fast := runBothLoops(t, cfg)
	assertIdentical(t, "mixed", naive, fast)
}

// TestFastForwardEquivalenceFaults covers control-plane fault injection,
// whose injectors draw from their own streams at BAI boundaries.
func TestFastForwardEquivalenceFaults(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 1)
	cfg.Duration = 90 * time.Second
	cfg.ControlFaults = faults.Config{
		Seed:     7,
		DropRate: 0.4,
		Blackouts: []faults.Window{
			{From: 30 * time.Second, To: 50 * time.Second},
		},
	}
	naive, fast := runBothLoops(t, cfg)
	assertIdentical(t, "faults", naive, fast)
	if fast.ControlPlane.ReportsLost == 0 {
		t.Fatal("fault scenario lost no reports; test is not exercising the injectors")
	}
}

// TestFastForwardEquivalenceSeries runs with series collection on, so
// sample ticks are wake points and every per-second sample must land on
// the same TTI in both loops.
func TestFastForwardEquivalenceSeries(t *testing.T) {
	cfg := goldenConfig(SchemeFLARE)
	cfg.CollectSeries = true
	naive, fast := runBothLoops(t, cfg)
	assertIdentical(t, "series", naive, fast)
	if len(fast.VideoRateSeries) == 0 || fast.VideoRateSeries[0].Len() == 0 {
		t.Fatal("series scenario collected nothing")
	}
}
