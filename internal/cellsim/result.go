package cellsim

import (
	"github.com/flare-sim/flare/internal/cellsim/driver"
	"github.com/flare-sim/flare/internal/metrics"
)

// ClientResult is one video client's outcome over a run.
type ClientResult struct {
	// FlowID is the client's bearer ID.
	FlowID int
	// Scheme is the rate-adaptation system that ran this client — in
	// mixed-scheme cells (Config.VideoGroups) clients of different
	// schemes share the Clients slice and this field attributes them.
	Scheme Scheme
	// AvgRateBps is the mean encoding bitrate over downloaded segments
	// — the paper's "average video rate".
	AvgRateBps float64
	// AvgTputBps is the mean delivered (transmitted) rate over the run
	// — the basis of the paper's Jain index "for actually transmitted
	// bitrates".
	AvgTputBps float64
	// NumChanges is the number of bitrate switches between consecutive
	// segments.
	NumChanges int
	// Segments is the number of completed segment downloads.
	Segments int
	// StallSeconds is the total rebuffering time after playback start.
	StallSeconds float64
	// StallCount is the number of rebuffering events.
	StallCount int
	// StartupDelaySeconds is the time from session start to first
	// playback (-1 if playback never started).
	StartupDelaySeconds float64
	// QoEScore is the composite per-segment QoE (see internal/qoe) with
	// default weights.
	QoEScore float64
	// FallbackTransitions counts the FLARE plugin's coordination-mode
	// switches (degradations to local ABR plus recoveries); 0 for
	// non-FLARE schemes and for fault-free runs.
	FallbackTransitions int
	// FallbackIntervals counts control-plane intervals (BAIs) the
	// plugin spent degraded to its local ABR.
	FallbackIntervals int
	// Admitted reports whether the flow's session was admitted by the
	// network control plane. Always true except under FLARE admission
	// control, where a refused flow plays out on its local ABR.
	Admitted bool
	// StallSecondsPreAdmit is the portion of StallSeconds accrued before
	// the session was admitted (plus a short settling window after a
	// mid-stream admission): starvation from the unadmitted local-ABR
	// period. StallSeconds - StallSecondsPreAdmit is the rebuffering the
	// coordinated plane is answerable for. Zero without admission
	// control.
	StallSecondsPreAdmit float64
}

// ControlPlaneStats aggregates control-plane fault activity over a run
// (schemes with a network control plane only; all zero for fault-free
// runs). It is the driver layer's ControlStats, re-exported so existing
// callers keep compiling.
type ControlPlaneStats = driver.ControlStats

// DataResult is one data flow's outcome.
type DataResult struct {
	// FlowID is the flow's bearer ID.
	FlowID int
	// AvgTputBps is the mean delivered rate over the run.
	AvgTputBps float64
}

// Result is the complete outcome of one simulation run.
type Result struct {
	// Scheme echoes the system under test.
	Scheme Scheme
	// Clients holds the per-video-client outcomes, in flow-ID order.
	Clients []ClientResult
	// Data holds the per-data-flow outcomes.
	Data []DataResult
	// Legacy holds the outcomes of non-coordinated conventional HAS
	// players (the Section V coexistence deployment).
	Legacy []ClientResult
	// SolveTimesSec are the FLARE optimiser wall times per BAI
	// (empty for the other schemes) — the Figure 9 measurement.
	SolveTimesSec []float64
	// ControlPlane summarises injected control-plane fault activity.
	ControlPlane ControlPlaneStats

	// Per-flow time series, populated when Config.CollectSeries is set:
	// selected video rate (bps), playout buffer (s), and data flow
	// throughput (bps), sampled every SampleEvery.
	VideoRateSeries []*metrics.TimeSeries
	BufferSeries    []*metrics.TimeSeries
	DataTputSeries  []*metrics.TimeSeries
}

// ClientsByScheme returns the clients that ran under the given scheme,
// in flow-ID order — the per-group view of a mixed-scheme cell.
func (r *Result) ClientsByScheme(s Scheme) []ClientResult {
	var out []ClientResult
	for _, c := range r.Clients {
		if c.Scheme == s {
			out = append(out, c)
		}
	}
	return out
}

// AvgRates returns the per-client average bitrates (for CDFs and Jain).
func (r *Result) AvgRates() []float64 {
	out := make([]float64, len(r.Clients))
	for i, c := range r.Clients {
		out[i] = c.AvgRateBps
	}
	return out
}

// AvgTputs returns the per-client transmitted rates.
func (r *Result) AvgTputs() []float64 {
	out := make([]float64, len(r.Clients))
	for i, c := range r.Clients {
		out[i] = c.AvgTputBps
	}
	return out
}

// Changes returns the per-client bitrate-change counts.
func (r *Result) Changes() []float64 {
	out := make([]float64, len(r.Clients))
	for i, c := range r.Clients {
		out[i] = float64(c.NumChanges)
	}
	return out
}

// DataTputs returns the per-data-flow throughputs.
func (r *Result) DataTputs() []float64 {
	out := make([]float64, len(r.Data))
	for i, d := range r.Data {
		out[i] = d.AvgTputBps
	}
	return out
}

// TotalStallSeconds sums rebuffering time across clients.
func (r *Result) TotalStallSeconds() float64 {
	var s float64
	for _, c := range r.Clients {
		s += c.StallSeconds
	}
	return s
}

// MeanClientRate returns the across-client mean of AvgRateBps.
func (r *Result) MeanClientRate() float64 {
	return metrics.Mean(r.AvgRates())
}

// MeanChanges returns the across-client mean switch count.
func (r *Result) MeanChanges() float64 {
	return metrics.Mean(r.Changes())
}

// JainOfTputs returns Jain's fairness index over the transmitted rates.
func (r *Result) JainOfTputs() float64 {
	return metrics.JainIndex(r.AvgTputs())
}

// JainOfRates returns Jain's fairness index over the average video rates.
func (r *Result) JainOfRates() float64 {
	return metrics.JainIndex(r.AvgRates())
}

// MeanQoE returns the across-client mean QoE score.
func (r *Result) MeanQoE() float64 {
	scores := make([]float64, len(r.Clients))
	for i, c := range r.Clients {
		scores[i] = c.QoEScore
	}
	return metrics.Mean(scores)
}

// TotalFallbackTransitions sums coordination-mode switches across
// clients.
func (r *Result) TotalFallbackTransitions() int {
	var n int
	for _, c := range r.Clients {
		n += c.FallbackTransitions
	}
	return n
}
