package cellsim

import (
	"reflect"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/faults"
)

// stripWallClock drops the one legitimately non-deterministic field —
// measured optimiser wall times — so results can be compared exactly.
func stripWallClock(r *Result) *Result {
	c := *r
	c.SolveTimesSec = nil
	return &c
}

// TestZeroFaultConfigLeavesRunsByteIdentical is the determinism gate:
// wiring the fault-injection machinery in (with a seed but no enabled
// faults) must leave every result field — per-client metrics, solve
// times, RNG-stream-dependent outcomes — identical to a plain run.
func TestZeroFaultConfigLeavesRunsByteIdentical(t *testing.T) {
	plain := quickConfig(SchemeFLARE, 3, 1)
	plain.Duration = 90 * time.Second

	wired := plain
	wired.ControlFaults = faults.Config{Seed: 12345} // seeded but disabled

	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(wired)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SolveTimesSec) != len(b.SolveTimesSec) {
		t.Fatalf("BAI counts diverged: %d vs %d", len(a.SolveTimesSec), len(b.SolveTimesSec))
	}
	if !reflect.DeepEqual(stripWallClock(a), stripWallClock(b)) {
		t.Fatalf("disabled fault config perturbed the run:\nplain %+v\nwired %+v", a, b)
	}
	if a.ControlPlane != (ControlPlaneStats{}) {
		t.Fatalf("fault-free run reported control-plane activity: %+v", a.ControlPlane)
	}
	if n := a.TotalFallbackTransitions(); n != 0 {
		t.Fatalf("fault-free run saw %d fallback transitions", n)
	}
}

// TestFaultRunsAreDeterministic: the injectors own seeded streams, so a
// heavily faulted run replays exactly.
func TestFaultRunsAreDeterministic(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 1)
	cfg.Duration = 90 * time.Second
	cfg.ControlFaults = faults.Config{
		Seed:     7,
		DropRate: 0.4,
		Blackouts: []faults.Window{
			{From: 30 * time.Second, To: 50 * time.Second},
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWallClock(a), stripWallClock(b)) {
		t.Fatal("faulted run is not reproducible for a fixed seed")
	}
	if a.ControlPlane.ReportsLost == 0 || a.ControlPlane.PollsLost == 0 {
		t.Fatalf("expected control-plane losses, got %+v", a.ControlPlane)
	}
}

// TestFLAREBlackoutDegradesAndRecovers drives a full control-plane
// blackout through the middle of a run: every plugin must degrade to its
// local ABR within K failed polls, keep streaming without stalling on
// the dead assignment, and rejoin coordination when the plane returns.
func TestFLAREBlackoutDegradesAndRecovers(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 1)
	cfg.Duration = 180 * time.Second
	cfg.ControlFaults = faults.Config{
		Seed: 1,
		Blackouts: []faults.Window{
			{From: 60 * time.Second, To: 110 * time.Second},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		// Degrade once, recover once — at minimum.
		if c.FallbackTransitions < 2 {
			t.Errorf("client %d made %d mode transitions through a 50 s blackout",
				c.FlowID, c.FallbackTransitions)
		}
		if c.FallbackIntervals == 0 {
			t.Errorf("client %d spent no intervals degraded", c.FlowID)
		}
		// The data plane is untouched; degraded sessions must not stall.
		if c.StallSeconds > 0 {
			t.Errorf("client %d stalled %.1f s during the blackout", c.FlowID, c.StallSeconds)
		}
		if c.AvgRateBps < 200_000 {
			t.Errorf("client %d collapsed to %.0f bps", c.FlowID, c.AvgRateBps)
		}
	}
	// The blackout covers ~25 of ~90 BAIs: both legs must record losses.
	if res.ControlPlane.ReportsLost < 20 || res.ControlPlane.PollsLost < 60 {
		t.Fatalf("blackout barely registered: %+v", res.ControlPlane)
	}
	// No BAI ran inside the window.
	expected := cfg.Duration.Seconds() / cfg.Flare.BAI.Seconds()
	if got := float64(len(res.SolveTimesSec)); got >= expected {
		t.Fatalf("solved %v BAIs despite a blackout (max %v)", got, expected)
	}
}

// TestFLAREHeavyLossNeverStalls sweeps the ISSUE's ≥30% loss floor well
// past it: at 50% symmetric control-plane loss sessions must complete,
// fall back rather than freeze, and keep a useful rate.
func TestFLAREHeavyLossNeverStalls(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 1)
	cfg.Duration = 180 * time.Second
	cfg.ControlFaults = faults.Config{Seed: 3, DropRate: 0.5}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		if c.Segments == 0 {
			t.Fatalf("client %d downloaded nothing", c.FlowID)
		}
		if c.StallSeconds > 5 {
			t.Errorf("client %d stalled %.1f s at 50%% control loss", c.FlowID, c.StallSeconds)
		}
		if c.AvgRateBps < 200_000 {
			t.Errorf("client %d collapsed to %.0f bps", c.FlowID, c.AvgRateBps)
		}
	}
	// With p=0.5 per poll over ~90 intervals, runs of K=3 losses are
	// near-certain: the fallback machinery must have engaged somewhere.
	if res.TotalFallbackTransitions() == 0 {
		t.Fatal("no plugin ever fell back at 50% poll loss")
	}
	if res.ControlPlane.PollsLost == 0 || res.ControlPlane.ReportsLost == 0 {
		t.Fatalf("injector recorded no losses: %+v", res.ControlPlane)
	}
}

// TestLegacyStatsLossKnobStillWorks guards the pre-injector knob's RNG
// semantics alongside the new machinery.
func TestLegacyStatsLossKnobStillWorks(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 2, 0)
	cfg.Duration = 90 * time.Second
	cfg.StatsLossRate = 0.5
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ControlPlane.ReportsLost == 0 {
		t.Fatal("legacy stats loss not surfaced in ControlPlaneStats")
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWallClock(a), stripWallClock(b)) {
		t.Fatal("legacy knob broke determinism")
	}
}
