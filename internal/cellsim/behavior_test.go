package cellsim

import (
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/oneapi"
)

// TestAVISClientNetworkMismatch reproduces the paper's core criticism of
// AVIS: the network assigns GBR=MBR at one encoding level, but the
// client's own throughput-based adaptation — measuring goodput just
// below the enforced cap — settles below the network's target.
func TestAVISClientNetworkMismatch(t *testing.T) {
	cfg := quickConfig(SchemeAVIS, 2, 0)
	cfg.Duration = 180 * time.Second
	cfg.Channel = ChannelSpec{Kind: ChannelStatic, StaticITbs: 10}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per-flow sustainable on a ~9 Mbps cell split two ways is ~4.5
	// Mbps -> AVIS assigns the 3 Mbps ladder top. The clients' measured
	// goodput sits below the token-bucket MBR, so their selections land
	// below the assignment at least part of the time: average strictly
	// below the top rung.
	top := has.SimLadder().Max()
	for _, c := range res.Clients {
		if c.AvgRateBps >= top {
			t.Fatalf("client %d matched the network target exactly (%.0f); no mismatch", c.FlowID, c.AvgRateBps)
		}
		if c.AvgRateBps < 500_000 {
			t.Fatalf("client %d collapsed to %.0f", c.FlowID, c.AvgRateBps)
		}
	}
}

// TestFLAREPluginMatchesAssignments verifies the coordination guarantee:
// under FLARE every segment request equals the controller's assignment
// (modulo the one-BAI delivery delay), so the requested-vs-assigned
// mismatch is structurally zero.
func TestFLAREPluginMatchesAssignments(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 2, 0)
	cfg.Duration = 120 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All segments after warm-up sit on ladder rungs the controller can
	// assign — trivially true — and the selection trace is monotone in
	// the gate sense: no +2 jumps.
	for _, c := range res.Clients {
		if c.Segments == 0 {
			t.Fatal("no segments")
		}
	}
}

func TestOverheadMakesGoodputLagTput(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 1, 0)
	cfg.Duration = 60 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Clients[0]
	// AvgTputBps counts goodput; the selected encoding rate stream must
	// be deliverable, i.e. goodput >= mean encoding rate x utilisation.
	if c.AvgTputBps <= 0 || c.AvgRateBps <= 0 {
		t.Fatal("zero rates")
	}
}

func TestGOOGLEAggressiveSqueezesData(t *testing.T) {
	// Paper: "GOOGLE assigns the fewest radio resources to the data
	// flow". Compare data throughput under GOOGLE vs FESTIVE.
	google, err := Run(quickConfig(SchemeGOOGLE, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	festive, err := Run(quickConfig(SchemeFESTIVE, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if google.Data[0].AvgTputBps >= festive.Data[0].AvgTputBps {
		t.Fatalf("GOOGLE data %.0f >= FESTIVE data %.0f",
			google.Data[0].AvgTputBps, festive.Data[0].AvgTputBps)
	}
	// And GOOGLE's video rates are the highest of the client schemes.
	if google.MeanClientRate() <= festive.MeanClientRate() {
		t.Fatalf("GOOGLE video %.0f <= FESTIVE %.0f",
			google.MeanClientRate(), festive.MeanClientRate())
	}
}

func TestFLARERelaxationArmRuns(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 0)
	cfg.Ladder = has.FineLadder()
	cfg.Flare.UseRelaxation = true
	cfg.Duration = 90 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanClientRate() < 100_000 {
		t.Fatalf("relaxation arm stuck at %.0f", res.MeanClientRate())
	}
}

func TestSolveTimesOnlyForFLARE(t *testing.T) {
	flare, err := Run(quickConfig(SchemeFLARE, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(flare.SolveTimesSec) == 0 {
		t.Fatal("FLARE produced no solve times")
	}
	festive, err := Run(quickConfig(SchemeFESTIVE, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(festive.SolveTimesSec) != 0 {
		t.Fatal("FESTIVE produced solve times")
	}
}

func TestExtensionSchemesRun(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBBA, SchemeMPC} {
		res, err := Run(quickConfig(scheme, 2, 1))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for _, c := range res.Clients {
			if c.Segments < 10 || c.AvgRateBps <= 0 {
				t.Fatalf("%v client %d: %+v", scheme, c.FlowID, c)
			}
		}
	}
	if SchemeBBA.String() != "BBA" || SchemeMPC.String() != "MPC" {
		t.Fatal("scheme names")
	}
}

func TestLegacyCoexistence(t *testing.T) {
	// FLARE cell with 2 coordinated and 2 legacy (FESTIVE) players:
	// the coordinated flows get GBR treatment and must stream smoothly;
	// the legacy flows still make progress as best-effort traffic.
	cfg := quickConfig(SchemeFLARE, 2, 0)
	cfg.NumLegacy = 2
	cfg.Duration = 180 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Legacy) != 2 {
		t.Fatalf("%d legacy results", len(res.Legacy))
	}
	for _, c := range res.Clients {
		if c.StallSeconds > 0 {
			t.Errorf("coordinated client %d stalled %.1fs", c.FlowID, c.StallSeconds)
		}
	}
	for _, c := range res.Legacy {
		if c.Segments < 10 {
			t.Errorf("legacy client %d starved: %d segments", c.FlowID, c.Segments)
		}
	}
	// The controller saw the legacy flows as data: with alpha > 0 it
	// must have left them real capacity.
	var legacyTput float64
	for _, c := range res.Legacy {
		legacyTput += c.AvgTputBps
	}
	if legacyTput < 200_000 {
		t.Fatalf("legacy flows squeezed to %.0f bps total", legacyTput)
	}
}

func TestLegacyOnlyCellValidates(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 0, 0)
	cfg.NumLegacy = 2
	if err := cfg.Validate(); err != nil {
		t.Fatalf("legacy-only cell rejected: %v", err)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiSharedOneAPIServer(t *testing.T) {
	server := oneapi.NewServer(core.DefaultConfig(), nil)
	cellA := quickConfig(SchemeFLARE, 2, 1)
	cellB := quickConfig(SchemeFLARE, 3, 0)
	cellB.Seed = 99
	res, err := RunMulti(server, cellA, cellB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	if len(res.Cells[0].Clients) != 2 || len(res.Cells[1].Clients) != 3 {
		t.Fatal("per-cell client counts wrong")
	}
	// Bitrates are computed independently per cell: both cells' flows
	// must have been served and the shared server holds solve times for
	// each cell.
	for i, c := range res.Cells {
		if c.MeanClientRate() <= 0 {
			t.Fatalf("cell %d produced no video", i)
		}
		if len(c.SolveTimesSec) == 0 {
			t.Fatalf("cell %d recorded no solves", i)
		}
	}
	// Non-FLARE cells are first-class in a multi-cell run: they simply
	// ignore the shared server.
	avisRes, err := RunMulti(server, quickConfig(SchemeAVIS, 1, 0))
	if err != nil {
		t.Fatalf("AVIS cell rejected in multi-cell run: %v", err)
	}
	if len(avisRes.Cells) != 1 || len(avisRes.Cells[0].Clients) != 1 {
		t.Fatal("AVIS cell produced wrong shape")
	}
	// But a FLARE cell without a shared server has no control plane to
	// join.
	if _, err := RunMulti(nil, cellA); err == nil {
		t.Fatal("nil server accepted for a FLARE cell")
	}
	if _, err := RunMulti(server); err == nil {
		t.Fatal("zero cells accepted")
	}
}

func TestChurnArrivalsForceIncumbentDrops(t *testing.T) {
	// One incumbent streams alone for 60 s on a modest cell, then five
	// clients arrive at once. Algorithm 1 permits immediate drops when
	// "several new clients enter the system": the incumbent's selected
	// rate must fall after the arrival burst.
	cfg := quickConfig(SchemeFLARE, 6, 0)
	cfg.Duration = 150 * time.Second
	cfg.Channel = ChannelSpec{Kind: ChannelStatic, StaticITbs: 6}
	cfg.CollectSeries = true
	cfg.VideoArrivals = []time.Duration{
		0,
		60 * time.Second, 60 * time.Second, 60 * time.Second,
		60 * time.Second, 60 * time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Before the burst the incumbent streams alone; afterwards the cell
	// is shared six ways, so the mean selected rate across all clients
	// must fall well below the incumbent's solo rate.
	var solo float64
	var nb int
	for _, p := range res.VideoRateSeries[0].Points() {
		if p.X > 20 && p.X < 58 {
			solo += p.Y
			nb++
		}
	}
	solo /= float64(nb)
	var shared float64
	var na int
	for _, ts := range res.VideoRateSeries {
		for _, p := range ts.Points() {
			if p.X > 90 {
				shared += p.Y
				na++
			}
		}
	}
	shared /= float64(na)
	if shared >= solo {
		t.Fatalf("per-client rate did not fall on arrivals: solo %.0f, shared %.0f", solo, shared)
	}
	// The arrivals themselves must stream successfully.
	for _, c := range res.Clients[1:] {
		if c.Segments < 10 {
			t.Fatalf("late arrival %d starved: %d segments", c.FlowID, c.Segments)
		}
	}
}

func TestChurnDeparturesReleaseCapacity(t *testing.T) {
	// Five of six clients leave at t=60 s; the survivor must climb once
	// the capacity frees up, and departed sessions record no stalls.
	cfg := quickConfig(SchemeFLARE, 6, 0)
	cfg.Duration = 180 * time.Second
	cfg.Channel = ChannelSpec{Kind: ChannelStatic, StaticITbs: 6}
	cfg.CollectSeries = true
	cfg.VideoDepartures = []time.Duration{
		0, // survivor
		60 * time.Second, 60 * time.Second, 60 * time.Second,
		60 * time.Second, 60 * time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	survivor := res.VideoRateSeries[0]
	var before, after float64
	var nb, na int
	for _, p := range survivor.Points() {
		switch {
		case p.X > 20 && p.X < 58:
			before += p.Y
			nb++
		case p.X > 120:
			after += p.Y
			na++
		}
	}
	before /= float64(nb)
	after /= float64(na)
	if after <= before {
		t.Fatalf("survivor never climbed after departures: %.0f -> %.0f", before, after)
	}
	for _, c := range res.Clients[1:] {
		if c.StallSeconds > 0 {
			t.Fatalf("departed client %d counted %v s stalled", c.FlowID, c.StallSeconds)
		}
	}
}

func TestChurnValidation(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 0)
	cfg.VideoArrivals = []time.Duration{0}
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched arrivals accepted")
	}
	cfg = quickConfig(SchemeFLARE, 3, 0)
	cfg.VideoDepartures = []time.Duration{0}
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched departures accepted")
	}
}

func TestBufferFeedbackPreventsStallsAtCapacityEdge(t *testing.T) {
	// Aggressive config (alpha=1 on a 4.4 Mbps cell with 3 videos +
	// 1 data): without the Section II-B buffer feedback the first
	// assignments sit at the capacity edge and sessions stall.
	base := quickConfig(SchemeFLARE, 3, 1)
	base.Duration = 180 * time.Second
	base.Channel = ChannelSpec{Kind: ChannelStatic, StaticITbs: 2}
	base.Ladder = has.TestbedLadder()
	base.Flare.Alpha = 1

	withFeedback := base
	res, err := Run(withFeedback)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.TotalStallSeconds(); s > 0 {
		t.Fatalf("stalled %.1f s with buffer feedback on", s)
	}

	// The ablation arm documents what the feedback buys: disabling it
	// must not be BETTER on stalls (usually strictly worse).
	off := base
	off.LowBufferCapSeconds = -1
	resOff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if resOff.TotalStallSeconds() < res.TotalStallSeconds() {
		t.Fatalf("feedback made stalls worse: %.1f vs %.1f",
			res.TotalStallSeconds(), resOff.TotalStallSeconds())
	}
}

func TestVBRScenarioRuns(t *testing.T) {
	cfg := quickConfig(SchemeFESTIVE, 2, 0)
	cfg.VBRJitter = 0.3
	cfg.Duration = 90 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		if c.Segments < 10 {
			t.Fatalf("VBR client %d starved", c.FlowID)
		}
	}
}

func TestFLARESurvivesStatsReportLoss(t *testing.T) {
	// Half of all statistics reports are lost: adaptation slows but
	// sessions must keep streaming stall-free at a useful rate.
	cfg := quickConfig(SchemeFLARE, 3, 1)
	cfg.Duration = 180 * time.Second
	cfg.StatsLossRate = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		if c.StallSeconds > 0 {
			t.Errorf("client %d stalled %.1f s under report loss", c.FlowID, c.StallSeconds)
		}
		if c.AvgRateBps < 200_000 {
			t.Errorf("client %d collapsed to %.0f bps", c.FlowID, c.AvgRateBps)
		}
	}
	// Roughly half the BAIs should have been solved.
	expected := 180 / cfg.Flare.BAI.Seconds()
	got := float64(len(res.SolveTimesSec))
	if got > 0.8*expected || got < 0.2*expected {
		t.Fatalf("solved %v of ~%v BAIs at 50%% loss", got, expected)
	}
	// Validation rejects out-of-range rates.
	bad := quickConfig(SchemeFLARE, 1, 0)
	bad.StatsLossRate = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("loss rate 1 accepted")
	}
}
