// Package cellsim is the integration layer of the reproduction: it wires
// a channel model, a scheduler, TCP flows, HAS players, and one of the
// rate-adaptation systems (FLARE, FESTIVE, GOOGLE, AVIS) into a single
// deterministic cell simulation, and extracts the QoE metrics the
// paper's evaluation reports.
package cellsim

import (
	"fmt"
	"time"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/avis"
	"github.com/flare-sim/flare/internal/cellsim/driver"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/transport"
)

// Scheme selects the rate-adaptation system under test.
type Scheme int

// The schemes the paper evaluates, plus two extension baselines from
// the client-side literature it cites (buffer-based adaptation and
// model-predictive control).
const (
	SchemeFLARE Scheme = iota + 1
	SchemeFESTIVE
	SchemeGOOGLE
	SchemeAVIS
	SchemeBBA
	SchemeMPC
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeFLARE:
		return "FLARE"
	case SchemeFESTIVE:
		return "FESTIVE"
	case SchemeGOOGLE:
		return "GOOGLE"
	case SchemeAVIS:
		return "AVIS"
	case SchemeBBA:
		return "BBA"
	case SchemeMPC:
		return "MPC"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// FlowGroup assigns a contiguous block of video clients to one scheme's
// driver, enabling mixed-scheme cells (e.g. FLARE-coordinated players
// sharing a cell with unmodified FESTIVE players, each first-class and
// attributed in the Result).
type FlowGroup struct {
	// Scheme is the rate-adaptation system running this group.
	Scheme Scheme
	// Count is the number of video clients in the group.
	Count int
}

// videoGroups normalises the configuration's video population into
// per-scheme groups: VideoGroups wins when set; otherwise the whole
// population runs Config.Scheme. A single empty group is kept even for
// zero video clients so the scheme's driver still shapes the cell
// (scheduler policy, control ticks over data-only populations).
func (c *Config) videoGroups() []FlowGroup {
	if len(c.VideoGroups) > 0 {
		out := make([]FlowGroup, len(c.VideoGroups))
		copy(out, c.VideoGroups)
		return out
	}
	return []FlowGroup{{Scheme: c.Scheme, Count: c.NumVideo}}
}

// totalCount sums the groups' client counts.
func totalCount(groups []FlowGroup) int {
	n := 0
	for _, g := range groups {
		n += g.Count
	}
	return n
}

// ChannelKind selects the link model.
type ChannelKind int

// Channel kinds.
const (
	ChannelStatic ChannelKind = iota + 1
	ChannelCyclic
	ChannelMobility
	ChannelTrace
)

// ChannelSpec describes the channel model for a scenario.
type ChannelSpec struct {
	Kind ChannelKind
	// StaticITbs is the per-UE MCS for ChannelStatic.
	StaticITbs int
	// CyclicMin/Max/Period parameterise ChannelCyclic; per-UE phase
	// offsets are spread evenly across the period, modelling the
	// paper's "each UE starts the cycle with a different offset".
	CyclicMin, CyclicMax int
	CyclicPeriod         time.Duration
	// Mobility parameterises ChannelMobility (NumUEs is overridden).
	Mobility lte.MobilityConfig
	// Traces are per-UE iTbs traces for ChannelTrace.
	Traces    [][]int
	TraceStep time.Duration
}

// Config describes one simulation run.
type Config struct {
	// Seed drives all randomness in the run.
	Seed uint64
	// Duration is the simulated time.
	Duration time.Duration
	// NumVideo and NumData are the flow populations (one UE each).
	NumVideo, NumData int
	// NumLegacy adds conventional (FESTIVE) HAS players that are NOT
	// FLARE-coordinated: the paper's Section V deployment story, where
	// unmodified players coexist by being "serviced like other data
	// traffic without any bitrate guarantees". Their flows ride
	// best-effort bearers and count as data flows at the PCRF.
	NumLegacy int
	// Ladder is the video encoding ladder.
	Ladder has.Ladder
	// SegmentDuration is the video segment length (Table III: 10 s).
	SegmentDuration time.Duration
	// VBRJitter sizes segments variably around the nominal encoding
	// rate (see has.MPD.SizeJitter). 0 = CBR.
	VBRJitter float64
	// StatsLossRate drops each BAI's statistics report with this
	// probability (control-plane failure injection: the OneAPI overlay
	// rides a real network, and a lost report must only delay
	// adaptation — installed GBRs and the last assignment persist).
	// This legacy knob draws from the simulation's primary RNG; prefer
	// ControlFaults, which owns independent streams.
	StatsLossRate float64
	// ControlFaults injects faults into the FLARE control plane: the
	// eNodeB's statistics reports and the plugins' assignment polls
	// each get an independent injector stream derived from
	// ControlFaults.Seed, so a zero configuration leaves runs
	// byte-identical to fault-free ones. Blackout windows take the
	// whole plane down (reports and polls) for their duration.
	ControlFaults faults.Config
	// Fallback parameterises the FLARE plugins' graceful degradation
	// (K failed polls / M-BAI-stale assignment → local ABR). The zero
	// value uses abr.DefaultFallbackConfig.
	Fallback abr.FallbackConfig
	// LowBufferCapSeconds is the FLARE plugin's buffer-feedback
	// threshold (Section II-B: "if the current amount of buffered video
	// is relatively small ... the client can specify an upper bound on
	// its bitrate to quickly fill the buffer"). While a player's buffer
	// sits below this level, its plugin caps the assignment one ladder
	// level below the current one so downloads outpace playback.
	// Negative disables; 0 uses the default (6 s).
	LowBufferCapSeconds float64
	// Scheme is the system under test. When VideoGroups is set it only
	// labels the Result; otherwise it runs the whole video population.
	Scheme Scheme
	// VideoGroups optionally splits the video population between several
	// schemes' drivers in one cell (a mixed-scheme deployment). When set
	// it overrides NumVideo (which, if non-zero, must equal the groups'
	// total). Flow IDs are assigned group by group, in order.
	VideoGroups []FlowGroup
	// Channel is the link model.
	Channel ChannelSpec

	// Flare configures the FLARE controller (BAI, alpha, delta, solver).
	Flare core.Config
	// Avis configures the AVIS allocator.
	Avis avis.Config
	// Festive and Google configure the client baselines.
	Festive abr.FestiveConfig
	Google  abr.GoogleConfig
	// Player configures the HAS player (buffer cap per the scenario).
	Player has.PlayerConfig
	// Transport configures the TCP model.
	Transport transport.Config

	// Churn, when enabled, *generates* the arrival/departure schedule:
	// Poisson arrivals with heavy-tailed (Pareto) durations, expanded
	// deterministically from Seed into VideoArrivals/VideoDepartures/
	// NumVideo at build time. Incompatible with setting those fields
	// explicitly and with VideoGroups.
	Churn ChurnConfig

	// VideoArrivals optionally staggers video-session start times (one
	// entry per video client). Unset clients start within the first two
	// seconds. The paper's Algorithm 1 explicitly permits bitrate drops
	// when "several new clients enter the system"; arrival schedules
	// exercise that path.
	VideoArrivals []time.Duration
	// VideoDepartures optionally ends video sessions early (one entry
	// per video client; 0 = stream to the end). Departed FLARE sessions
	// are unregistered from the OneAPI server, releasing their share.
	VideoDepartures []time.Duration

	// CollectSeries enables per-second time-series collection (the
	// Figure 4/5 views); off by default to keep large sweeps lean.
	CollectSeries bool
	// SampleEvery is the series sampling period (default 1 s).
	SampleEvery time.Duration

	// Obs attaches a telemetry recorder to the run: the engine stamps
	// events with the simulated clock, the drivers and control plane
	// emit their decisions into it, and RunContext dumps its flight
	// recorder when a run dies. Nil (the default) disables recording at
	// zero cost — disabled runs stay byte- and allocation-identical.
	Obs *obs.Recorder

	// DisableFastForward forces the naive TTI-by-TTI loop instead of the
	// quiescence-aware kernel that jumps the clock across dead air (no
	// pending event, no bearer backlog, no flow with an open window and
	// bytes to send). Fast-forward is byte-exact — Results are identical
	// either way, which the equivalence tests assert — so this knob
	// exists for those tests and for debugging, not for correctness.
	DisableFastForward bool

	// IntraWorkers splits the per-TTI per-bearer work (transport ticks,
	// channel update, active-set refresh, queue drain, accounting decay)
	// of this one cell across a worker pool of that size. 0 and 1 keep
	// the sequential engine; negative values are rejected. Results are
	// byte-identical for every value — all concurrent phases fold their
	// effects in bearer-ID order (see DESIGN.md §14) — so this is purely
	// a wall-clock knob for very large cells. Small cells are usually
	// faster sequential; multi-cell runs should prefer RunMulti's
	// inter-cell pool first.
	IntraWorkers int

	// ControlShards sets the shard count of the OneAPI control server a
	// FLARE cell creates for itself (0 = the oneapi default; ignored
	// when the run supplies a shared server via NewInCell). Like
	// IntraWorkers it is purely a contention knob: results are
	// byte-identical for every value, which the shards=1 ≡ shards=N
	// lockstep tests pin across all six schemes.
	ControlShards int
}

// DefaultConfig returns a baseline configuration for the given scheme:
// Table III simulation settings with Table IV parameters.
func DefaultConfig(scheme Scheme) Config {
	return Config{
		Seed:            1,
		Duration:        1200 * time.Second,
		NumVideo:        8,
		NumData:         0,
		Ladder:          has.SimLadder(),
		SegmentDuration: 10 * time.Second,
		Scheme:          scheme,
		Channel:         ChannelSpec{Kind: ChannelStatic, StaticITbs: 12},
		Flare:           core.DefaultConfig(),
		Avis:            avis.DefaultConfig(),
		Festive:         abr.DefaultFestiveConfig(),
		Google:          abr.DefaultGoogleConfig(),
		Player:          has.DefaultPlayerConfig(),
		Transport:       transport.DefaultConfig(),
		SampleEvery:     time.Second,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("cellsim: duration must be positive, got %v", c.Duration)
	}
	if c.NumVideo < 0 || c.NumData < 0 || c.NumLegacy < 0 {
		return fmt.Errorf("cellsim: negative flow counts (%d video, %d data, %d legacy)",
			c.NumVideo, c.NumData, c.NumLegacy)
	}
	if c.IntraWorkers < 0 {
		return fmt.Errorf("cellsim: IntraWorkers must be >= 0, got %d", c.IntraWorkers)
	}
	if c.ControlShards < 0 {
		return fmt.Errorf("cellsim: ControlShards must be >= 0, got %d", c.ControlShards)
	}
	numVideo := c.NumVideo
	if len(c.VideoGroups) > 0 {
		seen := make(map[Scheme]bool, len(c.VideoGroups))
		for i, g := range c.VideoGroups {
			if g.Count <= 0 {
				return fmt.Errorf("cellsim: video group %d (%s) needs a positive count, got %d",
					i, g.Scheme, g.Count)
			}
			if !driver.Known(g.Scheme.String()) {
				return fmt.Errorf("cellsim: video group %d: no driver registered for scheme %q (registered: %v)",
					i, g.Scheme.String(), driver.Names())
			}
			if seen[g.Scheme] {
				return fmt.Errorf("cellsim: scheme %s appears in more than one video group", g.Scheme)
			}
			seen[g.Scheme] = true
		}
		numVideo = totalCount(c.VideoGroups)
		if c.NumVideo > 0 && c.NumVideo != numVideo {
			return fmt.Errorf("cellsim: NumVideo (%d) disagrees with video groups' total (%d)",
				c.NumVideo, numVideo)
		}
	}
	if numVideo+c.NumData+c.NumLegacy == 0 {
		return fmt.Errorf("cellsim: no flows configured")
	}
	if numVideo > 0 || c.NumLegacy > 0 {
		if err := c.Ladder.Validate(); err != nil {
			return fmt.Errorf("cellsim: %w", err)
		}
		if c.SegmentDuration <= 0 {
			return fmt.Errorf("cellsim: segment duration must be positive, got %v", c.SegmentDuration)
		}
	}
	if !driver.Known(c.Scheme.String()) {
		return fmt.Errorf("cellsim: no driver registered for scheme %q (registered: %v)",
			c.Scheme.String(), driver.Names())
	}
	if c.StatsLossRate < 0 || c.StatsLossRate >= 1 {
		if c.StatsLossRate != 0 {
			return fmt.Errorf("cellsim: stats loss rate %v out of [0, 1)", c.StatsLossRate)
		}
	}
	if err := c.ControlFaults.Validate(); err != nil {
		return fmt.Errorf("cellsim: control faults: %w", err)
	}
	if len(c.VideoArrivals) > 0 && len(c.VideoArrivals) != numVideo {
		return fmt.Errorf("cellsim: %d arrivals for %d video clients", len(c.VideoArrivals), numVideo)
	}
	if len(c.VideoDepartures) > 0 && len(c.VideoDepartures) != numVideo {
		return fmt.Errorf("cellsim: %d departures for %d video clients", len(c.VideoDepartures), numVideo)
	}
	switch c.Channel.Kind {
	case ChannelStatic:
	case ChannelCyclic:
		if c.Channel.CyclicPeriod <= 0 {
			return fmt.Errorf("cellsim: cyclic channel needs a positive period")
		}
	case ChannelMobility:
	case ChannelTrace:
		if len(c.Channel.Traces) == 0 || c.Channel.TraceStep <= 0 {
			return fmt.Errorf("cellsim: trace channel needs traces and a positive step")
		}
	default:
		return fmt.Errorf("cellsim: unknown channel kind %d", int(c.Channel.Kind))
	}
	return nil
}
