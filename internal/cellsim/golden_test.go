package cellsim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The golden-determinism gate: fixed-seed single-scheme runs must produce
// byte-identical results across refactors of the engine. The files under
// testdata/golden were generated from the pre-driver (switch-dispatch)
// engine; any change to flow construction order, RNG draw order, or
// control-plane tick placement shows up here as a diff.
//
// Regenerate (only when a behaviour change is intended and understood):
//
//	go test ./internal/cellsim -run TestGoldenDeterminism -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current engine")

// goldenClient mirrors ClientResult field-for-field as of the capture.
// It is deliberately a separate struct: adding fields to ClientResult
// later must not silently change the golden encoding.
type goldenClient struct {
	FlowID              int
	AvgRateBps          float64
	AvgTputBps          float64
	NumChanges          int
	Segments            int
	StallSeconds        float64
	StallCount          int
	StartupDelaySeconds float64
	QoEScore            float64
	FallbackTransitions int
	FallbackIntervals   int
}

type goldenData struct {
	FlowID     int
	AvgTputBps float64
}

// goldenControl mirrors driver.ControlStats as of the capture, for the
// same reason goldenClient exists: fields added to the live struct
// later must not change the golden encoding.
type goldenControl struct {
	ReportsLost     int
	PollsLost       int
	EnforceFailures int
}

type goldenResult struct {
	Scheme       string
	Clients      []goldenClient
	Data         []goldenData
	Legacy       []goldenClient
	ControlPlane goldenControl
	// NumBAIs is the count of solver invocations; the wall times
	// themselves are the one legitimately non-deterministic output.
	NumBAIs int
}

func toGoldenClient(c ClientResult) goldenClient {
	return goldenClient{
		FlowID:              c.FlowID,
		AvgRateBps:          c.AvgRateBps,
		AvgTputBps:          c.AvgTputBps,
		NumChanges:          c.NumChanges,
		Segments:            c.Segments,
		StallSeconds:        c.StallSeconds,
		StallCount:          c.StallCount,
		StartupDelaySeconds: c.StartupDelaySeconds,
		QoEScore:            c.QoEScore,
		FallbackTransitions: c.FallbackTransitions,
		FallbackIntervals:   c.FallbackIntervals,
	}
}

func toGolden(r *Result) goldenResult {
	g := goldenResult{
		Scheme: r.Scheme.String(),
		ControlPlane: goldenControl{
			ReportsLost:     r.ControlPlane.ReportsLost,
			PollsLost:       r.ControlPlane.PollsLost,
			EnforceFailures: r.ControlPlane.EnforceFailures,
		},
		NumBAIs: len(r.SolveTimesSec),
	}
	for _, c := range r.Clients {
		g.Clients = append(g.Clients, toGoldenClient(c))
	}
	for _, d := range r.Data {
		g.Data = append(g.Data, goldenData{FlowID: d.FlowID, AvgTputBps: d.AvgTputBps})
	}
	for _, c := range r.Legacy {
		g.Legacy = append(g.Legacy, toGoldenClient(c))
	}
	return g
}

// goldenConfig is the fixed scenario each scheme is pinned on: a busy
// little cell exercising video, data, AND legacy populations, the cyclic
// channel (so client-side estimators actually adapt), and fast control
// intervals.
func goldenConfig(scheme Scheme) Config {
	cfg := DefaultConfig(scheme)
	cfg.Seed = 0x601d // arbitrary fixed seed
	cfg.Duration = 90 * time.Second
	cfg.NumVideo = 3
	cfg.NumData = 1
	cfg.NumLegacy = 1
	cfg.SegmentDuration = 2 * time.Second
	cfg.Flare.BAI = 2 * time.Second
	cfg.Flare.Delta = 1
	cfg.Channel = ChannelSpec{
		Kind: ChannelCyclic, CyclicMin: 4, CyclicMax: 12,
		CyclicPeriod: 30 * time.Second,
	}
	return cfg
}

func goldenPath(scheme Scheme) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s.json", scheme))
}

func TestGoldenDeterminism(t *testing.T) {
	for _, scheme := range []Scheme{
		SchemeFLARE, SchemeFESTIVE, SchemeGOOGLE, SchemeAVIS, SchemeBBA, SchemeMPC,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			res, err := Run(goldenConfig(scheme))
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(toGolden(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := goldenPath(scheme)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden to capture): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s result diverged from pre-refactor golden\n got: %s\nwant: %s",
					scheme, got, want)
			}
		})
	}
}
