package cellsim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/cellsim/driver"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
)

// failScheme is a test-only scheme whose driver errors at its first
// control interval (1 s = TTI 1000). Because the engine polls ctx only
// at TTI multiples of 1024 (never TTI 0), every cell of this scheme
// that starts at all is guaranteed to reach its own failure before it
// can observe a sibling's cancellation — the property the
// cancellation-ordering test below pins down.
const failScheme = Scheme(97)

var errBAIBoom = errors.New("control interval deliberately failed")

func init() {
	driver.Register(failScheme.String(), func(cfg driver.Config) (driver.Controller, error) {
		return &failingDriver{}, nil
	})
}

type fixedAdapter struct{}

func (fixedAdapter) Name() string                        { return "fixed" }
func (fixedAdapter) NextQuality(has.State) int           { return 0 }
func (fixedAdapter) OnSegmentComplete(has.SegmentRecord) {}

type failingDriver struct{ driver.Base }

func (*failingDriver) Name() string                        { return failScheme.String() }
func (*failingDriver) NewAdapter(int) (has.Adapter, error) { return fixedAdapter{}, nil }
func (*failingDriver) Interval() time.Duration             { return time.Second }
func (*failingDriver) OnBAI(time.Duration) error           { return errBAIBoom }

func failingCell(seed uint64) Config {
	cfg := DefaultConfig(failScheme)
	cfg.Seed = seed
	cfg.Duration = 3 * time.Second
	cfg.NumVideo = 1
	cfg.SegmentDuration = 2 * time.Second
	cfg.Channel = ChannelSpec{Kind: ChannelStatic, StaticITbs: 10}
	return cfg
}

// TestRunMultiCancellationOrdering: when several cells fail, the run
// must report the lowest-indexed cell's own error — not whichever
// goroutine lost the race to cancel its siblings — for every worker
// count.
func TestRunMultiCancellationOrdering(t *testing.T) {
	cells := []Config{failingCell(1), failingCell(2), failingCell(3), failingCell(4)}
	for _, workers := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 5; rep++ {
			_, err := RunMultiConfig(context.Background(), MultiConfig{Workers: workers}, nil, cells...)
			if err == nil {
				t.Fatalf("workers=%d: failing cells reported no error", workers)
			}
			if !errors.Is(err, errBAIBoom) {
				t.Fatalf("workers=%d: got %v, want the driver failure", workers, err)
			}
			if !strings.Contains(err.Error(), "cell 0") {
				t.Fatalf("workers=%d rep=%d: error %q is not cell 0's (nondeterministic first-error selection)", workers, rep, err)
			}
			if strings.Contains(err.Error(), "context canceled") {
				t.Fatalf("workers=%d: sibling cancellation leaked into the reported error: %q", workers, err)
			}
		}
	}
}

// TestRunMultiCallerCancellation: when only the caller's ctx fires (no
// cell fails on its own), the run reports the cancellation.
func TestRunMultiCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := quickConfig(SchemeFESTIVE, 1, 0)
	cfg.Duration = 30 * time.Second
	_, err := RunMultiConfig(ctx, MultiConfig{Workers: 2}, nil, cfg, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunMultiRejectsSharedRecorder(t *testing.T) {
	rec := obs.New(obs.Options{RingSize: 64})
	a := quickConfig(SchemeFESTIVE, 1, 0)
	a.Obs = rec
	b := quickConfig(SchemeBBA, 1, 0)
	b.Obs = rec
	_, err := RunMulti(nil, a, b)
	if err == nil {
		t.Fatal("shared recorder accepted across concurrent cells")
	}
	if !strings.Contains(err.Error(), "recorder") || !strings.Contains(err.Error(), "cell 1") {
		t.Fatalf("error %q does not explain the shared-recorder rejection", err)
	}
	// Distinct recorders are fine.
	b.Obs = obs.New(obs.Options{RingSize: 64})
	a.Duration, b.Duration = 5*time.Second, 5*time.Second
	if _, err := RunMulti(nil, a, b); err != nil {
		t.Fatalf("distinct recorders rejected: %v", err)
	}
}

func TestRunMultiInvalidWorkers(t *testing.T) {
	cfg := quickConfig(SchemeBBA, 1, 0)
	cfg.Duration = 2 * time.Second
	if _, err := RunMultiConfig(context.Background(), MultiConfig{Workers: -1}, nil, cfg); err == nil {
		t.Fatal("negative worker count accepted")
	}
	// 0 (auto) and an over-provisioned pool both work.
	for _, w := range []int{0, 16} {
		if _, err := RunMultiConfig(context.Background(), MultiConfig{Workers: w}, nil, cfg); err != nil {
			t.Fatalf("Workers=%d rejected: %v", w, err)
		}
	}
}
