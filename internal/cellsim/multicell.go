package cellsim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/oneapi"
)

// MultiResult holds the per-cell outcomes of a multi-cell run.
type MultiResult struct {
	// Cells holds one Result per configured cell, in order.
	Cells []*Result
}

// MultiConfig tunes how a multi-cell run is executed. The zero value is
// ready to use.
type MultiConfig struct {
	// Workers bounds how many cells simulate concurrently. 0 means
	// GOMAXPROCS; negative values are rejected. Results are independent
	// of the worker count: cells are dispatched in input order, results
	// are slotted by input index, and each cell owns its RNG, event
	// queue, and recorder.
	Workers int
}

// usesFLARE reports whether any of the cell's video groups (or its
// whole population, absent groups) runs the FLARE driver — i.e. whether
// the cell participates in the shared OneAPI control plane.
func (c *Config) usesFLARE() bool {
	for _, g := range c.videoGroups() {
		if g.Scheme == SchemeFLARE {
			return true
		}
	}
	return false
}

// RunMulti executes several cells concurrently, any scheme per cell —
// the paper's multi-BS deployment generalised. FLARE cells share the
// given OneAPI server ("a single OneAPI server can manage multiple BSs,
// though the bitrates are calculated independently for each network
// cell"); cells of other schemes ignore it, and the server may be nil
// when no cell runs FLARE. Cells are radio-independent, so each cell's
// result is as deterministic as its own seed.
func RunMulti(server *oneapi.Server, cells ...Config) (*MultiResult, error) {
	return RunMultiConfig(context.Background(), MultiConfig{}, server, cells...)
}

// RunMultiContext is RunMulti with cooperative cancellation: every
// cell's TTI loop watches ctx, and the first cell failure cancels the
// cells still running.
func RunMultiContext(ctx context.Context, server *oneapi.Server, cells ...Config) (*MultiResult, error) {
	return RunMultiConfig(ctx, MultiConfig{}, server, cells...)
}

// RunMultiConfig is RunMultiContext with an explicit execution
// configuration: cells are fanned out to a bounded pool of mc.Workers
// goroutines (default GOMAXPROCS) instead of one goroutine per cell.
//
// Error contract: assembly problems are reported together for every
// bad cell (errors.Join, in cell order). Run failures are reported as
// the failure of the lowest-indexed failed cell — a deterministic
// choice, not whichever goroutine lost the race — with sibling
// cancellations ignored when any real failure exists.
func RunMultiConfig(ctx context.Context, mc MultiConfig, server *oneapi.Server, cells ...Config) (*MultiResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("cellsim: RunMulti needs at least one cell")
	}
	workers := mc.Workers
	switch {
	case workers < 0:
		return nil, fmt.Errorf("cellsim: MultiConfig.Workers must be >= 0, got %d", workers)
	case workers == 0:
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	sims := make([]*Sim, len(cells))
	var buildErrs []error
	// Cells may run concurrently, so nothing mutable may be shared
	// between them. The oneapi.Server is sharded by cell (per-cell
	// locks behind a lock-free index), so concurrent cells are safe; a
	// telemetry recorder is not shareable because each cell rebinds its
	// clock into the recorder (SetNowTTI) — reject that here instead of
	// letting the race detector find it mid-run.
	seenRec := make(map[*obs.Recorder]int)
	for i, cfg := range cells {
		if cfg.Obs != nil {
			if first, dup := seenRec[cfg.Obs]; dup {
				buildErrs = append(buildErrs,
					fmt.Errorf("cellsim: cell %d: obs recorder already attached to cell %d; cells run concurrently and need one recorder each", i, first))
				continue
			}
			seenRec[cfg.Obs] = i
		}
		if server == nil && cfg.usesFLARE() {
			buildErrs = append(buildErrs,
				fmt.Errorf("cellsim: cell %d: FLARE cells in a multi-cell run need a shared OneAPI server", i))
			continue
		}
		s, err := NewInCell(cfg, server, i)
		if err != nil {
			buildErrs = append(buildErrs, fmt.Errorf("cellsim: cell %d: %w", i, err))
			continue
		}
		sims[i] = s
	}
	if len(buildErrs) > 0 {
		return nil, errors.Join(buildErrs...)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := &MultiResult{Cells: make([]*Result, len(sims))}
	errs := make([]error, len(sims))
	return runMany(ctx, cancel, workers, sims, out, errs)
}

// runMany drains the cells through a bounded worker pool. Jobs are
// handed out in input order; each worker writes only its own slots of
// out.Cells/errs, so the merge is deterministic by construction.
//
// Workers never pre-check ctx before starting a cell: the engine's TTI
// loops poll only at TTI multiples of 1024 (and never at TTI 0), so
// every cell simulates at least its first ~1 s before a sibling's
// cancellation can reach it. A cell that fails within that window
// therefore always records its own error — which cells end up in the
// error fold is a deterministic fact, not a scheduling race.
func runMany(ctx context.Context, cancel context.CancelFunc, workers int, sims []*Sim, out *MultiResult, errs []error) (*MultiResult, error) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//flare:allow multi-cell fan-out: each worker writes only its own job's index slots and the error fold below scans slots in input-index order
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := sims[i].RunContext(ctx)
				if err != nil {
					errs[i] = fmt.Errorf("cellsim: cell %d: %w", i, err)
					cancel()
					continue
				}
				out.Cells[i] = res
			}
		}()
	}
	for i := range sims {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Fold errors in input-index order: the lowest-indexed real failure
	// wins; cancellations only surface when nothing actually failed
	// (i.e. the caller's ctx fired).
	var firstCancelled error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			if firstCancelled == nil {
				firstCancelled = err
			}
		default:
			return nil, err
		}
	}
	if firstCancelled != nil {
		return nil, firstCancelled
	}
	return out, nil
}
