package cellsim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/flare-sim/flare/internal/oneapi"
)

// MultiResult holds the per-cell outcomes of a multi-cell run.
type MultiResult struct {
	// Cells holds one Result per configured cell, in order.
	Cells []*Result
}

// usesFLARE reports whether any of the cell's video groups (or its
// whole population, absent groups) runs the FLARE driver — i.e. whether
// the cell participates in the shared OneAPI control plane.
func (c *Config) usesFLARE() bool {
	for _, g := range c.videoGroups() {
		if g.Scheme == SchemeFLARE {
			return true
		}
	}
	return false
}

// RunMulti executes several cells concurrently, any scheme per cell —
// the paper's multi-BS deployment generalised. FLARE cells share the
// given OneAPI server ("a single OneAPI server can manage multiple BSs,
// though the bitrates are calculated independently for each network
// cell"); cells of other schemes ignore it, and the server may be nil
// when no cell runs FLARE. Cells are radio-independent, so each cell's
// result is as deterministic as its own seed. All failures — assembly
// and run alike — are aggregated with errors.Join.
func RunMulti(server *oneapi.Server, cells ...Config) (*MultiResult, error) {
	return RunMultiContext(context.Background(), server, cells...)
}

// RunMultiContext is RunMulti with cooperative cancellation: every
// cell's TTI loop watches ctx, and the first cell failure cancels the
// cells still running.
func RunMultiContext(ctx context.Context, server *oneapi.Server, cells ...Config) (*MultiResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("cellsim: RunMulti needs at least one cell")
	}
	sims := make([]*Sim, len(cells))
	var buildErrs []error
	for i, cfg := range cells {
		if server == nil && cfg.usesFLARE() {
			buildErrs = append(buildErrs,
				fmt.Errorf("cellsim: cell %d: FLARE cells in a multi-cell run need a shared OneAPI server", i))
			continue
		}
		s, err := NewInCell(cfg, server, i)
		if err != nil {
			buildErrs = append(buildErrs, fmt.Errorf("cellsim: cell %d: %w", i, err))
			continue
		}
		sims[i] = s
	}
	if len(buildErrs) > 0 {
		return nil, errors.Join(buildErrs...)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := &MultiResult{Cells: make([]*Result, len(sims))}
	errs := make([]error, len(sims))
	var wg sync.WaitGroup
	for i, s := range sims {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.RunContext(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("cellsim: cell %d: %w", i, err)
				cancel()
				return
			}
			out.Cells[i] = res
		}()
	}
	wg.Wait()
	// Aggregate every real failure; cancellations are only interesting
	// when nothing else failed (i.e. the caller's ctx fired), since the
	// first real failure cancels the sibling cells.
	var failed, cancelled []error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled):
			cancelled = append(cancelled, err)
		default:
			failed = append(failed, err)
		}
	}
	if len(failed) > 0 {
		return nil, errors.Join(failed...)
	}
	if len(cancelled) > 0 {
		return nil, errors.Join(cancelled...)
	}
	return out, nil
}
