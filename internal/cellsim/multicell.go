package cellsim

import (
	"fmt"
	"sync"

	"github.com/flare-sim/flare/internal/oneapi"
)

// MultiResult holds the per-cell outcomes of a multi-cell run.
type MultiResult struct {
	// Cells holds one Result per configured cell, in order.
	Cells []*Result
}

// RunMulti executes several FLARE cells against one shared OneAPI
// server — the paper's multi-BS deployment. Cells are radio-independent
// (bitrates are computed per cell), so they run concurrently; each
// cell's result is as deterministic as its own seed.
func RunMulti(server *oneapi.Server, cells ...Config) (*MultiResult, error) {
	if server == nil {
		return nil, fmt.Errorf("cellsim: RunMulti needs a OneAPI server")
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("cellsim: RunMulti needs at least one cell")
	}
	sims := make([]*Sim, len(cells))
	for i, cfg := range cells {
		if cfg.Scheme != SchemeFLARE {
			return nil, fmt.Errorf("cellsim: RunMulti cell %d: only FLARE cells share a OneAPI server", i)
		}
		s, err := NewInCell(cfg, server, i)
		if err != nil {
			return nil, fmt.Errorf("cellsim: cell %d: %w", i, err)
		}
		sims[i] = s
	}

	out := &MultiResult{Cells: make([]*Result, len(sims))}
	errs := make([]error, len(sims))
	var wg sync.WaitGroup
	for i, s := range sims {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			out.Cells[i], errs[i] = s.Run()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cellsim: cell %d: %w", i, err)
		}
	}
	return out, nil
}
