package cellsim

import (
	"fmt"
	"math"
	"time"

	"github.com/flare-sim/flare/internal/sim"
)

// churnSalt decorrelates the churn generator's RNG stream from the
// run's primary stream (both derive from Config.Seed).
const churnSalt = 0x243f6a8885a308d3

// ChurnConfig generates a session-churn schedule: video clients arrive
// as a Poisson process and stay for heavy-tailed (Pareto) durations —
// the classical VoD workload shape, and the proving ground for the
// admission/downgrade saturation machinery (a fixed population can
// only saturate a cell transiently; churn sustains any offered load).
//
// When Enabled, the generator expands into VideoArrivals /
// VideoDepartures / NumVideo at Sim build time, deterministically from
// Config.Seed, so a churn run replays byte-identically like any other.
type ChurnConfig struct {
	// Enabled turns the generator on. It is incompatible with explicit
	// VideoArrivals/VideoDepartures schedules and with VideoGroups.
	Enabled bool
	// MeanInterarrival is the mean gap between session arrivals (the
	// Poisson process's 1/λ). Required when Enabled.
	MeanInterarrival time.Duration
	// MeanDuration is the mean session length. Required when Enabled.
	MeanDuration time.Duration
	// ParetoShape is the duration tail exponent α (must be > 1 for the
	// mean to exist; 0 uses the default 1.5, a heavy tail).
	ParetoShape float64
	// MaxSessions bounds the generated population (0 = default 256) so
	// a misconfigured load cannot allocate an unbounded cell.
	MaxSessions int
}

// validate checks the generator parameters (only when enabled).
func (c *ChurnConfig) validate() error {
	if !c.Enabled {
		return nil
	}
	if c.MeanInterarrival <= 0 {
		return fmt.Errorf("cellsim: churn MeanInterarrival must be positive, got %v", c.MeanInterarrival)
	}
	if c.MeanDuration <= 0 {
		return fmt.Errorf("cellsim: churn MeanDuration must be positive, got %v", c.MeanDuration)
	}
	if c.ParetoShape != 0 && c.ParetoShape <= 1 {
		return fmt.Errorf("cellsim: churn ParetoShape must exceed 1 (got %v): the duration mean would diverge", c.ParetoShape)
	}
	if c.MaxSessions < 0 {
		return fmt.Errorf("cellsim: negative churn MaxSessions %d", c.MaxSessions)
	}
	return nil
}

func (c *ChurnConfig) shape() float64 {
	if c.ParetoShape == 0 {
		return 1.5
	}
	return c.ParetoShape
}

func (c *ChurnConfig) maxSessions() int {
	if c.MaxSessions == 0 {
		return 256
	}
	return c.MaxSessions
}

// expandChurn materialises the churn schedule into the explicit
// VideoArrivals/VideoDepartures/NumVideo fields, before Validate sees
// them. A disabled generator is a no-op.
func (cfg *Config) expandChurn() error {
	if !cfg.Churn.Enabled {
		return nil
	}
	if err := cfg.Churn.validate(); err != nil {
		return err
	}
	if len(cfg.VideoArrivals) > 0 || len(cfg.VideoDepartures) > 0 {
		return fmt.Errorf("cellsim: churn generator conflicts with explicit VideoArrivals/VideoDepartures")
	}
	if len(cfg.VideoGroups) > 0 {
		return fmt.Errorf("cellsim: churn generator does not support VideoGroups")
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("cellsim: churn needs a positive Duration, got %v", cfg.Duration)
	}

	rng := sim.NewRNG(cfg.Seed ^ churnSalt)
	horizon := cfg.Duration.Seconds()
	meanGap := cfg.Churn.MeanInterarrival.Seconds()
	meanDur := cfg.Churn.MeanDuration.Seconds()
	alpha := cfg.Churn.shape()
	// Pareto with the requested mean: xm*α/(α-1) = mean ⇒ scale xm.
	xm := meanDur * (alpha - 1) / alpha

	var arrivals, departures []time.Duration
	t := 0.0
	for len(arrivals) < cfg.Churn.maxSessions() {
		t += rng.Exp(meanGap)
		if t >= horizon {
			break
		}
		// Inverse-CDF Pareto draw; 1-U keeps the argument in (0,1].
		dur := xm * math.Pow(1-rng.Float64(), -1/alpha)
		depart := t + dur
		arrivals = append(arrivals, time.Duration(t*float64(time.Second)))
		if depart >= horizon {
			// Outlives the run: stream to the end (the 0 convention).
			departures = append(departures, 0)
		} else {
			departures = append(departures, time.Duration(depart*float64(time.Second)))
		}
	}
	cfg.NumVideo = len(arrivals)
	cfg.VideoArrivals = arrivals
	cfg.VideoDepartures = departures
	return nil
}
