package cellsim

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/oneapi"
)

// Shard equivalence: Config.ControlShards changes only lock layout in
// the OneAPI control plane, never behaviour. Every golden scenario must
// be byte-identical between a 1-shard and a many-shard server — the
// same literal comparison the lockstep suite uses, on the marshalled
// golden encoding the golden-determinism gate pins.

// assertShardsLockstep runs cfg with ControlShards=1 and
// ControlShards=shards, asserting identical golden bytes.
func assertShardsLockstep(t *testing.T, cfg Config, shards int) {
	t.Helper()
	cfg.ControlShards = 1
	want := goldenBytes(t, cfg)
	cfg.ControlShards = shards
	got := goldenBytes(t, cfg)
	if string(got) != string(want) {
		t.Errorf("ControlShards=%d diverged from single-shard run\n got: %s\nwant: %s",
			shards, got, want)
	}
}

// TestShardsGoldenSchemes: every golden scenario, shards=1 vs shards=8,
// byte-identical. Non-FLARE schemes never touch the OneAPI server, so
// for them this doubles as a no-op regression check on the knob.
func TestShardsGoldenSchemes(t *testing.T) {
	for _, scheme := range []Scheme{
		SchemeFLARE, SchemeFESTIVE, SchemeGOOGLE, SchemeAVIS, SchemeBBA, SchemeMPC,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			assertShardsLockstep(t, goldenConfig(scheme), 8)
		})
	}
}

// TestShardsFaultedRun: fault-injected control-plane traffic (drops and
// a blackout window) across shard counts.
func TestShardsFaultedRun(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 1)
	cfg.Duration = 90 * time.Second
	cfg.ControlFaults = faults.Config{
		Seed:     7,
		DropRate: 0.4,
		Blackouts: []faults.Window{
			{From: 30 * time.Second, To: 50 * time.Second},
		},
	}
	assertShardsLockstep(t, cfg, 8)
}

// TestShardsWithWorkers stacks sharding under the parallel engine: a
// sharded control plane beneath intra-cell workers must still match
// the fully sequential single-shard run.
func TestShardsWithWorkers(t *testing.T) {
	cfg := goldenConfig(SchemeFLARE)
	cfg.ControlShards = 1
	cfg.IntraWorkers = 0
	want := goldenBytes(t, cfg)
	cfg.ControlShards = 8
	cfg.IntraWorkers = 3
	got := goldenBytes(t, cfg)
	if string(got) != string(want) {
		t.Errorf("sharded+parallel run diverged from sequential single-shard run\n got: %s\nwant: %s",
			got, want)
	}
}

// TestShardsMultiCell: a shared OneAPI server managing several FLARE
// cells concurrently, shards=1 vs shards=8, every cell byte-identical.
func TestShardsMultiCell(t *testing.T) {
	cells := []Config{
		goldenConfig(SchemeFLARE),
		quickConfig(SchemeFLARE, 2, 1),
		mixedConfig(2, 2),
	}
	cells[1].Seed = 99

	runAll := func(shards int) [][]byte {
		server := oneapi.NewServerSharded(core.DefaultConfig(), nil, shards)
		defer server.Close()
		res, err := RunMultiConfig(context.Background(), MultiConfig{Workers: 4}, server, cells...)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(res.Cells))
		for i, r := range res.Cells {
			b, err := json.MarshalIndent(toGolden(r), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			out[i] = b
		}
		return out
	}

	want := runAll(1)
	got := runAll(8)
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("cell %d diverged between shards=1 and shards=8\n got: %s\nwant: %s",
				i, got[i], want[i])
		}
	}
}
