package cellsim

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/oneapi"
)

// Lockstep equivalence: the parallel engine (intra-cell worker pool via
// Config.IntraWorkers, inter-cell worker pool via MultiConfig.Workers)
// must be byte-identical to the sequential engine on every golden
// scenario. "Byte-identical" is literal: the comparison is the marshalled
// golden encoding, the same bytes the golden-determinism gate pins.

// goldenBytes runs cfg and returns its golden encoding.
func goldenBytes(t *testing.T, cfg Config) []byte {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(toGolden(res), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertLockstep runs cfg sequentially and with parallel intra-cell
// workers, asserting identical golden bytes.
func assertLockstep(t *testing.T, cfg Config, workers int) {
	t.Helper()
	cfg.IntraWorkers = 0
	want := goldenBytes(t, cfg)
	cfg.IntraWorkers = workers
	got := goldenBytes(t, cfg)
	if string(got) != string(want) {
		t.Errorf("IntraWorkers=%d diverged from sequential run\n got: %s\nwant: %s",
			workers, got, want)
	}
}

// TestLockstepGoldenSchemes: every golden scenario, workers=1 vs
// workers=3, byte-identical.
func TestLockstepGoldenSchemes(t *testing.T) {
	for _, scheme := range []Scheme{
		SchemeFLARE, SchemeFESTIVE, SchemeGOOGLE, SchemeAVIS, SchemeBBA, SchemeMPC,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			assertLockstep(t, goldenConfig(scheme), 3)
		})
	}
}

// TestLockstepNaiveLoop covers the runNaive TTI loop (fast-forward
// disabled), whose parallel tick sweep walks every flow rather than the
// active list.
func TestLockstepNaiveLoop(t *testing.T) {
	for _, scheme := range []Scheme{SchemeFLARE, SchemeBBA} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := goldenConfig(scheme)
			cfg.DisableFastForward = true
			assertLockstep(t, cfg, 3)
		})
	}
}

// TestLockstepMobilityChannel covers the channel model that does NOT
// implement RangeUpdater: the mobility random walk consumes a shared RNG
// stream, so the parallel engine must fall back to a sequential channel
// update while still parallelising the other phases.
func TestLockstepMobilityChannel(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 1)
	cfg.Duration = 60 * time.Second
	cfg.Channel = ChannelSpec{Kind: ChannelMobility}
	assertLockstep(t, cfg, 3)
}

// TestLockstepFaultedRun: control-plane fault injection (drops plus a
// blackout window) draws from its own seeded streams; the parallel
// engine must preserve every draw's order.
func TestLockstepFaultedRun(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 3, 1)
	cfg.Duration = 90 * time.Second
	cfg.ControlFaults = faults.Config{
		Seed:     7,
		DropRate: 0.4,
		Blackouts: []faults.Window{
			{From: 30 * time.Second, To: 50 * time.Second},
		},
	}
	assertLockstep(t, cfg, 3)
}

// TestLockstepMixedCell: FLARE and FESTIVE sharing one cell.
func TestLockstepMixedCell(t *testing.T) {
	assertLockstep(t, mixedConfig(2, 2), 3)
}

// TestLockstepManyWorkers: more workers than flows, and an odd worker
// count that leaves uneven range chunks.
func TestLockstepManyWorkers(t *testing.T) {
	for _, w := range []int{2, 7, 16} {
		assertLockstep(t, goldenConfig(SchemeFLARE), w)
	}
}

// TestLockstepMultiCell: the inter-cell pool. Three cells (two of them
// FLARE, sharing the OneAPI server) run with Workers=1 and Workers=4;
// every cell's golden bytes must match.
func TestLockstepMultiCell(t *testing.T) {
	cells := []Config{
		goldenConfig(SchemeFLARE),
		goldenConfig(SchemeFESTIVE),
		quickConfig(SchemeFLARE, 2, 1),
		mixedConfig(2, 2),
	}
	cells[2].Seed = 99

	runAll := func(workers int) [][]byte {
		server := oneapi.NewServer(core.DefaultConfig(), nil)
		res, err := RunMultiConfig(context.Background(), MultiConfig{Workers: workers}, server, cells...)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(res.Cells))
		for i, r := range res.Cells {
			b, err := json.MarshalIndent(toGolden(r), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			out[i] = b
		}
		return out
	}

	want := runAll(1)
	got := runAll(4)
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("cell %d diverged between Workers=1 and Workers=4\n got: %s\nwant: %s",
				i, got[i], want[i])
		}
	}
}

// TestLockstepMultiCellIntra stacks both pools: a multi-cell run whose
// cells each use intra-cell workers must match the fully sequential run.
func TestLockstepMultiCellIntra(t *testing.T) {
	seq := []Config{goldenConfig(SchemeFLARE), goldenConfig(SchemeBBA)}
	par := []Config{goldenConfig(SchemeFLARE), goldenConfig(SchemeBBA)}
	for i := range par {
		par[i].IntraWorkers = 3
	}

	runAll := func(workers int, cells []Config) [][]byte {
		server := oneapi.NewServer(core.DefaultConfig(), nil)
		res, err := RunMultiConfig(context.Background(), MultiConfig{Workers: workers}, server, cells...)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(res.Cells))
		for i, r := range res.Cells {
			b, err := json.MarshalIndent(toGolden(r), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			out[i] = b
		}
		return out
	}

	want := runAll(1, seq)
	got := runAll(2, par)
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("cell %d diverged with stacked inter+intra parallelism\n got: %s\nwant: %s",
				i, got[i], want[i])
		}
	}
}
