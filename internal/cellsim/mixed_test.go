package cellsim

import (
	"strings"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/oneapi"
)

// mixedConfig is a cell split between a coordinated FLARE group and an
// uncoordinated FESTIVE group.
func mixedConfig(nFlare, nFestive int) Config {
	cfg := quickConfig(SchemeFLARE, 0, 0)
	cfg.VideoGroups = []FlowGroup{
		{Scheme: SchemeFLARE, Count: nFlare},
		{Scheme: SchemeFESTIVE, Count: nFestive},
	}
	return cfg
}

func TestMixedSchemeCell(t *testing.T) {
	cfg := mixedConfig(2, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clients) != 4 {
		t.Fatalf("%d clients, want 4", len(res.Clients))
	}
	flare := res.ClientsByScheme(SchemeFLARE)
	festive := res.ClientsByScheme(SchemeFESTIVE)
	if len(flare) != 2 || len(festive) != 2 {
		t.Fatalf("group split %d/%d, want 2/2", len(flare), len(festive))
	}
	// Flow IDs are assigned group by group, in order.
	if flare[0].FlowID != 0 || flare[1].FlowID != 1 || festive[0].FlowID != 2 || festive[1].FlowID != 3 {
		t.Fatalf("flow-ID layout wrong: %+v", res.Clients)
	}
	for _, c := range res.Clients {
		if c.Segments == 0 {
			t.Errorf("%s client %d downloaded nothing", c.Scheme, c.FlowID)
		}
	}
	// Only the FLARE group has a control plane; its solve times are the
	// cell's.
	if len(res.SolveTimesSec) == 0 {
		t.Error("mixed cell recorded no FLARE solves")
	}
	// The coordinated group holds its GBR guarantee even with
	// uncoordinated neighbours.
	for _, c := range flare {
		if c.StallSeconds > 0 {
			t.Errorf("coordinated client %d stalled %.1fs", c.FlowID, c.StallSeconds)
		}
	}
}

func TestMixedSchemeCellDeterministic(t *testing.T) {
	cfg := mixedConfig(2, 2)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Clients {
		if a.Clients[i] != b.Clients[i] {
			t.Fatalf("client %d differs between identical runs:\n%+v\n%+v", i, a.Clients[i], b.Clients[i])
		}
	}
}

func TestVideoGroupsValidation(t *testing.T) {
	bad := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero count", func(c *Config) { c.VideoGroups[0].Count = 0 }, "positive count"},
		{"negative count", func(c *Config) { c.VideoGroups[1].Count = -3 }, "positive count"},
		{"unknown scheme", func(c *Config) { c.VideoGroups[0].Scheme = Scheme(42) }, "no driver registered"},
		{"duplicate scheme", func(c *Config) { c.VideoGroups[1].Scheme = SchemeFLARE }, "more than one video group"},
		{"numvideo mismatch", func(c *Config) { c.NumVideo = 7 }, "disagrees"},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			cfg := mixedConfig(2, 2)
			tt.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q missing %q", err, tt.want)
			}
		})
	}
	// NumVideo equal to the groups' total is fine.
	cfg := mixedConfig(2, 2)
	cfg.NumVideo = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("matching NumVideo rejected: %v", err)
	}
}

// TestRunMultiMixedSchemes runs a FLARE cell, a FESTIVE cell, and a BBA
// cell against one shared server and verifies the server is only
// touched by the FLARE cell.
func TestRunMultiMixedSchemes(t *testing.T) {
	server := oneapi.NewServer(core.DefaultConfig(), nil)
	flareCell := quickConfig(SchemeFLARE, 2, 0)
	festiveCell := quickConfig(SchemeFESTIVE, 2, 0)
	festiveCell.Seed = 7
	bbaCell := quickConfig(SchemeBBA, 1, 1)
	bbaCell.Seed = 11

	res, err := RunMulti(server, flareCell, festiveCell, bbaCell)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	for i, want := range []int{2, 2, 1} {
		if len(res.Cells[i].Clients) != want {
			t.Fatalf("cell %d has %d clients, want %d", i, len(res.Cells[i].Clients), want)
		}
		if res.Cells[i].MeanClientRate() <= 0 {
			t.Fatalf("cell %d produced no video", i)
		}
	}
	// Cell 0 (FLARE) used the shared control plane; cells 1 and 2 never
	// touched it.
	if len(server.SolveTimes(0)) == 0 {
		t.Error("FLARE cell ran no solves on the shared server")
	}
	for _, cell := range []int{1, 2} {
		if n := len(server.SolveTimes(cell)); n != 0 {
			t.Errorf("non-FLARE cell %d ran %d solves on the shared server", cell, n)
		}
	}
	// Non-FLARE cells also produce no control-plane telemetry.
	if len(res.Cells[1].SolveTimesSec) != 0 || len(res.Cells[2].SolveTimesSec) != 0 {
		t.Error("non-FLARE cells reported solve times")
	}

	// A per-cell failure is reported with its cell index, and the run as
	// a whole fails.
	badCell := quickConfig(SchemeFLARE, 1, 0)
	badCell.VideoArrivals = []time.Duration{0, 0} // wrong length: assembly error
	if _, err := RunMulti(server, flareCell, badCell); err == nil {
		t.Fatal("invalid cell accepted")
	} else if !strings.Contains(err.Error(), "cell 1") {
		t.Fatalf("error %q does not name the failing cell", err)
	}
}

// TestMixedCellInMulti puts a mixed FLARE+FESTIVE cell into a
// multi-cell run next to a pure-FESTIVE cell: the shared server serves
// only the mixed cell's FLARE group.
func TestMixedCellInMulti(t *testing.T) {
	server := oneapi.NewServer(core.DefaultConfig(), nil)
	mixed := mixedConfig(2, 1)
	pure := quickConfig(SchemeFESTIVE, 2, 0)
	pure.Seed = 5
	res, err := RunMulti(server, mixed, pure)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells[0].ClientsByScheme(SchemeFLARE)) != 2 ||
		len(res.Cells[0].ClientsByScheme(SchemeFESTIVE)) != 1 {
		t.Fatalf("mixed cell group shapes wrong: %+v", res.Cells[0].Clients)
	}
	if len(server.SolveTimes(0)) == 0 {
		t.Error("mixed cell's FLARE group ran no solves")
	}
	if n := len(server.SolveTimes(1)); n != 0 {
		t.Errorf("pure FESTIVE cell ran %d solves", n)
	}
}
