package cellsim

import (
	"github.com/flare-sim/flare/internal/sim"
	"github.com/flare-sim/flare/internal/transport"
)

// Intra-cell parallel tick phase (Config.IntraWorkers > 1).
//
// The only per-TTI loop cellsim itself owns is the transport tick
// sweep; the radio phases live in lte (ENodeB.runTTIParallel) behind
// the same pool. A flow's Tick touches its own state and bearer and
// draws no RNG, so flows may tick concurrently — the one observable
// side effect a Tick can have is scheduling a loss-recovery event on
// the shared queue, and event sequence numbers are the determinism
// linchpin (same-TTI events fire in scheduling order). So during the
// parallel phase each flow's env buffers its schedules locally, and
// the fold below replays every buffer into the real queue in canonical
// flow order — the exact order the sequential loop would have produced.
type intraPar struct {
	workers int
	pool    *sim.WorkerPool
	// envs is one flowEnv per transport flow, in canonical (flow-ID)
	// order, parallel to Sim.allFlows. tickEnvs mirrors Sim.tickList
	// (rebuilt together in rebuildTickList).
	envs     []*flowEnv
	tickEnvs []*flowEnv
	// buffering is true only between the start of a parallel tick phase
	// and its fold. It is written by the driving goroutine while no
	// worker runs (the pool's Do is a barrier), so workers always
	// observe the value set before their phase started.
	buffering bool

	naive tickPhase
	fast  tickPhase
}

func newIntraPar(workers int) *intraPar {
	p := &intraPar{workers: workers}
	p.naive = tickPhase{p: p, fast: false}
	p.fast = tickPhase{p: p, fast: true}
	return p
}

// bufEvent is one Schedule/ScheduleArg call captured during a parallel
// tick phase, replayed by the fold. argFn non-nil marks the
// ScheduleArg form.
type bufEvent struct {
	delay int64
	fn    func()
	argFn func(int64)
	arg   int64
}

// flowEnv is a per-flow transport.Env: outside parallel phases it
// delegates straight to the Sim's env (byte-identical behaviour);
// during a phase it buffers schedule calls and wake hints locally so
// concurrent flows never touch the shared event queue.
type flowEnv struct {
	s    *Sim
	flow *transport.Flow

	buf         []bufEvent
	sawInactive bool
	wake        bool
}

func (e *flowEnv) NowTTI() int64 { return e.s.env.NowTTI() }

func (e *flowEnv) Schedule(delay int64, fn func()) {
	if e.s.par.buffering {
		e.buf = append(e.buf, bufEvent{delay: delay, fn: fn})
		return
	}
	e.s.env.Schedule(delay, fn)
}

// ScheduleArg implements transport.ArgScheduler.
func (e *flowEnv) ScheduleArg(delay int64, fn func(int64), arg int64) {
	if e.s.par.buffering {
		e.buf = append(e.buf, bufEvent{delay: delay, argFn: fn, arg: arg})
		return
	}
	e.s.env.ScheduleArg(delay, fn, arg)
}

// FlowActivated implements transport.Waker.
func (e *flowEnv) FlowActivated(f *transport.Flow) {
	if e.s.par.buffering {
		e.wake = true
		return
	}
	e.s.env.FlowActivated(f)
}

// tickPhase is the RangeRunner for the transport sweep. fast selects
// the runFast variant (tick the active list, noting flows observed
// inactive) over the runNaive variant (tick everything).
type tickPhase struct {
	p    *intraPar
	fast bool
}

func (t *tickPhase) RunRange(lo, hi int) {
	if t.fast {
		for _, e := range t.p.tickEnvs[lo:hi] {
			if e.flow.Active() {
				e.flow.Tick()
			} else {
				e.sawInactive = true
			}
		}
		return
	}
	for _, e := range t.p.envs[lo:hi] {
		e.flow.Tick()
	}
}

// tickAll is the parallel runNaive sweep: every flow, canonical order.
func (p *intraPar) tickAll(s *Sim) {
	p.buffering = true
	p.pool.Do(len(p.envs), &p.naive)
	p.fold(s, p.envs)
}

// tickActive is the parallel runFast sweep over the active list.
func (p *intraPar) tickActive(s *Sim) {
	p.buffering = true
	p.pool.Do(len(p.tickEnvs), &p.fast)
	p.fold(s, p.tickEnvs)
}

// fold replays the phase's buffered effects in canonical flow order —
// the bearer-ID-sorted fold that keeps event sequence numbers (and so
// every downstream byte) identical to the sequential loop.
func (p *intraPar) fold(s *Sim, envs []*flowEnv) {
	p.buffering = false
	for _, e := range envs {
		if e.sawInactive {
			e.sawInactive = false
			s.tickDirty = true
		}
		if e.wake {
			e.wake = false
			s.tickDirty = true
		}
		for i := range e.buf {
			ev := &e.buf[i]
			if ev.argFn != nil {
				s.env.ScheduleArg(ev.delay, ev.argFn, ev.arg)
			} else {
				s.env.Schedule(ev.delay, ev.fn)
			}
			ev.fn, ev.argFn = nil, nil
		}
		e.buf = e.buf[:0]
	}
}
