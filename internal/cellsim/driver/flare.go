package driver

import (
	"errors"
	"time"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/oneapi"
)

func init() {
	Register("FLARE", newFlareDriver)
}

// flareDriver runs the paper's system: a OneAPI server (shared or
// private) computes per-BAI bitrate assignments from eNodeB statistics
// reports, installs them as GBRs through the PCEF, and the per-flow
// plugins poll their assignments — with the control-plane fault
// injectors and the plugins' graceful degradation in the loop.
type flareDriver struct {
	cfg    Config
	server *oneapi.Server
	cellID int

	e       Engine
	flows   []*Flow
	plugins []*abr.FlarePlugin // parallel to flows

	// Control-plane fault injection (nil when disabled): independent
	// decision streams for the eNodeB's stats reports and the plugins'
	// assignment polls.
	statsFaults *faults.Injector
	pollFaults  *faults.Injector
	ctrl        ControlStats

	// rec is the telemetry recorder (nil = disabled).
	rec *obs.Recorder

	// Buffer-feedback state: the active per-flow cap in bps (0 = none).
	bufferCaps []float64

	// Admission-mode state, parallel to flows; nil when the controller
	// runs without admission control (sessions then open at Init, the
	// paper's behaviour). See OnFlowArrival.
	admission []flowAdmission
	baiCount  int64 // OnBAI ordinal, the clock for admission re-tries
}

// flowAdmission tracks one flow's session through the admission state
// machine: not yet arrived → arrived (open attempted, possibly
// rejected and re-tried with a doubling gap) → opened.
type flowAdmission struct {
	arrived    bool
	opened     bool
	everOpened bool
	nextTry    int64 // BAI ordinal of the next open attempt
	gap        int64 // current re-try gap in BAIs
	// stallBase is the player's cumulative stall time at the moment the
	// coordinated plane takes ownership of the flow — stalls accrued
	// before it are starvation from the unadmitted (local-ABR) period
	// and the recovery from it, not a coordination failure. Ownership
	// transfers once the grace window has passed AND the plane has
	// delivered the player a healthy buffer for the first time; until
	// then the base keeps tracking the stall total (graceBAI 0 = settled,
	// no sample pending).
	stallBase float64
	graceBAI  int64
}

// admissionRetryCap bounds the doubling re-try gap: an unadmitted flow
// keeps knocking at least every 16 BAIs while it plays on local ABR.
const admissionRetryCap = 16

// admissionGBRHeadroom inflates installed GBRs when admission control is
// active. The admission budget plans at CapacityMargin of the cell, so
// the margin is guaranteed spare; handing it back as per-flow
// enforcement headroom keeps floor-pinned flows strictly above their
// encoding rate. (A GBR exactly at the encoding rate is a knife edge:
// any scheduling or request-pipeline gap drains the buffer, and at a
// refill rate of ~zero a single stall can last tens of seconds.)
const admissionGBRHeadroom = 1.1

// admissionGraceBAIs is the minimum settling window after a mid-stream
// admission: one interval for the first coordinated assignment to
// arrive plus one for refill to begin. Ownership of stall time only
// transfers to the coordinated plane once this window has passed and
// the player's buffer has first reached admissionHealthyBufferSeconds —
// a flow admitted off the wait queue with a starved buffer refills at
// floor x headroom minus the play rate, which can take tens of seconds
// under deep saturation, and stalls during that recovery are still the
// admission policy's queueing choice (see flowAdmission.stallBase).
const admissionGraceBAIs = 2

// admissionHealthyBufferSeconds is the playout-buffer level at which the
// coordinated plane is considered to have recovered an admitted flow
// from its pre-admission starvation (two segments at the saturation
// scenarios' 2 s segment duration).
const admissionHealthyBufferSeconds = 4.0

var (
	_ Controller       = (*flareDriver)(nil)
	_ ControlTelemetry = (*flareDriver)(nil)
	_ FlowTelemetry    = (*flareDriver)(nil)
	_ ArrivalAware     = (*flareDriver)(nil)
)

func newFlareDriver(cfg Config) (Controller, error) {
	d := &flareDriver{cfg: cfg, server: cfg.OneAPI, cellID: cfg.CellID, rec: cfg.Obs}
	if d.server == nil {
		if cfg.ControlShards > 0 {
			d.server = oneapi.NewServerSharded(cfg.Flare, nil, cfg.ControlShards)
		} else {
			d.server = oneapi.NewServer(cfg.Flare, nil)
		}
	}
	if cfg.Obs != nil {
		// Never clobber a shared server's recorder with nil.
		d.server.SetRecorder(cfg.Obs)
	}
	if cfg.ControlFaults.Enabled() {
		// Independent streams so report fate never perturbs poll fate;
		// both derive deterministically from the fault seed.
		statsCfg, pollCfg := cfg.ControlFaults, cfg.ControlFaults
		pollCfg.Seed = statsCfg.Seed ^ 0x9e3779b97f4a7c15
		d.statsFaults = faults.New(statsCfg)
		d.pollFaults = faults.New(pollCfg)
		if cfg.Obs != nil {
			d.statsFaults.SetObserver(faultObserver(cfg.Obs, cfg.CellID, obs.SiteStats))
			d.pollFaults.SetObserver(faultObserver(cfg.Obs, cfg.CellID, obs.SitePoll))
		}
	}
	return d, nil
}

// faultObserver adapts injected fault decisions into telemetry events
// tagged with the control-plane site they struck.
func faultObserver(rec *obs.Recorder, cellID int, site obs.Site) faults.Observer {
	return func(_ time.Duration, dec faults.Decision) {
		rec.Emit(obs.Fault(int32(cellID), site, uint8(dec.Outcome)))
	}
}

// Name implements Controller.
func (d *flareDriver) Name() string { return d.cfg.Scheme }

// SchedulerPolicy implements Controller: FLARE needs GBR enforcement.
func (d *flareDriver) SchedulerPolicy() SchedulerPolicy { return PolicyGBR }

// NewAdapter implements Controller: every flow gets a FLARE plugin with
// the configured degradation policy.
func (d *flareDriver) NewAdapter(int) (has.Adapter, error) {
	p := abr.NewFlarePluginWithFallback(d.cfg.Fallback)
	d.plugins = append(d.plugins, p)
	return p, nil
}

// Init implements Controller: open a OneAPI session per flow and
// register the cell's background traffic (data, legacy, and co-resident
// video groups of other schemes) as data flows at the PCRF — to the
// FLARE controller they are all just competing traffic.
func (d *flareDriver) Init(e Engine, flows []*Flow) error {
	d.e = e
	d.flows = flows
	if d.cfg.Flare.AdmissionControl {
		// Sessions open at arrival time instead (OnFlowArrival): opening
		// here would charge the admission predicate for flows that have
		// not started yet.
		d.admission = make([]flowAdmission, len(flows))
	} else {
		for _, f := range flows {
			req := oneapi.SessionRequest{FlowID: f.ID, LadderBps: f.Player.MPD().Ladder()}
			if err := d.server.OpenSession(d.cellID, req); err != nil {
				return err
			}
		}
	}
	for _, id := range d.cfg.BackgroundFlowIDs {
		d.server.PCRF().RegisterDataFlow(d.cellID, id)
	}
	if d.rec.Enabled() {
		// Wire each plugin's mode transitions into the trace, tagged
		// with the flow the plugin serves.
		for i := range flows {
			if i >= len(d.plugins) || d.plugins[i] == nil {
				continue
			}
			flowID := int32(flows[i].ID)
			d.plugins[i].SetTransitionObserver(func(to abr.PluginMode, reason abr.TransitionReason, count int) {
				ev := obs.Recovery(int32(d.cellID), flowID, int32(count))
				if to == abr.ModeFallback {
					why := obs.ReasonStale
					if reason == abr.ReasonFailedPolls {
						why = obs.ReasonPolls
					}
					ev = obs.Fallback(int32(d.cellID), flowID, why, int32(count))
				}
				d.rec.Emit(ev)
			})
		}
	}
	return nil
}

// Interval implements Controller: the BAI, floored at 100 TTIs.
func (d *flareDriver) Interval() time.Duration {
	return clampedInterval(d.cfg.Flare.BAI, 100)
}

// lowBufferCap returns the Section II-B buffer-feedback threshold.
func (d *flareDriver) lowBufferCap() float64 {
	if d.cfg.LowBufferCapSeconds < 0 {
		return 0
	}
	if d.cfg.LowBufferCapSeconds == 0 {
		return 6
	}
	return d.cfg.LowBufferCapSeconds
}

// sendBufferFeedback updates each plugin's preference cap from its
// player's buffer state: a low buffer caps the next assignment one level
// down so the session refills; the cap is held (with hysteresis) until
// the buffer recovers to twice the threshold, then cleared.
func (d *flareDriver) sendBufferFeedback() {
	threshold := d.lowBufferCap()
	if threshold <= 0 {
		return
	}
	if d.bufferCaps == nil {
		d.bufferCaps = make([]float64, len(d.flows))
	}
	for i, f := range d.flows {
		plugin := d.plugins[i]
		if plugin == nil || f.Player.Done() {
			continue
		}
		buf := f.Player.BufferSeconds()
		switch {
		case d.bufferCaps[i] == 0 && buf < threshold:
			if cur := plugin.AssignedBps(); cur > 0 {
				lvl := d.cfg.Ladder.HighestAtMost(cur)
				if lvl > 0 {
					lvl--
				}
				d.bufferCaps[i] = d.cfg.Ladder.Rate(lvl)
			}
		case d.bufferCaps[i] > 0 && buf > 2*threshold:
			d.bufferCaps[i] = 0
		}
		// Departed sessions are unregistered; ignore their errors.
		_ = d.server.SetPreferences(d.cellID, f.ID,
			core.Preferences{MaxBps: d.bufferCaps[i]})
	}
}

// OnBAI implements Controller: one control-plane interval end to end —
// the eNodeB's statistics report upstream (which triggers the BAI) and
// each plugin's assignment poll downstream. Either leg can be lost to
// the fault injectors; a lost report means the eNodeB keeps its GBRs and
// the window accounting accumulates into the next report, while lost
// polls feed the plugins' fallback detectors. With no faults configured
// the behaviour — and the RNG stream — is identical to a direct push.
// OnFlowArrival implements ArrivalAware: in admission mode the flow's
// session opens here, at the moment it actually starts. A rejection is
// not fatal — the flow starts on its plugin's local ABR and the open is
// re-tried on a doubling BAI gap (and a server-side queue promotion is
// picked up by the poll loop even sooner).
func (d *flareDriver) OnFlowArrival(f *Flow) {
	if d.admission == nil || f.Index < 0 || f.Index >= len(d.admission) {
		return
	}
	st := &d.admission[f.Index]
	st.arrived = true
	d.tryOpen(f, st)
}

// tryOpen attempts one admission-mode session open and advances the
// flow's re-try schedule.
func (d *flareDriver) tryOpen(f *Flow, st *flowAdmission) {
	req := oneapi.SessionRequest{FlowID: f.ID, LadderBps: f.Player.MPD().Ladder()}
	err := d.server.OpenSession(d.cellID, req)
	switch {
	case err == nil:
		st.opened = true
		st.everOpened = true
		st.gap = 0
		st.stallBase = f.Player.StallSeconds()
		st.graceBAI = d.baiCount + admissionGraceBAIs
	case errors.Is(err, oneapi.ErrAdmissionRejected):
		d.ctrl.AdmissionRejects++
		if st.gap == 0 {
			st.gap = 1
		} else if st.gap < admissionRetryCap {
			st.gap *= 2
			if st.gap > admissionRetryCap {
				st.gap = admissionRetryCap
			}
		}
		st.nextTry = d.baiCount + st.gap
	default:
		// Transient (non-admission) failure: knock again next interval.
		st.nextTry = d.baiCount + 1
	}
}

// retryAdmissions re-attempts due opens before the interval's report,
// so a freshly admitted flow is part of this BAI's optimisation.
func (d *flareDriver) retryAdmissions() {
	for i, f := range d.flows {
		st := &d.admission[i]
		if !st.arrived || st.opened || f.Player.Done() || d.baiCount < st.nextTry {
			continue
		}
		d.tryOpen(f, st)
	}
}

func (d *flareDriver) OnBAI(now time.Duration) error {
	d.baiCount++
	if d.admission != nil {
		d.retryAdmissions()
	}
	reportLost := false
	// Legacy knob first (draws from the primary RNG, preserving
	// pre-fault-injector determinism for configs that use it)...
	if d.cfg.StatsLossRate > 0 && d.cfg.RNG.Float64() < d.cfg.StatsLossRate {
		reportLost = true
	}
	// ...then the dedicated injector stream.
	if !reportLost && d.statsFaults != nil && d.statsFaults.Decide(now).Lost() {
		reportLost = true
	}

	if reportLost {
		d.ctrl.ReportsLost++
		d.rec.Emit(obs.ReportLost(int32(d.cellID)))
	} else {
		d.sendBufferFeedback()
		report := oneapi.StatsReport{Flows: d.e.CollectStats(d.flows), NumDataFlows: -1}
		pcef := oneapi.PCEFFunc(func(flowID int, gbr float64) error {
			if d.admission != nil {
				gbr *= admissionGBRHeadroom
			}
			return d.e.SetGBR(flowID, gbr)
		})
		_, err := d.server.RunBAI(d.cellID, report, pcef)
		var enforceErr *oneapi.EnforceError
		if errors.As(err, &enforceErr) {
			// Partial enforcement is degraded, not fatal: the failed
			// flows keep their previous GBR and assignment, and their
			// plugins will see the assignment age until they degrade.
			d.ctrl.EnforceFailures += len(enforceErr.Failed)
		} else if err != nil {
			return err
		}
	}

	// Downstream: each live plugin polls its assignment. The server
	// answers from its current table whether or not this interval's BAI
	// ran; a dropped poll feeds the fallback detector instead.
	for i, f := range d.flows {
		plugin := d.plugins[i]
		if plugin == nil || f.Player.Done() {
			continue
		}
		if d.admission != nil {
			st := &d.admission[i]
			if !st.arrived {
				continue // session not started yet: nothing to poll
			}
			if !st.opened {
				// Waiting for admission: the flow plays on its local
				// ABR. A successful poll means the server promoted the
				// session from its wait queue — upgrade to coordinated
				// on the spot; otherwise feed the fallback detector so
				// the plugin degrades promptly.
				if a, ok := d.server.Assignment(d.cellID, f.ID); ok {
					st.opened = true
					st.everOpened = true
					st.gap = 0
					st.stallBase = f.Player.StallSeconds()
					st.graceBAI = d.baiCount + admissionGraceBAIs
					d.rec.Emit(obs.Deliver(int32(d.cellID), int32(f.ID), a.BAISeq, int32(a.Level), a.RateBps))
					plugin.Deliver(a.RateBps, a.BAISeq)
				} else {
					plugin.PollFailed()
				}
				continue
			}
			if st.graceBAI != 0 && d.baiCount >= st.graceBAI {
				// Grace passed: keep absorbing stall time into the base
				// until the plane has refilled the player once; from
				// that first healthy buffer on, stalls are the
				// coordinated plane's responsibility.
				st.stallBase = f.Player.StallSeconds()
				if f.Player.BufferSeconds() >= admissionHealthyBufferSeconds {
					st.graceBAI = 0
				}
			}
		}
		if d.pollFaults != nil && d.pollFaults.Decide(now).Lost() {
			d.ctrl.PollsLost++
			d.rec.Emit(obs.PollLost(int32(d.cellID), int32(f.ID)))
			plugin.PollFailed()
			continue
		}
		a, ok := d.server.Assignment(d.cellID, f.ID)
		if !ok {
			// No BAI has covered the flow yet (or its session closed):
			// nothing to deliver, nothing failed.
			continue
		}
		d.rec.Emit(obs.Deliver(int32(d.cellID), int32(f.ID), a.BAISeq, int32(a.Level), a.RateBps))
		plugin.Deliver(a.RateBps, a.BAISeq)
	}
	return nil
}

// OnSegmentComplete implements Controller: the plugin already observed
// the download through the adapter path; nothing network-side to do.
func (d *flareDriver) OnSegmentComplete(*Flow, has.SegmentRecord) {}

// OnFlowDeparture implements Controller: release the flow's session so
// the next BAI redistributes its share.
func (d *flareDriver) OnFlowDeparture(f *Flow) {
	d.server.CloseSession(d.cellID, f.ID)
	if d.admission != nil && f.Index >= 0 && f.Index < len(d.admission) {
		st := &d.admission[f.Index]
		st.arrived = false
		st.opened = false
	}
}

// Close implements Controller. Sessions are deliberately left open: a
// shared OneAPI server outlives the run (re-opening is idempotent), and
// solve-time telemetry is read after the run ends.
func (d *flareDriver) Close() error { return nil }

// ControlStats implements ControlTelemetry.
func (d *flareDriver) ControlStats() ControlStats { return d.ctrl }

// SolveTimes implements ControlTelemetry.
func (d *flareDriver) SolveTimes() []float64 { return d.server.SolveTimes(d.cellID) }

// FlowExtras implements FlowTelemetry: the plugin's coordination-mode
// counters.
func (d *flareDriver) FlowExtras(f *Flow) FlowExtras {
	admitted := true
	var preStall float64
	if d.admission != nil && f.Index >= 0 && f.Index < len(d.admission) {
		st := d.admission[f.Index]
		admitted = st.everOpened
		preStall = st.stallBase
	}
	if f.Index < 0 || f.Index >= len(d.plugins) || d.plugins[f.Index] == nil {
		return FlowExtras{Admitted: admitted, PreAdmissionStallSeconds: preStall}
	}
	p := d.plugins[f.Index]
	return FlowExtras{
		FallbackTransitions:      p.Transitions(),
		FallbackIntervals:        p.FallbackIntervals(),
		Admitted:                 admitted,
		PreAdmissionStallSeconds: preStall,
	}
}
