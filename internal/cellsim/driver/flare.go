package driver

import (
	"errors"
	"time"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/oneapi"
)

func init() {
	Register("FLARE", newFlareDriver)
}

// flareDriver runs the paper's system: a OneAPI server (shared or
// private) computes per-BAI bitrate assignments from eNodeB statistics
// reports, installs them as GBRs through the PCEF, and the per-flow
// plugins poll their assignments — with the control-plane fault
// injectors and the plugins' graceful degradation in the loop.
type flareDriver struct {
	cfg    Config
	server *oneapi.Server
	cellID int

	e       Engine
	flows   []*Flow
	plugins []*abr.FlarePlugin // parallel to flows

	// Control-plane fault injection (nil when disabled): independent
	// decision streams for the eNodeB's stats reports and the plugins'
	// assignment polls.
	statsFaults *faults.Injector
	pollFaults  *faults.Injector
	ctrl        ControlStats

	// rec is the telemetry recorder (nil = disabled).
	rec *obs.Recorder

	// Buffer-feedback state: the active per-flow cap in bps (0 = none).
	bufferCaps []float64
}

var (
	_ Controller       = (*flareDriver)(nil)
	_ ControlTelemetry = (*flareDriver)(nil)
	_ FlowTelemetry    = (*flareDriver)(nil)
)

func newFlareDriver(cfg Config) (Controller, error) {
	d := &flareDriver{cfg: cfg, server: cfg.OneAPI, cellID: cfg.CellID, rec: cfg.Obs}
	if d.server == nil {
		d.server = oneapi.NewServer(cfg.Flare, nil)
	}
	if cfg.Obs != nil {
		// Never clobber a shared server's recorder with nil.
		d.server.SetRecorder(cfg.Obs)
	}
	if cfg.ControlFaults.Enabled() {
		// Independent streams so report fate never perturbs poll fate;
		// both derive deterministically from the fault seed.
		statsCfg, pollCfg := cfg.ControlFaults, cfg.ControlFaults
		pollCfg.Seed = statsCfg.Seed ^ 0x9e3779b97f4a7c15
		d.statsFaults = faults.New(statsCfg)
		d.pollFaults = faults.New(pollCfg)
		if cfg.Obs != nil {
			d.statsFaults.SetObserver(faultObserver(cfg.Obs, cfg.CellID, obs.SiteStats))
			d.pollFaults.SetObserver(faultObserver(cfg.Obs, cfg.CellID, obs.SitePoll))
		}
	}
	return d, nil
}

// faultObserver adapts injected fault decisions into telemetry events
// tagged with the control-plane site they struck.
func faultObserver(rec *obs.Recorder, cellID int, site obs.Site) faults.Observer {
	return func(_ time.Duration, dec faults.Decision) {
		rec.Emit(obs.Fault(int32(cellID), site, uint8(dec.Outcome)))
	}
}

// Name implements Controller.
func (d *flareDriver) Name() string { return d.cfg.Scheme }

// SchedulerPolicy implements Controller: FLARE needs GBR enforcement.
func (d *flareDriver) SchedulerPolicy() SchedulerPolicy { return PolicyGBR }

// NewAdapter implements Controller: every flow gets a FLARE plugin with
// the configured degradation policy.
func (d *flareDriver) NewAdapter(int) (has.Adapter, error) {
	p := abr.NewFlarePluginWithFallback(d.cfg.Fallback)
	d.plugins = append(d.plugins, p)
	return p, nil
}

// Init implements Controller: open a OneAPI session per flow and
// register the cell's background traffic (data, legacy, and co-resident
// video groups of other schemes) as data flows at the PCRF — to the
// FLARE controller they are all just competing traffic.
func (d *flareDriver) Init(e Engine, flows []*Flow) error {
	d.e = e
	d.flows = flows
	for _, f := range flows {
		req := oneapi.SessionRequest{FlowID: f.ID, LadderBps: f.Player.MPD().Ladder()}
		if err := d.server.OpenSession(d.cellID, req); err != nil {
			return err
		}
	}
	for _, id := range d.cfg.BackgroundFlowIDs {
		d.server.PCRF().RegisterDataFlow(d.cellID, id)
	}
	if d.rec.Enabled() {
		// Wire each plugin's mode transitions into the trace, tagged
		// with the flow the plugin serves.
		for i := range flows {
			if i >= len(d.plugins) || d.plugins[i] == nil {
				continue
			}
			flowID := int32(flows[i].ID)
			d.plugins[i].SetTransitionObserver(func(to abr.PluginMode, reason abr.TransitionReason, count int) {
				ev := obs.Recovery(int32(d.cellID), flowID, int32(count))
				if to == abr.ModeFallback {
					why := obs.ReasonStale
					if reason == abr.ReasonFailedPolls {
						why = obs.ReasonPolls
					}
					ev = obs.Fallback(int32(d.cellID), flowID, why, int32(count))
				}
				d.rec.Emit(ev)
			})
		}
	}
	return nil
}

// Interval implements Controller: the BAI, floored at 100 TTIs.
func (d *flareDriver) Interval() time.Duration {
	return clampedInterval(d.cfg.Flare.BAI, 100)
}

// lowBufferCap returns the Section II-B buffer-feedback threshold.
func (d *flareDriver) lowBufferCap() float64 {
	if d.cfg.LowBufferCapSeconds < 0 {
		return 0
	}
	if d.cfg.LowBufferCapSeconds == 0 {
		return 6
	}
	return d.cfg.LowBufferCapSeconds
}

// sendBufferFeedback updates each plugin's preference cap from its
// player's buffer state: a low buffer caps the next assignment one level
// down so the session refills; the cap is held (with hysteresis) until
// the buffer recovers to twice the threshold, then cleared.
func (d *flareDriver) sendBufferFeedback() {
	threshold := d.lowBufferCap()
	if threshold <= 0 {
		return
	}
	if d.bufferCaps == nil {
		d.bufferCaps = make([]float64, len(d.flows))
	}
	for i, f := range d.flows {
		plugin := d.plugins[i]
		if plugin == nil || f.Player.Done() {
			continue
		}
		buf := f.Player.BufferSeconds()
		switch {
		case d.bufferCaps[i] == 0 && buf < threshold:
			if cur := plugin.AssignedBps(); cur > 0 {
				lvl := d.cfg.Ladder.HighestAtMost(cur)
				if lvl > 0 {
					lvl--
				}
				d.bufferCaps[i] = d.cfg.Ladder.Rate(lvl)
			}
		case d.bufferCaps[i] > 0 && buf > 2*threshold:
			d.bufferCaps[i] = 0
		}
		// Departed sessions are unregistered; ignore their errors.
		_ = d.server.SetPreferences(d.cellID, f.ID,
			core.Preferences{MaxBps: d.bufferCaps[i]})
	}
}

// OnBAI implements Controller: one control-plane interval end to end —
// the eNodeB's statistics report upstream (which triggers the BAI) and
// each plugin's assignment poll downstream. Either leg can be lost to
// the fault injectors; a lost report means the eNodeB keeps its GBRs and
// the window accounting accumulates into the next report, while lost
// polls feed the plugins' fallback detectors. With no faults configured
// the behaviour — and the RNG stream — is identical to a direct push.
func (d *flareDriver) OnBAI(now time.Duration) error {
	reportLost := false
	// Legacy knob first (draws from the primary RNG, preserving
	// pre-fault-injector determinism for configs that use it)...
	if d.cfg.StatsLossRate > 0 && d.cfg.RNG.Float64() < d.cfg.StatsLossRate {
		reportLost = true
	}
	// ...then the dedicated injector stream.
	if !reportLost && d.statsFaults != nil && d.statsFaults.Decide(now).Lost() {
		reportLost = true
	}

	if reportLost {
		d.ctrl.ReportsLost++
		d.rec.Emit(obs.ReportLost(int32(d.cellID)))
	} else {
		d.sendBufferFeedback()
		report := oneapi.StatsReport{Flows: d.e.CollectStats(d.flows), NumDataFlows: -1}
		pcef := oneapi.PCEFFunc(func(flowID int, gbr float64) error {
			return d.e.SetGBR(flowID, gbr)
		})
		_, err := d.server.RunBAI(d.cellID, report, pcef)
		var enforceErr *oneapi.EnforceError
		if errors.As(err, &enforceErr) {
			// Partial enforcement is degraded, not fatal: the failed
			// flows keep their previous GBR and assignment, and their
			// plugins will see the assignment age until they degrade.
			d.ctrl.EnforceFailures += len(enforceErr.Failed)
		} else if err != nil {
			return err
		}
	}

	// Downstream: each live plugin polls its assignment. The server
	// answers from its current table whether or not this interval's BAI
	// ran; a dropped poll feeds the fallback detector instead.
	for i, f := range d.flows {
		plugin := d.plugins[i]
		if plugin == nil || f.Player.Done() {
			continue
		}
		if d.pollFaults != nil && d.pollFaults.Decide(now).Lost() {
			d.ctrl.PollsLost++
			d.rec.Emit(obs.PollLost(int32(d.cellID), int32(f.ID)))
			plugin.PollFailed()
			continue
		}
		a, ok := d.server.Assignment(d.cellID, f.ID)
		if !ok {
			// No BAI has covered the flow yet (or its session closed):
			// nothing to deliver, nothing failed.
			continue
		}
		d.rec.Emit(obs.Deliver(int32(d.cellID), int32(f.ID), a.BAISeq, int32(a.Level), a.RateBps))
		plugin.Deliver(a.RateBps, a.BAISeq)
	}
	return nil
}

// OnSegmentComplete implements Controller: the plugin already observed
// the download through the adapter path; nothing network-side to do.
func (d *flareDriver) OnSegmentComplete(*Flow, has.SegmentRecord) {}

// OnFlowDeparture implements Controller: release the flow's session so
// the next BAI redistributes its share.
func (d *flareDriver) OnFlowDeparture(f *Flow) {
	d.server.CloseSession(d.cellID, f.ID)
}

// Close implements Controller. Sessions are deliberately left open: a
// shared OneAPI server outlives the run (re-opening is idempotent), and
// solve-time telemetry is read after the run ends.
func (d *flareDriver) Close() error { return nil }

// ControlStats implements ControlTelemetry.
func (d *flareDriver) ControlStats() ControlStats { return d.ctrl }

// SolveTimes implements ControlTelemetry.
func (d *flareDriver) SolveTimes() []float64 { return d.server.SolveTimes(d.cellID) }

// FlowExtras implements FlowTelemetry: the plugin's coordination-mode
// counters.
func (d *flareDriver) FlowExtras(f *Flow) FlowExtras {
	if f.Index < 0 || f.Index >= len(d.plugins) || d.plugins[f.Index] == nil {
		return FlowExtras{}
	}
	p := d.plugins[f.Index]
	return FlowExtras{
		FallbackTransitions: p.Transitions(),
		FallbackIntervals:   p.FallbackIntervals(),
	}
}
