// Package driver is the scheme-driver layer of the cell simulator: the
// seam between the scheme-agnostic engine (internal/cellsim, which owns
// the radio, transport, and player substrates and the TTI loop) and the
// rate-adaptation systems under test (FLARE, AVIS, and the client-only
// ABR family).
//
// A driver is a Controller implementation registered under one or more
// scheme names in the package registry. The engine never dispatches on
// the scheme itself: it looks the driver up by name, asks it for per-flow
// adapters and a radio-scheduler policy, hands it the built flows via
// Init, ticks it at its own control interval via OnBAI, and forwards
// segment completions and early departures. Adding a new scheme is one
// file in this package: implement Controller (embedding Base for the
// hooks you don't need) and Register it in an init function.
package driver

import (
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/sim"
	"github.com/flare-sim/flare/internal/transport"
)

// Flow is one video session under a driver's control: the bearer it
// rides, the transport-level player downloading segments over it, and
// the adapter the driver built for it.
type Flow struct {
	// ID is the flow's bearer ID, unique within the cell.
	ID int
	// Index is the flow's position within the driver's group (0-based).
	Index int
	// UE is the flow's radio terminal index.
	UE int
	// Bearer is the LTE bearer carrying the flow.
	Bearer *lte.Bearer
	// Player is the HAS client state machine.
	Player *has.Player
	// Transport is the flow's transport-level pipe (ticked by the engine;
	// drivers normally only read delivery totals from it).
	Transport *transport.Flow
	// Adapter is the rate-adaptation algorithm driving the player — the
	// value returned by the driver's NewAdapter for this flow.
	Adapter has.Adapter
}

// Engine is the view of the cell the engine exposes to drivers: radio
// accounting and enforcement, plus the run's primary randomness stream.
type Engine interface {
	// CollectStats drains the per-bearer accounting windows of the given
	// flows and attaches the current-MCS efficiency hint — one control
	// interval's Statistics Reporter output. The read is destructive
	// (windows reset), so drivers must only collect their own flows.
	CollectStats(flows []*Flow) map[int]core.FlowStats
	// SetGBR installs a guaranteed bit rate for a flow at the eNodeB.
	SetGBR(flowID int, bps float64) error
	// SetMBR installs a maximum bit rate cap for a flow at the eNodeB.
	SetMBR(flowID int, bps float64) error
	// RNG is the simulation's primary randomness stream. Draws are part
	// of the deterministic replay, so drivers must draw identically for
	// identical configurations.
	RNG() *sim.RNG
}

// SchedulerPolicy expresses a driver's radio-scheduler requirement. In a
// mixed-scheme cell the engine picks the strongest policy any resident
// driver demands (GBR > Sliced > BestEffort).
type SchedulerPolicy int

const (
	// PolicyBestEffort needs no radio cooperation: plain proportional
	// fair (the client-only ABR schemes).
	PolicyBestEffort SchedulerPolicy = iota
	// PolicySliced statically partitions the cell between video and data
	// (AVIS). Drivers returning it should implement SliceSizer.
	PolicySliced
	// PolicyGBR serves per-flow guaranteed bit rates before sharing the
	// remainder proportionally fair (FLARE's two-phase scheduler).
	PolicyGBR
)

// Controller is one scheme's driver: the lifecycle hooks through which
// the engine runs a rate-adaptation system without knowing which one it
// is.
//
// Call order: NewAdapter (once per flow, during cell assembly) →
// Init (once, after every flow in the cell exists) → any interleaving of
// OnBAI / OnSegmentComplete / OnFlowDeparture during the run → Close.
type Controller interface {
	// Name returns the scheme name the driver was registered under.
	Name() string
	// SchedulerPolicy declares the radio scheduler the scheme needs.
	SchedulerPolicy() SchedulerPolicy
	// NewAdapter builds the rate-adaptation adapter for the i-th flow of
	// this driver's group.
	NewAdapter(i int) (has.Adapter, error)
	// Init binds the driver to the engine and the flows of its group.
	// Flows are in group order; flows[i].Adapter is the value NewAdapter
	// returned for i.
	Init(e Engine, flows []*Flow) error
	// Interval is the driver's control-plane tick period; 0 disables
	// ticks (pure client-side schemes).
	Interval() time.Duration
	// OnBAI runs one control interval at simulated time now: collect
	// stats, decide, enforce. Only called when Interval() > 0.
	OnBAI(now time.Duration) error
	// OnSegmentComplete observes one finished segment download on one of
	// the driver's flows (after the flow's own adapter has seen it).
	OnSegmentComplete(f *Flow, rec has.SegmentRecord)
	// OnFlowDeparture tells the driver one of its flows ended its
	// session early, so network-side state can be released.
	OnFlowDeparture(f *Flow)
	// Close releases driver resources at the end of the run.
	Close() error
}

// ArrivalAware is implemented by drivers that need to know the moment a
// flow's session actually starts playing (as opposed to cell assembly,
// when every flow of the run is built ahead of time). The engine calls
// OnFlowArrival from the flow's arrival event, before its first
// download. Admission-controlled schemes open their network sessions
// here — opening at Init would charge the cell for flows that have not
// arrived yet.
type ArrivalAware interface {
	OnFlowArrival(f *Flow)
}

// SliceSizer is implemented by drivers whose SchedulerPolicy is
// PolicySliced: it sizes the static video share of the cell given the
// total video and background (data + legacy) populations.
type SliceSizer interface {
	VideoFraction(numVideo, numBackground int) float64
}

// ControlStats aggregates a driver's control-plane fault activity over a
// run (all zero for fault-free runs).
type ControlStats struct {
	// ReportsLost counts statistics reports lost upstream (no control
	// decision ran that interval).
	ReportsLost int
	// PollsLost counts client assignment polls lost downstream.
	PollsLost int
	// EnforceFailures counts per-flow enforcement installs that failed
	// during otherwise-successful intervals.
	EnforceFailures int
	// AdmissionRejects counts session opens the admission predicate
	// refused (including bounded re-tries of the same flow).
	AdmissionRejects int
}

// ControlTelemetry is implemented by drivers with a network control
// plane, so the engine can surface its activity in the Result.
type ControlTelemetry interface {
	// ControlStats reports accumulated fault activity.
	ControlStats() ControlStats
	// SolveTimes reports per-interval optimiser wall times in seconds.
	SolveTimes() []float64
}

// FlowExtras are per-flow driver-side counters surfaced in the Result.
type FlowExtras struct {
	// FallbackTransitions counts coordination-mode switches.
	FallbackTransitions int
	// FallbackIntervals counts control intervals spent degraded.
	FallbackIntervals int
	// Admitted reports whether the flow's session was (ever) admitted to
	// the network control plane. Always true for schemes without
	// admission control.
	Admitted bool
	// PreAdmissionStallSeconds is the portion of the player's stall time
	// accrued before the session was admitted (plus a short settling
	// window after a mid-stream admission) — starvation from the
	// unadmitted local-ABR period, not a coordination failure. Zero for
	// schemes without admission control.
	PreAdmissionStallSeconds float64
}

// FlowTelemetry is implemented by drivers that keep per-flow
// coordination state worth reporting.
type FlowTelemetry interface {
	FlowExtras(f *Flow) FlowExtras
}

// Base provides no-op implementations of the optional Controller hooks,
// so a minimal scheme only implements Name, NewAdapter, and whatever it
// actually needs.
type Base struct{}

// SchedulerPolicy implements Controller: best-effort radio.
func (Base) SchedulerPolicy() SchedulerPolicy { return PolicyBestEffort }

// Init implements Controller: nothing to bind.
func (Base) Init(Engine, []*Flow) error { return nil }

// Interval implements Controller: no control ticks.
func (Base) Interval() time.Duration { return 0 }

// OnBAI implements Controller: nothing to run.
func (Base) OnBAI(time.Duration) error { return nil }

// OnSegmentComplete implements Controller: ignored.
func (Base) OnSegmentComplete(*Flow, has.SegmentRecord) {}

// OnFlowDeparture implements Controller: ignored.
func (Base) OnFlowDeparture(*Flow) {}

// Close implements Controller: nothing held.
func (Base) Close() error { return nil }

// clampedInterval converts a requested control period to the engine's
// tick grid, enforcing a floor in TTIs.
func clampedInterval(d time.Duration, minTTIs int64) time.Duration {
	ttis := sim.DurationToTTIs(d)
	if ttis < minTTIs {
		ttis = minTTIs
	}
	return time.Duration(ttis) * sim.TTI
}
