package driver

import (
	"time"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/avis"
	"github.com/flare-sim/flare/internal/has"
)

func init() {
	Register("AVIS", newAvisDriver)
}

// avisDriver runs the network-only baseline: a cell-level allocator
// recomputes GBR/MBR assignments every epoch from the eNodeB accounting,
// while each client adapts with its own throughput-based ABR — the
// indirect-enforcement mismatch the paper criticises.
type avisDriver struct {
	Base
	cfg   Config
	alloc *avis.Allocator

	e     Engine
	flows []*Flow
}

var (
	_ Controller = (*avisDriver)(nil)
	_ SliceSizer = (*avisDriver)(nil)
)

func newAvisDriver(cfg Config) (Controller, error) {
	return &avisDriver{cfg: cfg, alloc: avis.NewAllocator(cfg.Avis)}, nil
}

// Name implements Controller.
func (d *avisDriver) Name() string { return d.cfg.Scheme }

// SchedulerPolicy implements Controller: AVIS statically slices the cell.
func (d *avisDriver) SchedulerPolicy() SchedulerPolicy { return PolicySliced }

// VideoFraction implements SliceSizer: a configured fraction wins;
// otherwise the video flows' head-count share of the whole population.
func (d *avisDriver) VideoFraction(numVideo, numBackground int) float64 {
	if frac := d.cfg.Avis.VideoFraction; frac > 0 {
		return frac
	}
	total := numVideo + numBackground
	if total == 0 {
		return 0
	}
	return float64(numVideo) / float64(total)
}

// NewAdapter implements Controller: the AVIS companion client — a simple
// throughput-based ABR requesting the highest sustainable rate.
func (d *avisDriver) NewAdapter(int) (has.Adapter, error) {
	return abr.NewThroughput(3), nil
}

// Init implements Controller: register every flow's ladder with the
// allocator (AVIS learns ladders by inspecting traffic in-network; here
// they are handed over directly).
func (d *avisDriver) Init(e Engine, flows []*Flow) error {
	d.e = e
	d.flows = flows
	for _, f := range flows {
		if err := d.alloc.Register(f.ID, f.Player.MPD().Ladder()); err != nil {
			return err
		}
	}
	return nil
}

// Interval implements Controller: the allocation epoch, floored at 10
// TTIs.
func (d *avisDriver) Interval() time.Duration {
	return clampedInterval(time.Duration(d.alloc.Config().WindowMs)*time.Millisecond, 10)
}

// OnBAI implements Controller: one allocation epoch — drain the window
// accounting, rerun the allocator, and install the GBR/MBR pairs.
func (d *avisDriver) OnBAI(time.Duration) error {
	assignments := d.alloc.RunEpoch(d.e.CollectStats(d.flows), d.cfg.BackgroundFlows)
	for _, a := range assignments {
		if err := d.e.SetGBR(a.FlowID, a.GBRBps); err != nil {
			return err
		}
		if err := d.e.SetMBR(a.FlowID, a.MBRBps); err != nil {
			return err
		}
	}
	return nil
}

// OnFlowDeparture implements Controller: release the flow's slice share.
func (d *avisDriver) OnFlowDeparture(f *Flow) {
	d.alloc.Unregister(f.ID)
}
