package driver

import (
	"fmt"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/has"
)

func init() {
	for _, name := range []string{"FESTIVE", "GOOGLE", "BBA", "MPC"} {
		name := name
		Register(name, func(cfg Config) (Controller, error) {
			return newClientDriver(cfg)
		})
	}
}

// clientDriver runs the client-only ABR family: no network control
// plane, no scheduler demands — each flow's adapter picks bitrates from
// its own measurements. One implementation serves every registered
// client scheme; the adapter constructor is the only varying part.
type clientDriver struct {
	Base
	cfg        Config
	newAdapter func() has.Adapter
}

var _ Controller = (*clientDriver)(nil)

func newClientDriver(cfg Config) (*clientDriver, error) {
	d := &clientDriver{cfg: cfg}
	switch cfg.Scheme {
	case "FESTIVE":
		d.newAdapter = func() has.Adapter { return abr.NewFestive(cfg.Festive, cfg.RNG) }
	case "GOOGLE":
		d.newAdapter = func() has.Adapter { return abr.NewGoogle(cfg.Google) }
	case "BBA":
		d.newAdapter = func() has.Adapter { return abr.NewBBA(abr.DefaultBBAConfig()) }
	case "MPC":
		d.newAdapter = func() has.Adapter {
			mcfg := abr.DefaultMPCConfig()
			mcfg.SegmentSeconds = cfg.SegmentSeconds
			return abr.NewMPC(mcfg)
		}
	default:
		return nil, fmt.Errorf("driver: client driver cannot serve scheme %q", cfg.Scheme)
	}
	return d, nil
}

// Name implements Controller.
func (d *clientDriver) Name() string { return d.cfg.Scheme }

// NewAdapter implements Controller.
func (d *clientDriver) NewAdapter(int) (has.Adapter, error) {
	return d.newAdapter(), nil
}
