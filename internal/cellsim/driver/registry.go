package driver

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a scheme's driver from the engine-assembled view of the
// configuration.
type Factory func(cfg Config) (Controller, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register installs a driver factory under a scheme name. It panics on
// an empty name, a nil factory, or a duplicate registration — all are
// programming errors caught at init time, exactly like image or
// database/sql registrations.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" {
		panic("driver: Register with empty scheme name")
	}
	if f == nil {
		panic(fmt.Sprintf("driver: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("driver: Register(%q) called twice", name))
	}
	registry[name] = f
}

// New builds the driver registered under name. Unknown names are an
// error listing what is available.
func New(name string, cfg Config) (Controller, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("driver: unknown scheme %q (registered: %v)", name, Names())
	}
	cfg.Scheme = name
	return f(cfg)
}

// Known reports whether a scheme name has a registered driver.
func Known(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered scheme names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	//flare:allow key-collection loop: the names are sorted below before returning, so map iteration order never escapes
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
