package driver

import (
	"strings"
	"testing"

	"github.com/flare-sim/flare/internal/sim"
)

func TestNewUnknownScheme(t *testing.T) {
	tests := []struct {
		name string
		want string // substring of the error
	}{
		{"", "unknown scheme"},
		{"NOPE", "unknown scheme"},
		{"flare", "unknown scheme"}, // names are case-sensitive
		{"FLARE ", "unknown scheme"},
	}
	for _, tt := range tests {
		t.Run("name="+tt.name, func(t *testing.T) {
			c, err := New(tt.name, Config{})
			if err == nil {
				t.Fatalf("New(%q) accepted", tt.name)
			}
			if c != nil {
				t.Fatalf("New(%q) returned a controller with an error", tt.name)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("New(%q) error %q missing %q", tt.name, err, tt.want)
			}
			// The error must teach: it lists what is registered.
			if !strings.Contains(err.Error(), "FLARE") {
				t.Fatalf("New(%q) error %q does not list registered schemes", tt.name, err)
			}
		})
	}
}

func TestRegisteredSchemes(t *testing.T) {
	for _, name := range []string{"FLARE", "AVIS", "FESTIVE", "GOOGLE", "BBA", "MPC"} {
		if !Known(name) {
			t.Errorf("scheme %q not registered", name)
		}
	}
	if Known("NOPE") {
		t.Error("Known accepted an unregistered name")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	dummy := func(Config) (Controller, error) { return nil, nil }
	mustPanic("duplicate registration", func() { Register("FLARE", dummy) })
	mustPanic("empty name", func() { Register("", dummy) })
	mustPanic("nil factory", func() { Register("X-NIL", nil) })
}

func TestClientDriverBuildsEveryScheme(t *testing.T) {
	for _, name := range []string{"FESTIVE", "GOOGLE", "BBA", "MPC"} {
		c, err := New(name, Config{SegmentSeconds: 2, RNG: sim.NewRNG(1)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("%s driver reports name %q", name, c.Name())
		}
		if c.SchedulerPolicy() != PolicyBestEffort {
			t.Errorf("%s is client-only but demands policy %d", name, c.SchedulerPolicy())
		}
		if c.Interval() != 0 {
			t.Errorf("%s is client-only but wants control ticks", name)
		}
		a, err := c.NewAdapter(0)
		if err != nil || a == nil {
			t.Errorf("%s adapter: %v %v", name, a, err)
		}
	}
	// The client factory itself refuses schemes it does not serve.
	if _, err := newClientDriver(Config{Scheme: "FLARE"}); err == nil {
		t.Error("client driver accepted FLARE")
	}
}
