package driver

import (
	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/avis"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/oneapi"
	"github.com/flare-sim/flare/internal/sim"
)

// Config is the engine-assembled view a driver factory receives: the
// slice of the cell configuration one scheme's driver needs, plus the
// cell-level context (shared control server, background populations)
// the engine computes for it. It deliberately does not reference the
// cellsim package — the dependency points the other way.
type Config struct {
	// Scheme is the registry name the driver is being built for (one
	// driver implementation may serve several names).
	Scheme string
	// Count is the number of video flows in this driver's group.
	Count int
	// Ladder is the cell's encoding ladder.
	Ladder has.Ladder
	// SegmentSeconds is the segment duration (MPC's horizon unit).
	SegmentSeconds float64
	// RNG is the simulation's primary randomness stream, shared with the
	// engine — draws interleave with the rest of the deterministic run.
	RNG *sim.RNG

	// Flare configures the FLARE controller (BAI, alpha, delta, solver).
	Flare core.Config
	// Avis configures the AVIS allocator.
	Avis avis.Config
	// Festive and Google configure the client baselines.
	Festive abr.FestiveConfig
	Google  abr.GoogleConfig
	// Fallback parameterises FLARE-plugin graceful degradation.
	Fallback abr.FallbackConfig
	// ControlFaults injects faults into the driver's control plane.
	ControlFaults faults.Config
	// StatsLossRate is the legacy stats-report loss knob (draws from RNG).
	StatsLossRate float64
	// LowBufferCapSeconds is the FLARE buffer-feedback threshold
	// (negative disables; 0 means the default).
	LowBufferCapSeconds float64

	// OneAPI is the shared control server for FLARE cells (nil = the
	// driver creates a private one). CellID is this cell's ID on it.
	OneAPI *oneapi.Server
	CellID int
	// ControlShards sets the shard count of a driver-created private
	// server (0 = the oneapi default). Shard count never changes
	// results — the shards=1 ≡ shards=N lockstep tests pin that — so
	// this is a contention knob for live deployments and a lever for
	// the equivalence tests. Ignored when OneAPI is non-nil.
	ControlShards int

	// BackgroundFlows counts the cell's flows NOT in this driver's group
	// (data + legacy + other video groups) — the competing population a
	// network-side allocator must budget for.
	BackgroundFlows int
	// BackgroundFlowIDs are those flows' bearer IDs, for drivers that
	// register competing traffic with their control plane (FLARE's PCRF).
	BackgroundFlowIDs []int

	// Obs is the telemetry recorder for this cell's control plane (nil =
	// recording disabled, the zero-cost default).
	Obs *obs.Recorder
}
