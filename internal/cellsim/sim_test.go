package cellsim

import (
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
)

// quickConfig returns a fast-running scenario: 2 s segments, 2 s BAI,
// 120 s duration.
func quickConfig(scheme Scheme, nVideo, nData int) Config {
	cfg := DefaultConfig(scheme)
	cfg.Duration = 120 * time.Second
	cfg.NumVideo = nVideo
	cfg.NumData = nData
	cfg.SegmentDuration = 2 * time.Second
	cfg.Flare.BAI = 2 * time.Second
	cfg.Flare.Delta = 1
	cfg.Channel = ChannelSpec{Kind: ChannelStatic, StaticITbs: 10}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := quickConfig(SchemeFLARE, 2, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.NumVideo = -1 },
		func(c *Config) { c.NumVideo, c.NumData = 0, 0 },
		func(c *Config) { c.Ladder = has.Ladder{} },
		func(c *Config) { c.SegmentDuration = 0 },
		func(c *Config) { c.Scheme = Scheme(99) },
		func(c *Config) { c.Channel.Kind = ChannelKind(99) },
		func(c *Config) { c.Channel = ChannelSpec{Kind: ChannelCyclic} },
		func(c *Config) { c.Channel = ChannelSpec{Kind: ChannelTrace} },
	}
	for i, mutate := range bad {
		cfg := quickConfig(SchemeFLARE, 2, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		SchemeFLARE: "FLARE", SchemeFESTIVE: "FESTIVE",
		SchemeGOOGLE: "GOOGLE", SchemeAVIS: "AVIS",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if Scheme(0).String() != "Scheme(0)" {
		t.Error("unknown scheme string")
	}
}

func TestRunAllSchemesComplete(t *testing.T) {
	for _, scheme := range []Scheme{SchemeFLARE, SchemeFESTIVE, SchemeGOOGLE, SchemeAVIS} {
		res, err := Run(quickConfig(scheme, 3, 1))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(res.Clients) != 3 || len(res.Data) != 1 {
			t.Fatalf("%v: %d clients, %d data", scheme, len(res.Clients), len(res.Data))
		}
		for _, c := range res.Clients {
			if c.Segments < 10 {
				t.Fatalf("%v: client %d only downloaded %d segments", scheme, c.FlowID, c.Segments)
			}
			if c.AvgRateBps <= 0 {
				t.Fatalf("%v: client %d zero average rate", scheme, c.FlowID)
			}
		}
		if res.Data[0].AvgTputBps <= 0 {
			t.Fatalf("%v: data flow got nothing", scheme)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 2, 1)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Clients {
		if a.Clients[i] != b.Clients[i] {
			t.Fatalf("client %d differs across identical runs:\n%+v\n%+v", i, a.Clients[i], b.Clients[i])
		}
	}
	// Seed sensitivity: use a scheme and channel with real randomness
	// (FESTIVE pacing jitter on a mobility channel).
	mob := quickConfig(SchemeFESTIVE, 3, 0)
	mob.Channel = ChannelSpec{Kind: ChannelMobility}
	mob.Duration = 60 * time.Second
	r1, err := Run(mob)
	if err != nil {
		t.Fatal(err)
	}
	mob.Seed = 99
	r2, err := Run(mob)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Clients {
		if r1.Clients[i] != r2.Clients[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical mobility results")
	}
}

func TestFLAREStableAndStallFree(t *testing.T) {
	res, err := Run(quickConfig(SchemeFLARE, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		if c.StallSeconds > 0 {
			t.Errorf("FLARE client %d stalled %.1f s", c.FlowID, c.StallSeconds)
		}
	}
	if len(res.SolveTimesSec) == 0 {
		t.Error("no solver times recorded")
	}
}

func TestFLAREMoreStableThanFESTIVE(t *testing.T) {
	// The paper's central stability claim, on the dynamic (cyclic MCS)
	// scenario where link variability stresses client-side estimation.
	dyn := func(scheme Scheme) Config {
		cfg := quickConfig(scheme, 3, 1)
		cfg.Duration = 600 * time.Second
		cfg.Ladder = has.TestbedLadder()
		cfg.Channel = ChannelSpec{
			Kind: ChannelCyclic, CyclicMin: 1, CyclicMax: 12,
			CyclicPeriod: 120 * time.Second,
		}
		cfg.Flare.Delta = 4
		return cfg
	}
	flare, err := Run(dyn(SchemeFLARE))
	if err != nil {
		t.Fatal(err)
	}
	festive, err := Run(dyn(SchemeFESTIVE))
	if err != nil {
		t.Fatal(err)
	}
	if flare.MeanChanges() >= festive.MeanChanges() {
		t.Fatalf("FLARE changes %.1f >= FESTIVE %.1f",
			flare.MeanChanges(), festive.MeanChanges())
	}
}

func TestFLAREClimbsToUsefulRate(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 2, 0)
	cfg.Duration = 180 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// iTbs 10 is ~9 Mbps; 2 clients with no data flows must climb well
	// above the lowest rung by the end of 180 s.
	for _, c := range res.Clients {
		if c.AvgRateBps < 200_000 {
			t.Errorf("client %d average rate only %.0f bps", c.FlowID, c.AvgRateBps)
		}
	}
}

func TestAVISSliceLimitsDataWhenVideoIdle(t *testing.T) {
	// AVIS statically reserves the video slice, so a lone data flow
	// cannot use the whole cell even when video demand is low;
	// under FLARE the same data flow gets strictly more.
	avisRes, err := Run(quickConfig(SchemeAVIS, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	flareRes, err := Run(quickConfig(SchemeFLARE, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if avisRes.Data[0].AvgTputBps >= flareRes.Data[0].AvgTputBps {
		t.Fatalf("AVIS data %.0f >= FLARE data %.0f despite static slicing",
			avisRes.Data[0].AvgTputBps, flareRes.Data[0].AvgTputBps)
	}
}

func TestSeriesCollection(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 2, 1)
	cfg.CollectSeries = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VideoRateSeries) != 2 || len(res.BufferSeries) != 2 || len(res.DataTputSeries) != 1 {
		t.Fatalf("series counts %d/%d/%d", len(res.VideoRateSeries), len(res.BufferSeries), len(res.DataTputSeries))
	}
	// ~119 samples for 120 s at 1 Hz.
	if n := res.VideoRateSeries[0].Len(); n < 100 {
		t.Fatalf("rate series has %d samples", n)
	}
	// Buffers must stay non-negative and bounded.
	for _, ts := range res.BufferSeries {
		for _, p := range ts.Points() {
			if p.Y < 0 || p.Y > 60 {
				t.Fatalf("implausible buffer sample %v", p)
			}
		}
	}
}

func TestNoSeriesByDefault(t *testing.T) {
	res, err := Run(quickConfig(SchemeGOOGLE, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.VideoRateSeries != nil {
		t.Fatal("series collected without CollectSeries")
	}
}

func TestResultAccessors(t *testing.T) {
	res, err := Run(quickConfig(SchemeFESTIVE, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvgRates()) != 2 || len(res.Changes()) != 2 || len(res.AvgTputs()) != 2 {
		t.Fatal("accessor lengths wrong")
	}
	if len(res.DataTputs()) != 1 {
		t.Fatal("data accessor wrong")
	}
	if j := res.JainOfTputs(); j <= 0 || j > 1 {
		t.Fatalf("Jain = %v", j)
	}
	if j := res.JainOfRates(); j <= 0 || j > 1 {
		t.Fatalf("Jain rates = %v", j)
	}
	if res.MeanClientRate() <= 0 {
		t.Fatal("mean rate non-positive")
	}
	if res.TotalStallSeconds() < 0 {
		t.Fatal("negative stalls")
	}
}

func TestMobilityScenarioRuns(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 4, 0)
	cfg.Channel = ChannelSpec{Kind: ChannelMobility}
	cfg.Duration = 60 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		if c.Segments == 0 {
			t.Fatal("mobile client downloaded nothing")
		}
	}
}

func TestCyclicScenarioRuns(t *testing.T) {
	cfg := quickConfig(SchemeGOOGLE, 2, 1)
	cfg.Channel = ChannelSpec{
		Kind: ChannelCyclic, CyclicMin: 1, CyclicMax: 12,
		CyclicPeriod: 30 * time.Second,
	}
	cfg.Duration = 90 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients[0].Segments == 0 {
		t.Fatal("cyclic client downloaded nothing")
	}
}

func TestTraceScenarioRuns(t *testing.T) {
	cfg := quickConfig(SchemeFESTIVE, 2, 0)
	cfg.Channel = ChannelSpec{
		Kind:      ChannelTrace,
		Traces:    [][]int{{4, 8, 12, 8}, {12, 8, 4, 8}},
		TraceStep: 5 * time.Second,
	}
	cfg.Duration = 60 * time.Second
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDataOnlyScenario(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 0, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clients) != 0 || len(res.Data) != 2 {
		t.Fatal("data-only scenario wrong shape")
	}
	for _, d := range res.Data {
		if d.AvgTputBps <= 0 {
			t.Fatal("data flow starved")
		}
	}
}

func TestBadMobilitySpecPropagates(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 2, 0)
	mob := lte.DefaultMobilityConfig(2)
	mob.MinSpeed, mob.MaxSpeed = 5, 1 // inverted
	cfg.Channel = ChannelSpec{Kind: ChannelMobility, Mobility: mob}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid mobility config accepted")
	}
}

func TestSampleEveryDefaulted(t *testing.T) {
	cfg := quickConfig(SchemeFLARE, 1, 0)
	cfg.SampleEvery = -5
	cfg.CollectSeries = true
	cfg.Duration = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.VideoRateSeries[0].Len() < 20 {
		t.Fatalf("default sampling broken: %d samples", res.VideoRateSeries[0].Len())
	}
}
