package cellsim

import (
	"errors"
	"fmt"
	"time"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/avis"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/metrics"
	"github.com/flare-sim/flare/internal/oneapi"
	"github.com/flare-sim/flare/internal/qoe"
	"github.com/flare-sim/flare/internal/sim"
	"github.com/flare-sim/flare/internal/transport"
)

// env adapts the simulation loop to transport.Env.
type env struct {
	clock  sim.Clock
	events sim.EventQueue
}

func (e *env) NowTTI() int64 { return e.clock.TTI() }

func (e *env) Schedule(delay int64, fn func()) {
	if delay < 1 {
		delay = 1
	}
	e.events.Schedule(e.clock.TTI()+delay, fn)
}

// Sim is one assembled cell simulation. Build with New, execute with Run.
type Sim struct {
	cfg     Config
	env     env
	rng     *sim.RNG
	channel lte.Channel
	enb     *lte.ENodeB

	videoBearers []*lte.Bearer
	videoFlows   []*transport.Flow
	players      []*has.Player
	plugins      []*abr.FlarePlugin // parallel to players for FLARE

	dataBearers []*lte.Bearer
	dataFlows   []*transport.Flow

	legacyBearers []*lte.Bearer
	legacyFlows   []*transport.Flow
	legacyPlayers []*has.Player

	oneAPI    *oneapi.Server  // FLARE only
	cellID    int             // this cell's ID at the OneAPI server
	allocator *avis.Allocator // AVIS only

	// control-plane fault injection (FLARE only, nil when disabled):
	// independent decision streams for the eNodeB's stats reports and
	// the plugins' assignment polls.
	statsFaults *faults.Injector
	pollFaults  *faults.Injector
	ctrl        ControlPlaneStats

	// buffer-feedback state: the active per-flow cap in bps (0 = none).
	bufferCaps []float64

	// series state
	rateSeries    []*metrics.TimeSeries
	bufSeries     []*metrics.TimeSeries
	dataSeries    []*metrics.TimeSeries
	lastDataBytes []int64
}

// New assembles a simulation from the configuration.
func New(cfg Config) (*Sim, error) {
	return NewInCell(cfg, nil, 0)
}

// NewInCell assembles a simulation whose FLARE control plane lives on a
// shared OneAPI server under the given cell ID — the paper's "a single
// OneAPI server can manage multiple BSs, though the bitrates are
// calculated independently for each network cell". A nil server gives
// the cell its own private one.
func NewInCell(cfg Config, server *oneapi.Server, cellID int) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Second
	}
	s := &Sim{cfg: cfg, rng: sim.NewRNG(cfg.Seed), oneAPI: server, cellID: cellID}

	numUEs := cfg.NumVideo + cfg.NumData + cfg.NumLegacy
	ch, err := s.buildChannel(numUEs)
	if err != nil {
		return nil, err
	}
	s.channel = ch
	s.enb = lte.NewENodeB(ch, s.buildScheduler())

	if err := s.buildVideo(); err != nil {
		return nil, err
	}
	if err := s.buildData(); err != nil {
		return nil, err
	}
	if err := s.buildLegacy(); err != nil {
		return nil, err
	}
	if err := s.buildControlPlane(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Sim) buildChannel(numUEs int) (lte.Channel, error) {
	spec := s.cfg.Channel
	switch spec.Kind {
	case ChannelStatic:
		return lte.NewUniformStaticChannel(numUEs, spec.StaticITbs), nil
	case ChannelCyclic:
		period := sim.DurationToTTIs(spec.CyclicPeriod)
		offsets := make([]int64, numUEs)
		for i := range offsets {
			offsets[i] = period * int64(i) / int64(numUEs)
		}
		return lte.NewCyclicChannel(spec.CyclicMin, spec.CyclicMax, period, offsets)
	case ChannelMobility:
		mcfg := spec.Mobility
		if mcfg.AreaMeters == 0 {
			mcfg = lte.DefaultMobilityConfig(numUEs)
		}
		mcfg.NumUEs = numUEs
		return lte.NewMobilityChannel(mcfg, s.rng)
	case ChannelTrace:
		return lte.NewTraceChannel(spec.Traces, sim.DurationToTTIs(spec.TraceStep))
	default:
		return nil, fmt.Errorf("cellsim: unknown channel kind %d", int(spec.Kind))
	}
}

func (s *Sim) buildScheduler() lte.Scheduler {
	switch s.cfg.Scheme {
	case SchemeFLARE:
		return lte.TwoPhaseGBRScheduler{}
	case SchemeAVIS:
		frac := s.cfg.Avis.VideoFraction
		if frac <= 0 {
			total := s.cfg.NumVideo + s.cfg.NumData + s.cfg.NumLegacy
			frac = float64(s.cfg.NumVideo) / float64(total)
		}
		return lte.SlicedScheduler{VideoFraction: frac}
	default:
		return lte.PFScheduler{}
	}
}

func (s *Sim) buildVideo() error {
	segs := int(s.cfg.Duration/s.cfg.SegmentDuration) + 16
	for i := 0; i < s.cfg.NumVideo; i++ {
		mpd, err := has.NewMPD(s.cfg.Ladder, s.cfg.SegmentDuration, segs)
		if err != nil {
			return err
		}
		mpd.SizeJitter = s.cfg.VBRJitter
		b := &lte.Bearer{ID: i, UE: i, Class: lte.ClassVideo}
		if _, err := s.enb.AddBearer(b); err != nil {
			return err
		}
		flow, err := transport.NewFlow(&s.env, b, s.cfg.Transport)
		if err != nil {
			return err
		}
		adapter, plugin := s.buildAdapter()
		player, err := has.NewPlayer(&s.env, flow, mpd, adapter, s.cfg.Player)
		if err != nil {
			return err
		}
		s.videoBearers = append(s.videoBearers, b)
		s.videoFlows = append(s.videoFlows, flow)
		s.players = append(s.players, player)
		s.plugins = append(s.plugins, plugin)
	}
	return nil
}

// buildAdapter returns the scheme's adapter; the second value is non-nil
// only for FLARE (the plugin handle assignments are pushed to).
func (s *Sim) buildAdapter() (has.Adapter, *abr.FlarePlugin) {
	switch s.cfg.Scheme {
	case SchemeFLARE:
		p := abr.NewFlarePluginWithFallback(s.cfg.Fallback)
		return p, p
	case SchemeFESTIVE:
		return abr.NewFestive(s.cfg.Festive, s.rng), nil
	case SchemeGOOGLE:
		return abr.NewGoogle(s.cfg.Google), nil
	case SchemeAVIS:
		return abr.NewThroughput(3), nil
	case SchemeBBA:
		return abr.NewBBA(abr.DefaultBBAConfig()), nil
	case SchemeMPC:
		mcfg := abr.DefaultMPCConfig()
		mcfg.SegmentSeconds = s.cfg.SegmentDuration.Seconds()
		return abr.NewMPC(mcfg), nil
	default:
		panic("cellsim: unreachable scheme")
	}
}

func (s *Sim) buildData() error {
	for i := 0; i < s.cfg.NumData; i++ {
		id := s.cfg.NumVideo + i
		b := &lte.Bearer{ID: id, UE: id, Class: lte.ClassData}
		if _, err := s.enb.AddBearer(b); err != nil {
			return err
		}
		flow, err := transport.NewFlow(&s.env, b, s.cfg.Transport)
		if err != nil {
			return err
		}
		s.dataBearers = append(s.dataBearers, b)
		s.dataFlows = append(s.dataFlows, flow)
	}
	return nil
}

// buildLegacy adds the conventional (non-FLARE) players of the Section
// V coexistence deployment: FESTIVE adaptation over best-effort (data
// class) bearers, invisible to the FLARE controller except as data
// flows at the PCRF.
func (s *Sim) buildLegacy() error {
	segs := int(s.cfg.Duration/s.cfg.SegmentDuration) + 16
	for i := 0; i < s.cfg.NumLegacy; i++ {
		id := s.cfg.NumVideo + s.cfg.NumData + i
		mpd, err := has.NewMPD(s.cfg.Ladder, s.cfg.SegmentDuration, segs)
		if err != nil {
			return err
		}
		mpd.SizeJitter = s.cfg.VBRJitter
		b := &lte.Bearer{ID: id, UE: id, Class: lte.ClassData}
		if _, err := s.enb.AddBearer(b); err != nil {
			return err
		}
		flow, err := transport.NewFlow(&s.env, b, s.cfg.Transport)
		if err != nil {
			return err
		}
		player, err := has.NewPlayer(&s.env, flow, mpd, abr.NewFestive(s.cfg.Festive, s.rng), s.cfg.Player)
		if err != nil {
			return err
		}
		s.legacyBearers = append(s.legacyBearers, b)
		s.legacyFlows = append(s.legacyFlows, flow)
		s.legacyPlayers = append(s.legacyPlayers, player)
	}
	return nil
}

func (s *Sim) buildControlPlane() error {
	switch s.cfg.Scheme {
	case SchemeFLARE:
		if s.oneAPI == nil {
			s.oneAPI = oneapi.NewServer(s.cfg.Flare, nil)
		}
		if s.cfg.ControlFaults.Enabled() {
			// Independent streams so report fate never perturbs poll
			// fate; both derive deterministically from the fault seed.
			statsCfg, pollCfg := s.cfg.ControlFaults, s.cfg.ControlFaults
			pollCfg.Seed = statsCfg.Seed ^ 0x9e3779b97f4a7c15
			s.statsFaults = faults.New(statsCfg)
			s.pollFaults = faults.New(pollCfg)
		}
		for i, b := range s.videoBearers {
			req := oneapi.SessionRequest{FlowID: b.ID, LadderBps: s.players[i].MPD().Ladder()}
			if err := s.oneAPI.OpenSession(s.cellID, req); err != nil {
				return err
			}
		}
		for _, b := range s.dataBearers {
			s.oneAPI.PCRF().RegisterDataFlow(s.cellID, b.ID)
		}
		// Legacy HAS flows look like data traffic to the network.
		for _, b := range s.legacyBearers {
			s.oneAPI.PCRF().RegisterDataFlow(s.cellID, b.ID)
		}
	case SchemeAVIS:
		s.oneAPI = nil // the injected OneAPI server is FLARE-only
		s.allocator = avis.NewAllocator(s.cfg.Avis)
		for i, b := range s.videoBearers {
			if err := s.allocator.Register(b.ID, s.players[i].MPD().Ladder()); err != nil {
				return err
			}
		}
	default:
		s.oneAPI = nil // client-side schemes have no control plane
	}
	return nil
}

// collectStats drains the per-bearer accounting windows and attaches the
// current-MCS hint — the Statistics Reporter's report for one interval.
func (s *Sim) collectStats() map[int]core.FlowStats {
	stats := make(map[int]core.FlowStats, len(s.videoBearers))
	for _, b := range s.videoBearers {
		w := b.CollectWindow()
		stats[b.ID] = core.FlowStats{
			Bytes:          w.Bytes,
			RBs:            w.RBs,
			BytesPerRBHint: lte.BitsPerRB(s.channel.ITbs(b.UE)) / 8,
		}
	}
	return stats
}

// lowBufferCap returns the Section II-B buffer-feedback threshold.
func (s *Sim) lowBufferCap() float64 {
	if s.cfg.LowBufferCapSeconds < 0 {
		return 0
	}
	if s.cfg.LowBufferCapSeconds == 0 {
		return 6
	}
	return s.cfg.LowBufferCapSeconds
}

// sendBufferFeedback updates each plugin's preference cap from its
// player's buffer state: a low buffer caps the next assignment one level
// down so the session refills; the cap is held (with hysteresis) until
// the buffer recovers to twice the threshold, then cleared.
func (s *Sim) sendBufferFeedback() {
	threshold := s.lowBufferCap()
	if threshold <= 0 {
		return
	}
	if s.bufferCaps == nil {
		s.bufferCaps = make([]float64, len(s.players))
	}
	for i, p := range s.players {
		plugin := s.plugins[i]
		if plugin == nil || p.Done() {
			continue
		}
		buf := p.BufferSeconds()
		switch {
		case s.bufferCaps[i] == 0 && buf < threshold:
			if cur := plugin.AssignedBps(); cur > 0 {
				lvl := s.cfg.Ladder.HighestAtMost(cur)
				if lvl > 0 {
					lvl--
				}
				s.bufferCaps[i] = s.cfg.Ladder.Rate(lvl)
			}
		case s.bufferCaps[i] > 0 && buf > 2*threshold:
			s.bufferCaps[i] = 0
		}
		// Departed sessions are unregistered; ignore their errors.
		_ = s.oneAPI.SetPreferences(s.cellID, s.videoBearers[i].ID,
			core.Preferences{MaxBps: s.bufferCaps[i]})
	}
}

// flareControlTick models one control-plane interval end to end: the
// eNodeB's statistics report upstream (which triggers the BAI) and each
// plugin's assignment poll downstream. Either leg can be lost to the
// fault injectors; a lost report means the eNodeB keeps its GBRs and
// the window accounting accumulates into the next report, while lost
// polls feed the plugins' fallback detectors. With no faults configured
// the behaviour — and the RNG stream — is identical to the original
// direct-push path.
func (s *Sim) flareControlTick(now time.Duration) error {
	reportLost := false
	// Legacy knob first (draws from the primary RNG, preserving
	// pre-fault-injector determinism for configs that use it)...
	if s.cfg.StatsLossRate > 0 && s.rng.Float64() < s.cfg.StatsLossRate {
		reportLost = true
	}
	// ...then the dedicated injector stream.
	if !reportLost && s.statsFaults != nil && s.statsFaults.Decide(now).Lost() {
		reportLost = true
	}

	if reportLost {
		s.ctrl.ReportsLost++
	} else {
		s.sendBufferFeedback()
		report := oneapi.StatsReport{Flows: s.collectStats(), NumDataFlows: -1}
		pcef := oneapi.PCEFFunc(func(flowID int, gbr float64) error {
			return s.enb.SetGBR(flowID, gbr)
		})
		_, err := s.oneAPI.RunBAI(s.cellID, report, pcef)
		var enforceErr *oneapi.EnforceError
		if errors.As(err, &enforceErr) {
			// Partial enforcement is degraded, not fatal: the failed
			// flows keep their previous GBR and assignment, and their
			// plugins will see the assignment age until they degrade.
			s.ctrl.EnforceFailures += len(enforceErr.Failed)
		} else if err != nil {
			return err
		}
	}

	// Downstream: each live plugin polls its assignment. The server
	// answers from its current table whether or not this interval's
	// BAI ran; a dropped poll feeds the fallback detector instead.
	for i, plugin := range s.plugins {
		if plugin == nil || s.players[i].Done() {
			continue
		}
		if s.pollFaults != nil && s.pollFaults.Decide(now).Lost() {
			s.ctrl.PollsLost++
			plugin.PollFailed()
			continue
		}
		a, ok := s.oneAPI.Assignment(s.cellID, s.videoBearers[i].ID)
		if !ok {
			// No BAI has covered the flow yet (or its session closed):
			// nothing to deliver, nothing failed.
			continue
		}
		plugin.Deliver(a.RateBps, a.BAISeq)
	}
	return nil
}

func (s *Sim) runAvisEpoch() error {
	assignments := s.allocator.RunEpoch(s.collectStats(), s.cfg.NumData+s.cfg.NumLegacy)
	for _, a := range assignments {
		if err := s.enb.SetGBR(a.FlowID, a.GBRBps); err != nil {
			return err
		}
		if err := s.enb.SetMBR(a.FlowID, a.MBRBps); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sim) sample(tSec float64) {
	for i, p := range s.players {
		rate := 0.0
		if q := p.State().LastQuality; q >= 0 {
			rate = s.cfg.Ladder.Rate(q)
		}
		s.rateSeries[i].Add(tSec, rate)
		s.bufSeries[i].Add(tSec, p.BufferSeconds())
	}
	for i, f := range s.dataFlows {
		delivered := f.DeliveredTotal()
		delta := delivered - s.lastDataBytes[i]
		s.lastDataBytes[i] = delivered
		s.dataSeries[i].Add(tSec, float64(delta)*8/s.cfg.SampleEvery.Seconds())
	}
}

// Run executes the simulation and returns the collected results.
func (s *Sim) Run() (*Result, error) {
	durTTIs := sim.DurationToTTIs(s.cfg.Duration)

	// Stagger player and data-flow starts over the first two seconds so
	// clients don't move in lockstep; explicit arrival schedules win.
	for i, p := range s.players {
		p := p
		startTTI := int64(s.rng.Intn(2000))
		if len(s.cfg.VideoArrivals) > 0 {
			startTTI = sim.DurationToTTIs(s.cfg.VideoArrivals[i])
		}
		s.env.events.Schedule(startTTI, p.Start)
		if len(s.cfg.VideoDepartures) > 0 && s.cfg.VideoDepartures[i] > 0 {
			id := s.videoBearers[i].ID
			s.env.events.Schedule(sim.DurationToTTIs(s.cfg.VideoDepartures[i]), func() {
				p.Stop()
				if s.oneAPI != nil {
					s.oneAPI.CloseSession(s.cellID, id)
				}
				if s.allocator != nil {
					s.allocator.Unregister(id)
				}
			})
		}
	}
	for _, p := range s.legacyPlayers {
		p := p
		s.env.events.Schedule(int64(s.rng.Intn(2000)), p.Start)
	}
	for _, f := range s.dataFlows {
		f := f
		s.env.events.Schedule(int64(s.rng.Intn(2000)), func() { f.SetGreedy(true) })
	}

	baiTTIs := int64(0)
	if s.oneAPI != nil {
		baiTTIs = sim.DurationToTTIs(s.cfg.Flare.BAI)
		if baiTTIs < 100 {
			baiTTIs = 100
		}
	}
	epochTTIs := int64(0)
	if s.allocator != nil {
		epochTTIs = int64(s.allocator.Config().WindowMs)
		if epochTTIs < 10 {
			epochTTIs = 10
		}
	}
	sampleTTIs := sim.DurationToTTIs(s.cfg.SampleEvery)
	if s.cfg.CollectSeries {
		s.rateSeries = make([]*metrics.TimeSeries, len(s.players))
		s.bufSeries = make([]*metrics.TimeSeries, len(s.players))
		for i := range s.players {
			s.rateSeries[i] = &metrics.TimeSeries{}
			s.bufSeries[i] = &metrics.TimeSeries{}
		}
		s.dataSeries = make([]*metrics.TimeSeries, len(s.dataFlows))
		for i := range s.dataFlows {
			s.dataSeries[i] = &metrics.TimeSeries{}
		}
		s.lastDataBytes = make([]int64, len(s.dataFlows))
	}

	for tti := int64(0); tti < durTTIs; tti++ {
		s.env.events.RunDue(tti)
		for _, f := range s.videoFlows {
			f.Tick()
		}
		for _, f := range s.dataFlows {
			f.Tick()
		}
		for _, f := range s.legacyFlows {
			f.Tick()
		}
		s.enb.RunTTI(tti)

		if baiTTIs > 0 && tti > 0 && tti%baiTTIs == 0 {
			if err := s.flareControlTick(time.Duration(tti) * sim.TTI); err != nil {
				return nil, err
			}
		}
		if epochTTIs > 0 && tti > 0 && tti%epochTTIs == 0 {
			if err := s.runAvisEpoch(); err != nil {
				return nil, err
			}
		}
		if s.cfg.CollectSeries && tti > 0 && tti%sampleTTIs == 0 {
			s.sample(float64(tti) / lte.TTIsPerSecond)
		}
		s.env.clock.Advance()
	}
	return s.buildResult(), nil
}

func (s *Sim) buildResult() *Result {
	durSec := s.cfg.Duration.Seconds()
	res := &Result{Scheme: s.cfg.Scheme}
	for i, p := range s.players {
		rates := p.SelectedRates()
		cr := ClientResult{
			FlowID:              s.videoBearers[i].ID,
			AvgRateBps:          metrics.Mean(rates),
			AvgTputBps:          float64(s.videoFlows[i].DeliveredTotal()) * 8 / durSec,
			NumChanges:          metrics.CountChanges(rates),
			Segments:            len(rates),
			StallSeconds:        p.StallSeconds(),
			StallCount:          p.StallCount(),
			StartupDelaySeconds: p.StartupDelaySeconds(),
			QoEScore:            qoe.Score(rates, p.StallSeconds(), p.StartupDelaySeconds(), qoe.DefaultWeights()),
		}
		if i < len(s.plugins) && s.plugins[i] != nil {
			cr.FallbackTransitions = s.plugins[i].Transitions()
			cr.FallbackIntervals = s.plugins[i].FallbackIntervals()
		}
		res.Clients = append(res.Clients, cr)
	}
	for i, f := range s.dataFlows {
		res.Data = append(res.Data, DataResult{
			FlowID:     s.dataBearers[i].ID,
			AvgTputBps: float64(f.DeliveredTotal()) * 8 / durSec,
		})
	}
	for i, p := range s.legacyPlayers {
		rates := p.SelectedRates()
		res.Legacy = append(res.Legacy, ClientResult{
			FlowID:              s.legacyBearers[i].ID,
			AvgRateBps:          metrics.Mean(rates),
			AvgTputBps:          float64(s.legacyFlows[i].DeliveredTotal()) * 8 / durSec,
			NumChanges:          metrics.CountChanges(rates),
			Segments:            len(rates),
			StallSeconds:        p.StallSeconds(),
			StallCount:          p.StallCount(),
			StartupDelaySeconds: p.StartupDelaySeconds(),
			QoEScore:            qoe.Score(rates, p.StallSeconds(), p.StartupDelaySeconds(), qoe.DefaultWeights()),
		})
	}
	if s.oneAPI != nil {
		res.SolveTimesSec = s.oneAPI.SolveTimes(s.cellID)
	}
	res.ControlPlane = s.ctrl
	res.VideoRateSeries = s.rateSeries
	res.BufferSeries = s.bufSeries
	res.DataTputSeries = s.dataSeries
	return res
}

// Run is the package-level convenience: assemble and execute in one call.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
