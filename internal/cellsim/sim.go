package cellsim

import (
	"context"
	"fmt"
	"time"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/cellsim/driver"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/metrics"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/oneapi"
	"github.com/flare-sim/flare/internal/qoe"
	"github.com/flare-sim/flare/internal/sim"
	"github.com/flare-sim/flare/internal/transport"
)

// env adapts the simulation loop to transport.Env (and its Waker
// extension, which feeds the kernel's active-flow tick list).
type env struct {
	clock  sim.Clock
	events sim.EventQueue

	// onFlowWake is invoked when a transport flow transitions from
	// inactive to active (transport.Waker); the Sim uses it to mark its
	// tick list stale.
	onFlowWake func(*transport.Flow)
}

func (e *env) NowTTI() int64 { return e.clock.TTI() }

func (e *env) Schedule(delay int64, fn func()) {
	if delay < 1 {
		delay = 1
	}
	e.events.Schedule(e.clock.TTI()+delay, fn)
}

// ScheduleArg implements transport.ArgScheduler: the handle-free,
// allocation-free path for payload-carrying periodic work (the ACK
// clock). The queue recycles these events after they fire.
func (e *env) ScheduleArg(delay int64, fn func(int64), arg int64) {
	if delay < 1 {
		delay = 1
	}
	e.events.ScheduleArg(e.clock.TTI()+delay, fn, arg)
}

// FlowActivated implements transport.Waker.
func (e *env) FlowActivated(f *transport.Flow) {
	if e.onFlowWake != nil {
		e.onFlowWake(f)
	}
}

// simGroup is one scheme's slice of the video population: the driver
// running it, the flows it owns, and its control-tick period.
type simGroup struct {
	scheme   Scheme
	count    int
	ctrl     driver.Controller
	flows    []*driver.Flow
	tickTTIs int64
}

// Sim is one assembled cell simulation. Build with New, execute with Run.
//
// The engine is scheme-agnostic: it owns the radio (channel, eNodeB,
// scheduler), the transport flows, and the HAS players, and delegates
// every scheme-specific decision — adapters, control-plane wiring,
// periodic ticks, departures — to the driver layer
// (internal/cellsim/driver). One cell can host several scheme groups at
// once (Config.VideoGroups); each group gets its own driver instance.
type Sim struct {
	cfg     Config
	env     env
	rng     *sim.RNG
	channel lte.Channel
	enb     *lte.ENodeB
	rec     *obs.Recorder // cfg.Obs; nil = telemetry disabled
	cellID  int

	groups []*simGroup
	// video is every group's flows concatenated, in flow-ID order.
	video []*driver.Flow

	dataBearers []*lte.Bearer
	dataFlows   []*transport.Flow

	legacyBearers []*lte.Bearer
	legacyFlows   []*transport.Flow
	legacyPlayers []*has.Player

	// allFlows is every transport flow in canonical (flow-ID) order:
	// video, then data, then legacy. tickList is the subset with bytes to
	// send — the only flows whose Tick can act. tickDirty marks the list
	// stale: set when a flow activates (via the env's Waker hook) or when
	// a listed flow is observed inactive, and serviced by rebuilding from
	// allFlows, which keeps the tick order canonical. Tick order across
	// flows is immaterial for byte-exactness (a flow's Tick touches only
	// its own state and bearer, and draws no RNG), but a canonical order
	// keeps the engine easy to reason about.
	allFlows  []*transport.Flow
	tickList  []*transport.Flow
	tickDirty bool

	// par holds the intra-cell parallel state when Config.IntraWorkers
	// > 1; nil runs the engine fully sequentially. See parallel.go.
	par *intraPar

	// series state
	rateSeries    []*metrics.TimeSeries
	bufSeries     []*metrics.TimeSeries
	dataSeries    []*metrics.TimeSeries
	lastDataBytes []int64

	// statsScratch is the report map reused across CollectStats calls.
	// Both consumers (the OneAPI server's RunBAI and the AVIS epoch) read
	// it synchronously and retain nothing, so clearing and refilling one
	// map per BAI is safe and keeps the control path allocation-free.
	statsScratch map[int]core.FlowStats
}

// Engine interface conformance: Sim is the view drivers operate on.
var _ driver.Engine = (*Sim)(nil)

// New assembles a simulation from the configuration.
func New(cfg Config) (*Sim, error) {
	return NewInCell(cfg, nil, 0)
}

// NewInCell assembles a simulation whose network control plane (if its
// schemes have one) lives on a shared OneAPI server under the given cell
// ID — the paper's "a single OneAPI server can manage multiple BSs,
// though the bitrates are calculated independently for each network
// cell". A nil server gives FLARE cells their own private one; schemes
// without a OneAPI control plane ignore it.
func NewInCell(cfg Config, server *oneapi.Server, cellID int) (*Sim, error) {
	if err := cfg.expandChurn(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Second
	}
	groups := cfg.videoGroups()
	cfg.NumVideo = totalCount(groups)

	s := &Sim{cfg: cfg, rng: sim.NewRNG(cfg.Seed), rec: cfg.Obs, cellID: cellID}
	s.rec.SetNowTTI(s.env.NowTTI)
	s.tickDirty = true
	s.env.onFlowWake = func(*transport.Flow) { s.tickDirty = true }
	if cfg.IntraWorkers > 1 {
		s.par = newIntraPar(cfg.IntraWorkers)
	}

	numUEs := cfg.NumVideo + cfg.NumData + cfg.NumLegacy
	ch, err := s.buildChannel(numUEs)
	if err != nil {
		return nil, err
	}
	s.channel = ch

	if err := s.buildDrivers(groups, server, cellID); err != nil {
		return nil, err
	}
	s.enb = lte.NewENodeB(ch, s.buildScheduler())

	if err := s.buildVideo(); err != nil {
		return nil, err
	}
	if err := s.buildData(); err != nil {
		return nil, err
	}
	if err := s.buildLegacy(); err != nil {
		return nil, err
	}
	for _, g := range s.groups {
		if err := g.ctrl.Init(s, g.flows); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// buildDrivers instantiates one registered driver per video group, with
// the engine-computed context each needs: its share of the configuration
// plus the competing background population (data + legacy + the other
// groups' video flows).
func (s *Sim) buildDrivers(groups []FlowGroup, server *oneapi.Server, cellID int) error {
	totalVideo := totalCount(groups)
	offset := 0
	for _, fg := range groups {
		background := make([]int, 0, s.cfg.NumData+s.cfg.NumLegacy+totalVideo-fg.Count)
		for i := 0; i < s.cfg.NumData; i++ {
			background = append(background, totalVideo+i)
		}
		for i := 0; i < s.cfg.NumLegacy; i++ {
			background = append(background, totalVideo+s.cfg.NumData+i)
		}
		for id := 0; id < totalVideo; id++ {
			if id < offset || id >= offset+fg.Count {
				background = append(background, id)
			}
		}
		dcfg := driver.Config{
			Count:               fg.Count,
			Ladder:              s.cfg.Ladder,
			SegmentSeconds:      s.cfg.SegmentDuration.Seconds(),
			RNG:                 s.rng,
			Flare:               s.cfg.Flare,
			Avis:                s.cfg.Avis,
			Festive:             s.cfg.Festive,
			Google:              s.cfg.Google,
			Fallback:            s.cfg.Fallback,
			ControlFaults:       s.cfg.ControlFaults,
			StatsLossRate:       s.cfg.StatsLossRate,
			LowBufferCapSeconds: s.cfg.LowBufferCapSeconds,
			OneAPI:              server,
			CellID:              cellID,
			ControlShards:       s.cfg.ControlShards,
			BackgroundFlows:     len(background),
			BackgroundFlowIDs:   background,
			Obs:                 s.cfg.Obs,
		}
		ctrl, err := driver.New(fg.Scheme.String(), dcfg)
		if err != nil {
			return err
		}
		s.groups = append(s.groups, &simGroup{scheme: fg.Scheme, count: fg.Count, ctrl: ctrl})
		offset += fg.Count
	}
	return nil
}

func (s *Sim) buildChannel(numUEs int) (lte.Channel, error) {
	spec := s.cfg.Channel
	switch spec.Kind {
	case ChannelStatic:
		return lte.NewUniformStaticChannel(numUEs, spec.StaticITbs), nil
	case ChannelCyclic:
		period := sim.DurationToTTIs(spec.CyclicPeriod)
		offsets := make([]int64, numUEs)
		for i := range offsets {
			offsets[i] = period * int64(i) / int64(numUEs)
		}
		return lte.NewCyclicChannel(spec.CyclicMin, spec.CyclicMax, period, offsets)
	case ChannelMobility:
		mcfg := spec.Mobility
		if mcfg.AreaMeters == 0 {
			mcfg = lte.DefaultMobilityConfig(numUEs)
		}
		mcfg.NumUEs = numUEs
		return lte.NewMobilityChannel(mcfg, s.rng)
	case ChannelTrace:
		return lte.NewTraceChannel(spec.Traces, sim.DurationToTTIs(spec.TraceStep))
	default:
		return nil, fmt.Errorf("cellsim: unknown channel kind %d", int(spec.Kind))
	}
}

// buildScheduler resolves the cell's radio scheduler from the resident
// drivers' declared policies: the strongest requirement wins
// (GBR > Sliced > BestEffort). There is no scheme dispatch here — a new
// scheme influences scheduling purely through its driver's policy.
func (s *Sim) buildScheduler() lte.Scheduler {
	policy := driver.PolicyBestEffort
	var sizer driver.SliceSizer
	for _, g := range s.groups {
		p := g.ctrl.SchedulerPolicy()
		if p > policy {
			policy = p
		}
		if p == driver.PolicySliced && sizer == nil {
			if sz, ok := g.ctrl.(driver.SliceSizer); ok {
				sizer = sz
			}
		}
	}
	switch policy {
	case driver.PolicyGBR:
		return lte.TwoPhaseGBRScheduler{}
	case driver.PolicySliced:
		frac := 0.0
		if sizer != nil {
			frac = sizer.VideoFraction(s.cfg.NumVideo, s.cfg.NumData+s.cfg.NumLegacy)
		}
		if frac > 1 {
			frac = 1
		}
		return lte.SlicedScheduler{VideoFraction: frac}
	default:
		return lte.PFScheduler{}
	}
}

func (s *Sim) buildVideo() error {
	segs := int(s.cfg.Duration/s.cfg.SegmentDuration) + 16
	id := 0
	for _, g := range s.groups {
		g := g
		for i := 0; i < groupCount(g); i++ {
			mpd, err := has.NewMPD(s.cfg.Ladder, s.cfg.SegmentDuration, segs)
			if err != nil {
				return err
			}
			mpd.SizeJitter = s.cfg.VBRJitter
			b := &lte.Bearer{ID: id, UE: id, Class: lte.ClassVideo}
			if _, err := s.enb.AddBearer(b); err != nil {
				return err
			}
			flow, err := s.newFlow(b)
			if err != nil {
				return err
			}
			adapter, err := g.ctrl.NewAdapter(i)
			if err != nil {
				return err
			}
			player, err := has.NewPlayer(&s.env, flow, mpd, adapter, s.cfg.Player)
			if err != nil {
				return err
			}
			f := &driver.Flow{
				ID:        id,
				Index:     i,
				UE:        id,
				Bearer:    b,
				Player:    player,
				Adapter:   adapter,
				Transport: flow,
			}
			player.OnSegment = func(rec has.SegmentRecord) {
				g.ctrl.OnSegmentComplete(f, rec)
			}
			if s.rec.Enabled() {
				flowID := int32(f.ID)
				player.OnStall = func(started bool) {
					if started {
						s.rec.Emit(obs.StallStart(int32(s.cellID), flowID))
					} else {
						s.rec.Emit(obs.StallEnd(int32(s.cellID), flowID))
					}
				}
			}
			g.flows = append(g.flows, f)
			s.video = append(s.video, f)
			s.allFlows = append(s.allFlows, flow)
			id++
		}
	}
	return nil
}

// groupCount returns the number of flows a group was configured for.
func groupCount(g *simGroup) int { return g.count }

// newFlow builds a transport flow on the engine's env — or, when the
// intra-cell pool is enabled, on a per-flow env that can buffer its
// schedule calls during parallel tick phases (see parallel.go). Must be
// called in canonical flow order: par.envs mirrors allFlows.
func (s *Sim) newFlow(b *lte.Bearer) (*transport.Flow, error) {
	if s.par == nil {
		return transport.NewFlow(&s.env, b, s.cfg.Transport)
	}
	e := &flowEnv{s: s}
	f, err := transport.NewFlow(e, b, s.cfg.Transport)
	if err != nil {
		return nil, err
	}
	e.flow = f
	s.par.envs = append(s.par.envs, e)
	return f, nil
}

func (s *Sim) buildData() error {
	for i := 0; i < s.cfg.NumData; i++ {
		id := s.cfg.NumVideo + i
		b := &lte.Bearer{ID: id, UE: id, Class: lte.ClassData}
		if _, err := s.enb.AddBearer(b); err != nil {
			return err
		}
		flow, err := s.newFlow(b)
		if err != nil {
			return err
		}
		s.dataBearers = append(s.dataBearers, b)
		s.dataFlows = append(s.dataFlows, flow)
		s.allFlows = append(s.allFlows, flow)
	}
	return nil
}

// buildLegacy adds the conventional (non-FLARE) players of the Section
// V coexistence deployment: FESTIVE adaptation over best-effort (data
// class) bearers, invisible to any network-side controller except as
// data flows. (For first-class mixed populations with per-scheme result
// attribution, prefer Config.VideoGroups.)
func (s *Sim) buildLegacy() error {
	segs := int(s.cfg.Duration/s.cfg.SegmentDuration) + 16
	for i := 0; i < s.cfg.NumLegacy; i++ {
		id := s.cfg.NumVideo + s.cfg.NumData + i
		mpd, err := has.NewMPD(s.cfg.Ladder, s.cfg.SegmentDuration, segs)
		if err != nil {
			return err
		}
		mpd.SizeJitter = s.cfg.VBRJitter
		b := &lte.Bearer{ID: id, UE: id, Class: lte.ClassData}
		if _, err := s.enb.AddBearer(b); err != nil {
			return err
		}
		flow, err := s.newFlow(b)
		if err != nil {
			return err
		}
		player, err := has.NewPlayer(&s.env, flow, mpd, abr.NewFestive(s.cfg.Festive, s.rng), s.cfg.Player)
		if err != nil {
			return err
		}
		s.legacyBearers = append(s.legacyBearers, b)
		s.legacyFlows = append(s.legacyFlows, flow)
		s.legacyPlayers = append(s.legacyPlayers, player)
		s.allFlows = append(s.allFlows, flow)
	}
	return nil
}

// CollectStats implements driver.Engine: drain the given flows'
// per-bearer accounting windows and attach the current-MCS hint — the
// Statistics Reporter's report for one interval.
func (s *Sim) CollectStats(flows []*driver.Flow) map[int]core.FlowStats {
	if s.statsScratch == nil {
		s.statsScratch = make(map[int]core.FlowStats, len(flows))
	}
	stats := s.statsScratch
	clear(stats)
	for _, f := range flows {
		w := f.Bearer.CollectWindow()
		stats[f.ID] = core.FlowStats{
			Bytes:          w.Bytes,
			RBs:            w.RBs,
			BytesPerRBHint: lte.BitsPerRB(s.channel.ITbs(f.UE)) / 8,
		}
	}
	return stats
}

// SetGBR implements driver.Engine.
func (s *Sim) SetGBR(flowID int, bps float64) error { return s.enb.SetGBR(flowID, bps) }

// SetMBR implements driver.Engine.
func (s *Sim) SetMBR(flowID int, bps float64) error { return s.enb.SetMBR(flowID, bps) }

// RNG implements driver.Engine.
func (s *Sim) RNG() *sim.RNG { return s.rng }

func (s *Sim) sample(tSec float64) {
	for i, f := range s.video {
		rate := 0.0
		if q := f.Player.State().LastQuality; q >= 0 {
			rate = s.cfg.Ladder.Rate(q)
		}
		s.rateSeries[i].Add(tSec, rate)
		s.bufSeries[i].Add(tSec, f.Player.BufferSeconds())
	}
	for i, f := range s.dataFlows {
		delivered := f.DeliveredTotal()
		delta := delivered - s.lastDataBytes[i]
		s.lastDataBytes[i] = delivered
		s.dataSeries[i].Add(tSec, float64(delta)*8/s.cfg.SampleEvery.Seconds())
	}
}

// Run executes the simulation and returns the collected results.
func (s *Sim) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the TTI loop checks
// ctx roughly once per simulated second and returns ctx.Err() when it
// fires. Cancellation does not perturb determinism — completed runs are
// byte-identical with or without a context.
func (s *Sim) RunContext(ctx context.Context) (*Result, error) {
	durTTIs := sim.DurationToTTIs(s.cfg.Duration)

	// Stagger player and data-flow starts over the first two seconds so
	// clients don't move in lockstep; explicit arrival schedules win.
	for _, g := range s.groups {
		g := g
		for _, f := range g.flows {
			f := f
			p := f.Player
			startTTI := int64(s.rng.Intn(2000))
			if len(s.cfg.VideoArrivals) > 0 {
				startTTI = sim.DurationToTTIs(s.cfg.VideoArrivals[f.ID])
			}
			s.env.events.Schedule(startTTI, func() {
				s.rec.Emit(obs.FlowStart(int32(s.cellID), int32(f.ID)))
				if aa, ok := g.ctrl.(driver.ArrivalAware); ok {
					aa.OnFlowArrival(f)
				}
				p.Start()
			})
			if len(s.cfg.VideoDepartures) > 0 && s.cfg.VideoDepartures[f.ID] > 0 {
				s.env.events.Schedule(sim.DurationToTTIs(s.cfg.VideoDepartures[f.ID]), func() {
					p.Stop()
					g.ctrl.OnFlowDeparture(f)
					s.rec.Emit(obs.FlowDepart(int32(s.cellID), int32(f.ID)))
				})
			}
		}
	}
	for _, p := range s.legacyPlayers {
		p := p
		s.env.events.Schedule(int64(s.rng.Intn(2000)), p.Start)
	}
	for _, f := range s.dataFlows {
		f := f
		s.env.events.Schedule(int64(s.rng.Intn(2000)), func() { f.SetGreedy(true) })
	}

	for _, g := range s.groups {
		if iv := g.ctrl.Interval(); iv > 0 {
			g.tickTTIs = sim.DurationToTTIs(iv)
		}
	}
	sampleTTIs := sim.DurationToTTIs(s.cfg.SampleEvery)
	if s.cfg.CollectSeries {
		s.rateSeries = make([]*metrics.TimeSeries, len(s.video))
		s.bufSeries = make([]*metrics.TimeSeries, len(s.video))
		for i := range s.video {
			s.rateSeries[i] = &metrics.TimeSeries{}
			s.bufSeries[i] = &metrics.TimeSeries{}
		}
		s.dataSeries = make([]*metrics.TimeSeries, len(s.dataFlows))
		for i := range s.dataFlows {
			s.dataSeries[i] = &metrics.TimeSeries{}
		}
		s.lastDataBytes = make([]int64, len(s.dataFlows))
	}

	if s.par != nil {
		// The pool lives only for the run: workers idle between phases,
		// and a Sim is single-shot in practice, but tearing down here
		// keeps repeated Runs and abandoned sims goroutine-clean.
		s.par.pool = sim.NewWorkerPool(s.par.workers)
		s.enb.SetWorkerPool(s.par.pool)
		defer func() {
			s.enb.SetWorkerPool(nil)
			s.par.pool.Close()
			s.par.pool = nil
		}()
	}

	var err error
	if s.cfg.DisableFastForward || !s.enb.CanFastForward() {
		err = s.runNaive(ctx, durTTIs, sampleTTIs)
	} else {
		err = s.runFast(ctx, durTTIs, sampleTTIs)
	}
	if err != nil {
		// Crash context: the flight recorder holds the last decisions
		// leading up to the failure.
		s.rec.DumpOnError(err)
		return nil, err
	}
	res := s.buildResult()
	for _, g := range s.groups {
		if err := g.ctrl.Close(); err != nil {
			s.rec.DumpOnError(err)
			return res, err
		}
	}
	return res, nil
}

// runHooks runs the post-radio per-TTI work shared by both loops: group
// control ticks (BAIs) and series sampling.
func (s *Sim) runHooks(tti, sampleTTIs int64) error {
	for _, g := range s.groups {
		if g.tickTTIs > 0 && tti > 0 && tti%g.tickTTIs == 0 {
			//flare:allow hotpath frontier: driver.Controller impls own their per-BAI budget (pre-bound callbacks, per-BAI scratch — PR 7); the flarebench simsec/sec and allocs/op gates cover them
			if err := g.ctrl.OnBAI(time.Duration(tti) * sim.TTI); err != nil {
				return err
			}
		}
	}
	if s.cfg.CollectSeries && tti > 0 && tti%sampleTTIs == 0 {
		s.sample(float64(tti) / lte.TTIsPerSecond)
	}
	return nil
}

// runNaive is the reference TTI-by-TTI loop: every TTI runs due events,
// ticks every flow, runs the radio, and fires the control hooks. It is
// the semantic baseline the fast-forward kernel must match byte for
// byte, kept selectable via Config.DisableFastForward (and used
// automatically for channel models without catch-up support).
//
//flare:hotpath
func (s *Sim) runNaive(ctx context.Context, durTTIs, sampleTTIs int64) error {
	for tti := int64(0); tti < durTTIs; tti++ {
		// Poll at every 1024th TTI except the first: a run always makes
		// its first ~1 s of simulated progress before it can observe
		// cancellation, so which cells of a multi-cell run reach an
		// early failure of their own (vs. a sibling's cancel) is a
		// deterministic fact, not a goroutine race. See runMany.
		//flare:allow hotpath frontier: context.Context.Err returns a cached sentinel without allocating in every stdlib implementation
		if tti&0x3ff == 0 && tti != 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		s.env.events.RunDue(tti)
		if s.par != nil && s.par.pool != nil {
			s.par.tickAll(s)
		} else {
			for _, f := range s.allFlows {
				f.Tick()
			}
		}
		s.enb.RunTTI(tti)
		if err := s.runHooks(tti, sampleTTIs); err != nil {
			return err
		}
		s.env.clock.Advance()
	}
	return nil
}

// runFast is the quiescence-aware kernel. Each executed TTI is processed
// exactly like runNaive; the difference is that after the TTI's hooks,
// when the cell is provably inert — every flow quiescent and no bearer
// backlogged — the clock jumps straight to the next TTI at which
// anything can happen: the earliest pending event, the next group
// control tick, the next series sample, or the end of the run. The
// skipped span is replayed in aggregate (channel catch-up, idle bearer
// accounting), so results are byte-identical to the naive loop.
//
// Quiescence is decided after RunTTI and the hooks because both can
// re-arm flows mid-TTI: radio delivery fires OnDeliver → player
// progress → a new segment request → Flow.Send.
//
//flare:hotpath
func (s *Sim) runFast(ctx context.Context, durTTIs, sampleTTIs int64) error {
	for tti := int64(0); tti < durTTIs; {
		// Same cancellation-poll points as runNaive (multiples of 1024,
		// never TTI 0) so both loops observe a cancel at the same TTI —
		// see the runNaive comment for why TTI 0 is excluded.
		//flare:allow hotpath frontier: context.Context.Err returns a cached sentinel without allocating in every stdlib implementation
		if tti&0x3ff == 0 && tti != 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		s.env.events.RunDue(tti)
		if s.tickDirty {
			s.rebuildTickList()
		}
		if s.par != nil && s.par.pool != nil {
			s.par.tickActive(s)
		} else {
			for _, f := range s.tickList {
				if f.Active() {
					f.Tick()
				} else {
					s.tickDirty = true
				}
			}
		}
		s.enb.RunTTI(tti)
		if err := s.runHooks(tti, sampleTTIs); err != nil {
			return err
		}

		next := tti + 1
		if s.quiescent() {
			if w := s.wakeTTI(tti, durTTIs, sampleTTIs); w > next {
				s.enb.FastForwardIdle(tti, w)
				s.rec.Emit(obs.FastForward(int32(s.cellID), tti, w))
				next = w
			}
		}
		tti = next
		s.env.clock.AdvanceTo(tti)
	}
	return nil
}

// rebuildTickList recomputes the active-flow subset in canonical order
// (and, under the intra-cell pool, the matching per-flow env subset).
func (s *Sim) rebuildTickList() {
	s.tickList = s.tickList[:0]
	if s.par != nil {
		s.par.tickEnvs = s.par.tickEnvs[:0]
	}
	for i, f := range s.allFlows {
		if f.Active() {
			s.tickList = append(s.tickList, f)
			if s.par != nil {
				s.par.tickEnvs = append(s.par.tickEnvs, s.par.envs[i])
			}
		}
	}
	s.tickDirty = false
}

// quiescent reports whether skipping TTIs is provably a no-op right now:
// every active flow's Tick can't act (closed window) and no bearer has
// queued bytes, so only a scheduled event or a periodic hook can change
// any state. Flows outside the tick list are inactive, hence quiescent
// by definition; the list is refreshed first so no newly woken flow is
// missed.
func (s *Sim) quiescent() bool {
	if s.tickDirty {
		s.rebuildTickList()
	}
	for _, f := range s.tickList {
		if !f.Quiescent() {
			return false
		}
	}
	return s.enb.Idle()
}

// wakeTTI returns the next TTI at which anything observable can happen
// after t: the earliest pending event, each group's next control tick,
// the next series sample, or the end of the run — whichever comes first.
func (s *Sim) wakeTTI(t, durTTIs, sampleTTIs int64) int64 {
	w := durTTIs
	if ev, ok := s.env.events.NextDeadline(); ok && ev < w {
		w = ev
	}
	for _, g := range s.groups {
		if g.tickTTIs > 0 {
			if n := (t/g.tickTTIs + 1) * g.tickTTIs; n < w {
				w = n
			}
		}
	}
	if s.cfg.CollectSeries && sampleTTIs > 0 {
		if n := (t/sampleTTIs + 1) * sampleTTIs; n < w {
			w = n
		}
	}
	if w <= t {
		w = t + 1 // defensive: never move backwards
	}
	return w
}

func (s *Sim) buildResult() *Result {
	durSec := s.cfg.Duration.Seconds()
	res := &Result{Scheme: s.cfg.Scheme}
	for _, g := range s.groups {
		telemetry, _ := g.ctrl.(driver.FlowTelemetry)
		for _, f := range g.flows {
			p := f.Player
			rates := p.SelectedRates()
			cr := ClientResult{
				FlowID:              f.ID,
				Scheme:              g.scheme,
				AvgRateBps:          metrics.Mean(rates),
				AvgTputBps:          float64(f.Transport.DeliveredTotal()) * 8 / durSec,
				NumChanges:          metrics.CountChanges(rates),
				Segments:            len(rates),
				StallSeconds:        p.StallSeconds(),
				StallCount:          p.StallCount(),
				StartupDelaySeconds: p.StartupDelaySeconds(),
				QoEScore:            qoe.Score(rates, p.StallSeconds(), p.StartupDelaySeconds(), qoe.DefaultWeights()),
			}
			cr.Admitted = true
			if telemetry != nil {
				ex := telemetry.FlowExtras(f)
				cr.FallbackTransitions = ex.FallbackTransitions
				cr.FallbackIntervals = ex.FallbackIntervals
				cr.Admitted = ex.Admitted
				cr.StallSecondsPreAdmit = ex.PreAdmissionStallSeconds
			}
			res.Clients = append(res.Clients, cr)
		}
	}
	for i, f := range s.dataFlows {
		res.Data = append(res.Data, DataResult{
			FlowID:     s.dataBearers[i].ID,
			AvgTputBps: float64(f.DeliveredTotal()) * 8 / durSec,
		})
	}
	for i, p := range s.legacyPlayers {
		rates := p.SelectedRates()
		res.Legacy = append(res.Legacy, ClientResult{
			FlowID:              s.legacyBearers[i].ID,
			Scheme:              SchemeFESTIVE,
			AvgRateBps:          metrics.Mean(rates),
			AvgTputBps:          float64(s.legacyFlows[i].DeliveredTotal()) * 8 / durSec,
			NumChanges:          metrics.CountChanges(rates),
			Segments:            len(rates),
			StallSeconds:        p.StallSeconds(),
			StallCount:          p.StallCount(),
			StartupDelaySeconds: p.StartupDelaySeconds(),
			QoEScore:            qoe.Score(rates, p.StallSeconds(), p.StartupDelaySeconds(), qoe.DefaultWeights()),
		})
	}
	for _, g := range s.groups {
		if ct, ok := g.ctrl.(driver.ControlTelemetry); ok {
			res.SolveTimesSec = ct.SolveTimes()
			res.ControlPlane = ct.ControlStats()
			break
		}
	}
	res.VideoRateSeries = s.rateSeries
	res.BufferSeries = s.bufSeries
	res.DataTputSeries = s.dataSeries
	return res
}

// Run is the package-level convenience: assemble and execute in one call.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// RunContext is Run with cooperative cancellation (see Sim.RunContext).
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}
