// Package profiling provides the tiny pprof plumbing shared by the
// command-line binaries: a CPU profile spanning the run and a heap
// snapshot at exit. Both are opt-in via empty-path no-ops so the mains
// can call them unconditionally.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins writing a CPU profile to path and returns the stop
// function to defer. An empty path is a no-op (the returned stop does
// nothing).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes a heap profile to path after forcing a GC so the
// snapshot reflects live memory, not collection timing. An empty path
// is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: create heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("profiling: write heap profile: %w", err)
	}
	return nil
}
