package sim

import (
	"math/rand"
	"testing"
)

// Unit tests for the kernel fast-forward primitives: the NextDeadline
// horizon, the AdvanceTo clock jump, and the two-lane event queue's
// ScheduleArg path (ordering, pooling, cancellation interplay).

func TestNextDeadlineEmptyQueue(t *testing.T) {
	var q EventQueue
	if _, ok := q.NextDeadline(); ok {
		t.Fatal("empty queue reported a deadline")
	}
}

func TestNextDeadlineTracksEarliestAcrossLanes(t *testing.T) {
	var q EventQueue
	// Heap lane: a handle-bearing far event, then a nearer one.
	q.Schedule(50, func() {})
	q.Schedule(20, func() {})
	// FIFO lane: a poolable event in between.
	q.ScheduleArg(30, func(int64) {}, 0)
	if tti, ok := q.NextDeadline(); !ok || tti != 20 {
		t.Fatalf("NextDeadline = %d,%v; want 20,true", tti, ok)
	}
	q.RunDue(20)
	if tti, ok := q.NextDeadline(); !ok || tti != 30 {
		t.Fatalf("after draining 20: NextDeadline = %d,%v; want 30,true", tti, ok)
	}
	q.RunDue(49)
	if tti, ok := q.NextDeadline(); !ok || tti != 50 {
		t.Fatalf("after draining 30: NextDeadline = %d,%v; want 50,true", tti, ok)
	}
}

func TestNextDeadlineSeesCancellation(t *testing.T) {
	var q EventQueue
	ev := q.Schedule(10, func() {})
	q.Schedule(40, func() {})
	q.Cancel(ev)
	if tti, ok := q.NextDeadline(); !ok || tti != 40 {
		t.Fatalf("NextDeadline after cancel = %d,%v; want 40,true", tti, ok)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.AdvanceTo(17)
	if c.TTI() != 17 {
		t.Fatalf("TTI = %d, want 17", c.TTI())
	}
	c.AdvanceTo(17) // same TTI is allowed (no-op)
	if c.TTI() != 17 {
		t.Fatalf("TTI = %d, want 17", c.TTI())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backwards did not panic")
		}
	}()
	c.AdvanceTo(16)
}

func TestScheduleArgDeliversPayload(t *testing.T) {
	var q EventQueue
	var got []int64
	fn := func(v int64) { got = append(got, v) }
	q.ScheduleArg(5, fn, 100)
	q.ScheduleArg(5, fn, 200)
	q.ScheduleArg(3, fn, 300)
	if n := q.RunDue(10); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	want := []int64{300, 100, 200}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("payload order %v, want %v", got, want)
		}
	}
}

// TestScheduleArgInterleavesWithSchedule pins the merge contract: the
// two lanes must fire in exactly (AtTTI, scheduling order), as a single
// heap would.
func TestScheduleArgInterleavesWithSchedule(t *testing.T) {
	var q EventQueue
	var got []int
	mark := func(id int) func() { return func() { got = append(got, id) } }
	markArg := func(v int64) { got = append(got, int(v)) }

	q.Schedule(10, mark(0))      // heap
	q.ScheduleArg(10, markArg, 1) // fifo, same TTI: after 0
	q.Schedule(5, mark(2))        // heap, earlier TTI
	q.ScheduleArg(10, markArg, 3) // fifo, same TTI as 0/1: last
	q.ScheduleArg(7, markArg, 4)  // heap fallback (violates lane monotonicity)
	q.RunDue(10)
	want := []int{2, 4, 0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestScheduleArgPoolRecycles proves handle-free events are recycled:
// steady-state periodic scheduling must not grow the queue's storage.
func TestScheduleArgPoolRecycles(t *testing.T) {
	var q EventQueue
	fired := 0
	var fn func(int64)
	fn = func(arg int64) {
		fired++
		if arg < 10_000 {
			q.ScheduleArg(arg+1, fn, arg+1)
		}
	}
	q.ScheduleArg(1, fn, 1)
	for tti := int64(1); tti <= 10_000; tti++ {
		q.RunDue(tti)
	}
	if fired != 10_000 {
		t.Fatalf("fired %d, want 10000", fired)
	}
	if got := len(q.free); got < 1 {
		t.Fatal("free list empty; pooled events are not being recycled")
	}
	// The backing storage must stay O(pending), not O(total fired).
	if c := cap(q.fifo); c > 64 {
		t.Fatalf("fifo lane grew to cap %d under steady-state load", c)
	}
}

// TestEventQueueRandomizedMergeOrder cross-checks the two-lane queue
// against a straightforward reference: random interleavings of
// Schedule/ScheduleArg/Cancel must fire in identical order.
func TestEventQueueRandomizedMergeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q EventQueue
		type ref struct {
			at  int64
			seq int
			id  int
		}
		var want []ref
		var got []int
		seq := 0
		id := 0
		var handles []*Event
		var handleIDs []int
		now := int64(0)
		for step := 0; step < 200; step++ {
			switch rng.Intn(4) {
			case 0, 1: // ScheduleArg, mostly nondecreasing TTIs
				at := now + int64(rng.Intn(20))
				v := id
				q.ScheduleArg(at, func(arg int64) { got = append(got, int(arg)) }, int64(v))
				want = append(want, ref{at, seq, v})
				seq++
				id++
			case 2: // Schedule with handle
				at := now + int64(rng.Intn(20))
				v := id
				ev := q.Schedule(at, func() { got = append(got, v) })
				handles = append(handles, ev)
				handleIDs = append(handleIDs, v)
				want = append(want, ref{at, seq, v})
				seq++
				id++
			case 3: // cancel a random outstanding handle
				if len(handles) > 0 {
					k := rng.Intn(len(handles))
					if !handles[k].Cancelled() { // not already fired
						q.Cancel(handles[k])
						// drop from the reference list
						cid := handleIDs[k]
						for i, w := range want {
							if w.id == cid {
								want = append(want[:i], want[i+1:]...)
								break
							}
						}
					}
					handles = append(handles[:k], handles[k+1:]...)
					handleIDs = append(handleIDs[:k], handleIDs[k+1:]...)
				}
			}
			if rng.Intn(3) == 0 {
				now += int64(rng.Intn(5))
				q.RunDue(now)
			}
		}
		q.RunDue(1 << 40)
		// Reference order: stable by (at, seq); drop already-fired
		// duplicates by comparing the full sequences.
		ordered := make([]ref, len(want))
		copy(ordered, want)
		for i := 1; i < len(ordered); i++ {
			for j := i; j > 0 && (ordered[j].at < ordered[j-1].at ||
				(ordered[j].at == ordered[j-1].at && ordered[j].seq < ordered[j-1].seq)); j-- {
				ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
			}
		}
		if len(got) != len(ordered) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(ordered))
		}
		for i := range ordered {
			if got[i] != ordered[i].id {
				t.Fatalf("trial %d: firing order diverged at %d: got %d want %d",
					trial, i, got[i], ordered[i].id)
			}
		}
	}
}
