package sim

import (
	"fmt"
	"time"
)

// TTI is the LTE transmission time interval: the fundamental tick of the
// simulated cell.
const TTI = time.Millisecond

// Clock tracks simulated time at TTI granularity. The zero value is a
// clock at time zero.
type Clock struct {
	tti int64
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.tti) * TTI
}

// TTI returns the index of the current TTI (1 TTI = 1 ms).
func (c *Clock) TTI() int64 {
	return c.tti
}

// Advance moves the clock forward by one TTI and returns the new index.
func (c *Clock) Advance() int64 {
	c.tti++
	return c.tti
}

// AdvanceTo jumps the clock forward to the given TTI — the fast-forward
// primitive. Moving backwards is a programming error and panics, since a
// retreating clock would silently corrupt every lazily-advanced
// component (players, transport, bearers).
func (c *Clock) AdvanceTo(tti int64) int64 {
	if tti < c.tti {
		//flare:allow hotpath: the Sprintf sits on the panic path only — it never runs on a well-formed fast-forward, and the panic message must name both TTIs
		panic(fmt.Sprintf("sim: clock cannot move backwards (at %d, asked for %d)", c.tti, tti))
	}
	c.tti = tti
	return c.tti
}

// Seconds returns the current simulated time in seconds.
func (c *Clock) Seconds() float64 {
	return float64(c.tti) / 1000.0
}

// String implements fmt.Stringer for debug logs.
func (c *Clock) String() string {
	return fmt.Sprintf("t=%.3fs", c.Seconds())
}

// DurationToTTIs converts a duration to a whole number of TTIs, rounding
// down. Durations below one TTI yield zero.
func DurationToTTIs(d time.Duration) int64 {
	return int64(d / TTI)
}
