// Package sim provides the deterministic simulation kernel shared by all
// FLARE substrates: a TTI-granular clock, an event queue, and seedable
// random-number streams.
//
// Determinism is a first-class requirement: every experiment in the paper
// reproduction is driven by an explicit seed so that results, CDFs, and
// regression tests are bit-stable across runs and platforms. The kernel
// therefore does not use math/rand's global state.
package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64). It is not safe for concurrent use; derive independent
// streams with Split when multiple entities need uncorrelated randomness.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, statistically independent generator from r.
// The derived stream is a function of r's current state, so splitting is
// itself deterministic.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stdev float64) float64 {
	// Guard against log(0): Float64 can return exactly 0.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stdev*z
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n), like math/rand.Perm.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
