package sim

import "sync"

// RangeRunner is the unit of work a WorkerPool fans out: RunRange is
// invoked with disjoint, contiguous half-open index ranges that together
// cover [0, n). Implementations must only touch state owned by the
// indices in their range; anything shared is folded by the caller after
// Do returns, in a fixed index order, so results stay byte-identical to
// the sequential loop.
type RangeRunner interface {
	RunRange(lo, hi int)
}

// WorkerPool is a bounded pool of persistent worker goroutines used to
// split per-TTI loops across cores without perturbing determinism. The
// pool itself never reorders anything observable: it only partitions
// [0, n) into contiguous chunks, and every reduction over the results
// happens in the caller, in index (bearer-ID) order.
//
// A pool with one worker runs everything inline on the caller's
// goroutine and spawns nothing, so `workers=1` is byte-for-byte the
// sequential engine with zero scheduling overhead.
//
// Do is a barrier: it returns only after every chunk has completed.
// It must not be called re-entrantly (from inside a RunRange) and the
// pool must only be driven from one goroutine at a time — each cell
// owns its own pool.
type WorkerPool struct {
	workers int
	tasks   chan poolRange
	wg      sync.WaitGroup
	runner  RangeRunner
}

type poolRange struct{ lo, hi int }

// NewWorkerPool creates a pool with the given number of workers.
// Values below 1 are clamped to 1 (inline execution, no goroutines).
func NewWorkerPool(workers int) *WorkerPool {
	if workers < 1 {
		workers = 1
	}
	p := &WorkerPool{workers: workers}
	if workers == 1 {
		return p
	}
	p.tasks = make(chan poolRange, workers)
	for i := 0; i < workers; i++ {
		//flare:allow worker-pool goroutine: chunks are disjoint index ranges and every observable reduction is folded by the caller in index order after the Do barrier
		go p.work(p.tasks)
	}
	return p
}

func (p *WorkerPool) work(tasks <-chan poolRange) {
	for r := range tasks {
		p.runner.RunRange(r.lo, r.hi)
		p.wg.Done()
	}
}

// Workers returns the pool's worker count.
func (p *WorkerPool) Workers() int { return p.workers }

// Do partitions [0, n) into at most Workers() contiguous chunks and runs
// r.RunRange on each, returning once all chunks have completed. The
// partition is a pure function of (n, workers). With one worker (or
// n == 0) nothing is dispatched and the work runs inline.
func (p *WorkerPool) Do(n int, r RangeRunner) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		//flare:allow hotpath frontier: RunRange impls are the preallocated eNodeB/cellsim phase runners; slotwrite checks their stores and the parallel-vs-sequential golden equality gates their behavior
		r.RunRange(0, n)
		return
	}
	k := p.workers
	if n < k {
		k = n
	}
	// The channel send below happens-after this write, so workers
	// observe the current runner; the wg.Wait barrier ensures no worker
	// still reads it when the next Do overwrites it.
	p.runner = r
	p.wg.Add(k)
	base, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		p.tasks <- poolRange{lo, hi}
		lo = hi
	}
	p.wg.Wait()
	p.runner = nil
}

// Close shuts the worker goroutines down. The pool must not be used
// after Close. Close on a 1-worker pool is a no-op.
func (p *WorkerPool) Close() {
	if p.tasks != nil {
		close(p.tasks)
		p.tasks = nil
	}
}
