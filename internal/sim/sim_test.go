package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	// The split stream must not replay the parent stream.
	parent := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		parent[r.Uint64()] = true
	}
	for i := 0; i < 100; i++ {
		if parent[s.Uint64()] {
			t.Fatal("split stream collided with parent stream")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Norm mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Norm stdev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(3)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Errorf("Exp mean = %v, want ~3", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%32) + 1
		p := NewRNG(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGUniformRange(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		v := r.Uniform(2, 9)
		return v >= 2 && v < 9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.TTI() != 0 || c.Now() != 0 {
		t.Fatal("zero clock not at time zero")
	}
	c.Advance()
	c.Advance()
	if got := c.Now(); got != 2*time.Millisecond {
		t.Fatalf("Now() = %v, want 2ms", got)
	}
	if got := c.Seconds(); got != 0.002 {
		t.Fatalf("Seconds() = %v, want 0.002", got)
	}
}

func TestDurationToTTIs(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{0, 0},
		{time.Millisecond, 1},
		{10 * time.Second, 10000},
		{1500 * time.Microsecond, 1},
		{999 * time.Microsecond, 0},
	}
	for _, tc := range cases {
		if got := DurationToTTIs(tc.d); got != tc.want {
			t.Errorf("DurationToTTIs(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var fired []int
	q.Schedule(30, func() { fired = append(fired, 3) })
	q.Schedule(10, func() { fired = append(fired, 1) })
	q.Schedule(20, func() { fired = append(fired, 2) })
	if n := q.RunDue(25); n != 2 {
		t.Fatalf("RunDue(25) ran %d events, want 2", n)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
	q.RunDue(100)
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("fired = %v, want [1 2 3]", fired)
	}
}

func TestEventQueueSameTTIFIFO(t *testing.T) {
	var q EventQueue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(5, func() { fired = append(fired, i) })
	}
	q.RunDue(5)
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-TTI events out of order: %v", fired)
		}
	}
}

func TestEventQueueCancel(t *testing.T) {
	var q EventQueue
	ran := false
	ev := q.Schedule(1, func() { ran = true })
	q.Cancel(ev)
	q.RunDue(10)
	if ran {
		t.Fatal("cancelled event still ran")
	}
	if q.Len() != 0 {
		t.Fatalf("queue length = %d after cancel, want 0", q.Len())
	}
	// Double-cancel and nil-cancel must be safe.
	q.Cancel(ev)
	q.Cancel(nil)
}

func TestEventQueueReentrantSchedule(t *testing.T) {
	var q EventQueue
	var fired []string
	q.Schedule(5, func() {
		fired = append(fired, "outer")
		q.Schedule(5, func() { fired = append(fired, "inner-now") })
		q.Schedule(6, func() { fired = append(fired, "inner-later") })
	})
	q.RunDue(5)
	if len(fired) != 2 || fired[1] != "inner-now" {
		t.Fatalf("fired = %v, want [outer inner-now]", fired)
	}
	q.RunDue(6)
	if len(fired) != 3 || fired[2] != "inner-later" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEventQueuePeek(t *testing.T) {
	var q EventQueue
	if _, ok := q.PeekTTI(); ok {
		t.Fatal("PeekTTI on empty queue returned ok")
	}
	q.Schedule(42, func() {})
	if tti, ok := q.PeekTTI(); !ok || tti != 42 {
		t.Fatalf("PeekTTI = %d,%v, want 42,true", tti, ok)
	}
}

func TestEventQueueManyEventsStaySorted(t *testing.T) {
	var q EventQueue
	r := NewRNG(99)
	const n = 2000
	for i := 0; i < n; i++ {
		q.Schedule(int64(r.Intn(1000)), func() {})
	}
	last := int64(-1)
	for q.Len() > 0 {
		tti, _ := q.PeekTTI()
		if tti < last {
			t.Fatalf("heap order violated: %d after %d", tti, last)
		}
		last = tti
		q.RunDue(tti)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
