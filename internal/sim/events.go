package sim

import "container/heap"

// Event is a callback scheduled to run at a specific TTI.
type Event struct {
	// AtTTI is the TTI index at which the event fires.
	AtTTI int64
	// Run is invoked when the clock reaches AtTTI.
	Run func()

	// runArg/arg are the payload-carrying alternative to Run used by
	// ScheduleArg: sharing one func value across many events avoids the
	// per-event closure allocation on high-frequency paths.
	runArg func(int64)
	arg    int64
	// poolable marks handle-free events (ScheduleArg): once fired they
	// are recycled through the queue's free list. Events with handles
	// are never pooled — a caller could Cancel a stale handle and
	// corrupt the recycled event.
	poolable bool

	seq   int64 // tie-break so same-TTI events run in scheduling order
	index int   // heap position; fifoMark in the FIFO lane; -1 once popped or cancelled
}

// index markers for events outside the heap.
const (
	indexDone = -1 // popped or cancelled
	fifoMark  = -2 // queued in the FIFO lane
)

// Cancelled reports whether the event has been removed from its queue.
func (e *Event) Cancelled() bool { return e.index == indexDone && e.Run == nil }

// EventQueue is a priority queue of events ordered by firing TTI.
// Events scheduled for the same TTI fire in the order they were scheduled.
// The zero value is ready to use. EventQueue is not safe for concurrent
// use; the simulation kernel is single-goroutine by design.
//
// Internally the queue is two lanes merged on (AtTTI, seq): a FIFO slice
// for events scheduled in nondecreasing-TTI order (the overwhelmingly
// common case — the transport ACK clock schedules now+RTT/2 every TTI)
// and a binary heap for the rest. FIFO pushes and pops are O(1) with no
// sift traffic; the merge preserves exactly the total order the pure
// heap produced, so the split is invisible to callers.
type EventQueue struct {
	h        eventHeap
	fifo     []*Event
	fifoHead int
	free     []*Event
	// slab is the arena new events are carved from when the free list is
	// empty: one bulk allocation per eventSlabSize events instead of one
	// per event. Handle-bearing events (Schedule) are never recycled —
	// without the slab each of them is its own allocation, and the
	// poolable warm-up path allocates one Event at a time too.
	slab    []Event
	count   int
	nextSeq int64
}

// eventSlabSize is the arena granularity: large enough to amortise the
// allocation, small enough that an idle queue doesn't pin much memory.
const eventSlabSize = 256

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.count }

// newEvent takes an Event from the free list or allocates one.
func (q *EventQueue) newEvent(atTTI int64) *Event {
	var ev *Event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		if len(q.slab) == 0 {
			q.slab = make([]Event, eventSlabSize)
		}
		ev = &q.slab[0]
		q.slab = q.slab[1:]
	}
	*ev = Event{AtTTI: atTTI, seq: q.nextSeq, index: indexDone}
	q.nextSeq++
	return ev
}

// enqueue routes the event to the FIFO lane when it is poolable (the
// high-frequency periodic traffic, which is scheduled in nondecreasing
// TTI order in practice) and respects the lane's nondecreasing-TTI
// invariant; everything else goes to the heap. Handle-bearing events
// are kept out of the lane so a single far-future timer cannot wedge
// into the tail and force the steady periodic stream into the heap.
func (q *EventQueue) enqueue(ev *Event) {
	q.count++
	if ev.poolable &&
		(q.fifoHead == len(q.fifo) || ev.AtTTI >= q.fifo[len(q.fifo)-1].AtTTI) {
		ev.index = fifoMark
		if q.fifoHead > 0 && len(q.fifo) == cap(q.fifo) {
			// Compact consumed head space instead of growing: a steady
			// periodic stream never drains the lane, so without this the
			// backing array would grow with total events, not pending ones.
			live := copy(q.fifo, q.fifo[q.fifoHead:])
			for i := live; i < len(q.fifo); i++ {
				q.fifo[i] = nil
			}
			q.fifo = q.fifo[:live]
			q.fifoHead = 0
		}
		q.fifo = append(q.fifo, ev)
		return
	}
	heap.Push(&q.h, ev)
}

// Schedule enqueues fn to run at the given TTI and returns the event
// handle, which can be passed to Cancel.
func (q *EventQueue) Schedule(atTTI int64, fn func()) *Event {
	ev := q.newEvent(atTTI)
	ev.Run = fn
	q.enqueue(ev)
	return ev
}

// ScheduleArg enqueues fn(arg) at the given TTI without returning a
// handle. Handle-free events can never be cancelled, so the queue
// recycles the Event object after it fires — the allocation-free path
// for high-frequency periodic work such as the transport ACK clock.
func (q *EventQueue) ScheduleArg(atTTI int64, fn func(int64), arg int64) {
	ev := q.newEvent(atTTI)
	ev.runArg = fn
	ev.arg = arg
	ev.poolable = true
	q.enqueue(ev)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op. FIFO-lane events are cancelled
// lazily (cleared in place, skipped at pop time) to keep the lane O(1).
func (q *EventQueue) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	switch {
	case ev.index >= 0:
		heap.Remove(&q.h, ev.index)
	case ev.index == fifoMark:
		// stays in the lane; fifoPeek discards it
	default:
		return
	}
	ev.index = indexDone
	ev.Run = nil
	ev.runArg = nil
	q.count--
}

// fifoPeek returns the first live FIFO event, discarding cancelled
// entries, or nil when the lane is empty (which also resets the lane's
// storage so it can be reused without growing).
func (q *EventQueue) fifoPeek() *Event {
	for q.fifoHead < len(q.fifo) {
		ev := q.fifo[q.fifoHead]
		if ev.Run == nil && ev.runArg == nil { // lazily cancelled
			q.fifo[q.fifoHead] = nil
			q.fifoHead++
			continue
		}
		return ev
	}
	q.fifo = q.fifo[:0]
	q.fifoHead = 0
	return nil
}

// peek returns the next event in (AtTTI, seq) order across both lanes
// without removing it.
func (q *EventQueue) peek() *Event {
	fe := q.fifoPeek()
	var he *Event
	if len(q.h) > 0 {
		he = q.h[0]
	}
	switch {
	case fe == nil:
		return he
	case he == nil:
		return fe
	case he.AtTTI < fe.AtTTI || (he.AtTTI == fe.AtTTI && he.seq < fe.seq):
		return he
	default:
		return fe
	}
}

// PeekTTI returns the TTI of the earliest pending event, or ok=false when
// the queue is empty.
func (q *EventQueue) PeekTTI() (tti int64, ok bool) {
	ev := q.peek()
	if ev == nil {
		return 0, false
	}
	return ev.AtTTI, true
}

// NextDeadline returns the earliest TTI at which a pending event will
// fire, or ok=false when no event is pending. It is the kernel's
// fast-forward horizon: a quiescent simulation may jump the clock to
// (but not past) this TTI without missing any scheduled work.
func (q *EventQueue) NextDeadline() (tti int64, ok bool) {
	return q.PeekTTI()
}

// RunDue pops and runs every event whose firing TTI is <= now, in order.
// It returns the number of events run. Events scheduled by a running
// event for a TTI <= now are run in the same call.
func (q *EventQueue) RunDue(now int64) int {
	n := 0
	for {
		ev := q.peek()
		if ev == nil || ev.AtTTI > now {
			return n
		}
		if ev.index == fifoMark {
			q.fifo[q.fifoHead] = nil
			q.fifoHead++
		} else {
			heap.Pop(&q.h)
		}
		q.count--
		ev.index = indexDone
		run, runArg, arg := ev.Run, ev.runArg, ev.arg
		ev.Run = nil
		ev.runArg = nil
		if ev.poolable {
			q.free = append(q.free, ev)
		}
		// The callback may schedule new events (possibly due at <= now)
		// or cancel pending ones; the loop re-peeks every iteration.
		if run != nil {
			run()
			n++
		} else if runArg != nil {
			runArg(arg)
			n++
		}
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].AtTTI != h[j].AtTTI {
		return h[i].AtTTI < h[j].AtTTI
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
