package sim

import "container/heap"

// Event is a callback scheduled to run at a specific TTI.
type Event struct {
	// AtTTI is the TTI index at which the event fires.
	AtTTI int64
	// Run is invoked when the clock reaches AtTTI.
	Run func()

	seq   int64 // tie-break so same-TTI events run in scheduling order
	index int   // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event has been removed from its queue.
func (e *Event) Cancelled() bool { return e.index == -1 && e.Run == nil }

// EventQueue is a priority queue of events ordered by firing TTI.
// Events scheduled for the same TTI fire in the order they were scheduled.
// The zero value is ready to use. EventQueue is not safe for concurrent
// use; the simulation kernel is single-goroutine by design.
type EventQueue struct {
	h       eventHeap
	nextSeq int64
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at the given TTI and returns the event
// handle, which can be passed to Cancel.
func (q *EventQueue) Schedule(atTTI int64, fn func()) *Event {
	ev := &Event{AtTTI: atTTI, Run: fn, seq: q.nextSeq}
	q.nextSeq++
	heap.Push(&q.h, ev)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *EventQueue) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&q.h, ev.index)
	ev.index = -1
	ev.Run = nil
}

// PeekTTI returns the TTI of the earliest pending event, or ok=false when
// the queue is empty.
func (q *EventQueue) PeekTTI() (tti int64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].AtTTI, true
}

// RunDue pops and runs every event whose firing TTI is <= now, in order.
// It returns the number of events run. Events scheduled by a running
// event for a TTI <= now are run in the same call.
func (q *EventQueue) RunDue(now int64) int {
	n := 0
	for len(q.h) > 0 && q.h[0].AtTTI <= now {
		ev := heap.Pop(&q.h).(*Event)
		ev.index = -1
		run := ev.Run
		ev.Run = nil
		if run != nil {
			run()
			n++
		}
	}
	return n
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].AtTTI != h[j].AtTTI {
		return h[i].AtTTI < h[j].AtTTI
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
