package sim

import (
	"sync/atomic"
	"testing"
)

// sumRunner adds its range's indices into per-index slots (disjoint
// writes) and counts invocations.
type sumRunner struct {
	out   []int64
	calls atomic.Int64
}

func (r *sumRunner) RunRange(lo, hi int) {
	r.calls.Add(1)
	for i := lo; i < hi; i++ {
		r.out[i] = int64(i * i)
	}
}

func TestWorkerPoolCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			p := NewWorkerPool(workers)
			r := &sumRunner{out: make([]int64, n)}
			p.Do(n, r)
			for i := 0; i < n; i++ {
				if r.out[i] != int64(i*i) {
					t.Fatalf("workers=%d n=%d: index %d not covered", workers, n, i)
				}
			}
			want := int64(workers)
			if n < workers {
				want = int64(n)
			}
			if workers == 1 && n > 0 {
				want = 1
			}
			if n > 0 && r.calls.Load() != want {
				t.Fatalf("workers=%d n=%d: %d chunks, want %d", workers, n, r.calls.Load(), want)
			}
			p.Close()
		}
	}
}

func TestWorkerPoolClampsWorkers(t *testing.T) {
	for _, w := range []int{-3, 0, 1} {
		p := NewWorkerPool(w)
		if p.Workers() != 1 {
			t.Fatalf("NewWorkerPool(%d).Workers() = %d, want 1", w, p.Workers())
		}
		// Inline pool: Do must work and Close must be a no-op.
		r := &sumRunner{out: make([]int64, 10)}
		p.Do(10, r)
		if r.calls.Load() != 1 {
			t.Fatalf("inline pool split the range: %d calls", r.calls.Load())
		}
		p.Close()
	}
}

func TestWorkerPoolReuse(t *testing.T) {
	p := NewWorkerPool(4)
	defer p.Close()
	for iter := 0; iter < 50; iter++ {
		r := &sumRunner{out: make([]int64, 129)}
		p.Do(129, r)
		for i := range r.out {
			if r.out[i] != int64(i*i) {
				t.Fatalf("iter %d: index %d not covered", iter, i)
			}
		}
	}
}
