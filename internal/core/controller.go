package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
)

// DefaultBytesPerRB is the radio-cost prior used for a flow that has not
// transmitted yet and for which no channel hint is available. It
// corresponds to a mid-range MCS; the first real BAI of traffic replaces
// it with the measured n_u/b_u.
const DefaultBytesPerRB = 10.0

// Config parameterises the FLARE controller. Defaults follow Table IV.
type Config struct {
	// Alpha is the data-vs-video priority (Table IV: 1.0).
	Alpha float64
	// Delta is the Algorithm 1 stability parameter (Table IV: 4).
	Delta int
	// Beta is the default per-flow video importance (Table IV: 10).
	Beta float64
	// ThetaBps is the default screen-size parameter (Table IV: 0.2 Mbps).
	ThetaBps float64
	// BAI is the bitrate assignment interval.
	BAI time.Duration
	// UseRelaxation selects the continuous-relaxation solver instead of
	// the exact DP (the Figure 8-9 configuration).
	UseRelaxation bool
	// StickinessBonus is the keep-previous-level utility bonus passed to
	// the solvers (see Problem.StickinessBonus). 0 falls back to the
	// default (0.1); negative disables.
	StickinessBonus float64
	// CapacityMargin scales the RB budget the optimiser may plan
	// against (N in Eq. 4). Planning to exactly 100% leaves the
	// assignment on the constraint boundary, where every upward
	// radio-cost fluctuation forces a drop; a margin absorbs estimation
	// noise, and the two-phase scheduler hands the reserve back to
	// whoever can use it. 0 falls back to the default (0.9).
	CapacityMargin float64
	// CostSmoothing is the EWMA weight applied to new n_u/b_u radio-cost
	// samples. HAS traffic is bursty at sub-segment timescales, so the
	// raw previous-BAI sample the paper's Eq. 4 uses is noisy on short
	// BAIs; smoothing keeps that noise from triggering the immediate
	// down-switches Algorithm 1 permits. 1 reproduces the paper's
	// raw-sample behaviour; 0 falls back to the default (0.3).
	CostSmoothing float64
	// Objective names the per-flow utility model: "" or "eq2" for the
	// paper's Eq. 2 utility, "upf" for utility-proportional fairness
	// (see ObjectiveByName). Unknown names fall back to the default.
	Objective string
	// AdmissionControl enables the saturation admission predicate: a
	// new session is admitted only while every already-registered flow
	// plus the candidate can hold its floor (lowest-ladder) level
	// within the BAI's RB budget. Off (the default), registration is
	// unconditional — the paper's behaviour.
	AdmissionControl bool
	// AdmissionQueue bounds the OneAPI server's deferred-admission
	// FIFO: sessions rejected by the predicate wait there and are
	// promoted in arrival order when capacity frees. 0 means the
	// default (8); negative disables queueing (reject outright).
	AdmissionQueue int
	// DowngradeLadder enables the overload shedding policy: when the
	// solved assignment saturates the cell the controller caps every
	// flow's ceiling one ladder step lower (stepwise, with hysteresis
	// on the release side) instead of letting radio-cost noise starve
	// flows into stalls, and restores the ceiling when load drops.
	DowngradeLadder bool
}

// Downgrade-ladder hysteresis: one shed step is taken when the solved
// video share exceeds shedHighShare (or the instance is infeasible),
// and released only after shedHoldBAIs consecutive BAIs below
// shedLowShare — so the ladder never oscillates on the noise that
// triggered it.
const (
	shedHighShare = 0.96
	shedLowShare  = 0.85
	shedHoldBAIs  = 4
)

// DefaultConfig returns the paper's Table IV parameters with a 1 s BAI.
// The paper does not state the BAI length, but Algorithm 1's up-switch
// gate needs delta*(L+1) consecutive BAIs per level: with delta=4 a
// multi-second BAI would make ladder climbs take most of a session,
// which contradicts the bitrate levels reached in Figures 6-8 and the
// gentle slope of the Figure 12 delta sweep. A 1 s BAI (the cadence of
// the testbed's Continuous GBR Updater statistics) is consistent with
// both.
func DefaultConfig() Config {
	return Config{
		Alpha:           1.0,
		Delta:           4,
		Beta:            10,
		ThetaBps:        0.2e6,
		BAI:             time.Second,
		CostSmoothing:   0.05,
		StickinessBonus: 0.2,
		CapacityMargin:  0.9,
	}
}

// Preferences are the optional client-supplied hints from the FLARE
// plugin (Section II-B: clients reveal only what they choose to).
type Preferences struct {
	// MaxBps caps the assigned bitrate (0 = none). Clients use it to
	// bound mobile-data cost or to refill a low buffer quickly.
	MaxBps float64 `json:"max_bps,omitempty"`
	// Beta overrides the default video importance (0 = default).
	Beta float64 `json:"beta,omitempty"`
	// ThetaBps overrides the default screen parameter (0 = default).
	ThetaBps float64 `json:"theta_bps,omitempty"`
	// Skimming marks a viewer scrubbing through the video (frequent
	// forward/backward clicks in a shared clickstream); the server then
	// pins the flow to its minimum bitrate, as Section II-B suggests,
	// instead of spending cell capacity on content that will be skipped.
	Skimming bool `json:"skimming,omitempty"`
}

// FlowStats is the per-flow eNodeB report for one BAI: bytes transmitted
// (b_u), RBs assigned (n_u), and a bytes-per-RB hint from the UE's
// current MCS for flows that moved no traffic.
type FlowStats struct {
	Bytes          int64   `json:"bytes"`
	RBs            int64   `json:"rbs"`
	BytesPerRBHint float64 `json:"bytes_per_rb_hint,omitempty"`
}

// Assignment is one flow's BAI outcome: the level and bitrate the OneAPI
// server pushes to the plugin, and the GBR it installs via the PCEF.
type Assignment struct {
	FlowID  int     `json:"flow_id"`
	Level   int     `json:"level"`
	RateBps float64 `json:"rate_bps"`
}

type ctrlFlow struct {
	id         int
	ladder     has.Ladder
	beta       float64
	theta      float64
	maxBps     float64
	skimming   bool
	level      int // current assigned level, -1 before first BAI
	rbsPerByte float64
}

// effectiveMaxBps folds the skimming pin into the client cap.
func (f *ctrlFlow) effectiveMaxBps() float64 {
	if f.skimming {
		return f.ladder.Min()
	}
	return f.maxBps
}

// Controller is the OneAPI server's per-cell decision engine: it tracks
// registered video sessions, consumes the eNodeB statistics reports, and
// runs the optimiser + Algorithm 1 once per BAI.
type Controller struct {
	cfg   Config
	obj   Objective
	exact *ExactSolver
	relax *RelaxedSolver
	gate  *Gate
	flows map[int]*ctrlFlow

	// Downgrade-ladder state (cfg.DowngradeLadder): shed is how many
	// ladder steps are currently shaved off every flow's ceiling, and
	// calmStreak counts consecutive BAIs below the release watermark.
	shed       int
	calmStreak int

	solveTimes []time.Duration

	// now supplies the wall clock for solver-latency measurement (the
	// Figure 9 numbers and the bai_solve DurNs field). It is injectable
	// (SetWallClock) so tests fake it and so the determinism analyzer
	// can see that the sim-clock domain never consults real time for
	// decisions: the reading is observational only.
	now func() time.Time

	rec    *obs.Recorder // nil = telemetry disabled
	cellID int32
	baiSeq int64

	// Per-BAI scratch reused across RunBAI calls (the solvers never
	// retain the Problem, and a Controller's BAIs are serialised by its
	// caller). The returned Assignment slice is still freshly allocated
	// — it escapes to the caller.
	scratchIDs   []int
	scratchFlows []VideoFlow
}

// NewController builds a controller. Invalid config fields fall back to
// defaults rather than erroring: the controller is long-lived and the
// defaults are always safe.
func NewController(cfg Config) *Controller {
	def := DefaultConfig()
	if cfg.Alpha < 0 {
		cfg.Alpha = def.Alpha
	}
	if cfg.Beta <= 0 {
		cfg.Beta = def.Beta
	}
	if cfg.ThetaBps <= 0 {
		cfg.ThetaBps = def.ThetaBps
	}
	if cfg.BAI <= 0 {
		cfg.BAI = def.BAI
	}
	if cfg.CostSmoothing <= 0 || cfg.CostSmoothing > 1 {
		cfg.CostSmoothing = def.CostSmoothing
	}
	if cfg.StickinessBonus == 0 {
		cfg.StickinessBonus = def.StickinessBonus
	} else if cfg.StickinessBonus < 0 {
		cfg.StickinessBonus = 0
	}
	if cfg.CapacityMargin <= 0 || cfg.CapacityMargin > 1 {
		cfg.CapacityMargin = def.CapacityMargin
	}
	obj, _ := ObjectiveByName(cfg.Objective)
	return &Controller{
		cfg:   cfg,
		obj:   obj,
		exact: NewExactSolver(),
		relax: NewRelaxedSolver(),
		gate:  NewGate(cfg.Delta),
		flows: make(map[int]*ctrlFlow),
		now:   time.Now, //flare:allow solver-latency timing is observational: DurNs/SolveTimes never feed an assignment decision, and tests inject a fake via SetWallClock
	}
}

// SetWallClock replaces the wall-clock source used to time BAI solves
// (nil restores time.Now). Latency measurement is the only consumer:
// faking the clock cannot change any assignment.
func (c *Controller) SetWallClock(now func() time.Time) {
	if now == nil {
		now = time.Now //flare:allow restoring the observational default; see Controller.now
	}
	c.now = now
}

// SetRecorder attaches a telemetry recorder (nil disables recording)
// and names the cell this controller serves in emitted events.
func (c *Controller) SetRecorder(rec *obs.Recorder, cellID int) {
	c.rec = rec
	c.cellID = int32(cellID)
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// BAI returns the bitrate assignment interval.
func (c *Controller) BAI() time.Duration { return c.cfg.BAI }

// Register admits a video session: the plugin sends the flow's ladder
// (extracted from the MPD, stripped of identifying metadata) and its
// optional preferences.
func (c *Controller) Register(flowID int, ladder has.Ladder, prefs Preferences) error {
	if err := ladder.Validate(); err != nil {
		return fmt.Errorf("core: register flow %d: %w", flowID, err)
	}
	if _, exists := c.flows[flowID]; exists {
		return fmt.Errorf("core: flow %d already registered", flowID)
	}
	f := &ctrlFlow{
		id:         flowID,
		ladder:     ladder.Clone(),
		beta:       c.cfg.Beta,
		theta:      c.cfg.ThetaBps,
		maxBps:     prefs.MaxBps,
		skimming:   prefs.Skimming,
		level:      -1,
		rbsPerByte: 1 / DefaultBytesPerRB,
	}
	if prefs.Beta > 0 {
		f.beta = prefs.Beta
	}
	if prefs.ThetaBps > 0 {
		f.theta = prefs.ThetaBps
	}
	c.flows[flowID] = f
	return nil
}

// SessionSnapshot is a registered flow's portable state, used for
// inter-cell handover.
type SessionSnapshot struct {
	Ladder      has.Ladder  `json:"ladder"`
	Preferences Preferences `json:"preferences"`
}

// Snapshot returns a flow's portable session state.
func (c *Controller) Snapshot(flowID int) (SessionSnapshot, error) {
	f, ok := c.flows[flowID]
	if !ok {
		return SessionSnapshot{}, fmt.Errorf("core: flow %d not registered", flowID)
	}
	return SessionSnapshot{
		Ladder: f.ladder.Clone(),
		Preferences: Preferences{
			MaxBps:   f.maxBps,
			Beta:     f.beta,
			ThetaBps: f.theta,
			Skimming: f.skimming,
		},
	}, nil
}

// Unregister removes a departed session.
func (c *Controller) Unregister(flowID int) {
	delete(c.flows, flowID)
	c.gate.Forget(flowID)
}

// NumFlows returns the number of registered video sessions.
func (c *Controller) NumFlows() int { return len(c.flows) }

// SetPreferences updates a registered flow's client preferences.
func (c *Controller) SetPreferences(flowID int, prefs Preferences) error {
	f, ok := c.flows[flowID]
	if !ok {
		return fmt.Errorf("core: flow %d not registered", flowID)
	}
	f.maxBps = prefs.MaxBps
	f.skimming = prefs.Skimming
	if prefs.Beta > 0 {
		f.beta = prefs.Beta
	}
	if prefs.ThetaBps > 0 {
		f.theta = prefs.ThetaBps
	}
	return nil
}

// SolveTimes returns the wall-clock duration of each BAI's optimisation
// so far — the Figure 9 measurement.
func (c *Controller) SolveTimes() []time.Duration {
	out := make([]time.Duration, len(c.solveTimes))
	copy(out, c.solveTimes)
	return out
}

// RunBAI executes one bitrate assignment interval: update radio costs
// from the statistics report, solve Eq. 3-4 (exactly or relaxed), apply
// the Algorithm 1 gate, and return the assignments in flow-ID order.
// numDataFlows is the PCRF's count of concurrent non-video flows.
func (c *Controller) RunBAI(stats map[int]FlowStats, numDataFlows int) ([]Assignment, error) {
	if numDataFlows < 0 {
		return nil, fmt.Errorf("core: negative data flow count %d", numDataFlows)
	}
	ids := c.scratchIDs[:0]
	//flare:allow key-collection loop: the keys are sorted on the next line, so iteration order cannot reach state or output
	for id := range c.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	c.scratchIDs = ids
	if len(ids) == 0 {
		return nil, nil
	}

	// Refresh radio costs from the report (EWMA-smoothed; see Config).
	w := c.cfg.CostSmoothing
	for _, id := range ids {
		f := c.flows[id]
		s, ok := stats[id]
		var sample float64
		switch {
		case ok && s.Bytes > 0 && s.RBs > 0:
			sample = float64(s.RBs) / float64(s.Bytes)
		case ok && s.BytesPerRBHint > 0:
			sample = 1 / s.BytesPerRBHint
		default:
			continue
		}
		f.rbsPerByte += w * (sample - f.rbsPerByte)
	}

	if cap(c.scratchFlows) < len(ids) {
		c.scratchFlows = make([]VideoFlow, len(ids))
	}
	prob := Problem{
		Flows:           c.scratchFlows[:len(ids)],
		Objective:       c.obj,
		NumDataFlows:    numDataFlows,
		Alpha:           c.cfg.Alpha,
		TotalRBs:        c.budgetRBs(),
		BAISeconds:      c.cfg.BAI.Seconds(),
		StickinessBonus: c.cfg.StickinessBonus,
	}
	for i, id := range ids {
		f := c.flows[id]
		prob.Flows[i] = VideoFlow{
			ID:         id,
			Ladder:     f.ladder,
			Beta:       f.beta,
			ThetaBps:   f.theta,
			PrevLevel:  f.level,
			RBsPerByte: f.rbsPerByte,
			MaxBps:     c.shedCap(f),
		}
	}

	start := c.now()
	var (
		sol Solution
		err error
	)
	if c.cfg.UseRelaxation {
		sol, err = c.relax.Solve(&prob)
	} else {
		sol, err = c.exact.Solve(&prob)
	}
	elapsed := c.now().Sub(start)
	c.solveTimes = append(c.solveTimes, elapsed)
	if err != nil {
		return nil, fmt.Errorf("core: BAI solve: %w", err)
	}
	c.baiSeq++
	c.rec.Emit(obs.BAISolve(c.cellID, c.baiSeq, int32(numDataFlows),
		int64(prob.TotalRBs), sol.Objective, elapsed.Nanoseconds()))

	if c.cfg.DowngradeLadder {
		maxShed := 0
		for i := range prob.Flows {
			if l := prob.Flows[i].Ladder.Len() - 1; l > maxShed {
				maxShed = l
			}
		}
		c.updateShed(sol, maxShed)
	}

	out := make([]Assignment, len(ids))
	for i, id := range ids {
		f := c.flows[id]
		final, streak, need := c.gate.ApplyDetail(id, f.level, sol.Levels[i])
		if c.rec.Enabled() {
			s := stats[id]
			c.rec.Emit(obs.Clamp(c.cellID, int32(id), c.baiSeq,
				int32(sol.Levels[i]), int32(final), int32(f.level),
				int32(streak), int32(need), s.Bytes, s.RBs, f.ladder.Rate(final)))
		}
		f.level = final
		out[i] = Assignment{
			FlowID:  id,
			Level:   final,
			RateBps: f.ladder.Rate(final),
		}
	}
	return out, nil
}
