package core

import (
	"testing"
	"testing/quick"

	"github.com/flare-sim/flare/internal/sim"
)

func TestUtilityAtAddsBonusOnlyAtPrevLevel(t *testing.T) {
	p := testProblem(1, 2, 0, 1, 10)
	p.StickinessBonus = 0.4
	base := p.Flows[0].Utility(2)
	if got := p.UtilityAt(0, 2); got != base+0.4 {
		t.Fatalf("UtilityAt(prev) = %v, want %v", got, base+0.4)
	}
	if got := p.UtilityAt(0, 3); got != p.Flows[0].Utility(3) {
		t.Fatalf("UtilityAt(other) = %v, want plain utility", got)
	}
	p.StickinessBonus = 0
	if got := p.UtilityAt(0, 2); got != base {
		t.Fatalf("disabled bonus still applied: %v", got)
	}
}

func TestStickinessSuppressesSwapsButNotRealGains(t *testing.T) {
	// Two identical flows at levels {3, 4} with costs that would make
	// swapping marginally attractive. With the bonus the solver keeps
	// the incumbent assignment.
	mk := func(bonus float64) *Problem {
		p := testProblem(2, 3, 0, 1, 20)
		p.Flows[0].PrevLevel = 3
		p.Flows[1].PrevLevel = 4
		// Flow 0 slightly cheaper: a swap would save a hair of capacity.
		p.Flows[0].RBsPerByte = 1 / 20.5
		p.TotalRBs *= 0.12 // make capacity bind around these levels
		p.StickinessBonus = bonus
		return p
	}
	solNo, err := NewExactSolver().Solve(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	solYes, err := NewExactSolver().Solve(mk(0.3))
	if err != nil {
		t.Fatal(err)
	}
	// With the bonus the previous levels must be at least as preserved.
	keepScore := func(s Solution, prevs []int) int {
		n := 0
		for u, l := range s.Levels {
			if l == prevs[u] {
				n++
			}
		}
		return n
	}
	prevs := []int{3, 4}
	if keepScore(solYes, prevs) < keepScore(solNo, prevs) {
		t.Fatalf("stickiness reduced retention: %v vs %v", solYes.Levels, solNo.Levels)
	}
	// A genuinely large gain still wins: opening up capacity lets both
	// flows climb despite the bonus.
	rich := mk(0.3)
	rich.TotalRBs *= 100
	solRich, err := NewExactSolver().Solve(rich)
	if err != nil {
		t.Fatal(err)
	}
	if solRich.Levels[0] <= 3 {
		t.Fatalf("bonus blocked a profitable climb: %v", solRich.Levels)
	}
}

func TestGreedyRepairNeverViolatesCapacity(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 1 + rng.Intn(6)
		p := testProblem(n, -1, rng.Intn(3), rng.Float64()*3, 5+rng.Float64()*25)
		for u := range p.Flows {
			p.Flows[u].PrevLevel = rng.Intn(p.Flows[u].Ladder.Len()+1) - 1
		}
		p.TotalRBs *= 0.05 + rng.Float64()
		levels := p.lowestLevels()
		if _, share := p.ObjectiveAt(levels); share > 1 {
			return true // already infeasible at the floor; repair is moot
		}
		greedyRepair(p, levels)
		_, share := p.ObjectiveAt(levels)
		return share <= 1+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyRepairImprovesObjective(t *testing.T) {
	p := testProblem(4, 5, 0, 1, 25)
	p.TotalRBs *= 2 // genuinely abundant: 4 flows at the top fit easily
	levels := p.lowestLevels()
	before, _ := p.ObjectiveAt(levels)
	greedyRepair(p, levels)
	after, _ := p.ObjectiveAt(levels)
	if after < before {
		t.Fatalf("repair worsened objective: %v -> %v", before, after)
	}
	// With abundant capacity and no data flows, repair climbs to max.
	for u, l := range levels {
		if l != p.Flows[u].MaxLevel() {
			t.Fatalf("flow %d stopped at %d with spare capacity", u, l)
		}
	}
}

func TestGreedyRepairRespectsClientCap(t *testing.T) {
	p := testProblem(2, 5, 0, 1, 25)
	p.Flows[0].MaxBps = 500_000
	levels := p.lowestLevels()
	greedyRepair(p, levels)
	if rate := p.Flows[0].Ladder.Rate(levels[0]); rate > 500_000 {
		t.Fatalf("repair violated client cap: %v", rate)
	}
}

func TestRelaxBoundsRespectClientCap(t *testing.T) {
	p := testProblem(1, 5, 0, 1, 25)
	p.Flows[0].MaxBps = 900_000
	fb := relaxBounds(p)
	// Highest ladder rung <= 900k is 500k.
	if fb[0].hi != 500_000 {
		t.Fatalf("relax upper bound %v, want 500000", fb[0].hi)
	}
}

func TestWaterfillRespectsInfeasibleBudget(t *testing.T) {
	p := testProblem(3, 5, 0, 1, 10)
	fb := relaxBounds(p)
	out := make([]float64, 3)
	if _, ok := NewRelaxedSolver().waterfill(p, fb, 1, out); ok {
		t.Fatal("waterfill accepted an impossible budget")
	}
}

func TestSolutionForRatesMatchLevels(t *testing.T) {
	p := testProblem(3, 2, 1, 1, 15)
	sol := p.solutionFor([]int{0, 1, 2}, true)
	want := []float64{100_000, 250_000, 500_000}
	for i, r := range sol.RatesBps {
		if r != want[i] {
			t.Fatalf("rate[%d] = %v, want %v", i, r, want[i])
		}
	}
	if !sol.Feasible {
		t.Fatal("feasible flag lost")
	}
}

func TestBruteForceHonorsStickiness(t *testing.T) {
	// Brute force and DP must agree including the bonus term.
	rng := sim.NewRNG(33)
	for trial := 0; trial < 20; trial++ {
		p := testProblem(3, -1, rng.Intn(2), 1, 8+rng.Float64()*20)
		for u := range p.Flows {
			p.Flows[u].PrevLevel = rng.Intn(p.Flows[u].Ladder.Len()+1) - 1
		}
		p.StickinessBonus = 0.25
		p.TotalRBs *= 0.1 + rng.Float64()*0.5
		bf, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := NewExactSolver().Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if bf.Feasible && dp.Objective < bf.Objective-0.05 {
			t.Fatalf("trial %d: DP %v below brute force %v with stickiness",
				trial, dp.Objective, bf.Objective)
		}
	}
}
