package core

import "testing"

func FuzzGateApply(f *testing.F) {
	f.Add(4, 0, -1, 0)
	f.Add(4, 1, 3, 4)
	f.Add(0, 2, 5, 0)
	f.Add(12, 7, 11, 12)
	f.Fuzz(func(t *testing.T, delta, flowID, prev, rec int) {
		if delta < 0 || delta > 100 {
			delta %= 101
			if delta < 0 {
				delta = -delta
			}
		}
		if prev < -1 {
			prev = -1
		}
		g := NewGate(delta)
		got := g.Apply(flowID, prev, rec)
		if prev < 0 {
			if got != rec {
				t.Fatalf("first assignment %d != recommendation %d", got, rec)
			}
			return
		}
		if got > prev+1 {
			t.Fatalf("gate jumped: prev %d -> %d", prev, got)
		}
		if rec >= prev && got < prev {
			t.Fatalf("gate dropped without a lower recommendation: prev %d rec %d -> %d", prev, rec, got)
		}
		if rec < prev && got != rec {
			t.Fatalf("drop not applied: prev %d rec %d -> %d", prev, rec, got)
		}
	})
}

func FuzzExactSolverStaysFeasible(f *testing.F) {
	f.Add(uint8(3), int64(50_000), 10.0, 1.0)
	f.Add(uint8(1), int64(100), 0.5, 0.0)
	f.Add(uint8(8), int64(5_000_000), 40.0, 4.0)
	f.Fuzz(func(t *testing.T, nRaw uint8, totalRBs int64, bytesPerRB, alpha float64) {
		n := int(nRaw)%8 + 1
		if totalRBs <= 0 {
			totalRBs = -totalRBs + 1
		}
		if bytesPerRB <= 0.01 || bytesPerRB > 1e6 || bytesPerRB != bytesPerRB {
			bytesPerRB = 10
		}
		if alpha < 0 || alpha > 100 || alpha != alpha {
			alpha = 1
		}
		p := testProblem(n, -1, int(nRaw)%3, alpha, bytesPerRB)
		p.TotalRBs = float64(totalRBs)
		sol, err := NewExactSolver().Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Feasible && sol.VideoShare > 1+1e-9 {
			t.Fatalf("feasible solution uses %v of the cell", sol.VideoShare)
		}
		for u, l := range sol.Levels {
			if l < 0 || l > p.Flows[u].MaxLevel() {
				t.Fatalf("level %d out of range for flow %d", l, u)
			}
		}
	})
}
