package core

import (
	"testing"

	"github.com/flare-sim/flare/internal/has"
)

// FuzzAdmission drives the saturation machinery with an adversarial op
// stream and checks its contract from both sides:
//
//   - an admitted session never pushes the cell's floor demand past the
//     RB budget (admitted flows can all hold their floor level);
//   - a rejection is honest — the budget really cannot absorb the
//     candidate's floor cost on top of the registered demand;
//   - the downgrade ladder is monotone with hysteresis: at most one
//     step per BAI, sheds only under overload, restores only after
//     shedHoldBAIs consecutive calm BAIs, and never leaves [0, maxShed].
//
// Each op byte selects open / close / radio-cost update / shed step, so
// the corpus explores interleavings the simulator never produces
// (churn storms, cost spikes mid-queue, sheds racing departures).
func FuzzAdmission(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})                         // admit a burst on one ladder
	f.Add([]byte{0, 1, 0, 65, 2, 0x10, 0, 130})                   // mixed ladders with closes
	f.Add([]byte{0, 0, 0, 0, 3, 0xff, 3, 0xff, 3, 0x00, 3, 0x00}) // saturate then shed then calm
	f.Add([]byte{0, 2, 0xf0, 0, 2, 0x01, 1, 0, 3, 0x80, 3, 0x80}) // cost swings around the predicate
	f.Fuzz(func(t *testing.T, ops []byte) {
		cfg := DefaultConfig()
		cfg.AdmissionControl = true
		cfg.DowngradeLadder = true
		c := NewController(cfg)

		ladders := []has.Ladder{has.SimLadder(), has.TestbedLadder(), has.FineLadder()}
		const maxShed = 16
		var (
			live   []int
			nextID int
			calm   int // calm-BAI streak mirrored from the hysteresis spec
		)
		for i := 0; i < len(ops); i++ {
			op := ops[i]
			arg := byte(0)
			if i+1 < len(ops) {
				arg = ops[i+1]
				i++
			}
			switch op % 4 {
			case 0: // try to open a session
				ladder := ladders[int(arg)%len(ladders)]
				demand := c.FloorDemandRBs()
				cand := cfg.BAI.Seconds() * ladder.Min() / 8 / DefaultBytesPerRB
				if c.CanAdmit(ladder) {
					if demand+cand > c.budgetRBs()+1e-9 {
						t.Fatalf("admitted past the budget: demand %.1f + cand %.1f > %.1f RBs",
							demand, cand, c.budgetRBs())
					}
					if err := c.Register(nextID, ladder, Preferences{}); err != nil {
						t.Fatal(err)
					}
					live = append(live, nextID)
					nextID++
					if c.FloorDemandRBs() > c.budgetRBs()+1e-9 {
						t.Fatalf("floor demand %.1f RBs exceeds budget %.1f after an admitted open",
							c.FloorDemandRBs(), c.budgetRBs())
					}
				} else if demand+cand <= c.budgetRBs() {
					t.Fatalf("dishonest reject: demand %.1f + cand %.1f fits budget %.1f RBs",
						demand, cand, c.budgetRBs())
				}
			case 1: // close a live session
				if len(live) == 0 {
					continue
				}
				k := int(arg) % len(live)
				c.Unregister(live[k])
				live = append(live[:k], live[k+1:]...)
			case 2: // radio-cost report for a live session
				if len(live) == 0 {
					continue
				}
				id := live[int(arg)%len(live)]
				// Bytes in [1, 256] per 10 RBs: cost swings across the
				// admission knife edge without leaving float sanity.
				stats := map[int]FlowStats{id: {Bytes: int64(arg) + 1, RBs: 10}}
				if _, err := c.RunBAI(stats, 0); err != nil {
					t.Fatal(err)
				}
				// The solve ran the real shed state machine; resync the
				// mirrored hysteresis counter to it.
				calm = c.calmStreak
			case 3: // one downgrade-ladder step with a synthetic solve
				share := float64(arg) / 255 * 1.2 // sweeps past both watermarks
				sol := Solution{Feasible: arg%5 != 0, VideoShare: share}
				before := c.ShedLevel()
				c.updateShed(sol, maxShed)
				after := c.ShedLevel()
				if after < 0 || after > maxShed {
					t.Fatalf("shed %d outside [0, %d]", after, maxShed)
				}
				if d := after - before; d > 1 || d < -1 {
					t.Fatalf("shed jumped %d -> %d in one BAI", before, after)
				}
				overloaded := !sol.Feasible || share > shedHighShare
				if after > before && !overloaded {
					t.Fatalf("shed rose %d -> %d without overload (share %.3f feasible %v)",
						before, after, share, sol.Feasible)
				}
				if after < before && calm+1 < shedHoldBAIs {
					t.Fatalf("shed released %d -> %d after only %d calm BAIs (hold %d)",
						before, after, calm+1, shedHoldBAIs)
				}
				// Mirror the hysteresis counter the contract promises.
				switch {
				case overloaded, before == 0, share >= shedLowShare:
					calm = 0
				case after < before:
					calm = 0
				default:
					calm++
				}
			}
		}
	})
}
