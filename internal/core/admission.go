package core

import (
	"sort"

	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/obs"
)

// This file is the controller's saturation machinery: the admission
// predicate (can one more flow hold its floor level inside the BAI's RB
// budget?) and the downgrade-ladder shedding state machine. Both sit
// off the per-TTI hot path — they run at session-open and once-per-BAI
// cadence only — and both are allocation-free except for the sorted
// flow-ID scratch in FloorDemandRBs.

// budgetRBs is N in Eq. 4: the RB budget the optimiser plans against
// over one BAI, after the capacity margin.
func (c *Controller) budgetRBs() float64 {
	return float64(lte.NumRB) * c.cfg.BAI.Seconds() * lte.TTIsPerSecond * c.cfg.CapacityMargin
}

// floorCostRBs is one flow's Eq. 4 cost at its floor (lowest-ladder)
// level for a given radio cost.
func (c *Controller) floorCostRBs(ladder has.Ladder, rbsPerByte float64) float64 {
	return c.cfg.BAI.Seconds() * ladder.Min() / 8 * rbsPerByte
}

// FloorDemandRBs returns the RBs all registered flows together need to
// hold their floor levels this BAI, using the controller's current
// EWMA radio-cost estimates. Flows are summed in sorted-ID order so
// the float result is deterministic.
func (c *Controller) FloorDemandRBs() float64 {
	ids := make([]int, 0, len(c.flows))
	//flare:allow key-collection loop: the keys are sorted on the next line, so iteration order cannot reach state or output
	for id := range c.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sum float64
	for _, id := range ids {
		f := c.flows[id]
		sum += c.floorCostRBs(f.ladder, f.rbsPerByte)
	}
	return sum
}

// CanAdmit reports whether a new session with the given ladder passes
// the admission predicate: every already-registered flow plus the
// candidate (priced at the DefaultBytesPerRB prior, since it has no
// radio history yet) must fit its floor level in the RB budget. With
// AdmissionControl disabled it always reports true — the paper's
// unconditional registration.
func (c *Controller) CanAdmit(ladder has.Ladder) bool {
	if !c.cfg.AdmissionControl {
		return true
	}
	cand := c.floorCostRBs(ladder, 1/DefaultBytesPerRB)
	return c.FloorDemandRBs()+cand <= c.budgetRBs()
}

// ShedLevel returns the current downgrade-ladder depth: how many steps
// are shaved off every flow's ceiling (0 = no shedding).
func (c *Controller) ShedLevel() int { return c.shed }

// shedCap folds the downgrade ladder into a flow's effective bitrate
// cap: with shed steps active, the flow's ceiling is its ladder top
// minus shed (floored at level 0), combined with the client's own cap.
// With the ladder disabled or idle this is exactly effectiveMaxBps, so
// the default path is byte-identical to the pre-ladder controller.
func (c *Controller) shedCap(f *ctrlFlow) float64 {
	eff := f.effectiveMaxBps()
	if !c.cfg.DowngradeLadder || c.shed == 0 {
		return eff
	}
	capLevel := f.ladder.Len() - 1 - c.shed
	if capLevel < 0 {
		capLevel = 0
	}
	capBps := f.ladder.Rate(capLevel)
	if eff == 0 || eff > capBps {
		return capBps
	}
	return eff
}

// updateShed advances the downgrade-ladder state machine after a solve.
// Overload (an infeasible instance, or a video share above the high
// watermark) takes one shed step immediately; release requires
// shedHoldBAIs consecutive BAIs below the low watermark and then gives
// back one step at a time — strictly monotone per BAI, with hysteresis.
func (c *Controller) updateShed(sol Solution, maxShed int) {
	overloaded := !sol.Feasible || sol.VideoShare > shedHighShare
	switch {
	case overloaded:
		c.calmStreak = 0
		if c.shed < maxShed {
			c.shed++
			c.rec.Emit(obs.Downgrade(c.cellID, c.baiSeq, int32(c.shed), sol.VideoShare))
		}
	case c.shed > 0 && sol.VideoShare < shedLowShare:
		c.calmStreak++
		if c.calmStreak >= shedHoldBAIs {
			c.shed--
			c.calmStreak = 0
			c.rec.Emit(obs.Restore(c.cellID, c.baiSeq, int32(c.shed), sol.VideoShare))
		}
	default:
		c.calmStreak = 0
	}
}
