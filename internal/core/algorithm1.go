package core

// Gate implements the stability rule of Algorithm 1: a flow's level may
// rise by at most one step per BAI, and only after the optimiser has
// recommended that step for delta*(L+1) consecutive BAIs (L being the
// current 1-indexed level — higher levels climb more slowly, following
// FESTIVE's delayed-update idea). Drops are applied immediately:
// L^i = min(L^{i-1}, L^{i*}).
type Gate struct {
	delta   int
	streaks map[int]int
}

// NewGate builds a gate with the given delta (Table IV default: 4).
// delta <= 0 disables the streak requirement (up-switches apply
// immediately), which is the ablation arm of Figure 12.
func NewGate(delta int) *Gate {
	return &Gate{delta: delta, streaks: make(map[int]int)}
}

// Delta returns the configured stability parameter.
func (g *Gate) Delta() int { return g.delta }

// required returns the recommendation streak needed to step up from
// prevLevel (0-indexed): delta * (L+1) with L = prevLevel+1 (1-indexed).
func (g *Gate) required(prevLevel int) int {
	return g.delta * (prevLevel + 2)
}

// Apply resolves the final level for one flow given the previous level
// and this BAI's recommendation. prevLevel -1 means the flow has no
// assignment yet; the first recommendation is applied directly (the
// optimiser already restricts new flows to the lowest level).
func (g *Gate) Apply(flowID, prevLevel, recommended int) int {
	final, _, _ := g.ApplyDetail(flowID, prevLevel, recommended)
	return final
}

// ApplyDetail is Apply plus the gate's internal state for telemetry:
// streak is the up-recommendation streak after this BAI (0 whenever it
// was reset or consumed) and need is the streak length a pending
// up-switch from prevLevel must reach (0 when no up-step is pending).
func (g *Gate) ApplyDetail(flowID, prevLevel, recommended int) (final, streak, need int) {
	if prevLevel < 0 {
		g.streaks[flowID] = 0
		return recommended, 0, 0
	}
	if recommended == prevLevel+1 {
		g.streaks[flowID]++
		if g.delta <= 0 || g.streaks[flowID] >= g.required(prevLevel) {
			g.streaks[flowID] = 0
			return prevLevel + 1, 0, 0
		}
		return prevLevel, g.streaks[flowID], g.required(prevLevel)
	}
	g.streaks[flowID] = 0
	if recommended < prevLevel {
		return recommended, 0, 0
	}
	return prevLevel, 0, 0
}

// Forget drops the streak state of a departed flow.
func (g *Gate) Forget(flowID int) {
	delete(g.streaks, flowID)
}
