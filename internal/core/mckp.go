package core

import (
	"fmt"
	"math"
)

// ExactSolver solves the discrete problem (Eq. 3-4) as a multiple-choice
// knapsack: each flow picks one level from [0, MaxLevel]; the capacity
// axis is discretised into Bins RB buckets (costs rounded up, so the
// capacity constraint is never violated); a final scan over the bucket
// index trades video RBs against the data term n*alpha*log(1-r).
//
// This replaces the paper's "solve (3-4) exactly" KNITRO configuration.
// With the default 4000 bins the discretisation error is below 0.03% of
// the band, far finer than one ladder step; the brute-force solver in
// the tests confirms the DP matches true optima on small instances.
type ExactSolver struct {
	// Bins is the capacity discretisation granularity.
	Bins int

	// DP scratch, grown on demand and reused across Solve calls so the
	// per-BAI solve allocates only its returned Solution. An ExactSolver
	// is therefore not safe for concurrent Solve calls; the controller
	// owns one per cell and serialises BAIs, which is the contract
	// throughout this codebase.
	costs  [][]int
	utils  [][]float64
	costsB []int
	utilsB []float64
	dp     []float64
	nxt    []float64
	choice []int8 // flattened n x (bins+1)

	// dtCache memoises DataTerm(j/bins) for j in [0, bins]: the curve
	// depends only on (NumDataFlows, Alpha, bins), which are constant
	// across the BAIs of a run, and recomputing 4001 logs per solve was
	// a measurable slice of the controller's hot path. The cached values
	// are the exact floats DataTerm returns, so reuse is bit-identical.
	dtCache []float64
	dtData  int
	dtAlpha float64
}

// NewExactSolver returns an ExactSolver with the default resolution.
func NewExactSolver() *ExactSolver { return &ExactSolver{Bins: 4000} }

// Solve runs the DP and returns the best feasible assignment.
//
//flare:hotpath
func (s *ExactSolver) Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	bins := s.Bins
	if bins < 10 {
		bins = 10
	}
	n := len(p.Flows)
	if n == 0 {
		return p.solutionFor(nil, true), nil
	}

	binRBs := p.TotalRBs / float64(bins)
	// cost in bins (rounded up) per flow per level. The per-flow slices
	// are carved out of grow-only scratch buffers; every entry is
	// overwritten before use, so reuse cannot leak state between solves.
	levelsTotal := 0
	for u := range p.Flows {
		levelsTotal += p.Flows[u].MaxLevel() + 1
	}
	if cap(s.costsB) < levelsTotal {
		s.costsB = make([]int, levelsTotal)
		s.utilsB = make([]float64, levelsTotal)
	}
	if cap(s.costs) < n {
		s.costs = make([][]int, n)
		s.utils = make([][]float64, n)
	}
	costs := s.costs[:n]
	utils := s.utils[:n]
	off := 0
	feasible := true
	for u := range p.Flows {
		f := &p.Flows[u]
		maxL := f.MaxLevel()
		costs[u] = s.costsB[off : off+maxL+1 : off+maxL+1]
		utils[u] = s.utilsB[off : off+maxL+1 : off+maxL+1]
		off += maxL + 1
		for l := 0; l <= maxL; l++ {
			c := p.CostRBs(u, f.Ladder.Rate(l))
			costs[u][l] = int(math.Ceil(c / binRBs))
			utils[u][l] = p.UtilityAt(u, l)
		}
		if costs[u][0] > bins {
			feasible = false
		}
	}
	if !feasible {
		// Even the lowest levels overflow the cell; hand out the
		// minimum and let the scheduler degrade gracefully.
		return p.solutionFor(p.lowestLevels(), false), nil
	}

	negInf := math.Inf(-1)
	// dp[j]: max total utility using exactly <= j bins, with choice[u][j]
	// recording flow u's level in the best assignment reaching j.
	if cap(s.dp) < bins+1 {
		s.dp = make([]float64, bins+1)
		s.nxt = make([]float64, bins+1)
	}
	if cap(s.choice) < n*(bins+1) {
		s.choice = make([]int8, n*(bins+1))
	}
	dp, next := s.dp[:bins+1], s.nxt[:bins+1]
	choice := s.choice[:n*(bins+1)]
	for j := range dp {
		dp[j] = 0
	}
	// sat is the saturation bound after the flows processed so far: the
	// sum of their max-level costs, capped at bins. For j >= sat every
	// level's lookback dp[j-c] reads the (inductively constant) saturated
	// region of the previous row, so value and first-wins argmax are the
	// same for all such j — the tail is filled by copying the entry at
	// the bound instead of recomputing it, bit-identically.
	sat := 0
	for u := 0; u < n; u++ {
		cu, uu := costs[u], utils[u]
		chu := choice[u*(bins+1) : (u+1)*(bins+1)]
		sat += cu[len(cu)-1] // costs ascend in l, so the last is the max
		if sat > bins {
			sat = bins
		}
		bound := sat
		// Level-outer sweep: for each capacity j the argmax over levels is
		// taken in ascending l with strict >, which visits exactly the
		// candidates of the natural per-j scan in the same order — ties
		// resolve to the same level, so the result is bit-identical to the
		// j-outer formulation while keeping the inner loop branch-light
		// and stride-1.
		//
		// Level 0 is peeled: below its cost the row is unreachable, at or
		// above it the level-0 candidate always replaces the -inf
		// initialiser, so both regions are written directly instead of
		// init-then-compare. (Where dp itself is -inf the peel records
		// choice 0 instead of -1; such cells carry value -inf and can
		// never lie on the finite backtrack path, so the solution is
		// unchanged.)
		c0, u0 := cu[0], uu[0]
		for j := 0; j < c0; j++ {
			next[j] = negInf
			chu[j] = -1
		}
		{
			dpc := dp[: bound+1-c0 : bound+1-c0]
			nx := next[c0 : bound+1 : bound+1]
			ch := chu[c0 : bound+1 : bound+1]
			for j, dv := range dpc {
				nx[j] = dv + u0
				ch[j] = 0
			}
		}
		for l := 1; l < len(cu); l++ {
			c := cu[l]
			if c > bound {
				break // costs are ascending in l
			}
			ul := uu[l]
			l8 := int8(l)
			dpc := dp[: bound+1-c : bound+1-c]
			nx := next[c : bound+1 : bound+1]
			ch := chu[c : bound+1 : bound+1]
			for j, dv := range dpc {
				if v := dv + ul; v > nx[j] {
					nx[j] = v
					ch[j] = l8
				}
			}
		}
		// Saturated tail: identical to the entry at the bound.
		if bound < bins {
			vn, vc := next[bound], chu[bound]
			for j := bound + 1; j <= bins; j++ {
				next[j] = vn
				chu[j] = vc
			}
		}
		dp, next = next, dp
	}

	// Pick the bucket count that maximises utility + data term. The
	// data-term curve over the bucket grid is memoised across solves
	// (see dtCache).
	if len(s.dtCache) != bins+1 || s.dtData != p.NumDataFlows || s.dtAlpha != p.Alpha {
		if cap(s.dtCache) < bins+1 {
			s.dtCache = make([]float64, bins+1)
		}
		s.dtCache = s.dtCache[:bins+1]
		for j := 0; j <= bins; j++ {
			s.dtCache[j] = p.DataTerm(float64(j) / float64(bins))
		}
		s.dtData, s.dtAlpha = p.NumDataFlows, p.Alpha
	}
	bestObj := negInf
	bestJ := -1
	for j := 0; j <= bins; j++ {
		if dp[j] == negInf {
			continue
		}
		obj := dp[j] + s.dtCache[j]
		if obj > bestObj {
			bestObj = obj
			bestJ = j
		}
	}
	if bestJ < 0 {
		return p.solutionFor(p.lowestLevels(), false), nil
	}

	// Backtrack the choices. levels is freshly allocated because the
	// returned Solution retains it.
	levels := make([]int, n)
	j := bestJ
	for u := n - 1; u >= 0; u-- {
		l := choice[u*(bins+1)+j]
		if l < 0 {
			return Solution{}, fmt.Errorf("core: DP backtrack failed at flow %d", u)
		}
		levels[u] = int(l)
		j -= costs[u][l]
	}
	return p.solutionFor(levels, true), nil
}

// BruteForce exhaustively enumerates every level combination. It is
// exponential and exists to validate the DP and relaxation solvers on
// small instances (tests and benchmarks only).
func BruteForce(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Flows)
	levels := p.lowestLevels()
	best := make([]int, n)
	bestObj := math.Inf(-1)
	found := false

	var walk func(u int)
	walk = func(u int) {
		if u == n {
			if obj, _ := p.ObjectiveAt(levels); obj > bestObj {
				bestObj = obj
				copy(best, levels)
				found = true
			}
			return
		}
		maxL := p.Flows[u].MaxLevel()
		for l := 0; l <= maxL; l++ {
			levels[u] = l
			walk(u + 1)
		}
		levels[u] = 0
	}
	walk(0)

	if !found || math.IsInf(bestObj, -1) {
		return p.solutionFor(p.lowestLevels(), false), nil
	}
	return p.solutionFor(best, true), nil
}
