package core

import (
	"fmt"
	"math"
)

// ExactSolver solves the discrete problem (Eq. 3-4) as a multiple-choice
// knapsack: each flow picks one level from [0, MaxLevel]; the capacity
// axis is discretised into Bins RB buckets (costs rounded up, so the
// capacity constraint is never violated); a final scan over the bucket
// index trades video RBs against the data term n*alpha*log(1-r).
//
// This replaces the paper's "solve (3-4) exactly" KNITRO configuration.
// With the default 4000 bins the discretisation error is below 0.03% of
// the band, far finer than one ladder step; the brute-force solver in
// the tests confirms the DP matches true optima on small instances.
type ExactSolver struct {
	// Bins is the capacity discretisation granularity.
	Bins int
}

// NewExactSolver returns an ExactSolver with the default resolution.
func NewExactSolver() *ExactSolver { return &ExactSolver{Bins: 4000} }

// Solve runs the DP and returns the best feasible assignment.
func (s *ExactSolver) Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	bins := s.Bins
	if bins < 10 {
		bins = 10
	}
	n := len(p.Flows)
	if n == 0 {
		return p.solutionFor(nil, true), nil
	}

	binRBs := p.TotalRBs / float64(bins)
	// cost in bins (rounded up) per flow per level.
	costs := make([][]int, n)
	utils := make([][]float64, n)
	feasible := true
	for u := range p.Flows {
		f := &p.Flows[u]
		maxL := f.MaxLevel()
		costs[u] = make([]int, maxL+1)
		utils[u] = make([]float64, maxL+1)
		for l := 0; l <= maxL; l++ {
			c := p.CostRBs(u, f.Ladder.Rate(l))
			costs[u][l] = int(math.Ceil(c / binRBs))
			utils[u][l] = p.UtilityAt(u, l)
		}
		if costs[u][0] > bins {
			feasible = false
		}
	}
	if !feasible {
		// Even the lowest levels overflow the cell; hand out the
		// minimum and let the scheduler degrade gracefully.
		return p.solutionFor(p.lowestLevels(), false), nil
	}

	negInf := math.Inf(-1)
	// dp[j]: max total utility using exactly <= j bins, with choice[u][j]
	// recording flow u's level in the best assignment reaching j.
	dp := make([]float64, bins+1)
	next := make([]float64, bins+1)
	choice := make([][]int8, n)
	for u := range choice {
		choice[u] = make([]int8, bins+1)
	}
	for j := range dp {
		dp[j] = 0
	}
	for u := 0; u < n; u++ {
		for j := 0; j <= bins; j++ {
			best := negInf
			bestL := int8(-1)
			for l, c := range costs[u] {
				if c > j {
					break // costs are ascending in l
				}
				if v := dp[j-c] + utils[u][l]; v > best {
					best = v
					bestL = int8(l)
				}
			}
			next[j] = best
			choice[u][j] = bestL
		}
		dp, next = next, dp
	}

	// Pick the bucket count that maximises utility + data term.
	bestObj := negInf
	bestJ := -1
	for j := 0; j <= bins; j++ {
		if dp[j] == negInf {
			continue
		}
		obj := dp[j] + p.DataTerm(float64(j)/float64(bins))
		if obj > bestObj {
			bestObj = obj
			bestJ = j
		}
	}
	if bestJ < 0 {
		return p.solutionFor(p.lowestLevels(), false), nil
	}

	// Backtrack the choices.
	levels := make([]int, n)
	j := bestJ
	for u := n - 1; u >= 0; u-- {
		l := choice[u][j]
		if l < 0 {
			return Solution{}, fmt.Errorf("core: DP backtrack failed at flow %d", u)
		}
		levels[u] = int(l)
		j -= costs[u][l]
	}
	return p.solutionFor(levels, true), nil
}

// BruteForce exhaustively enumerates every level combination. It is
// exponential and exists to validate the DP and relaxation solvers on
// small instances (tests and benchmarks only).
func BruteForce(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Flows)
	levels := p.lowestLevels()
	best := make([]int, n)
	bestObj := math.Inf(-1)
	found := false

	var walk func(u int)
	walk = func(u int) {
		if u == n {
			if obj, _ := p.ObjectiveAt(levels); obj > bestObj {
				bestObj = obj
				copy(best, levels)
				found = true
			}
			return
		}
		maxL := p.Flows[u].MaxLevel()
		for l := 0; l <= maxL; l++ {
			levels[u] = l
			walk(u + 1)
		}
		levels[u] = 0
	}
	walk(0)

	if !found || math.IsInf(bestObj, -1) {
		return p.solutionFor(p.lowestLevels(), false), nil
	}
	return p.solutionFor(best, true), nil
}
