package core

import (
	"math"
	"testing"

	"github.com/flare-sim/flare/internal/has"
)

func TestObjectiveByName(t *testing.T) {
	for _, name := range ObjectiveNames() {
		obj, ok := ObjectiveByName(name)
		if !ok {
			t.Errorf("registered objective %q did not resolve", name)
		}
		if obj.Name() != name {
			t.Errorf("ObjectiveByName(%q).Name() = %q", name, obj.Name())
		}
	}
	if obj, ok := ObjectiveByName(""); !ok || obj != DefaultObjective {
		t.Errorf("empty name resolved to %v, ok %v; want the default", obj, ok)
	}
	if obj, ok := ObjectiveByName("nope"); ok || obj != DefaultObjective {
		t.Errorf("unknown name resolved to %v, ok %v; want default with ok=false", obj, ok)
	}
}

// TestObjectiveShapes pins the analytic contract both solvers rely on:
// utilities are concave and nondecreasing in rate, and RateForMarginal
// really inverts the marginal (U'(RateForMarginal(m)) == m).
func TestObjectiveShapes(t *testing.T) {
	const beta, theta = 2.0, 200_000.0
	for _, name := range ObjectiveNames() {
		obj, _ := ObjectiveByName(name)
		rates := []float64{100_000, 250_000, 500_000, 1e6, 2e6, 5e6}
		for i := 1; i < len(rates)-1; i++ {
			lo, mid, hi := rates[i-1], rates[i], rates[i+1]
			ulo, umid, uhi := obj.Utility(beta, theta, lo), obj.Utility(beta, theta, mid), obj.Utility(beta, theta, hi)
			if !(ulo < umid && umid < uhi) {
				t.Errorf("%s: utility not increasing: U(%.0f)=%v U(%.0f)=%v U(%.0f)=%v",
					name, lo, ulo, mid, umid, hi, uhi)
			}
			// Concavity: marginal gain shrinks as rate grows.
			if (umid-ulo)/(mid-lo) <= (uhi-umid)/(hi-mid) {
				t.Errorf("%s: utility not concave around %.0f bps", name, mid)
			}
		}
		// RateForMarginal inverts U' (central finite difference).
		for _, m := range []float64{1e-7, 1e-6, 5e-6} {
			r := obj.RateForMarginal(beta, theta, m)
			if r <= 0 {
				continue // caller clamps; a non-positive point is legal
			}
			const h = 1.0
			marginal := (obj.Utility(beta, theta, r+h) - obj.Utility(beta, theta, r-h)) / (2 * h)
			if math.Abs(marginal-m) > m*1e-3 {
				t.Errorf("%s: U'(RateForMarginal(%v)) = %v, want %v", name, m, marginal, m)
			}
		}
	}
}

// TestEq2ObjectiveMatchesPaperExpression: the default objective must be
// expression-identical to the pre-interface inline code — same floats,
// not merely close — because the scheme goldens replay byte-exactly
// through it.
func TestEq2ObjectiveMatchesPaperExpression(t *testing.T) {
	for _, tc := range []struct{ beta, theta, rate float64 }{
		{1, 100_000, 250_000},
		{2.5, 350_000, 1_000_000},
		{0.5, 50_000, 2_750_000},
	} {
		want := tc.beta * (1 - tc.theta/tc.rate)
		if got := DefaultObjective.Utility(tc.beta, tc.theta, tc.rate); got != want {
			t.Errorf("eq2 Utility(%v,%v,%v) = %v, want exact %v", tc.beta, tc.theta, tc.rate, got, want)
		}
		lambdaA := 2e-6
		if got, want := DefaultObjective.RateForMarginal(tc.beta, tc.theta, lambdaA),
			math.Sqrt(tc.beta*tc.theta/lambdaA); got != want {
			t.Errorf("eq2 RateForMarginal = %v, want exact %v", got, want)
		}
	}
}

// TestUPFRewardsCheapRadio: on a two-flow cell where one flow has much
// cheaper radio, the objectives must separate the way their fairness
// indices say: eq2 (alpha=2, 1/R^2 marginal) equalises levels hard,
// while upf's slower 1/R log marginal keeps paying the efficient flow —
// a wider level gap. This is the observable difference the alternative
// objective exists for.
func TestUPFRewardsCheapRadio(t *testing.T) {
	build := func(obj Objective) *Problem {
		p := &Problem{
			Flows: []VideoFlow{
				{ID: 0, Ladder: has.SimLadder(), Beta: 1, ThetaBps: 100_000, PrevLevel: -1, RBsPerByte: 0.02},
				{ID: 1, Ladder: has.SimLadder(), Beta: 1, ThetaBps: 100_000, PrevLevel: -1, RBsPerByte: 0.4},
			},
			Objective:  obj,
			TotalRBs:   30_000,
			BAISeconds: 1,
		}
		return p
	}
	spread := func(obj Objective) int {
		sol, err := NewExactSolver().Solve(build(obj))
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Feasible {
			t.Fatalf("%s instance infeasible", obj.Name())
		}
		d := sol.Levels[0] - sol.Levels[1]
		if d < 0 {
			d = -d
		}
		return d
	}
	eq2Spread := spread(DefaultObjective)
	upfSpread := spread(UtilityProportionalFairness)
	if upfSpread <= eq2Spread {
		t.Errorf("upf spread levels by %d, eq2 by %d; want upf > eq2 (throughput-leaning vs egalitarian)",
			upfSpread, eq2Spread)
	}
}
