package core

import "math"

// Objective abstracts the per-flow utility model of Eq. 2 so the same
// solvers (the exact MCKP DP and the KKT water-filling relaxation) can
// optimise different notions of fairness. An objective supplies two
// views of the same concave utility U(R):
//
//   - Utility, the value itself, consumed by the discrete solvers
//     (mckp.go's per-level utility table, greedyRepair, ObjectiveAt);
//   - RateForMarginal, the inverse of the marginal U'(R), consumed by
//     the relaxed solver: given the water-filling condition
//     U'(R) = lambda*a it returns the stationary-point rate R (before
//     clamping to the flow's ladder interval).
//
// Implementations must be stateless values: a Problem is rebuilt every
// BAI and the default instances are shared across controllers.
type Objective interface {
	// Name is the registry key (see ObjectiveByName).
	Name() string
	// Utility returns U(rateBps) for a flow with the given beta/theta
	// parameters. It must be concave and nondecreasing in rateBps.
	Utility(beta, thetaBps, rateBps float64) float64
	// RateForMarginal returns the rate at which U'(R) equals lambdaA
	// (the KKT multiplier scaled by the flow's RBs-per-bps cost). The
	// caller clamps the result to the flow's feasible rate interval,
	// so out-of-range or non-positive returns are acceptable.
	RateForMarginal(beta, thetaBps, lambdaA float64) float64
}

// eq2Objective is the paper's Eq. 2 sigmoid-tail utility
// U(R) = beta*(1 - theta/R). Its marginal is beta*theta/R^2, so the
// KKT stationary point is R = sqrt(beta*theta/(lambda*a)) — exactly
// Proposition 1's water-filling form. This is the default objective;
// its arithmetic is kept expression-identical to the pre-interface
// code so default-path runs stay byte-for-byte reproducible.
type eq2Objective struct{}

func (eq2Objective) Name() string { return "eq2" }

func (eq2Objective) Utility(beta, thetaBps, rateBps float64) float64 {
	return beta * (1 - thetaBps/rateBps)
}

func (eq2Objective) RateForMarginal(beta, thetaBps, lambdaA float64) float64 {
	return math.Sqrt(beta * thetaBps / lambdaA)
}

// upfObjective is utility-proportional fairness in the sense of
// Ghorbanzadeh et al.: a logarithmic utility U(R) = beta*log(1 + R/theta),
// i.e. proportional fairness on rates normalised by the screen
// parameter. Where Eq. 2's 1 - theta/R is alpha=2 (potential-delay)
// fairness — its 1/R^2 marginal collapses fast, equalising rates hard —
// the log marginal beta/(theta + R) decays only as 1/R, so flows with
// cheap radio keep earning capacity longer: upf trades some of Eq. 2's
// egalitarianism for cell throughput. The KKT stationary point is
// R = beta/(lambda*a) - theta.
type upfObjective struct{}

func (upfObjective) Name() string { return "upf" }

func (upfObjective) Utility(beta, thetaBps, rateBps float64) float64 {
	return beta * math.Log1p(rateBps/thetaBps)
}

func (upfObjective) RateForMarginal(beta, thetaBps, lambdaA float64) float64 {
	return beta/lambdaA - thetaBps
}

// DefaultObjective is the paper's Eq. 2 utility, used whenever a
// Problem or Config names no other objective.
var DefaultObjective Objective = eq2Objective{}

// UtilityProportionalFairness is the alternative log-utility objective.
var UtilityProportionalFairness Objective = upfObjective{}

// ObjectiveNames lists the registered objective names, default first.
func ObjectiveNames() []string { return []string{"eq2", "upf"} }

// ObjectiveByName resolves an objective by registry name. The empty
// string (and any unknown name) resolves to DefaultObjective with
// ok=false only for unknown non-empty names, so callers can warn
// without breaking a long-lived controller.
func ObjectiveByName(name string) (obj Objective, ok bool) {
	switch name {
	case "", "eq2":
		return DefaultObjective, true
	case "upf":
		return UtilityProportionalFairness, true
	default:
		return DefaultObjective, false
	}
}
