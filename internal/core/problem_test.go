package core

import (
	"math"
	"testing"

	"github.com/flare-sim/flare/internal/has"
)

// testProblem builds a problem with n identical flows on the sim ladder.
// prevLevel -1 means new flows; bytesPerRB sets the radio cost.
func testProblem(n int, prevLevel int, numData int, alpha float64, bytesPerRB float64) *Problem {
	p := &Problem{
		Flows:        make([]VideoFlow, n),
		NumDataFlows: numData,
		Alpha:        alpha,
		TotalRBs:     50 * 10_000, // 10 s BAI at 50 RB/TTI
		BAISeconds:   10,
	}
	for i := range p.Flows {
		p.Flows[i] = VideoFlow{
			ID:         i,
			Ladder:     has.SimLadder(),
			Beta:       10,
			ThetaBps:   0.2e6,
			PrevLevel:  prevLevel,
			RBsPerByte: 1 / bytesPerRB,
		}
	}
	return p
}

func TestProblemValidate(t *testing.T) {
	good := testProblem(2, 2, 1, 1, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	mutations := []func(*Problem){
		func(p *Problem) { p.TotalRBs = 0 },
		func(p *Problem) { p.BAISeconds = -1 },
		func(p *Problem) { p.NumDataFlows = -1 },
		func(p *Problem) { p.Alpha = -0.5 },
		func(p *Problem) { p.Flows[0].Ladder = has.Ladder{} },
		func(p *Problem) { p.Flows[0].Beta = 0 },
		func(p *Problem) { p.Flows[0].ThetaBps = -1 },
		func(p *Problem) { p.Flows[0].RBsPerByte = 0 },
		func(p *Problem) { p.Flows[0].PrevLevel = -2 },
		func(p *Problem) { p.Flows[0].PrevLevel = 99 },
	}
	for i, mutate := range mutations {
		p := testProblem(2, 2, 1, 1, 10)
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestVideoFlowMaxLevel(t *testing.T) {
	f := VideoFlow{Ladder: has.SimLadder(), PrevLevel: 2}
	if got := f.MaxLevel(); got != 3 {
		t.Errorf("MaxLevel = %d, want 3 (prev+1)", got)
	}
	f.PrevLevel = 5 // already at top
	if got := f.MaxLevel(); got != 5 {
		t.Errorf("MaxLevel = %d, want 5 (ladder top)", got)
	}
	f.PrevLevel = -1 // new flow: unconstrained first assignment (i = 1)
	if got := f.MaxLevel(); got != 5 {
		t.Errorf("MaxLevel = %d, want 5 for new flow", got)
	}
	// Client cap binds below the stability bound.
	f.PrevLevel = 4
	f.MaxBps = 500_000
	if got := f.MaxLevel(); got != 2 {
		t.Errorf("MaxLevel = %d, want 2 under 500k cap", got)
	}
}

func TestVideoFlowUtility(t *testing.T) {
	f := VideoFlow{Ladder: has.SimLadder(), Beta: 10, ThetaBps: 0.2e6}
	// Level 3 is 1 Mbps: 10 * (1 - 0.2) = 8.
	if got := f.Utility(3); math.Abs(got-8) > 1e-12 {
		t.Errorf("Utility(3) = %v, want 8", got)
	}
	// Utility is increasing and bounded by beta.
	prev := math.Inf(-1)
	for l := 0; l < f.Ladder.Len(); l++ {
		u := f.Utility(l)
		if u <= prev {
			t.Fatalf("utility not increasing at %d", l)
		}
		if u >= f.Beta {
			t.Fatalf("utility %v >= beta", u)
		}
		prev = u
	}
}

func TestProblemCostRBs(t *testing.T) {
	p := testProblem(1, 2, 0, 1, 10) // 10 bytes per RB
	// 1 Mbps over 10 s = 1.25 MB; at 10 B/RB that is 125000 RBs.
	if got := p.CostRBs(0, 1e6); math.Abs(got-125000) > 1e-6 {
		t.Errorf("CostRBs = %v, want 125000", got)
	}
}

func TestDataTerm(t *testing.T) {
	p := testProblem(1, 2, 2, 1.5, 10)
	if got := p.DataTerm(0); got != 0 {
		t.Errorf("DataTerm(0) = %v", got)
	}
	want := 2 * 1.5 * math.Log(0.5)
	if got := p.DataTerm(0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("DataTerm(0.5) = %v, want %v", got, want)
	}
	if got := p.DataTerm(1); !math.IsInf(got, -1) {
		t.Errorf("DataTerm(1) = %v, want -Inf", got)
	}
	if got := p.DataTerm(-0.1); got != 0 {
		t.Errorf("DataTerm(-0.1) = %v, want 0 (clamped)", got)
	}
	p.NumDataFlows = 0
	if got := p.DataTerm(0.9); got != 0 {
		t.Errorf("DataTerm with no data flows = %v", got)
	}
}

func TestObjectiveAtInfeasible(t *testing.T) {
	// Tiny capacity: even moderate levels overflow.
	p := testProblem(2, 5, 0, 1, 10)
	p.TotalRBs = 10
	obj, share := p.ObjectiveAt([]int{5, 5})
	if !math.IsInf(obj, -1) {
		t.Errorf("objective = %v for infeasible levels", obj)
	}
	if share <= 1 {
		t.Errorf("share = %v, want > 1", share)
	}
}
