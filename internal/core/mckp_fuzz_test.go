package core

import (
	"math"
	"testing"

	"github.com/flare-sim/flare/internal/has"
)

// FuzzMCKP throws heterogeneous-history instances at the exact DP and
// checks the two contracts everything downstream leans on:
//
//   - Eq. 4: a feasible solution never spends more RBs than the cell
//     has (the DP rounds costs UP into bins, so discretisation can only
//     be conservative), and
//   - the one-level-up stability rule: no flow is placed more than one
//     level above its previous assignment (fresh flows excepted).
//
// Because rounded-up costs shrink the feasible set, the exhaustive
// BruteForce optimum over the exact costs bounds the DP objective from
// above; that cross-check runs on every instance (n <= 4 on the
// 6-level sim ladder keeps it cheap).
func FuzzMCKP(f *testing.F) {
	f.Add(uint8(2), uint16(0x1b), int64(500_000), 10.0, 1.0, false, 0.0)
	f.Add(uint8(4), uint16(0xffff), int64(100), 0.25, 0.0, true, 0.0)
	f.Add(uint8(1), uint16(0), int64(5_000_000), 120.0, 4.0, false, 1.1e6)
	f.Add(uint8(3), uint16(0x0421), int64(40_000), 2.0, 0.5, true, 450_000.0)
	f.Fuzz(func(t *testing.T, nRaw uint8, prevBits uint16, totalRBs int64, bytesPerRB, alpha float64, fine bool, capBps float64) {
		n := int(nRaw)%4 + 1
		if totalRBs <= 0 {
			totalRBs = -totalRBs%5_000_000 + 1
		} else {
			totalRBs = totalRBs%5_000_000 + 1
		}
		if bytesPerRB <= 0.01 || bytesPerRB > 1e6 || math.IsNaN(bytesPerRB) {
			bytesPerRB = 10
		}
		if alpha < 0 || alpha > 100 || math.IsNaN(alpha) {
			alpha = 1
		}
		p := testProblem(n, -1, int(nRaw)%3, alpha, bytesPerRB)
		p.TotalRBs = float64(totalRBs)
		if fine {
			// The paper's dense 12-level ladder instead of the 6-level
			// sim ladder: more levels, tighter spacing.
			for u := range p.Flows {
				p.Flows[u].Ladder = has.FineLadder()
			}
		}
		if capBps >= 100_000 && capBps <= 10e6 && !math.IsNaN(capBps) {
			// A Section II-B client preference cap on the last flow.
			p.Flows[n-1].MaxBps = capBps
		}
		// Heterogeneous histories: 4 bits per flow pick PrevLevel in
		// [-1, Ladder.Len()-1].
		for u := range p.Flows {
			span := p.Flows[u].Ladder.Len() + 1
			p.Flows[u].PrevLevel = int(prevBits>>(4*u)&0xf)%span - 1
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("constructed instance invalid: %v", err)
		}

		sol, err := NewExactSolver().Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(sol.Levels) != n {
			t.Fatalf("%d levels for %d flows", len(sol.Levels), n)
		}
		var spent float64
		for u, l := range sol.Levels {
			fl := &p.Flows[u]
			if l < 0 || l >= fl.Ladder.Len() {
				t.Fatalf("flow %d: level %d outside ladder", u, l)
			}
			if fl.PrevLevel >= 0 && l > fl.PrevLevel+1 {
				t.Fatalf("flow %d: jumped %d -> %d (one-level-up rule)", u, fl.PrevLevel, l)
			}
			if fl.MaxBps > 0 && l > 0 && fl.Ladder.Rate(l) > fl.MaxBps {
				t.Fatalf("flow %d: rate %v exceeds preference cap %v", u, fl.Ladder.Rate(l), fl.MaxBps)
			}
			spent += p.CostRBs(u, fl.Ladder.Rate(l))
		}
		if sol.Feasible {
			if spent > p.TotalRBs*(1+1e-9) {
				t.Fatalf("Eq. 4 violated: %v RBs spent of %v", spent, p.TotalRBs)
			}
			if sol.VideoShare > 1+1e-9 {
				t.Fatalf("video share %v > 1 on feasible solution", sol.VideoShare)
			}
		}

		// Exhaustive upper bound over the exact costs.
		brute, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Feasible && brute.Feasible && sol.Objective > brute.Objective+1e-9 {
			t.Fatalf("DP objective %v beats exhaustive optimum %v", sol.Objective, brute.Objective)
		}
	})
}
