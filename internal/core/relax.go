package core

import (
	"math"
)

// RelaxedSolver solves the continuous relaxation of Proposition 1: each
// R_u ranges over the interval [r_u(1), r_u(MaxLevel)] instead of the
// discrete ladder. The relaxation is convex (the objective is concave
// and the constraints linear), so it decomposes cleanly:
//
//   - For a fixed RB budget r*N, the inner problem is water-filling: the
//     KKT condition beta_u*theta_u/R_u^2 = lambda*a_u gives
//     R_u = sqrt(beta_u*theta_u/(lambda*a_u)) clamped to its bounds,
//     with lambda found by bisection on the capacity constraint.
//   - The outer problem over r is one-dimensional and concave, solved by
//     golden-section search.
//
// The continuous optimum is then rounded down to the ladder (footnote 1
// of the paper). This is the scalable path the paper evaluates in
// Figures 8-9.
type RelaxedSolver struct {
	// LambdaIters is the bisection depth for the inner multiplier.
	LambdaIters int
	// OuterIters is the golden-section depth for r.
	OuterIters int
}

// NewRelaxedSolver returns a solver with default tolerances.
func NewRelaxedSolver() *RelaxedSolver {
	return &RelaxedSolver{LambdaIters: 60, OuterIters: 50}
}

// flowBounds precomputes the per-flow constants of the relaxation.
type flowBounds struct {
	lo, hi      float64 // bitrate interval [r_u(1), r_u(MaxLevel)]
	aRBPerBps   float64 // RBs consumed per bit/s of assigned rate
	beta, theta float64
}

func relaxBounds(p *Problem) []flowBounds {
	fb := make([]flowBounds, len(p.Flows))
	for u := range p.Flows {
		f := &p.Flows[u]
		fb[u] = flowBounds{
			lo:        f.Ladder.Rate(0),
			hi:        f.Ladder.Rate(f.MaxLevel()),
			aRBPerBps: p.BAISeconds * f.RBsPerByte / 8,
			beta:      f.Beta,
			theta:     f.ThetaBps,
		}
	}
	return fb
}

// ratesAtLambda evaluates the KKT stationary point for a multiplier,
// asking the objective to invert its marginal (for Eq. 2 that is
// Proposition 1's closed form sqrt(beta*theta/(lambda*a))).
func ratesAtLambda(obj Objective, fb []flowBounds, lambda float64, out []float64) (usedRBs float64) {
	for u := range fb {
		b := &fb[u]
		var r float64
		if lambda <= 0 {
			r = b.hi
		} else {
			r = obj.RateForMarginal(b.beta, b.theta, lambda*b.aRBPerBps)
			if r < b.lo {
				r = b.lo
			} else if r > b.hi {
				r = b.hi
			}
		}
		out[u] = r
		usedRBs += b.aRBPerBps * r
	}
	return usedRBs
}

// waterfill maximises the video utility under an RB budget, returning
// the continuous rates and the achieved utility. ok is false when even
// the lower bounds exceed the budget.
func (s *RelaxedSolver) waterfill(p *Problem, fb []flowBounds, budgetRBs float64, out []float64) (util float64, ok bool) {
	obj := p.objective()
	var minRBs, maxRBs float64
	for u := range fb {
		minRBs += fb[u].aRBPerBps * fb[u].lo
		maxRBs += fb[u].aRBPerBps * fb[u].hi
	}
	if minRBs > budgetRBs {
		return 0, false
	}
	if maxRBs <= budgetRBs {
		ratesAtLambda(obj, fb, 0, out)
	} else {
		// Bisect lambda: used RBs is decreasing in lambda.
		lo, hi := 0.0, 1.0
		for ratesAtLambda(obj, fb, hi, out) > budgetRBs {
			hi *= 4
			if hi > 1e30 {
				break
			}
		}
		for i := 0; i < s.LambdaIters; i++ {
			mid := (lo + hi) / 2
			if ratesAtLambda(obj, fb, mid, out) > budgetRBs {
				lo = mid
			} else {
				hi = mid
			}
		}
		ratesAtLambda(obj, fb, hi, out)
	}
	for u := range p.Flows {
		util += obj.Utility(p.Flows[u].Beta, p.Flows[u].ThetaBps, out[u])
	}
	return util, true
}

// Solve runs the relaxation and rounds the result to the ladder.
func (s *RelaxedSolver) Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Flows)
	if n == 0 {
		return p.solutionFor(nil, true), nil
	}
	fb := relaxBounds(p)

	var minRBs, maxRBs float64
	for u := range fb {
		minRBs += fb[u].aRBPerBps * fb[u].lo
		maxRBs += fb[u].aRBPerBps * fb[u].hi
	}
	if minRBs > p.TotalRBs {
		return p.solutionFor(p.lowestLevels(), false), nil
	}

	rates := make([]float64, n)
	scratch := make([]float64, n)
	if p.NumDataFlows == 0 || p.Alpha == 0 {
		// No data term: give video everything it can use.
		budget := math.Min(p.TotalRBs, maxRBs)
		if _, ok := s.waterfill(p, fb, budget, rates); !ok {
			return p.solutionFor(p.lowestLevels(), false), nil
		}
	} else {
		rMin := minRBs / p.TotalRBs
		rMax := math.Min(maxRBs/p.TotalRBs, 1-1e-9)
		if rMax < rMin {
			// The floors alone consume (essentially) the whole cell:
			// the search interval collapses to the only feasible point.
			rMax = rMin
		}
		g := func(r float64) float64 {
			util, ok := s.waterfill(p, fb, r*p.TotalRBs, scratch)
			if !ok {
				return math.Inf(-1)
			}
			return util + p.DataTerm(r)
		}
		// Golden-section search on the concave g over [rMin, rMax].
		const phi = 0.6180339887498949
		a, b := rMin, rMax
		x1 := b - phi*(b-a)
		x2 := a + phi*(b-a)
		f1, f2 := g(x1), g(x2)
		for i := 0; i < s.OuterIters; i++ {
			if f1 < f2 {
				a = x1
				x1, f1 = x2, f2
				x2 = a + phi*(b-a)
				f2 = g(x2)
			} else {
				b = x2
				x2, f2 = x1, f1
				x1 = b - phi*(b-a)
				f1 = g(x1)
			}
		}
		rStar := (a + b) / 2
		if _, ok := s.waterfill(p, fb, rStar*p.TotalRBs, rates); !ok {
			return p.solutionFor(p.lowestLevels(), false), nil
		}
	}

	// Round each continuous rate down to the ladder (footnote 1),
	// respecting the per-flow level cap.
	levels := make([]int, n)
	for u := range p.Flows {
		f := &p.Flows[u]
		l := f.Ladder.HighestAtMost(rates[u] * (1 + 1e-12))
		if maxL := f.MaxLevel(); l > maxL {
			l = maxL
		}
		levels[u] = l
	}
	greedyRepair(p, levels)
	return p.solutionFor(levels, true), nil
}

// greedyRepair redistributes the RB budget the round-down released:
// while some single-level increment improves the objective and fits the
// cell, apply the best one. This keeps the relaxation's "round down"
// discretisation from stranding capacity (most costly at the bottom of
// the ladder, where utility changes steeply).
func greedyRepair(p *Problem, levels []int) {
	used := 0.0
	for u := range p.Flows {
		used += p.CostRBs(u, p.Flows[u].Ladder.Rate(levels[u]))
	}
	for {
		bestU, bestGain := -1, 1e-12
		bestCost := 0.0
		for u := range p.Flows {
			f := &p.Flows[u]
			if levels[u] >= f.MaxLevel() {
				continue
			}
			dCost := p.CostRBs(u, f.Ladder.Rate(levels[u]+1)) -
				p.CostRBs(u, f.Ladder.Rate(levels[u]))
			newShare := (used + dCost) / p.TotalRBs
			if newShare > 1 {
				continue
			}
			gain := p.UtilityAt(u, levels[u]+1) - p.UtilityAt(u, levels[u]) +
				p.DataTerm(newShare) - p.DataTerm(used/p.TotalRBs)
			if gain > bestGain {
				bestU, bestGain, bestCost = u, gain, dCost
			}
		}
		if bestU < 0 {
			return
		}
		levels[bestU]++
		used += bestCost
	}
}
