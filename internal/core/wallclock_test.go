package core

import (
	"testing"
	"time"
)

// TestSetWallClockDrivesSolveTimes pins the wall-clock seam: solver
// latency is measured through the injected clock, so a fake that steps
// 5ms per reading must yield exactly 5ms per BAI in SolveTimes.
func TestSetWallClockDrivesSolveTimes(t *testing.T) {
	c := controllerForTest(t, DefaultConfig(), 2)
	fake := time.Unix(1_000_000, 0)
	c.SetWallClock(func() time.Time {
		fake = fake.Add(5 * time.Millisecond)
		return fake
	})

	const baIs = 3
	for i := 0; i < baIs; i++ {
		if _, err := c.RunBAI(map[int]FlowStats{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	times := c.SolveTimes()
	if len(times) != baIs {
		t.Fatalf("%d solve times, want %d", len(times), baIs)
	}
	for i, d := range times {
		// Each RunBAI reads the clock twice (start, end): one 5ms step.
		if d != 5*time.Millisecond {
			t.Fatalf("solve %d took %v through the fake clock, want exactly 5ms", i, d)
		}
	}
}

// TestSetWallClockNilRestoresDefault: a nil injection must not leave
// the controller with a nil clock.
func TestSetWallClockNilRestoresDefault(t *testing.T) {
	c := controllerForTest(t, DefaultConfig(), 1)
	c.SetWallClock(nil)
	if _, err := c.RunBAI(map[int]FlowStats{}, 0); err != nil {
		t.Fatal(err)
	}
	times := c.SolveTimes()
	if len(times) != 1 || times[0] < 0 {
		t.Fatalf("solve times after nil restore: %v", times)
	}
}

// TestAssignmentsIdenticalUnderAnyClock proves the property the
// determinism waiver in NewController claims: the wall clock is
// observational, so wildly different clocks cannot change a single
// assignment.
func TestAssignmentsIdenticalUnderAnyClock(t *testing.T) {
	run := func(clock func() time.Time) [][]Assignment {
		c := controllerForTest(t, DefaultConfig(), 3)
		if clock != nil {
			c.SetWallClock(clock)
		}
		stats := map[int]FlowStats{
			0: {Bytes: 1_000_000, RBs: 40_000},
			1: {Bytes: 500_000, RBs: 40_000},
			2: {Bytes: 250_000, RBs: 40_000},
		}
		var out [][]Assignment
		for bai := 0; bai < 10; bai++ {
			as, err := c.RunBAI(stats, 1)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, as)
		}
		return out
	}

	fake := time.Unix(0, 0)
	jumpy := func() time.Time { fake = fake.Add(7 * time.Hour); return fake }

	real := run(nil)
	faked := run(jumpy)
	for i := range real {
		for j := range real[i] {
			if real[i][j] != faked[i][j] {
				t.Fatalf("BAI %d flow %d: assignment differs under fake clock: %+v vs %+v",
					i, j, real[i][j], faked[i][j])
			}
		}
	}
}
