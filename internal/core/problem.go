// Package core implements the paper's primary contribution: the FLARE
// bitrate-assignment optimisation (Eq. 2-4), its exact discrete solver
// (a multiple-choice-knapsack dynamic program), the continuous relaxation
// of Proposition 1 (KKT water-filling nested in a golden-section search),
// the Algorithm 1 stability gate, and the per-cell controller that runs
// once per bitrate assignment interval (BAI).
package core

import (
	"fmt"
	"math"

	"github.com/flare-sim/flare/internal/has"
)

// VideoFlow is the per-flow optimisation input: the flow's ladder, its
// utility parameters, the previous assignment level, and the radio cost
// observed at the eNodeB during the previous BAI.
type VideoFlow struct {
	// ID identifies the flow (bearer ID).
	ID int
	// Ladder is the flow's available bitrates r_u, ascending.
	Ladder has.Ladder
	// Beta is the importance of video to this client (Table IV: 10).
	Beta float64
	// ThetaBps is the screen-size parameter (Table IV: 0.2 Mbps).
	ThetaBps float64
	// PrevLevel is L_u^{i-1}, the previously assigned ladder index, or
	// -1 for a flow with no assignment yet.
	PrevLevel int
	// RBsPerByte is c_u = n_u^{i-1} / b_u^{i-1}: the resource blocks
	// spent per transmitted byte in the previous BAI.
	RBsPerByte float64
	// MaxBps is an optional client-side preference cap (0 = none) —
	// Section II-B's "the client can specify an upper bound on its
	// bitrate".
	MaxBps float64
}

// MaxLevel returns the highest level this flow may be assigned this BAI:
// the Eq. 4 stability constraint (at most one level above PrevLevel),
// clipped by the client preference cap. The stability constraint holds
// "for i > 1" only — a flow with no assignment history may be placed
// anywhere on its ladder in its first BAI.
func (v *VideoFlow) MaxLevel() int {
	maxL := v.PrevLevel + 1
	if v.PrevLevel < 0 || maxL >= v.Ladder.Len() {
		maxL = v.Ladder.Len() - 1
	}
	if v.MaxBps > 0 {
		if capL := v.Ladder.HighestAtMost(v.MaxBps); capL < maxL {
			maxL = capL
		}
	}
	return maxL
}

// Utility returns beta * (1 - theta/R) for the given ladder level.
func (v *VideoFlow) Utility(level int) float64 {
	r := v.Ladder.Rate(level)
	return v.Beta * (1 - v.ThetaBps/r)
}

// Problem is one BAI's optimisation instance (Eq. 2-4).
type Problem struct {
	// Flows are the video flows in the cell.
	Flows []VideoFlow
	// Objective is the per-flow utility model; nil means the paper's
	// Eq. 2 utility (DefaultObjective). Both solvers read utilities
	// only through UtilityAt/objective, so swapping the objective
	// never touches the DP or water-filling mechanics.
	Objective Objective
	// NumDataFlows is n, the number of data flows (from the PCRF).
	NumDataFlows int
	// Alpha is the data-vs-video priority knob.
	Alpha float64
	// TotalRBs is N, the resource blocks available over the BAI.
	TotalRBs float64
	// BAISeconds is B, the BAI length in seconds.
	BAISeconds float64
	// StickinessBonus is a small utility bonus for keeping a flow at
	// its previous level. In a saturated cell, flows with near-equal
	// utilities can swap levels on tiny radio-cost fluctuations with
	// almost no objective gain; the bonus suppresses that churn while
	// still permitting any genuinely profitable reassignment — the
	// optimisation-side half of the paper's "stateful approach to rate
	// selection". 0 disables it.
	StickinessBonus float64
}

// Validate checks the instance for structural errors.
func (p *Problem) Validate() error {
	if p.TotalRBs <= 0 {
		return fmt.Errorf("core: TotalRBs must be positive, got %v", p.TotalRBs)
	}
	if p.BAISeconds <= 0 {
		return fmt.Errorf("core: BAISeconds must be positive, got %v", p.BAISeconds)
	}
	if p.NumDataFlows < 0 {
		return fmt.Errorf("core: negative data-flow count %d", p.NumDataFlows)
	}
	if p.Alpha < 0 {
		return fmt.Errorf("core: negative alpha %v", p.Alpha)
	}
	for i := range p.Flows {
		f := &p.Flows[i]
		if err := f.Ladder.Validate(); err != nil {
			return fmt.Errorf("core: flow %d: %w", f.ID, err)
		}
		if f.Beta <= 0 {
			return fmt.Errorf("core: flow %d: beta must be positive, got %v", f.ID, f.Beta)
		}
		if f.ThetaBps <= 0 {
			return fmt.Errorf("core: flow %d: theta must be positive, got %v", f.ID, f.ThetaBps)
		}
		if f.RBsPerByte <= 0 {
			return fmt.Errorf("core: flow %d: RBsPerByte must be positive, got %v", f.ID, f.RBsPerByte)
		}
		if f.PrevLevel < -1 || f.PrevLevel >= f.Ladder.Len() {
			return fmt.Errorf("core: flow %d: PrevLevel %d out of range", f.ID, f.PrevLevel)
		}
	}
	return nil
}

// CostRBs returns the RBs flow u consumes over the BAI at rate bps:
// (B * R / 8 bytes) * c_u, the left side of Eq. 4.
func (p *Problem) CostRBs(u int, bps float64) float64 {
	return p.BAISeconds * bps / 8 * p.Flows[u].RBsPerByte
}

// DataTerm returns n * alpha * log(1 - r) for a video RB share r. With
// no data flows the term is 0; r >= 1 yields -Inf.
func (p *Problem) DataTerm(r float64) float64 {
	if p.NumDataFlows == 0 || p.Alpha == 0 {
		return 0
	}
	if r >= 1 {
		return math.Inf(-1)
	}
	if r < 0 {
		r = 0
	}
	return float64(p.NumDataFlows) * p.Alpha * math.Log(1-r)
}

// objective returns the utility model in effect (Eq. 2 by default).
func (p *Problem) objective() Objective {
	if p.Objective != nil {
		return p.Objective
	}
	return DefaultObjective
}

// UtilityAt returns flow u's utility at the given level, including the
// keep-previous-level stickiness bonus.
func (p *Problem) UtilityAt(u, level int) float64 {
	f := &p.Flows[u]
	//flare:allow hotpath frontier: Objective impls (Eq. 2/3 and utility-PF) are pure float arithmetic; the MCKP allocs/op benchmark gate covers the whole solve
	util := p.objective().Utility(f.Beta, f.ThetaBps, f.Ladder.Rate(level))
	if p.StickinessBonus > 0 && level == f.PrevLevel {
		util += p.StickinessBonus
	}
	return util
}

// ObjectiveAt evaluates Eq. 2 for a full level assignment, taking r as
// exactly the RB share the levels consume (using more helps nothing).
// It returns the objective and the RB share; infeasible assignments
// (share > 1) return -Inf.
func (p *Problem) ObjectiveAt(levels []int) (obj, share float64) {
	var used, util float64
	for u := range p.Flows {
		f := &p.Flows[u]
		used += p.CostRBs(u, f.Ladder.Rate(levels[u]))
		util += p.UtilityAt(u, levels[u])
	}
	share = used / p.TotalRBs
	if share > 1 {
		return math.Inf(-1), share
	}
	return util + p.DataTerm(share), share
}

// Solution is the optimiser output for one BAI.
type Solution struct {
	// Levels is the assigned ladder index per flow (parallel to Flows).
	Levels []int
	// RatesBps is the assigned bitrate per flow.
	RatesBps []float64
	// VideoShare is r*, the RB fraction the video levels consume.
	VideoShare float64
	// Objective is the Eq. 2 value achieved.
	Objective float64
	// Feasible is false when even the all-lowest assignment exceeds the
	// capacity constraint; Levels then hold the all-lowest fallback.
	Feasible bool
}

// solutionFor packages a level assignment into a Solution.
func (p *Problem) solutionFor(levels []int, feasible bool) Solution {
	rates := make([]float64, len(levels))
	for u := range p.Flows {
		rates[u] = p.Flows[u].Ladder.Rate(levels[u])
	}
	obj, share := p.ObjectiveAt(levels)
	return Solution{
		Levels:     levels,
		RatesBps:   rates,
		VideoShare: share,
		Objective:  obj,
		Feasible:   feasible,
	}
}

// lowestLevels returns the all-minimum assignment.
func (p *Problem) lowestLevels() []int {
	return make([]int, len(p.Flows))
}
