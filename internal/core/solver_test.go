package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/sim"
)

func TestExactSolverMatchesBruteForceSmall(t *testing.T) {
	rng := sim.NewRNG(42)
	exact := NewExactSolver()
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(4)
		p := testProblem(n, -1, rng.Intn(3), 0.5+rng.Float64()*3, 5+rng.Float64()*30)
		for u := range p.Flows {
			p.Flows[u].PrevLevel = rng.Intn(p.Flows[u].Ladder.Len()+1) - 1
			p.Flows[u].RBsPerByte = 1 / (3 + rng.Float64()*40)
		}
		// Shrink capacity sometimes so the constraint binds.
		if rng.Intn(2) == 0 {
			p.TotalRBs *= 0.05 + rng.Float64()*0.3
		}
		bf, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := exact.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if bf.Feasible != dp.Feasible {
			t.Fatalf("trial %d: feasibility mismatch bf=%v dp=%v", trial, bf.Feasible, dp.Feasible)
		}
		if !bf.Feasible {
			continue
		}
		// The DP rounds costs up into bins, so it may be marginally
		// conservative; allow a tiny utility gap.
		if dp.Objective < bf.Objective-0.05 {
			t.Fatalf("trial %d: DP objective %v well below brute force %v\nDP levels %v, BF levels %v",
				trial, dp.Objective, bf.Objective, dp.Levels, bf.Levels)
		}
		if dp.Objective > bf.Objective+1e-9 {
			t.Fatalf("trial %d: DP objective %v exceeds brute-force optimum %v", trial, dp.Objective, bf.Objective)
		}
	}
}

func TestExactSolverRespectsCapacity(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 1 + rng.Intn(8)
		p := testProblem(n, -1, rng.Intn(4), rng.Float64()*4, 4+rng.Float64()*20)
		for u := range p.Flows {
			p.Flows[u].PrevLevel = rng.Intn(p.Flows[u].Ladder.Len()+1) - 1
		}
		p.TotalRBs *= 0.02 + rng.Float64()
		sol, err := NewExactSolver().Solve(p)
		if err != nil {
			return false
		}
		if !sol.Feasible {
			return true
		}
		return sol.VideoShare <= 1+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExactSolverRespectsStabilityBound(t *testing.T) {
	p := testProblem(3, 1, 0, 1, 30) // ample capacity, prev level 1
	sol, err := NewExactSolver().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for u, l := range sol.Levels {
		if l > 2 {
			t.Fatalf("flow %d assigned level %d, stability bound is 2", u, l)
		}
	}
}

func TestExactSolverNewFlowsUnconstrained(t *testing.T) {
	// The Eq. 4 stability bound applies only for i > 1: flows with no
	// history can be placed high immediately when capacity allows.
	p := testProblem(3, -1, 0, 1, 30)
	sol, err := NewExactSolver().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for u, l := range sol.Levels {
		if l == 0 {
			t.Fatalf("new flow %d stuck at the lowest level despite ample capacity", u)
		}
	}
}

func TestExactSolverClientCap(t *testing.T) {
	p := testProblem(2, 4, 0, 1, 30)
	p.Flows[0].MaxBps = 500_000
	sol, err := NewExactSolver().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Levels[0] > 2 {
		t.Fatalf("capped flow got level %d (rate %v)", sol.Levels[0], sol.RatesBps[0])
	}
	if sol.Levels[1] <= 2 {
		t.Fatalf("uncapped flow stuck at level %d despite ample capacity", sol.Levels[1])
	}
}

func TestExactSolverInfeasibleFallsBack(t *testing.T) {
	p := testProblem(4, 3, 0, 1, 10)
	p.TotalRBs = 100 // hopeless
	sol, err := NewExactSolver().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Fatal("impossible instance reported feasible")
	}
	for u, l := range sol.Levels {
		if l != 0 {
			t.Fatalf("fallback level for flow %d = %d, want 0", u, l)
		}
	}
}

func TestExactSolverEmptyProblem(t *testing.T) {
	p := testProblem(0, -1, 2, 1, 10)
	sol, err := NewExactSolver().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || len(sol.Levels) != 0 {
		t.Fatalf("empty problem: %+v", sol)
	}
}

func TestExactSolverCapacityBindsMonotonically(t *testing.T) {
	// Halving capacity must not raise the achieved objective.
	base := testProblem(4, 4, 2, 1, 15)
	sol1, err := NewExactSolver().Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	small := testProblem(4, 4, 2, 1, 15)
	small.TotalRBs /= 4
	sol2, err := NewExactSolver().Solve(small)
	if err != nil {
		t.Fatal(err)
	}
	// Objectives use different capacity normalisations, so compare the
	// video utility proxy: total assigned rate.
	sum := func(s Solution) (x float64) {
		for _, r := range s.RatesBps {
			x += r
		}
		return x
	}
	if sum(sol2) > sum(sol1)+1e-9 {
		t.Fatalf("smaller cell assigned more video rate: %v > %v", sum(sol2), sum(sol1))
	}
}

func TestDataTermTradeoff(t *testing.T) {
	// With many data flows and high alpha, video should be assigned
	// less than with none.
	noData := testProblem(3, 4, 0, 1, 12)
	withData := testProblem(3, 4, 8, 4, 12)
	s1, err := NewExactSolver().Solve(noData)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewExactSolver().Solve(withData)
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 float64
	for i := range s1.RatesBps {
		r1 += s1.RatesBps[i]
		r2 += s2.RatesBps[i]
	}
	if r2 > r1 {
		t.Fatalf("video rates rose when data flows were added: %v > %v", r2, r1)
	}
	if s2.VideoShare >= s1.VideoShare && s1.VideoShare < 1 {
		t.Fatalf("video share did not shrink: %v vs %v", s2.VideoShare, s1.VideoShare)
	}
}

// --- Relaxation ---

func TestRelaxedSolverCloseToExact(t *testing.T) {
	rng := sim.NewRNG(7)
	exact := NewExactSolver()
	relaxed := NewRelaxedSolver()
	losses := 0
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		p := testProblem(n, -1, rng.Intn(3), 0.5+rng.Float64()*2, 5+rng.Float64()*25)
		for u := range p.Flows {
			p.Flows[u].PrevLevel = rng.Intn(p.Flows[u].Ladder.Len()+1) - 1
			p.Flows[u].Ladder = has.FineLadder()
		}
		if rng.Intn(2) == 0 {
			p.TotalRBs *= 0.1 + rng.Float64()*0.5
		}
		se, err := exact.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := relaxed.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if se.Feasible != sr.Feasible {
			t.Fatalf("trial %d: feasibility mismatch", trial)
		}
		if !se.Feasible {
			continue
		}
		if sr.VideoShare > 1+1e-9 {
			t.Fatalf("trial %d: relaxed solution infeasible (share %v)", trial, sr.VideoShare)
		}
		// Paper: the relaxation loses <= ~15% average bitrate. Check
		// the objective gap is modest on the fine ladder.
		if sr.Objective < se.Objective-0.20*math.Abs(se.Objective)-0.5 {
			losses++
		}
	}
	if losses > 4 {
		t.Fatalf("relaxation badly suboptimal in %d/40 trials", losses)
	}
}

func TestRelaxedSolverRespectsBounds(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 1 + rng.Intn(8)
		p := testProblem(n, -1, rng.Intn(3), rng.Float64()*3, 5+rng.Float64()*25)
		for u := range p.Flows {
			p.Flows[u].PrevLevel = rng.Intn(p.Flows[u].Ladder.Len()+1) - 1
		}
		p.TotalRBs *= 0.05 + rng.Float64()
		sol, err := NewRelaxedSolver().Solve(p)
		if err != nil {
			return false
		}
		if !sol.Feasible {
			return true
		}
		if sol.VideoShare > 1+1e-9 {
			return false
		}
		for u, l := range sol.Levels {
			if l < 0 || l > p.Flows[u].MaxLevel() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaterfillKKT(t *testing.T) {
	// With a binding budget, unclamped flows must share a common
	// marginal utility per RB (the KKT condition).
	p := testProblem(3, 5, 0, 1, 10)
	p.Flows[1].Beta = 20 // more important flow
	fb := relaxBounds(p)
	out := make([]float64, 3)
	budget := p.TotalRBs * 0.3
	s := NewRelaxedSolver()
	if _, ok := s.waterfill(p, fb, budget, out); !ok {
		t.Fatal("waterfill infeasible")
	}
	var used float64
	for u := range fb {
		used += fb[u].aRBPerBps * out[u]
	}
	if math.Abs(used-budget)/budget > 0.01 {
		t.Fatalf("budget not met: used %v of %v", used, budget)
	}
	marginal := func(u int) float64 {
		return p.Flows[u].Beta * p.Flows[u].ThetaBps / (out[u] * out[u]) / fb[u].aRBPerBps
	}
	// Flows 0 and 1 share identical bounds; if both are interior their
	// marginals must match.
	interior := func(u int) bool {
		return out[u] > fb[u].lo*1.001 && out[u] < fb[u].hi*0.999
	}
	if interior(0) && interior(1) {
		m0, m1 := marginal(0), marginal(1)
		if math.Abs(m0-m1)/m0 > 0.02 {
			t.Fatalf("KKT violated: marginals %v vs %v", m0, m1)
		}
	}
	// Higher beta buys a higher rate.
	if out[1] <= out[0] {
		t.Fatalf("beta=20 flow got %v <= beta=10 flow %v", out[1], out[0])
	}
}

func TestRelaxedSolverNoDataUsesFullBand(t *testing.T) {
	// Without data flows and with a binding capacity, the relaxation
	// should consume (nearly) the whole band.
	p := testProblem(6, 5, 0, 1, 8)
	sol, err := NewRelaxedSolver().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("feasible instance reported infeasible")
	}
	// Rounding down can release some share, but before rounding the
	// budget must have been the binding constraint; the discrete share
	// should still be substantial.
	if sol.VideoShare < 0.5 {
		t.Fatalf("video share only %v with no data flows", sol.VideoShare)
	}
}

func TestSolversAgreeOnAlphaMonotonicity(t *testing.T) {
	// Raising alpha must not raise total video rate (Fig. 11's trend),
	// under both solvers.
	for _, relaxed := range []bool{false, true} {
		prev := math.Inf(1)
		for _, alpha := range []float64{0.25, 0.5, 1, 2, 4} {
			p := testProblem(4, 5, 4, alpha, 12)
			var (
				sol Solution
				err error
			)
			if relaxed {
				sol, err = NewRelaxedSolver().Solve(p)
			} else {
				sol, err = NewExactSolver().Solve(p)
			}
			if err != nil {
				t.Fatal(err)
			}
			var total float64
			for _, r := range sol.RatesBps {
				total += r
			}
			if total > prev+1e-9 {
				t.Fatalf("relaxed=%v: video rate rose with alpha %v: %v > %v", relaxed, alpha, total, prev)
			}
			prev = total
		}
	}
}
