package core

import (
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/has"
)

func TestGateInitialAssignment(t *testing.T) {
	g := NewGate(4)
	if got := g.Apply(1, -1, 0); got != 0 {
		t.Fatalf("initial assignment = %d, want 0", got)
	}
}

func TestGateDelaysUpSwitch(t *testing.T) {
	g := NewGate(4)
	// From level 0 (1-indexed 1), stepping to 1 requires 4*(1+1)=8
	// consecutive recommendations.
	for i := 1; i <= 7; i++ {
		if got := g.Apply(1, 0, 1); got != 0 {
			t.Fatalf("up-switch granted after %d recs", i)
		}
	}
	if got := g.Apply(1, 0, 1); got != 1 {
		t.Fatal("up-switch denied after 8 recs")
	}
}

func TestGateStreakResetsOnOtherRecommendation(t *testing.T) {
	g := NewGate(2)
	g.Apply(1, 0, 1)
	g.Apply(1, 0, 1)
	g.Apply(1, 0, 0) // streak broken
	for i := 1; i <= 3; i++ {
		if got := g.Apply(1, 0, 1); got == 1 && i < 4 {
			// required = 2*(0+2) = 4
			t.Fatalf("up-switch after broken streak at %d", i)
		}
	}
}

func TestGateDropsImmediately(t *testing.T) {
	g := NewGate(4)
	if got := g.Apply(1, 4, 1); got != 1 {
		t.Fatalf("drop to 1 returned %d", got)
	}
	if got := g.Apply(1, 3, 0); got != 0 {
		t.Fatalf("drop to 0 returned %d", got)
	}
}

func TestGateNeverExceedsPrevPlusOne(t *testing.T) {
	g := NewGate(1)
	for prev := 0; prev < 5; prev++ {
		for rec := 0; rec <= prev+1; rec++ {
			got := g.Apply(7, prev, rec)
			if got > prev+1 {
				t.Fatalf("gate returned %d from prev %d", got, prev)
			}
		}
	}
}

func TestGateHigherLevelsClimbSlower(t *testing.T) {
	g := NewGate(2)
	climb := func(prev int) int {
		n := 0
		for {
			n++
			if g.Apply(9, prev, prev+1) == prev+1 {
				return n
			}
		}
	}
	low := climb(0)  // 2*(0+2) = 4
	high := climb(3) // 2*(3+2) = 10
	if low != 4 || high != 10 {
		t.Fatalf("climb counts = %d, %d; want 4, 10", low, high)
	}
}

func TestGateDeltaZeroDisables(t *testing.T) {
	g := NewGate(0)
	if got := g.Apply(1, 2, 3); got != 3 {
		t.Fatalf("delta=0 gate delayed the up-switch: %d", got)
	}
}

func TestGateForget(t *testing.T) {
	g := NewGate(1)
	g.Apply(1, 0, 1) // streak 1 of 2
	g.Forget(1)
	if got := g.Apply(1, 0, 1); got != 0 {
		t.Fatal("forgotten streak persisted")
	}
	if g.Delta() != 1 {
		t.Fatal("Delta accessor wrong")
	}
}

// --- Controller ---

func controllerForTest(t *testing.T, cfg Config, n int) *Controller {
	t.Helper()
	c := NewController(cfg)
	for id := 0; id < n; id++ {
		if err := c.Register(id, has.SimLadder(), Preferences{}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestControllerRegisterValidation(t *testing.T) {
	c := NewController(DefaultConfig())
	if err := c.Register(1, has.Ladder{}, Preferences{}); err == nil {
		t.Error("empty ladder accepted")
	}
	if err := c.Register(1, has.SimLadder(), Preferences{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(1, has.SimLadder(), Preferences{}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if c.NumFlows() != 1 {
		t.Fatalf("NumFlows = %d", c.NumFlows())
	}
	c.Unregister(1)
	if c.NumFlows() != 0 {
		t.Fatal("Unregister failed")
	}
}

func TestControllerDefaultsApplied(t *testing.T) {
	c := NewController(Config{})
	def := DefaultConfig()
	got := c.Config()
	if got.Beta != def.Beta || got.ThetaBps != def.ThetaBps || got.BAI != def.BAI {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if c.BAI() != def.BAI {
		t.Fatal("BAI accessor wrong")
	}
}

func TestControllerFirstBAIAssignsImmediately(t *testing.T) {
	c := controllerForTest(t, DefaultConfig(), 3)
	got, err := c.RunBAI(map[int]FlowStats{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d assignments, want 3", len(got))
	}
	// First BAI (i = 1) carries no stability constraint: with the
	// default cost prior and an empty cell, flows land above the floor
	// right away.
	for _, a := range got {
		if a.Level < 0 || a.RateBps < 100_000 {
			t.Fatalf("first assignment %+v", a)
		}
	}
	// Second BAI may rise at most one level above the first.
	first := got[0].Level
	got, err = c.RunBAI(map[int]FlowStats{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Level > first+1 {
		t.Fatalf("second BAI jumped from %d to %d", first, got[0].Level)
	}
}

func TestControllerClimbsUnderGate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Delta = 1
	c := controllerForTest(t, cfg, 1)
	stats := map[int]FlowStats{0: {Bytes: 1_000_000, RBs: 40_000}} // 25 B/RB
	levels := []int{}
	for bai := 0; bai < 30; bai++ {
		as, err := c.RunBAI(stats, 0)
		if err != nil {
			t.Fatal(err)
		}
		levels = append(levels, as[0].Level)
	}
	// Ample capacity and delta=1: the flow must climb, one level at a
	// time, reaching the ladder top.
	top := has.SimLadder().Len() - 1
	if levels[len(levels)-1] != top {
		t.Fatalf("never reached top: %v", levels)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i]-levels[i-1] > 1 {
			t.Fatalf("jumped more than one level: %v", levels)
		}
		if levels[i] < levels[i-1] {
			t.Fatalf("dropped without congestion: %v", levels)
		}
	}
}

func TestControllerDeltaSlowsClimb(t *testing.T) {
	climbTime := func(delta int) int {
		cfg := DefaultConfig()
		cfg.Delta = delta
		c := NewController(cfg)
		if err := c.Register(0, has.SimLadder(), Preferences{}); err != nil {
			panic(err)
		}
		// Pin the first (unconstrained) assignment low with a terrible
		// radio report, then let the channel recover and measure the
		// gated climb back to the top.
		if _, err := c.RunBAI(map[int]FlowStats{0: {Bytes: 10_000, RBs: 100_000}}, 0); err != nil {
			panic(err)
		}
		stats := map[int]FlowStats{0: {Bytes: 1_000_000, RBs: 40_000}}
		for bai := 1; bai <= 500; bai++ {
			as, err := c.RunBAI(stats, 0)
			if err != nil {
				panic(err)
			}
			if as[0].Level == has.SimLadder().Len()-1 {
				return bai
			}
		}
		return 501
	}
	fast := climbTime(1)
	slow := climbTime(6)
	if fast >= slow {
		t.Fatalf("delta=1 climbed in %d BAIs, delta=6 in %d; want faster", fast, slow)
	}
}

func TestControllerDropsOnCongestion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Delta = 1
	c := controllerForTest(t, cfg, 1)
	good := map[int]FlowStats{0: {Bytes: 1_000_000, RBs: 40_000}}
	var level int
	for bai := 0; bai < 30; bai++ {
		as, err := c.RunBAI(good, 0)
		if err != nil {
			t.Fatal(err)
		}
		level = as[0].Level
	}
	if level < 3 {
		t.Fatalf("flow never climbed: level %d", level)
	}
	// Radio collapses: cost per byte becomes enormous.
	bad := map[int]FlowStats{0: {Bytes: 10_000, RBs: 100_000}}
	as, err := c.RunBAI(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Level >= level {
		t.Fatalf("no drop on congestion: %d -> %d", level, as[0].Level)
	}
}

func TestControllerHintUsedWhenIdle(t *testing.T) {
	c := controllerForTest(t, DefaultConfig(), 1)
	// Idle flow with a very poor channel hint: assignments must stay low
	// even after many BAIs.
	stats := map[int]FlowStats{0: {BytesPerRBHint: 0.5}} // terrible radio
	var level int
	for bai := 0; bai < 40; bai++ {
		as, err := c.RunBAI(stats, 0)
		if err != nil {
			t.Fatal(err)
		}
		level = as[0].Level
	}
	if level > 1 {
		t.Fatalf("idle flow with bad hint climbed to %d", level)
	}
}

func TestControllerPreferencesCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Delta = 0
	c := NewController(cfg)
	if err := c.Register(0, has.SimLadder(), Preferences{MaxBps: 500_000}); err != nil {
		t.Fatal(err)
	}
	stats := map[int]FlowStats{0: {Bytes: 5_000_000, RBs: 50_000}}
	var level int
	for bai := 0; bai < 20; bai++ {
		as, err := c.RunBAI(stats, 0)
		if err != nil {
			t.Fatal(err)
		}
		level = as[0].Level
	}
	if level > 2 {
		t.Fatalf("client cap violated: level %d", level)
	}
	// Lifting the cap lets it climb.
	if err := c.SetPreferences(0, Preferences{MaxBps: 0}); err != nil {
		t.Fatal(err)
	}
	for bai := 0; bai < 20; bai++ {
		as, err := c.RunBAI(stats, 0)
		if err != nil {
			t.Fatal(err)
		}
		level = as[0].Level
	}
	if level <= 2 {
		t.Fatalf("flow stuck at %d after cap removal", level)
	}
	if err := c.SetPreferences(99, Preferences{}); err == nil {
		t.Error("SetPreferences on unknown flow succeeded")
	}
}

func TestControllerNegativeDataFlows(t *testing.T) {
	c := controllerForTest(t, DefaultConfig(), 1)
	if _, err := c.RunBAI(nil, -1); err == nil {
		t.Fatal("negative data-flow count accepted")
	}
}

func TestControllerEmptyIsNoop(t *testing.T) {
	c := NewController(DefaultConfig())
	as, err := c.RunBAI(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if as != nil {
		t.Fatalf("assignments for empty cell: %v", as)
	}
}

func TestControllerSolveTimesRecorded(t *testing.T) {
	c := controllerForTest(t, DefaultConfig(), 4)
	for i := 0; i < 5; i++ {
		if _, err := c.RunBAI(nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	times := c.SolveTimes()
	if len(times) != 5 {
		t.Fatalf("%d solve times, want 5", len(times))
	}
	for _, d := range times {
		if d < 0 || d > time.Second {
			t.Fatalf("implausible solve time %v", d)
		}
	}
}

func TestControllerRelaxationMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseRelaxation = true
	cfg.Delta = 1
	c := NewController(cfg)
	if err := c.Register(0, has.FineLadder(), Preferences{}); err != nil {
		t.Fatal(err)
	}
	stats := map[int]FlowStats{0: {Bytes: 2_000_000, RBs: 50_000}}
	var level int
	for bai := 0; bai < 60; bai++ {
		as, err := c.RunBAI(stats, 0)
		if err != nil {
			t.Fatal(err)
		}
		level = as[0].Level
	}
	if level < 5 {
		t.Fatalf("relaxation mode never climbed: level %d", level)
	}
}

func TestControllerAssignmentsSorted(t *testing.T) {
	c := NewController(DefaultConfig())
	for _, id := range []int{5, 1, 9, 3} {
		if err := c.Register(id, has.SimLadder(), Preferences{}); err != nil {
			t.Fatal(err)
		}
	}
	as, err := c.RunBAI(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5, 9}
	for i, a := range as {
		if a.FlowID != want[i] {
			t.Fatalf("assignment order %v", as)
		}
	}
}

func TestControllerSkimmingPinsMinimum(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Delta = 0
	c := NewController(cfg)
	if err := c.Register(0, has.SimLadder(), Preferences{Skimming: true}); err != nil {
		t.Fatal(err)
	}
	rich := map[int]FlowStats{0: {Bytes: 5_000_000, RBs: 50_000}}
	for bai := 0; bai < 10; bai++ {
		as, err := c.RunBAI(rich, 0)
		if err != nil {
			t.Fatal(err)
		}
		if as[0].Level != 0 {
			t.Fatalf("skimming flow assigned level %d", as[0].Level)
		}
	}
	// Viewer settles down: normal assignment resumes.
	if err := c.SetPreferences(0, Preferences{}); err != nil {
		t.Fatal(err)
	}
	var level int
	for bai := 0; bai < 10; bai++ {
		as, err := c.RunBAI(rich, 0)
		if err != nil {
			t.Fatal(err)
		}
		level = as[0].Level
	}
	if level == 0 {
		t.Fatal("flow stuck at minimum after skimming cleared")
	}
}

func TestControllerSnapshot(t *testing.T) {
	c := NewController(DefaultConfig())
	prefs := Preferences{MaxBps: 1e6, Beta: 20, ThetaBps: 0.4e6, Skimming: true}
	if err := c.Register(3, has.SimLadder(), prefs); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(3)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ladder.Len() != 6 {
		t.Fatalf("snapshot ladder %v", snap.Ladder)
	}
	if snap.Preferences != prefs {
		t.Fatalf("snapshot prefs %+v, want %+v", snap.Preferences, prefs)
	}
	// Snapshot must not alias the live ladder.
	snap.Ladder[0] = 1
	snap2, err := c.Snapshot(3)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Ladder[0] == 1 {
		t.Fatal("snapshot aliased controller state")
	}
	if _, err := c.Snapshot(99); err == nil {
		t.Fatal("snapshot of unknown flow accepted")
	}
}
