// Package faults is a deterministic, seedable control-plane fault
// injector for the OneAPI coordination overlay.
//
// FLARE's premise is client/network coordination over a control plane
// that, in deployment, rides a real network: statistics reports can be
// lost, plugin polls can time out, the OneAPI server can restart, and a
// PCEF can refuse a GBR install. The injector models those failures two
// ways with one configuration:
//
//   - in-process: the simulator (internal/cellsim) asks Decide before
//     each control-plane exchange and drops/fails the exchange;
//   - on the wire: RoundTripper wraps the JSON/HTTP binding's transport
//     and Middleware wraps the server handler (see http.go).
//
// Determinism is preserved by construction: every Injector owns its own
// splitmix64 stream, so a zero-rate configuration draws nothing and a
// configured one never perturbs the simulation's primary RNG.
package faults

import (
	"fmt"
	"sync"
	"time"

	"github.com/flare-sim/flare/internal/sim"
)

// Outcome classifies what the injector did to one exchange.
type Outcome int

// Outcomes, in decision order.
const (
	// Pass lets the exchange through untouched.
	Pass Outcome = iota
	// Drop loses the exchange entirely (network loss / server down);
	// the caller sees a transport error, never a response.
	Drop
	// Fail delivers the exchange but the far side errors (HTTP 503).
	Fail
	// Delay holds the exchange for Decision.Delay before delivery.
	Delay
	// Duplicate delivers the exchange twice (a retransmitted request
	// reaching the server after the original) — an idempotency probe.
	Duplicate
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Fail:
		return "fail"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Window is a half-open interval of simulated (or wall) time during
// which the control plane is entirely unreachable — e.g. "server
// blackout from t=60s to t=90s".
type Window struct {
	// From is the inclusive start of the blackout.
	From time.Duration
	// To is the exclusive end of the blackout.
	To time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool {
	return t >= w.From && t < w.To
}

// Config describes a fault schedule. The zero value injects nothing.
type Config struct {
	// Seed drives the injector's private RNG stream. Two injectors
	// with the same seed and config make identical decisions.
	Seed uint64
	// DropRate is the probability an exchange is silently lost.
	DropRate float64
	// FailRate is the probability the far side returns an error.
	FailRate float64
	// DelayRate is the probability an exchange is held for DelayBy.
	DelayRate float64
	// DelayBy is how long delayed exchanges are held.
	DelayBy time.Duration
	// DuplicateRate is the probability an exchange is delivered twice.
	DuplicateRate float64
	// Blackouts are scheduled total outages; inside a window every
	// exchange drops regardless of the rates.
	Blackouts []Window
}

// Enabled reports whether the configuration can ever inject a fault.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.FailRate > 0 || c.DelayRate > 0 ||
		c.DuplicateRate > 0 || len(c.Blackouts) > 0
}

// Validate checks rates and windows.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"drop", c.DropRate}, {"fail", c.FailRate},
		{"delay", c.DelayRate}, {"duplicate", c.DuplicateRate},
	}
	sum := 0.0
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %v out of [0, 1]", r.name, r.v)
		}
		sum += r.v
	}
	if sum > 1 {
		return fmt.Errorf("faults: rates sum to %v > 1", sum)
	}
	if c.DelayRate > 0 && c.DelayBy <= 0 {
		return fmt.Errorf("faults: delay rate %v needs a positive DelayBy", c.DelayRate)
	}
	for _, w := range c.Blackouts {
		if w.To <= w.From {
			return fmt.Errorf("faults: blackout window [%v, %v) is empty", w.From, w.To)
		}
	}
	return nil
}

// Decision is one exchange's fate.
type Decision struct {
	// Outcome is what happens to the exchange.
	Outcome Outcome
	// Delay is how long to hold it (Outcome == Delay only).
	Delay time.Duration
}

// Lost reports whether the exchange never completes usefully
// (dropped or failed) — the caller-facing "did coordination happen".
func (d Decision) Lost() bool { return d.Outcome == Drop || d.Outcome == Fail }

// Counts aggregates injector activity for reports and tests.
type Counts struct {
	Total, Passed, Dropped, Failed, Delayed, Duplicated int64
	// BlackoutDrops is the subset of Dropped caused by a schedule
	// window rather than the random rate.
	BlackoutDrops int64
}

// Observer is notified of every injected (non-Pass) decision, outside
// the injector's lock. The telemetry layer uses it to turn injected
// faults into trace events without the injector importing obs.
type Observer func(now time.Duration, d Decision)

// Injector makes deterministic per-exchange fault decisions. It is safe
// for concurrent use (the HTTP transport shares one across goroutines);
// under concurrency the decision *sequence* stays deterministic while
// the assignment of decisions to callers follows arrival order.
type Injector struct {
	mu       sync.Mutex
	cfg      Config
	rng      *sim.RNG
	counts   Counts
	observer Observer
}

// New builds an injector; a nil return never occurs, and a zero Config
// yields an injector that always passes without drawing randomness.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg
}

// Enabled reports whether the injector can ever inject a fault.
func (in *Injector) Enabled() bool { return in.Config().Enabled() }

// SetObserver installs a decision observer (nil removes it). It fires
// synchronously in Decide, after the counters are updated and the lock
// is released, for every decision whose outcome is not Pass.
func (in *Injector) SetObserver(fn Observer) {
	in.mu.Lock()
	in.observer = fn
	in.mu.Unlock()
}

// Decide seals the fate of one exchange occurring at time now. A
// disabled injector returns Pass without consuming randomness.
func (in *Injector) Decide(now time.Duration) Decision {
	d := in.decideLocked(now)
	if d.Outcome != Pass {
		in.mu.Lock()
		fn := in.observer
		in.mu.Unlock()
		if fn != nil {
			fn(now, d)
		}
	}
	return d
}

func (in *Injector) decideLocked(now time.Duration) Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts.Total++
	if !in.cfg.Enabled() {
		in.counts.Passed++
		return Decision{Outcome: Pass}
	}
	for _, w := range in.cfg.Blackouts {
		if w.Contains(now) {
			in.counts.Dropped++
			in.counts.BlackoutDrops++
			return Decision{Outcome: Drop}
		}
	}
	// A single draw partitions [0, 1) across the outcomes so one
	// exchange suffers at most one fault.
	u := in.rng.Float64()
	switch {
	case u < in.cfg.DropRate:
		in.counts.Dropped++
		return Decision{Outcome: Drop}
	case u < in.cfg.DropRate+in.cfg.FailRate:
		in.counts.Failed++
		return Decision{Outcome: Fail}
	case u < in.cfg.DropRate+in.cfg.FailRate+in.cfg.DelayRate:
		in.counts.Delayed++
		return Decision{Outcome: Delay, Delay: in.cfg.DelayBy}
	case u < in.cfg.DropRate+in.cfg.FailRate+in.cfg.DelayRate+in.cfg.DuplicateRate:
		in.counts.Duplicated++
		return Decision{Outcome: Duplicate}
	default:
		in.counts.Passed++
		return Decision{Outcome: Pass}
	}
}

// Counts returns a snapshot of the injector's activity.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}
