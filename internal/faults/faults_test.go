package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestZeroConfigAlwaysPasses(t *testing.T) {
	in := New(Config{Seed: 7})
	if in.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	for i := 0; i < 1000; i++ {
		if d := in.Decide(time.Duration(i) * time.Second); d.Outcome != Pass {
			t.Fatalf("zero config injected %v at i=%d", d.Outcome, i)
		}
	}
	c := in.Counts()
	if c.Total != 1000 || c.Passed != 1000 {
		t.Fatalf("counts %+v", c)
	}
}

func TestDecisionsAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.2, FailRate: 0.1, DelayRate: 0.05,
		DelayBy: time.Millisecond, DuplicateRate: 0.05}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 5000; i++ {
		da, db := a.Decide(0), b.Decide(0)
		if da != db {
			t.Fatalf("streams diverged at %d: %v vs %v", i, da, db)
		}
	}
	// A different seed gives a different stream.
	cfg.Seed = 43
	c := New(cfg)
	same := 0
	for i := 0; i < 5000; i++ {
		if New(Config{}).Decide(0); a.Decide(0) == c.Decide(0) {
			same++
		}
	}
	if same == 5000 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRatesRoughlyHold(t *testing.T) {
	cfg := Config{Seed: 1, DropRate: 0.3, FailRate: 0.2}
	in := New(cfg)
	const n = 20000
	for i := 0; i < n; i++ {
		in.Decide(0)
	}
	c := in.Counts()
	if frac := float64(c.Dropped) / n; frac < 0.27 || frac > 0.33 {
		t.Fatalf("drop fraction %v for rate 0.3", frac)
	}
	if frac := float64(c.Failed) / n; frac < 0.17 || frac > 0.23 {
		t.Fatalf("fail fraction %v for rate 0.2", frac)
	}
}

func TestBlackoutWindows(t *testing.T) {
	in := New(Config{Blackouts: []Window{{From: 60 * time.Second, To: 90 * time.Second}}})
	if d := in.Decide(59 * time.Second); d.Outcome != Pass {
		t.Fatalf("pre-blackout: %v", d.Outcome)
	}
	for _, at := range []time.Duration{60 * time.Second, 75 * time.Second, 90*time.Second - time.Millisecond} {
		if d := in.Decide(at); d.Outcome != Drop {
			t.Fatalf("inside blackout at %v: %v", at, d.Outcome)
		}
	}
	if d := in.Decide(90 * time.Second); d.Outcome != Pass {
		t.Fatalf("post-blackout: %v", d.Outcome)
	}
	if c := in.Counts(); c.BlackoutDrops != 3 {
		t.Fatalf("blackout drops %d", c.BlackoutDrops)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{}, true},
		{Config{DropRate: 0.5, FailRate: 0.5}, true},
		{Config{DropRate: -0.1}, false},
		{Config{DropRate: 1.1}, false},
		{Config{DropRate: 0.6, FailRate: 0.6}, false},
		{Config{DelayRate: 0.1}, false}, // needs DelayBy
		{Config{DelayRate: 0.1, DelayBy: time.Millisecond}, true},
		{Config{Blackouts: []Window{{From: 2 * time.Second, To: time.Second}}}, false},
		{Config{Blackouts: []Window{{From: 0, To: time.Second}}}, true},
	}
	for i, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, tc.ok)
		}
	}
}

func TestRoundTripperOutcomes(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	// Full blackout: every request errors, server never hit.
	in := New(Config{Blackouts: []Window{{From: 0, To: time.Hour}}})
	client := &http.Client{Transport: NewRoundTripper(ts.Client().Transport, in, nil)}
	_, err := client.Get(ts.URL)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("blackout request error = %v", err)
	}
	if hits != 0 {
		t.Fatal("blackout request reached the server")
	}

	// Fail: synthesized 503, server never hit.
	in = New(Config{FailRate: 1})
	client = &http.Client{Transport: NewRoundTripper(ts.Client().Transport, in, nil)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hits != 0 {
		t.Fatalf("fail outcome: status %d, hits %d", resp.StatusCode, hits)
	}
	_, _ = io.Copy(io.Discard, resp.Body)

	// Pass: request goes through.
	in = New(Config{})
	client = &http.Client{Transport: NewRoundTripper(ts.Client().Transport, in, nil)}
	resp, err = client.Get(ts.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pass outcome: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if hits != 1 {
		t.Fatalf("pass outcome hits = %d", hits)
	}

	// Duplicate: one logical request, two deliveries.
	hits = 0
	in = New(Config{DuplicateRate: 1})
	client = &http.Client{Transport: NewRoundTripper(ts.Client().Transport, in, nil)}
	resp, err = client.Get(ts.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate outcome: %v %v", resp, err)
	}
	resp.Body.Close()
	if hits != 2 {
		t.Fatalf("duplicate delivered %d times", hits)
	}
}

func TestMiddlewareBlackout(t *testing.T) {
	hits := 0
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.WriteHeader(http.StatusOK)
	})
	in := New(Config{Blackouts: []Window{{From: 0, To: time.Hour}}})
	ts := httptest.NewServer(Middleware(in, next))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hits != 0 {
		t.Fatalf("middleware blackout: status %d, hits %d", resp.StatusCode, hits)
	}
}
