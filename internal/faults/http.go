package faults

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrInjected is the transport-level error surfaced for dropped
// exchanges; callers (and the hardened oneapi.Client) treat it exactly
// like any other network failure. Use errors.Is to detect it in tests.
var ErrInjected = errors.New("faults: injected control-plane failure")

// RoundTripper wraps an http.RoundTripper with fault injection, so the
// real JSON/HTTP OneAPI binding can be exercised against loss, error,
// delay, duplication, and scheduled blackouts without touching the
// server or client code under test.
type RoundTripper struct {
	inner http.RoundTripper
	inj   *Injector
	now   func() time.Duration
	// sleep is swappable for tests; defaults to time.Sleep.
	sleep func(time.Duration)
}

// NewRoundTripper builds a fault-injecting transport. inner nil uses
// http.DefaultTransport; now nil uses wall time since construction
// (so Window schedules are relative to transport creation).
func NewRoundTripper(inner http.RoundTripper, inj *Injector, now func() time.Duration) *RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	return &RoundTripper{inner: inner, inj: inj, now: now, sleep: time.Sleep}
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	d := rt.inj.Decide(rt.now())
	switch d.Outcome {
	case Drop:
		return nil, fmt.Errorf("%w: %s %s dropped", ErrInjected, req.Method, req.URL.Path)
	case Fail:
		return syntheticError(req), nil
	case Delay:
		if d.Delay > 0 {
			rt.sleep(d.Delay)
		}
		return rt.inner.RoundTrip(req)
	case Duplicate:
		// Deliver the request twice — the first delivery models a
		// retransmission that already reached the server; its response
		// is discarded and the caller sees the second, probing
		// server-side idempotency.
		if first, err := rt.inner.RoundTrip(cloneRequest(req)); err == nil {
			_, _ = io.Copy(io.Discard, first.Body)
			_ = first.Body.Close()
		}
		return rt.inner.RoundTrip(req)
	default:
		return rt.inner.RoundTrip(req)
	}
}

// cloneRequest copies req with a replayable body (when GetBody is
// available, as it is for all bytes.Reader-backed client requests).
func cloneRequest(req *http.Request) *http.Request {
	c := req.Clone(req.Context())
	if req.Body == nil || req.GetBody == nil {
		return c
	}
	if body, err := req.GetBody(); err == nil {
		c.Body = body
	}
	// Rewind the original for the second delivery.
	if body, err := req.GetBody(); err == nil {
		req.Body = body
	}
	return c
}

func syntheticError(req *http.Request) *http.Response {
	body := `{"error":"injected upstream failure","code":"injected"}`
	return &http.Response{
		Status:        http.StatusText(http.StatusServiceUnavailable),
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Middleware wraps an http.Handler with server-side fault injection:
// dropped exchanges are answered 503 after the handler is skipped
// (an HTTP server cannot truly lose a request, but the client-visible
// effect — no useful response — matches), failed exchanges 503, and
// delayed ones are held before handling. Duplicate replays the request
// into the handler twice, body permitting.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	start := time.Now()
	return MiddlewareClock(inj, func() time.Duration { return time.Since(start) }, next)
}

// MiddlewareClock is Middleware with an explicit clock, so blackout
// windows can be driven by simulated or test-controlled time.
func MiddlewareClock(inj *Injector, now func() time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := inj.Decide(now())
		switch d.Outcome {
		case Drop, Fail:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"injected server failure","code":"injected"}`))
		case Delay:
			if d.Delay > 0 {
				time.Sleep(d.Delay)
			}
			next.ServeHTTP(w, r)
		case Duplicate:
			body, err := io.ReadAll(r.Body)
			if err == nil {
				first := r.Clone(r.Context())
				first.Body = io.NopCloser(bytes.NewReader(body))
				next.ServeHTTP(&discardResponseWriter{h: make(http.Header)}, first)
				r.Body = io.NopCloser(bytes.NewReader(body))
			}
			next.ServeHTTP(w, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// discardResponseWriter swallows the duplicate delivery's response.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header         { return d.h }
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}
