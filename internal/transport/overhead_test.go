package transport

import (
	"testing"

	"github.com/flare-sim/flare/internal/lte"
)

func TestOverheadGoodputBelowWireRate(t *testing.T) {
	const iTbs = 10
	env := newTestEnv(t, iTbs, 1)
	cfg := DefaultConfig() // 1.04 overhead
	f := env.addFlow(t, 0, lte.ClassData, cfg)
	f.SetGreedy(true)
	env.run(10000)
	wire := f.WireDelivered()
	app := f.DeliveredTotal()
	if app >= wire {
		t.Fatalf("goodput %d >= wire %d", app, wire)
	}
	ratio := float64(wire) / float64(app)
	if ratio < 1.035 || ratio > 1.045 {
		t.Fatalf("overhead ratio %v, want ~1.04", ratio)
	}
}

func TestOverheadAppDeliveryCoversSend(t *testing.T) {
	// Whatever the overhead factor, the application must eventually
	// receive the bytes it asked for (ceil rounding may credit a byte
	// or two extra at the wire boundary, never fewer).
	for _, size := range []int64{1_000, 14_600, 100_001, 777_777} {
		env := newTestEnv(t, 12, 1)
		f := env.addFlow(t, 0, lte.ClassVideo, DefaultConfig())
		var got int64
		f.OnDelivered = func(n int64) { got += n }
		f.Send(size)
		env.run(30000)
		if got < size {
			t.Fatalf("size %d: delivered only %d", size, got)
		}
		if got > size+2 {
			t.Fatalf("size %d: over-delivered %d", size, got)
		}
	}
}

func TestOverheadFactorOneIsExact(t *testing.T) {
	env := newTestEnv(t, 12, 1)
	cfg := DefaultConfig()
	cfg.OverheadFactor = 1
	f := env.addFlow(t, 0, lte.ClassVideo, cfg)
	var got int64
	f.OnDelivered = func(n int64) { got += n }
	f.Send(123_456)
	env.run(10000)
	if got != 123_456 {
		t.Fatalf("delivered %d, want exact", got)
	}
	if f.WireDelivered() != f.DeliveredTotal() {
		t.Fatal("wire != app at factor 1")
	}
}

func TestOverheadValidation(t *testing.T) {
	env := newTestEnv(t, 10, 1)
	b := &lte.Bearer{ID: 0, UE: 0}
	cfg := DefaultConfig()
	cfg.OverheadFactor = 0.9
	if _, err := NewFlow(env, b, cfg); err == nil {
		t.Fatal("overhead < 1 accepted")
	}
}
