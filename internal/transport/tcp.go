// Package transport models the end-to-end TCP path of each flow: the
// sender sits at the media/data server, the bottleneck is the per-bearer
// drop-tail queue at the eNodeB, and ACKs are clocked back to the sender
// half an RTT after radio delivery.
//
// The congestion controller is TCP Westwood (the paper's Table III
// setting): slow start and congestion avoidance as usual, but on loss the
// window collapses to the bandwidth-delay product estimated from the ACK
// stream rather than to half the window. The model is byte-granular and
// event-driven; it reproduces the dynamics that matter to HAS rate
// adaptation — slow-start ramps on idle connections, queue-overflow
// backoff, and elastic sharing between video and data flows.
package transport

import (
	"fmt"
	"math"

	"github.com/flare-sim/flare/internal/lte"
)

// Env is the scheduling environment flows run in — implemented by the
// cell simulator over its clock and event queue.
type Env interface {
	// NowTTI returns the current TTI index.
	NowTTI() int64
	// Schedule runs fn after delayTTIs TTIs (>= 1 enforces causality).
	Schedule(delayTTIs int64, fn func())
}

// Waker is an optional Env extension. An environment that implements it
// is told whenever a flow transitions from inactive (nothing to send)
// to active — the wake hint the quiescence-aware kernel uses to keep an
// active-flow tick list instead of polling every flow every TTI.
type Waker interface {
	FlowActivated(f *Flow)
}

// ArgScheduler is an optional Env extension: an allocation-free variant
// of Schedule for payload-carrying callbacks. The flow uses it for the
// per-delivery ACK clock — one stored method value plus the byte count
// replaces a fresh closure per radio delivery.
type ArgScheduler interface {
	ScheduleArg(delayTTIs int64, fn func(int64), arg int64)
}

// Config holds the TCP model parameters.
type Config struct {
	// RTTTTIs is the base round-trip time in TTIs (ms), radio queueing
	// excluded. Default 40 ms.
	RTTTTIs int64
	// MSS is the maximum segment size in bytes. Default 1460.
	MSS int
	// InitialWindow is the initial congestion window in segments (IW10).
	InitialWindow int
	// IdleResetTTIs resets the window to the initial window after this
	// much send inactivity (slow-start-after-idle). 0 disables.
	IdleResetTTIs int64
	// QueueLimit is the eNB per-bearer queue capacity in bytes; the flow
	// configures its bearer with it. Default 256 KiB.
	QueueLimit int64
	// OverheadFactor is the wire-bytes-per-application-byte ratio
	// (TCP/IP/HTTP framing, retransmissions). Application goodput is
	// therefore OverheadFactor below the radio rate — the systematic
	// gap that makes throughput-measuring clients round down below a
	// network-enforced MBR. Default 1.04.
	OverheadFactor float64
}

// DefaultConfig returns the standard flow parameters.
func DefaultConfig() Config {
	return Config{
		RTTTTIs:        40,
		MSS:            1460,
		InitialWindow:  10,
		IdleResetTTIs:  200,
		QueueLimit:     256 << 10,
		OverheadFactor: 1.04,
	}
}

func (c Config) validate() error {
	if c.RTTTTIs < 2 {
		return fmt.Errorf("transport: RTT must be at least 2 TTIs, got %d", c.RTTTTIs)
	}
	if c.MSS <= 0 {
		return fmt.Errorf("transport: MSS must be positive, got %d", c.MSS)
	}
	if c.InitialWindow <= 0 {
		return fmt.Errorf("transport: initial window must be positive, got %d", c.InitialWindow)
	}
	if c.QueueLimit <= 0 {
		return fmt.Errorf("transport: queue limit must be positive, got %d", c.QueueLimit)
	}
	if c.OverheadFactor < 1 {
		return fmt.Errorf("transport: overhead factor must be >= 1, got %v", c.OverheadFactor)
	}
	return nil
}

// Flow is one TCP connection from server to UE across a bearer.
// Flows are single-goroutine, driven by the simulation loop.
type Flow struct {
	env      Env
	waker    Waker        // env's Waker extension, nil if not implemented
	argSched ArgScheduler // env's ArgScheduler extension, nil if not implemented
	onAckFn  func(int64)  // f.onAck as a stored method value (one alloc, reused)
	bearer   *lte.Bearer
	cfg      Config

	// OnDelivered, if set, is called at the UE when bytes arrive over
	// the radio (before the ACK returns to the sender). HAS players use
	// it to track segment download progress.
	OnDelivered func(bytes int64)

	pending  int64 // app bytes waiting for window space
	greedy   bool  // unlimited pending (iperf-style)
	inFlight int64 // bytes sent but not yet ACKed

	cwnd     float64 // congestion window, bytes
	ssthresh float64 // slow-start threshold, bytes

	bweBytesPerTTI float64 // Westwood bandwidth estimate
	lastAckTTI     int64
	lastSendTTI    int64
	inRecovery     bool

	wireDelivered int64 // radio bytes delivered, including overhead
	appDelivered  int64 // application (goodput) bytes delivered
	lostTotal     int64
	lossEvents    int64
}

// NewFlow wires a TCP flow onto a bearer. The bearer's OnDeliver hook and
// QueueLimit are taken over by the flow.
func NewFlow(env Env, bearer *lte.Bearer, cfg Config) (*Flow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Flow{
		env:         env,
		bearer:      bearer,
		cfg:         cfg,
		cwnd:        float64(cfg.InitialWindow * cfg.MSS),
		ssthresh:    1 << 30,
		lastAckTTI:  -1,
		lastSendTTI: -1,
	}
	if w, ok := env.(Waker); ok {
		f.waker = w
	}
	if a, ok := env.(ArgScheduler); ok {
		f.argSched = a
		f.onAckFn = f.onAck
	}
	bearer.QueueLimit = cfg.QueueLimit
	bearer.OnDeliver = f.onRadioDeliver
	return f, nil
}

// Bearer returns the radio bearer this flow rides on.
func (f *Flow) Bearer() *lte.Bearer { return f.bearer }

// SetGreedy makes the flow an always-backlogged (iperf-like) source.
func (f *Flow) SetGreedy(greedy bool) {
	wasActive := f.Active()
	f.greedy = greedy
	if greedy {
		if !wasActive && f.waker != nil {
			f.waker.FlowActivated(f)
		}
		f.trySend()
	}
}

// Send queues application bytes for transmission (e.g. one video
// segment's response body) and starts transmitting within window limits.
// The wire carries OverheadFactor times as many bytes.
func (f *Flow) Send(bytes int64) {
	if bytes <= 0 {
		return
	}
	if !f.Active() && f.waker != nil {
		f.waker.FlowActivated(f)
	}
	f.pending += int64(math.Ceil(float64(bytes) * f.cfg.OverheadFactor))
	f.trySend()
}

// Active reports whether the flow has application bytes it still wants
// to hand to the radio queue — i.e. whether Tick could possibly act.
func (f *Flow) Active() bool { return f.greedy || f.pending > 0 }

// Quiescent reports whether Tick is a provable no-op right now, making
// the flow safe to skip during a kernel fast-forward. Either the flow
// has nothing to send, or its congestion window is closed: with
// inFlight >= cwnd no bytes can be enqueued, and inFlight > 0 also
// rules out the slow-start-after-idle reset (which requires an empty
// pipe), so trySend cannot change any state. Within an event-free span
// cwnd, inFlight, and pending are all constant (they only move in
// Send/SetGreedy and the ACK/loss events), so a flow quiescent at the
// start of the span stays quiescent throughout it.
func (f *Flow) Quiescent() bool {
	if !f.Active() {
		return true
	}
	return f.inFlight > 0 && int64(f.cwnd)-f.inFlight <= 0
}

// Pending returns the app bytes not yet passed to the radio queue.
func (f *Flow) Pending() int64 { return f.pending }

// InFlight returns the unacknowledged bytes.
func (f *Flow) InFlight() int64 { return f.inFlight }

// Cwnd returns the congestion window in bytes.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// DeliveredTotal returns the cumulative application (goodput) bytes
// delivered to the UE.
func (f *Flow) DeliveredTotal() int64 { return f.appDelivered }

// WireDelivered returns the cumulative radio bytes delivered, including
// protocol overhead.
func (f *Flow) WireDelivered() int64 { return f.wireDelivered }

// LossEvents returns the number of congestion (window-cut) episodes.
func (f *Flow) LossEvents() int64 { return f.lossEvents }

// BandwidthEstimateBps returns the Westwood bandwidth estimate in bits/s.
func (f *Flow) BandwidthEstimateBps() float64 {
	return f.bweBytesPerTTI * 8 * lte.TTIsPerSecond
}

// Tick gives the flow a chance to (re)fill the radio queue; the cell
// simulator calls it each TTI for greedy flows whose queue has drained.
func (f *Flow) Tick() {
	if f.greedy || f.pending > 0 {
		f.trySend()
	}
}

func (f *Flow) trySend() {
	//flare:allow hotpath frontier: the Env impls (cellsim env, flowEnv) read the sim clock field without allocating; the engine allocs/op gate covers them
	now := f.env.NowTTI()
	// Slow-start-after-idle: a connection that went quiet re-probes.
	if f.cfg.IdleResetTTIs > 0 && f.lastSendTTI >= 0 &&
		now-f.lastSendTTI > f.cfg.IdleResetTTIs && f.inFlight == 0 {
		f.cwnd = float64(f.cfg.InitialWindow * f.cfg.MSS)
	}

	window := int64(f.cwnd) - f.inFlight
	if window <= 0 {
		return
	}
	want := window
	if !f.greedy {
		if f.pending < want {
			want = f.pending
		}
		if want <= 0 {
			return
		}
	}
	accepted := f.bearer.Enqueue(want)
	if accepted > 0 {
		f.lastSendTTI = now
		f.inFlight += accepted
		if !f.greedy {
			f.pending -= accepted
		}
	}
	if dropped := want - accepted; dropped > 0 {
		// Queue overflow. The dropped bytes stay in pending (only the
		// accepted bytes were subtracted), which models their
		// retransmission; the sender notices the loss via duplicate
		// ACKs about one RTT later.
		f.lostTotal += dropped
		if !f.inRecovery {
			f.inRecovery = true
			//flare:allow hotpath frontier: Schedule fires only on queue overflow (loss), not per send, and the Env impls push onto a preallocated timer wheel
			f.env.Schedule(f.cfg.RTTTTIs, f.onLossDetected)
		}
	}
}

// onLossDetected applies the Westwood cut: ssthresh from the bandwidth
// estimate times the base RTT, window collapsed to ssthresh.
func (f *Flow) onLossDetected() {
	bdp := f.bweBytesPerTTI * float64(f.cfg.RTTTTIs)
	floor := float64(2 * f.cfg.MSS)
	if bdp < floor {
		bdp = floor
	}
	f.ssthresh = bdp
	f.cwnd = bdp
	f.inRecovery = false
	f.lossEvents++
	f.trySend()
}

// onRadioDeliver runs when the eNodeB drains bytes to the UE. The
// receiver strips the protocol overhead: the application sees the
// cumulative wire bytes divided by the overhead factor.
func (f *Flow) onRadioDeliver(bytes int64) {
	f.wireDelivered += bytes
	newApp := int64(float64(f.wireDelivered)/f.cfg.OverheadFactor) - f.appDelivered
	if newApp > 0 {
		f.appDelivered += newApp
		if f.OnDelivered != nil {
			f.OnDelivered(newApp)
		}
	}
	// The ACK reaches the sender half an RTT later.
	delay := f.cfg.RTTTTIs / 2
	if delay < 1 {
		delay = 1
	}
	if f.argSched != nil {
		f.argSched.ScheduleArg(delay, f.onAckFn, bytes)
	} else {
		f.env.Schedule(delay, func() { f.onAck(bytes) })
	}
}

func (f *Flow) onAck(bytes int64) {
	now := f.env.NowTTI()
	f.inFlight -= bytes
	if f.inFlight < 0 {
		f.inFlight = 0
	}

	// Westwood bandwidth estimation from the ACK stream.
	if f.lastAckTTI >= 0 {
		dt := now - f.lastAckTTI
		if dt < 1 {
			dt = 1
		}
		sample := float64(bytes) / float64(dt)
		const alpha = 0.1
		f.bweBytesPerTTI += alpha * (sample - f.bweBytesPerTTI)
	} else {
		f.bweBytesPerTTI = float64(bytes) / float64(f.cfg.RTTTTIs)
	}
	f.lastAckTTI = now

	// Window growth.
	if f.cwnd < f.ssthresh {
		f.cwnd += float64(bytes) // slow start
	} else {
		f.cwnd += float64(f.cfg.MSS) * float64(bytes) / f.cwnd // CA
	}
	f.trySend()
}
