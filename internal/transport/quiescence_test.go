package transport

import (
	"testing"

	"github.com/flare-sim/flare/internal/lte"
)

// Unit tests for the flow-side fast-forward contract: Active/Quiescent
// semantics and the pooled ScheduleArg ACK path's equivalence with the
// closure path.

// argEnv extends testEnv with the ArgScheduler fast path so the pooled
// ACK delivery can be exercised against the closure fallback.
type argEnv struct {
	*testEnv
}

func (e *argEnv) ScheduleArg(delay int64, fn func(int64), arg int64) {
	if delay < 1 {
		delay = 1
	}
	e.events.ScheduleArg(e.clock.TTI()+delay, fn, arg)
}

func TestActiveTracksPendingAndGreedy(t *testing.T) {
	env := newTestEnv(t, 10, 1)
	f := env.addFlow(t, 0, lte.ClassVideo, DefaultConfig())
	if f.Active() {
		t.Fatal("idle flow reported active")
	}
	f.Send(50_000)
	if !f.Active() {
		t.Fatal("flow with pending bytes not active")
	}
	// Drain the transfer completely: pending hits zero, flow goes idle.
	env.run(5_000)
	if f.Pending() != 0 {
		t.Fatalf("transfer did not drain: pending=%d", f.Pending())
	}
	if f.Active() {
		t.Fatal("drained flow still active")
	}
	if !f.Quiescent() {
		t.Fatal("inactive flow must be quiescent")
	}
	f.SetGreedy(true)
	if !f.Active() {
		t.Fatal("greedy flow not active")
	}
	f.SetGreedy(false)
	if f.Active() {
		t.Fatal("un-greedied drained flow still active")
	}
}

func TestQuiescentRequiresClosedWindow(t *testing.T) {
	env := newTestEnv(t, 10, 1)
	cfg := DefaultConfig()
	f := env.addFlow(t, 0, lte.ClassVideo, cfg)
	// Far more pending than one window: Send's internal trySend fills
	// the window and the flow is then provably stuck until an ACK
	// arrives.
	f.Send(10_000_000)
	if int64(f.Cwnd())-f.InFlight() > 0 {
		t.Fatalf("window not filled: cwnd=%v inFlight=%d", f.Cwnd(), f.InFlight())
	}
	if !f.Quiescent() {
		t.Fatal("window-closed flow with in-flight data not quiescent")
	}
	// An ACK reopens the window: the flow must stop claiming quiescence,
	// since Tick can now enqueue bytes.
	env.run(int64(cfg.RTTTTIs) + 5)
	if int64(f.Cwnd())-f.InFlight() > 0 && f.Pending() > 0 && f.Quiescent() {
		t.Fatal("flow with window space and pending bytes reported quiescent")
	}
}

// TestArgSchedulerACKPathMatchesClosures pins the pooled-event ACK
// delivery to the closure fallback: both paths must produce identical
// flow trajectories, byte for byte.
func TestArgSchedulerACKPathMatchesClosures(t *testing.T) {
	plain := newTestEnv(t, 10, 1)
	arg := &argEnv{newTestEnv(t, 10, 1)}

	cfg := DefaultConfig()
	b1 := &lte.Bearer{ID: 0, UE: 0, Class: lte.ClassVideo}
	if _, err := plain.enb.AddBearer(b1); err != nil {
		t.Fatal(err)
	}
	f1, err := NewFlow(plain, b1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain.flows = append(plain.flows, f1)

	b2 := &lte.Bearer{ID: 0, UE: 0, Class: lte.ClassVideo}
	if _, err := arg.enb.AddBearer(b2); err != nil {
		t.Fatal(err)
	}
	f2, err := NewFlow(arg, b2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arg.flows = append(arg.flows, f2)

	if f1.argSched != nil {
		t.Fatal("plain env unexpectedly implements ArgScheduler")
	}
	if f2.argSched == nil {
		t.Fatal("arg env does not implement ArgScheduler")
	}

	f1.Send(200_000)
	f2.Send(200_000)
	for i := 0; i < 3_000; i++ {
		plain.run(1)
		arg.run(1)
		if f1.DeliveredTotal() != f2.DeliveredTotal() ||
			f1.InFlight() != f2.InFlight() ||
			f1.Cwnd() != f2.Cwnd() ||
			f1.Pending() != f2.Pending() {
			t.Fatalf("TTI %d: ACK paths diverged:\nclosure delivered=%d inFlight=%d cwnd=%v pending=%d\npooled  delivered=%d inFlight=%d cwnd=%v pending=%d",
				i, f1.DeliveredTotal(), f1.InFlight(), f1.Cwnd(), f1.Pending(),
				f2.DeliveredTotal(), f2.InFlight(), f2.Cwnd(), f2.Pending())
		}
	}
	if f1.DeliveredTotal() == 0 {
		t.Fatal("nothing delivered; test exercised no ACKs")
	}
}
