package transport

import (
	"testing"

	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/sim"
)

// testEnv is a minimal cell loop: one eNodeB, a clock, and an event
// queue, stepped TTI by TTI.
type testEnv struct {
	clock  sim.Clock
	events sim.EventQueue
	enb    *lte.ENodeB
	flows  []*Flow
}

func newTestEnv(t *testing.T, iTbs, numUEs int) *testEnv {
	t.Helper()
	return &testEnv{
		enb: lte.NewENodeB(lte.NewUniformStaticChannel(numUEs, iTbs), lte.PFScheduler{}),
	}
}

func (e *testEnv) NowTTI() int64 { return e.clock.TTI() }

func (e *testEnv) Schedule(delay int64, fn func()) {
	if delay < 1 {
		delay = 1
	}
	e.events.Schedule(e.clock.TTI()+delay, fn)
}

func (e *testEnv) addFlow(t *testing.T, ue int, class lte.BearerClass, cfg Config) *Flow {
	t.Helper()
	b := &lte.Bearer{ID: len(e.flows), UE: ue, Class: class}
	if _, err := e.enb.AddBearer(b); err != nil {
		t.Fatal(err)
	}
	f, err := NewFlow(e, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.flows = append(e.flows, f)
	return f
}

// run advances the sim by n TTIs.
func (e *testEnv) run(n int64) {
	for i := int64(0); i < n; i++ {
		tti := e.clock.TTI()
		e.events.RunDue(tti)
		for _, f := range e.flows {
			f.Tick()
		}
		e.enb.RunTTI(tti)
		e.clock.Advance()
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{RTTTTIs: 1, MSS: 1460, InitialWindow: 10, QueueLimit: 1000},
		{RTTTTIs: 40, MSS: 0, InitialWindow: 10, QueueLimit: 1000},
		{RTTTTIs: 40, MSS: 1460, InitialWindow: 0, QueueLimit: 1000},
		{RTTTTIs: 40, MSS: 1460, InitialWindow: 10, QueueLimit: 0},
	}
	env := newTestEnv(t, 10, 1)
	b := &lte.Bearer{ID: 0, UE: 0}
	for i, cfg := range bad {
		if _, err := NewFlow(env, b, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewFlow(env, b, DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestGreedyFlowSaturatesLink(t *testing.T) {
	const iTbs = 10
	env := newTestEnv(t, iTbs, 1)
	f := env.addFlow(t, 0, lte.ClassData, DefaultConfig())
	f.SetGreedy(true)
	env.run(10000) // 10 s
	gotBps := float64(f.DeliveredTotal()) * 8 / 10
	cell := lte.CellRateBps(iTbs)
	if gotBps < 0.85*cell {
		t.Fatalf("greedy flow got %.0f of %.0f bits/s", gotBps, cell)
	}
	if gotBps > 1.01*cell {
		t.Fatalf("flow exceeded link capacity: %.0f > %.0f", gotBps, cell)
	}
}

func TestSendDeliversExactly(t *testing.T) {
	env := newTestEnv(t, 10, 1)
	f := env.addFlow(t, 0, lte.ClassVideo, DefaultConfig())
	var delivered int64
	f.OnDelivered = func(n int64) { delivered += n }
	const size = 500_000
	f.Send(size)
	env.run(20000)
	if delivered != size {
		t.Fatalf("delivered %d, want %d", delivered, size)
	}
	if f.DeliveredTotal() != size {
		t.Fatalf("DeliveredTotal = %d", f.DeliveredTotal())
	}
	if f.Pending() != 0 || f.InFlight() != 0 {
		t.Fatalf("flow not drained: pending=%d inflight=%d", f.Pending(), f.InFlight())
	}
}

func TestSendIgnoresNonPositive(t *testing.T) {
	env := newTestEnv(t, 10, 1)
	f := env.addFlow(t, 0, lte.ClassVideo, DefaultConfig())
	f.Send(0)
	f.Send(-100)
	if f.Pending() != 0 {
		t.Fatalf("pending = %d after no-op sends", f.Pending())
	}
}

func TestSlowStartRampsWindow(t *testing.T) {
	env := newTestEnv(t, 20, 1)
	f := env.addFlow(t, 0, lte.ClassVideo, DefaultConfig())
	initial := f.Cwnd()
	f.Send(2_000_000)
	env.run(2000)
	if f.Cwnd() <= initial {
		t.Fatalf("cwnd did not grow: %v <= %v", f.Cwnd(), initial)
	}
}

func TestLossEventsCutWindow(t *testing.T) {
	// Two greedy flows on a slow link must overflow the queue and back
	// off; Westwood keeps the window near the BDP, not at the cap.
	env := newTestEnv(t, 2, 2)
	cfg := DefaultConfig()
	cfg.QueueLimit = 64 << 10
	f1 := env.addFlow(t, 0, lte.ClassData, cfg)
	f2 := env.addFlow(t, 1, lte.ClassData, cfg)
	f1.SetGreedy(true)
	f2.SetGreedy(true)
	env.run(30000)
	if f1.LossEvents() == 0 && f2.LossEvents() == 0 {
		t.Fatal("no loss events despite tiny queue and greedy senders")
	}
	// The two flows share the cell roughly fairly thanks to PF + TCP.
	r := float64(f1.DeliveredTotal()) / float64(f2.DeliveredTotal())
	if r < 0.7 || r > 1.4 {
		t.Fatalf("greedy flows unbalanced: %d vs %d", f1.DeliveredTotal(), f2.DeliveredTotal())
	}
}

func TestBandwidthEstimateTracksLinkRate(t *testing.T) {
	const iTbs = 8
	env := newTestEnv(t, iTbs, 1)
	f := env.addFlow(t, 0, lte.ClassData, DefaultConfig())
	f.SetGreedy(true)
	env.run(20000)
	bwe := f.BandwidthEstimateBps()
	cell := lte.CellRateBps(iTbs)
	if bwe < 0.5*cell || bwe > 1.5*cell {
		t.Fatalf("Westwood estimate %.0f far from link rate %.0f", bwe, cell)
	}
}

func TestIdleResetShrinksWindow(t *testing.T) {
	env := newTestEnv(t, 20, 1)
	cfg := DefaultConfig()
	f := env.addFlow(t, 0, lte.ClassVideo, cfg)
	f.Send(1_000_000)
	env.run(10000)
	grown := f.Cwnd()
	if grown <= float64(cfg.InitialWindow*cfg.MSS) {
		t.Fatalf("window did not grow before idle: %v", grown)
	}
	// Idle beyond IdleResetTTIs, then send again.
	env.run(cfg.IdleResetTTIs + 100)
	f.Send(100_000)
	if f.Cwnd() >= grown {
		t.Fatalf("idle reset did not shrink window: %v >= %v", f.Cwnd(), grown)
	}
	env.run(5000)
	if f.Pending() != 0 {
		t.Fatal("post-idle send did not complete")
	}
}

func TestTwoSegmentsSequential(t *testing.T) {
	// HAS-style: request, wait for completion, request again.
	env := newTestEnv(t, 10, 1)
	f := env.addFlow(t, 0, lte.ClassVideo, DefaultConfig())
	var delivered int64
	f.OnDelivered = func(n int64) { delivered += n }
	f.Send(300_000)
	env.run(8000)
	first := delivered
	if first != 300_000 {
		t.Fatalf("first segment incomplete: %d", first)
	}
	f.Send(400_000)
	env.run(8000)
	if delivered != 700_000 {
		t.Fatalf("second segment incomplete: %d", delivered)
	}
}

func TestConservationNoLoss(t *testing.T) {
	// With a huge queue there are no drops, so delivered equals sent.
	env := newTestEnv(t, 15, 1)
	cfg := DefaultConfig()
	cfg.QueueLimit = 1 << 30
	cfg.OverheadFactor = 1 // exact byte conservation
	f := env.addFlow(t, 0, lte.ClassVideo, cfg)
	total := int64(0)
	for i := 0; i < 10; i++ {
		f.Send(123_456)
		total += 123_456
		env.run(1500)
	}
	env.run(10000)
	if f.DeliveredTotal() != total {
		t.Fatalf("delivered %d != sent %d (lost %d)", f.DeliveredTotal(), total, f.lostTotal)
	}
	if f.LossEvents() != 0 {
		t.Fatalf("unexpected loss events: %d", f.LossEvents())
	}
}

func TestVideoAndDataCoexistence(t *testing.T) {
	// A segment-paced video flow should make progress against a greedy
	// data flow on the same cell.
	env := newTestEnv(t, 12, 2)
	video := env.addFlow(t, 0, lte.ClassVideo, DefaultConfig())
	data := env.addFlow(t, 1, lte.ClassData, DefaultConfig())
	data.SetGreedy(true)
	var got int64
	video.OnDelivered = func(n int64) { got += n }
	video.Send(1_000_000)
	env.run(20000)
	if got != 1_000_000 {
		t.Fatalf("video segment starved by data flow: %d of 1e6 bytes", got)
	}
	if data.DeliveredTotal() == 0 {
		t.Fatal("data flow got nothing")
	}
}
