// Package qoe implements the composite quality-of-experience score the
// ABR literature settled on (Yin et al., SIGCOMM'15): per-segment
// quality minus a switching penalty minus rebuffering and startup
// penalties. The paper reports its three ingredients separately (average
// bitrate, bitrate changes, buffer underflow time); the composite lets
// the extension experiments rank schemes on one axis.
package qoe

import "math"

// Weights parameterises the score.
type Weights struct {
	// LambdaSwitch scales the |q(R_k) - q(R_{k-1})| switching penalty.
	LambdaSwitch float64
	// MuRebufferPerSec penalises each second of rebuffering.
	MuRebufferPerSec float64
	// MuStartupPerSec penalises each second of startup delay (weighted
	// lower than rebuffering, per the literature).
	MuStartupPerSec float64
}

// DefaultWeights returns the conventional weighting: switching at parity
// with quality deltas, rebuffering at the quality value of a top-rate
// segment per second, startup at a third of that.
func DefaultWeights() Weights {
	return Weights{
		LambdaSwitch:     1,
		MuRebufferPerSec: 3000,
		MuStartupPerSec:  1000,
	}
}

// Quality maps a bitrate to quality points: log-scaled (doubling the
// rate adds a constant), anchored so 100 kbps = 0.
func Quality(rateBps float64) float64 {
	if rateBps <= 0 {
		return 0
	}
	return 1000 * math.Log(rateBps/1e5)
}

// Score computes the session QoE from the selected per-segment rates,
// the rebuffering time, and the startup delay (seconds; pass 0 for an
// unknown or never-started startup). The result is normalised per
// segment so sessions of different lengths compare.
func Score(ratesBps []float64, stallSec, startupSec float64, w Weights) float64 {
	if len(ratesBps) == 0 {
		return 0
	}
	var quality, switching float64
	for i, r := range ratesBps {
		quality += Quality(r)
		if i > 0 {
			switching += math.Abs(Quality(r) - Quality(ratesBps[i-1]))
		}
	}
	if startupSec < 0 {
		startupSec = 0
	}
	total := quality - w.LambdaSwitch*switching -
		w.MuRebufferPerSec*stallSec - w.MuStartupPerSec*startupSec
	return total / float64(len(ratesBps))
}
