package qoe

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQualityAnchorsAndMonotone(t *testing.T) {
	if got := Quality(100_000); got != 0 {
		t.Fatalf("Quality(100k) = %v, want 0", got)
	}
	if Quality(0) != 0 || Quality(-5) != 0 {
		t.Fatal("non-positive rates should score 0")
	}
	prev := math.Inf(-1)
	for _, r := range []float64{50_000, 100_000, 500_000, 1e6, 3e6} {
		q := Quality(r)
		if q <= prev {
			t.Fatalf("Quality not increasing at %v", r)
		}
		prev = q
	}
	// Doubling adds a constant (log scale).
	d1 := Quality(400_000) - Quality(200_000)
	d2 := Quality(800_000) - Quality(400_000)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("log property violated: %v vs %v", d1, d2)
	}
}

func TestScoreComponents(t *testing.T) {
	w := DefaultWeights()
	steady := []float64{1e6, 1e6, 1e6, 1e6}
	base := Score(steady, 0, 0, w)
	if base <= 0 {
		t.Fatalf("steady 1 Mbps session scored %v", base)
	}
	// Switching hurts.
	flappy := []float64{1e6, 250_000, 1e6, 250_000}
	if s := Score(flappy, 0, 0, w); s >= base {
		t.Fatalf("flapping session scored %v >= steady %v", s, base)
	}
	// Rebuffering hurts.
	if s := Score(steady, 5, 0, w); s >= base {
		t.Fatalf("stalled session scored %v >= clean %v", s, base)
	}
	// Startup delay hurts less than the same rebuffering time.
	sStall := Score(steady, 3, 0, w)
	sStart := Score(steady, 0, 3, w)
	if sStart <= sStall {
		t.Fatalf("startup penalty %v should be milder than rebuffer %v", sStart, sStall)
	}
	// Negative startup (never played) is treated as zero.
	if s := Score(steady, 0, -1, w); s != base {
		t.Fatalf("negative startup changed score: %v vs %v", s, base)
	}
	if Score(nil, 10, 10, w) != 0 {
		t.Fatal("empty session should score 0")
	}
}

func TestScoreLengthNormalised(t *testing.T) {
	w := DefaultWeights()
	short := []float64{1e6, 1e6}
	long := make([]float64, 100)
	for i := range long {
		long[i] = 1e6
	}
	a, b := Score(short, 0, 0, w), Score(long, 0, 0, w)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("per-segment normalisation broken: %v vs %v", a, b)
	}
}

func TestScoreHigherRateWinsProperty(t *testing.T) {
	w := DefaultWeights()
	check := func(nRaw uint8, lowRaw, hiRaw uint32) bool {
		n := int(nRaw)%20 + 1
		low := float64(lowRaw%2_000_000) + 100_000
		hi := low + float64(hiRaw%2_000_000) + 1
		mk := func(r float64) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r
			}
			return xs
		}
		return Score(mk(hi), 0, 0, w) >= Score(mk(low), 0, 0, w)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
