// Package metrics implements the quality-of-experience and fairness
// statistics the paper reports: average bitrate, bitrate-change counts,
// Jain's fairness index, rebuffering time, empirical CDFs, and simple
// table/CSV renderers for the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stdev returns the population standard deviation of xs, or 0 when xs has
// fewer than two elements.
func Stdev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs. Non-positive samples are
// skipped (a zero-throughput sample would otherwise dominate the
// estimate); an empty or all-non-positive slice yields 0.
func HarmonicMean(xs []float64) float64 {
	var inv float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		inv += 1 / x
		n++
	}
	if n == 0 || inv == 0 {
		return 0
	}
	return float64(n) / inv
}

// JainIndex returns Jain's fairness index of xs:
//
//	J = (Σx)² / (n · Σx²)
//
// J is 1 when all values are equal and 1/n in the most unfair case.
// An empty or all-zero slice yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CountChanges returns the number of positions where consecutive values
// differ — the paper's "number of bitrate changes" metric over a sequence
// of selected segment bitrates.
func CountChanges(xs []float64) int {
	n := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[i-1] {
			n++
		}
	}
	return n
}

// CDF is an empirical cumulative distribution function over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples. The input slice is copied.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile for q in [0, 1] using the
// nearest-rank method. It returns 0 for an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Min returns the smallest sample, or 0 for an empty CDF.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample, or 0 for an empty CDF.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Points returns up to n evenly spaced (value, probability) points
// suitable for plotting the CDF curve.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		// Index of the sample representing this plot point.
		idx := (i + 1) * len(c.sorted) / n
		if idx > len(c.sorted) {
			idx = len(c.sorted)
		}
		pts = append(pts, Point{
			X: c.sorted[idx-1],
			Y: float64(idx) / float64(len(c.sorted)),
		})
	}
	return pts
}

// Point is a single (x, y) plot point.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TimeSeries collects (time, value) samples, e.g. per-second video rate.
type TimeSeries struct {
	points []Point
}

// Add appends a sample at time t (seconds).
func (ts *TimeSeries) Add(t, v float64) {
	ts.points = append(ts.points, Point{X: t, Y: v})
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns the underlying samples. The returned slice must not be
// modified.
func (ts *TimeSeries) Points() []Point { return ts.points }

// Values returns just the sample values, in insertion order.
func (ts *TimeSeries) Values() []float64 {
	vs := make([]float64, len(ts.points))
	for i, p := range ts.points {
		vs[i] = p.Y
	}
	return vs
}

// MeanValue returns the mean of the sample values.
func (ts *TimeSeries) MeanValue() float64 { return Mean(ts.Values()) }

// Downsample returns a series with at most n points, averaging buckets of
// consecutive samples. It preserves the time of each bucket's first point.
func (ts *TimeSeries) Downsample(n int) *TimeSeries {
	if n <= 0 || len(ts.points) <= n {
		out := &TimeSeries{points: make([]Point, len(ts.points))}
		copy(out.points, ts.points)
		return out
	}
	out := &TimeSeries{points: make([]Point, 0, n)}
	bucket := (len(ts.points) + n - 1) / n
	for i := 0; i < len(ts.points); i += bucket {
		end := i + bucket
		if end > len(ts.points) {
			end = len(ts.points)
		}
		var sum float64
		for _, p := range ts.points[i:end] {
			sum += p.Y
		}
		out.points = append(out.points, Point{
			X: ts.points[i].X,
			Y: sum / float64(end-i),
		})
	}
	return out
}

// FormatKbps renders a bits-per-second value as Kbps with no decimals.
func FormatKbps(bps float64) string {
	return fmt.Sprintf("%.0f Kbps", bps/1000)
}
