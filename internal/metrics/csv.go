package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Series is a named sequence of plot points — one line on a paper figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// SeriesFromCDF converts a CDF into a plottable series with at most n
// points.
func SeriesFromCDF(name string, c *CDF, n int) Series {
	return Series{Name: name, Points: c.Points(n)}
}

// SeriesFromTimeSeries converts a time series into a plottable series,
// downsampled to at most n points.
func SeriesFromTimeSeries(name string, ts *TimeSeries, n int) Series {
	return Series{Name: name, Points: ts.Downsample(n).Points()}
}

// WriteSeriesCSV writes one or more series to w in long form:
// series,x,y — the format consumed by any plotting tool.
func WriteSeriesCSV(w io.Writer, series ...Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	for _, s := range series {
		for _, p := range s.Points {
			rec := []string{
				s.Name,
				strconv.FormatFloat(p.X, 'g', 8, 64),
				strconv.FormatFloat(p.Y, 'g', 8, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("metrics: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: flush csv: %w", err)
	}
	return nil
}
