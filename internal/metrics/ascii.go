package metrics

import (
	"fmt"
	"math"
	"strings"
)

// plotGlyphs distinguish series on one canvas.
var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// AsciiPlot renders the series onto a width x height character canvas
// with min/max axis annotations — enough to eyeball a CDF or a sweep in
// a terminal without any plotting dependency. Series beyond the glyph
// set reuse glyphs.
func AsciiPlot(width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			total++
		}
	}
	if total == 0 {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for _, p := range s.Points {
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = glyph
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%11.4g +%s\n", maxY, strings.Repeat("-", width))
	for r := 0; r < height; r++ {
		prefix := "            |"
		if r == height-1 {
			prefix = fmt.Sprintf("%11.4g +", minY)
		}
		b.WriteString(prefix)
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%13s%-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", plotGlyphs[si%len(plotGlyphs)], s.Name)
	}
	return b.String()
}
