package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables in the style of the paper's Tables I
// and II: one row label per metric, one column per scheme.
type Table struct {
	Title   string
	Columns []string
	rows    []tableRow
}

type tableRow struct {
	label string
	cells []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Extra cells are dropped, missing cells rendered
// empty, so callers may pass exactly len(Columns) values.
func (t *Table) AddRow(label string, cells ...string) {
	t.rows = append(t.rows, tableRow{label: label, cells: cells})
}

// AddFloatRow appends a row of numeric cells rendered with the given
// format verb (e.g. "%.1f").
func (t *Table) AddFloatRow(label, format string, values ...float64) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf(format, v)
	}
	t.AddRow(label, cells...)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	labelWidth := 0
	for _, r := range t.rows {
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	colWidths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colWidths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r.cells {
			if i < len(colWidths) && len(c) > colWidths[i] {
				colWidths[i] = len(c)
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(label string, cells []string) {
		fmt.Fprintf(&b, "%-*s", labelWidth, label)
		for i, w := range colWidths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "  %*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow("", t.Columns)
	total := labelWidth
	for _, w := range colWidths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r.label, r.cells)
	}
	return b.String()
}
