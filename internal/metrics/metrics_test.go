package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, tc := range cases {
		if got := Mean(tc.xs); got != tc.want {
			t.Errorf("Mean(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
}

func TestStdev(t *testing.T) {
	if got := Stdev([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("Stdev of constants = %v, want 0", got)
	}
	if got := Stdev([]float64{1, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Stdev([1 3]) = %v, want 1", got)
	}
	if got := Stdev([]float64{7}); got != 0 {
		t.Errorf("Stdev of single sample = %v, want 0", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 2, 4}); !almostEqual(got, 12.0/7.0, 1e-12) {
		t.Errorf("HarmonicMean = %v, want %v", got, 12.0/7.0)
	}
	// Zeros are skipped rather than collapsing the estimate to zero.
	if got := HarmonicMean([]float64{0, 2, 2}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("HarmonicMean with zero = %v, want 2", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HarmonicMean(nil) = %v, want 0", got)
	}
}

func TestHarmonicMeanAtMostArithmetic(t *testing.T) {
	check := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return HarmonicMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{3, 3, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("JainIndex equal = %v, want 1", got)
	}
	// One flow hogging everything: J = 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("JainIndex hog = %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("JainIndex(nil) = %v, want 0", got)
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	check := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		xs := make([]float64, len(vals))
		anyPositive := false
		for i, v := range vals {
			xs[i] = float64(v)
			if v > 0 {
				anyPositive = true
			}
		}
		j := JainIndex(xs)
		if !anyPositive {
			return j == 0
		}
		lower := 1/float64(len(xs)) - 1e-9
		return j >= lower && j <= 1+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountChanges(t *testing.T) {
	cases := []struct {
		xs   []float64
		want int
	}{
		{nil, 0},
		{[]float64{1}, 0},
		{[]float64{1, 1, 1}, 0},
		{[]float64{1, 2, 1}, 2},
		{[]float64{1, 2, 2, 3}, 2},
	}
	for _, tc := range cases {
		if got := CountChanges(tc.xs); got != tc.want {
			t.Errorf("CountChanges(%v) = %d, want %d", tc.xs, got, tc.want)
		}
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{4, 1, 3, 2})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if got := c.Mean(); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if got := c.Quantile(0.5); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("q0 = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
	if got := c.Quantile(0.91); got != 100 {
		t.Errorf("q0.91 = %v, want 100", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Quantile(0.5) != 0 || c.Min() != 0 || c.Max() != 0 {
		t.Fatal("empty CDF should return zeros")
	}
	if pts := c.Points(10); pts != nil {
		t.Fatalf("empty CDF Points = %v", pts)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	check := func(vals []int16, a, b int16) bool {
		if len(vals) == 0 {
			return true
		}
		xs := make([]float64, len(vals))
		for i, v := range vals {
			xs[i] = float64(v)
		}
		c := NewCDF(xs)
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPointsCoverFullRange(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	c := NewCDF(samples)
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Y != 1 {
		t.Errorf("last point Y = %v, want 1", last.Y)
	}
	if last.X != 99 {
		t.Errorf("last point X = %v, want 99", last.X)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y <= pts[i-1].Y {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c := NewCDF(in)
	in[0] = 100
	if c.Max() != 3 {
		t.Fatal("CDF aliased caller slice")
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 10; i++ {
		ts.Add(float64(i), float64(i*2))
	}
	if ts.Len() != 10 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if got := ts.MeanValue(); got != 9 {
		t.Errorf("MeanValue = %v, want 9", got)
	}
	vs := ts.Values()
	if len(vs) != 10 || vs[3] != 6 {
		t.Errorf("Values = %v", vs)
	}
}

func TestTimeSeriesDownsample(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 100; i++ {
		ts.Add(float64(i), 1)
	}
	d := ts.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("Downsample produced %d points", d.Len())
	}
	for _, p := range d.Points() {
		if p.Y != 1 {
			t.Fatalf("bucket mean distorted constant series: %v", p)
		}
	}
	// Downsampling to a larger size copies, not aliases.
	d2 := ts.Downsample(1000)
	if d2.Len() != 100 {
		t.Fatalf("no-op downsample length = %d", d2.Len())
	}
	d2.Add(200, 5)
	if ts.Len() != 100 {
		t.Fatal("downsample aliased original")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Summary", "FESTIVE", "GOOGLE", "FLARE")
	tb.AddRow("Average video rate (Kbps)", "638", "1151", "726")
	tb.AddFloatRow("Jain's fairness index", "%.3f", 0.998, 0.990, 0.999)
	out := tb.String()
	if !strings.Contains(out, "Summary") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "FESTIVE") || !strings.Contains(out, "0.999") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var sb strings.Builder
	s := Series{Name: "flare", Points: []Point{{X: 1, Y: 0.5}, {X: 2, Y: 1}}}
	if err := WriteSeriesCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "series,x,y\nflare,1,0.5\nflare,2,1\n"
	if out != want {
		t.Errorf("csv = %q, want %q", out, want)
	}
}

func TestSeriesFromCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	s := SeriesFromCDF("x", c, 4)
	if s.Name != "x" || len(s.Points) != 4 {
		t.Fatalf("series = %+v", s)
	}
}

func TestFormatKbps(t *testing.T) {
	if got := FormatKbps(2512_000); got != "2512 Kbps" {
		t.Errorf("FormatKbps = %q", got)
	}
}

func TestAsciiPlotBasics(t *testing.T) {
	s1 := Series{Name: "up", Points: []Point{{0, 0}, {1, 1}, {2, 2}}}
	s2 := Series{Name: "down", Points: []Point{{0, 2}, {1, 1}, {2, 0}}}
	out := AsciiPlot(40, 10, s1, s2)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestAsciiPlotEdgeCases(t *testing.T) {
	if out := AsciiPlot(40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
	// Degenerate ranges must not divide by zero.
	flat := Series{Name: "flat", Points: []Point{{1, 5}, {1, 5}}}
	out := AsciiPlot(5, 2, flat) // also exercises size clamping
	if !strings.Contains(out, "flat") {
		t.Fatalf("degenerate plot broken:\n%s", out)
	}
}
