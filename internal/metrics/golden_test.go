package metrics

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the renderer goldens:
//
//	go test ./internal/metrics -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenSeries builds the deterministic fixtures shared by every
// renderer golden: a CDF of a small fixed sample and a coarse sine
// sweep, shaped like the solver-latency and rate-over-time figures.
func goldenSeries() []Series {
	cdf := NewCDF([]float64{0.2, 0.4, 0.4, 0.9, 1.3, 1.7, 2.1, 2.1, 3.5, 4.0})
	ts := &TimeSeries{}
	for i := 0; i < 24; i++ {
		t := float64(i) * 5
		ts.Add(t, 1200+400*math.Sin(float64(i)/3))
	}
	return []Series{
		SeriesFromCDF("solve ms", cdf, 8),
		SeriesFromTimeSeries("rate kbps", ts, 12),
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n-- got --\n%s\n-- want --\n%s", name, got, want)
	}
}

func TestWriteSeriesCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, goldenSeries()...); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "series.csv.golden", buf.Bytes())
}

func TestTableGolden(t *testing.T) {
	tbl := NewTable("Table I: mean bitrate (Kbps)", "FLARE", "FESTIVE", "Google")
	tbl.AddRow("static", "1412", "1187", "1254")
	tbl.AddFloatRow("mobility", "%.1f", 1210.4, 988.7, 1003.2)
	tbl.AddRow("cyclic", "1108") // short row: missing cells render empty
	checkGolden(t, "table.txt.golden", []byte(tbl.String()))
}

func TestAsciiPlotGolden(t *testing.T) {
	checkGolden(t, "ascii.txt.golden", []byte(AsciiPlot(48, 10, goldenSeries()...)))
}

func TestAsciiPlotEmpty(t *testing.T) {
	if got := AsciiPlot(40, 8); got != "(no data)\n" {
		t.Fatalf("empty plot = %q", got)
	}
}
