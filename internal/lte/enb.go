package lte

import (
	"fmt"

	"github.com/flare-sim/flare/internal/sim"
)

// ENodeB is the cell: it owns the bearers, drives the channel, and runs
// the scheduler once per TTI. It is single-goroutine by design — the
// simulation kernel calls RunTTI from its loop.
type ENodeB struct {
	channel  Channel
	sched    Scheduler
	bearers  []*Bearer
	byID     map[int]*Bearer
	rbgSizes []int

	// flowStates is a persistent per-bearer scratch slice, parallel to
	// bearers: the Bearer pointer and index are written once at AddBearer
	// time, so the per-TTI refresh only touches the volatile fields
	// (iTbs, backlog, grant) and only for backlogged bearers. active is
	// the subset handed to the scheduler, rebuilt each TTI.
	flowStates []FlowState
	active     []*FlowState
	// served accumulates the bits served per bearer within a TTI; each
	// entry is re-zeroed as it is consumed by the tick loop, so the
	// slice never needs a bulk memclear.
	served []float64

	// pool and par, when set (SetWorkerPool), split RunTTI's per-bearer
	// phases across a worker pool with bearer-ID-ordered folds; nil
	// keeps the sequential path. See parallel.go.
	pool *sim.WorkerPool
	par  *enbParallel
}

// NewENodeB creates a cell with the given channel and scheduler.
func NewENodeB(ch Channel, sched Scheduler) *ENodeB {
	return &ENodeB{
		channel:  ch,
		sched:    sched,
		byID:     make(map[int]*Bearer),
		rbgSizes: RBGSizes(),
	}
}

// SetScheduler swaps the scheduler, e.g. between experiment arms.
func (e *ENodeB) SetScheduler(s Scheduler) { e.sched = s }

// Scheduler returns the active scheduler.
func (e *ENodeB) Scheduler() Scheduler { return e.sched }

// Channel returns the channel model.
func (e *ENodeB) Channel() Channel { return e.channel }

// AddBearer registers a bearer with the cell and returns it. The UE
// index must be valid for the channel model. The bearer is indexed by ID
// so BearerByID (the PCEF pathway, hit on every GBR update) stays O(1);
// on a duplicate ID the first registration wins, preserving the old
// linear-scan semantics.
func (e *ENodeB) AddBearer(b *Bearer) (*Bearer, error) {
	if b.UE < 0 || b.UE >= e.channel.NumUEs() {
		return nil, fmt.Errorf("lte: bearer %d references UE %d, channel has %d UEs", b.ID, b.UE, e.channel.NumUEs())
	}
	idx := len(e.bearers)
	e.bearers = append(e.bearers, b)
	e.flowStates = append(e.flowStates, FlowState{Bearer: b, idx: idx})
	e.served = append(e.served, 0)
	if e.byID == nil {
		e.byID = make(map[int]*Bearer)
	}
	if _, dup := e.byID[b.ID]; !dup {
		e.byID[b.ID] = b
	}
	return b, nil
}

// Bearers returns the registered bearers. The slice must not be modified.
func (e *ENodeB) Bearers() []*Bearer { return e.bearers }

// BearerByID returns the bearer with the given ID, or nil. O(1) via the
// index maintained by AddBearer.
func (e *ENodeB) BearerByID(id int) *Bearer {
	return e.byID[id]
}

// SetGBR updates a bearer's guaranteed bit rate — the PCEF/Continuous GBR
// Updater pathway.
func (e *ENodeB) SetGBR(bearerID int, gbrBits float64) error {
	b := e.BearerByID(bearerID)
	if b == nil {
		return fmt.Errorf("lte: no bearer with ID %d", bearerID)
	}
	b.GBRBits = gbrBits
	return nil
}

// SetMBR updates a bearer's maximum bit rate.
func (e *ENodeB) SetMBR(bearerID int, mbrBits float64) error {
	b := e.BearerByID(bearerID)
	if b == nil {
		return fmt.Errorf("lte: no bearer with ID %d", bearerID)
	}
	b.MBRBits = mbrBits
	return nil
}

// TTIResult summarises one TTI for the caller.
type TTIResult struct {
	// ServedBytes is the total bytes drained across all bearers.
	ServedBytes int64
	// UsedRBs is the number of RBs granted to flows with backlog.
	UsedRBs int
}

// RunTTI advances the channel, schedules the TTI, drains the bearer
// queues, and updates per-bearer accounting. It must be called exactly
// once per TTI in increasing TTI order. With a worker pool attached
// (SetWorkerPool) the per-bearer phases run concurrently with
// bearer-ID-ordered folds; results are byte-identical either way.
func (e *ENodeB) RunTTI(tti int64) TTIResult {
	if e.pool != nil {
		return e.runTTIParallel(tti)
	}
	//flare:allow hotpath frontier: the Channel impls (Static/Cyclic/Trace/MobilityChannel) update preallocated per-UE state in place; the flarebench TTI-rate and allocs/op gates cover them
	e.channel.Update(tti)

	// Build the schedulable set: bearers with backlog. Idle bearers'
	// FlowStates are not touched at all — only the volatile fields of
	// active flows are refreshed (Bearer and idx are fixed at AddBearer).
	e.active = e.active[:0]
	for i, b := range e.bearers {
		if b.queue <= 0 {
			continue
		}
		f := &e.flowStates[i]
		//flare:allow hotpath frontier: Channel.ITbs impls are single array reads on all four in-tree channels; the flarebench gates cover them
		f.ITbs = e.channel.ITbs(b.UE)
		f.BitsPerRB = BitsPerRB(f.ITbs)
		f.remaining = b.queue
		f.granted = 0
		e.active = append(e.active, f)
	}

	var res TTIResult
	if len(e.active) > 0 {
		//flare:allow hotpath frontier: the Scheduler impls (PF/PrioritySet/TwoPhaseGBR/Sliced) allocate only scheduler-owned scratch reused across TTIs; the flarebench gates cover them
		e.sched.Allocate(tti, e.active, e.rbgSizes)
		for _, f := range e.active {
			if f.granted == 0 {
				continue
			}
			capBytes := int64(TBSBytes(f.ITbs, f.granted))
			served := f.Bearer.serve(capBytes, f.granted)
			res.ServedBytes += served
			res.UsedRBs += f.granted
			e.served[f.idx] = float64(served * 8)
		}
	}

	// Throughput averages decay every TTI for every bearer; re-zero each
	// served entry as it is consumed so the next TTI starts clean.
	for i, b := range e.bearers {
		b.tick(e.served[i])
		e.served[i] = 0
	}
	return res
}

// Idle reports whether no bearer has queued bytes — together with an
// inert transport layer and an empty event horizon, the condition under
// which the kernel may fast-forward past this cell's TTIs.
func (e *ENodeB) Idle() bool {
	for _, b := range e.bearers {
		if b.queue > 0 {
			return false
		}
	}
	return true
}

// CanFastForward reports whether the cell's channel model supports
// byte-exact catch-up over skipped TTIs.
func (e *ENodeB) CanFastForward() bool {
	_, ok := e.channel.(ChannelCatchUp)
	return ok
}

// FastForwardIdle replays the effect of RunTTI for every TTI in
// (fromTTI, toTTI) exclusive, under the precondition that the cell was
// idle for the whole span (no backlog, so no scheduling and no service).
// The channel catches up its internal state (including RNG consumption)
// and every bearer replays its idle accounting decay. The kernel calls
// RunTTI(toTTI) itself on the wake TTI. Results are byte-identical to
// the naive per-TTI loop.
func (e *ENodeB) FastForwardIdle(fromTTI, toTTI int64) {
	if cc, ok := e.channel.(ChannelCatchUp); ok {
		//flare:allow hotpath frontier: CatchUp runs once per idle span, not per TTI, and the in-tree impls advance RNG state in place; the kernel-jump equivalence tests cover it
		cc.CatchUp(fromTTI, toTTI)
	}
	k := toTTI - fromTTI - 1
	if k <= 0 {
		return
	}
	for _, b := range e.bearers {
		b.tickIdle(k)
	}
}
