package lte

import "fmt"

// ENodeB is the cell: it owns the bearers, drives the channel, and runs
// the scheduler once per TTI. It is single-goroutine by design — the
// simulation kernel calls RunTTI from its loop.
type ENodeB struct {
	channel  Channel
	sched    Scheduler
	bearers  []*Bearer
	rbgSizes []int

	// scratch buffers reused across TTIs to avoid per-TTI allocation.
	flowStates []FlowState
	flowPtrs   []*FlowState
	served     []float64
}

// NewENodeB creates a cell with the given channel and scheduler.
func NewENodeB(ch Channel, sched Scheduler) *ENodeB {
	return &ENodeB{
		channel:  ch,
		sched:    sched,
		rbgSizes: RBGSizes(),
	}
}

// SetScheduler swaps the scheduler, e.g. between experiment arms.
func (e *ENodeB) SetScheduler(s Scheduler) { e.sched = s }

// Scheduler returns the active scheduler.
func (e *ENodeB) Scheduler() Scheduler { return e.sched }

// Channel returns the channel model.
func (e *ENodeB) Channel() Channel { return e.channel }

// AddBearer registers a bearer with the cell and returns it. The UE
// index must be valid for the channel model.
func (e *ENodeB) AddBearer(b *Bearer) (*Bearer, error) {
	if b.UE < 0 || b.UE >= e.channel.NumUEs() {
		return nil, fmt.Errorf("lte: bearer %d references UE %d, channel has %d UEs", b.ID, b.UE, e.channel.NumUEs())
	}
	e.bearers = append(e.bearers, b)
	return b, nil
}

// Bearers returns the registered bearers. The slice must not be modified.
func (e *ENodeB) Bearers() []*Bearer { return e.bearers }

// BearerByID returns the bearer with the given ID, or nil.
func (e *ENodeB) BearerByID(id int) *Bearer {
	for _, b := range e.bearers {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// SetGBR updates a bearer's guaranteed bit rate — the PCEF/Continuous GBR
// Updater pathway.
func (e *ENodeB) SetGBR(bearerID int, gbrBits float64) error {
	b := e.BearerByID(bearerID)
	if b == nil {
		return fmt.Errorf("lte: no bearer with ID %d", bearerID)
	}
	b.GBRBits = gbrBits
	return nil
}

// SetMBR updates a bearer's maximum bit rate.
func (e *ENodeB) SetMBR(bearerID int, mbrBits float64) error {
	b := e.BearerByID(bearerID)
	if b == nil {
		return fmt.Errorf("lte: no bearer with ID %d", bearerID)
	}
	b.MBRBits = mbrBits
	return nil
}

// TTIResult summarises one TTI for the caller.
type TTIResult struct {
	// ServedBytes is the total bytes drained across all bearers.
	ServedBytes int64
	// UsedRBs is the number of RBs granted to flows with backlog.
	UsedRBs int
}

// RunTTI advances the channel, schedules the TTI, drains the bearer
// queues, and updates per-bearer accounting. It must be called exactly
// once per TTI in increasing TTI order.
func (e *ENodeB) RunTTI(tti int64) TTIResult {
	e.channel.Update(tti)

	if cap(e.flowStates) < len(e.bearers) {
		e.flowStates = make([]FlowState, len(e.bearers))
		e.flowPtrs = make([]*FlowState, 0, len(e.bearers))
		e.served = make([]float64, len(e.bearers))
	}
	e.flowStates = e.flowStates[:len(e.bearers)]
	e.flowPtrs = e.flowPtrs[:0]
	e.served = e.served[:len(e.bearers)]
	for i := range e.served {
		e.served[i] = 0
	}

	// Build the schedulable set: bearers with backlog.
	for i, b := range e.bearers {
		iTbs := e.channel.ITbs(b.UE)
		e.flowStates[i] = FlowState{
			Bearer:    b,
			ITbs:      iTbs,
			BitsPerRB: BitsPerRB(iTbs),
			remaining: b.Backlog(),
			idx:       i,
		}
		if b.Backlog() > 0 {
			e.flowPtrs = append(e.flowPtrs, &e.flowStates[i])
		}
	}

	var res TTIResult
	if len(e.flowPtrs) > 0 {
		e.sched.Allocate(tti, e.flowPtrs, e.rbgSizes)
		for _, f := range e.flowPtrs {
			if f.granted == 0 {
				continue
			}
			capBytes := int64(TBSBytes(f.ITbs, f.granted))
			served := f.Bearer.serve(capBytes, f.granted)
			res.ServedBytes += served
			res.UsedRBs += f.granted
			e.served[f.idx] = float64(served * 8)
		}
	}

	// Throughput averages decay every TTI for every bearer.
	for i, b := range e.bearers {
		b.tick(e.served[i])
	}
	return res
}
