package lte

import "github.com/flare-sim/flare/internal/sim"

// Intra-cell parallelism: RunTTI's per-bearer work split across a
// worker pool with every observable reduction folded in bearer-ID
// order, so a parallel TTI is byte-identical to a sequential one.
//
// The TTI decomposes into phases with different sharing structure:
//
//	channel update   — parallel per UE when the channel implements
//	                   RangeUpdater (pure function of the TTI per UE);
//	                   sequential otherwise (the mobility random walk
//	                   consumes a shared RNG stream in UE order).
//	active-set build — volatile FlowState refresh is per-bearer
//	                   independent (parallel, via a per-bearer mask);
//	                   the compaction into the scheduler's active slice
//	                   is a sequential scan in bearer order, so the
//	                   scheduler sees exactly the sequential slice.
//	Allocate         — inherently sequential: every scheduler here is a
//	                   sticky argmax whose pick at RBG k depends on the
//	                   grants of RBGs 0..k-1.
//	drain            — Bearer.drain touches only its own bearer
//	                   (parallel); the delivery callbacks (transport
//	                   ACKs → player → driver, which may draw RNG) fire
//	                   in the sequential fold below, in bearer-ID order
//	                   — the same order serve interleaves them in the
//	                   sequential loop.
//	decay            — Bearer.tick is pure per-bearer accounting
//	                   (parallel).
type enbParallel struct {
	chanPhase  enbChanPhase
	buildPhase enbBuildPhase
	drainPhase enbDrainPhase
	decayPhase enbDecayPhase
	activeMask []bool
}

// SetWorkerPool attaches (or with nil detaches) a worker pool to the
// cell. With a pool of two or more workers RunTTI splits its
// per-bearer phases across the pool; results are byte-identical to the
// sequential path. The pool must not be shared with another ENodeB
// that runs concurrently.
func (e *ENodeB) SetWorkerPool(p *sim.WorkerPool) {
	if p == nil || p.Workers() == 1 {
		e.pool = nil
		e.par = nil
		return
	}
	e.pool = p
	e.par = &enbParallel{
		chanPhase:  enbChanPhase{e: e},
		buildPhase: enbBuildPhase{e: e},
		drainPhase: enbDrainPhase{e: e},
		decayPhase: enbDecayPhase{e: e},
	}
	if ru, ok := e.channel.(RangeUpdater); ok {
		e.par.chanPhase.ru = ru
	}
}

// enbChanPhase fans the channel update out over UE ranges.
type enbChanPhase struct {
	e   *ENodeB
	ru  RangeUpdater
	tti int64
}

func (p *enbChanPhase) RunRange(lo, hi int) { p.ru.UpdateRange(p.tti, lo, hi) }

// enbBuildPhase refreshes the volatile FlowState fields of backlogged
// bearers and marks them in activeMask. Writes are per-bearer disjoint;
// the sequential compaction scan in runTTIParallel turns the mask into
// the scheduler's active slice in bearer order.
type enbBuildPhase struct{ e *ENodeB }

func (p *enbBuildPhase) RunRange(lo, hi int) {
	e := p.e
	for i := lo; i < hi; i++ {
		b := e.bearers[i]
		if b.queue <= 0 {
			e.par.activeMask[i] = false
			continue
		}
		f := &e.flowStates[i]
		f.ITbs = e.channel.ITbs(b.UE)
		f.BitsPerRB = BitsPerRB(f.ITbs)
		f.remaining = b.queue
		f.granted = 0
		e.par.activeMask[i] = true
	}
}

// enbDrainPhase drains granted bearers without firing callbacks; the
// served byte counts land in FlowState.served for the sequential fold.
type enbDrainPhase struct{ e *ENodeB }

func (p *enbDrainPhase) RunRange(lo, hi int) {
	for _, f := range p.e.active[lo:hi] {
		if f.granted == 0 {
			f.served = 0
			continue
		}
		capBytes := int64(TBSBytes(f.ITbs, f.granted))
		f.served = f.Bearer.drain(capBytes, f.granted)
	}
}

// enbDecayPhase runs the per-TTI throughput/credit decay — pure
// per-bearer math, with each served entry re-zeroed as it is consumed
// exactly like the sequential loop.
type enbDecayPhase struct{ e *ENodeB }

func (p *enbDecayPhase) RunRange(lo, hi int) {
	e := p.e
	for i := lo; i < hi; i++ {
		e.bearers[i].tick(e.served[i])
		e.served[i] = 0
	}
}

// runTTIParallel is RunTTI with the per-bearer phases split across the
// attached pool. Byte-identical to the sequential path: every
// cross-bearer reduction (active-set compaction, served/RB sums,
// delivery callbacks) happens below, in bearer-ID order.
func (e *ENodeB) runTTIParallel(tti int64) TTIResult {
	if e.par.chanPhase.ru != nil {
		e.par.chanPhase.tti = tti
		//flare:allow hotpath frontier: Channel.NumUEs impls return a stored length; the flarebench gates cover them
		n := e.channel.NumUEs()
		e.pool.Do(n, &e.par.chanPhase)
	} else {
		//flare:allow hotpath frontier: the Channel impls (Static/Cyclic/Trace/MobilityChannel) update preallocated per-UE state in place; the flarebench TTI-rate and allocs/op gates cover them
		e.channel.Update(tti)
	}

	if len(e.par.activeMask) != len(e.bearers) {
		e.par.activeMask = make([]bool, len(e.bearers))
	}
	e.pool.Do(len(e.bearers), &e.par.buildPhase)
	e.active = e.active[:0]
	for i, on := range e.par.activeMask {
		if on {
			e.active = append(e.active, &e.flowStates[i])
		}
	}

	var res TTIResult
	if len(e.active) > 0 {
		//flare:allow hotpath frontier: the Scheduler impls (PF/PrioritySet/TwoPhaseGBR/Sliced) allocate only scheduler-owned scratch reused across TTIs; the flarebench gates cover them
		e.sched.Allocate(tti, e.active, e.rbgSizes)
		e.pool.Do(len(e.active), &e.par.drainPhase)
		// Delivery fold: bearer-ID order (active is built in bearer
		// order), so ACK scheduling and any driver RNG draws happen in
		// exactly the sequential sequence.
		for _, f := range e.active {
			if f.granted == 0 {
				continue
			}
			res.ServedBytes += f.served
			res.UsedRBs += f.granted
			e.served[f.idx] = float64(f.served * 8)
			if f.served > 0 {
				if cb := f.Bearer.OnDeliver; cb != nil {
					cb(f.served)
				}
			}
		}
	}

	e.pool.Do(len(e.bearers), &e.par.decayPhase)
	return res
}
