// Package lte implements the radio substrate of the FLARE reproduction: a
// single-cell LTE downlink at TTI (1 ms) granularity with 3GPP-style
// transport-block sizing, per-UE channel models (static, cyclic, trace,
// and random-waypoint mobility), and the three schedulers the paper's
// evaluation depends on (proportional fair, the ns-3 Priority Set
// Scheduler with GBR/MBR support, and FLARE's two-phase GBR scheduler).
//
// The paper's testbed is a JL-620 femtocell: 10 MHz FDD, 50 resource
// blocks (RBs) per 1 ms TTI, with the transport block size (TBS)
// controlled through the iTbs index. We reproduce that environment in
// software. TBS values are derived from a per-iTbs spectral-efficiency
// curve calibrated so that iTbs=2 yields ~4.4 Mbit/s of cell capacity at
// 50 RBs — the operating point implied by the throughput sums in the
// paper's Table I — rising to ~36 Mbit/s at iTbs=26 (the realistic 64-QAM
// ceiling for 10 MHz). The curve is geometric in between, matching the
// roughly exponential growth of the 36.213 TBS table. Only the shape of
// this mapping (monotone, wide dynamic range) matters for the
// experiments; DESIGN.md documents the substitution.
package lte

import "math"

const (
	// NumRB is the number of downlink resource blocks per TTI (10 MHz).
	NumRB = 50
	// RBGSize is the resource-block-group width for 10 MHz (36.213).
	RBGSize = 3
	// NumRBG is the number of RBGs per TTI: 16 groups of 3 RBs and one
	// final group of 2 (16*3 + 2 = 50).
	NumRBG = 17
	// MaxITbs is the largest valid iTbs index.
	MaxITbs = 26
	// MinITbs is the smallest valid iTbs index.
	MinITbs = 0
	// TTIsPerSecond converts per-TTI quantities to per-second rates.
	TTIsPerSecond = 1000
)

// perRBBits[i] is the number of bits carried by one resource block in one
// TTI at iTbs index i. See the package comment for the calibration.
var perRBBits = buildPerRBBits()

func buildPerRBBits() [MaxITbs + 1]float64 {
	// Anchors at 50 RBs: f(0) = 1.4 Mbit/s (the 36.213 QPSK floor),
	// f(2) = 4.4 Mbit/s (Table I operating point), f(26) = 36 Mbit/s.
	// Piecewise geometric between anchors: the real TBS table is much
	// steeper at the bottom than at the top.
	const (
		bitsAt0  = 1.4e6 / TTIsPerSecond / NumRB // per RB per TTI
		bitsAt2  = 4.4e6 / TTIsPerSecond / NumRB
		bitsAt26 = 36e6 / TTIsPerSecond / NumRB
	)
	growLow := math.Pow(bitsAt2/bitsAt0, 1.0/2.0)
	growHigh := math.Pow(bitsAt26/bitsAt2, 1.0/24.0)
	var tbl [MaxITbs + 1]float64
	for i := range tbl {
		if i <= 2 {
			tbl[i] = bitsAt0 * math.Pow(growLow, float64(i))
		} else {
			tbl[i] = bitsAt2 * math.Pow(growHigh, float64(i-2))
		}
	}
	return tbl
}

// RBGSizes returns the RB width of each of the NumRBG resource block
// groups. The slice is freshly allocated; callers may modify it.
func RBGSizes() []int {
	sizes := make([]int, NumRBG)
	total := 0
	for i := range sizes {
		sizes[i] = RBGSize
		if total+RBGSize > NumRB {
			sizes[i] = NumRB - total
		}
		total += sizes[i]
	}
	return sizes
}

// ClampITbs limits an iTbs index to the valid range [MinITbs, MaxITbs].
func ClampITbs(i int) int {
	if i < MinITbs {
		return MinITbs
	}
	if i > MaxITbs {
		return MaxITbs
	}
	return i
}

// BitsPerRB returns the number of bits one RB carries in one TTI at the
// given iTbs index. Out-of-range indices are clamped.
func BitsPerRB(iTbs int) float64 {
	return perRBBits[ClampITbs(iTbs)]
}

// TBSBits returns the transport block size in bits for nRB resource
// blocks at the given iTbs. Non-positive nRB yields 0.
func TBSBits(iTbs, nRB int) int {
	if nRB <= 0 {
		return 0
	}
	if nRB > NumRB {
		nRB = NumRB
	}
	return int(BitsPerRB(iTbs) * float64(nRB))
}

// TBSBytes returns the transport block size in bytes for nRB resource
// blocks at the given iTbs.
func TBSBytes(iTbs, nRB int) int {
	return TBSBits(iTbs, nRB) / 8
}

// CellRateBps returns the full-cell downlink rate in bits per second at
// the given iTbs — i.e., the rate a single UE sees if granted all RBs.
func CellRateBps(iTbs int) float64 {
	return BitsPerRB(iTbs) * NumRB * TTIsPerSecond
}

// sinrRange maps the iTbs dynamic range onto an SINR axis for the
// mobility channel: iTbs 0 at about -4 dB up to iTbs 26 at about 22 dB,
// the usual LTE link-adaptation span.
const (
	minSINRdB = -4.0
	maxSINRdB = 22.0
)

// ITbsForSINR returns the largest iTbs supportable at the given SINR in
// dB, using a linear SINR-to-index mapping across the LTE link
// adaptation range. SINRs below the floor map to iTbs 0 (the femtocell
// always transmits at its most robust MCS rather than dropping the UE).
func ITbsForSINR(sinrDB float64) int {
	frac := (sinrDB - minSINRdB) / (maxSINRdB - minSINRdB)
	return ClampITbs(int(math.Floor(frac * MaxITbs)))
}
