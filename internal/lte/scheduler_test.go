package lte

import (
	"math"
	"testing"
	"testing/quick"
)

// makeFlows builds flow states with the given backlogs at a common iTbs.
func makeFlows(iTbs int, backlogs ...int64) ([]*FlowState, []*Bearer) {
	bearers := make([]*Bearer, len(backlogs))
	flows := make([]*FlowState, len(backlogs))
	states := make([]FlowState, len(backlogs))
	for i, bl := range backlogs {
		bearers[i] = &Bearer{ID: i, UE: i, Class: ClassData}
		bearers[i].Enqueue(bl)
		states[i] = FlowState{
			Bearer:    bearers[i],
			ITbs:      iTbs,
			BitsPerRB: BitsPerRB(iTbs),
			remaining: bl,
			idx:       i,
		}
		flows[i] = &states[i]
	}
	return flows, bearers
}

func totalRBs(flows []*FlowState) int {
	sum := 0
	for _, f := range flows {
		sum += f.Granted()
	}
	return sum
}

func TestPFAllocatesAllRBsUnderLoad(t *testing.T) {
	flows, _ := makeFlows(10, 1<<20, 1<<20, 1<<20)
	PFScheduler{}.Allocate(0, flows, RBGSizes())
	if got := totalRBs(flows); got != NumRB {
		t.Fatalf("allocated %d RBs, want all %d", got, NumRB)
	}
}

func TestPFStopsWhenBacklogCovered(t *testing.T) {
	// A tiny backlog should not soak up the whole band.
	flows, _ := makeFlows(10, 100)
	PFScheduler{}.Allocate(0, flows, RBGSizes())
	granted := flows[0].Granted()
	if granted == 0 {
		t.Fatal("flow with backlog got nothing")
	}
	// 100 bytes fits in one RBG at iTbs 10.
	if granted > 2*RBGSize {
		t.Fatalf("tiny backlog got %d RBs", granted)
	}
}

func TestPFNoBacklogNoAllocation(t *testing.T) {
	flows, _ := makeFlows(10, 0, 0)
	PFScheduler{}.Allocate(0, flows, RBGSizes())
	if got := totalRBs(flows); got != 0 {
		t.Fatalf("allocated %d RBs to empty queues", got)
	}
}

func TestPFLongRunFairnessEqualChannels(t *testing.T) {
	// Two greedy flows at the same MCS should converge to ~equal RBs.
	ch := NewUniformStaticChannel(2, 10)
	enb := NewENodeB(ch, PFScheduler{})
	var bearers []*Bearer
	for i := 0; i < 2; i++ {
		b := &Bearer{ID: i, UE: i, Class: ClassData}
		if _, err := enb.AddBearer(b); err != nil {
			t.Fatal(err)
		}
		bearers = append(bearers, b)
	}
	for tti := int64(0); tti < 5000; tti++ {
		for _, b := range bearers {
			if b.Backlog() < 1<<16 {
				b.Enqueue(1 << 16)
			}
		}
		enb.RunTTI(tti)
	}
	s0 := bearers[0].TotalStats()
	s1 := bearers[1].TotalStats()
	ratio := float64(s0.Bytes) / float64(s1.Bytes)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("PF unfair between equal flows: %d vs %d bytes", s0.Bytes, s1.Bytes)
	}
}

func TestPFRespectsMBR(t *testing.T) {
	ch := NewUniformStaticChannel(2, 10)
	enb := NewENodeB(ch, PFScheduler{})
	capped := &Bearer{ID: 0, UE: 0, Class: ClassVideo, MBRBits: 500_000}
	free := &Bearer{ID: 1, UE: 1, Class: ClassData}
	for _, b := range []*Bearer{capped, free} {
		if _, err := enb.AddBearer(b); err != nil {
			t.Fatal(err)
		}
	}
	for tti := int64(0); tti < 10000; tti++ {
		capped.Enqueue(1 << 16)
		free.Enqueue(1 << 16)
		enb.RunTTI(tti)
	}
	gotBits := float64(capped.TotalStats().Bytes) * 8 / 10 // bits/s over 10 s
	if gotBits > 650_000 {
		t.Fatalf("MBR-capped flow got %v bits/s, cap 500k", gotBits)
	}
	if gotBits < 300_000 {
		t.Fatalf("MBR-capped flow starved at %v bits/s", gotBits)
	}
}

func TestPSSMeetsGBRUnderContention(t *testing.T) {
	// One GBR video flow and three greedy data flows; PSS must hold the
	// video flow near its GBR while PF alone would give it ~1/4.
	ch := NewUniformStaticChannel(4, 10) // cell rate ~9.0 Mbps at iTbs 10
	enb := NewENodeB(ch, PrioritySetScheduler{})
	video := &Bearer{ID: 0, UE: 0, Class: ClassVideo, GBRBits: 4e6}
	if _, err := enb.AddBearer(video); err != nil {
		t.Fatal(err)
	}
	var data []*Bearer
	for i := 1; i < 4; i++ {
		b := &Bearer{ID: i, UE: i, Class: ClassData}
		if _, err := enb.AddBearer(b); err != nil {
			t.Fatal(err)
		}
		data = append(data, b)
	}
	const ttis = 20000
	for tti := int64(0); tti < ttis; tti++ {
		video.Enqueue(1 << 16)
		for _, b := range data {
			b.Enqueue(1 << 16)
		}
		enb.RunTTI(tti)
	}
	videoBits := float64(video.TotalStats().Bytes) * 8 / (ttis / 1000)
	if videoBits < 3.5e6 {
		t.Fatalf("PSS failed to protect GBR: video got %v bits/s, GBR 4e6", videoBits)
	}
	// Data flows should share what's left, not starve completely.
	for _, b := range data {
		if b.TotalStats().Bytes == 0 {
			t.Fatal("PSS starved a data flow entirely")
		}
	}
}

func TestTwoPhaseGBRProtectsVideoAndSharesRest(t *testing.T) {
	ch := NewUniformStaticChannel(3, 10)
	enb := NewENodeB(ch, TwoPhaseGBRScheduler{})
	video := &Bearer{ID: 0, UE: 0, Class: ClassVideo, GBRBits: 3e6}
	d1 := &Bearer{ID: 1, UE: 1, Class: ClassData}
	d2 := &Bearer{ID: 2, UE: 2, Class: ClassData}
	for _, b := range []*Bearer{video, d1, d2} {
		if _, err := enb.AddBearer(b); err != nil {
			t.Fatal(err)
		}
	}
	const ttis = 20000
	for tti := int64(0); tti < ttis; tti++ {
		video.Enqueue(1 << 16)
		d1.Enqueue(1 << 16)
		d2.Enqueue(1 << 16)
		enb.RunTTI(tti)
	}
	secs := float64(ttis) / 1000
	videoBits := float64(video.TotalStats().Bytes) * 8 / secs
	if videoBits < 2.8e6 {
		t.Fatalf("two-phase GBR under-served video: %v bits/s, GBR 3e6", videoBits)
	}
	// Data flows split the remainder roughly evenly.
	b1 := float64(d1.TotalStats().Bytes)
	b2 := float64(d2.TotalStats().Bytes)
	if b1 == 0 || b2 == 0 {
		t.Fatal("data flow starved")
	}
	if r := b1 / b2; r < 0.8 || r > 1.25 {
		t.Fatalf("data flows unbalanced: %v vs %v", b1, b2)
	}
}

func TestTwoPhaseGBRIdleVideoLeavesRoomForData(t *testing.T) {
	// Video bearer with GBR but no backlog: data must get the full cell.
	ch := NewUniformStaticChannel(2, 10)
	enb := NewENodeB(ch, TwoPhaseGBRScheduler{})
	video := &Bearer{ID: 0, UE: 0, Class: ClassVideo, GBRBits: 5e6}
	data := &Bearer{ID: 1, UE: 1, Class: ClassData}
	for _, b := range []*Bearer{video, data} {
		if _, err := enb.AddBearer(b); err != nil {
			t.Fatal(err)
		}
	}
	const ttis = 5000
	for tti := int64(0); tti < ttis; tti++ {
		data.Enqueue(1 << 16)
		enb.RunTTI(tti)
	}
	dataBits := float64(data.TotalStats().Bytes) * 8 / (ttis / 1000)
	cell := CellRateBps(10)
	if dataBits < 0.95*cell {
		t.Fatalf("data only got %v of %v bits/s with idle video", dataBits, cell)
	}
}

func TestSlicedSchedulerDoesNotBorrow(t *testing.T) {
	// Video slice 60%, but no video backlog: those RBGs idle (the AVIS
	// under-utilisation the paper criticises).
	ch := NewUniformStaticChannel(2, 10)
	enb := NewENodeB(ch, SlicedScheduler{VideoFraction: 0.6})
	video := &Bearer{ID: 0, UE: 0, Class: ClassVideo}
	data := &Bearer{ID: 1, UE: 1, Class: ClassData}
	for _, b := range []*Bearer{video, data} {
		if _, err := enb.AddBearer(b); err != nil {
			t.Fatal(err)
		}
	}
	const ttis = 5000
	for tti := int64(0); tti < ttis; tti++ {
		data.Enqueue(1 << 16)
		enb.RunTTI(tti)
	}
	dataBits := float64(data.TotalStats().Bytes) * 8 / (ttis / 1000)
	cell := CellRateBps(10)
	// Data is confined to ~40% of the band even though video is idle.
	if dataBits > 0.5*cell {
		t.Fatalf("sliced scheduler borrowed idle video RBs: data %v of %v", dataBits, cell)
	}
	if dataBits < 0.3*cell {
		t.Fatalf("data slice under-served: %v of %v", dataBits, cell)
	}
}

func TestSchedulersNeverOverAllocateProperty(t *testing.T) {
	scheds := []Scheduler{
		PFScheduler{},
		PrioritySetScheduler{},
		TwoPhaseGBRScheduler{},
		SlicedScheduler{VideoFraction: 0.5},
	}
	check := func(b0, b1, b2 uint16, iTbsRaw uint8) bool {
		iTbs := int(iTbsRaw) % (MaxITbs + 1)
		for _, s := range scheds {
			flows, _ := makeFlows(iTbs, int64(b0), int64(b1), int64(b2))
			flows[0].Bearer.Class = ClassVideo
			flows[0].Bearer.GBRBits = 1e6
			s.Allocate(0, flows, RBGSizes())
			if totalRBs(flows) > NumRB {
				return false
			}
			for _, f := range flows {
				if f.Granted() < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPFMetricFavorsBetterChannel(t *testing.T) {
	flows, _ := makeFlows(5, 1<<20)
	good, _ := makeFlows(20, 1<<20)
	// Same average throughput, better channel wins.
	if flows[0].pfMetric() >= good[0].pfMetric() {
		t.Fatal("PF metric should favor the better channel at equal average")
	}
}

func TestBearerEnqueueDropTail(t *testing.T) {
	b := &Bearer{ID: 0, QueueLimit: 100}
	if got := b.Enqueue(60); got != 60 {
		t.Fatalf("accepted %d, want 60", got)
	}
	if got := b.Enqueue(60); got != 40 {
		t.Fatalf("accepted %d beyond limit, want 40", got)
	}
	if b.Backlog() != 100 {
		t.Fatalf("backlog = %d, want 100", b.Backlog())
	}
	if got := b.Enqueue(-5); got != 0 {
		t.Fatalf("negative enqueue accepted %d", got)
	}
}

func TestBearerCollectWindowResets(t *testing.T) {
	b := &Bearer{ID: 0}
	b.Enqueue(1000)
	b.serve(400, 3)
	w := b.CollectWindow()
	if w.Bytes != 400 || w.RBs != 3 {
		t.Fatalf("window = %+v", w)
	}
	w = b.CollectWindow()
	if w.Bytes != 0 || w.RBs != 0 {
		t.Fatalf("window not reset: %+v", w)
	}
	if tot := b.TotalStats(); tot.Bytes != 400 || tot.RBs != 3 {
		t.Fatalf("totals wrong: %+v", tot)
	}
}

func TestBearerServeBoundedByQueue(t *testing.T) {
	b := &Bearer{ID: 0}
	b.Enqueue(100)
	var delivered int64
	b.OnDeliver = func(n int64) { delivered += n }
	served := b.serve(1000, 5)
	if served != 100 {
		t.Fatalf("served %d, want 100", served)
	}
	if delivered != 100 {
		t.Fatalf("OnDeliver saw %d, want 100", delivered)
	}
	if b.Backlog() != 0 {
		t.Fatalf("backlog = %d after full drain", b.Backlog())
	}
}

func TestBearerTputAveragesConverge(t *testing.T) {
	b := &Bearer{ID: 0}
	// Serve a steady 1000 bits per TTI -> 1 Mbps.
	for i := 0; i < 2000; i++ {
		b.tick(1000)
	}
	if math.Abs(b.AvgTputBits()-1e6) > 1e4 {
		t.Fatalf("avgTput = %v, want ~1e6", b.AvgTputBits())
	}
	if math.Abs(b.FastTputBits()-1e6) > 1e4 {
		t.Fatalf("fastTput = %v, want ~1e6", b.FastTputBits())
	}
}

func TestBearerClassString(t *testing.T) {
	if ClassVideo.String() != "video" || ClassData.String() != "data" {
		t.Fatal("class strings wrong")
	}
	if BearerClass(0).String() != "BearerClass(0)" {
		t.Fatal("unknown class string wrong")
	}
}

func TestMBRTokenBucketStrictCap(t *testing.T) {
	// With a strict token bucket, delivered throughput must never
	// average above the MBR even when the cell has spare capacity.
	ch := NewUniformStaticChannel(1, 20) // ~22 Mbps cell
	enb := NewENodeB(ch, PFScheduler{})
	b := &Bearer{ID: 0, UE: 0, Class: ClassVideo, MBRBits: 2e6}
	if _, err := enb.AddBearer(b); err != nil {
		t.Fatal(err)
	}
	const ttis = 20000
	for tti := int64(0); tti < ttis; tti++ {
		b.Enqueue(1 << 16)
		enb.RunTTI(tti)
	}
	gotBits := float64(b.TotalStats().Bytes) * 8 / (ttis / 1000)
	if gotBits > 2e6*1.02 {
		t.Fatalf("MBR token bucket leaked: %.0f bits/s for a 2e6 cap", gotBits)
	}
	if gotBits < 2e6*0.9 {
		t.Fatalf("MBR under-delivered: %.0f bits/s", gotBits)
	}
}

func TestMBRRemovalRestoresFullRate(t *testing.T) {
	ch := NewUniformStaticChannel(1, 10)
	enb := NewENodeB(ch, PFScheduler{})
	b := &Bearer{ID: 0, UE: 0, Class: ClassVideo, MBRBits: 1e6}
	if _, err := enb.AddBearer(b); err != nil {
		t.Fatal(err)
	}
	for tti := int64(0); tti < 5000; tti++ {
		b.Enqueue(1 << 16)
		enb.RunTTI(tti)
	}
	capped := b.TotalStats().Bytes
	if err := enb.SetMBR(0, 0); err != nil {
		t.Fatal(err)
	}
	for tti := int64(5000); tti < 10000; tti++ {
		b.Enqueue(1 << 16)
		enb.RunTTI(tti)
	}
	uncapped := b.TotalStats().Bytes - capped
	if float64(uncapped) < 3*float64(capped) {
		t.Fatalf("removing MBR did not restore rate: %d then %d bytes", capped, uncapped)
	}
}
