package lte

import (
	"testing"
)

func TestENodeBAddBearerValidation(t *testing.T) {
	enb := NewENodeB(NewUniformStaticChannel(2, 10), PFScheduler{})
	if _, err := enb.AddBearer(&Bearer{ID: 0, UE: 5}); err == nil {
		t.Fatal("bearer with out-of-range UE accepted")
	}
	if _, err := enb.AddBearer(&Bearer{ID: 0, UE: -1}); err == nil {
		t.Fatal("bearer with negative UE accepted")
	}
	if _, err := enb.AddBearer(&Bearer{ID: 0, UE: 1}); err != nil {
		t.Fatalf("valid bearer rejected: %v", err)
	}
	if len(enb.Bearers()) != 1 {
		t.Fatalf("Bearers() has %d entries", len(enb.Bearers()))
	}
}

func TestENodeBBearerByIDAndGBR(t *testing.T) {
	enb := NewENodeB(NewUniformStaticChannel(2, 10), PFScheduler{})
	b := &Bearer{ID: 7, UE: 0, Class: ClassVideo}
	if _, err := enb.AddBearer(b); err != nil {
		t.Fatal(err)
	}
	if enb.BearerByID(7) != b {
		t.Fatal("BearerByID(7) failed")
	}
	if enb.BearerByID(99) != nil {
		t.Fatal("BearerByID(99) should be nil")
	}
	if err := enb.SetGBR(7, 2e6); err != nil {
		t.Fatal(err)
	}
	if b.GBRBits != 2e6 {
		t.Fatalf("GBR = %v", b.GBRBits)
	}
	if err := enb.SetGBR(99, 1); err == nil {
		t.Fatal("SetGBR on missing bearer succeeded")
	}
	if err := enb.SetMBR(7, 3e6); err != nil {
		t.Fatal(err)
	}
	if b.MBRBits != 3e6 {
		t.Fatalf("MBR = %v", b.MBRBits)
	}
	if err := enb.SetMBR(99, 1); err == nil {
		t.Fatal("SetMBR on missing bearer succeeded")
	}
}

func TestENodeBThroughputMatchesTBS(t *testing.T) {
	// A single greedy flow must receive exactly the cell rate.
	const iTbs = 8
	enb := NewENodeB(NewUniformStaticChannel(1, iTbs), PFScheduler{})
	b := &Bearer{ID: 0, UE: 0, Class: ClassData}
	if _, err := enb.AddBearer(b); err != nil {
		t.Fatal(err)
	}
	const ttis = 2000
	for tti := int64(0); tti < ttis; tti++ {
		b.Enqueue(1 << 16)
		enb.RunTTI(tti)
	}
	wantBytes := int64(TBSBytes(iTbs, NumRB)) * ttis
	got := b.TotalStats().Bytes
	if diff := float64(got-wantBytes) / float64(wantBytes); diff < -0.01 || diff > 0.01 {
		t.Fatalf("served %d bytes, want ~%d", got, wantBytes)
	}
}

func TestENodeBConservation(t *testing.T) {
	// Served bytes never exceed enqueued bytes; RBs never exceed 50/TTI.
	enb := NewENodeB(NewUniformStaticChannel(3, 12), PFScheduler{})
	var bearers []*Bearer
	for i := 0; i < 3; i++ {
		b := &Bearer{ID: i, UE: i, Class: ClassData}
		if _, err := enb.AddBearer(b); err != nil {
			t.Fatal(err)
		}
		bearers = append(bearers, b)
	}
	var enqueued, served int64
	for tti := int64(0); tti < 1000; tti++ {
		for _, b := range bearers {
			enqueued += b.Enqueue(500)
		}
		res := enb.RunTTI(tti)
		served += res.ServedBytes
		if res.UsedRBs > NumRB {
			t.Fatalf("tti %d used %d RBs", tti, res.UsedRBs)
		}
	}
	var backlog int64
	for _, b := range bearers {
		backlog += b.Backlog()
	}
	if served+backlog != enqueued {
		t.Fatalf("byte conservation violated: served %d + backlog %d != enqueued %d",
			served, backlog, enqueued)
	}
}

func TestENodeBWindowStatsMatchTotals(t *testing.T) {
	enb := NewENodeB(NewUniformStaticChannel(1, 10), PFScheduler{})
	b := &Bearer{ID: 0, UE: 0, Class: ClassVideo}
	if _, err := enb.AddBearer(b); err != nil {
		t.Fatal(err)
	}
	var winBytes, winRBs int64
	for tti := int64(0); tti < 3000; tti++ {
		b.Enqueue(2000)
		enb.RunTTI(tti)
		if tti%500 == 499 {
			w := b.CollectWindow()
			winBytes += w.Bytes
			winRBs += w.RBs
		}
	}
	w := b.CollectWindow()
	winBytes += w.Bytes
	winRBs += w.RBs
	tot := b.TotalStats()
	if winBytes != tot.Bytes || winRBs != tot.RBs {
		t.Fatalf("windows (%d, %d) != totals (%d, %d)", winBytes, winRBs, tot.Bytes, tot.RBs)
	}
}

func TestENodeBSchedulerSwap(t *testing.T) {
	enb := NewENodeB(NewUniformStaticChannel(1, 10), PFScheduler{})
	if enb.Scheduler().Name() != "pf" {
		t.Fatal("wrong initial scheduler")
	}
	enb.SetScheduler(TwoPhaseGBRScheduler{})
	if enb.Scheduler().Name() != "gbr2p" {
		t.Fatal("scheduler swap failed")
	}
	if enb.Channel().NumUEs() != 1 {
		t.Fatal("channel accessor broken")
	}
}

func TestENodeBBetterChannelGetsMoreBytesSameRBs(t *testing.T) {
	// Two greedy UEs, one at iTbs 4 and one at iTbs 20. PF equalises
	// RB share over time, so the better channel gets more bytes.
	enb := NewENodeB(NewStaticChannel(4, 20), PFScheduler{})
	slow := &Bearer{ID: 0, UE: 0, Class: ClassData}
	fast := &Bearer{ID: 1, UE: 1, Class: ClassData}
	for _, b := range []*Bearer{slow, fast} {
		if _, err := enb.AddBearer(b); err != nil {
			t.Fatal(err)
		}
	}
	for tti := int64(0); tti < 10000; tti++ {
		slow.Enqueue(1 << 16)
		fast.Enqueue(1 << 16)
		enb.RunTTI(tti)
	}
	sSlow, sFast := slow.TotalStats(), fast.TotalStats()
	if sFast.Bytes <= sSlow.Bytes {
		t.Fatalf("better channel got fewer bytes: %d vs %d", sFast.Bytes, sSlow.Bytes)
	}
	rbRatio := float64(sSlow.RBs) / float64(sFast.RBs)
	if rbRatio < 0.8 || rbRatio > 1.25 {
		t.Fatalf("PF RB shares unbalanced: %d vs %d", sSlow.RBs, sFast.RBs)
	}
}
