package lte

// FlowState is the per-TTI view of a bearer the schedulers allocate
// against.
type FlowState struct {
	// Bearer is the flow being scheduled.
	Bearer *Bearer
	// ITbs is the UE's current MCS index.
	ITbs int
	// BitsPerRB is the per-RB capacity at ITbs, precomputed by the eNB.
	BitsPerRB float64

	// remaining tracks the unserved backlog within the TTI as RBGs are
	// granted, so schedulers stop feeding a flow once its queue is
	// covered.
	remaining int64
	// granted accumulates RBs granted this TTI.
	granted int
	// idx is the bearer's index in the eNodeB's bearer slice.
	idx int

	// pf caches the PF metric for the TTI. The metric's inputs (iTbs and
	// the average-throughput EWMA) are constant within a TTI — the EWMA
	// only moves in Bearer.tick, after allocation — so computing it once
	// per Allocate call is byte-identical to recomputing it per RBG.
	pf float64
	// credit and inGBRSet are TwoPhaseGBRScheduler scratch: the phase-1
	// GBR byte credit still owed this TTI, valid only when inGBRSet.
	// Keeping them inline avoids the per-TTI map the scheduler used to
	// allocate on the hottest path in the simulator.
	credit   float64
	inGBRSet bool
	// served is parallel-drain scratch: the bytes the drain phase
	// removed from the bearer this TTI, consumed by the sequential
	// delivery fold (ENodeB.runTTIParallel).
	served int64
}

// Granted returns the number of RBs granted to this flow in the current
// TTI. It is how callers (and tests) observe an Allocate outcome now that
// Allocate no longer materialises a per-TTI grant slice.
func (f *FlowState) Granted() int { return f.granted }

// grantedBytes returns the byte capacity of n RBs at this flow's MCS.
func (f *FlowState) grantBytes(nRB int) int64 {
	return int64(f.BitsPerRB * float64(nRB) / 8)
}

// eligible reports whether the flow can absorb more RBs this TTI.
func (f *FlowState) eligible() bool {
	return f.remaining > 0 && f.Bearer.underMBR()
}

// instantRateBits returns the full-band instantaneous rate in bits/s the
// UE would get if granted all RBs — the numerator of the PF metric.
func (f *FlowState) instantRateBits() float64 {
	return f.BitsPerRB * NumRB * TTIsPerSecond
}

// pfMetric is the proportional-fair metric: instantaneous achievable rate
// over average delivered rate. The small floor keeps newly admitted flows
// (average ~0) from producing +Inf while still strongly favouring them.
func (f *FlowState) pfMetric() float64 {
	avg := f.Bearer.AvgTputBits()
	if avg < 1000 {
		avg = 1000
	}
	return f.instantRateBits() / avg
}

// Scheduler allocates the TTI's resource block groups among flows.
// Implementations mutate the FlowState grant fields via grant(); callers
// read the outcome back through FlowState.Granted. Returning a fresh
// grant slice per TTI was the single largest allocation site in the
// engine, so the interface is deliberately allocation-free.
type Scheduler interface {
	// Name identifies the scheduler in logs and experiment output.
	Name() string
	// Allocate distributes the RBGs in rbgSizes among flows, recording
	// each flow's share in its granted field.
	Allocate(tti int64, flows []*FlowState, rbgSizes []int)
}

// grant gives one RBG to a flow, updating its intra-TTI bookkeeping.
func grant(f *FlowState, rbs int) {
	f.granted += rbs
	f.remaining -= f.grantBytes(rbs)
}

// cachePF snapshots every flow's PF metric for the TTI. Called at the
// top of each Allocate implementation that consults pickMaxPF.
func cachePF(flows []*FlowState) {
	for _, f := range flows {
		f.pf = f.pfMetric()
	}
}

// PFScheduler is the classic proportional-fair scheduler: each RBG goes
// to the eligible flow with the highest instantaneous-to-average rate
// ratio. It ignores GBR but respects MBR caps.
type PFScheduler struct{}

var _ Scheduler = (*PFScheduler)(nil)

// Name implements Scheduler.
func (PFScheduler) Name() string { return "pf" }

// Allocate implements Scheduler.
func (PFScheduler) Allocate(_ int64, flows []*FlowState, rbgSizes []int) {
	cachePF(flows)
	// The PF winner is sticky within a TTI: pf is frozen by cachePF and
	// eligibility is monotone non-increasing (grants only shrink
	// remaining; MBR credit moves only in Bearer.tick, after
	// allocation). A rescan while the last winner is still eligible
	// would return the same flow, so it is skipped — byte-identical
	// grants at a fraction of the scan cost.
	var best *FlowState
	for _, size := range rbgSizes {
		if best == nil || !best.eligible() {
			best = pickMaxPF(flows, nil)
			if best == nil {
				break
			}
		}
		grant(best, size)
	}
}

// pickMaxPF returns the eligible flow with the highest (cached) PF
// metric, or nil when none is eligible. When filter is non-nil only
// flows for which it returns true are considered. Callers must have run
// cachePF on flows first.
//
//flare:hotpath
func pickMaxPF(flows []*FlowState, filter func(*FlowState) bool) *FlowState {
	var best *FlowState
	bestMetric := -1.0
	for _, f := range flows {
		if !f.eligible() {
			continue
		}
		if filter != nil && !filter(f) {
			continue
		}
		if f.pf > bestMetric {
			bestMetric = f.pf
			best = f
		}
	}
	return best
}

// PrioritySetScheduler reproduces the ns-3 Priority Set Scheduler (PSS)
// the paper's Table III lists, extended with the MBR assignment the
// authors added: flows whose short-window throughput is below their GBR
// (the "target bit rate") form a priority set scheduled first in time
// domain; remaining RBGs are shared proportionally fair. Flows at or
// above their MBR are never scheduled.
type PrioritySetScheduler struct{}

var _ Scheduler = (*PrioritySetScheduler)(nil)

// Name implements Scheduler.
func (PrioritySetScheduler) Name() string { return "pss" }

// Allocate implements Scheduler.
func (PrioritySetScheduler) Allocate(_ int64, flows []*FlowState, rbgSizes []int) {
	cachePF(flows)
	// Priority-set membership is frozen within the TTI (FastTputBits
	// only moves in Bearer.tick), so both the priority pick and the PF
	// fallback are sticky: rescan only when the cached winner goes
	// ineligible, and remember when a set has drained — it cannot
	// refill before the next TTI.
	inPrioritySet := func(f *FlowState) bool {
		return f.Bearer.GBRBits > 0 && f.Bearer.FastTputBits() < f.Bearer.GBRBits
	}
	var bestPrio, bestAny *FlowState
	prioDry, anyDry := false, false
	for _, size := range rbgSizes {
		if !prioDry && (bestPrio == nil || !bestPrio.eligible()) {
			bestPrio = pickMaxPF(flows, inPrioritySet)
			prioDry = bestPrio == nil
		}
		best := bestPrio
		if best == nil {
			if !anyDry && (bestAny == nil || !bestAny.eligible()) {
				bestAny = pickMaxPF(flows, nil)
				anyDry = bestAny == nil
			}
			best = bestAny
		}
		if best == nil {
			break
		}
		grant(best, size)
	}
}

// TwoPhaseGBRScheduler is the FLARE testbed scheduler from Section III-B:
// Phase 1 serves video flows up to their GBR (tracked with a per-flow
// byte credit), Phase 2 hands the remaining RBGs to both video and data
// flows with legacy proportional fair. Because data traffic rides
// non-GBR, Phase 2 lets video opportunistically exceed its GBR when the
// optimiser lags the radio ("the Scheduler Module can opportunistically
// use the RBs of data traffic for video flows").
type TwoPhaseGBRScheduler struct{}

var _ Scheduler = (*TwoPhaseGBRScheduler)(nil)

// Name implements Scheduler.
func (TwoPhaseGBRScheduler) Name() string { return "gbr2p" }

// Allocate implements Scheduler.
func (TwoPhaseGBRScheduler) Allocate(_ int64, flows []*FlowState, rbgSizes []int) {
	cachePF(flows)
	// Phase 1: GBR video flows with outstanding credit, most-starved
	// first (largest credit backlog). The credit ledger lives in the
	// FlowState scratch fields — allocating a map here once per TTI was
	// the engine's top allocation site.
	for _, f := range flows {
		f.inGBRSet = f.Bearer.Class == ClassVideo && f.Bearer.GBRBits > 0
		if f.inGBRSet {
			f.credit = f.Bearer.gbrCredit
		}
	}
	next := 0
	for next < len(rbgSizes) {
		var best *FlowState
		bestCredit := 0.0
		for _, f := range flows {
			if !f.inGBRSet || f.credit <= 0 || !f.eligible() {
				continue
			}
			if best == nil || f.credit > bestCredit {
				best, bestCredit = f, f.credit
			}
		}
		if best == nil {
			break
		}
		size := rbgSizes[next]
		next++
		grant(best, size)
		best.credit -= float64(best.grantBytes(size))
	}
	// Phase 2: legacy PF over everything still eligible. The winner is
	// sticky (see PFScheduler.Allocate): rescanning only when the
	// current best goes ineligible is byte-identical to rescanning per
	// RBG because pf is frozen and the eligible set only shrinks.
	var best *FlowState
	for ; next < len(rbgSizes); next++ {
		if best == nil || !best.eligible() {
			best = pickMaxPF(flows, nil)
			if best == nil {
				break
			}
		}
		grant(best, rbgSizes[next])
	}
}

// SlicedScheduler statically partitions the RBGs between video and data
// flows — the AVIS-style static resource division the paper criticises.
// VideoFraction of the RBGs are offered to video flows first (PF among
// them, respecting MBR); the rest go to data flows. RBGs left idle in
// one slice are NOT reassigned to the other class, reproducing AVIS's
// documented under-utilisation.
type SlicedScheduler struct {
	// VideoFraction is the fraction of RBGs reserved for video flows.
	VideoFraction float64
}

var _ Scheduler = (*SlicedScheduler)(nil)

// Name implements Scheduler.
func (SlicedScheduler) Name() string { return "sliced" }

// Allocate implements Scheduler. Within the video slice, flows below
// their GBR are served first (the base station drags every GBR bearer
// toward its guaranteed rate, regardless of how many RBs a poor channel
// makes that cost — the enforcement behaviour that lets a stale AVIS
// assignment starve the rest of the slice).
func (s SlicedScheduler) Allocate(_ int64, flows []*FlowState, rbgSizes []int) {
	cachePF(flows)
	videoRBGs := int(s.VideoFraction*float64(len(rbgSizes)) + 0.5)
	if videoRBGs > len(rbgSizes) {
		videoRBGs = len(rbgSizes)
	}
	isVideo := func(f *FlowState) bool { return f.Bearer.Class == ClassVideo }
	videoUnderGBR := func(f *FlowState) bool {
		return isVideo(f) && f.Bearer.GBRBits > 0 && f.Bearer.FastTputBits() < f.Bearer.GBRBits
	}
	isData := func(f *FlowState) bool { return f.Bearer.Class == ClassData }
	// All three filters are frozen within the TTI (class is static,
	// FastTputBits only moves in Bearer.tick), so each pick is sticky:
	// rescan only when the cached winner goes ineligible, and remember
	// drained sets (see PrioritySetScheduler.Allocate).
	var bestGBR, bestVid, bestData *FlowState
	gbrDry, vidDry, dataDry := false, false, false
	for i, size := range rbgSizes {
		var best *FlowState
		if i < videoRBGs {
			if !gbrDry && (bestGBR == nil || !bestGBR.eligible()) {
				bestGBR = pickMaxPF(flows, videoUnderGBR)
				gbrDry = bestGBR == nil
			}
			best = bestGBR
			if best == nil {
				if !vidDry && (bestVid == nil || !bestVid.eligible()) {
					bestVid = pickMaxPF(flows, isVideo)
					vidDry = bestVid == nil
				}
				best = bestVid
			}
		} else {
			if !dataDry && (bestData == nil || !bestData.eligible()) {
				bestData = pickMaxPF(flows, isData)
				dataDry = bestData == nil
			}
			best = bestData
		}
		if best == nil {
			continue // slice idles rather than borrowing
		}
		grant(best, size)
	}
}
