package lte

// FlowState is the per-TTI view of a bearer the schedulers allocate
// against.
type FlowState struct {
	// Bearer is the flow being scheduled.
	Bearer *Bearer
	// ITbs is the UE's current MCS index.
	ITbs int
	// BitsPerRB is the per-RB capacity at ITbs, precomputed by the eNB.
	BitsPerRB float64

	// remaining tracks the unserved backlog within the TTI as RBGs are
	// granted, so schedulers stop feeding a flow once its queue is
	// covered.
	remaining int64
	// granted accumulates RBs granted this TTI.
	granted int
	// idx is the bearer's index in the eNodeB's bearer slice.
	idx int
}

// grantedBytes returns the byte capacity of n RBs at this flow's MCS.
func (f *FlowState) grantBytes(nRB int) int64 {
	return int64(f.BitsPerRB * float64(nRB) / 8)
}

// eligible reports whether the flow can absorb more RBs this TTI.
func (f *FlowState) eligible() bool {
	return f.remaining > 0 && f.Bearer.underMBR()
}

// instantRateBits returns the full-band instantaneous rate in bits/s the
// UE would get if granted all RBs — the numerator of the PF metric.
func (f *FlowState) instantRateBits() float64 {
	return f.BitsPerRB * NumRB * TTIsPerSecond
}

// pfMetric is the proportional-fair metric: instantaneous achievable rate
// over average delivered rate. The small floor keeps newly admitted flows
// (average ~0) from producing +Inf while still strongly favouring them.
func (f *FlowState) pfMetric() float64 {
	avg := f.Bearer.AvgTputBits()
	if avg < 1000 {
		avg = 1000
	}
	return f.instantRateBits() / avg
}

// Scheduler allocates the TTI's resource block groups among flows.
// Implementations mutate the FlowState grant fields via grant().
type Scheduler interface {
	// Name identifies the scheduler in logs and experiment output.
	Name() string
	// Allocate distributes the RBGs in rbgSizes among flows, returning
	// the number of RBs granted to each flow (indexed like flows).
	Allocate(tti int64, flows []*FlowState, rbgSizes []int) []int
}

// grant gives one RBG to a flow, updating its intra-TTI bookkeeping.
func grant(f *FlowState, rbs int) {
	f.granted += rbs
	f.remaining -= f.grantBytes(rbs)
}

// grants materialises the per-flow RB counts after allocation.
func grants(flows []*FlowState) []int {
	out := make([]int, len(flows))
	for i, f := range flows {
		out[i] = f.granted
	}
	return out
}

// PFScheduler is the classic proportional-fair scheduler: each RBG goes
// to the eligible flow with the highest instantaneous-to-average rate
// ratio. It ignores GBR but respects MBR caps.
type PFScheduler struct{}

var _ Scheduler = (*PFScheduler)(nil)

// Name implements Scheduler.
func (PFScheduler) Name() string { return "pf" }

// Allocate implements Scheduler.
func (PFScheduler) Allocate(_ int64, flows []*FlowState, rbgSizes []int) []int {
	for _, size := range rbgSizes {
		best := pickMaxPF(flows, nil)
		if best == nil {
			break
		}
		grant(best, size)
	}
	return grants(flows)
}

// pickMaxPF returns the eligible flow with the highest PF metric, or nil
// when none is eligible. When filter is non-nil only flows for which it
// returns true are considered.
func pickMaxPF(flows []*FlowState, filter func(*FlowState) bool) *FlowState {
	var best *FlowState
	bestMetric := -1.0
	for _, f := range flows {
		if !f.eligible() {
			continue
		}
		if filter != nil && !filter(f) {
			continue
		}
		if m := f.pfMetric(); m > bestMetric {
			bestMetric = m
			best = f
		}
	}
	return best
}

// PrioritySetScheduler reproduces the ns-3 Priority Set Scheduler (PSS)
// the paper's Table III lists, extended with the MBR assignment the
// authors added: flows whose short-window throughput is below their GBR
// (the "target bit rate") form a priority set scheduled first in time
// domain; remaining RBGs are shared proportionally fair. Flows at or
// above their MBR are never scheduled.
type PrioritySetScheduler struct{}

var _ Scheduler = (*PrioritySetScheduler)(nil)

// Name implements Scheduler.
func (PrioritySetScheduler) Name() string { return "pss" }

// Allocate implements Scheduler.
func (PrioritySetScheduler) Allocate(_ int64, flows []*FlowState, rbgSizes []int) []int {
	inPrioritySet := func(f *FlowState) bool {
		return f.Bearer.GBRBits > 0 && f.Bearer.FastTputBits() < f.Bearer.GBRBits
	}
	for _, size := range rbgSizes {
		best := pickMaxPF(flows, inPrioritySet)
		if best == nil {
			best = pickMaxPF(flows, nil)
		}
		if best == nil {
			break
		}
		grant(best, size)
	}
	return grants(flows)
}

// TwoPhaseGBRScheduler is the FLARE testbed scheduler from Section III-B:
// Phase 1 serves video flows up to their GBR (tracked with a per-flow
// byte credit), Phase 2 hands the remaining RBGs to both video and data
// flows with legacy proportional fair. Because data traffic rides
// non-GBR, Phase 2 lets video opportunistically exceed its GBR when the
// optimiser lags the radio ("the Scheduler Module can opportunistically
// use the RBs of data traffic for video flows").
type TwoPhaseGBRScheduler struct{}

var _ Scheduler = (*TwoPhaseGBRScheduler)(nil)

// Name implements Scheduler.
func (TwoPhaseGBRScheduler) Name() string { return "gbr2p" }

// Allocate implements Scheduler.
func (TwoPhaseGBRScheduler) Allocate(_ int64, flows []*FlowState, rbgSizes []int) []int {
	// Phase 1: GBR video flows with outstanding credit, most-starved
	// first (largest credit backlog).
	credit := make(map[*FlowState]float64, len(flows))
	for _, f := range flows {
		if f.Bearer.Class == ClassVideo && f.Bearer.GBRBits > 0 {
			credit[f] = f.Bearer.gbrCredit
		}
	}
	next := 0
	for next < len(rbgSizes) {
		var best *FlowState
		bestCredit := 0.0
		for _, f := range flows {
			c, isGBR := credit[f]
			if !isGBR || c <= 0 || !f.eligible() {
				continue
			}
			if best == nil || c > bestCredit {
				best, bestCredit = f, c
			}
		}
		if best == nil {
			break
		}
		size := rbgSizes[next]
		next++
		grant(best, size)
		credit[best] -= float64(best.grantBytes(size))
	}
	// Phase 2: legacy PF over everything still eligible.
	for ; next < len(rbgSizes); next++ {
		best := pickMaxPF(flows, nil)
		if best == nil {
			break
		}
		grant(best, rbgSizes[next])
	}
	return grants(flows)
}

// SlicedScheduler statically partitions the RBGs between video and data
// flows — the AVIS-style static resource division the paper criticises.
// VideoFraction of the RBGs are offered to video flows first (PF among
// them, respecting MBR); the rest go to data flows. RBGs left idle in
// one slice are NOT reassigned to the other class, reproducing AVIS's
// documented under-utilisation.
type SlicedScheduler struct {
	// VideoFraction is the fraction of RBGs reserved for video flows.
	VideoFraction float64
}

var _ Scheduler = (*SlicedScheduler)(nil)

// Name implements Scheduler.
func (SlicedScheduler) Name() string { return "sliced" }

// Allocate implements Scheduler. Within the video slice, flows below
// their GBR are served first (the base station drags every GBR bearer
// toward its guaranteed rate, regardless of how many RBs a poor channel
// makes that cost — the enforcement behaviour that lets a stale AVIS
// assignment starve the rest of the slice).
func (s SlicedScheduler) Allocate(_ int64, flows []*FlowState, rbgSizes []int) []int {
	videoRBGs := int(s.VideoFraction*float64(len(rbgSizes)) + 0.5)
	if videoRBGs > len(rbgSizes) {
		videoRBGs = len(rbgSizes)
	}
	isVideo := func(f *FlowState) bool { return f.Bearer.Class == ClassVideo }
	videoUnderGBR := func(f *FlowState) bool {
		return isVideo(f) && f.Bearer.GBRBits > 0 && f.Bearer.FastTputBits() < f.Bearer.GBRBits
	}
	isData := func(f *FlowState) bool { return f.Bearer.Class == ClassData }
	for i, size := range rbgSizes {
		var best *FlowState
		if i < videoRBGs {
			best = pickMaxPF(flows, videoUnderGBR)
			if best == nil {
				best = pickMaxPF(flows, isVideo)
			}
		} else {
			best = pickMaxPF(flows, isData)
		}
		if best == nil {
			continue // slice idles rather than borrowing
		}
		grant(best, size)
	}
	return grants(flows)
}
