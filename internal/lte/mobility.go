package lte

import (
	"fmt"
	"math"

	"github.com/flare-sim/flare/internal/sim"
)

// MobilityConfig parameterises the random-waypoint mobility channel used
// for the paper's mobile (vehicular) scenarios: a 2000 m x 2000 m cell
// with the eNodeB at the centre.
type MobilityConfig struct {
	// NumUEs is the number of UEs to model.
	NumUEs int
	// AreaMeters is the side length of the square simulation area.
	AreaMeters float64
	// MinSpeed and MaxSpeed bound each waypoint leg's speed in m/s.
	// The paper's mobile scenario puts UEs in vehicles; 10-20 m/s
	// (36-72 km/h) is the usual vehicular setting.
	MinSpeed, MaxSpeed float64
	// TxPowerDBm is the eNodeB transmit power (the JL-620 uses 20 dBm).
	TxPowerDBm float64
	// NoiseDBm is the receiver noise floor over 10 MHz.
	NoiseDBm float64
	// ShadowingStdevDB is the log-normal shadowing standard deviation.
	ShadowingStdevDB float64
	// ShadowingCorrDistance is the decorrelation distance in meters for
	// the shadowing process.
	ShadowingCorrDistance float64
	// PositionStepTTIs is how often UE positions and SINR are updated.
	PositionStepTTIs int64
	// FadingStdevDB is the standard deviation of the multipath fading
	// process in dB.
	FadingStdevDB float64
	// FadingTauSeconds is the fading coherence time: the fading term
	// evolves as an AR(1) process with this decorrelation constant, so
	// fades persist across consecutive segments instead of averaging
	// out. 0 makes fading independent per position step.
	FadingTauSeconds float64
	// WaypointMargin keeps waypoints (and initial positions) inside the
	// central (1-2*margin) fraction of the area, modelling UEs that
	// stay within radio coverage rather than roaming to the dead corner
	// of the cell. 0 uses the whole area.
	WaypointMargin float64
}

// DefaultMobilityConfig returns the paper's Table III mobile settings.
func DefaultMobilityConfig(numUEs int) MobilityConfig {
	return MobilityConfig{
		NumUEs:     numUEs,
		AreaMeters: 2000,
		MinSpeed:   10,
		MaxSpeed:   20,
		// The 2000 m ns-3 scenario implies a macro eNodeB; 43 dBm is
		// the ns-3 LTE default transmit power (the 20 dBm JL-620 figure
		// applies only to the indoor femtocell testbed).
		TxPowerDBm:            30,
		NoiseDBm:              -95,
		ShadowingStdevDB:      6,
		ShadowingCorrDistance: 50,
		PositionStepTTIs:      100, // 100 ms
		FadingStdevDB:         2,
		FadingTauSeconds:      2,
		WaypointMargin:        0.25,
	}
}

type ueState struct {
	x, y       float64
	destX      float64
	destY      float64
	speed      float64 // m/s
	shadowDB   float64
	fadeDB     float64
	lastX      float64
	lastY      float64
	currentITb int
}

// MobilityChannel is a random-waypoint channel: UEs move between uniform
// random waypoints; link quality follows the 3GPP macro path-loss model
// (128.1 + 37.6 log10 d_km) with spatially correlated log-normal
// shadowing and block fading, mapped to iTbs through the SINR-to-MCS
// curve in ITbsForSINR.
type MobilityChannel struct {
	cfg     MobilityConfig
	rng     *sim.RNG
	ues     []ueState
	lastTTI int64
}

var _ Channel = (*MobilityChannel)(nil)

// NewMobilityChannel builds a mobility channel with its own RNG stream
// derived from rng.
func NewMobilityChannel(cfg MobilityConfig, rng *sim.RNG) (*MobilityChannel, error) {
	if cfg.NumUEs <= 0 {
		return nil, fmt.Errorf("lte: mobility channel needs at least one UE, got %d", cfg.NumUEs)
	}
	if cfg.AreaMeters <= 0 {
		return nil, fmt.Errorf("lte: mobility area must be positive, got %v", cfg.AreaMeters)
	}
	if cfg.PositionStepTTIs <= 0 {
		return nil, fmt.Errorf("lte: position step must be positive, got %d", cfg.PositionStepTTIs)
	}
	if cfg.MinSpeed <= 0 || cfg.MaxSpeed < cfg.MinSpeed {
		return nil, fmt.Errorf("lte: invalid speed range [%v, %v]", cfg.MinSpeed, cfg.MaxSpeed)
	}
	if cfg.WaypointMargin < 0 || cfg.WaypointMargin >= 0.5 {
		return nil, fmt.Errorf("lte: waypoint margin %v out of [0, 0.5)", cfg.WaypointMargin)
	}
	c := &MobilityChannel{cfg: cfg, rng: rng.Split(), lastTTI: -1}
	c.ues = make([]ueState, cfg.NumUEs)
	for i := range c.ues {
		u := &c.ues[i]
		u.x = c.sampleCoord()
		u.y = c.sampleCoord()
		u.lastX, u.lastY = u.x, u.y
		u.shadowDB = c.rng.Norm(0, cfg.ShadowingStdevDB)
		c.pickWaypoint(u)
		c.refreshITbs(u)
	}
	return c, nil
}

func (c *MobilityChannel) sampleCoord() float64 {
	m := c.cfg.WaypointMargin * c.cfg.AreaMeters
	return c.rng.Uniform(m, c.cfg.AreaMeters-m)
}

func (c *MobilityChannel) pickWaypoint(u *ueState) {
	u.destX = c.sampleCoord()
	u.destY = c.sampleCoord()
	u.speed = c.rng.Uniform(c.cfg.MinSpeed, c.cfg.MaxSpeed)
}

// Update implements Channel. Positions and SINR are refreshed every
// PositionStepTTIs; intermediate TTIs reuse the last computed iTbs
// (block fading).
func (c *MobilityChannel) Update(tti int64) {
	step := c.cfg.PositionStepTTIs
	cur := tti / step
	if c.lastTTI >= 0 && cur == c.lastTTI/step && tti != 0 {
		c.lastTTI = tti
		return
	}
	dt := float64(step) / TTIsPerSecond // seconds per position step
	for i := range c.ues {
		u := &c.ues[i]
		c.moveUE(u, dt)
		c.updateShadowing(u)
		c.refreshITbs(u)
	}
	c.lastTTI = tti
}

func (c *MobilityChannel) moveUE(u *ueState, dt float64) {
	remaining := u.speed * dt
	for remaining > 0 {
		dx, dy := u.destX-u.x, u.destY-u.y
		dist := math.Hypot(dx, dy)
		if dist <= remaining {
			u.x, u.y = u.destX, u.destY
			remaining -= dist
			c.pickWaypoint(u)
			continue
		}
		u.x += dx / dist * remaining
		u.y += dy / dist * remaining
		remaining = 0
	}
}

// updateShadowing evolves the log-normal shadowing as a Gudmundson
// spatially correlated process: correlation decays exponentially with the
// distance moved since the last update.
func (c *MobilityChannel) updateShadowing(u *ueState) {
	moved := math.Hypot(u.x-u.lastX, u.y-u.lastY)
	u.lastX, u.lastY = u.x, u.y
	rho := math.Exp(-moved / c.cfg.ShadowingCorrDistance)
	sigma := c.cfg.ShadowingStdevDB
	u.shadowDB = rho*u.shadowDB + math.Sqrt(1-rho*rho)*c.rng.Norm(0, sigma)
}

func (c *MobilityChannel) refreshITbs(u *ueState) {
	half := c.cfg.AreaMeters / 2
	distKm := math.Hypot(u.x-half, u.y-half) / 1000
	if distKm < 0.01 {
		distKm = 0.01 // path-loss model validity floor (10 m)
	}
	pathLossDB := 128.1 + 37.6*math.Log10(distKm)
	if sigma := c.cfg.FadingStdevDB; sigma > 0 {
		if tau := c.cfg.FadingTauSeconds; tau > 0 {
			// AR(1) fading with coherence time tau.
			dt := float64(c.cfg.PositionStepTTIs) / TTIsPerSecond
			rho := math.Exp(-dt / tau)
			u.fadeDB = rho*u.fadeDB + math.Sqrt(1-rho*rho)*c.rng.Norm(0, sigma)
		} else {
			u.fadeDB = c.rng.Norm(0, sigma)
		}
	} else {
		u.fadeDB = 0
	}
	sinr := c.cfg.TxPowerDBm - pathLossDB - c.cfg.NoiseDBm + u.shadowDB + u.fadeDB
	u.currentITb = ITbsForSINR(sinr)
}

// CatchUp implements ChannelCatchUp. The random walk is stateful — each
// position-step boundary consumes RNG draws — so fast-forwarding must
// replay every boundary the naive loop would have crossed in
// (fromTTI, toTTI) exclusive. Intermediate non-boundary TTIs only
// advance lastTTI, which the boundary replays subsume.
func (c *MobilityChannel) CatchUp(fromTTI, toTTI int64) {
	step := c.cfg.PositionStepTTIs
	for b := (fromTTI/step + 1) * step; b < toTTI; b += step {
		c.Update(b)
	}
}

// ITbs implements Channel.
func (c *MobilityChannel) ITbs(ue int) int { return c.ues[ue].currentITb }

// NumUEs implements Channel.
func (c *MobilityChannel) NumUEs() int { return len(c.ues) }

// Position returns the current coordinates of a UE, for tests and
// visualisation.
func (c *MobilityChannel) Position(ue int) (x, y float64) {
	return c.ues[ue].x, c.ues[ue].y
}
