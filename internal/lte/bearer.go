package lte

import "fmt"

// BearerClass distinguishes video bearers (eligible for GBR treatment)
// from best-effort data bearers.
type BearerClass int

// Bearer classes. Video bearers may carry a GBR; data bearers are always
// non-GBR, matching the paper's "video segments are serviced with the
// GBR, the data traffic is serviced with non-GBR".
const (
	ClassVideo BearerClass = iota + 1
	ClassData
)

// String implements fmt.Stringer.
func (c BearerClass) String() string {
	switch c {
	case ClassVideo:
		return "video"
	case ClassData:
		return "data"
	default:
		return fmt.Sprintf("BearerClass(%d)", int(c))
	}
}

// WindowStats is the per-bearer accounting the eNodeB's Statistics
// Reporter hands to the OneAPI server each BAI: the RBs assigned (n_u)
// and bytes transmitted (b_u) since the previous report.
type WindowStats struct {
	Bytes int64 `json:"bytes"`
	RBs   int64 `json:"rbs"`
}

// tput averaging constants. avgTputTTIs is the proportional-fair
// averaging window (the classic 100 ms); fastTputTTIs is the shorter
// window used for GBR/MBR eligibility checks.
const (
	avgTputTTIs  = 100
	fastTputTTIs = 40
)

// Bearer is one downlink flow at the eNodeB: a drop-tail byte queue plus
// the per-flow accounting the schedulers and the FLARE controller need.
// Bearers are owned and driven by a single ENodeB and are not safe for
// concurrent use.
type Bearer struct {
	// ID identifies the bearer within its cell.
	ID int
	// UE is the index of the UE this bearer belongs to (for the channel).
	UE int
	// Class is the traffic class.
	Class BearerClass
	// GBRBits is the guaranteed bit rate in bits/s; 0 means non-GBR.
	GBRBits float64
	// MBRBits is the maximum bit rate in bits/s; 0 means unlimited.
	MBRBits float64
	// QueueLimit caps the queue in bytes; excess Enqueue bytes are
	// dropped (drop-tail), which is what triggers TCP loss recovery.
	// 0 means unlimited.
	QueueLimit int64

	// OnDeliver, if set, is invoked with the number of bytes drained
	// from the queue each TTI the bearer is served. The transport layer
	// uses it to generate ACKs.
	OnDeliver func(bytes int64)

	queue int64

	win        WindowStats
	total      WindowStats
	avgTput    float64 // EWMA bits/s over avgTputTTIs, for PF metrics
	fastTput   float64 // EWMA bits/s over fastTputTTIs, for GBR checks
	gbrCredit  float64 // bytes owed to meet GBR (two-phase scheduler)
	mbrCredit  float64 // token bucket for strict MBR enforcement
	mbrPrimed  bool
	everServed bool

	// Lazily cached per-TTI derivatives of GBRBits/MBRBits, keyed on the
	// rate they were derived from so direct mutation of the public
	// fields is picked up. Each cached value is produced by exactly the
	// expression tick used to evaluate inline, so reuse is
	// bit-identical; caching just removes several FP divisions from a
	// function that runs once per bearer per TTI.
	gbrRefBits float64
	gbrPerTTI  float64 // GBRBits / 8 / TTIsPerSecond
	gbrLimit   float64 // GBRBits / 8
	mbrRefBits float64
	mbrPerTTI  float64 // MBRBits / 8 / TTIsPerSecond
	mbrBurst   float64 // mbrBurstBytes(MBRBits)
}

// Enqueue adds bytes to the bearer queue and returns the number of bytes
// actually accepted (drop-tail beyond QueueLimit). Negative counts are
// rejected with 0.
func (b *Bearer) Enqueue(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	accepted := bytes
	if b.QueueLimit > 0 && b.queue+bytes > b.QueueLimit {
		accepted = b.QueueLimit - b.queue
		if accepted < 0 {
			accepted = 0
		}
	}
	b.queue += accepted
	return accepted
}

// Backlog returns the queued bytes awaiting transmission.
func (b *Bearer) Backlog() int64 { return b.queue }

// AvgTputBits returns the proportional-fair average throughput estimate
// in bits/s.
func (b *Bearer) AvgTputBits() float64 { return b.avgTput }

// FastTputBits returns the short-window throughput estimate used for
// GBR/MBR eligibility.
func (b *Bearer) FastTputBits() float64 { return b.fastTput }

// CollectWindow returns the bytes/RBs accounted since the last call and
// resets the window — the Statistics Reporter contract.
func (b *Bearer) CollectWindow() WindowStats {
	w := b.win
	b.win = WindowStats{}
	return w
}

// TotalStats returns cumulative bytes/RBs since the bearer was created.
func (b *Bearer) TotalStats() WindowStats { return b.total }

// drain removes up to capBytes from the queue and records the RB cost,
// without firing the delivery callback. It is the parallel-safe half of
// serve: it touches only this bearer's state, so disjoint bearers may
// drain concurrently; the caller then fires OnDeliver per bearer in
// bearer-ID order (see ENodeB.runTTIParallel), which is exactly the
// order serve interleaves them in the sequential loop.
func (b *Bearer) drain(capBytes int64, rbs int) int64 {
	served := capBytes
	if served > b.queue {
		served = b.queue
	}
	b.queue -= served
	b.win.Bytes += served
	b.win.RBs += int64(rbs)
	b.total.Bytes += served
	b.total.RBs += int64(rbs)
	if served > 0 {
		b.everServed = true
	}
	return served
}

// serve drains up to capBytes from the queue, records the RB cost, and
// fires OnDeliver. It returns the bytes actually served.
func (b *Bearer) serve(capBytes int64, rbs int) int64 {
	served := b.drain(capBytes, rbs)
	if served > 0 && b.OnDeliver != nil {
		b.OnDeliver(served)
	}
	return served
}

// tick updates the throughput averages with the bits served this TTI.
// Called once per TTI for every bearer, served or not.
//
//flare:hotpath
func (b *Bearer) tick(servedBits float64) {
	instant := servedBits * TTIsPerSecond // bits/s delivered this TTI
	b.avgTput += (instant - b.avgTput) / avgTputTTIs
	b.fastTput += (instant - b.fastTput) / fastTputTTIs
	if b.GBRBits > 0 {
		if b.GBRBits != b.gbrRefBits {
			b.gbrRefBits = b.GBRBits
			b.gbrPerTTI = b.GBRBits / 8 / TTIsPerSecond
			b.gbrLimit = b.GBRBits / 8
		}
		// Accrue the GBR debt in bytes and pay it down with service.
		b.gbrCredit += b.gbrPerTTI
		b.gbrCredit -= servedBits / 8
		// Don't bank more than one second of credit, and don't let
		// surplus service turn into unbounded negative credit either.
		if b.gbrCredit > b.gbrLimit {
			b.gbrCredit = b.gbrLimit
		} else if b.gbrCredit < -b.gbrLimit {
			b.gbrCredit = -b.gbrLimit
		}
	} else {
		b.gbrCredit = 0
	}
	if b.MBRBits > 0 {
		if b.MBRBits != b.mbrRefBits {
			b.mbrRefBits = b.MBRBits
			b.mbrPerTTI = b.MBRBits / 8 / TTIsPerSecond
			b.mbrBurst = mbrBurstBytes(b.MBRBits)
		}
		if !b.mbrPrimed {
			b.mbrPrimed = true
			b.mbrCredit = b.mbrBurst
		}
		b.mbrCredit += b.mbrPerTTI
		b.mbrCredit -= servedBits / 8
		if b.mbrCredit > b.mbrBurst {
			b.mbrCredit = b.mbrBurst
		}
	} else {
		b.mbrPrimed = false
	}
}

// tickIdle replays k idle TTIs (tick(0) k times) — the fast-forward
// catch-up for a bearer that was neither enqueued into nor served while
// the kernel skipped dead TTIs.
//
// Determinism is the contract here: results must be byte-identical to
// calling tick(0) k times, so no closed form (pow-based EWMA decay,
// multiply-accumulate credits) is admissible — IEEE-754 rounding makes
// a*(1-1/N)^k differ from the iterated a -= a/N in the last bits. What
// IS admissible is fixed-point detection: tick(0) is a deterministic
// function of the bearer's accounting state, so the first iteration
// that leaves that state bit-identical proves every further iteration
// is a no-op and the remaining k can be dropped. In practice the EWMAs
// hit zero (through the denormals) and the GBR/MBR credits saturate at
// their clamps within a bounded number of steps, so long skips cost far
// less than k iterations.
func (b *Bearer) tickIdle(k int64) {
	for i := int64(0); i < k; i++ {
		prevAvg, prevFast := b.avgTput, b.fastTput
		prevGBR, prevMBR := b.gbrCredit, b.mbrCredit
		prevPrimed := b.mbrPrimed
		b.tick(0)
		if b.avgTput == prevAvg && b.fastTput == prevFast &&
			b.gbrCredit == prevGBR && b.mbrCredit == prevMBR &&
			b.mbrPrimed == prevPrimed {
			return // fixed point: all further idle ticks are no-ops
		}
	}
}

// mbrBurstBytes is the MBR token bucket depth: 50 ms at the cap rate.
func mbrBurstBytes(mbrBits float64) float64 {
	return mbrBits / 8 * 0.05
}

// underMBR reports whether the bearer may be scheduled given its MBR
// cap. Enforcement is a token bucket, so the delivered rate can never
// average above the MBR — the strict cap AVIS-style network control
// relies on.
func (b *Bearer) underMBR() bool {
	return b.MBRBits <= 0 || b.mbrCredit > 0
}
