package lte

import "fmt"

// BearerClass distinguishes video bearers (eligible for GBR treatment)
// from best-effort data bearers.
type BearerClass int

// Bearer classes. Video bearers may carry a GBR; data bearers are always
// non-GBR, matching the paper's "video segments are serviced with the
// GBR, the data traffic is serviced with non-GBR".
const (
	ClassVideo BearerClass = iota + 1
	ClassData
)

// String implements fmt.Stringer.
func (c BearerClass) String() string {
	switch c {
	case ClassVideo:
		return "video"
	case ClassData:
		return "data"
	default:
		return fmt.Sprintf("BearerClass(%d)", int(c))
	}
}

// WindowStats is the per-bearer accounting the eNodeB's Statistics
// Reporter hands to the OneAPI server each BAI: the RBs assigned (n_u)
// and bytes transmitted (b_u) since the previous report.
type WindowStats struct {
	Bytes int64 `json:"bytes"`
	RBs   int64 `json:"rbs"`
}

// tput averaging constants. avgTputTTIs is the proportional-fair
// averaging window (the classic 100 ms); fastTputTTIs is the shorter
// window used for GBR/MBR eligibility checks.
const (
	avgTputTTIs  = 100
	fastTputTTIs = 40
)

// Bearer is one downlink flow at the eNodeB: a drop-tail byte queue plus
// the per-flow accounting the schedulers and the FLARE controller need.
// Bearers are owned and driven by a single ENodeB and are not safe for
// concurrent use.
type Bearer struct {
	// ID identifies the bearer within its cell.
	ID int
	// UE is the index of the UE this bearer belongs to (for the channel).
	UE int
	// Class is the traffic class.
	Class BearerClass
	// GBRBits is the guaranteed bit rate in bits/s; 0 means non-GBR.
	GBRBits float64
	// MBRBits is the maximum bit rate in bits/s; 0 means unlimited.
	MBRBits float64
	// QueueLimit caps the queue in bytes; excess Enqueue bytes are
	// dropped (drop-tail), which is what triggers TCP loss recovery.
	// 0 means unlimited.
	QueueLimit int64

	// OnDeliver, if set, is invoked with the number of bytes drained
	// from the queue each TTI the bearer is served. The transport layer
	// uses it to generate ACKs.
	OnDeliver func(bytes int64)

	queue int64

	win        WindowStats
	total      WindowStats
	avgTput    float64 // EWMA bits/s over avgTputTTIs, for PF metrics
	fastTput   float64 // EWMA bits/s over fastTputTTIs, for GBR checks
	gbrCredit  float64 // bytes owed to meet GBR (two-phase scheduler)
	mbrCredit  float64 // token bucket for strict MBR enforcement
	mbrPrimed  bool
	everServed bool
}

// Enqueue adds bytes to the bearer queue and returns the number of bytes
// actually accepted (drop-tail beyond QueueLimit). Negative counts are
// rejected with 0.
func (b *Bearer) Enqueue(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	accepted := bytes
	if b.QueueLimit > 0 && b.queue+bytes > b.QueueLimit {
		accepted = b.QueueLimit - b.queue
		if accepted < 0 {
			accepted = 0
		}
	}
	b.queue += accepted
	return accepted
}

// Backlog returns the queued bytes awaiting transmission.
func (b *Bearer) Backlog() int64 { return b.queue }

// AvgTputBits returns the proportional-fair average throughput estimate
// in bits/s.
func (b *Bearer) AvgTputBits() float64 { return b.avgTput }

// FastTputBits returns the short-window throughput estimate used for
// GBR/MBR eligibility.
func (b *Bearer) FastTputBits() float64 { return b.fastTput }

// CollectWindow returns the bytes/RBs accounted since the last call and
// resets the window — the Statistics Reporter contract.
func (b *Bearer) CollectWindow() WindowStats {
	w := b.win
	b.win = WindowStats{}
	return w
}

// TotalStats returns cumulative bytes/RBs since the bearer was created.
func (b *Bearer) TotalStats() WindowStats { return b.total }

// serve drains up to capBytes from the queue, records the RB cost, and
// fires OnDeliver. It returns the bytes actually served.
func (b *Bearer) serve(capBytes int64, rbs int) int64 {
	served := capBytes
	if served > b.queue {
		served = b.queue
	}
	b.queue -= served
	b.win.Bytes += served
	b.win.RBs += int64(rbs)
	b.total.Bytes += served
	b.total.RBs += int64(rbs)
	if served > 0 {
		b.everServed = true
		if b.OnDeliver != nil {
			b.OnDeliver(served)
		}
	}
	return served
}

// tick updates the throughput averages with the bits served this TTI.
// Called once per TTI for every bearer, served or not.
func (b *Bearer) tick(servedBits float64) {
	instant := servedBits * TTIsPerSecond // bits/s delivered this TTI
	b.avgTput += (instant - b.avgTput) / avgTputTTIs
	b.fastTput += (instant - b.fastTput) / fastTputTTIs
	if b.GBRBits > 0 {
		// Accrue the GBR debt in bytes and pay it down with service.
		b.gbrCredit += b.GBRBits / 8 / TTIsPerSecond
		b.gbrCredit -= servedBits / 8
		// Don't bank more than one second of credit, and don't let
		// surplus service turn into unbounded negative credit either.
		if limit := b.GBRBits / 8; b.gbrCredit > limit {
			b.gbrCredit = limit
		} else if b.gbrCredit < -limit {
			b.gbrCredit = -limit
		}
	} else {
		b.gbrCredit = 0
	}
	if b.MBRBits > 0 {
		if !b.mbrPrimed {
			b.mbrPrimed = true
			b.mbrCredit = mbrBurstBytes(b.MBRBits)
		}
		b.mbrCredit += b.MBRBits / 8 / TTIsPerSecond
		b.mbrCredit -= servedBits / 8
		if burst := mbrBurstBytes(b.MBRBits); b.mbrCredit > burst {
			b.mbrCredit = burst
		}
	} else {
		b.mbrPrimed = false
	}
}

// mbrBurstBytes is the MBR token bucket depth: 50 ms at the cap rate.
func mbrBurstBytes(mbrBits float64) float64 {
	return mbrBits / 8 * 0.05
}

// underMBR reports whether the bearer may be scheduled given its MBR
// cap. Enforcement is a token bucket, so the delivered rate can never
// average above the MBR — the strict cap AVIS-style network control
// relies on.
func (b *Bearer) underMBR() bool {
	return b.MBRBits <= 0 || b.mbrCredit > 0
}
