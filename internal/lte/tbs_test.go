package lte

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRBGSizesSumToNumRB(t *testing.T) {
	sizes := RBGSizes()
	if len(sizes) != NumRBG {
		t.Fatalf("got %d RBGs, want %d", len(sizes), NumRBG)
	}
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != NumRB {
		t.Fatalf("RBG sizes sum to %d, want %d", sum, NumRB)
	}
	if last := sizes[len(sizes)-1]; last != 2 {
		t.Fatalf("last RBG size = %d, want 2 (16*3+2=50)", last)
	}
}

func TestBitsPerRBMonotone(t *testing.T) {
	for i := MinITbs; i < MaxITbs; i++ {
		if BitsPerRB(i) >= BitsPerRB(i+1) {
			t.Fatalf("BitsPerRB not strictly increasing at %d: %v >= %v",
				i, BitsPerRB(i), BitsPerRB(i+1))
		}
	}
}

func TestCellRateCalibration(t *testing.T) {
	// The table is calibrated so iTbs=2 gives ~4.4 Mbps and iTbs=26
	// gives ~36 Mbps at full band (DESIGN.md substitution).
	if got := CellRateBps(2); math.Abs(got-4.4e6) > 1e3 {
		t.Errorf("CellRateBps(2) = %v, want ~4.4e6", got)
	}
	if got := CellRateBps(26); math.Abs(got-36e6) > 1e4 {
		t.Errorf("CellRateBps(26) = %v, want ~36e6", got)
	}
}

func TestTBSBitsScalesWithRBs(t *testing.T) {
	check := func(iTbsRaw uint8, nRBRaw uint8) bool {
		iTbs := int(iTbsRaw) % (MaxITbs + 1)
		nRB := int(nRBRaw)%NumRB + 1
		bits := TBSBits(iTbs, nRB)
		if bits <= 0 {
			return false
		}
		// More RBs never yield fewer bits.
		return TBSBits(iTbs, nRB) <= TBSBits(iTbs, nRB+1) || nRB == NumRB
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTBSBitsEdgeCases(t *testing.T) {
	if TBSBits(5, 0) != 0 {
		t.Error("TBSBits with 0 RBs should be 0")
	}
	if TBSBits(5, -3) != 0 {
		t.Error("TBSBits with negative RBs should be 0")
	}
	// nRB above the cell width is clamped.
	if TBSBits(5, 100) != TBSBits(5, NumRB) {
		t.Error("TBSBits should clamp nRB at NumRB")
	}
	// Out-of-range iTbs is clamped, not wrapped.
	if TBSBits(99, 10) != TBSBits(MaxITbs, 10) {
		t.Error("TBSBits should clamp iTbs at MaxITbs")
	}
	if TBSBits(-5, 10) != TBSBits(MinITbs, 10) {
		t.Error("TBSBits should clamp iTbs at MinITbs")
	}
}

func TestTBSBytes(t *testing.T) {
	if got, want := TBSBytes(2, NumRB), TBSBits(2, NumRB)/8; got != want {
		t.Fatalf("TBSBytes = %d, want %d", got, want)
	}
}

func TestClampITbs(t *testing.T) {
	cases := []struct{ in, want int }{
		{-1, 0}, {0, 0}, {13, 13}, {26, 26}, {27, 26}, {1000, 26},
	}
	for _, tc := range cases {
		if got := ClampITbs(tc.in); got != tc.want {
			t.Errorf("ClampITbs(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestITbsForSINRMonotone(t *testing.T) {
	prev := -1
	for s := -20.0; s <= 40; s += 0.5 {
		i := ITbsForSINR(s)
		if i < prev {
			t.Fatalf("ITbsForSINR not monotone at %v dB: %d < %d", s, i, prev)
		}
		prev = i
	}
	if ITbsForSINR(-30) != MinITbs {
		t.Error("very low SINR should map to MinITbs")
	}
	if ITbsForSINR(50) != MaxITbs {
		t.Error("very high SINR should map to MaxITbs")
	}
}
