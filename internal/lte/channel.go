package lte

import "fmt"

// Channel models the per-UE downlink link quality over time as an iTbs
// index per TTI. Implementations are driven by the eNodeB: Update is
// called once per TTI before any ITbs queries for that TTI.
type Channel interface {
	// Update advances the channel state to the given TTI.
	Update(tti int64)
	// ITbs returns the current iTbs index for the given UE.
	ITbs(ue int) int
	// NumUEs returns the number of UEs the channel models.
	NumUEs() int
}

// RangeUpdater is the optional parallel extension of Channel: a channel
// whose per-UE state for a TTI is independent of every other UE's (a
// pure function of the TTI index per UE) can have Update split across a
// worker pool as disjoint UE ranges. UpdateRange(tti, lo, hi) must
// write exactly the per-UE state Update(tti) would write for UEs in
// [lo, hi) and touch nothing else — no shared counters, no RNG. The
// mobility channel deliberately does not implement this: its random
// walk consumes a shared RNG stream in UE order, so it must stay
// sequential to keep draws byte-identical.
type RangeUpdater interface {
	UpdateRange(tti int64, lo, hi int)
}

// ChannelCatchUp is the optional fast-forward extension of Channel: a
// channel that implements it can advance across a span of TTIs during
// which nothing queried it, instead of being Updated once per TTI.
//
// CatchUp(fromTTI, toTTI) must leave the channel in a state
// byte-identical (including any RNG stream consumption) to calling
// Update(t) for every t in (fromTTI, toTTI) exclusive; the kernel then
// calls Update(toTTI) itself on the wake TTI. Channels whose Update is
// a pure function of the TTI index implement this as a no-op; stateful
// channels (e.g. the mobility random walk) replay their internal step
// boundaries. The simulation kernel only fast-forwards cells whose
// channel implements this interface.
type ChannelCatchUp interface {
	CatchUp(fromTTI, toTTI int64)
}

// StaticChannel gives every UE a fixed iTbs — the paper's static testbed
// scenario ("we set the iTbs value to 2").
type StaticChannel struct {
	perUE []int
}

var _ Channel = (*StaticChannel)(nil)

// NewStaticChannel builds a static channel from per-UE iTbs values.
func NewStaticChannel(perUE ...int) *StaticChannel {
	vals := make([]int, len(perUE))
	for i, v := range perUE {
		vals[i] = ClampITbs(v)
	}
	return &StaticChannel{perUE: vals}
}

// NewUniformStaticChannel builds a static channel with n UEs all at the
// same iTbs.
func NewUniformStaticChannel(n, iTbs int) *StaticChannel {
	vals := make([]int, n)
	for i := range vals {
		vals[i] = ClampITbs(iTbs)
	}
	return &StaticChannel{perUE: vals}
}

// Update implements Channel; static channels never change.
func (c *StaticChannel) Update(int64) {}

// UpdateRange implements RangeUpdater; static channels never change.
func (c *StaticChannel) UpdateRange(int64, int, int) {}

// CatchUp implements ChannelCatchUp; static channels never change.
func (c *StaticChannel) CatchUp(int64, int64) {}

// ITbs implements Channel.
func (c *StaticChannel) ITbs(ue int) int { return c.perUE[ue] }

// NumUEs implements Channel.
func (c *StaticChannel) NumUEs() int { return len(c.perUE) }

// CyclicChannel reproduces the paper's dynamic testbed scenario: the iTbs
// ramps from Min to Max over half a period and back down over the other
// half ("gradually increasing the iTbs from 1 to 12 for the first 2
// minutes, decreasing it back to 1 for the next 2 minutes"). Each UE may
// start the cycle at a different phase offset, modelling UE
// heterogeneity.
type CyclicChannel struct {
	Min, Max   int
	PeriodTTIs int64
	offsets    []int64
	current    []int
}

var _ Channel = (*CyclicChannel)(nil)

// NewCyclicChannel builds a cyclic channel for len(offsetTTIs) UEs. The
// period must be positive and Min <= Max.
func NewCyclicChannel(minITbs, maxITbs int, periodTTIs int64, offsetTTIs []int64) (*CyclicChannel, error) {
	if periodTTIs <= 0 {
		return nil, fmt.Errorf("lte: cyclic channel period must be positive, got %d", periodTTIs)
	}
	minITbs, maxITbs = ClampITbs(minITbs), ClampITbs(maxITbs)
	if minITbs > maxITbs {
		return nil, fmt.Errorf("lte: cyclic channel min %d > max %d", minITbs, maxITbs)
	}
	offs := make([]int64, len(offsetTTIs))
	copy(offs, offsetTTIs)
	c := &CyclicChannel{
		Min:        minITbs,
		Max:        maxITbs,
		PeriodTTIs: periodTTIs,
		offsets:    offs,
		current:    make([]int, len(offsetTTIs)),
	}
	c.Update(0)
	return c, nil
}

// Update implements Channel.
func (c *CyclicChannel) Update(tti int64) {
	c.UpdateRange(tti, 0, len(c.current))
}

// UpdateRange implements RangeUpdater: each UE's value is a pure
// function of (tti, offset), so disjoint UE ranges commute.
func (c *CyclicChannel) UpdateRange(tti int64, lo, hi int) {
	for ue := lo; ue < hi; ue++ {
		c.current[ue] = c.valueAt(tti + c.offsets[ue])
	}
}

func (c *CyclicChannel) valueAt(tti int64) int {
	phase := tti % c.PeriodTTIs
	if phase < 0 {
		phase += c.PeriodTTIs
	}
	half := c.PeriodTTIs / 2
	span := float64(c.Max - c.Min)
	var frac float64
	if phase < half {
		frac = float64(phase) / float64(half)
	} else {
		frac = float64(c.PeriodTTIs-phase) / float64(c.PeriodTTIs-half)
	}
	return ClampITbs(c.Min + int(frac*span+0.5))
}

// CatchUp implements ChannelCatchUp: Update is a pure function of the
// TTI index, so skipped TTIs leave no residue — the wake-TTI Update
// recomputes everything.
func (c *CyclicChannel) CatchUp(int64, int64) {}

// ITbs implements Channel.
func (c *CyclicChannel) ITbs(ue int) int { return c.current[ue] }

// NumUEs implements Channel.
func (c *CyclicChannel) NumUEs() int { return len(c.current) }

// TraceChannel replays per-UE iTbs traces — the "trace based model" row
// of the paper's Table III. Each trace is sampled at a fixed step; the
// trace wraps around when the simulation outlives it.
type TraceChannel struct {
	traces   [][]int
	stepTTIs int64
	current  []int
}

var _ Channel = (*TraceChannel)(nil)

// NewTraceChannel builds a trace channel. Every trace must be non-empty
// and stepTTIs positive.
func NewTraceChannel(traces [][]int, stepTTIs int64) (*TraceChannel, error) {
	if stepTTIs <= 0 {
		return nil, fmt.Errorf("lte: trace step must be positive, got %d", stepTTIs)
	}
	cp := make([][]int, len(traces))
	for i, tr := range traces {
		if len(tr) == 0 {
			return nil, fmt.Errorf("lte: trace for UE %d is empty", i)
		}
		cp[i] = make([]int, len(tr))
		for j, v := range tr {
			cp[i][j] = ClampITbs(v)
		}
	}
	c := &TraceChannel{traces: cp, stepTTIs: stepTTIs, current: make([]int, len(cp))}
	c.Update(0)
	return c, nil
}

// Update implements Channel.
func (c *TraceChannel) Update(tti int64) {
	c.UpdateRange(tti, 0, len(c.traces))
}

// UpdateRange implements RangeUpdater: trace playback is a pure
// function of the TTI index per UE.
func (c *TraceChannel) UpdateRange(tti int64, lo, hi int) {
	idx := tti / c.stepTTIs
	for ue := lo; ue < hi; ue++ {
		tr := c.traces[ue]
		c.current[ue] = tr[int(idx%int64(len(tr)))]
	}
}

// CatchUp implements ChannelCatchUp: trace playback is a pure function
// of the TTI index.
func (c *TraceChannel) CatchUp(int64, int64) {}

// ITbs implements Channel.
func (c *TraceChannel) ITbs(ue int) int { return c.current[ue] }

// NumUEs implements Channel.
func (c *TraceChannel) NumUEs() int { return len(c.traces) }
