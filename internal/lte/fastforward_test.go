package lte

import (
	"testing"

	"github.com/flare-sim/flare/internal/sim"
)

// Unit tests for the radio-layer fast-forward primitives: tickIdle's
// iterated catch-up, the channel CatchUp contract, and the ENodeB idle
// predicates. The byte-exactness bar is absolute — every comparison
// here is ==, not a tolerance.

// tickIdleReference is the semantics tickIdle must reproduce: k literal
// idle ticks.
func tickIdleReference(b *Bearer, k int64) {
	for i := int64(0); i < k; i++ {
		b.tick(0)
	}
}

func bearerAccounting(b *Bearer) [4]float64 {
	return [4]float64{b.avgTput, b.fastTput, b.gbrCredit, b.mbrCredit}
}

func TestTickIdleMatchesIteratedTicks(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Bearer
	}{
		{"plain", func() *Bearer { return &Bearer{} }},
		{"gbr", func() *Bearer { return &Bearer{Class: ClassVideo, GBRBits: 2.5e6} }},
		{"mbr", func() *Bearer { return &Bearer{Class: ClassVideo, MBRBits: 4e6} }},
		{"gbr+mbr", func() *Bearer { return &Bearer{Class: ClassVideo, GBRBits: 1e6, MBRBits: 3e6} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, k := range []int64{0, 1, 7, 100, 5000, 200_000} {
				fast, slow := tc.mk(), tc.mk()
				// Warm both with identical traffic so the EWMAs and
				// credits start mid-decay, not at zero.
				for i := 0; i < 50; i++ {
					fast.tick(12_000)
					slow.tick(12_000)
				}
				fast.tickIdle(k)
				tickIdleReference(slow, k)
				if bearerAccounting(fast) != bearerAccounting(slow) ||
					fast.mbrPrimed != slow.mbrPrimed {
					t.Fatalf("k=%d: tickIdle diverged from %d iterated ticks:\nfast %v\nslow %v",
						k, k, bearerAccounting(fast), bearerAccounting(slow))
				}
			}
		})
	}
}

func TestTickIdleThenResumeMatches(t *testing.T) {
	// A skip followed by live traffic must leave the bearer exactly where
	// the naive path would: the fixed-point early exit may only drop
	// provably no-op ticks.
	fast, slow := &Bearer{Class: ClassVideo, GBRBits: 2e6, MBRBits: 6e6}, &Bearer{Class: ClassVideo, GBRBits: 2e6, MBRBits: 6e6}
	for i := 0; i < 30; i++ {
		fast.tick(8_000)
		slow.tick(8_000)
	}
	fast.tickIdle(100_000)
	tickIdleReference(slow, 100_000)
	for i := 0; i < 30; i++ {
		fast.tick(5_000)
		slow.tick(5_000)
	}
	if bearerAccounting(fast) != bearerAccounting(slow) {
		t.Fatalf("post-resume state diverged:\nfast %v\nslow %v",
			bearerAccounting(fast), bearerAccounting(slow))
	}
}

func TestMobilityCatchUpMatchesStepwise(t *testing.T) {
	cfg := DefaultMobilityConfig(3)
	mkPair := func() (*MobilityChannel, *MobilityChannel) {
		a, err := NewMobilityChannel(cfg, sim.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewMobilityChannel(cfg, sim.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	spans := []struct{ from, to int64 }{
		{0, 1}, {0, 999}, {0, 1000}, {0, 1001},
		{500, 2500}, {999, 1001}, {1000, 3000}, {123, 45_678},
	}
	for _, span := range spans {
		fast, slow := mkPair()
		// Walk both to the skip start the naive way.
		for tti := int64(0); tti <= span.from; tti++ {
			fast.Update(tti)
			slow.Update(tti)
		}
		// Naive: update every TTI through the span. Fast: CatchUp over the
		// gap, then the kernel's own Update at the wake TTI.
		for tti := span.from + 1; tti <= span.to; tti++ {
			slow.Update(tti)
		}
		fast.CatchUp(span.from, span.to)
		fast.Update(span.to)
		for ue := 0; ue < 3; ue++ {
			if fast.ITbs(ue) != slow.ITbs(ue) {
				t.Fatalf("span %+v: UE %d iTbs diverged: fast %d, slow %d",
					span, ue, fast.ITbs(ue), slow.ITbs(ue))
			}
		}
		// The RNG streams must be in lockstep too, or the next mobility
		// step after the skip would diverge.
		for tti := span.to + 1; tti <= span.to+3000; tti++ {
			fast.Update(tti)
			slow.Update(tti)
		}
		for ue := 0; ue < 3; ue++ {
			if fast.ITbs(ue) != slow.ITbs(ue) {
				t.Fatalf("span %+v: UE %d diverged after resume", span, ue)
			}
		}
	}
}

func TestStatelessChannelsAreCatchUppable(t *testing.T) {
	for _, tc := range []struct {
		name string
		ch   Channel
	}{
		{"static", NewUniformStaticChannel(2, 10)},
		{"cyclic", mustCyclic(t)},
	} {
		if _, ok := tc.ch.(ChannelCatchUp); !ok {
			t.Fatalf("%s channel does not implement ChannelCatchUp", tc.name)
		}
	}
}

func mustCyclic(t *testing.T) Channel {
	t.Helper()
	ch, err := NewCyclicChannel(4, 12, 1000, []int64{0, 250})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestENodeBIdleTracksBacklog(t *testing.T) {
	enb := NewENodeB(NewUniformStaticChannel(2, 12), PFScheduler{})
	b := &Bearer{ID: 0, UE: 0, Class: ClassVideo}
	if _, err := enb.AddBearer(b); err != nil {
		t.Fatal(err)
	}
	if !enb.Idle() {
		t.Fatal("empty cell not idle")
	}
	b.Enqueue(1000)
	if enb.Idle() {
		t.Fatal("cell with backlog reported idle")
	}
	for tti := int64(0); !enb.Idle() && tti < 1000; tti++ {
		enb.RunTTI(tti)
	}
	if !enb.Idle() {
		t.Fatal("cell did not drain")
	}
}

func TestFastForwardIdleMatchesNaiveTicks(t *testing.T) {
	mk := func() (*ENodeB, *Bearer) {
		enb := NewENodeB(NewUniformStaticChannel(1, 12), PFScheduler{})
		b := &Bearer{ID: 0, UE: 0, Class: ClassVideo, GBRBits: 1.5e6}
		if _, err := enb.AddBearer(b); err != nil {
			t.Fatal(err)
		}
		return enb, b
	}
	fastE, fastB := mk()
	slowE, slowB := mk()
	// Serve identical traffic, then run both until the cell drains: the
	// fast-forward contract only covers cells that are actually idle.
	for tti := int64(0); tti < 40; tti++ {
		fastB.Enqueue(2000)
		slowB.Enqueue(2000)
		fastE.RunTTI(tti)
		slowE.RunTTI(tti)
	}
	idleAt := int64(40)
	for ; !fastE.Idle() && idleAt < 10_000; idleAt++ {
		fastE.RunTTI(idleAt)
		slowE.RunTTI(idleAt)
	}
	if !fastE.Idle() || !slowE.Idle() {
		t.Fatal("cell did not drain")
	}
	const wake = 50_000
	// Naive: run every idle TTI. Fast: skip them, then run the wake TTI.
	for tti := idleAt; tti < wake; tti++ {
		slowE.RunTTI(tti)
	}
	if !fastE.CanFastForward() {
		t.Fatal("static channel cell must support fast-forward")
	}
	fastE.FastForwardIdle(idleAt-1, wake)
	fastE.RunTTI(wake)
	slowE.RunTTI(wake)
	if bearerAccounting(fastB) != bearerAccounting(slowB) {
		t.Fatalf("fast-forwarded bearer diverged:\nfast %v\nslow %v",
			bearerAccounting(fastB), bearerAccounting(slowB))
	}
}
