package lte

import (
	"testing"

	"github.com/flare-sim/flare/internal/sim"
)

func TestStaticChannel(t *testing.T) {
	c := NewStaticChannel(2, 7, 26)
	if c.NumUEs() != 3 {
		t.Fatalf("NumUEs = %d", c.NumUEs())
	}
	for tti := int64(0); tti < 100; tti += 10 {
		c.Update(tti)
		if c.ITbs(0) != 2 || c.ITbs(1) != 7 || c.ITbs(2) != 26 {
			t.Fatalf("static channel changed at tti %d", tti)
		}
	}
}

func TestUniformStaticChannel(t *testing.T) {
	c := NewUniformStaticChannel(4, 99) // clamped
	if c.NumUEs() != 4 {
		t.Fatalf("NumUEs = %d", c.NumUEs())
	}
	if c.ITbs(3) != MaxITbs {
		t.Fatalf("iTbs = %d, want clamped %d", c.ITbs(3), MaxITbs)
	}
}

func TestCyclicChannelShape(t *testing.T) {
	// 1 -> 12 -> 1 over 240000 TTIs (4 min), like the dynamic testbed.
	period := int64(240000)
	c, err := NewCyclicChannel(1, 12, period, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	c.Update(0)
	if got := c.ITbs(0); got != 1 {
		t.Errorf("at phase 0: iTbs = %d, want 1", got)
	}
	c.Update(period / 2)
	if got := c.ITbs(0); got != 12 {
		t.Errorf("at half period: iTbs = %d, want 12", got)
	}
	c.Update(period)
	if got := c.ITbs(0); got != 1 {
		t.Errorf("at full period: iTbs = %d, want 1", got)
	}
	// Quarter period is mid-ramp.
	c.Update(period / 4)
	if got := c.ITbs(0); got < 5 || got > 8 {
		t.Errorf("at quarter period: iTbs = %d, want mid-ramp", got)
	}
}

func TestCyclicChannelMonotoneRamp(t *testing.T) {
	period := int64(1000)
	c, err := NewCyclicChannel(1, 12, period, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for tti := int64(0); tti <= period/2; tti += 10 {
		c.Update(tti)
		if v := c.ITbs(0); v < prev {
			t.Fatalf("rising half not monotone at %d: %d < %d", tti, v, prev)
		} else {
			prev = v
		}
	}
	for tti := period / 2; tti <= period; tti += 10 {
		c.Update(tti)
		if v := c.ITbs(0); v > prev {
			t.Fatalf("falling half not monotone at %d: %d > %d", tti, v, prev)
		} else {
			prev = v
		}
	}
}

func TestCyclicChannelOffsets(t *testing.T) {
	period := int64(1000)
	c, err := NewCyclicChannel(1, 12, period, []int64{0, period / 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Update(0)
	if c.ITbs(0) == c.ITbs(1) {
		t.Fatal("offset UEs should be at different phases")
	}
	if c.ITbs(1) != 12 {
		t.Fatalf("UE with half-period offset should be at peak, got %d", c.ITbs(1))
	}
}

func TestCyclicChannelValidation(t *testing.T) {
	if _, err := NewCyclicChannel(1, 12, 0, nil); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewCyclicChannel(12, 1, 100, nil); err == nil {
		t.Error("min > max accepted")
	}
}

func TestTraceChannelReplayAndWrap(t *testing.T) {
	c, err := NewTraceChannel([][]int{{1, 5, 9}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		tti  int64
		iTbs int
	}{
		{0, 1}, {9, 1}, {10, 5}, {20, 9}, {30, 1}, {45, 5},
	}
	for _, w := range want {
		c.Update(w.tti)
		if got := c.ITbs(0); got != w.iTbs {
			t.Errorf("tti %d: iTbs = %d, want %d", w.tti, got, w.iTbs)
		}
	}
}

func TestTraceChannelValidation(t *testing.T) {
	if _, err := NewTraceChannel([][]int{{}}, 10); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTraceChannel([][]int{{1}}, 0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestTraceChannelDoesNotAliasInput(t *testing.T) {
	tr := [][]int{{3, 3, 3}}
	c, err := NewTraceChannel(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr[0][0] = 9
	c.Update(0)
	if c.ITbs(0) != 3 {
		t.Fatal("trace channel aliased caller slice")
	}
}

func TestMobilityChannelValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	bad := DefaultMobilityConfig(0)
	if _, err := NewMobilityChannel(bad, rng); err == nil {
		t.Error("zero UEs accepted")
	}
	bad = DefaultMobilityConfig(2)
	bad.AreaMeters = -1
	if _, err := NewMobilityChannel(bad, rng); err == nil {
		t.Error("negative area accepted")
	}
	bad = DefaultMobilityConfig(2)
	bad.MinSpeed = 5
	bad.MaxSpeed = 1
	if _, err := NewMobilityChannel(bad, rng); err == nil {
		t.Error("inverted speed range accepted")
	}
	bad = DefaultMobilityConfig(2)
	bad.PositionStepTTIs = 0
	if _, err := NewMobilityChannel(bad, rng); err == nil {
		t.Error("zero position step accepted")
	}
}

func TestMobilityChannelMovesUEs(t *testing.T) {
	cfg := DefaultMobilityConfig(4)
	c, err := NewMobilityChannel(cfg, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	x0, y0 := c.Position(0)
	for tti := int64(0); tti < 10000; tti++ {
		c.Update(tti)
	}
	x1, y1 := c.Position(0)
	if x0 == x1 && y0 == y1 {
		t.Fatal("UE did not move over 10 s")
	}
	// Position stays inside the area.
	for ue := 0; ue < 4; ue++ {
		x, y := c.Position(ue)
		if x < 0 || x > cfg.AreaMeters || y < 0 || y > cfg.AreaMeters {
			t.Fatalf("UE %d escaped area: (%v, %v)", ue, x, y)
		}
	}
}

func TestMobilityChannelITbsVariesAndStaysInRange(t *testing.T) {
	cfg := DefaultMobilityConfig(8)
	c, err := NewMobilityChannel(cfg, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for tti := int64(0); tti < 120000; tti++ { // 2 minutes
		c.Update(tti)
		for ue := 0; ue < 8; ue++ {
			i := c.ITbs(ue)
			if i < MinITbs || i > MaxITbs {
				t.Fatalf("iTbs out of range: %d", i)
			}
			seen[i] = true
		}
	}
	if len(seen) < 5 {
		t.Fatalf("mobile channel too static: only %d distinct iTbs values", len(seen))
	}
}

func TestMobilityChannelDeterministic(t *testing.T) {
	cfg := DefaultMobilityConfig(3)
	a, err := NewMobilityChannel(cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMobilityChannel(cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for tti := int64(0); tti < 5000; tti++ {
		a.Update(tti)
		b.Update(tti)
		for ue := 0; ue < 3; ue++ {
			if a.ITbs(ue) != b.ITbs(ue) {
				t.Fatalf("divergence at tti %d ue %d", tti, ue)
			}
		}
	}
}
