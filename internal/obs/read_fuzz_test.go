package obs

import (
	"bytes"
	"testing"
)

// FuzzReadJSONL feeds arbitrary byte streams to the trace reader and
// checks its safety contract: it never panics, an error always comes
// with a nil event slice, accepted events always carry a known kind,
// parsing is pure (same bytes, same result), and every accepted event
// survives an AppendJSON -> ReadJSONL round trip unchanged — the
// property that makes flaretrace's offline analysis trustworthy.
func FuzzReadJSONL(f *testing.F) {
	// A well-formed trace: header plus a few real events.
	var trace bytes.Buffer
	trace.WriteString(`{"schema":"` + SchemaVersion + `","fields":"doc"}` + "\n")
	for _, e := range []Event{
		BAISolve(0, 1, 3, 500_000, 41.25, 12_345),
		Clamp(0, 7, 1, 4, 3, 2, 1, 2, 1_000_000, 40_000, 2.5e6),
		Fault(1, SiteStats, 2),
		Fallback(0, 7, ReasonPolls, 3),
	} {
		line := e.AppendJSON(nil)
		trace.Write(line)
		trace.WriteByte('\n')
	}
	f.Add(trace.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"kind":"install","cell":0,"flow":1,"level":3,"bps":1e6}`))
	f.Add([]byte(`{"schema":"flare-trace/999"}`))
	f.Add([]byte(`{"kind":"no-such-kind","cell":0,"flow":0}`))
	f.Add([]byte(`{"kind":`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"kind":"clamp","bps":"NaN"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			if evs != nil {
				t.Fatalf("error %v returned alongside %d events", err, len(evs))
			}
			return
		}
		for i, e := range evs {
			if e.Kind == KindNone || e.Kind.String() == "" {
				t.Fatalf("accepted event %d has unknown kind %d", i, e.Kind)
			}
		}

		// Purity: a second pass over the same bytes is identical.
		again, err2 := ReadJSONL(bytes.NewReader(data))
		if err2 != nil || len(again) != len(evs) {
			t.Fatalf("re-read diverged: %d events err=%v vs %d events", len(again), err2, len(evs))
		}
		for i := range evs {
			if evs[i] != again[i] {
				t.Fatalf("re-read event %d differs: %+v vs %+v", i, evs[i], again[i])
			}
		}

		// Round trip: re-encode what was accepted, read it back.
		var buf bytes.Buffer
		var scratch []byte
		for i := range evs {
			scratch = evs[i].AppendJSON(scratch[:0])
			buf.Write(scratch)
			buf.WriteByte('\n')
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back) != len(evs) {
			t.Fatalf("round trip %d events, want %d", len(back), len(evs))
		}
		for i := range evs {
			if back[i] != evs[i] {
				t.Fatalf("round trip event %d: %+v != %+v", i, back[i], evs[i])
			}
		}
	})
}

// TestReadJSONLRejectsForeignSchema pins the header rule outside the
// fuzzer: a different major schema version is an error, a headerless
// stream is accepted.
func TestReadJSONLRejectsForeignSchema(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewReader([]byte(`{"schema":"flare-trace/999"}`))); err == nil {
		t.Fatal("foreign schema accepted")
	}
	evs, err := ReadJSONL(bytes.NewReader([]byte(`{"kind":"install","cell":0,"flow":1}`)))
	if err != nil || len(evs) != 1 {
		t.Fatalf("headerless stream: %d events, err=%v", len(evs), err)
	}
}
