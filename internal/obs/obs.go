// Package obs is the observability layer of the FLARE reproduction: a
// typed, allocation-free event model covering every decision point of
// the coordination loop (BAI solves, Algorithm-1 clamps, PCEF installs,
// poll/fallback transitions, stalls, fault injections, kernel jumps), a
// fixed-size flight-recorder ring with dump-on-error, streaming sinks
// (JSONL for flaretrace, in-memory for tests), and runtime counters /
// histograms exported in Prometheus text and expvar form.
//
// The package is engineered around one invariant: a disabled recorder
// costs nothing. "Disabled" is spelled *(nil *Recorder)* — every method
// is nil-safe — so instrumented code holds a possibly-nil *Recorder and
// calls it unconditionally. Call sites build the fixed-size Event value
// on the stack; with a nil recorder, Emit returns before touching it,
// and the Go compiler keeps the value from escaping. The engine
// benchmarks gate this: recording disabled must stay at the PR 3
// allocation floor.
//
// With recording enabled, Emit copies the event into the ring under a
// mutex, bumps the derived counters with atomics, and hands it to each
// sink through a reused encode buffer — no per-event heap allocation on
// the steady state.
package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// DefaultRingSize is the flight recorder's default capacity. At ~160
// bytes per event the default ring holds the last 4096 decisions in
// ~650 KiB — hours of BAI-cadence telemetry for a small cell, seconds
// for a busy one, and always the window that explains a crash.
const DefaultRingSize = 4096

// Options configures a Recorder.
type Options struct {
	// RingSize is the flight-recorder capacity in events; 0 means
	// DefaultRingSize, negative disables the ring (sinks/metrics only).
	RingSize int
	// Sinks receive every event as it is recorded.
	Sinks []Sink
	// NowTTI, when set, supplies the simulated time for events emitted
	// with a zero TTI (the simulation clock). When nil, such events are
	// stamped with wall-clock time instead (live servers).
	NowTTI func() int64
	// ErrorDump, when non-nil, is where DumpOnError writes the ring;
	// nil defaults to os.Stderr.
	ErrorDump io.Writer
}

// Recorder is the nil-safe telemetry handle. A nil *Recorder is the
// disabled state: every method no-ops (and Emit is zero-allocation).
// Construct an enabled one with New.
//
// Recorder is safe for concurrent use; the OneAPI server emits from
// multiple HTTP goroutines.
type Recorder struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	wrapped bool
	sinks   []Sink

	met    Metrics
	nowTTI func() int64
	errW   io.Writer

	// scratch is the event being recorded; pointer work (metrics fold,
	// sink writes) goes through this recorder-owned field so the caller's
	// Event argument never has its address taken and never escapes —
	// that is what keeps Emit allocation-free.
	scratch Event
}

// New builds an enabled recorder.
func New(opts Options) *Recorder {
	size := opts.RingSize
	if size == 0 {
		size = DefaultRingSize
	}
	r := &Recorder{
		sinks:  opts.Sinks,
		nowTTI: opts.NowTTI,
		errW:   opts.ErrorDump,
	}
	if size > 0 {
		r.ring = make([]Event, size)
	}
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Metrics returns the recorder's derived counters; nil on a disabled
// recorder (Metrics methods are themselves nil-safe).
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return &r.met
}

// SetNowTTI installs (or replaces) the simulated-time source used to
// stamp events emitted with a zero TTI. The engine calls this when a
// run starts so one recorder can be built before the Sim exists.
func (r *Recorder) SetNowTTI(now func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.nowTTI = now
	r.mu.Unlock()
}

// Emit records one event: stamps its time, updates the derived
// counters, stores it in the flight-recorder ring, and streams it to
// every sink. On a nil recorder it is a no-op — and because Event is a
// flat value built on the caller's stack, the disabled path allocates
// nothing.
//
//flare:hotpath
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.scratch = e
	ev := &r.scratch
	if ev.TTI == 0 && ev.Wall == 0 {
		if r.nowTTI != nil {
			ev.TTI = r.nowTTI()
		} else {
			ev.Wall = time.Now().UnixNano()
		}
	}
	r.met.observe(ev)
	if len(r.ring) > 0 {
		r.ring[r.next] = *ev
		r.next++
		if r.next == len(r.ring) {
			r.next = 0
			r.wrapped = true
		}
	}
	for _, s := range r.sinks {
		//flare:allow hotpath frontier: the registered Sink impls (flight ring copy, buffered JSONL encoder) amortize allocation; BenchmarkEmit's allocs/op floor gates them
		if err := s.Write(ev); err != nil {
			r.met.SinkErrors.Add(1)
		}
	}
	r.mu.Unlock()
}

// Snapshot returns the flight-recorder contents, oldest first. The
// slice is a copy; nil on a disabled recorder or an empty ring.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Recorder) snapshotLocked() []Event {
	if len(r.ring) == 0 || (r.next == 0 && !r.wrapped) {
		return nil
	}
	var out []Event
	if r.wrapped {
		out = make([]Event, 0, len(r.ring))
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = make([]Event, r.next)
		copy(out, r.ring[:r.next])
	}
	return out
}

// Dump writes the flight-recorder contents to w as a JSONL trace
// (schema header first), oldest event first.
func (r *Recorder) Dump(w io.Writer) error {
	if r == nil {
		return nil
	}
	events := r.Snapshot()
	if _, err := fmt.Fprintf(w, "{\"schema\":%q}\n", SchemaVersion); err != nil {
		return err
	}
	var buf []byte
	for i := range events {
		buf = events[i].AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// DumpOnError writes the flight-recorder ring to the configured error
// destination (default stderr) with a one-line banner naming err — the
// crash-context dump a production controller prints before dying. It
// no-ops on a nil recorder or a nil error.
func (r *Recorder) DumpOnError(err error) {
	if r == nil || err == nil {
		return
	}
	w := r.errW
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, "obs: flight recorder dump (%d events) after error: %v\n", len(r.Snapshot()), err)
	_ = r.Dump(w)
}

// Close closes every sink. The recorder stays usable (ring and
// counters); further emits simply reach no sinks.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	sinks := r.sinks
	r.sinks = nil
	r.mu.Unlock()
	var firstErr error
	for _, s := range sinks {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
