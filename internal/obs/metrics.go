package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
)

// Metrics are the runtime counters and histograms derived from the
// event stream: every Emit bumps the counter matching its kind with an
// atomic add, so the /metrics endpoint is always current without a
// second instrumentation pass. All methods are nil-safe — a nil
// *Metrics (from a disabled recorder) reads as all-zero.
type Metrics struct {
	Events          atomic.Int64
	BAISolves       atomic.Int64
	Clamps          atomic.Int64
	ClampHolds      atomic.Int64 // clamp granted below recommendation
	Installs        atomic.Int64
	InstallFailures atomic.Int64
	SessionOpens    atomic.Int64
	SessionCloses   atomic.Int64
	ReportsLost     atomic.Int64
	PollsLost       atomic.Int64
	StalePolls      atomic.Int64
	Deliveries      atomic.Int64
	Fallbacks       atomic.Int64
	Recoveries      atomic.Int64
	FlowStarts      atomic.Int64
	FlowDepartures  atomic.Int64
	StallStarts     atomic.Int64
	StallEnds       atomic.Int64
	FaultsInjected  atomic.Int64
	FastForwards    atomic.Int64
	Retries         atomic.Int64
	Reopens         atomic.Int64
	ClientFailures  atomic.Int64
	Admits          atomic.Int64
	Rejects         atomic.Int64
	QueuePromotes   atomic.Int64
	Downgrades      atomic.Int64
	Restores        atomic.Int64
	Handovers       atomic.Int64
	SinkErrors      atomic.Int64

	// SolveLatency aggregates KindBAISolve durations.
	SolveLatency Histogram
}

// observe folds one event into the counters.
func (m *Metrics) observe(e *Event) {
	m.Events.Add(1)
	switch e.Kind {
	case KindBAISolve:
		m.BAISolves.Add(1)
		m.SolveLatency.Observe(e.DurNs)
	case KindClamp:
		m.Clamps.Add(1)
		if e.Level < e.Reco {
			m.ClampHolds.Add(1)
		}
	case KindInstall:
		m.Installs.Add(1)
	case KindInstallFail:
		m.InstallFailures.Add(1)
	case KindSessionOpen:
		m.SessionOpens.Add(1)
	case KindSessionClose:
		m.SessionCloses.Add(1)
	case KindReportLost:
		m.ReportsLost.Add(1)
	case KindPollLost:
		m.PollsLost.Add(1)
	case KindStale:
		m.StalePolls.Add(1)
	case KindDeliver:
		m.Deliveries.Add(1)
	case KindFallback:
		m.Fallbacks.Add(1)
	case KindRecover:
		m.Recoveries.Add(1)
	case KindFlowStart:
		m.FlowStarts.Add(1)
	case KindFlowDepart:
		m.FlowDepartures.Add(1)
	case KindStallStart:
		m.StallStarts.Add(1)
	case KindStallEnd:
		m.StallEnds.Add(1)
	case KindFault:
		m.FaultsInjected.Add(1)
	case KindFastForward:
		m.FastForwards.Add(1)
	case KindRetry:
		m.Retries.Add(1)
	case KindReopen:
		m.Reopens.Add(1)
	case KindClientFail:
		m.ClientFailures.Add(1)
	case KindAdmit:
		m.Admits.Add(1)
	case KindReject:
		m.Rejects.Add(1)
	case KindQueuePromote:
		m.QueuePromotes.Add(1)
	case KindDowngrade:
		m.Downgrades.Add(1)
	case KindRestore:
		m.Restores.Add(1)
	case KindHandover:
		m.Handovers.Add(1)
	}
}

// counterRow pairs an exported name with its counter for the text
// renderers. Name style is Prometheus snake_case.
func (m *Metrics) counters() []struct {
	Name string
	V    int64
} {
	return []struct {
		Name string
		V    int64
	}{
		{"events_total", m.Events.Load()},
		{"bai_solves_total", m.BAISolves.Load()},
		{"clamps_total", m.Clamps.Load()},
		{"clamp_holds_total", m.ClampHolds.Load()},
		{"installs_total", m.Installs.Load()},
		{"install_failures_total", m.InstallFailures.Load()},
		{"session_opens_total", m.SessionOpens.Load()},
		{"session_closes_total", m.SessionCloses.Load()},
		{"reports_lost_total", m.ReportsLost.Load()},
		{"polls_lost_total", m.PollsLost.Load()},
		{"stale_polls_total", m.StalePolls.Load()},
		{"deliveries_total", m.Deliveries.Load()},
		{"fallbacks_total", m.Fallbacks.Load()},
		{"recoveries_total", m.Recoveries.Load()},
		{"flow_starts_total", m.FlowStarts.Load()},
		{"flow_departures_total", m.FlowDepartures.Load()},
		{"stall_starts_total", m.StallStarts.Load()},
		{"stall_ends_total", m.StallEnds.Load()},
		{"faults_injected_total", m.FaultsInjected.Load()},
		{"fast_forwards_total", m.FastForwards.Load()},
		{"client_retries_total", m.Retries.Load()},
		{"client_reopens_total", m.Reopens.Load()},
		{"client_failures_total", m.ClientFailures.Load()},
		{"admits_total", m.Admits.Load()},
		{"rejects_total", m.Rejects.Load()},
		{"queue_promotes_total", m.QueuePromotes.Load()},
		{"downgrades_total", m.Downgrades.Load()},
		{"restores_total", m.Restores.Load()},
		{"handovers_total", m.Handovers.Load()},
		{"sink_errors_total", m.SinkErrors.Load()},
	}
}

// Snapshot returns the counters as a name → value map (the expvar /
// /debug/flare JSON shape), plus solver-latency summary fields.
func (m *Metrics) Snapshot() map[string]any {
	out := make(map[string]any, 28)
	if m == nil {
		return out
	}
	for _, c := range m.counters() {
		out[c.Name] = c.V
	}
	n, sumNs := m.SolveLatency.CountSum()
	out["solver_latency_count"] = n
	out["solver_latency_sum_seconds"] = float64(sumNs) / 1e9
	if n > 0 {
		out["solver_latency_mean_seconds"] = float64(sumNs) / 1e9 / float64(n)
	}
	return out
}

// WritePrometheus renders the counters and the solver-latency histogram
// in the Prometheus text exposition format, prefixed flare_.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	for _, c := range m.counters() {
		if _, err := fmt.Fprintf(w, "# TYPE flare_%s counter\nflare_%s %d\n", c.Name, c.Name, c.V); err != nil {
			return err
		}
	}
	return m.SolveLatency.writePrometheus(w, "flare_solver_latency_seconds")
}

// histBuckets is the number of log2 latency buckets: bucket i counts
// observations in (2^(i-1), 2^i] microseconds, so the histogram spans
// 1 µs .. ~8.4 s with bucket 0 collecting everything at or below 1 µs
// and the last bucket acting as +Inf overflow.
const histBuckets = 24

// Histogram is a fixed-bucket, atomic, log2-scaled latency histogram —
// no allocation, no lock, safe for concurrent Observe.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if h == nil || ns < 0 {
		return
	}
	us := ns / 1000
	b := bits.Len64(uint64(us)) // 0 for <=1µs upward
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// CountSum returns the observation count and the summed nanoseconds.
func (h *Histogram) CountSum() (count, sumNs int64) {
	if h == nil {
		return 0, 0
	}
	return h.count.Load(), h.sumNs.Load()
}

// Quantile returns an upper bound on the q-quantile in seconds (the
// bucket boundary at or above it); 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			return bucketUpperSeconds(i)
		}
	}
	return bucketUpperSeconds(histBuckets - 1)
}

// bucketUpperSeconds is bucket i's inclusive upper bound in seconds.
func bucketUpperSeconds(i int) float64 {
	return float64(int64(1)<<uint(i)) / 1e6
}

// WritePrometheus renders the histogram in the Prometheus text
// exposition format under the given metric name. Exported so subsystems
// with their own histograms (e.g. the flareload round-trip tracker) can
// share one exposition path.
func (h *Histogram) WritePrometheus(w io.Writer, name string) error {
	return h.writePrometheus(w, name)
}

func (h *Histogram) writePrometheus(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i := 0; i < histBuckets-1; i++ {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bucketUpperSeconds(i), cum); err != nil {
			return err
		}
	}
	cum += h.counts[histBuckets-1].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	count, sumNs := h.CountSum()
	_, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, float64(sumNs)/1e9, name, count)
	return err
}
