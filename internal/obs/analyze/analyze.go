// Package analyze reconstructs decision-level narratives from a FLARE
// telemetry event stream (internal/obs): per-flow decision timelines,
// per-cell solver summaries, and the causal chains behind fallback
// transitions and playback stalls. It is the library under
// cmd/flaretrace and works directly off []obs.Event, so tests and
// in-process tools can analyze a MemorySink without a round trip
// through JSONL.
package analyze

import (
	"sort"

	"github.com/flare-sim/flare/internal/obs"
)

// DefaultTTIsPerSecond converts TTI stamps to seconds in reports (the
// LTE 1 ms TTI).
const DefaultTTIsPerSecond = 1000.0

// Options parameterises an analysis.
type Options struct {
	// TTIsPerSecond converts TTI stamps to seconds; 0 means the LTE
	// default (1000).
	TTIsPerSecond float64
}

// SolverStats summarises one cell's BAI solves.
type SolverStats struct {
	Cell         int32
	Solves       int
	MeanNs       int64
	P50Ns        int64
	P95Ns        int64
	MaxNs        int64
	MeanValue    float64 // mean Eq. 2/3 objective
	LastValue    float64
	FirstTTI     int64
	LastTTI      int64
	InstallFails int // install failures across the cell's flows
}

// FlowTimeline is one flow's decision history.
type FlowTimeline struct {
	Flow int32
	Cell int32
	// Events holds every flow-scoped event, in stream order.
	Events []obs.Event

	Installs     int
	InstallFails int
	Delivers     int
	PollsLost    int
	Clamps       int
	ClampHolds   int // BAIs where the gate held below the recommendation
	Fallbacks    int
	Recoveries   int
	Retries      int
	Stalls       []Stall

	FirstLevel int32
	LastLevel  int32
	MaxLevel   int32
	LastBps    float64
}

// Stall is one rebuffering interval, annotated with what the control
// plane was doing to the flow when it began.
type Stall struct {
	Flow     int32
	StartTTI int64
	EndTTI   int64 // -1 when the trace ends mid-stall
	// InFallback reports whether the flow's plugin was degraded when
	// the stall began — the root-cause hint that separates "control
	// plane lost" stalls from radio-capacity ones.
	InFallback bool
	// LastEvent is the flow's last control-plane event before the
	// stall (zero Kind when none) — the decision nearest the cause.
	LastEvent obs.Event
}

// Chain is the full causal chain of one fallback transition: the
// contributing failures, the transition itself, and (when the trace
// includes it) the recovery.
type Chain struct {
	Flow   int32
	Cell   int32
	Reason obs.Reason // why the plugin degraded
	// Causes are the contributing events, oldest first: the consecutive
	// lost polls (ReasonPolls) or same-sequence deliveries
	// (ReasonStale) that tripped the detector.
	Causes []obs.Event
	// Faults are the cell-scoped injected faults that struck between
	// the first cause and the transition — the ground truth behind the
	// lost exchanges when fault injection produced them.
	Faults []obs.Event
	// FallbackTTI is when the plugin degraded.
	FallbackTTI int64
	// RecoverTTI is when it rejoined coordination; -1 if the trace ends
	// degraded.
	RecoverTTI int64
	// RecoverSeq is the fresh assignment sequence that restored
	// coordination (0 when not recovered).
	RecoverSeq int64
}

// Recovered reports whether the chain closes with a recovery.
func (c *Chain) Recovered() bool { return c.RecoverTTI >= 0 }

// AdmissionStory is one flow's journey through admission control:
// zero or more refusals, an optional stay on the wait queue, and —
// when capacity allowed — the admit that let it into coordination.
type AdmissionStory struct {
	Flow int32
	Cell int32
	// Rejects counts refused open attempts before admission.
	Rejects int
	// Queued reports whether a refusal parked the session on the wait
	// queue (rather than turning it away outright).
	Queued bool
	// Promoted reports whether the admit came via a queue promotion.
	Promoted bool
	// FirstRejectTTI is when the first refusal happened (-1 if the flow
	// was admitted on its first attempt).
	FirstRejectTTI int64
	// AdmitTTI is when the session was admitted; -1 if the trace ends
	// with the flow still refused.
	AdmitTTI int64
}

// Admitted reports whether the story closes with an admission.
func (s *AdmissionStory) Admitted() bool { return s.AdmitTTI >= 0 }

// WaitTTIs is the refusal-to-admission wait (0 for first-try admits
// and for flows never admitted).
func (s *AdmissionStory) WaitTTIs() int64 {
	if s.FirstRejectTTI < 0 || s.AdmitTTI < 0 {
		return 0
	}
	return s.AdmitTTI - s.FirstRejectTTI
}

// OverloadEpisode is one contiguous span a cell's downgrade ladder
// spent engaged: from the first shed step to the restore that returned
// the depth to zero. Admission activity inside the span is folded in,
// so one episode reads as the full overload narrative —
// reject -> queue -> admit -> downgrade -> restore.
type OverloadEpisode struct {
	Cell     int32
	StartTTI int64
	EndTTI   int64 // -1 when the trace ends still shed
	// MaxShed is the deepest ladder depth reached.
	MaxShed int32
	// PeakShare is the highest video RB share observed at a shed step.
	PeakShare float64
	// Downgrades and Restores count ladder steps within the episode.
	Downgrades int
	Restores   int
	// Rejects and Promotes count admission activity within the episode.
	Rejects  int
	Promotes int
}

// Resolved reports whether the episode closes with the ladder fully
// released.
func (ep *OverloadEpisode) Resolved() bool { return ep.EndTTI >= 0 }

// Analysis is the reconstructed view of one trace.
type Analysis struct {
	Events  int
	Solvers []SolverStats   // per cell, ascending cell ID
	Flows   []*FlowTimeline // ascending flow ID
	Chains  []*Chain        // in transition order
	Stalls  []Stall         // in start order

	// Admissions holds one story per flow that met the admission
	// controller (ascending flow ID); empty without admission control.
	Admissions []*AdmissionStory
	// Episodes holds the cells' overload spans, in start order.
	Episodes []*OverloadEpisode

	TTIsPerSecond float64
}

// Seconds converts a TTI stamp to seconds for display.
func (a *Analysis) Seconds(tti int64) float64 {
	return float64(tti) / a.TTIsPerSecond
}

// Flow returns the timeline for one flow (nil if absent).
func (a *Analysis) Flow(id int32) *FlowTimeline {
	for _, f := range a.Flows {
		if f.Flow == id {
			return f
		}
	}
	return nil
}

type solverAcc struct {
	durs   []int64
	values float64
	stats  SolverStats
}

// Analyze reconstructs timelines, solver summaries, and causal chains
// from an event stream (as returned by obs.ReadJSONL, Recorder.Snapshot
// or MemorySink.Events). Events must be in emission order.
func Analyze(events []obs.Event, opts Options) *Analysis {
	if opts.TTIsPerSecond <= 0 {
		opts.TTIsPerSecond = DefaultTTIsPerSecond
	}
	a := &Analysis{Events: len(events), TTIsPerSecond: opts.TTIsPerSecond}

	solvers := map[int32]*solverAcc{}
	flows := map[int32]*FlowTimeline{}
	cellFaults := map[int32][]obs.Event{}
	openChains := map[int32]*Chain{}
	openStalls := map[int32]*Stall{}
	inFallback := map[int32]bool{}
	admissions := map[int32]*AdmissionStory{}
	openEpisodes := map[int32]*OverloadEpisode{}

	storyOf := func(e *obs.Event) *AdmissionStory {
		s, ok := admissions[e.Flow]
		if !ok {
			s = &AdmissionStory{Flow: e.Flow, Cell: e.Cell, FirstRejectTTI: -1, AdmitTTI: -1}
			admissions[e.Flow] = s
		}
		return s
	}

	flowOf := func(e *obs.Event) *FlowTimeline {
		f, ok := flows[e.Flow]
		if !ok {
			f = &FlowTimeline{Flow: e.Flow, Cell: e.Cell, FirstLevel: -1, LastLevel: -1, MaxLevel: -1}
			flows[e.Flow] = f
		}
		return f
	}

	for i := range events {
		e := events[i]
		switch e.Kind {
		case obs.KindBAISolve:
			s, ok := solvers[e.Cell]
			if !ok {
				s = &solverAcc{stats: SolverStats{Cell: e.Cell, FirstTTI: e.TTI}}
				solvers[e.Cell] = s
			}
			s.stats.Solves++
			s.stats.LastTTI = e.TTI
			s.stats.LastValue = e.Value
			s.values += e.Value
			s.durs = append(s.durs, e.DurNs)
			if e.DurNs > s.stats.MaxNs {
				s.stats.MaxNs = e.DurNs
			}
		case obs.KindFault:
			cellFaults[e.Cell] = append(cellFaults[e.Cell], e)
		case obs.KindDowngrade:
			ep, ok := openEpisodes[e.Cell]
			if !ok {
				ep = &OverloadEpisode{Cell: e.Cell, StartTTI: e.TTI, EndTTI: -1}
				openEpisodes[e.Cell] = ep
				a.Episodes = append(a.Episodes, ep)
			}
			ep.Downgrades++
			if e.Level > ep.MaxShed {
				ep.MaxShed = e.Level
			}
			if e.Value > ep.PeakShare {
				ep.PeakShare = e.Value
			}
		case obs.KindRestore:
			if ep := openEpisodes[e.Cell]; ep != nil {
				ep.Restores++
				if e.Level == 0 {
					// Ladder fully released: the episode is over.
					ep.EndTTI = e.TTI
					delete(openEpisodes, e.Cell)
				}
			}
		}
		if e.Flow < 0 {
			continue
		}
		f := flowOf(&e)
		f.Events = append(f.Events, e)
		switch e.Kind {
		case obs.KindInstall:
			f.Installs++
			f.LastLevel = e.Level
			f.LastBps = e.Bps
			if f.FirstLevel < 0 {
				f.FirstLevel = e.Level
			}
			if e.Level > f.MaxLevel {
				f.MaxLevel = e.Level
			}
		case obs.KindInstallFail:
			f.InstallFails++
			if s, ok := solvers[e.Cell]; ok {
				s.stats.InstallFails++
			}
		case obs.KindClamp:
			f.Clamps++
			if e.Level < e.Reco {
				f.ClampHolds++
			}
		case obs.KindDeliver:
			f.Delivers++
			// A fresh delivery closes a pending fallback chain when the
			// recover event follows; remember it as candidate evidence.
		case obs.KindPollLost:
			f.PollsLost++
		case obs.KindRetry:
			f.Retries++
		case obs.KindReject:
			s := storyOf(&e)
			s.Rejects++
			if s.FirstRejectTTI < 0 {
				s.FirstRejectTTI = e.TTI
			}
			if e.Need == 1 {
				s.Queued = true
			}
			if ep := openEpisodes[e.Cell]; ep != nil {
				ep.Rejects++
			}
		case obs.KindQueuePromote:
			storyOf(&e).Promoted = true
			if ep := openEpisodes[e.Cell]; ep != nil {
				ep.Promotes++
			}
		case obs.KindAdmit:
			s := storyOf(&e)
			if s.AdmitTTI < 0 {
				s.AdmitTTI = e.TTI
			}
			if e.Need == 1 {
				s.Promoted = true
			}
		case obs.KindFallback:
			f.Fallbacks++
			inFallback[e.Flow] = true
			ch := &Chain{
				Flow: e.Flow, Cell: e.Cell, Reason: e.Reason,
				FallbackTTI: e.TTI, RecoverTTI: -1,
			}
			ch.Causes = trailingCauses(f.Events[:len(f.Events)-1], e.Reason)
			if len(ch.Causes) > 0 {
				from := ch.Causes[0].TTI
				for _, fe := range cellFaults[e.Cell] {
					if fe.TTI >= from && fe.TTI <= e.TTI {
						ch.Faults = append(ch.Faults, fe)
					}
				}
			}
			openChains[e.Flow] = ch
			a.Chains = append(a.Chains, ch)
		case obs.KindRecover:
			f.Recoveries++
			inFallback[e.Flow] = false
			if ch := openChains[e.Flow]; ch != nil {
				ch.RecoverTTI = e.TTI
				// The fresh delivery that restored coordination
				// immediately precedes the recover event.
				if d := lastOfKind(f.Events[:len(f.Events)-1], obs.KindDeliver); d != nil {
					ch.RecoverSeq = d.Seq
				}
				delete(openChains, e.Flow)
			}
		case obs.KindStallStart:
			st := &Stall{
				Flow: e.Flow, StartTTI: e.TTI, EndTTI: -1,
				InFallback: inFallback[e.Flow],
			}
			if len(f.Events) > 1 {
				st.LastEvent = lastControlEvent(f.Events[:len(f.Events)-1])
			}
			openStalls[e.Flow] = st
		case obs.KindStallEnd:
			if st := openStalls[e.Flow]; st != nil {
				st.EndTTI = e.TTI
				f.Stalls = append(f.Stalls, *st)
				a.Stalls = append(a.Stalls, *st)
				delete(openStalls, e.Flow)
			}
		}
	}
	// Trace ended mid-stall: keep the open stalls with EndTTI -1.
	for _, st := range openStalls {
		if f := flows[st.Flow]; f != nil {
			f.Stalls = append(f.Stalls, *st)
		}
		a.Stalls = append(a.Stalls, *st)
	}
	sort.Slice(a.Stalls, func(i, j int) bool { return a.Stalls[i].StartTTI < a.Stalls[j].StartTTI })

	for _, s := range solvers {
		if s.stats.Solves > 0 {
			s.stats.MeanValue = s.values / float64(s.stats.Solves)
			var total int64
			for _, d := range s.durs {
				total += d
			}
			s.stats.MeanNs = total / int64(len(s.durs))
			sort.Slice(s.durs, func(i, j int) bool { return s.durs[i] < s.durs[j] })
			s.stats.P50Ns = quantileNs(s.durs, 0.50)
			s.stats.P95Ns = quantileNs(s.durs, 0.95)
		}
		a.Solvers = append(a.Solvers, s.stats)
	}
	sort.Slice(a.Solvers, func(i, j int) bool { return a.Solvers[i].Cell < a.Solvers[j].Cell })

	for _, f := range flows {
		a.Flows = append(a.Flows, f)
	}
	sort.Slice(a.Flows, func(i, j int) bool { return a.Flows[i].Flow < a.Flows[j].Flow })

	for _, s := range admissions {
		a.Admissions = append(a.Admissions, s)
	}
	sort.Slice(a.Admissions, func(i, j int) bool { return a.Admissions[i].Flow < a.Admissions[j].Flow })
	// Episodes were appended in start order; open ones keep EndTTI -1.
	return a
}

// trailingCauses walks a flow's history backwards collecting the
// consecutive contributing events for a fallback with the given reason:
// lost polls for ReasonPolls, same-sequence deliveries for ReasonStale.
func trailingCauses(history []obs.Event, reason obs.Reason) []obs.Event {
	var causes []obs.Event
	wantSeq := int64(-1)
	for i := len(history) - 1; i >= 0; i-- {
		e := history[i]
		switch reason {
		case obs.ReasonPolls:
			if e.Kind != obs.KindPollLost {
				return reverse(causes)
			}
		case obs.ReasonStale:
			if e.Kind != obs.KindDeliver {
				return reverse(causes)
			}
			if wantSeq < 0 {
				wantSeq = e.Seq
			} else if e.Seq != wantSeq {
				return reverse(causes)
			}
		default:
			return reverse(causes)
		}
		causes = append(causes, e)
	}
	return reverse(causes)
}

func reverse(ev []obs.Event) []obs.Event {
	for i, j := 0, len(ev)-1; i < j; i, j = i+1, j-1 {
		ev[i], ev[j] = ev[j], ev[i]
	}
	return ev
}

func lastOfKind(history []obs.Event, kind obs.Kind) *obs.Event {
	for i := len(history) - 1; i >= 0; i-- {
		if history[i].Kind == kind {
			return &history[i]
		}
	}
	return nil
}

// lastControlEvent returns the flow's most recent control-plane event
// (anything but stall markers), or a zero event.
func lastControlEvent(history []obs.Event) obs.Event {
	for i := len(history) - 1; i >= 0; i-- {
		k := history[i].Kind
		if k != obs.KindStallStart && k != obs.KindStallEnd {
			return history[i]
		}
	}
	return obs.Event{}
}

// quantileNs returns the q-quantile of sorted durations (nearest rank).
func quantileNs(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)) + 0.5)
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
