package analyze_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/obs/analyze"
)

// TestAnalyzeSyntheticChain checks chain reconstruction on a hand-built
// stream: three lost polls cause a fallback, a fresh delivery recovers.
func TestAnalyzeSyntheticChain(t *testing.T) {
	ev := []obs.Event{
		{Kind: obs.KindFlowStart, TTI: 0, Flow: 3},
		{Kind: obs.KindDeliver, TTI: 1000, Flow: 3, Seq: 1, Bps: 1e6},
		{Kind: obs.KindFault, TTI: 1900, Flow: -1, Site: obs.SitePoll, Outcome: 1},
		{Kind: obs.KindPollLost, TTI: 2000, Flow: 3, Site: obs.SitePoll},
		{Kind: obs.KindPollLost, TTI: 3000, Flow: 3, Site: obs.SitePoll},
		{Kind: obs.KindPollLost, TTI: 4000, Flow: 3, Site: obs.SitePoll},
		{Kind: obs.KindFallback, TTI: 4000, Flow: 3, Reason: obs.ReasonPolls, Streak: 3},
		{Kind: obs.KindStallStart, TTI: 5000, Flow: 3},
		{Kind: obs.KindStallEnd, TTI: 7000, Flow: 3},
		{Kind: obs.KindDeliver, TTI: 9000, Flow: 3, Seq: 9, Bps: 2e6},
		{Kind: obs.KindRecover, TTI: 9000, Flow: 3},
	}
	a := analyze.Analyze(ev, analyze.Options{})
	if len(a.Chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(a.Chains))
	}
	c := a.Chains[0]
	if c.Flow != 3 || c.Reason != obs.ReasonPolls {
		t.Fatalf("chain = %+v", c)
	}
	if len(c.Causes) != 3 {
		t.Fatalf("causes = %d, want 3 lost polls", len(c.Causes))
	}
	if len(c.Faults) != 0 {
		// The injected fault precedes the first cause (TTI 1900 < 2000).
		t.Fatalf("faults in window = %d, want 0", len(c.Faults))
	}
	if !c.Recovered() || c.RecoverTTI != 9000 || c.RecoverSeq != 9 {
		t.Fatalf("recovery = TTI %d seq %d", c.RecoverTTI, c.RecoverSeq)
	}
	if len(a.Stalls) != 1 || !a.Stalls[0].InFallback {
		t.Fatalf("stalls = %+v, want one in-fallback stall", a.Stalls)
	}
	f := a.Flow(3)
	if f == nil || f.PollsLost != 3 || f.Fallbacks != 1 || f.Recoveries != 1 {
		t.Fatalf("flow timeline = %+v", f)
	}

	var buf bytes.Buffer
	if err := analyze.WriteReport(&buf, a); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"fallback causal chains", "degraded (consecutive failed polls) after 3 lost polls", "recovered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCausalChainFromFaultedRun is the end-to-end acceptance test: a
// recorded FLARE cell with a control-plane blackout (the ext-faults
// scenario shape) must yield at least one complete causal chain — poll
// losses -> fallback -> recovery after the blackout lifts — when its
// trace is analyzed.
func TestCausalChainFromFaultedRun(t *testing.T) {
	mem := obs.NewMemorySink()
	rec := obs.New(obs.Options{RingSize: -1, Sinks: []obs.Sink{mem}})

	cfg := cellsim.DefaultConfig(cellsim.SchemeFLARE)
	cfg.Duration = 120 * time.Second
	cfg.NumVideo = 4
	cfg.Player = has.DefaultPlayerConfig()
	third := cfg.Duration / 3
	cfg.ControlFaults = faults.Config{
		Seed:      0xfa_17_5eed,
		Blackouts: []faults.Window{{From: third, To: 2 * third}},
	}
	cfg.Obs = rec
	if _, err := cellsim.Run(cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	events := mem.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}

	a := analyze.Analyze(events, analyze.Options{})
	if len(a.Chains) == 0 {
		t.Fatal("no fallback chains reconstructed from blackout run")
	}
	var full *analyze.Chain
	for _, c := range a.Chains {
		if c.Reason == obs.ReasonPolls && len(c.Causes) >= 3 && c.Recovered() {
			full = c
			break
		}
	}
	if full == nil {
		t.Fatalf("no complete poll-loss chain among %d chains: %+v", len(a.Chains), a.Chains[0])
	}
	// Every link of the chain must be causally ordered: causes strictly
	// before the transition, recovery strictly after.
	for _, cause := range full.Causes {
		if cause.Kind != obs.KindPollLost || cause.TTI > full.FallbackTTI {
			t.Fatalf("cause %+v not a poll loss before fallback @%d", cause, full.FallbackTTI)
		}
	}
	if full.RecoverTTI <= full.FallbackTTI {
		t.Fatalf("recovery @%d not after fallback @%d", full.RecoverTTI, full.FallbackTTI)
	}
	if full.RecoverSeq <= 0 {
		t.Fatalf("recovery carries no fresh assignment seq: %+v", full)
	}
	// The blackout is the root cause: injected faults must appear in
	// the chain's window.
	if len(full.Faults) == 0 {
		t.Fatal("chain window contains no injected faults despite blackout")
	}

	// The report must narrate the chain end to end.
	var buf bytes.Buffer
	if err := analyze.WriteReport(&buf, a); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"BAI solver", "fallback causal chains", "injected faults in window", "recovered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// The same trace must round-trip through JSONL unchanged.
	var jl bytes.Buffer
	sink := obs.NewJSONLSink(&jl)
	for i := range events {
		if err := sink.Write(&events[i]); err != nil {
			t.Fatalf("sink write: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("sink close: %v", err)
	}
	back, err := obs.ReadJSONL(bytes.NewReader(jl.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("JSONL round trip: %d events, want %d", len(back), len(events))
	}
	a2 := analyze.Analyze(back, analyze.Options{})
	if len(a2.Chains) != len(a.Chains) {
		t.Fatalf("chains after round trip: %d, want %d", len(a2.Chains), len(a.Chains))
	}
}

// TestRecordingDoesNotPerturbResults asserts the zero-interference
// contract: a recorded run and an unrecorded run of the same faulted
// configuration produce identical results.
func TestRecordingDoesNotPerturbResults(t *testing.T) {
	base := cellsim.DefaultConfig(cellsim.SchemeFLARE)
	base.Duration = 60 * time.Second
	base.NumVideo = 3
	base.Player = has.DefaultPlayerConfig()
	base.ControlFaults = faults.Config{Seed: 7, DropRate: 0.3}

	plain, err := cellsim.Run(base)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	recorded := base
	recorded.Obs = obs.New(obs.Options{RingSize: 1024})
	got, err := cellsim.Run(recorded)
	if err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	if len(plain.Clients) != len(got.Clients) {
		t.Fatalf("client counts differ: %d vs %d", len(plain.Clients), len(got.Clients))
	}
	for i := range plain.Clients {
		p, g := plain.Clients[i], got.Clients[i]
		if p != g {
			t.Fatalf("client %d diverged with recording:\n %+v\n %+v", i, p, g)
		}
	}
	if snap := recorded.Obs.Snapshot(); len(snap) == 0 {
		t.Fatal("recorded run produced no events")
	}
}

// TestAnalyzeSyntheticOverload checks the overload-episode and
// admission-story reconstruction on a hand-built stream: the ladder
// sheds twice while a session is refused, queued, and finally promoted,
// then the cell calms down and restores both steps.
func TestAnalyzeSyntheticOverload(t *testing.T) {
	ev := []obs.Event{
		{Kind: obs.KindAdmit, TTI: 500, Cell: 1, Flow: 2},
		{Kind: obs.KindDowngrade, TTI: 1000, Cell: 1, Flow: -1, Level: 1, Value: 0.97},
		{Kind: obs.KindReject, TTI: 1500, Cell: 1, Flow: 7, Need: 1},
		{Kind: obs.KindDowngrade, TTI: 2000, Cell: 1, Flow: -1, Level: 2, Value: 0.99},
		{Kind: obs.KindReject, TTI: 2500, Cell: 1, Flow: 7, Need: 1},
		{Kind: obs.KindQueuePromote, TTI: 3000, Cell: 1, Flow: 7, Streak: 0},
		{Kind: obs.KindAdmit, TTI: 3000, Cell: 1, Flow: 7, Need: 1},
		{Kind: obs.KindRestore, TTI: 6000, Cell: 1, Flow: -1, Level: 1, Value: 0.80},
		{Kind: obs.KindRestore, TTI: 7000, Cell: 1, Flow: -1, Level: 0, Value: 0.78},
	}
	a := analyze.Analyze(ev, analyze.Options{})

	if len(a.Episodes) != 1 {
		t.Fatalf("episodes = %d, want 1", len(a.Episodes))
	}
	ep := a.Episodes[0]
	if !ep.Resolved() || ep.StartTTI != 1000 || ep.EndTTI != 7000 {
		t.Fatalf("episode span = %d..%d (resolved %v)", ep.StartTTI, ep.EndTTI, ep.Resolved())
	}
	if ep.MaxShed != 2 || ep.PeakShare != 0.99 || ep.Downgrades != 2 || ep.Restores != 2 {
		t.Fatalf("episode = %+v", ep)
	}
	if ep.Rejects != 2 || ep.Promotes != 1 {
		t.Fatalf("episode admission activity = %d rejects %d promotes", ep.Rejects, ep.Promotes)
	}

	if len(a.Admissions) != 2 {
		t.Fatalf("admission stories = %d, want 2", len(a.Admissions))
	}
	direct, waited := a.Admissions[0], a.Admissions[1]
	if direct.Flow != 2 || !direct.Admitted() || direct.Rejects != 0 || direct.Promoted {
		t.Fatalf("first-try story = %+v", direct)
	}
	if waited.Flow != 7 || !waited.Admitted() || waited.Rejects != 2 || !waited.Queued || !waited.Promoted {
		t.Fatalf("queued story = %+v", waited)
	}
	if waited.WaitTTIs() != 1500 {
		t.Fatalf("wait = %d TTIs, want 1500", waited.WaitTTIs())
	}

	var buf bytes.Buffer
	if err := analyze.WriteReport(&buf, a); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"admission", "1 admitted first try, 1 after waiting",
		"overload episodes", "shed for 6.0s", "depth max 2",
		"2 rejects 1 promotions",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestOverloadEpisodesFromSaturatedRun is the end-to-end acceptance
// test for the saturation narrative: a recorded churn run past the
// cell's floor capacity must reconstruct at least one overload episode
// with admission activity inside it, and refused flows must appear as
// admission stories.
func TestOverloadEpisodesFromSaturatedRun(t *testing.T) {
	mem := obs.NewMemorySink()
	rec := obs.New(obs.Options{RingSize: -1, Sinks: []obs.Sink{mem}})

	cfg := cellsim.DefaultConfig(cellsim.SchemeFLARE)
	cfg.Duration = 90 * time.Second
	cfg.NumVideo = 0
	cfg.NumData = 0
	cfg.Ladder = has.TestbedLadder()
	cfg.SegmentDuration = 2 * time.Second
	cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: 2}
	cfg.Churn = cellsim.ChurnConfig{
		Enabled:          true,
		MeanInterarrival: time.Second,
		MeanDuration:     40 * time.Second,
	}
	cfg.Flare.AdmissionControl = true
	cfg.Flare.DowngradeLadder = true
	cfg.Obs = rec
	if _, err := cellsim.Run(cfg); err != nil {
		t.Fatalf("run: %v", err)
	}

	a := analyze.Analyze(mem.Events(), analyze.Options{})
	if len(a.Episodes) == 0 {
		t.Fatal("saturated run produced no overload episodes")
	}
	var withAdmission *analyze.OverloadEpisode
	for _, ep := range a.Episodes {
		if ep.Rejects > 0 {
			withAdmission = ep
			break
		}
	}
	if withAdmission == nil {
		t.Fatalf("no episode contains admission activity: %+v", a.Episodes[0])
	}
	if len(a.Admissions) == 0 {
		t.Fatal("no admission stories reconstructed")
	}
	var refused bool
	for _, s := range a.Admissions {
		if s.Rejects > 0 {
			refused = true
		}
	}
	if !refused {
		t.Fatal("no flow was ever refused despite 2x overload")
	}

	var buf bytes.Buffer
	if err := analyze.WriteReport(&buf, a); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"admission", "overload episodes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
