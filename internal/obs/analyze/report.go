package analyze

import (
	"fmt"
	"io"
	"time"

	"github.com/flare-sim/flare/internal/obs"
)

// WriteReport renders the analysis as the human-facing flaretrace
// report: solver summaries, per-flow timelines, fallback causal chains,
// and stall annotations.
func WriteReport(w io.Writer, a *Analysis) error {
	bw := &errWriter{w: w}
	bw.printf("trace: %d events\n", a.Events)

	if len(a.Solvers) > 0 {
		bw.printf("\n== BAI solver ==\n")
		for _, s := range a.Solvers {
			bw.printf("cell %d: %d solves over t=%.1fs..%.1fs  latency mean %s p50 %s p95 %s max %s  objective mean %.2f last %.2f",
				s.Cell, s.Solves, a.Seconds(s.FirstTTI), a.Seconds(s.LastTTI),
				ns(s.MeanNs), ns(s.P50Ns), ns(s.P95Ns), ns(s.MaxNs),
				s.MeanValue, s.LastValue)
			if s.InstallFails > 0 {
				bw.printf("  install failures %d", s.InstallFails)
			}
			bw.printf("\n")
		}
	}

	if len(a.Flows) > 0 {
		bw.printf("\n== flows ==\n")
		for _, f := range a.Flows {
			bw.printf("flow %d: levels first/last/max %d/%d/%d (%.2f Mbps last)  installs %d (%d failed)  delivers %d  polls lost %d",
				f.Flow, f.FirstLevel, f.LastLevel, f.MaxLevel, f.LastBps/1e6,
				f.Installs, f.InstallFails, f.Delivers, f.PollsLost)
			if f.Clamps > 0 {
				bw.printf("  clamps %d (%d held)", f.Clamps, f.ClampHolds)
			}
			if f.Fallbacks > 0 || f.Recoveries > 0 {
				bw.printf("  fallbacks %d recoveries %d", f.Fallbacks, f.Recoveries)
			}
			if f.Retries > 0 {
				bw.printf("  retries %d", f.Retries)
			}
			if n := len(f.Stalls); n > 0 {
				bw.printf("  stalls %d", n)
			}
			bw.printf("\n")
		}
	}

	if len(a.Admissions) > 0 {
		bw.printf("\n== admission ==\n")
		var direct, promoted, refused int
		for _, s := range a.Admissions {
			switch {
			case !s.Admitted():
				refused++
			case s.Promoted:
				promoted++
			case s.Rejects == 0:
				direct++
			default:
				// Re-tried its way in without a queue promotion.
				promoted++
			}
		}
		bw.printf("%d flows met the admission controller: %d admitted first try, %d after waiting, %d never admitted\n",
			len(a.Admissions), direct, promoted, refused)
		for _, s := range a.Admissions {
			switch {
			case s.Admitted() && s.Rejects == 0:
				continue // the uneventful case: admitted on the spot
			case !s.Admitted():
				bw.printf("flow %d: refused %d times from t=%.1fs, never admitted",
					s.Flow, s.Rejects, a.Seconds(s.FirstRejectTTI))
			default:
				bw.printf("flow %d: refused %d times, admitted @t=%.1fs after %.1fs",
					s.Flow, s.Rejects, a.Seconds(s.AdmitTTI), a.Seconds(s.WaitTTIs()))
				if s.Promoted {
					bw.printf(" (queue promotion)")
				}
			}
			if s.Queued {
				bw.printf("  [queued]")
			}
			bw.printf("\n")
		}
	}

	if len(a.Episodes) > 0 {
		bw.printf("\n== overload episodes ==\n")
		for _, ep := range a.Episodes {
			bw.printf("cell %d @t=%.1fs: ", ep.Cell, a.Seconds(ep.StartTTI))
			if ep.Resolved() {
				bw.printf("shed for %.1fs", a.Seconds(ep.EndTTI-ep.StartTTI))
			} else {
				bw.printf("shed (unresolved at trace end)")
			}
			bw.printf("  depth max %d (peak share %.3f)  %d downgrades %d restores",
				ep.MaxShed, ep.PeakShare, ep.Downgrades, ep.Restores)
			if ep.Rejects > 0 || ep.Promotes > 0 {
				bw.printf("  admission: %d rejects %d promotions", ep.Rejects, ep.Promotes)
			}
			bw.printf("\n")
		}
	}

	if len(a.Chains) > 0 {
		bw.printf("\n== fallback causal chains ==\n")
		for _, c := range a.Chains {
			bw.printf("flow %d @t=%.1fs: degraded (%s) after %d %s",
				c.Flow, a.Seconds(c.FallbackTTI), reasonText(c.Reason),
				len(c.Causes), causeNoun(c.Reason, len(c.Causes)))
			if len(c.Faults) > 0 {
				bw.printf(" [%d injected faults in window]", len(c.Faults))
			}
			if c.Recovered() {
				bw.printf(" -> recovered @t=%.1fs (fresh assignment seq %d, degraded %.1fs)",
					a.Seconds(c.RecoverTTI), c.RecoverSeq,
					a.Seconds(c.RecoverTTI-c.FallbackTTI))
			} else {
				bw.printf(" -> never recovered in trace")
			}
			bw.printf("\n")
		}
	}

	if len(a.Stalls) > 0 {
		bw.printf("\n== stalls ==\n")
		for _, st := range a.Stalls {
			if st.EndTTI >= 0 {
				bw.printf("flow %d @t=%.1fs: stalled %.1fs", st.Flow, a.Seconds(st.StartTTI), a.Seconds(st.EndTTI-st.StartTTI))
			} else {
				bw.printf("flow %d @t=%.1fs: stalled (unresolved at trace end)", st.Flow, a.Seconds(st.StartTTI))
			}
			if st.InFallback {
				bw.printf("  [in fallback: control plane degraded]")
			}
			if st.LastEvent.Kind != obs.KindNone {
				bw.printf("  last control event: %s @t=%.1fs", st.LastEvent.Kind, a.Seconds(st.LastEvent.TTI))
			}
			bw.printf("\n")
		}
	}
	return bw.err
}

// WriteFlowTimeline renders one flow's full decision timeline, one
// event per line — the drill-down view behind flaretrace -flow.
func WriteFlowTimeline(w io.Writer, a *Analysis, flowID int32) error {
	f := a.Flow(flowID)
	if f == nil {
		return fmt.Errorf("analyze: flow %d not in trace", flowID)
	}
	bw := &errWriter{w: w}
	bw.printf("flow %d timeline (%d events)\n", flowID, len(f.Events))
	for i := range f.Events {
		e := &f.Events[i]
		bw.printf("t=%9.3fs  %-13s", a.Seconds(e.TTI), e.Kind)
		switch e.Kind {
		case obs.KindClamp:
			bw.printf(" reco %d prev %d -> %d", e.Reco, e.Prev, e.Level)
			if e.Need > 0 {
				bw.printf(" (streak %d/%d)", e.Streak, e.Need)
			}
			bw.printf("  n_u %d b_u %d", e.RBs, e.Bytes)
		case obs.KindInstall, obs.KindInstallFail, obs.KindDeliver:
			bw.printf(" level %d %.2f Mbps seq %d", e.Level, e.Bps/1e6, e.Seq)
		case obs.KindFallback:
			bw.printf(" reason %s (count %d)", reasonText(e.Reason), e.Streak)
		case obs.KindRetry:
			bw.printf(" attempt %d", e.Seq)
		case obs.KindReject:
			if e.Need == 1 {
				bw.printf(" (queued)")
			} else {
				bw.printf(" (turned away)")
			}
		case obs.KindQueuePromote:
			bw.printf(" %d still waiting", e.Streak)
		case obs.KindAdmit:
			if e.Need == 1 {
				bw.printf(" (from queue)")
			}
		}
		bw.printf("\n")
	}
	return bw.err
}

func reasonText(r obs.Reason) string {
	switch r {
	case obs.ReasonPolls:
		return "consecutive failed polls"
	case obs.ReasonStale:
		return "stale assignment"
	default:
		return "unspecified"
	}
}

func causeNoun(r obs.Reason, n int) string {
	base := "event"
	switch r {
	case obs.ReasonPolls:
		base = "lost poll"
	case obs.ReasonStale:
		base = "stale delivery"
	}
	if n == 1 {
		return base
	}
	return base + "s"
}

func ns(v int64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

// errWriter folds fmt errors so rendering code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
