package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ReadJSONL decodes a JSONL trace (as written by JSONLSink or
// Recorder.Dump) into events. The schema header line is validated when
// present: a trace from a different major schema version is rejected,
// a headerless stream (hand-cut traces, old dumps) is accepted as-is.
// Records whose kind is unknown to this build are skipped, not fatal —
// newer writers may emit kinds an older reader has no use for.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		if line == 1 && strings.Contains(raw, `"schema"`) {
			var hdr struct {
				Schema string `json:"schema"`
			}
			if err := json.Unmarshal([]byte(raw), &hdr); err == nil && hdr.Schema != "" {
				if hdr.Schema != SchemaVersion {
					return nil, fmt.Errorf("obs: trace schema %q; this build reads %q", hdr.Schema, SchemaVersion)
				}
				continue
			}
		}
		var we wireEvent
		if err := json.Unmarshal([]byte(raw), &we); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		e := we.event()
		if e.Kind == KindNone {
			continue // unknown or header-like record: skip
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return out, nil
}
