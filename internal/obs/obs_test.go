package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNilRecorderIsSafeAndFree(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	// Every method must be callable on nil.
	r.Emit(Event{Kind: KindInstall, Flow: 1})
	r.SetNowTTI(func() int64 { return 42 })
	r.DumpOnError(nil)
	if err := r.Dump(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil Dump: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}
	if m := r.Metrics(); m.Snapshot()["events_total"] != nil {
		// Snapshot on nil metrics returns an empty map.
		t.Fatalf("nil metrics snapshot not empty")
	}

	// The disabled path must not allocate: this is the zero-cost-off
	// contract the engine benchmark gate relies on.
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(Event{
			Kind: KindClamp, Cell: 1, Flow: 3,
			Reco: 4, Level: 3, Prev: 3, Streak: 2, Need: 12,
			Bytes: 1 << 20, RBs: 900, Bps: 2.5e6,
		})
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %v allocs/op, want 0", allocs)
	}
}

func TestRingWrapAndSnapshotOrder(t *testing.T) {
	r := New(Options{RingSize: 4})
	for i := 1; i <= 6; i++ {
		r.Emit(Event{Kind: KindInstall, Flow: int32(i), TTI: int64(i)})
	}
	events := r.Snapshot()
	if len(events) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(events))
	}
	for i, want := range []int32{3, 4, 5, 6} {
		if events[i].Flow != want {
			t.Fatalf("snapshot[%d].Flow = %d, want %d (oldest-first after wrap)", i, events[i].Flow, want)
		}
	}
	if got := r.Metrics().Installs.Load(); got != 6 {
		t.Fatalf("Installs = %d, want 6", got)
	}
}

func TestTTIStamping(t *testing.T) {
	r := New(Options{RingSize: 8})
	r.SetNowTTI(func() int64 { return 777 })
	r.Emit(Event{Kind: KindFlowStart, Flow: 0})
	r.Emit(Event{Kind: KindFlowStart, Flow: 1, TTI: 5}) // explicit wins
	ev := r.Snapshot()
	if ev[0].TTI != 777 || ev[1].TTI != 5 {
		t.Fatalf("TTIs = %d, %d; want 777, 5", ev[0].TTI, ev[1].TTI)
	}
	// No TTI clock: wall-clock stamping.
	r2 := New(Options{RingSize: 2})
	r2.Emit(Event{Kind: KindRetry, Flow: 0})
	if got := r2.Snapshot()[0]; got.Wall == 0 || got.TTI != 0 {
		t.Fatalf("wall-clock event = {TTI:%d Wall:%d}, want Wall set", got.TTI, got.Wall)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := New(Options{RingSize: 8, Sinks: []Sink{sink}})
	in := []Event{
		{Kind: KindBAISolve, TTI: 1000, Cell: 2, Flow: -1, Seq: 7, Need: 0, Value: 81.25, DurNs: 12345},
		{Kind: KindClamp, TTI: 1000, Cell: 2, Flow: 3, Reco: 4, Level: 3, Prev: 3, Streak: 5, Need: 20, Bytes: 999, RBs: 444, Bps: 1.5e6},
		{Kind: KindFault, TTI: 2000, Cell: 0, Flow: -1, Site: SitePoll, Outcome: 1},
		{Kind: KindFallback, TTI: 3000, Flow: 3, Reason: ReasonPolls, Streak: 3},
		{Kind: KindFastForward, TTI: 4000, Flow: -1, To: 9000},
	}
	for _, e := range in {
		r.Emit(e)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !strings.HasPrefix(buf.String(), `{"schema":"`+SchemaVersion+`"}`) {
		t.Fatalf("trace missing schema header: %q", buf.String()[:40])
	}
	out, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d round trip:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestReadJSONLRejectsWrongSchema(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"schema":"flare-trace/999"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema trace: err = %v, want schema error", err)
	}
}

func TestReadJSONLSkipsUnknownKinds(t *testing.T) {
	in := `{"schema":"` + SchemaVersion + `"}
{"kind":"install","tti":5,"cell":0,"flow":1}
{"kind":"from_the_future","tti":6,"cell":0,"flow":1}
{"kind":"stall_start","tti":7,"cell":0,"flow":1}
`
	out, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(out) != 2 || out[0].Kind != KindInstall || out[1].Kind != KindStallStart {
		t.Fatalf("got %+v, want install + stall_start only", out)
	}
}

func TestDumpOnError(t *testing.T) {
	var dump bytes.Buffer
	r := New(Options{RingSize: 8, ErrorDump: &dump})
	r.Emit(Event{Kind: KindInstallFail, Flow: 2, TTI: 10, Bps: 1e6, Seq: 3})
	r.DumpOnError(nil) // nil error: no dump
	if dump.Len() != 0 {
		t.Fatalf("dump on nil error wrote %d bytes", dump.Len())
	}
	r.DumpOnError(errTest)
	s := dump.String()
	if !strings.Contains(s, "flight recorder dump") || !strings.Contains(s, `"kind":"install_fail"`) {
		t.Fatalf("dump missing banner or event:\n%s", s)
	}
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestHistogramQuantileAndPrometheus(t *testing.T) {
	var h Histogram
	for _, us := range []int64{1, 2, 4, 100, 1000, 100000} {
		h.Observe(us * 1000)
	}
	count, sum := h.CountSum()
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	if sum != (1+2+4+100+1000+100000)*1000 {
		t.Fatalf("sum = %d ns", sum)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 0.001 {
		t.Fatalf("p50 = %v s, want small", q)
	}
	if q := h.Quantile(1.0); q < 0.05 {
		t.Fatalf("p100 = %v s, want >= the 100 ms bucket", q)
	}
	var buf bytes.Buffer
	if err := h.writePrometheus(&buf, "x_seconds"); err != nil {
		t.Fatalf("writePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"# TYPE x_seconds histogram", `x_seconds_bucket{le="+Inf"} 6`, "x_seconds_count 6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsAndDebugHandlers(t *testing.T) {
	r := New(Options{RingSize: 16})
	r.SetNowTTI(func() int64 { return 1 })
	r.Emit(Event{Kind: KindBAISolve, Cell: 0, Flow: -1, DurNs: 2_000_000, Value: 3.5})
	r.Emit(Event{Kind: KindInstall, Flow: 0, Bps: 1e6, Seq: 1})
	r.Emit(Event{Kind: KindRetry, Flow: 0})

	srv := httptest.NewServer(MetricsHandler(r.Metrics()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	resp.Body.Close()
	for _, want := range []string{
		"flare_installs_total 1",
		"flare_client_retries_total 1",
		"flare_bai_solves_total 1",
		"flare_solver_latency_seconds_count 1",
	} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body.String())
		}
	}

	dsrv := httptest.NewServer(DebugHandler(r))
	defer dsrv.Close()
	dresp, err := dsrv.Client().Get(dsrv.URL + "?n=2")
	if err != nil {
		t.Fatalf("GET /debug/flare: %v", err)
	}
	defer dresp.Body.Close()
	var payload struct {
		Schema   string           `json:"schema"`
		Counters map[string]any   `json:"counters"`
		Events   []map[string]any `json:"events"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&payload); err != nil {
		t.Fatalf("decode /debug/flare: %v", err)
	}
	if payload.Schema != SchemaVersion {
		t.Fatalf("schema = %q", payload.Schema)
	}
	if len(payload.Events) != 2 {
		t.Fatalf("events = %d, want 2 (n=2 tail)", len(payload.Events))
	}
	if payload.Counters["installs_total"] != float64(1) {
		t.Fatalf("counters[installs_total] = %v", payload.Counters["installs_total"])
	}
}

func TestEnabledEmitDoesNotAllocate(t *testing.T) {
	r := New(Options{RingSize: 1024})
	r.SetNowTTI(func() int64 { return 9 })
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(Event{Kind: KindClamp, Flow: 1, Reco: 2, Level: 1, Prev: 1, Bytes: 3, RBs: 4, Bps: 5})
	})
	if allocs != 0 {
		t.Fatalf("ring-only Emit allocates %v allocs/op, want 0", allocs)
	}
}
