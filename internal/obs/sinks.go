package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
)

// Sink receives every recorded event as it happens — the streaming
// counterpart of the flight-recorder ring. Sinks are called under the
// recorder's lock, in Emit order; implementations must not call back
// into the recorder.
type Sink interface {
	// Write observes one event. The pointee is only valid for the call.
	Write(e *Event) error
	// Close flushes and releases the sink.
	Close() error
}

// JSONLSink streams events as one JSON object per line — the trace
// format cmd/flaretrace ingests. The first line is a schema header
// ({"schema":"flare-trace/1"}). Encoding is allocation-free on the
// steady state: a hand-rolled encoder appends into a reused buffer
// behind a bufio.Writer.
type JSONLSink struct {
	w           *bufio.Writer
	closer      io.Closer
	buf         []byte
	wroteHeader bool
}

// NewJSONLSink wraps w. If w is an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 64<<10)}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return s
}

// CreateJSONLFile creates (truncating) a JSONL trace file at path.
func CreateJSONLFile(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace file: %w", err)
	}
	return NewJSONLSink(f), nil
}

// Write implements Sink.
func (s *JSONLSink) Write(e *Event) error {
	if !s.wroteHeader {
		s.wroteHeader = true
		if _, err := fmt.Fprintf(s.w, "{\"schema\":%q}\n", SchemaVersion); err != nil {
			return err
		}
	}
	s.buf = e.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	_, err := s.w.Write(s.buf)
	return err
}

// Close implements Sink: flush, then close the underlying writer if it
// is closable.
func (s *JSONLSink) Close() error {
	err := s.w.Flush()
	if s.closer != nil {
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MemorySink buffers every event in memory — the test sink, and the
// input side of the in-process analyzer (obs/analyze works straight
// off []Event).
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Write implements Sink.
func (s *MemorySink) Write(e *Event) error {
	s.mu.Lock()
	s.events = append(s.events, *e)
	s.mu.Unlock()
	return nil
}

// Close implements Sink.
func (s *MemorySink) Close() error { return nil }

// Events returns a copy of everything recorded so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Len returns the number of recorded events.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}
