package obs

// Typed event constructors. Every layer outside internal/obs builds
// its Events through these functions — never as composite literals —
// so the flare-trace/1 schema has exactly one authoring site. The rule
// is mechanical law: flarevet's obsdiscipline analyzer rejects an
// obs.Event{...} literal anywhere outside this package.
//
// Each constructor returns the Event by value: the caller's copy lives
// on its stack and Recorder.Emit copies it again into recorder-owned
// storage, so the zero-allocation contract of the disabled path (and
// the AllocsPerRun floors gating it) is untouched. None of these
// functions stamp a time — Emit does that from the recorder's NowTTI
// source or the wall clock, exactly as before.
//
// Parameter order follows the Event field order (identity, sequence,
// decision, accounting, rate) so call sites read like the schema.

// BAISolve records one bitrate-assignment solve (core.Controller):
// dataFlows is the PCRF's concurrent non-video count, totalRBs the
// Eq. 4 budget, objective the Eq. 2 value, durNs the solver wall time.
func BAISolve(cell int32, seq int64, dataFlows int32, totalRBs int64, objective float64, durNs int64) Event {
	return Event{Kind: KindBAISolve, Cell: cell, Flow: -1, Seq: seq,
		Need: dataFlows, RBs: totalRBs, Value: objective, DurNs: durNs}
}

// Clamp records one flow's Algorithm-1 decision (core.Controller):
// reco is the optimiser's level, level the granted one, prev L_u,
// streak/need the up-counter state, bytes/rbs the b_u/n_u report
// inputs, bps the granted bitrate.
func Clamp(cell, flow int32, seq int64, reco, level, prev, streak, need int32, bytes, rbs int64, bps float64) Event {
	return Event{Kind: KindClamp, Cell: cell, Flow: flow, Seq: seq,
		Reco: reco, Level: level, Prev: prev, Streak: streak, Need: need,
		Bytes: bytes, RBs: rbs, Bps: bps}
}

// Install records a successful PCEF GBR install (oneapi.Server).
func Install(cell, flow int32, seq int64, level int32, bps float64) Event {
	return Event{Kind: KindInstall, Cell: cell, Flow: flow, Seq: seq, Level: level, Bps: bps}
}

// InstallFail records a failed PCEF install; the flow keeps its
// previous assignment (oneapi.Server).
func InstallFail(cell, flow int32, seq int64, level int32, bps float64) Event {
	return Event{Kind: KindInstallFail, Cell: cell, Flow: flow, Seq: seq, Level: level, Bps: bps}
}

// SessionOpen records a session registration (oneapi.Server).
func SessionOpen(cell, flow int32) Event {
	return Event{Kind: KindSessionOpen, Cell: cell, Flow: flow}
}

// SessionClose records a session teardown (oneapi.Server).
func SessionClose(cell, flow int32) Event {
	return Event{Kind: KindSessionClose, Cell: cell, Flow: flow}
}

// StaleReport records a statistics report rejected for carrying an
// already-accepted sequence (oneapi.Server).
func StaleReport(cell int32, seq int64) Event {
	return Event{Kind: KindStale, Cell: cell, Flow: -1, Seq: seq}
}

// ReportLost records a statistics report lost upstream — that
// interval's BAI never ran (cellsim driver).
func ReportLost(cell int32) Event {
	return Event{Kind: KindReportLost, Cell: cell, Flow: -1, Site: SiteStats}
}

// PollLost records an assignment poll lost downstream (cellsim driver).
func PollLost(cell, flow int32) Event {
	return Event{Kind: KindPollLost, Cell: cell, Flow: flow, Site: SitePoll}
}

// Deliver records a fresh assignment reaching the plugin (cellsim
// driver).
func Deliver(cell, flow int32, seq int64, level int32, bps float64) Event {
	return Event{Kind: KindDeliver, Cell: cell, Flow: flow, Seq: seq, Level: level, Bps: bps}
}

// Fallback records a plugin degrading to its local ABR: reason says
// which detector fired, streak its count (cellsim driver).
func Fallback(cell, flow int32, reason Reason, streak int32) Event {
	return Event{Kind: KindFallback, Cell: cell, Flow: flow, Reason: reason, Streak: streak}
}

// Recovery records a plugin rejoining coordination after fallback
// (cellsim driver). Named Recovery, not Recover, to keep the builtin
// visible inside this package.
func Recovery(cell, flow int32, streak int32) Event {
	return Event{Kind: KindRecover, Cell: cell, Flow: flow, Streak: streak}
}

// FlowStart records a video session starting playback (cellsim engine).
func FlowStart(cell, flow int32) Event {
	return Event{Kind: KindFlowStart, Cell: cell, Flow: flow}
}

// FlowDepart records an early session departure (cellsim engine).
func FlowDepart(cell, flow int32) Event {
	return Event{Kind: KindFlowDepart, Cell: cell, Flow: flow}
}

// StallStart records a playback buffer running dry (cellsim engine).
func StallStart(cell, flow int32) Event {
	return Event{Kind: KindStallStart, Cell: cell, Flow: flow}
}

// StallEnd records playback resuming after a stall (cellsim engine).
func StallEnd(cell, flow int32) Event {
	return Event{Kind: KindStallEnd, Cell: cell, Flow: flow}
}

// Fault records a fault-injector decision other than pass, tagged with
// the control-plane site it struck (cellsim driver / live injector).
func Fault(cell int32, site Site, outcome uint8) Event {
	return Event{Kind: KindFault, Cell: cell, Flow: -1, Site: site, Outcome: outcome}
}

// FastForward records a quiescence jump of the simulation kernel from
// TTI from to TTI to (cellsim engine).
func FastForward(cell int32, from, to int64) Event {
	return Event{Kind: KindFastForward, Cell: cell, Flow: -1, TTI: from, To: to}
}

// Retry records HTTP retry attempt n (oneapi.Client).
func Retry(cell, flow int32, attempt int64) Event {
	return Event{Kind: KindRetry, Cell: cell, Flow: flow, Site: SiteHTTP, Seq: attempt}
}

// Reopen records an automatic session re-open after the server lost
// its state (oneapi.Client).
func Reopen(cell, flow int32) Event {
	return Event{Kind: KindReopen, Cell: cell, Flow: flow, Site: SiteHTTP}
}

// ClientFail records an HTTP request failing after exhausting retries
// (oneapi.Client).
func ClientFail(cell, flow int32) Event {
	return Event{Kind: KindClientFail, Cell: cell, Flow: flow, Site: SiteHTTP}
}

// Admit records a session passing the admission predicate
// (oneapi.Server); fromQueue marks a promotion rather than a
// first-contact admission.
func Admit(cell, flow int32, fromQueue bool) Event {
	e := Event{Kind: KindAdmit, Cell: cell, Flow: flow}
	if fromQueue {
		e.Need = 1
	}
	return e
}

// Reject records a session refused by the admission predicate
// (oneapi.Server); queued marks it parked on the wait queue rather
// than turned away outright.
func Reject(cell, flow int32, queued bool) Event {
	e := Event{Kind: KindReject, Cell: cell, Flow: flow}
	if queued {
		e.Need = 1
	}
	return e
}

// QueuePromote records a queued session being admitted after capacity
// freed (oneapi.Server); waiting is the queue depth left behind.
func QueuePromote(cell, flow int32, waiting int32) Event {
	return Event{Kind: KindQueuePromote, Cell: cell, Flow: flow, Streak: waiting}
}

// Downgrade records the overload ladder taking one more shed step
// (core.Controller): shed is the new depth, share the video RB share
// that triggered it.
func Downgrade(cell int32, seq int64, shed int32, share float64) Event {
	return Event{Kind: KindDowngrade, Cell: cell, Flow: -1, Seq: seq, Level: shed, Value: share}
}

// Restore records the overload ladder giving one shed step back after
// the hysteresis hold (core.Controller): shed is the remaining depth,
// share the video RB share at release.
func Restore(cell int32, seq int64, shed int32, share float64) Event {
	return Event{Kind: KindRestore, Cell: cell, Flow: -1, Seq: seq, Level: shed, Value: share}
}

// Handover records a live session moving from one cell to another as a
// shard-to-shard state transfer (oneapi.Server).
func Handover(fromCell, toCell, flow int32) Event {
	return Event{Kind: KindHandover, Cell: fromCell, Flow: flow, To: int64(toCell)}
}
