package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves the counters and the solver-latency histogram
// in the Prometheus text exposition format — mount it at /metrics. It
// tolerates a nil Metrics (disabled recorder) by serving an empty
// exposition.
func MetricsHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
}

// debugPayload is the /debug/flare JSON document.
type debugPayload struct {
	Schema   string         `json:"schema"`
	Counters map[string]any `json:"counters"`
	Events   []debugEvent   `json:"events"`
}

// debugEvent is the human-facing JSON shape of one ring event.
type debugEvent struct {
	Kind  string          `json:"kind"`
	Event json.RawMessage `json:"event"`
}

// DebugHandler serves a JSON snapshot of the recorder: the counter map
// plus the tail of the flight-recorder ring (?n=100 by default, capped
// at the ring size) — the "what just happened" endpoint, mounted at
// /debug/flare. A nil recorder serves an empty snapshot.
func DebugHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		events := rec.Snapshot()
		if len(events) > n {
			events = events[len(events)-n:]
		}
		payload := debugPayload{
			Schema:   SchemaVersion,
			Counters: rec.Metrics().Snapshot(),
			Events:   make([]debugEvent, 0, len(events)),
		}
		var buf []byte
		for i := range events {
			buf = events[i].AppendJSON(buf[:0])
			payload.Events = append(payload.Events, debugEvent{
				Kind:  events[i].Kind.String(),
				Event: json.RawMessage(append([]byte(nil), buf...)),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload)
	})
}
