package obs

import (
	"fmt"
	"strconv"
)

// SchemaVersion identifies the trace wire format. It appears in the
// header record every JSONL sink writes first, so readers (flaretrace,
// analyze) can reject traces from incompatible versions instead of
// silently misinterpreting fields. Bump on any field rename or semantic
// change; adding new optional fields is backward compatible and does
// not require a bump.
const SchemaVersion = "flare-trace/1"

// Kind enumerates the event taxonomy: every decision point of the
// FLARE coordination loop (and the engine around it) that operators
// need to reconstruct "why did this flow end up here".
type Kind uint8

// Event kinds. The comments name the layer that emits each kind.
const (
	// KindNone is the zero Kind; never emitted.
	KindNone Kind = iota

	// KindBAISolve is one bitrate-assignment solve (core.Controller):
	// N = video flows in the instance, Value = Eq. 2 objective,
	// DurNs = solver wall time, Seq = controller BAI ordinal.
	KindBAISolve
	// KindClamp is one flow's Algorithm-1 decision (core.Controller):
	// Reco = optimiser-recommended level, Level = granted level,
	// Prev = previous level (L_u), Streak/Need = up-counter state,
	// Bytes/RBs = the b_u/n_u report inputs, Bps = granted bitrate.
	KindClamp
	// KindInstall is a successful PCEF GBR install (oneapi.Server):
	// Bps = installed GBR, Seq = BAI sequence.
	KindInstall
	// KindInstallFail is a failed PCEF install: the flow keeps its
	// previous assignment (oneapi.Server). Seq = BAI sequence.
	KindInstallFail
	// KindSessionOpen is a session registration (oneapi.Server);
	// N = 1 for a newly created session, 0 for an idempotent re-open.
	KindSessionOpen
	// KindSessionClose is a session teardown (oneapi.Server).
	KindSessionClose

	// KindReportLost is a statistics report lost upstream — the BAI for
	// that interval never ran (cellsim driver).
	KindReportLost
	// KindPollLost is an assignment poll lost downstream; it feeds the
	// plugin's fallback detector (cellsim driver). Streak = consecutive
	// failed polls after this one.
	KindPollLost
	// KindStale is a poll that answered with an already-seen BAI
	// sequence — the assignment is ageing (cellsim driver / client).
	// Seq = the repeated sequence, Streak = consecutive stale polls.
	KindStale
	// KindDeliver is a fresh assignment reaching the plugin (cellsim
	// driver): Bps = assigned bitrate, Seq = its BAI sequence.
	KindDeliver
	// KindFallback is a plugin degrading to its local ABR (internal/abr
	// via the driver): Reason says which detector fired.
	KindFallback
	// KindRecover is a plugin rejoining coordination after fallback:
	// Seq = the fresh sequence that restored it.
	KindRecover

	// KindFlowStart is a video session starting playback-side
	// (cellsim engine).
	KindFlowStart
	// KindFlowDepart is an early session departure (cellsim engine).
	KindFlowDepart
	// KindStallStart is a playback buffer running dry mid-session
	// (has.Player via the engine).
	KindStallStart
	// KindStallEnd is playback resuming after a stall; Value = the
	// stall's length in seconds (has.Player via the engine).
	KindStallEnd

	// KindFault is a fault-injector decision other than pass
	// (internal/faults): Site = which exchange, Outcome = what happened.
	KindFault
	// KindFastForward is a quiescence jump of the simulation kernel
	// (cellsim engine): TTI = jump origin, To = landing TTI.
	KindFastForward

	// KindRetry is an HTTP client retry attempt (oneapi.Client).
	KindRetry
	// KindReopen is an automatic session re-open after the server lost
	// its state (oneapi.Client).
	KindReopen
	// KindClientFail is an HTTP client request failing after
	// exhausting retries (oneapi.Client).
	KindClientFail

	// KindAdmit is a session passing the admission predicate
	// (oneapi.Server); N = 1 when promoted from the wait queue.
	KindAdmit
	// KindReject is a session refused by the admission predicate
	// (oneapi.Server); N = 1 when parked on the wait queue, 0 when
	// turned away outright (queue full or disabled).
	KindReject
	// KindQueuePromote is a queued session being admitted after
	// capacity freed (oneapi.Server); Streak = sessions still waiting.
	KindQueuePromote
	// KindDowngrade is the overload ladder shaving one more step off
	// every flow's ceiling (core.Controller): Level = new shed depth,
	// Value = the video share that triggered it, Seq = BAI sequence.
	KindDowngrade
	// KindRestore is the overload ladder giving one step back after the
	// hysteresis hold (core.Controller): Level = remaining shed depth,
	// Value = the video share at release, Seq = BAI sequence.
	KindRestore

	// KindHandover is a live session moving between cells as one
	// shard-to-shard state transfer (oneapi.Server): Cell = source
	// cell, To = destination cell, Flow = the session that moved.
	KindHandover

	kindCount // sentinel; keep last
)

var kindNames = [...]string{
	KindNone:         "none",
	KindBAISolve:     "bai_solve",
	KindClamp:        "clamp",
	KindInstall:      "install",
	KindInstallFail:  "install_fail",
	KindSessionOpen:  "session_open",
	KindSessionClose: "session_close",
	KindReportLost:   "report_lost",
	KindPollLost:     "poll_lost",
	KindStale:        "stale",
	KindDeliver:      "deliver",
	KindFallback:     "fallback",
	KindRecover:      "recover",
	KindFlowStart:    "flow_start",
	KindFlowDepart:   "flow_depart",
	KindStallStart:   "stall_start",
	KindStallEnd:     "stall_end",
	KindFault:        "fault",
	KindFastForward:  "fast_forward",
	KindRetry:        "retry",
	KindReopen:       "reopen",
	KindClientFail:   "client_fail",
	KindAdmit:        "admit",
	KindReject:       "reject",
	KindQueuePromote: "queue_promote",
	KindDowngrade:    "downgrade",
	KindRestore:      "restore",
	KindHandover:     "handover",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromString resolves a wire name back to a Kind; KindNone for
// unknown names (forward compatibility: newer traces may carry kinds an
// older flaretrace does not know, which it must skip, not reject).
func KindFromString(s string) Kind {
	for k, name := range kindNames {
		if name == s && k != 0 {
			return Kind(k)
		}
	}
	return KindNone
}

// Site locates a fault-injector decision in the control plane.
type Site uint8

// Fault sites.
const (
	SiteNone Site = iota
	// SiteStats is the eNodeB statistics-report leg.
	SiteStats
	// SitePoll is the plugin assignment-poll leg.
	SitePoll
	// SiteHTTP is the wire-level injector (RoundTripper / Middleware).
	SiteHTTP
)

// String implements fmt.Stringer.
func (s Site) String() string {
	switch s {
	case SiteNone:
		return ""
	case SiteStats:
		return "stats"
	case SitePoll:
		return "poll"
	case SiteHTTP:
		return "http"
	default:
		return fmt.Sprintf("Site(%d)", int(s))
	}
}

// Reason says which detector triggered a fallback transition.
type Reason uint8

// Fallback reasons.
const (
	ReasonNone Reason = iota
	// ReasonPolls is K consecutive failed polls.
	ReasonPolls
	// ReasonStale is an assignment M BAIs stale.
	ReasonStale
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return ""
	case ReasonPolls:
		return "polls"
	case ReasonStale:
		return "stale"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Event is one telemetry record. It is a flat, fixed-size value — no
// pointers, no strings — so the flight-recorder ring stores events by
// value and the hot path never heap-allocates: call sites build the
// Event on the stack and Recorder.Emit copies it.
//
// Field meaning is kind-specific (see the Kind constants); unused
// fields stay zero and are omitted from the JSONL encoding.
type Event struct {
	// TTI is the simulated time in TTIs (1 ms each). 0 in wall-clock
	// contexts (live servers) where Wall is set instead.
	TTI int64
	// Wall is the wall-clock unix time in nanoseconds; 0 in simulations.
	Wall int64
	// Kind is the event type.
	Kind Kind
	// Cell is the cell ID.
	Cell int32
	// Flow is the flow (bearer) ID; -1 for cell-scoped events.
	Flow int32
	// Seq is the BAI sequence where relevant.
	Seq int64
	// Level / Prev / Reco are ladder indices (granted, previous,
	// recommended).
	Level, Prev, Reco int32
	// Streak and Need are Algorithm-1 up-counter state, or detector
	// counters for poll/stale events.
	Streak, Need int32
	// Bytes and RBs are the b_u / n_u report inputs.
	Bytes, RBs int64
	// Bps is a bitrate (assigned, installed, delivered).
	Bps float64
	// Value is a kind-specific float (objective, stall seconds).
	Value float64
	// DurNs is a wall-clock duration in nanoseconds (solver time).
	DurNs int64
	// To is a landing TTI (fast-forward jumps).
	To int64
	// Site locates fault events.
	Site Site
	// Outcome is the fault outcome ordinal (mirrors faults.Outcome).
	Outcome uint8
	// Reason is the fallback trigger.
	Reason Reason
}

// AppendJSON appends the event's JSONL encoding (one line, no trailing
// newline) to dst and returns the extended slice. It is hand-rolled —
// no reflection, no intermediate maps — so a streaming sink writing
// through a reused buffer allocates only when the buffer grows.
func (e *Event) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"kind":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, '"')
	dst = appendInt(dst, ",\"tti\":", e.TTI, e.TTI != 0)
	dst = appendInt(dst, ",\"wall\":", e.Wall, e.Wall != 0)
	dst = appendInt(dst, ",\"cell\":", int64(e.Cell), true)
	dst = appendInt(dst, ",\"flow\":", int64(e.Flow), true)
	dst = appendInt(dst, ",\"seq\":", e.Seq, e.Seq != 0)
	dst = appendInt(dst, ",\"level\":", int64(e.Level), e.Level != 0)
	dst = appendInt(dst, ",\"prev\":", int64(e.Prev), e.Prev != 0)
	dst = appendInt(dst, ",\"reco\":", int64(e.Reco), e.Reco != 0)
	dst = appendInt(dst, ",\"streak\":", int64(e.Streak), e.Streak != 0)
	dst = appendInt(dst, ",\"need\":", int64(e.Need), e.Need != 0)
	dst = appendInt(dst, ",\"bytes\":", e.Bytes, e.Bytes != 0)
	dst = appendInt(dst, ",\"rbs\":", e.RBs, e.RBs != 0)
	dst = appendFloat(dst, ",\"bps\":", e.Bps)
	dst = appendFloat(dst, ",\"value\":", e.Value)
	dst = appendInt(dst, ",\"dur_ns\":", e.DurNs, e.DurNs != 0)
	dst = appendInt(dst, ",\"to\":", e.To, e.To != 0)
	if e.Site != SiteNone {
		dst = append(dst, ",\"site\":\""...)
		dst = append(dst, e.Site.String()...)
		dst = append(dst, '"')
	}
	dst = appendInt(dst, ",\"outcome\":", int64(e.Outcome), e.Outcome != 0)
	if e.Reason != ReasonNone {
		dst = append(dst, ",\"reason\":\""...)
		dst = append(dst, e.Reason.String()...)
		dst = append(dst, '"')
	}
	dst = append(dst, '}')
	return dst
}

func appendInt(dst []byte, key string, v int64, include bool) []byte {
	if !include {
		return dst
	}
	dst = append(dst, key...)
	return strconv.AppendInt(dst, v, 10)
}

func appendFloat(dst []byte, key string, v float64) []byte {
	if v == 0 {
		return dst
	}
	dst = append(dst, key...)
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// wireEvent is the JSON-decoding mirror of Event (string enums).
// Encoding never goes through it — AppendJSON is the write path — but
// readers (flaretrace) get full stdlib-json convenience.
type wireEvent struct {
	Kind    string  `json:"kind"`
	TTI     int64   `json:"tti"`
	Wall    int64   `json:"wall"`
	Cell    int32   `json:"cell"`
	Flow    int32   `json:"flow"`
	Seq     int64   `json:"seq"`
	Level   int32   `json:"level"`
	Prev    int32   `json:"prev"`
	Reco    int32   `json:"reco"`
	Streak  int32   `json:"streak"`
	Need    int32   `json:"need"`
	Bytes   int64   `json:"bytes"`
	RBs     int64   `json:"rbs"`
	Bps     float64 `json:"bps"`
	Value   float64 `json:"value"`
	DurNs   int64   `json:"dur_ns"`
	To      int64   `json:"to"`
	Site    string  `json:"site"`
	Outcome uint8   `json:"outcome"`
	Reason  string  `json:"reason"`
}

func (w *wireEvent) event() Event {
	e := Event{
		TTI: w.TTI, Wall: w.Wall, Kind: KindFromString(w.Kind),
		Cell: w.Cell, Flow: w.Flow, Seq: w.Seq,
		Level: w.Level, Prev: w.Prev, Reco: w.Reco,
		Streak: w.Streak, Need: w.Need,
		Bytes: w.Bytes, RBs: w.RBs,
		Bps: w.Bps, Value: w.Value, DurNs: w.DurNs, To: w.To,
		Outcome: w.Outcome,
	}
	switch w.Site {
	case "stats":
		e.Site = SiteStats
	case "poll":
		e.Site = SitePoll
	case "http":
		e.Site = SiteHTTP
	}
	switch w.Reason {
	case "polls":
		e.Reason = ReasonPolls
	case "stale":
		e.Reason = ReasonStale
	}
	return e
}
