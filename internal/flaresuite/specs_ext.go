// The migrated ext-* scenarios: each wraps its experiments-package
// runner (the single source of the committed results/ outputs, still
// exercised by the gating tests) in a ~20-line spec, so the whole
// extension surface is drivable through `flaresuite run` and the
// matrix. The declared axes document each experiment's primary point
// and make it filterable; the experiment itself performs its own sweep.
package flaresuite

import (
	"strings"

	"github.com/flare-sim/flare/internal/experiments"
)

// assertNoWarnings fails the scenario on any WARNING note — the
// experiments emit one whenever an acceptance clause (degradation
// floor, saturation gate) is violated.
func assertNoWarnings(t *T, rep *experiments.Report) {
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("acceptance clause violated: %s", n)
		}
	}
}

func init() {
	Register(ScenarioSpec{
		Name:        "ext-coexist",
		Description: "4 FLARE + 4 FESTIVE players share one dynamic cell; coordination wins rate and stability (Section V)",
		Axes:        Axes{Channel: ChannelCyclic, Mix: MixFLAREFESTIVE, Ladder: LadderTestbed},
		Run: func(t *T) {
			rep := t.MustReport(experiments.RunExtCoexist)
			assertNoWarnings(t, rep)
			t.AssertTrue(len(rep.Tables) > 0 && len(rep.Series) > 0,
				"coexistence report is missing tables or series")
		},
	})

	Register(ScenarioSpec{
		Name:        "ext-abr",
		Description: "FLARE vs the client-side ABR literature (FESTIVE/GOOGLE/BBA/MPC) in the mobile scenario",
		Axes:        Axes{Channel: ChannelVehicular, Mix: MixFLARE},
		Run: func(t *T) {
			rep := t.MustReport(experiments.RunExtABR)
			assertNoWarnings(t, rep)
			t.AssertTrue(len(rep.Series) == 5, "expected one CDF per scheme, got %d", len(rep.Series))
		},
	})

	Register(ScenarioSpec{
		Name:        "ext-faults",
		Description: "control-plane loss sweep 0-50% plus a blackout; degraded FLARE never falls below the client-side baseline",
		Axes:        Axes{Channel: ChannelPedestrian, Faults: FaultLoss50, Mix: MixFLARE},
		Run: func(t *T) {
			rep := t.MustReport(experiments.RunExtFaults)
			assertNoWarnings(t, rep)
			t.AssertTrue(len(rep.Series) >= 3, "fault sweep series missing, got %d", len(rep.Series))
		},
	})

	Register(ScenarioSpec{
		Name:        "ext-saturation",
		Description: "offered-load sweep to 3x floor capacity; admission control + downgrade ladder beat naive FLARE on admitted flows",
		Axes:        Axes{Channel: ChannelStatic, Churn: ChurnSteady, Mix: MixFLARE, Ladder: LadderTestbed, Load: 3},
		Run: func(t *T) {
			rep := t.MustReport(experiments.RunExtSaturation)
			assertNoWarnings(t, rep)
			t.AssertTrue(len(rep.Tables) > 0, "saturation report is missing its sweep table")
		},
	})
}
