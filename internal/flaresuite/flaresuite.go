// Package flaresuite is the declarative scenario harness: a registry of
// named ScenarioSpecs (channel model x churn profile x fault profile x
// scheme mix x ladder x cell count), a hivesim-style Suite/T API for
// scenario bodies, and a matrix runner that expands axis cross-products
// and fans scenarios out across cores with deterministic,
// input-index-ordered result collection.
//
// The harness replaces hand-rolled experiment packages for workload
// exploration: a new scenario is a ~20-line spec, not a new package.
// Scenario axes compile into cellsim.Config via BuildConfig, scenario
// bodies run against T (Fatalf/Errorf/Assert*, per-scenario artifacts,
// JSONL traces via internal/obs), and a run emits a machine-readable
// summary.json whose bytes are identical at any worker count.
//
// Layering: flaresuite drives the engine (cellsim) and reuses the
// experiments package's report types for the migrated ext-* scenarios;
// it never touches the OneAPI wire internals (oneapi, loadgen) — the
// flarevet layering rules enforce both directions.
package flaresuite

import (
	"time"

	"github.com/flare-sim/flare/internal/experiments"
)

// Scale aliases the experiments scale so specs and the runner share one
// sizing vocabulary (DurationFactor, Runs, Parallel).
type Scale = experiments.Scale

// QuickScale is the test/CI sizing (short durations, few runs).
func QuickScale() Scale { return experiments.Quick() }

// FullScale is the paper-scale sizing.
func FullScale() Scale { return experiments.Full() }

// ParseScale resolves the CLI scale names.
func ParseScale(name string) (Scale, bool) {
	switch name {
	case "quick", "":
		return QuickScale(), true
	case "full":
		return FullScale(), true
	}
	return Scale{}, false
}

// suiteSeed is the base seed for every scenario run: scenario runs are
// deterministic while each (run, cell) pair gets an independent stream.
const suiteSeed uint64 = 0x5417e_5eed

// runSeed derives the seed for one (run, cell) pair.
func runSeed(run, cell int) uint64 {
	return suiteSeed + uint64(run)*0x9e37 + uint64(cell)*0x51de
}

// scaled shrinks a scenario duration by the scale's factor, clamped so
// even tiny factors leave a run long enough to exercise the control
// loop (matching the experiments package's floor).
func scaled(d time.Duration, s Scale) time.Duration {
	f := s.DurationFactor
	if f <= 0 {
		f = 1
	}
	out := time.Duration(float64(d) * f)
	if out < 30*time.Second {
		out = 30 * time.Second
	}
	return out
}

// normRuns returns the scale's run count, defaulting to 1.
func normRuns(s Scale) int {
	if s.Runs <= 0 {
		return 1
	}
	return s.Runs
}
