package flaresuite

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/experiments"
	"github.com/flare-sim/flare/internal/metrics"
	"github.com/flare-sim/flare/internal/obs"
)

// ScenarioSpec is one declarative scenario: a name, one point in the
// axis space, an optional matrix of axis sweeps, and an optional body.
// A nil Run gets the default body: run the point and record the
// standard QoE/rate/stall/fairness metrics.
type ScenarioSpec struct {
	// Name identifies the scenario (registry key, CLI filter token,
	// artifact directory name).
	Name string
	// Description is the one-line intent shown by `flaresuite list`.
	Description string
	// Axes is the scenario's base point.
	Axes Axes
	// Matrix optionally sweeps axes; `flaresuite run -matrix` expands
	// the cross-product into one instance per point.
	Matrix Matrix
	// Tune optionally adjusts the compiled config after BuildConfig —
	// the escape hatch for knobs outside the axis taxonomy (alpha,
	// admission control, buffer caps). It runs once per (run, cell).
	Tune func(*cellsim.Config)
	// Run is the scenario body. Nil uses the default body.
	Run func(t *T)
}

// Instance is one runnable point of a spec: the spec itself with its
// matrix coordinates applied.
type Instance struct {
	Spec ScenarioSpec
	// Name is the spec name plus the matrix point suffix
	// ("het-ladders@ladder=fine"); equal to Spec.Name off-matrix.
	Name string
	// Axes is the fully-applied point.
	Axes Axes
}

// Instances expands the spec: the base point alone when expand is
// false, the full matrix cross-product when true.
func (s ScenarioSpec) Instances(expand bool) ([]Instance, error) {
	base := s.Axes.withDefaults()
	if !expand || len(s.Matrix) == 0 {
		return []Instance{{Spec: s, Name: s.Name, Axes: base}}, nil
	}
	points, labels, err := s.Matrix.expand(base)
	if err != nil {
		return nil, fmt.Errorf("flaresuite: scenario %q: %w", s.Name, err)
	}
	out := make([]Instance, len(points))
	for i := range points {
		name := s.Name
		if labels[i] != "" {
			name += "@" + labels[i]
		}
		out[i] = Instance{Spec: s, Name: name, Axes: points[i]}
	}
	return out, nil
}

// failNow is the Fatalf unwind sentinel, recovered by the runner.
type failNow struct{}

// T is a running scenario, handed to spec bodies — a testing.T-shaped
// surface (Fatalf/Errorf/Logf/Assert*) plus the harness hooks: the
// compiled axes, seeded engine runs, per-scenario artifacts, and the
// metrics/notes that land in summary.json.
type T struct {
	name  string
	spec  ScenarioSpec
	axes  Axes
	scale Scale
	ctx   context.Context

	outDir string // per-scenario artifact directory; "" disables artifacts

	failed    bool
	failures  []string
	logs      []string
	notes     []string
	metricsM  map[string]float64
	artifacts []string
}

// Name returns the instance name (matrix suffix included).
func (t *T) Name() string { return t.name }

// Axes returns the instance's fully-applied axis point.
func (t *T) Axes() Axes { return t.axes }

// Scale returns the run's scale.
func (t *T) Scale() Scale { return t.scale }

// Logf records a log line (artifact log only; not in summary.json).
func (t *T) Logf(format string, args ...any) {
	t.logs = append(t.logs, fmt.Sprintf(format, args...))
}

// Notef records a headline note, surfaced in summary.json and the
// summary table.
func (t *T) Notef(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Errorf records a failure and keeps the body running.
func (t *T) Errorf(format string, args ...any) {
	t.failed = true
	t.failures = append(t.failures, fmt.Sprintf(format, args...))
}

// Fatalf records a failure and stops the body immediately.
func (t *T) Fatalf(format string, args ...any) {
	t.Errorf(format, args...)
	t.FailNow()
}

// FailNow stops the body immediately (the runner recovers the unwind).
func (t *T) FailNow() {
	t.failed = true
	panic(failNow{})
}

// Failed reports whether the scenario has recorded any failure.
func (t *T) Failed() bool { return t.failed }

// AssertTrue records a failure unless cond holds.
func (t *T) AssertTrue(cond bool, format string, args ...any) {
	if !cond {
		t.Errorf(format, args...)
	}
}

// AssertInRange records a failure unless lo <= v <= hi.
func (t *T) AssertInRange(what string, v, lo, hi float64) {
	if v < lo || v > hi {
		t.Errorf("%s = %v, want within [%v, %v]", what, v, lo, hi)
	}
}

// Metric records one named number into summary.json.
func (t *T) Metric(name string, v float64) {
	if t.metricsM == nil {
		t.metricsM = make(map[string]float64)
	}
	t.metricsM[name] = v
}

// Config compiles the instance's axes (plus the spec's Tune hook) into
// one cell's configuration. Seed is left zero; RunPoint assigns it.
func (t *T) Config() (cellsim.Config, error) {
	cfg, err := BuildConfig(t.axes, t.scale)
	if err != nil {
		return cellsim.Config{}, err
	}
	if t.spec.Tune != nil {
		t.spec.Tune(&cfg)
	}
	return cfg, nil
}

// RunPoint executes the instance's point: Scale().Runs seeded
// repetitions of Axes().Cells independent cells each, in input order,
// and returns the per-cell results flattened run-major. The first
// (run 0, cell 0) execution records a JSONL telemetry trace into the
// scenario's artifact directory when one is attached — recording is
// proven not to perturb results (PR 4), so traced and untraced runs
// report identical outcomes.
func (t *T) RunPoint() ([]*cellsim.Result, error) {
	cfg, err := t.Config()
	if err != nil {
		return nil, err
	}
	runs := normRuns(t.scale)
	cells := t.axes.withDefaults().Cells
	out := make([]*cellsim.Result, 0, runs*cells)
	for run := 0; run < runs; run++ {
		for cell := 0; cell < cells; cell++ {
			if err := t.ctx.Err(); err != nil {
				return nil, err
			}
			c := cfg
			c.Seed = runSeed(run, cell)
			var sink *obs.JSONLSink
			if run == 0 && cell == 0 && t.outDir != "" {
				path := filepath.Join(t.outDir, "trace.jsonl")
				if sink, err = obs.CreateJSONLFile(path); err != nil {
					return nil, fmt.Errorf("flaresuite: %s: %w", t.name, err)
				}
				c.Obs = obs.New(obs.Options{Sinks: []obs.Sink{sink}})
				t.artifact("trace.jsonl")
			}
			res, err := cellsim.RunContext(t.ctx, c)
			if sink != nil {
				if cerr := c.Obs.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
			if err != nil {
				return nil, fmt.Errorf("flaresuite: %s: run %d cell %d: %w", t.name, run, cell, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// MustRunPoint is RunPoint, failing the scenario on error.
func (t *T) MustRunPoint() []*cellsim.Result {
	results, err := t.RunPoint()
	if err != nil {
		t.Fatalf("%v", err)
	}
	return results
}

// MustReport bridges a migrated experiment into the harness: it runs
// the experiment at the scenario's scale, attaches its tables and plot
// series as artifacts (<id>.txt / <id>.csv, byte-identical to the
// committed results/ outputs at the same scale), forwards its notes,
// and fails the scenario on error.
func (t *T) MustReport(run func(Scale) (*experiments.Report, error)) *experiments.Report {
	rep, err := run(t.scale)
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.notes = append(t.notes, rep.Notes...)
	if t.outDir != "" {
		if err := rep.WriteFiles(t.outDir); err != nil {
			t.Fatalf("%v", err)
		}
		t.artifact(rep.ID + ".txt")
		if len(rep.Series) > 0 {
			t.artifact(rep.ID + ".csv")
		}
	}
	return rep
}

// RecordStandard pools the standard per-client metrics across results
// into summary.json: mean QoE, mean encoding rate, mean stall seconds,
// Jain fairness of delivered throughput, and population counts.
func (t *T) RecordStandard(results []*cellsim.Result) {
	var qoes, rates, stalls, tputs []float64
	segments := 0
	for _, r := range results {
		for _, c := range r.Clients {
			qoes = append(qoes, c.QoEScore)
			rates = append(rates, c.AvgRateBps)
			stalls = append(stalls, c.StallSeconds)
			tputs = append(tputs, c.AvgTputBps)
			segments += c.Segments
		}
	}
	t.Metric("clients", float64(len(qoes)))
	t.Metric("segments", float64(segments))
	t.Metric("qoe_mean", metrics.Mean(qoes))
	t.Metric("rate_mean_kbps", metrics.Mean(rates)/1000)
	t.Metric("stall_mean_s", metrics.Mean(stalls))
	t.Metric("jain_tput", metrics.JainIndex(tputs))
}

// artifact records one relative artifact path for summary.json.
func (t *T) artifact(rel string) {
	t.artifacts = append(t.artifacts, rel)
}

// defaultBody is the body used when a spec declares no Run: execute the
// point and record the standard metrics.
func defaultBody(t *T) {
	t.RecordStandard(t.MustRunPoint())
}

// finish flushes the scenario log artifact and returns the summary
// entry. Artifact paths are sorted for a stable summary.
func (t *T) finish(status string) ScenarioSummary {
	if t.outDir != "" && (len(t.logs) > 0 || len(t.failures) > 0) {
		var b []byte
		for _, l := range t.logs {
			b = append(b, l...)
			b = append(b, '\n')
		}
		for _, f := range t.failures {
			b = append(b, "FAIL: "...)
			b = append(b, f...)
			b = append(b, '\n')
		}
		if err := os.WriteFile(filepath.Join(t.outDir, "log.txt"), b, 0o644); err == nil {
			t.artifact("log.txt")
		}
	}
	sort.Strings(t.artifacts)
	return ScenarioSummary{
		Name:      t.name,
		Axes:      t.axes.Map(),
		Status:    status,
		Failures:  t.failures,
		Notes:     t.notes,
		Metrics:   t.metricsM,
		Artifacts: t.artifacts,
	}
}
