package flaresuite

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"

	"github.com/flare-sim/flare/internal/metrics"
	"github.com/flare-sim/flare/internal/sim"
)

// SummarySchema versions the summary.json format.
const SummarySchema = "flaresuite-summary/1"

// Scenario statuses in summary.json.
const (
	StatusPass        = "pass"
	StatusFail        = "fail"
	StatusSkip        = "skip"        // never started (interrupted run)
	StatusInterrupted = "interrupted" // started, cut short by the drain
)

// Options configures one matrix run.
type Options struct {
	// Scale names the sizing: "quick" (default) or "full".
	Scale string
	// Factor overrides the scale's duration factor when > 0.
	Factor float64
	// Runs overrides the scale's repetition count when > 0.
	Runs int
	// Workers bounds how many scenarios run concurrently (0 =
	// GOMAXPROCS). The summary is byte-identical for every value:
	// scenarios are dispatched in input order and collected into
	// input-index slots.
	Workers int
	// OutDir, when set, receives per-scenario artifact directories plus
	// summary.json; empty runs artifact-free.
	OutDir string
	// Expand runs every spec's full matrix cross-product instead of
	// only its base point.
	Expand bool
	// Names, when non-empty, restricts the run to these spec names
	// (unknown names are errors).
	Names []string
	// AxisFilter, when non-empty, keeps only instances whose applied
	// axes match every key=value pair.
	AxisFilter map[string]string
}

// ScenarioSummary is one scenario's machine-readable outcome.
type ScenarioSummary struct {
	Name      string             `json:"name"`
	Axes      map[string]string  `json:"axes"`
	Status    string             `json:"status"`
	Failures  []string           `json:"failures,omitempty"`
	Notes     []string           `json:"notes,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Artifacts []string           `json:"artifacts,omitempty"`
}

// Summary is a whole run's machine-readable outcome — the contract is
// that its JSON encoding is identical at every worker count.
type Summary struct {
	Schema    string            `json:"schema"`
	Scale     string            `json:"scale"`
	Factor    float64           `json:"factor,omitempty"`
	Runs      int               `json:"runs,omitempty"`
	Passed    int               `json:"passed"`
	Failed    int               `json:"failed"`
	Skipped   int               `json:"skipped"`
	Scenarios []ScenarioSummary `json:"scenarios"`
}

// JSON renders the summary in its canonical byte form.
func (s *Summary) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("flaresuite: encode summary: %w", err)
	}
	return append(b, '\n'), nil
}

// Table renders the human summary table.
func (s *Summary) Table() string {
	tbl := metrics.NewTable(fmt.Sprintf("flaresuite summary (scale %s)", s.Scale),
		"status", "clients", "QoE", "rate Kbps", "stall s", "failures")
	for _, sc := range s.Scenarios {
		cell := func(name, format string) string {
			v, ok := sc.Metrics[name]
			if !ok {
				return "-"
			}
			return fmt.Sprintf(format, v)
		}
		tbl.AddRow(sc.Name, sc.Status,
			cell("clients", "%.0f"), cell("qoe_mean", "%.0f"),
			cell("rate_mean_kbps", "%.0f"), cell("stall_mean_s", "%.1f"),
			fmt.Sprintf("%d", len(sc.Failures)))
	}
	return tbl.String()
}

// Ok reports whether every scenario passed (skips count as not-ok:
// an interrupted matrix is not a green matrix).
func (s *Summary) Ok() bool { return s.Failed == 0 && s.Skipped == 0 }

// Expand resolves the registry's specs through the options' name
// filter, matrix expansion, and axis filter, in registration order.
func Expand(reg *Registry, opts Options) ([]Instance, error) {
	specs := reg.Specs()
	if len(opts.Names) > 0 {
		byName := make(map[string]ScenarioSpec, len(specs))
		for _, s := range specs {
			byName[s.Name] = s
		}
		picked := make([]ScenarioSpec, 0, len(opts.Names))
		for _, name := range opts.Names {
			s, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("flaresuite: unknown scenario %q", name)
			}
			picked = append(picked, s)
		}
		specs = picked
	}
	var out []Instance
	for _, s := range specs {
		insts, err := s.Instances(opts.Expand)
		if err != nil {
			return nil, err
		}
		for _, inst := range insts {
			if matchesAxes(inst.Axes, opts.AxisFilter) {
				out = append(out, inst)
			}
		}
	}
	return out, nil
}

func matchesAxes(a Axes, filter map[string]string) bool {
	if len(filter) == 0 {
		return true
	}
	m := a.Map()
	for k, v := range filter {
		if m[k] != v {
			return false
		}
	}
	return true
}

// resolveScale applies the options' overrides to the named scale.
func resolveScale(opts Options) (Scale, error) {
	scale, ok := ParseScale(opts.Scale)
	if !ok {
		return Scale{}, fmt.Errorf("flaresuite: unknown scale %q (quick or full)", opts.Scale)
	}
	if opts.Factor > 0 {
		scale.DurationFactor = opts.Factor
	}
	if opts.Runs > 0 {
		scale.Runs = opts.Runs
	}
	return scale, nil
}

// matrixRunner adapts the instance loop to sim.WorkerPool: each worker
// owns a contiguous index range and writes only its own slots, so the
// collected summary order is the input order by construction.
type matrixRunner struct {
	ctx       context.Context
	instances []Instance
	scale     Scale
	outDir    string
	slots     []ScenarioSummary
}

// RunRange implements sim.RangeRunner.
func (m *matrixRunner) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		m.slots[i] = runInstance(m.ctx, m.instances[i], m.scale, m.outDir)
	}
}

// Run expands the registry through opts and executes every instance,
// fanning scenarios out across a bounded worker pool. Completed
// scenarios flush their artifacts as they finish; when ctx is cancelled
// (the graceful drain) instances not yet started are marked skipped,
// in-flight ones finish or report interrupted, and the summary —
// covering everything that did complete — is still written.
func Run(ctx context.Context, reg *Registry, opts Options) (*Summary, error) {
	scale, err := resolveScale(opts)
	if err != nil {
		return nil, err
	}
	instances, err := Expand(reg, opts)
	if err != nil {
		return nil, err
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("flaresuite: no scenarios selected")
	}
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return nil, fmt.Errorf("flaresuite: create %s: %w", opts.OutDir, err)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(instances) {
		workers = len(instances)
	}
	m := &matrixRunner{
		ctx:       ctx,
		instances: instances,
		scale:     scale,
		outDir:    opts.OutDir,
		slots:     make([]ScenarioSummary, len(instances)),
	}
	pool := sim.NewWorkerPool(workers)
	pool.Do(len(instances), m)
	pool.Close()

	scaleName := opts.Scale
	if scaleName == "" {
		scaleName = "quick"
	}
	sum := &Summary{
		Schema:    SummarySchema,
		Scale:     scaleName,
		Factor:    opts.Factor,
		Runs:      opts.Runs,
		Scenarios: m.slots,
	}
	for _, sc := range m.slots {
		switch sc.Status {
		case StatusPass:
			sum.Passed++
		case StatusSkip:
			sum.Skipped++
		default:
			sum.Failed++
		}
	}
	if opts.OutDir != "" {
		b, err := sum.JSON()
		if err != nil {
			return nil, err
		}
		path := filepath.Join(opts.OutDir, "summary.json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return nil, fmt.Errorf("flaresuite: write %s: %w", path, err)
		}
	}
	return sum, nil
}

// runInstance executes one scenario instance, converting Fatalf unwinds
// and body panics into failures instead of crashing the matrix.
func runInstance(ctx context.Context, inst Instance, scale Scale, outRoot string) ScenarioSummary {
	t := &T{
		name:  inst.Name,
		spec:  inst.Spec,
		axes:  inst.Axes,
		scale: scale,
		ctx:   ctx,
	}
	if ctx.Err() != nil {
		// The drain began before this slot started: skip, don't run.
		return t.finish(StatusSkip)
	}
	if outRoot != "" {
		dir := filepath.Join(outRoot, inst.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Errorf("create artifact dir: %v", err)
			return t.finish(StatusFail)
		}
		t.outDir = dir
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, expected := r.(failNow); !expected {
					t.failed = true
					t.failures = append(t.failures, fmt.Sprintf("panic: %v\n%s", r, debug.Stack()))
				}
			}
		}()
		body := inst.Spec.Run
		if body == nil {
			body = defaultBody
		}
		body(t)
	}()
	switch {
	case t.failed && ctx.Err() != nil:
		return t.finish(StatusInterrupted)
	case t.failed:
		return t.finish(StatusFail)
	}
	return t.finish(StatusPass)
}
