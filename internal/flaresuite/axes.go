package flaresuite

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
)

// The axis taxonomy. Every scenario is one point (or, with a Matrix, a
// cross-product of points) in this space; BuildConfig compiles a point
// into a cellsim.Config. Unknown values are errors, not silent
// defaults — the registry validates every spec at registration time.
const (
	// Channel axis: the link model under the cell.
	ChannelStatic     = "static"     // fixed MCS for every UE
	ChannelCyclic     = "cyclic"     // the dynamic-testbed 1->12->1 MCS cycle
	ChannelPedestrian = "pedestrian" // mobility model at walking speeds
	ChannelVehicular  = "vehicular"  // mobility model at vehicular speeds

	// Churn axis: how sessions arrive and depart.
	ChurnNone   = "none"   // fixed population, full-run sessions
	ChurnSteady = "steady" // Poisson arrivals / Pareto durations at Load x floor capacity
	ChurnFlash  = "flash"  // a resident cohort plus one synchronized arrival burst
	ChurnSoak   = "soak"   // steady churn over a long-horizon (1 h base) run

	// Fault axis: control-plane fault injection (FLARE mixes only).
	FaultNone     = "none"
	FaultLoss10   = "loss10"   // 10% of reports and polls dropped
	FaultLoss30   = "loss30"   // 30%
	FaultLoss50   = "loss50"   // 50%
	FaultBlackout = "blackout" // total control loss through the middle third

	// Mix axis: which scheme(s) drive the video population.
	MixFLARE        = "flare"
	MixFESTIVE      = "festive"
	MixGOOGLE       = "google"
	MixAVIS         = "avis"
	MixBBA          = "bba"
	MixMPC          = "mpc"
	MixFLAREFESTIVE = "flare+festive" // 4 coordinated + 4 conventional players

	// Ladder axis: the encoding ladder (and its segment duration).
	LadderSim     = "sim"     // Table III: 6 levels, 10 s segments
	LadderTestbed = "testbed" // femtocell: 8 levels, 2 s segments
	LadderFine    = "fine"    // Figures 8-10: 12 x 100 Kbps levels, 2 s segments
)

// axisValues enumerates the legal values per string axis, used by
// validation and by the CLI's axis listing.
var axisValues = map[string][]string{
	"channel": {ChannelStatic, ChannelCyclic, ChannelPedestrian, ChannelVehicular},
	"churn":   {ChurnNone, ChurnSteady, ChurnFlash, ChurnSoak},
	"faults":  {FaultNone, FaultLoss10, FaultLoss30, FaultLoss50, FaultBlackout},
	"mix":     {MixFLARE, MixFESTIVE, MixGOOGLE, MixAVIS, MixBBA, MixMPC, MixFLAREFESTIVE},
	"ladder":  {LadderSim, LadderTestbed, LadderFine},
}

// Axes is one point in the scenario space. The zero value of each field
// selects that axis's default (static channel, no churn, no faults,
// FLARE, the sim ladder, one cell).
type Axes struct {
	// Channel selects the link model.
	Channel string `json:"channel"`
	// Churn selects the arrival/departure profile.
	Churn string `json:"churn"`
	// Faults selects the control-plane fault profile.
	Faults string `json:"faults"`
	// Mix selects the scheme(s) running the video population.
	Mix string `json:"mix"`
	// Ladder selects the encoding ladder.
	Ladder string `json:"ladder"`
	// Cells is the number of independent cells (the paper computes
	// bitrates independently per cell; each gets its own control plane
	// and seed, results are pooled). 0 means 1.
	Cells int `json:"cells"`
	// Videos overrides the video population per cell (0 = the profile
	// default: 8, or 24 for flash crowds; churn profiles generate their
	// own population and reject an override).
	Videos int `json:"videos,omitempty"`
	// Load is the offered load for churn profiles, as a multiple of the
	// cell's floor-carrying capacity (0 = 1.0).
	Load float64 `json:"load,omitempty"`
}

// withDefaults fills zero fields with the axis defaults.
func (a Axes) withDefaults() Axes {
	if a.Channel == "" {
		a.Channel = ChannelStatic
	}
	if a.Churn == "" {
		a.Churn = ChurnNone
	}
	if a.Faults == "" {
		a.Faults = FaultNone
	}
	if a.Mix == "" {
		a.Mix = MixFLARE
	}
	if a.Ladder == "" {
		a.Ladder = defaultLadder(a.Churn)
	}
	if a.Cells <= 0 {
		a.Cells = 1
	}
	if a.Load == 0 {
		a.Load = 1
	}
	return a
}

// defaultLadder picks the ladder a churn profile expects: the capacity
// math of steady/soak churn is anchored at the testbed operating point
// (small floor capacity, quickly exceeded); everything else uses the
// Table III simulation ladder.
func defaultLadder(churn string) string {
	if churn == ChurnSteady || churn == ChurnSoak {
		return LadderTestbed
	}
	return LadderSim
}

// Validate checks every axis value (after defaulting) and the cross-axis
// constraints the engine imposes.
func (a Axes) Validate() error {
	a = a.withDefaults()
	for axis, v := range map[string]string{
		"channel": a.Channel, "churn": a.Churn, "faults": a.Faults,
		"mix": a.Mix, "ladder": a.Ladder,
	} {
		if !axisValueKnown(axis, v) {
			return fmt.Errorf("flaresuite: unknown %s axis value %q (known: %v)", axis, v, axisValues[axis])
		}
	}
	if a.Load < 0 {
		return fmt.Errorf("flaresuite: negative load %v", a.Load)
	}
	if a.Videos < 0 {
		return fmt.Errorf("flaresuite: negative videos %d", a.Videos)
	}
	if a.Faults != FaultNone && a.Mix != MixFLARE && a.Mix != MixFLAREFESTIVE {
		return fmt.Errorf("flaresuite: fault profile %q needs a FLARE control plane (mix %q has none)", a.Faults, a.Mix)
	}
	switch a.Churn {
	case ChurnSteady, ChurnSoak:
		if a.Channel != ChannelStatic {
			return fmt.Errorf("flaresuite: churn %q derives its offered load from the static floor capacity; channel %q is not supported", a.Churn, a.Channel)
		}
		if a.Mix == MixFLAREFESTIVE {
			return fmt.Errorf("flaresuite: churn %q is incompatible with mixed-scheme groups", a.Churn)
		}
		if a.Videos != 0 {
			return fmt.Errorf("flaresuite: churn %q generates its own population; videos=%d conflicts", a.Churn, a.Videos)
		}
	case ChurnFlash:
		if a.Mix == MixFLAREFESTIVE {
			return fmt.Errorf("flaresuite: churn %q is incompatible with mixed-scheme groups", a.Churn)
		}
	}
	return nil
}

func axisValueKnown(axis, v string) bool {
	for _, k := range axisValues[axis] {
		if k == v {
			return true
		}
	}
	return false
}

// Map renders the (defaulted) axes as a flat string map — the summary
// and filter representation. Keys are the Matrix axis names.
func (a Axes) Map() map[string]string {
	a = a.withDefaults()
	m := map[string]string{
		"channel": a.Channel,
		"churn":   a.Churn,
		"faults":  a.Faults,
		"mix":     a.Mix,
		"ladder":  a.Ladder,
		"cells":   strconv.Itoa(a.Cells),
	}
	if a.Videos != 0 {
		m["videos"] = strconv.Itoa(a.Videos)
	}
	if a.Load != 1 {
		m["load"] = strconv.FormatFloat(a.Load, 'g', -1, 64)
	}
	return m
}

// Set assigns one axis by name from its string form — the Matrix
// expansion and CLI -axis hook. Unknown keys and values are errors.
func (a *Axes) Set(key, value string) error {
	switch key {
	case "channel", "churn", "faults", "mix", "ladder":
		if !axisValueKnown(key, value) {
			return fmt.Errorf("flaresuite: unknown %s axis value %q (known: %v)", key, value, axisValues[key])
		}
		switch key {
		case "channel":
			a.Channel = value
		case "churn":
			a.Churn = value
		case "faults":
			a.Faults = value
		case "mix":
			a.Mix = value
		case "ladder":
			a.Ladder = value
		}
	case "cells", "videos":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("flaresuite: axis %s needs a non-negative integer, got %q", key, value)
		}
		if key == "cells" {
			a.Cells = n
		} else {
			a.Videos = n
		}
	case "load":
		f, err := strconv.ParseFloat(value, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("flaresuite: axis load needs a non-negative number, got %q", value)
		}
		a.Load = f
	default:
		return fmt.Errorf("flaresuite: unknown axis %q (known: channel, churn, faults, mix, ladder, cells, videos, load)", key)
	}
	return nil
}

// Matrix maps axis names to the values a scenario sweeps. The runner's
// -matrix mode expands the cross-product (axes in sorted-name order,
// values in declared order) into one scenario instance per point.
type Matrix map[string][]string

// expand returns every point of the cross-product applied over base,
// with a deterministic "key=value,key=value" suffix per point (empty
// for an empty matrix).
func (m Matrix) expand(base Axes) ([]Axes, []string, error) {
	if len(m) == 0 {
		return []Axes{base}, []string{""}, nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		if len(m[k]) == 0 {
			return nil, nil, fmt.Errorf("flaresuite: matrix axis %q has no values", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	points := []Axes{base}
	labels := []string{""}
	for _, k := range keys {
		var nextPoints []Axes
		var nextLabels []string
		for i, p := range points {
			for _, v := range m[k] {
				q := p
				if err := q.Set(k, v); err != nil {
					return nil, nil, err
				}
				label := labels[i]
				if label != "" {
					label += ","
				}
				nextPoints = append(nextPoints, q)
				nextLabels = append(nextLabels, label+k+"="+v)
			}
		}
		points, labels = nextPoints, nextLabels
	}
	return points, labels, nil
}

// Size returns the number of points the matrix expands to.
func (m Matrix) Size() int {
	n := 1
	for _, vs := range m {
		n *= len(vs)
	}
	return n
}

// Scenario sizing constants: base durations per churn profile, the
// flash-crowd shape, and the steady/soak operating point (the Table I
// cell, mirroring the ext-saturation derivation).
const (
	baseDuration      = 600 * time.Second  // fixed-population profiles
	churnDuration     = 480 * time.Second  // steady churn
	soakDuration      = 3600 * time.Second // long-horizon soak
	churnITbs         = 2                  // steady/soak MCS operating point
	churnMeanDuration = 40 * time.Second   // mean churn session length
	flashVideos       = 24                 // flash-crowd default population
)

// BuildConfig compiles one axis point into a single-cell engine
// configuration at the given scale. The caller assigns Seed (and, for
// Cells > 1, builds one config per cell); everything else — channel
// model, population, ladder, churn schedule, fault injection, scheme
// wiring — is determined here, so a spec is reproducible from its axes
// alone.
func BuildConfig(a Axes, scale Scale) (cellsim.Config, error) {
	a = a.withDefaults()
	if err := a.Validate(); err != nil {
		return cellsim.Config{}, err
	}

	scheme, groups := mixGroups(a.Mix)
	cfg := cellsim.DefaultConfig(scheme)
	cfg.VideoGroups = groups
	cfg.NumVideo = 0
	if len(groups) == 0 {
		cfg.NumVideo = 8
	}

	switch a.Ladder {
	case LadderSim:
		cfg.Ladder = has.SimLadder()
		cfg.SegmentDuration = 10 * time.Second
	case LadderTestbed:
		cfg.Ladder = has.TestbedLadder()
		cfg.SegmentDuration = 2 * time.Second
	case LadderFine:
		cfg.Ladder = has.FineLadder()
		cfg.SegmentDuration = 2 * time.Second
	}

	cfg.Duration = scaled(baseDuration, scale)
	switch a.Channel {
	case ChannelStatic:
		cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: 12}
	case ChannelCyclic:
		period := 4 * time.Minute
		if scale.DurationFactor > 0 && scale.DurationFactor < 1 {
			// Keep several MCS cycles within a shortened run.
			period = time.Duration(float64(period) * scale.DurationFactor)
		}
		cfg.Channel = cellsim.ChannelSpec{
			Kind: cellsim.ChannelCyclic, CyclicMin: 1, CyclicMax: 12, CyclicPeriod: period,
		}
	case ChannelPedestrian, ChannelVehicular:
		n := cfg.NumVideo
		if len(groups) > 0 {
			n = 0
			for _, g := range groups {
				n += g.Count
			}
		}
		mob := lte.DefaultMobilityConfig(n)
		if a.Channel == ChannelPedestrian {
			mob.MinSpeed, mob.MaxSpeed = 0.8, 1.5
		}
		cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelMobility, Mobility: mob}
	}

	switch a.Churn {
	case ChurnSteady, ChurnSoak:
		base := churnDuration
		if a.Churn == ChurnSoak {
			base = soakDuration
		}
		cfg.Duration = scaled(base, scale)
		cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: churnITbs}
		cfg.NumVideo = 0
		// Little's law: the interarrival gap that offers Load x the
		// floor-carrying capacity (sessions the RB budget holds at the
		// ladder's lowest encoding) at the churn mean duration.
		floorSessions := lte.CellRateBps(churnITbs) * cfg.Flare.CapacityMargin / cfg.Ladder.Min()
		gap := churnMeanDuration.Seconds() / (a.Load * floorSessions)
		cfg.Churn = cellsim.ChurnConfig{
			Enabled:          true,
			MeanInterarrival: time.Duration(gap * float64(time.Second)),
			MeanDuration:     churnMeanDuration,
			MaxSessions:      2048,
		}
	case ChurnFlash:
		n := a.Videos
		if n == 0 {
			n = flashVideos
		}
		cfg.NumVideo = n
		cfg.VideoArrivals = flashArrivals(n, cfg.Duration)
	case ChurnNone:
		if a.Videos != 0 {
			cfg.NumVideo = a.Videos
			if len(groups) > 0 {
				return cellsim.Config{}, fmt.Errorf("flaresuite: videos=%d conflicts with the fixed %q group sizes", a.Videos, a.Mix)
			}
		}
	}

	switch a.Faults {
	case FaultLoss10:
		cfg.ControlFaults = faults.Config{Seed: faultSeed, DropRate: 0.1}
	case FaultLoss30:
		cfg.ControlFaults = faults.Config{Seed: faultSeed, DropRate: 0.3}
	case FaultLoss50:
		cfg.ControlFaults = faults.Config{Seed: faultSeed, DropRate: 0.5}
	case FaultBlackout:
		third := cfg.Duration / 3
		cfg.ControlFaults = faults.Config{
			Seed:      faultSeed,
			Blackouts: []faults.Window{{From: third, To: 2 * third}},
		}
	}

	return cfg, nil
}

// faultSeed seeds the fault injectors independently of the run seeds,
// mirroring the ext-faults experiment.
const faultSeed uint64 = 0xfa_17_5eed

// mixGroups maps the mix axis to a single scheme or mixed video groups.
func mixGroups(mix string) (cellsim.Scheme, []cellsim.FlowGroup) {
	switch mix {
	case MixFLARE:
		return cellsim.SchemeFLARE, nil
	case MixFESTIVE:
		return cellsim.SchemeFESTIVE, nil
	case MixGOOGLE:
		return cellsim.SchemeGOOGLE, nil
	case MixAVIS:
		return cellsim.SchemeAVIS, nil
	case MixBBA:
		return cellsim.SchemeBBA, nil
	case MixMPC:
		return cellsim.SchemeMPC, nil
	case MixFLAREFESTIVE:
		return cellsim.SchemeFLARE, []cellsim.FlowGroup{
			{Scheme: cellsim.SchemeFLARE, Count: 4},
			{Scheme: cellsim.SchemeFESTIVE, Count: 4},
		}
	}
	return cellsim.SchemeFLARE, nil
}

// flashArrivals builds the flash-crowd schedule: a resident quarter of
// the population starts within the first two seconds; the rest arrive
// in one two-second burst a third of the way into the run — the
// "several new clients enter the system" path of Algorithm 1, at its
// sharpest.
func flashArrivals(n int, dur time.Duration) []time.Duration {
	arrivals := make([]time.Duration, n)
	residents := n / 4
	if residents == 0 {
		residents = 1
	}
	burst := dur / 3
	for i := range arrivals {
		if i < residents {
			// Residents trickle in over the first two seconds.
			arrivals[i] = time.Duration(i) * 2 * time.Second / time.Duration(residents)
		} else {
			// The crowd lands within a two-second window at burst time.
			k := i - residents
			crowd := n - residents
			arrivals[i] = burst + time.Duration(k)*2*time.Second/time.Duration(crowd)
		}
	}
	return arrivals
}

// FlashResidents returns how many leading clients of a flash-crowd
// population are residents (present before the burst) — the cohort the
// flash-crowd spec holds to the stall-free guarantee.
func FlashResidents(n int) int {
	r := n / 4
	if r == 0 {
		r = 1
	}
	return r
}
