// The matrix-native scenarios: workloads that exist only as axis
// points, with no bespoke experiment code behind them. Each body is the
// declarative pattern the harness is for — compile the axes, run the
// point, assert the claim, record the standard metrics.
package flaresuite

import (
	"fmt"

	"github.com/flare-sim/flare/internal/metrics"
)

func init() {
	Register(ScenarioSpec{
		Name:        "flash-crowd",
		Description: "a synchronized arrival burst hits a static cell; residents keep their floors (FLARE) and the whole crowd reaches playback",
		Axes:        Axes{Channel: ChannelStatic, Churn: ChurnFlash, Mix: MixFLARE},
		Matrix:      Matrix{"mix": {MixFLARE, MixFESTIVE}},
		Run: func(t *T) {
			results := t.MustRunPoint()
			t.RecordStandard(results)
			var residentStalls float64
			for _, r := range results {
				n := len(r.Clients)
				residents := FlashResidents(n)
				started := 0
				for i, c := range r.Clients {
					t.AssertTrue(c.Segments > 0, "client %d downloaded nothing through the burst", c.FlowID)
					if c.StartupDelaySeconds >= 0 {
						started++
					}
					if i < residents {
						residentStalls += c.StallSeconds
					}
				}
				t.AssertTrue(started == n, "only %d/%d clients reached playback after the burst", started, n)
			}
			t.Metric("resident_stall_s", residentStalls)
			if t.Axes().Mix == MixFLARE {
				t.AssertTrue(residentStalls == 0,
					"resident cohort rebuffered %.1f s under the burst; coordination should hold their floors", residentStalls)
			}
		},
	})

	Register(ScenarioSpec{
		Name:        "het-ladders",
		Description: "one static FLARE cell swept across heterogeneous encoding ladders (coarse/testbed/fine grain)",
		Axes:        Axes{Channel: ChannelStatic, Mix: MixFLARE, Ladder: LadderSim},
		Matrix:      Matrix{"ladder": {LadderSim, LadderTestbed, LadderFine}},
		Run: func(t *T) {
			results := t.MustRunPoint()
			t.RecordStandard(results)
			cfg, err := t.Config()
			if err != nil {
				t.Fatalf("%v", err)
			}
			for _, r := range results {
				for _, c := range r.Clients {
					t.AssertTrue(c.Segments > 0, "client %d downloaded nothing", c.FlowID)
					t.AssertInRange(fmt.Sprintf("client %d mean encoding rate", c.FlowID),
						c.AvgRateBps, cfg.Ladder.Min(), cfg.Ladder.Max())
				}
			}
		},
	})

	Register(ScenarioSpec{
		Name:        "churn-soak",
		Description: "long-horizon Poisson/Pareto churn at the floor operating point; per-cohort rates stay stationary across thirds of the arrival sequence",
		Axes:        Axes{Channel: ChannelStatic, Churn: ChurnSoak, Mix: MixFLARE, Load: 0.7},
		Matrix:      Matrix{"load": {"0.7", "1.0"}},
		Run: func(t *T) {
			results := t.MustRunPoint()
			t.RecordStandard(results)
			maxDev := 0.0
			for _, r := range results {
				// Clients are in arrival order (the churn generator's
				// schedule); stationarity = each third of the arrival
				// sequence sees the same mean encoding rate, i.e. the
				// soak neither drifts nor starves late arrivals.
				var rates []float64
				for _, c := range r.Clients {
					if c.Segments > 0 {
						rates = append(rates, c.AvgRateBps)
					}
				}
				if len(rates) < 9 {
					t.Errorf("only %d sessions completed a segment; the soak needs a sustained population", len(rates))
					continue
				}
				overall := metrics.Mean(rates)
				third := len(rates) / 3
				for k := 0; k < 3; k++ {
					lo, hi := k*third, (k+1)*third
					if k == 2 {
						hi = len(rates)
					}
					dev := metrics.Mean(rates[lo:hi]) / overall
					if d := absDev(dev); d > maxDev {
						maxDev = d
					}
					t.AssertInRange(fmt.Sprintf("arrival-third %d mean rate vs overall", k+1), dev, 0.5, 1.5)
				}
			}
			t.Metric("stationarity_max_dev", maxDev)
		},
	})
}

// absDev returns |ratio - 1|.
func absDev(ratio float64) float64 {
	if ratio < 1 {
		return 1 - ratio
	}
	return ratio - 1
}
