package flaresuite

import (
	"fmt"
	"regexp"
	"sync"
)

// scenarioName constrains registered names to safe artifact-directory
// and filter tokens.
var scenarioName = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]*$`)

// Registry holds named scenario specs, database/sql style: specs
// self-register at init time (the builtin specs do, on importing this
// package), duplicate or invalid registrations panic, and lookups are
// by exact name.
type Registry struct {
	mu    sync.Mutex
	specs map[string]ScenarioSpec
	order []string
}

// NewRegistry returns an empty registry (tests use private ones; the
// package-level Default carries the builtin specs).
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]ScenarioSpec)}
}

// Register adds a spec. It panics on a duplicate name, an invalid name,
// or axes/matrix that do not validate — misregistering a scenario is a
// programming error, surfaced at init like a duplicate sql driver.
func (r *Registry) Register(s ScenarioSpec) {
	if !scenarioName.MatchString(s.Name) {
		panic(fmt.Sprintf("flaresuite: invalid scenario name %q", s.Name))
	}
	if err := s.Axes.Validate(); err != nil {
		panic(fmt.Sprintf("flaresuite: scenario %q: %v", s.Name, err))
	}
	if _, _, err := s.Matrix.expand(s.Axes.withDefaults()); err != nil {
		panic(fmt.Sprintf("flaresuite: scenario %q: %v", s.Name, err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[s.Name]; dup {
		panic(fmt.Sprintf("flaresuite: scenario %q registered twice", s.Name))
	}
	r.specs[s.Name] = s
	r.order = append(r.order, s.Name)
}

// Specs returns every spec in registration order.
func (r *Registry) Specs() []ScenarioSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ScenarioSpec, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.specs[name])
	}
	return out
}

// Lookup returns the spec with the given name.
func (r *Registry) Lookup(name string) (ScenarioSpec, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.specs[name]
	return s, ok
}

// defaultRegistry carries the builtin specs (registered by the specs
// files' init functions).
var defaultRegistry = NewRegistry()

// Register adds a spec to the default registry.
func Register(s ScenarioSpec) { defaultRegistry.Register(s) }

// Default returns the default registry.
func Default() *Registry { return defaultRegistry }
