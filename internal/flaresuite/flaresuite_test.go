package flaresuite_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/flare-sim/flare/internal/flaresuite"
)

// noopSpec returns a registrable spec with an empty body.
func noopSpec(name string) flaresuite.ScenarioSpec {
	return flaresuite.ScenarioSpec{Name: name, Run: func(t *flaresuite.T) {}}
}

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v; want message containing %q", r, want)
		}
	}()
	fn()
}

// TestRegisterDuplicatePanics pins the database/sql-style registration
// contract: the second registration of a name is a programming error.
func TestRegisterDuplicatePanics(t *testing.T) {
	reg := flaresuite.NewRegistry()
	reg.Register(noopSpec("dup"))
	mustPanic(t, "registered twice", func() { reg.Register(noopSpec("dup")) })
}

// TestRegisterRejectsInvalidSpecs pins that bad names, bad axis values,
// and bad matrices all surface at registration time, not at run time.
func TestRegisterRejectsInvalidSpecs(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec flaresuite.ScenarioSpec
		want string
	}{
		{"bad name", flaresuite.ScenarioSpec{Name: "Bad Name"}, "invalid scenario name"},
		{"unknown channel", flaresuite.ScenarioSpec{
			Name: "s", Axes: flaresuite.Axes{Channel: "warp"},
		}, `unknown channel axis value "warp"`},
		{"faults without flare", flaresuite.ScenarioSpec{
			Name: "s", Axes: flaresuite.Axes{Faults: flaresuite.FaultLoss10, Mix: flaresuite.MixBBA},
		}, "needs a FLARE control plane"},
		{"empty matrix axis", flaresuite.ScenarioSpec{
			Name: "s", Matrix: flaresuite.Matrix{"mix": nil},
		}, "has no values"},
		{"unknown matrix value", flaresuite.ScenarioSpec{
			Name: "s", Matrix: flaresuite.Matrix{"mix": {"nope"}},
		}, `unknown mix axis value "nope"`},
		{"unknown matrix axis", flaresuite.ScenarioSpec{
			Name: "s", Matrix: flaresuite.Matrix{"bogus": {"x"}},
		}, `unknown axis "bogus"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := flaresuite.NewRegistry()
			mustPanic(t, tc.want, func() { reg.Register(tc.spec) })
		})
	}
}

// TestAxesUnknownValues pins the Validate/Set error paths the CLI and
// matrix expansion rely on.
func TestAxesUnknownValues(t *testing.T) {
	if err := (flaresuite.Axes{Churn: "tsunami"}).Validate(); err == nil ||
		!strings.Contains(err.Error(), `unknown churn axis value "tsunami"`) {
		t.Errorf("Validate: got %v, want unknown-churn error", err)
	}
	var a flaresuite.Axes
	if err := a.Set("ladder", "brass"); err == nil ||
		!strings.Contains(err.Error(), `unknown ladder axis value "brass"`) {
		t.Errorf("Set value: got %v, want unknown-ladder error", err)
	}
	if err := a.Set("warp", "9"); err == nil ||
		!strings.Contains(err.Error(), `unknown axis "warp"`) {
		t.Errorf("Set key: got %v, want unknown-axis error", err)
	}
	if err := a.Set("cells", "-1"); err == nil {
		t.Error("Set cells=-1: got nil, want error")
	}
	if err := a.Set("mix", flaresuite.MixMPC); err != nil {
		t.Errorf("Set mix=%s: %v", flaresuite.MixMPC, err)
	}
}

// TestMatrixExpansion pins the cross-product size, the deterministic
// sorted-key naming, and that off-matrix expansion yields the base point.
func TestMatrixExpansion(t *testing.T) {
	spec := flaresuite.ScenarioSpec{
		Name: "sweep",
		Matrix: flaresuite.Matrix{
			"mix":    {flaresuite.MixFLARE, flaresuite.MixFESTIVE},
			"ladder": {flaresuite.LadderSim, flaresuite.LadderTestbed, flaresuite.LadderFine},
		},
	}
	if got := spec.Matrix.Size(); got != 6 {
		t.Fatalf("Matrix.Size() = %d, want 6", got)
	}
	insts, err := spec.Instances(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 6 {
		t.Fatalf("Instances(true) = %d points, want 6", len(insts))
	}
	// Keys expand in sorted order (ladder before mix), values in
	// declared order; the first and last points pin both.
	if insts[0].Name != "sweep@ladder=sim,mix=flare" {
		t.Errorf("first point = %q", insts[0].Name)
	}
	if insts[5].Name != "sweep@ladder=fine,mix=festive" {
		t.Errorf("last point = %q", insts[5].Name)
	}
	if insts[5].Axes.Ladder != flaresuite.LadderFine || insts[5].Axes.Mix != flaresuite.MixFESTIVE {
		t.Errorf("last point axes = %+v", insts[5].Axes)
	}

	base, err := spec.Instances(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 || base[0].Name != "sweep" {
		t.Errorf("Instances(false) = %+v, want the single base point", base)
	}
}

// TestExpandFilters pins the runner-level selection: unknown names are
// errors, axis filters subset the expansion.
func TestExpandFilters(t *testing.T) {
	reg := flaresuite.NewRegistry()
	spec := noopSpec("sweep")
	spec.Matrix = flaresuite.Matrix{"mix": {flaresuite.MixFLARE, flaresuite.MixFESTIVE}}
	reg.Register(spec)

	if _, err := flaresuite.Expand(reg, flaresuite.Options{Names: []string{"nope"}}); err == nil ||
		!strings.Contains(err.Error(), `unknown scenario "nope"`) {
		t.Errorf("unknown name: got %v, want unknown-scenario error", err)
	}
	insts, err := flaresuite.Expand(reg, flaresuite.Options{
		Expand: true, AxisFilter: map[string]string{"mix": flaresuite.MixFESTIVE},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Axes.Mix != flaresuite.MixFESTIVE {
		t.Errorf("axis filter kept %+v, want the single festive point", insts)
	}
}

// TestRunLockstepAcrossWorkers is the determinism gate: the same
// selection of real scenarios, executed at 1 worker and at 4, must
// produce byte-identical summary JSON — the matrix fan-out may change
// wall-clock interleaving but never results or their order.
func TestRunLockstepAcrossWorkers(t *testing.T) {
	opts := flaresuite.Options{
		Scale:  "quick",
		Factor: 0.02,
		Runs:   1,
		Expand: true,
		Names:  []string{"flash-crowd", "het-ladders", "churn-soak"},
	}
	var out [][]byte
	for _, workers := range []int{1, 4} {
		o := opts
		o.Workers = workers
		sum, err := flaresuite.Run(context.Background(), flaresuite.Default(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sum.Ok() {
			t.Fatalf("workers=%d: %d failed, %d skipped: %+v", workers, sum.Failed, sum.Skipped, sum.Scenarios)
		}
		if len(sum.Scenarios) != 7 {
			t.Fatalf("workers=%d: %d instances, want 7", workers, len(sum.Scenarios))
		}
		b, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Error("summary JSON differs between workers=1 and workers=4")
	}
}

// TestRunCancelledContextSkips pins the drain contract: scenarios not
// yet started under a cancelled context are skipped (not failed, not
// run) and the summary still reports them — and a skipped matrix is
// not Ok.
func TestRunCancelledContextSkips(t *testing.T) {
	reg := flaresuite.NewRegistry()
	ran := false
	spec := noopSpec("never")
	spec.Run = func(*flaresuite.T) { ran = true }
	reg.Register(spec)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := flaresuite.Run(ctx, reg, flaresuite.Options{Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("scenario body ran under a cancelled context")
	}
	if sum.Skipped != 1 || len(sum.Scenarios) != 1 || sum.Scenarios[0].Status != flaresuite.StatusSkip {
		t.Errorf("summary = %+v, want one skipped scenario", sum)
	}
	if sum.Ok() {
		t.Error("Ok() = true for a skipped matrix")
	}
}
