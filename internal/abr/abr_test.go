package abr

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/sim"
)

func state(ladder has.Ladder, lastQ int, buffer float64) has.State {
	return has.State{
		Ladder:        ladder,
		LastQuality:   lastQ,
		BufferSeconds: buffer,
		Playing:       true,
	}
}

func rec(quality int, tputBps float64) has.SegmentRecord {
	return has.SegmentRecord{Quality: quality, ThroughputBps: tputBps}
}

// --- History ---

func TestHistoryRing(t *testing.T) {
	h := NewHistory(3)
	if h.Len() != 0 || h.Last() != 0 {
		t.Fatal("empty history wrong")
	}
	h.Add(1)
	h.Add(2)
	if h.Len() != 2 || h.Last() != 2 {
		t.Fatalf("len=%d last=%v", h.Len(), h.Last())
	}
	h.Add(3)
	h.Add(4) // evicts 1
	if h.Len() != 3 {
		t.Fatalf("len=%d, want 3", h.Len())
	}
	if got := h.Mean(0); math.Abs(got-3) > 1e-12 {
		t.Fatalf("mean=%v, want 3 (of 2,3,4)", got)
	}
	if h.Last() != 4 {
		t.Fatalf("last=%v", h.Last())
	}
}

func TestHistoryRecentWindow(t *testing.T) {
	h := NewHistory(10)
	for i := 1; i <= 10; i++ {
		h.Add(float64(i))
	}
	if got := h.Mean(2); math.Abs(got-9.5) > 1e-12 {
		t.Fatalf("Mean(2)=%v, want 9.5", got)
	}
	if got := h.Mean(100); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("Mean(100)=%v, want 5.5", got)
	}
}

func TestHistoryHarmonicMean(t *testing.T) {
	h := NewHistory(5)
	h.Add(1)
	h.Add(2)
	h.Add(4)
	want := 3.0 / (1 + 0.5 + 0.25)
	if got := h.HarmonicMean(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("harmonic=%v, want %v", got, want)
	}
}

func TestHistoryClampsCapacity(t *testing.T) {
	h := NewHistory(0) // clamped to 1
	h.Add(5)
	h.Add(7)
	if h.Len() != 1 || h.Last() != 7 {
		t.Fatalf("len=%d last=%v", h.Len(), h.Last())
	}
}

// --- FESTIVE ---

func newTestFestive() *Festive {
	return NewFestive(DefaultFestiveConfig(), sim.NewRNG(1))
}

func TestFestiveStartsLowest(t *testing.T) {
	f := newTestFestive()
	if got := f.NextQuality(state(has.SimLadder(), -1, 0)); got != 0 {
		t.Fatalf("first pick = %d, want 0", got)
	}
}

func TestFestiveDelayedUpSwitch(t *testing.T) {
	f := newTestFestive()
	l := has.SimLadder()
	// Abundant bandwidth: 10 Mbps estimates. From level 0, K*(0+1)=4
	// consecutive recommendations are needed before stepping to 1.
	cur := 0
	ups := 0
	for seg := 0; seg < 6; seg++ {
		f.OnSegmentComplete(rec(cur, 10e6))
		q := f.NextQuality(state(l, cur, 20))
		if q > cur+1 {
			t.Fatalf("FESTIVE jumped more than one level: %d -> %d", cur, q)
		}
		if q == cur+1 {
			ups++
			if seg < 3 {
				t.Fatalf("up-switch after only %d segments, want >= 4", seg+1)
			}
		}
		cur = q
	}
	if ups == 0 {
		t.Fatal("no up-switch despite abundant bandwidth")
	}
}

func TestFestiveStepsDownQuickly(t *testing.T) {
	f := newTestFestive()
	l := has.SimLadder()
	// At level 4 (2 Mbps) with collapsing bandwidth (300 kbps).
	for i := 0; i < 5; i++ {
		f.OnSegmentComplete(rec(4, 300_000))
	}
	q := f.NextQuality(state(l, 4, 10))
	if q >= 4 {
		t.Fatalf("no down-switch on bandwidth collapse: %d", q)
	}
	if q < 3 {
		t.Fatalf("FESTIVE should step down gradually, got %d from 4", q)
	}
}

func TestFestiveNeverJumpsLevels(t *testing.T) {
	check := func(seed uint64, tputsRaw []uint32) bool {
		f := NewFestive(DefaultFestiveConfig(), sim.NewRNG(seed))
		l := has.SimLadder()
		cur := 0
		for _, tp := range tputsRaw {
			f.OnSegmentComplete(rec(cur, float64(tp%10_000_000)))
			q := f.NextQuality(state(l, cur, 15))
			if q < 0 || q >= l.Len() {
				return false
			}
			if q-cur > 1 {
				return false // never up more than one level
			}
			cur = q
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFestivePacingDelaysWhenBufferHigh(t *testing.T) {
	f := newTestFestive()
	l := has.SimLadder()
	if d := f.RequestDelay(state(l, 0, 1)); d != 0 {
		t.Fatalf("delay %d with near-empty buffer", d)
	}
	if d := f.RequestDelay(state(l, 0, 60)); d <= 0 {
		t.Fatal("no pacing delay with a 60 s buffer")
	}
}

// --- GOOGLE ---

func TestGoogleStartsLowest(t *testing.T) {
	g := NewGoogle(DefaultGoogleConfig())
	if got := g.NextQuality(state(has.SimLadder(), -1, 0)); got != 0 {
		t.Fatalf("first pick = %d", got)
	}
}

func TestGoogleUsesMinOfEstimates(t *testing.T) {
	g := NewGoogle(DefaultGoogleConfig())
	l := has.SimLadder()
	// Long history high, recent collapse: short-term must dominate.
	for i := 0; i < 8; i++ {
		g.OnSegmentComplete(rec(3, 5e6))
	}
	for i := 0; i < 3; i++ {
		g.OnSegmentComplete(rec(3, 400_000))
	}
	q := g.NextQuality(state(l, 3, 10))
	// 0.85 * 400k = 340k -> 250 kbps level (index 1).
	if q != 1 {
		t.Fatalf("quality = %d, want 1 after collapse", q)
	}
}

func TestGoogleJumpsDirectlyToEstimate(t *testing.T) {
	g := NewGoogle(DefaultGoogleConfig())
	l := has.SimLadder()
	for i := 0; i < 10; i++ {
		g.OnSegmentComplete(rec(0, 4e6))
	}
	// 0.85*4e6 = 3.4e6 -> top level immediately, no gradual climb.
	if q := g.NextQuality(state(l, 0, 10)); q != l.Len()-1 {
		t.Fatalf("quality = %d, want top %d", q, l.Len()-1)
	}
}

func TestGoogleConfigClamping(t *testing.T) {
	g := NewGoogle(GoogleConfig{P: 0.85, LongSegments: 0, ShortSegments: 9})
	g.OnSegmentComplete(rec(0, 1e6))
	if q := g.NextQuality(state(has.SimLadder(), 0, 5)); q < 0 {
		t.Fatal("clamped config broke selection")
	}
}

// --- Throughput (AVIS client) ---

func TestThroughputChasesEstimateWithoutMargin(t *testing.T) {
	a := NewThroughput(3)
	l := has.SimLadder()
	if q := a.NextQuality(state(l, -1, 0)); q != 0 {
		t.Fatalf("first pick = %d", q)
	}
	for i := 0; i < 3; i++ {
		a.OnSegmentComplete(rec(0, 1_000_000))
	}
	// Estimate exactly 1 Mbps -> picks the 1 Mbps rung (no 0.85 factor).
	if q := a.NextQuality(state(l, 0, 10)); q != 3 {
		t.Fatalf("quality = %d, want 3 (1 Mbps)", q)
	}
}

func TestThroughputWindowClamp(t *testing.T) {
	a := NewThroughput(-1)
	a.OnSegmentComplete(rec(0, 2e6))
	if q := a.NextQuality(state(has.SimLadder(), 0, 5)); q != 4 {
		t.Fatalf("quality = %d, want 4 (2 Mbps)", q)
	}
}

// --- FLARE plugin ---

func TestFlarePluginFollowsAssignment(t *testing.T) {
	p := NewFlarePlugin()
	l := has.SimLadder()
	if q := p.NextQuality(state(l, -1, 0)); q != 0 {
		t.Fatalf("pre-assignment pick = %d, want 0", q)
	}
	p.SetAssignedBps(1_000_000)
	if q := p.NextQuality(state(l, 0, 10)); q != 3 {
		t.Fatalf("quality = %d, want 3", q)
	}
	if p.AssignedBps() != 1_000_000 {
		t.Fatal("AssignedBps accessor wrong")
	}
	// Assignment between rungs rounds down.
	p.SetAssignedBps(1_500_000)
	if q := p.NextQuality(state(l, 3, 10)); q != 3 {
		t.Fatalf("quality = %d, want 3 (round down)", q)
	}
}

func TestFlarePluginClientCap(t *testing.T) {
	p := NewFlarePlugin()
	l := has.SimLadder()
	p.SetAssignedBps(3_000_000)
	p.SetMaxBps(500_000)
	if q := p.NextQuality(state(l, 0, 10)); q != 2 {
		t.Fatalf("quality = %d, want 2 (client cap 500k)", q)
	}
	if p.MaxBps() != 500_000 {
		t.Fatal("MaxBps accessor wrong")
	}
	p.SetMaxBps(0)
	if q := p.NextQuality(state(l, 0, 10)); q != 5 {
		t.Fatalf("quality = %d, want 5 after cap removal", q)
	}
	// Cap with no assignment yet also binds.
	p2 := NewFlarePlugin()
	p2.SetMaxBps(250_000)
	if q := p2.NextQuality(state(l, -1, 0)); q != 1 {
		t.Fatalf("quality = %d, want 1 (cap only)", q)
	}
}

func TestAdapterNames(t *testing.T) {
	if newTestFestive().Name() != "festive" {
		t.Error("festive name")
	}
	if NewGoogle(DefaultGoogleConfig()).Name() != "google" {
		t.Error("google name")
	}
	if NewThroughput(3).Name() != "throughput" {
		t.Error("throughput name")
	}
	if NewFlarePlugin().Name() != "flare" {
		t.Error("flare name")
	}
}

func TestFestivePacingJittersTargets(t *testing.T) {
	// The randomized scheduler must not use a fixed buffer target —
	// resampling after each delay is what de-synchronises clients.
	f := NewFestive(DefaultFestiveConfig(), sim.NewRNG(5))
	l := has.SimLadder()
	seen := map[int64]bool{}
	for i := 0; i < 16; i++ {
		d := f.RequestDelay(state(l, 0, 60))
		if d <= 0 {
			t.Fatalf("no delay with a 60 s buffer (iteration %d)", i)
		}
		seen[d] = true
	}
	if len(seen) < 4 {
		t.Fatalf("pacing delays not randomized: %d distinct over 16 draws", len(seen))
	}
}

func TestFestiveIgnoresEmptyHistory(t *testing.T) {
	f := newTestFestive()
	// LastQuality set but no throughput samples yet: conservative start.
	if q := f.NextQuality(state(has.SimLadder(), 3, 10)); q != 0 {
		t.Fatalf("pick %d with empty history", q)
	}
}

func TestGoogleShortWindowNeverExceedsLong(t *testing.T) {
	g := NewGoogle(GoogleConfig{P: 0.85, LongSegments: 5, ShortSegments: 10})
	// Short window is clamped to the long one; selection still works.
	for i := 0; i < 10; i++ {
		g.OnSegmentComplete(rec(0, 1e6))
	}
	if q := g.NextQuality(state(has.SimLadder(), 0, 5)); q != 2 {
		t.Fatalf("pick %d, want 2 (0.85 MBps -> 500k rung)", q)
	}
}
