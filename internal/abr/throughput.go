package abr

import "github.com/flare-sim/flare/internal/has"

// Throughput is the simple client-side adaptation the paper pairs with
// AVIS: "a simple rate adaptation algorithm on a UE that requests the
// highest possible rate based on the estimated throughput". The estimate
// is the harmonic mean of the last few segments with no safety factor, so
// the client chases whatever the network-enforced MBR lets through —
// producing the client/network mismatch the paper attributes to AVIS.
type Throughput struct {
	hist   *History
	window int
}

var _ has.Adapter = (*Throughput)(nil)

// NewThroughput builds the adapter with the given estimation window
// (segments); windows below 1 are clamped to 3.
func NewThroughput(window int) *Throughput {
	if window < 1 {
		window = 3
	}
	return &Throughput{hist: NewHistory(window), window: window}
}

// Name implements has.Adapter.
func (t *Throughput) Name() string { return "throughput" }

// OnSegmentComplete implements has.Adapter.
func (t *Throughput) OnSegmentComplete(rec has.SegmentRecord) {
	t.hist.Add(rec.ThroughputBps)
}

// NextQuality implements has.Adapter.
func (t *Throughput) NextQuality(s has.State) int {
	if t.hist.Len() == 0 {
		return 0
	}
	return s.Ladder.HighestAtMost(t.hist.HarmonicMean(0))
}
