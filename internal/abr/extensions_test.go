package abr

import (
	"testing"

	"github.com/flare-sim/flare/internal/has"
)

// --- BBA ---

func TestBBAStartsLowest(t *testing.T) {
	b := NewBBA(DefaultBBAConfig())
	if q := b.NextQuality(state(has.SimLadder(), -1, 0)); q != 0 {
		t.Fatalf("first pick %d", q)
	}
}

func TestBBABufferMap(t *testing.T) {
	b := NewBBA(BBAConfig{ReservoirSeconds: 5, CushionSeconds: 25})
	l := has.SimLadder()
	// Below reservoir: mapped rate is the minimum -> step down toward 0.
	if q := b.NextQuality(state(l, 3, 2)); q != 0 {
		t.Fatalf("below reservoir picked %d", q)
	}
	// Above cushion: mapped rate is the maximum -> step up one.
	if q := b.NextQuality(state(l, 3, 28)); q != 4 {
		t.Fatalf("above cushion picked %d, want one step up", q)
	}
	// Mid-cushion where the mapped rate (~680 kbps at buffer 9) sits
	// between the current rung (500k) and the next (1M): hold.
	midState := state(l, 2, 9)
	if q := b.NextQuality(midState); q != 2 {
		t.Fatalf("mid-cushion moved to %d", q)
	}
}

func TestBBAMonotoneInBuffer(t *testing.T) {
	b := NewBBA(DefaultBBAConfig())
	l := has.SimLadder()
	prev := -1
	for buf := 0.0; buf <= 30; buf += 1 {
		q := b.NextQuality(state(l, 3, buf))
		if prev >= 0 && q < prev && buf > 1 {
			// Mapped rate grows with buffer; from a fixed current level
			// the decision must be non-decreasing in buffer.
			t.Fatalf("decision fell from %d to %d at buffer %v", prev, q, buf)
		}
		prev = q
	}
}

func TestBBAConfigClamping(t *testing.T) {
	b := NewBBA(BBAConfig{ReservoirSeconds: -1, CushionSeconds: -5})
	if q := b.NextQuality(state(has.SimLadder(), 0, 10)); q < 0 {
		t.Fatal("clamped config broke selection")
	}
	if b.Name() != "bba" {
		t.Fatal("name")
	}
}

// --- MPC ---

func TestMPCStartsLowest(t *testing.T) {
	m := NewMPC(DefaultMPCConfig())
	if q := m.NextQuality(state(has.SimLadder(), -1, 0)); q != 0 {
		t.Fatalf("first pick %d", q)
	}
	if m.Name() != "mpc" {
		t.Fatal("name")
	}
}

func TestMPCClimbsWithBandwidthAndBuffer(t *testing.T) {
	cfg := DefaultMPCConfig()
	cfg.SegmentSeconds = 2
	m := NewMPC(cfg)
	l := has.SimLadder()
	// With 8 Mbps predictions and a full buffer, one switch penalty is
	// worth the sustained quality gain: MPC moves up decisively and
	// then holds (no oscillation).
	cur := 0
	var picks []int
	for seg := 0; seg < 12; seg++ {
		m.OnSegmentComplete(rec(cur, 8e6))
		cur = m.NextQuality(state(l, cur, 20))
		picks = append(picks, cur)
	}
	if cur < 4 {
		t.Fatalf("MPC stuck at %d with 8 Mbps predictions", cur)
	}
	for i := 4; i < len(picks); i++ {
		if picks[i] != picks[i-1] {
			t.Fatalf("MPC oscillated in steady state: %v", picks)
		}
	}
}

func TestMPCAvoidsRebuffering(t *testing.T) {
	cfg := DefaultMPCConfig()
	cfg.SegmentSeconds = 2
	m := NewMPC(cfg)
	l := has.SimLadder()
	// 600 kbps predicted throughput, nearly empty buffer: picking 2 or
	// 3 Mbps would stall; MPC must stay at or below 500 kbps.
	for i := 0; i < 5; i++ {
		m.OnSegmentComplete(rec(4, 600_000))
	}
	q := m.NextQuality(state(l, 4, 1))
	if rate := l.Rate(q); rate > 600_000 {
		t.Fatalf("MPC picked %v bps against 600k prediction with empty buffer", rate)
	}
}

func TestMPCRobustDiscountsAfterMisprediction(t *testing.T) {
	cfg := DefaultMPCConfig()
	cfg.SegmentSeconds = 2
	m := NewMPC(cfg)
	l := has.SimLadder()
	// Stable 2.4 Mbps history.
	for i := 0; i < 5; i++ {
		m.OnSegmentComplete(rec(3, 2_400_000))
	}
	m.NextQuality(state(l, 3, 10)) // records a prediction
	// Reality comes in far below the prediction.
	m.OnSegmentComplete(rec(3, 800_000))
	if m.maxErr == 0 {
		t.Fatal("prediction error not tracked")
	}
	// The discounted prediction must now be well below the raw mean.
	qRobust := m.NextQuality(state(l, 3, 4))
	m2 := NewMPC(MPCConfig{Horizon: 5, SegmentSeconds: 2, MuRebuffer: 3000, HistorySegments: 5, Robust: false})
	for _, tp := range []float64{2.4e6, 2.4e6, 2.4e6, 2.4e6, 0.8e6} {
		m2.OnSegmentComplete(rec(3, tp))
	}
	qPlain := m2.NextQuality(state(l, 3, 4))
	if qRobust > qPlain {
		t.Fatalf("robust pick %d above plain pick %d", qRobust, qPlain)
	}
}

func TestMPCEmergencyDropReachesFloor(t *testing.T) {
	cfg := DefaultMPCConfig()
	cfg.SegmentSeconds = 2
	m := NewMPC(cfg)
	l := has.SimLadder()
	// Throughput collapses to 150 kbps with an empty buffer: the first
	// decision must crash all the way down, not descend one rung.
	for i := 0; i < 5; i++ {
		m.OnSegmentComplete(rec(5, 150_000))
	}
	if q := m.NextQuality(state(l, 5, 0.5)); q != 0 {
		t.Fatalf("MPC picked %d during collapse, want 0", q)
	}
}

func TestQoEMonotone(t *testing.T) {
	prev := qoe(100_000)
	for _, r := range []float64{250_000, 500_000, 1e6, 3e6} {
		v := qoe(r)
		if v <= prev {
			t.Fatalf("qoe not increasing at %v", r)
		}
		prev = v
	}
}
