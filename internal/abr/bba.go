package abr

import "github.com/flare-sim/flare/internal/has"

// BBAConfig parameterises the buffer-based adapter.
type BBAConfig struct {
	// ReservoirSeconds is the buffer level below which the lowest rate
	// is selected.
	ReservoirSeconds float64
	// CushionSeconds is the buffer level above which the highest rate
	// is selected; between reservoir and cushion the rate map is linear.
	CushionSeconds float64
}

// DefaultBBAConfig returns the classic BBA-0 operating points scaled to
// the 30 s buffers used in this reproduction.
func DefaultBBAConfig() BBAConfig {
	return BBAConfig{ReservoirSeconds: 5, CushionSeconds: 22}
}

// BBA implements the buffer-based rate adaptation of Huang et al.
// (SIGCOMM'14), the BBA-0 variant: the bitrate is a function of the
// playout buffer alone — no throughput estimation at all. It is included
// as an extension baseline beyond the paper's three comparison schemes:
// buffer-based adaptation is the other major client-side school, and it
// makes an instructive contrast with FLARE (both avoid throughput-
// estimation noise, by entirely different means).
type BBA struct {
	cfg BBAConfig
}

var _ has.Adapter = (*BBA)(nil)

// NewBBA builds a BBA-0 adapter.
func NewBBA(cfg BBAConfig) *BBA {
	if cfg.ReservoirSeconds <= 0 {
		cfg.ReservoirSeconds = DefaultBBAConfig().ReservoirSeconds
	}
	if cfg.CushionSeconds <= cfg.ReservoirSeconds {
		cfg.CushionSeconds = cfg.ReservoirSeconds + 10
	}
	return &BBA{cfg: cfg}
}

// Name implements has.Adapter.
func (b *BBA) Name() string { return "bba" }

// OnSegmentComplete implements has.Adapter; BBA keeps no download state.
func (b *BBA) OnSegmentComplete(has.SegmentRecord) {}

// NextQuality implements has.Adapter: the rate map f(buffer) with the
// BBA-0 hysteresis — only move when the mapped rate crosses the next
// rung up (rate+ ) or falls below the current rung (rate-).
func (b *BBA) NextQuality(s has.State) int {
	if s.LastQuality < 0 {
		return 0
	}
	cur := s.Ladder.Clamp(s.LastQuality)
	mapped := b.mappedRate(s)
	switch {
	case cur+1 < s.Ladder.Len() && mapped >= s.Ladder.Rate(cur+1):
		return cur + 1
	case mapped < s.Ladder.Rate(cur):
		return s.Ladder.HighestAtMost(mapped)
	default:
		return cur
	}
}

// mappedRate is the linear buffer-to-rate map.
func (b *BBA) mappedRate(s has.State) float64 {
	minR, maxR := s.Ladder.Min(), s.Ladder.Max()
	switch {
	case s.BufferSeconds <= b.cfg.ReservoirSeconds:
		return minR
	case s.BufferSeconds >= b.cfg.CushionSeconds:
		return maxR
	default:
		frac := (s.BufferSeconds - b.cfg.ReservoirSeconds) /
			(b.cfg.CushionSeconds - b.cfg.ReservoirSeconds)
		return minR + frac*(maxR-minR)
	}
}
