// Package abr implements the client-side rate-adaptation algorithms the
// paper evaluates: FESTIVE (Jiang et al., CoNEXT'12), GOOGLE (the
// MPEG-DASH / Media Source demo player heuristic), the simple
// throughput-chasing client used with AVIS, and the FLARE plugin that
// strictly follows the bitrate assigned by the OneAPI server.
package abr

import "github.com/flare-sim/flare/internal/metrics"

// History is a fixed-capacity ring of recent per-segment throughput
// samples (bits/s) with the aggregate views the adapters need.
type History struct {
	samples []float64
	next    int
	full    bool
}

// NewHistory creates a history holding up to n samples. n must be
// positive; it is clamped to 1 otherwise.
func NewHistory(n int) *History {
	if n < 1 {
		n = 1
	}
	return &History{samples: make([]float64, n)}
}

// Add records a throughput sample.
func (h *History) Add(bps float64) {
	h.samples[h.next] = bps
	h.next++
	if h.next == len(h.samples) {
		h.next = 0
		h.full = true
	}
}

// Len returns the number of recorded samples (up to capacity).
func (h *History) Len() int {
	if h.full {
		return len(h.samples)
	}
	return h.next
}

// values returns the most recent min(k, Len) samples, oldest first.
func (h *History) values(k int) []float64 {
	n := h.Len()
	if k > n {
		k = n
	}
	out := make([]float64, 0, k)
	start := h.next - k
	if start < 0 {
		start += len(h.samples)
	}
	for i := 0; i < k; i++ {
		out = append(out, h.samples[(start+i)%len(h.samples)])
	}
	return out
}

// HarmonicMean returns the harmonic mean of the last k samples (all when
// k <= 0), or 0 when empty. HAS systems use the harmonic mean because it
// is robust to single large outliers.
func (h *History) HarmonicMean(k int) float64 {
	if k <= 0 {
		k = h.Len()
	}
	return metrics.HarmonicMean(h.values(k))
}

// Mean returns the arithmetic mean of the last k samples (all when
// k <= 0), or 0 when empty.
func (h *History) Mean(k int) float64 {
	if k <= 0 {
		k = h.Len()
	}
	return metrics.Mean(h.values(k))
}

// Last returns the most recent sample, or 0 when empty.
func (h *History) Last() float64 {
	if h.Len() == 0 {
		return 0
	}
	i := h.next - 1
	if i < 0 {
		i += len(h.samples)
	}
	return h.samples[i]
}
