package abr

import "github.com/flare-sim/flare/internal/has"

// GoogleConfig parameterises the MPEG-DASH / Media Source demo player
// heuristic the paper calls GOOGLE: two bandwidth estimates from the
// long- and short-term histories, selecting the highest rate at or below
// P * min(long, short).
type GoogleConfig struct {
	// P is the safety factor (the paper uses 0.85).
	P float64
	// LongSegments and ShortSegments are the two estimation windows.
	LongSegments, ShortSegments int
}

// DefaultGoogleConfig returns the demo player's settings.
func DefaultGoogleConfig() GoogleConfig {
	return GoogleConfig{P: 0.85, LongSegments: 10, ShortSegments: 3}
}

// Google implements the GOOGLE baseline. Unlike FESTIVE it has no
// gradual-switching or stability logic — it jumps straight to the
// estimated rate, which is why the paper observes aggressive selections
// and frequent rebuffering.
type Google struct {
	cfg  GoogleConfig
	hist *History
}

var _ has.Adapter = (*Google)(nil)

// NewGoogle builds a GOOGLE adapter.
func NewGoogle(cfg GoogleConfig) *Google {
	if cfg.LongSegments < 1 {
		cfg.LongSegments = 1
	}
	if cfg.ShortSegments < 1 {
		cfg.ShortSegments = 1
	}
	if cfg.ShortSegments > cfg.LongSegments {
		cfg.ShortSegments = cfg.LongSegments
	}
	return &Google{cfg: cfg, hist: NewHistory(cfg.LongSegments)}
}

// Name implements has.Adapter.
func (g *Google) Name() string { return "google" }

// OnSegmentComplete implements has.Adapter.
func (g *Google) OnSegmentComplete(rec has.SegmentRecord) {
	g.hist.Add(rec.ThroughputBps)
}

// NextQuality implements has.Adapter.
func (g *Google) NextQuality(s has.State) int {
	if g.hist.Len() == 0 {
		return 0
	}
	long := g.hist.Mean(g.cfg.LongSegments)
	short := g.hist.Mean(g.cfg.ShortSegments)
	est := long
	if short < est {
		est = short
	}
	return s.Ladder.HighestAtMost(g.cfg.P * est)
}
