package abr

import (
	"math"

	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/sim"
)

// FestiveConfig holds the FESTIVE parameters. The paper's Table IV uses
// k=4, p=0.85, alpha=12.
type FestiveConfig struct {
	// K is the delayed-update factor: an up-switch from level L is
	// applied only after the target has stayed above the current level
	// for K*(L+1) consecutive segments ("slower increase for higher
	// bitrates").
	K int
	// P is the bandwidth safety factor (target rate <= P * estimate).
	P float64
	// Alpha weights efficiency against stability in the combined score.
	Alpha float64
	// HistorySegments is the harmonic-mean estimation window.
	HistorySegments int
	// SwitchWindow is how many recent segments count toward the
	// stability (switch-count) score.
	SwitchWindow int
	// TargetBufferSeconds is the randomized-scheduling buffer target;
	// requests are paced so the buffer hovers around it.
	TargetBufferSeconds float64
}

// DefaultFestiveConfig returns the Table IV parameters (k=4, p=0.85,
// alpha=12). The estimation window is 5 segments: with the multi-second
// segments of the FLARE scenarios, a longer window averages across
// several radio coherence times and hides exactly the LTE bandwidth
// variability whose mishandling the paper documents for FESTIVE.
func DefaultFestiveConfig() FestiveConfig {
	return FestiveConfig{
		K:                   4,
		P:                   0.85,
		Alpha:               12,
		HistorySegments:     5,
		SwitchWindow:        10,
		TargetBufferSeconds: 25,
	}
}

// Festive implements the FESTIVE rate-adaptation algorithm: harmonic-mean
// bandwidth estimation, gradual (one-level) switching with delayed
// up-switches, a stability-vs-efficiency score to suppress oscillation,
// and randomized chunk scheduling.
type Festive struct {
	cfg  FestiveConfig
	hist *History
	rng  *sim.RNG

	upStreak  int
	lastQs    []int // recent selected levels, for the switch count
	bufTarget float64
}

var (
	_ has.Adapter      = (*Festive)(nil)
	_ has.RequestPacer = (*Festive)(nil)
)

// NewFestive builds a FESTIVE adapter with its own RNG stream.
func NewFestive(cfg FestiveConfig, rng *sim.RNG) *Festive {
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.HistorySegments < 1 {
		cfg.HistorySegments = 1
	}
	if cfg.SwitchWindow < 1 {
		cfg.SwitchWindow = 1
	}
	f := &Festive{
		cfg:  cfg,
		hist: NewHistory(cfg.HistorySegments),
		rng:  rng.Split(),
	}
	f.resampleBufferTarget()
	return f
}

// Name implements has.Adapter.
func (f *Festive) Name() string { return "festive" }

// OnSegmentComplete implements has.Adapter.
func (f *Festive) OnSegmentComplete(rec has.SegmentRecord) {
	f.hist.Add(rec.ThroughputBps)
	f.lastQs = append(f.lastQs, rec.Quality)
	if len(f.lastQs) > f.cfg.SwitchWindow+1 {
		f.lastQs = f.lastQs[1:]
	}
}

// recentSwitches counts level changes among the recent segments.
func (f *Festive) recentSwitches() int {
	n := 0
	for i := 1; i < len(f.lastQs); i++ {
		if f.lastQs[i] != f.lastQs[i-1] {
			n++
		}
	}
	return n
}

// NextQuality implements has.Adapter.
func (f *Festive) NextQuality(s has.State) int {
	if s.LastQuality < 0 || f.hist.Len() == 0 {
		return 0 // conservative start at the lowest rate
	}
	cur := s.Ladder.Clamp(s.LastQuality)
	w := f.hist.HarmonicMean(0)
	bref := s.Ladder.HighestAtMost(f.cfg.P * w)

	// Gradual switching: down-switches are immediate (the estimate says
	// the current rate is unsustainable), up-switches are delayed.
	if bref < cur {
		f.upStreak = 0
		return cur - 1
	}
	candidate := cur
	if bref > cur {
		f.upStreak++
		if f.upStreak >= f.cfg.K*(cur+1) {
			candidate = cur + 1
			f.upStreak = 0
		}
	} else {
		f.upStreak = 0
	}
	if candidate == cur {
		return cur
	}

	// Stability vs efficiency: up-switch only if the combined score of
	// the candidate beats staying put.
	if f.score(s.Ladder, candidate, cur, w) < f.score(s.Ladder, cur, cur, w) {
		return candidate
	}
	return cur
}

// score is FESTIVE's combined score: 2^(switch count) stability cost plus
// Alpha times the bandwidth-mismatch efficiency cost. Lower is better.
// The efficiency term uses the symmetric ratio max(r/t, t/r) - 1 rather
// than the paper's |r/t - 1|: the latter saturates at 1 when the current
// rate is far below the fair share, which would let the stability term
// veto every up-switch forever. The ratio form preserves the intent
// (distance from the estimated fair share) without the saturation.
func (f *Festive) score(l has.Ladder, b, cur int, w float64) float64 {
	switches := f.recentSwitches()
	if b != cur {
		switches++
	}
	stability := math.Pow(2, float64(switches))
	eff := 0.0
	if target := f.cfg.P * w; target > 0 {
		r := l.Rate(b)
		eff = math.Max(r/target, target/r) - 1
	}
	return stability + f.cfg.Alpha*eff
}

// RequestDelay implements has.RequestPacer: FESTIVE's randomized chunk
// scheduling keeps the buffer near a jittered target to de-synchronise
// competing clients.
func (f *Festive) RequestDelay(s has.State) int64 {
	if s.BufferSeconds <= f.bufTarget {
		return 0
	}
	delay := int64((s.BufferSeconds - f.bufTarget) * lte.TTIsPerSecond)
	f.resampleBufferTarget()
	return delay
}

func (f *Festive) resampleBufferTarget() {
	f.bufTarget = f.cfg.TargetBufferSeconds * f.rng.Uniform(0.85, 1.15)
	if f.bufTarget < 1 {
		f.bufTarget = 1
	}
}
