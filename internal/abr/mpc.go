package abr

import (
	"math"

	"github.com/flare-sim/flare/internal/has"
)

// MPCConfig parameterises the model-predictive-control adapter.
type MPCConfig struct {
	// Horizon is the look-ahead in segments.
	Horizon int
	// SegmentSeconds is the segment play length (needed to predict
	// download times and rebuffering).
	SegmentSeconds float64
	// LambdaSwitch weights the bitrate-change penalty.
	LambdaSwitch float64
	// MuRebuffer weights the predicted rebuffering penalty (per second).
	MuRebuffer float64
	// HistorySegments is the throughput-prediction window.
	HistorySegments int
	// Robust discounts the throughput prediction by the maximum recent
	// relative prediction error (the RobustMPC variant).
	Robust bool
}

// DefaultMPCConfig returns the standard RobustMPC settings for 10 s
// segments.
func DefaultMPCConfig() MPCConfig {
	return MPCConfig{
		Horizon:         5,
		SegmentSeconds:  10,
		LambdaSwitch:    1,
		MuRebuffer:      3000, // ~3x the top utility per second of stall
		HistorySegments: 5,
		Robust:          true,
	}
}

// MPC implements the control-theoretic adapter of Yin et al.
// (SIGCOMM'15), which the paper cites as the state of the art in
// client-side adaptation: choose the bitrate sequence over a short
// horizon that maximises a QoE objective (bitrate utility − switching
// penalty − rebuffering penalty) under a throughput prediction, then
// apply only the first decision. Included as an extension baseline.
type MPC struct {
	cfg  MPCConfig
	hist *History

	lastPrediction float64
	maxErr         float64
}

var _ has.Adapter = (*MPC)(nil)

// NewMPC builds an MPC adapter.
func NewMPC(cfg MPCConfig) *MPC {
	def := DefaultMPCConfig()
	if cfg.Horizon < 1 {
		cfg.Horizon = def.Horizon
	}
	if cfg.SegmentSeconds <= 0 {
		cfg.SegmentSeconds = def.SegmentSeconds
	}
	if cfg.HistorySegments < 1 {
		cfg.HistorySegments = def.HistorySegments
	}
	return &MPC{cfg: cfg, hist: NewHistory(cfg.HistorySegments)}
}

// Name implements has.Adapter.
func (m *MPC) Name() string { return "mpc" }

// OnSegmentComplete implements has.Adapter: record the sample and track
// the prediction error for the robust discount.
func (m *MPC) OnSegmentComplete(rec has.SegmentRecord) {
	if m.lastPrediction > 0 {
		err := math.Abs(m.lastPrediction-rec.ThroughputBps) / m.lastPrediction
		// Decay the error envelope so ancient mispredictions fade.
		m.maxErr = math.Max(0.8*m.maxErr, err)
	}
	m.hist.Add(rec.ThroughputBps)
}

// NextQuality implements has.Adapter: exhaustive search over the
// gradual-path space of bitrate sequences (each step moves at most one
// level, the MPC fast-table trick), scoring each by predicted QoE.
func (m *MPC) NextQuality(s has.State) int {
	if s.LastQuality < 0 || m.hist.Len() == 0 {
		return 0
	}
	pred := m.hist.HarmonicMean(0)
	if m.cfg.Robust && m.maxErr > 0 {
		pred /= 1 + m.maxErr
	}
	m.lastPrediction = pred
	if pred <= 0 {
		return 0
	}

	cur := s.Ladder.Clamp(s.LastQuality)
	bestFirst, bestScore := cur, math.Inf(-1)
	// The first step — the only decision actually applied — searches
	// the whole ladder (an emergency drop must be reachable in one
	// step); the remaining horizon steps move at most one level, which
	// prunes the search the way MPC's fast-table variant does.
	paths := 1
	for i := 1; i < m.cfg.Horizon; i++ {
		paths *= 3
	}
	for first := 0; first < s.Ladder.Len(); first++ {
		for p := 0; p < paths; p++ {
			score := m.scorePath(s, cur, first, pred, p)
			if score > bestScore {
				bestScore, bestFirst = score, first
			}
		}
	}
	return bestFirst
}

// scorePath simulates one path — a first level plus delta-encoded
// follow-ups — and returns its QoE score.
func (m *MPC) scorePath(s has.State, cur, first int, pred float64, path int) float64 {
	buffer := s.BufferSeconds
	level := first
	prev := cur
	score := 0.0
	for k := 0; k < m.cfg.Horizon; k++ {
		if k > 0 {
			delta := path%3 - 1
			path /= 3
			level = s.Ladder.Clamp(level + delta)
		}
		rate := s.Ladder.Rate(level)
		dl := rate * m.cfg.SegmentSeconds / pred // download seconds
		rebuf := math.Max(0, dl-buffer)
		buffer = math.Max(0, buffer-dl) + m.cfg.SegmentSeconds

		score += qoe(rate) -
			m.cfg.LambdaSwitch*math.Abs(qoe(rate)-qoe(s.Ladder.Rate(prev))) -
			m.cfg.MuRebuffer*rebuf
		prev = level
	}
	return score
}

// qoe is the per-segment bitrate utility (log-scaled, in "quality
// points" comparable across ladders).
func qoe(rateBps float64) float64 {
	return 1000 * math.Log(rateBps/1e5)
}
