package abr

import "github.com/flare-sim/flare/internal/has"

// FlarePlugin is the FLARE client-side plugin's adaptation behaviour:
// the player always uses the bitrate most recently assigned by the
// OneAPI server, optionally clipped by a client-side preference cap
// (e.g. a mobile-data budget). Before the first assignment arrives it
// streams at the lowest rate.
//
// This strict enforcement is FLARE's key coordination property — "FLARE
// ensures ... that UEs always utilize the bitrates assigned by the HAS
// network entity" — and is what removes the request/assignment mismatch
// seen in network-only systems.
type FlarePlugin struct {
	assignedBps float64
	maxBps      float64 // 0 = no client cap
}

var _ has.Adapter = (*FlarePlugin)(nil)

// NewFlarePlugin builds a plugin adapter with no assignment yet.
func NewFlarePlugin() *FlarePlugin { return &FlarePlugin{} }

// Name implements has.Adapter.
func (p *FlarePlugin) Name() string { return "flare" }

// SetAssignedBps installs the bitrate assigned by the OneAPI server.
func (p *FlarePlugin) SetAssignedBps(bps float64) { p.assignedBps = bps }

// AssignedBps returns the current assignment (0 before the first one).
func (p *FlarePlugin) AssignedBps() float64 { return p.assignedBps }

// SetMaxBps installs a client-side bitrate cap; 0 removes it. The cap is
// one of the optional client preferences Section II-B describes ("the
// client can specify an upper bound on its bitrate").
func (p *FlarePlugin) SetMaxBps(bps float64) { p.maxBps = bps }

// MaxBps returns the client-side cap (0 = none).
func (p *FlarePlugin) MaxBps() float64 { return p.maxBps }

// OnSegmentComplete implements has.Adapter. The plugin does not estimate
// bandwidth — the network knows the radio state better than the client.
func (p *FlarePlugin) OnSegmentComplete(has.SegmentRecord) {}

// NextQuality implements has.Adapter.
func (p *FlarePlugin) NextQuality(s has.State) int {
	bps := p.assignedBps
	if p.maxBps > 0 && (bps == 0 || p.maxBps < bps) {
		bps = p.maxBps
	}
	if bps <= 0 {
		return 0
	}
	return s.Ladder.HighestAtMost(bps)
}
