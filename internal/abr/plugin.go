package abr

import (
	"fmt"

	"github.com/flare-sim/flare/internal/has"
)

// PluginMode is the FLARE plugin's coordination state.
type PluginMode int

const (
	// ModeCoordinated follows the OneAPI server's assignments strictly
	// — "UEs always utilize the bitrates assigned by the HAS network
	// entity".
	ModeCoordinated PluginMode = iota
	// ModeFallback is the graceful-degradation state: coordination is
	// lost (failed polls or a stale assignment) and the plugin adapts
	// with a local throughput-based ABR until the control plane
	// recovers. Degraded FLARE behaves like a conventional client-side
	// player — never worse — instead of freezing on a dead assignment.
	ModeFallback
)

// String implements fmt.Stringer.
func (m PluginMode) String() string {
	switch m {
	case ModeCoordinated:
		return "coordinated"
	case ModeFallback:
		return "fallback"
	default:
		return fmt.Sprintf("PluginMode(%d)", int(m))
	}
}

// TransitionReason explains a plugin mode transition to observers.
type TransitionReason int

const (
	// ReasonFreshAssignment: a new-sequence assignment arrived and the
	// plugin rejoined coordination.
	ReasonFreshAssignment TransitionReason = iota
	// ReasonFailedPolls: K consecutive assignment polls failed.
	ReasonFailedPolls
	// ReasonStaleAssignment: the assignment stopped advancing for M BAIs.
	ReasonStaleAssignment
)

// String implements fmt.Stringer.
func (r TransitionReason) String() string {
	switch r {
	case ReasonFreshAssignment:
		return "fresh_assignment"
	case ReasonFailedPolls:
		return "failed_polls"
	case ReasonStaleAssignment:
		return "stale_assignment"
	default:
		return fmt.Sprintf("TransitionReason(%d)", int(r))
	}
}

// TransitionObserver is notified on every plugin mode transition: the
// new mode, why, and the triggering counter (consecutive failed polls
// or stale BAIs; 0 on recovery). The simulator's driver uses it to emit
// fallback/recover telemetry events with simulated timestamps.
type TransitionObserver func(to PluginMode, reason TransitionReason, count int)

// FallbackConfig parameterises the plugin's degradation policy. The
// zero value is normalised to the defaults below.
type FallbackConfig struct {
	// AfterFailedPolls is K: this many consecutive failed assignment
	// polls switch the plugin to fallback (default 3).
	AfterFailedPolls int
	// MaxAssignmentAgeBAIs is M: an assignment that has not advanced
	// for this many BAIs — the control plane answers but this flow's
	// GBR installs keep failing, or the server stopped running BAIs —
	// also triggers fallback (default 4).
	MaxAssignmentAgeBAIs int
	// SafetyFactor discounts the fallback throughput estimate before
	// picking a level, absorbing estimate noise without the network's
	// radio knowledge (default 0.85).
	SafetyFactor float64
	// WindowSegments is the throughput-history window for the local
	// estimator (default 3, matching the AVIS companion client).
	WindowSegments int
}

// DefaultFallbackConfig returns the paper-plausible degradation
// parameters: fall back after 3 lost polls or a 4-BAI-stale assignment.
func DefaultFallbackConfig() FallbackConfig {
	return FallbackConfig{
		AfterFailedPolls:     3,
		MaxAssignmentAgeBAIs: 4,
		SafetyFactor:         0.85,
		WindowSegments:       3,
	}
}

func (c FallbackConfig) normalized() FallbackConfig {
	d := DefaultFallbackConfig()
	if c.AfterFailedPolls <= 0 {
		c.AfterFailedPolls = d.AfterFailedPolls
	}
	if c.MaxAssignmentAgeBAIs <= 0 {
		c.MaxAssignmentAgeBAIs = d.MaxAssignmentAgeBAIs
	}
	if c.SafetyFactor <= 0 || c.SafetyFactor > 1 {
		c.SafetyFactor = d.SafetyFactor
	}
	if c.WindowSegments <= 0 {
		c.WindowSegments = d.WindowSegments
	}
	return c
}

// FlarePlugin is the FLARE client-side plugin's adaptation behaviour:
// the player uses the bitrate most recently assigned by the OneAPI
// server, optionally clipped by a client-side preference cap (e.g. a
// mobile-data budget). Before the first assignment arrives it streams
// at the lowest rate.
//
// Strict enforcement is FLARE's key coordination property, but it only
// holds while coordination *works*: the plugin tracks poll failures and
// assignment age, degrades to a local throughput-based ABR when the
// control plane is lost (ModeFallback), and rejoins coordination as
// soon as a fresh assignment arrives. Mode transitions are counted for
// the simulator's Result.
type FlarePlugin struct {
	assignedBps float64
	maxBps      float64 // 0 = no client cap

	fb   FallbackConfig
	hist *History

	mode        PluginMode
	lastSeq     int64
	failedPolls int
	staleBAIs   int
	transitions int
	fallbackOps int // control-plane intervals spent in fallback

	onTransition TransitionObserver // optional; see SetTransitionObserver
}

var _ has.Adapter = (*FlarePlugin)(nil)

// NewFlarePlugin builds a plugin adapter with no assignment yet and the
// default fallback policy.
func NewFlarePlugin() *FlarePlugin {
	return NewFlarePluginWithFallback(FallbackConfig{})
}

// NewFlarePluginWithFallback builds a plugin with an explicit
// degradation policy.
func NewFlarePluginWithFallback(fb FallbackConfig) *FlarePlugin {
	fb = fb.normalized()
	return &FlarePlugin{fb: fb, hist: NewHistory(fb.WindowSegments)}
}

// Name implements has.Adapter.
func (p *FlarePlugin) Name() string { return "flare" }

// SetTransitionObserver installs a mode-transition callback (nil
// removes it). The observer fires synchronously inside Deliver /
// PollFailed, after the mode has changed.
func (p *FlarePlugin) SetTransitionObserver(fn TransitionObserver) { p.onTransition = fn }

func (p *FlarePlugin) notify(reason TransitionReason, count int) {
	if p.onTransition != nil {
		p.onTransition(p.mode, reason, count)
	}
}

// SetAssignedBps installs the bitrate assigned by the OneAPI server
// without sequence bookkeeping — the legacy push path. Prefer Deliver,
// which also feeds the staleness detector.
func (p *FlarePlugin) SetAssignedBps(bps float64) { p.assignedBps = bps }

// AssignedBps returns the current assignment (0 before the first one).
func (p *FlarePlugin) AssignedBps() float64 { return p.assignedBps }

// Deliver records one successful assignment poll: the assigned bitrate
// and the BAI sequence it was installed in. A fresh sequence restores
// coordination (recovering from fallback if needed); a repeated
// sequence means the assignment is going stale — the control plane
// answers but no new BAI has covered this flow — and after
// MaxAssignmentAgeBAIs repeats the plugin degrades.
func (p *FlarePlugin) Deliver(bps float64, seq int64) {
	p.tickFallback()
	if seq > p.lastSeq {
		p.lastSeq = seq
		p.assignedBps = bps
		p.failedPolls = 0
		p.staleBAIs = 0
		if p.mode == ModeFallback {
			p.mode = ModeCoordinated
			p.transitions++
			p.notify(ReasonFreshAssignment, 0)
		}
		return
	}
	// Same (or rewound, e.g. server restart) sequence: stale.
	p.failedPolls = 0
	p.staleBAIs++
	if p.mode == ModeCoordinated && p.staleBAIs >= p.fb.MaxAssignmentAgeBAIs {
		p.mode = ModeFallback
		p.transitions++
		p.notify(ReasonStaleAssignment, p.staleBAIs)
	}
}

// PollFailed records one failed assignment poll (timeout, drop, server
// blackout). After AfterFailedPolls consecutive failures the plugin
// degrades to its local ABR so the session never stalls on a dead
// control plane.
func (p *FlarePlugin) PollFailed() {
	p.tickFallback()
	p.failedPolls++
	if p.mode == ModeCoordinated && p.failedPolls >= p.fb.AfterFailedPolls {
		p.mode = ModeFallback
		p.transitions++
		p.notify(ReasonFailedPolls, p.failedPolls)
	}
}

func (p *FlarePlugin) tickFallback() {
	if p.mode == ModeFallback {
		p.fallbackOps++
	}
}

// Mode returns the plugin's current coordination state.
func (p *FlarePlugin) Mode() PluginMode { return p.mode }

// Transitions counts mode switches (both degradations and recoveries).
func (p *FlarePlugin) Transitions() int { return p.transitions }

// FallbackIntervals counts control-plane intervals (BAIs) the plugin
// spent degraded.
func (p *FlarePlugin) FallbackIntervals() int { return p.fallbackOps }

// SetMaxBps installs a client-side bitrate cap; 0 removes it. The cap is
// one of the optional client preferences Section II-B describes ("the
// client can specify an upper bound on its bitrate").
func (p *FlarePlugin) SetMaxBps(bps float64) { p.maxBps = bps }

// MaxBps returns the client-side cap (0 = none).
func (p *FlarePlugin) MaxBps() float64 { return p.maxBps }

// OnSegmentComplete implements has.Adapter. Coordinated FLARE does not
// estimate bandwidth — the network knows the radio state better than
// the client — but the plugin keeps a small throughput history warm so
// the fallback ABR has something to stand on the moment coordination
// is lost.
func (p *FlarePlugin) OnSegmentComplete(rec has.SegmentRecord) {
	p.hist.Add(rec.ThroughputBps)
}

// NextQuality implements has.Adapter.
func (p *FlarePlugin) NextQuality(s has.State) int {
	if p.mode == ModeFallback {
		return p.fallbackQuality(s)
	}
	bps := p.assignedBps
	if p.maxBps > 0 && (bps == 0 || p.maxBps < bps) {
		bps = p.maxBps
	}
	if bps <= 0 {
		return 0
	}
	return s.Ladder.HighestAtMost(bps)
}

// fallbackQuality is the degraded-mode ABR: harmonic-mean throughput of
// the recent segments, discounted by the safety factor, clipped by the
// client cap. With no history yet it plays safe at the lowest level.
func (p *FlarePlugin) fallbackQuality(s has.State) int {
	if p.hist.Len() == 0 {
		return 0
	}
	bps := p.fb.SafetyFactor * p.hist.HarmonicMean(0)
	if p.maxBps > 0 && p.maxBps < bps {
		bps = p.maxBps
	}
	if bps <= 0 {
		return 0
	}
	return s.Ladder.HighestAtMost(bps)
}
