package abr

import (
	"testing"

	"github.com/flare-sim/flare/internal/has"
)

func pluginState(ladder has.Ladder) has.State {
	return has.State{Ladder: ladder, LastQuality: -1, Playing: true}
}

func TestPluginStaysCoordinatedWithFreshAssignments(t *testing.T) {
	p := NewFlarePluginWithFallback(FallbackConfig{})
	ladder := has.SimLadder()
	for seq := int64(1); seq <= 20; seq++ {
		p.Deliver(1_500_000, seq)
	}
	if p.Mode() != ModeCoordinated || p.Transitions() != 0 {
		t.Fatalf("mode %v transitions %d under healthy delivery", p.Mode(), p.Transitions())
	}
	if q := p.NextQuality(pluginState(ladder)); ladder.Rate(q) > 1_500_000 {
		t.Fatalf("coordinated quality %d exceeds assignment", q)
	}
}

func TestPluginFallsBackAfterKFailedPolls(t *testing.T) {
	p := NewFlarePluginWithFallback(FallbackConfig{AfterFailedPolls: 3})
	p.Deliver(3_000_000, 1)
	// Warm the local estimator: ~1 Mbps measured throughput.
	p.OnSegmentComplete(has.SegmentRecord{ThroughputBps: 1_000_000})
	p.OnSegmentComplete(has.SegmentRecord{ThroughputBps: 1_000_000})

	p.PollFailed()
	p.PollFailed()
	if p.Mode() != ModeCoordinated {
		t.Fatal("fell back before K failures")
	}
	p.PollFailed()
	if p.Mode() != ModeFallback {
		t.Fatal("did not fall back after K consecutive failed polls")
	}
	if p.Transitions() != 1 {
		t.Fatalf("transitions = %d", p.Transitions())
	}

	// Degraded: local throughput ABR, not the dead 3 Mbps assignment.
	ladder := has.SimLadder()
	q := p.NextQuality(pluginState(ladder))
	if got := ladder.Rate(q); got > 1_000_000 {
		t.Fatalf("fallback chose %v bps against ~1 Mbps measured", got)
	}
	if q == 0 && ladder.Rate(1) <= 850_000 {
		t.Fatalf("fallback pinned to floor despite usable estimate")
	}

	// Recovery: one fresh assignment rejoins coordination.
	p.Deliver(2_000_000, 2)
	if p.Mode() != ModeCoordinated || p.Transitions() != 2 {
		t.Fatalf("recovery: mode %v transitions %d", p.Mode(), p.Transitions())
	}
	if got := ladder.Rate(p.NextQuality(pluginState(ladder))); got > 2_000_000 {
		t.Fatalf("post-recovery quality %v exceeds assignment", got)
	}
}

func TestPluginFallsBackOnStaleAssignment(t *testing.T) {
	p := NewFlarePluginWithFallback(FallbackConfig{MaxAssignmentAgeBAIs: 4})
	p.Deliver(1_000_000, 1)
	// Polls succeed but the assignment never advances (e.g. this flow's
	// GBR installs keep failing at the PCEF).
	for i := 0; i < 3; i++ {
		p.Deliver(1_000_000, 1)
	}
	if p.Mode() != ModeCoordinated {
		t.Fatal("fell back before M stale deliveries")
	}
	p.Deliver(1_000_000, 1)
	if p.Mode() != ModeFallback {
		t.Fatal("did not fall back after M stale deliveries")
	}
	// An interleaved failed poll must not reset the staleness clock —
	// only a *fresh* sequence does.
	p2 := NewFlarePluginWithFallback(FallbackConfig{MaxAssignmentAgeBAIs: 2, AfterFailedPolls: 99})
	p2.Deliver(1_000_000, 1)
	p2.Deliver(1_000_000, 1)
	p2.Deliver(1_000_000, 1)
	if p2.Mode() != ModeFallback {
		t.Fatal("staleness not accumulated across deliveries")
	}
}

func TestPluginFallbackWithoutHistoryPlaysFloor(t *testing.T) {
	p := NewFlarePluginWithFallback(FallbackConfig{AfterFailedPolls: 1})
	p.PollFailed()
	if p.Mode() != ModeFallback {
		t.Fatal("not in fallback")
	}
	if q := p.NextQuality(pluginState(has.SimLadder())); q != 0 {
		t.Fatalf("no-history fallback chose level %d", q)
	}
}

func TestPluginFallbackRespectsClientCap(t *testing.T) {
	p := NewFlarePluginWithFallback(FallbackConfig{AfterFailedPolls: 1})
	p.OnSegmentComplete(has.SegmentRecord{ThroughputBps: 5_000_000})
	p.SetMaxBps(400_000)
	p.PollFailed()
	ladder := has.SimLadder()
	if got := ladder.Rate(p.NextQuality(pluginState(ladder))); got > 400_000 {
		t.Fatalf("fallback ignored client cap: %v", got)
	}
}

func TestPluginCountsFallbackIntervals(t *testing.T) {
	p := NewFlarePluginWithFallback(FallbackConfig{AfterFailedPolls: 1})
	p.PollFailed() // degrade (interval counted from the next tick on)
	p.PollFailed()
	p.PollFailed()
	p.Deliver(1_000_000, 1) // recover
	if p.FallbackIntervals() != 3 {
		t.Fatalf("fallback intervals = %d", p.FallbackIntervals())
	}
	if p.Mode() != ModeCoordinated {
		t.Fatal("did not recover")
	}
}

func TestPluginModeString(t *testing.T) {
	if ModeCoordinated.String() != "coordinated" || ModeFallback.String() != "fallback" {
		t.Fatal("mode strings")
	}
}
