package graceful_test

import (
	"context"
	"net/http"
	"syscall"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/graceful"
)

// TestNotifyContextCancelsOnSignal pins the non-HTTP drain path: the
// first SIGTERM cancels the returned context (flaresuite's cue to stop
// admitting scenarios) instead of killing the process.
func TestNotifyContextCancelsOnSignal(t *testing.T) {
	ctx := graceful.NotifyContext(context.Background())

	// Give NotifyContext's handler time to install; before that a
	// SIGTERM would kill the test binary outright.
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after SIGTERM")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want context.Canceled", ctx.Err())
	}
}

// TestServeStopsOnSignal starts a server, delivers SIGTERM to the test
// process, and asserts Serve drains and returns nil promptly.
func TestServeStopsOnSignal(t *testing.T) {
	srv := &http.Server{
		Addr:    "127.0.0.1:0",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
	}
	var logged bool
	done := make(chan error, 1)
	go func() {
		done <- graceful.Serve(srv, time.Second, func(string, ...any) { logged = true })
	}()

	// Give Serve time to install its signal handler; before that a
	// SIGTERM would kill the test binary outright.
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after graceful drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after SIGTERM")
	}
	if !logged {
		t.Fatal("drain message was not logged")
	}
}

// TestServeReportsListenError pins that a bind failure surfaces as an
// error instead of hanging until a signal.
func TestServeReportsListenError(t *testing.T) {
	srv := &http.Server{Addr: "256.256.256.256:0"}
	done := make(chan error, 1)
	go func() { done <- graceful.Serve(srv, time.Second, nil) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve returned nil for an unbindable address")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve hung on listen error")
	}
}
