// Package graceful runs an http.Server until SIGINT/SIGTERM and then
// drains in-flight requests under a deadline — the shared shutdown path
// for the repository's long-running binaries (oneapiserver,
// mediaserver). Extracted so both servers stop the same way: first
// signal starts an orderly drain, second signal kills the process
// (default Go signal behavior is restored as soon as the drain begins).
package graceful

import (
	"context"
	"errors"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// DefaultGrace bounds the drain when callers pass grace <= 0.
const DefaultGrace = 5 * time.Second

// NotifyContext returns a context cancelled on the first SIGINT or
// SIGTERM — the drain signal for non-HTTP binaries (flaresuite's matrix
// runner stops admitting new scenarios and flushes completed-scenario
// artifacts). Signal handling is restored to the Go default as soon as
// the context is done, so a second signal kills the process, matching
// Serve's two-signal contract.
func NotifyContext(parent context.Context) context.Context {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx
}

// Serve runs srv until it fails or the process receives SIGINT or
// SIGTERM, then shuts it down gracefully, allowing in-flight requests
// up to grace to complete. logf (optional) receives one message when
// the drain begins. http.ErrServerClosed is folded into a nil return;
// any other listen or shutdown error is returned.
func Serve(srv *http.Server, grace time.Duration, logf func(format string, args ...any)) error {
	return ServeDrain(srv, grace, logf, nil)
}

// ServeDrain is Serve with an application-level drain hook: after the
// first signal, before the HTTP listener shuts down, drain (optional)
// is invoked with the grace budget. Servers use it to refuse new work
// and wait for in-flight application operations — e.g. the OneAPI
// server stops accepting BAI rounds and waits per shard for running
// rounds to finish, so none is dropped mid-install. The hook shares
// the grace budget with the HTTP drain, so it must return within it.
func ServeDrain(srv *http.Server, grace time.Duration, logf func(format string, args ...any), drain func(grace time.Duration)) error {
	if grace <= 0 {
		grace = DefaultGrace
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		stop() // second signal falls through to the default handler
		if logf != nil {
			logf("shutting down: draining in-flight requests (up to %v)", grace)
		}
		if drain != nil {
			drain(grace)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		// The listener goroutine exits with http.ErrServerClosed.
		<-errCh
		return nil
	}
}
