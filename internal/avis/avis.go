// Package avis implements the network-side baseline the paper compares
// against: AVIS (Chen et al., MOBICOM'13), in the simplified form the
// paper's Section IV-B describes — "we run a simple rate adaptation
// algorithm on a UE that requests the highest possible rate based on the
// estimated throughput, and set the GBR/MBR using the scheduler in the BS
// instead of resource slicing techniques".
//
// Two properties of AVIS matter for the reproduction because the paper
// blames them for its losses:
//
//  1. Static partitioning: a fixed fraction of the cell is reserved for
//     video; idle video resources are not lent to data traffic (the
//     SlicedScheduler in internal/lte realises this on the radio side).
//  2. Indirect enforcement: the network only sets GBR/MBR; the client's
//     own throughput-based adaptation picks the actual segment bitrate,
//     so the requested rate can lag or oscillate around the assignment.
package avis

import (
	"fmt"
	"sort"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
)

// Config parameterises the AVIS allocator. Table IV: alpha=0.01, W=150.
type Config struct {
	// Alpha is the EWMA step for the per-flow radio-cost estimate.
	Alpha float64
	// WindowMs is the allocation epoch length in milliseconds.
	WindowMs int
	// VideoFraction is the static share of the cell reserved for video;
	// 0 lets the allocator derive it from the flow counts at Partition.
	VideoFraction float64
	// MBRHeadroom scales the enforced MBR relative to the target
	// encoding. AVIS pins MBR to the assigned rate (headroom 1.0): the
	// client's measured throughput then sits at or below the target
	// encoding rate, so its own adaptation tends to request one level
	// below the network's assignment — the client/network mismatch the
	// paper documents for AVIS.
	MBRHeadroom float64
}

// DefaultConfig returns the paper's Table IV AVIS parameters.
func DefaultConfig() Config {
	return Config{Alpha: 0.01, WindowMs: 150, MBRHeadroom: 1.0}
}

// Assignment is one epoch's enforcement decision for a video flow.
type Assignment struct {
	FlowID int     `json:"flow_id"`
	GBRBps float64 `json:"gbr_bps"`
	MBRBps float64 `json:"mbr_bps"`
	// TargetLevel is the encoding the allocator sized the flow for.
	TargetLevel int `json:"target_level"`
}

type avisFlow struct {
	id         int
	ladder     has.Ladder
	bytesPerRB float64 // EWMA channel-efficiency estimate
}

// Allocator is the AVIS cell-level resource manager.
type Allocator struct {
	cfg   Config
	flows map[int]*avisFlow
}

// NewAllocator builds an AVIS allocator.
func NewAllocator(cfg Config) *Allocator {
	def := DefaultConfig()
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = def.Alpha
	}
	if cfg.WindowMs <= 0 {
		cfg.WindowMs = def.WindowMs
	}
	if cfg.MBRHeadroom < 1 {
		cfg.MBRHeadroom = def.MBRHeadroom
	}
	return &Allocator{cfg: cfg, flows: make(map[int]*avisFlow)}
}

// Config returns the allocator configuration.
func (a *Allocator) Config() Config { return a.cfg }

// Register admits a video flow. AVIS learns the ladder by inspecting the
// (unencrypted) video traffic in-network; here it is handed over
// directly.
func (a *Allocator) Register(flowID int, ladder has.Ladder) error {
	if err := ladder.Validate(); err != nil {
		return fmt.Errorf("avis: register flow %d: %w", flowID, err)
	}
	if _, ok := a.flows[flowID]; ok {
		return fmt.Errorf("avis: flow %d already registered", flowID)
	}
	a.flows[flowID] = &avisFlow{
		id:         flowID,
		ladder:     ladder.Clone(),
		bytesPerRB: core.DefaultBytesPerRB,
	}
	return nil
}

// Unregister removes a departed flow.
func (a *Allocator) Unregister(flowID int) { delete(a.flows, flowID) }

// NumFlows returns the number of managed video flows.
func (a *Allocator) NumFlows() int { return len(a.flows) }

// Partition returns the static video share of the cell. A configured
// VideoFraction wins; otherwise the share is the video flows' head-count
// fraction, the natural static split for the scenario.
func (a *Allocator) Partition(numDataFlows int) float64 {
	if a.cfg.VideoFraction > 0 {
		f := a.cfg.VideoFraction
		if f > 1 {
			f = 1
		}
		return f
	}
	n := len(a.flows)
	if n == 0 {
		return 0
	}
	return float64(n) / float64(n+numDataFlows)
}

// RunEpoch computes one epoch's GBR/MBR assignments: each video flow
// gets an equal RB share of the video slice; the sustainable bitrate of
// that share (via the flow's channel-efficiency estimate) is snapped
// down to the flow's ladder.
func (a *Allocator) RunEpoch(stats map[int]core.FlowStats, numDataFlows int) []Assignment {
	if len(a.flows) == 0 {
		return nil
	}
	ids := make([]int, 0, len(a.flows))
	for id := range a.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Update channel-efficiency estimates.
	for _, id := range ids {
		f := a.flows[id]
		s, ok := stats[id]
		var sample float64
		switch {
		case ok && s.Bytes > 0 && s.RBs > 0:
			sample = float64(s.Bytes) / float64(s.RBs)
		case ok && s.BytesPerRBHint > 0:
			sample = s.BytesPerRBHint
		default:
			continue
		}
		f.bytesPerRB += a.cfg.Alpha * (sample - f.bytesPerRB)
	}

	videoRBsPerSec := a.Partition(numDataFlows) * lte.NumRB * lte.TTIsPerSecond
	perFlowRBs := videoRBsPerSec / float64(len(ids))

	out := make([]Assignment, 0, len(ids))
	for _, id := range ids {
		f := a.flows[id]
		sustainableBps := perFlowRBs * f.bytesPerRB * 8
		level := f.ladder.HighestAtMost(sustainableBps)
		rate := f.ladder.Rate(level)
		out = append(out, Assignment{
			FlowID:      id,
			GBRBps:      rate,
			MBRBps:      rate * a.cfg.MBRHeadroom,
			TargetLevel: level,
		})
	}
	return out
}
