package avis

import (
	"math"
	"testing"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
)

func allocatorWithFlows(t *testing.T, cfg Config, n int) *Allocator {
	t.Helper()
	a := NewAllocator(cfg)
	for id := 0; id < n; id++ {
		if err := a.Register(id, has.SimLadder()); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestRegisterValidation(t *testing.T) {
	a := NewAllocator(DefaultConfig())
	if err := a.Register(1, has.Ladder{}); err == nil {
		t.Error("empty ladder accepted")
	}
	if err := a.Register(1, has.SimLadder()); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(1, has.SimLadder()); err == nil {
		t.Error("duplicate accepted")
	}
	a.Unregister(1)
	if a.NumFlows() != 0 {
		t.Fatal("unregister failed")
	}
}

func TestConfigDefaults(t *testing.T) {
	a := NewAllocator(Config{Alpha: -1, WindowMs: 0, MBRHeadroom: 0.5})
	got := a.Config()
	def := DefaultConfig()
	if got.Alpha != def.Alpha || got.WindowMs != def.WindowMs || got.MBRHeadroom != def.MBRHeadroom {
		t.Fatalf("defaults not applied: %+v", got)
	}
}

func TestPartition(t *testing.T) {
	a := allocatorWithFlows(t, DefaultConfig(), 3)
	if got := a.Partition(1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Partition(1) = %v, want 0.75", got)
	}
	if got := a.Partition(0); got != 1 {
		t.Errorf("Partition(0) = %v, want 1", got)
	}
	// Configured fraction wins and is clamped.
	cfg := DefaultConfig()
	cfg.VideoFraction = 2.5
	b := allocatorWithFlows(t, cfg, 2)
	if got := b.Partition(5); got != 1 {
		t.Errorf("clamped fraction = %v", got)
	}
	empty := NewAllocator(DefaultConfig())
	if got := empty.Partition(3); got != 0 {
		t.Errorf("empty Partition = %v", got)
	}
}

func TestRunEpochSnapsToLadder(t *testing.T) {
	a := allocatorWithFlows(t, DefaultConfig(), 2)
	// Rich stats: 32 bytes/RB. With 2 flows and 2 data flows the video
	// slice is half the cell: 12500 RB/s each -> 3.2 Mbps sustainable
	// -> snapped down to the 3 Mbps ladder top.
	stats := map[int]core.FlowStats{
		0: {Bytes: 3_200_000, RBs: 100_000},
		1: {Bytes: 3_200_000, RBs: 100_000},
	}
	var out []Assignment
	for i := 0; i < 2000; i++ { // let the slow EWMA converge
		out = a.RunEpoch(stats, 2)
	}
	if len(out) != 2 {
		t.Fatalf("%d assignments", len(out))
	}
	for _, as := range out {
		if as.TargetLevel != 5 || as.GBRBps != 3_000_000 {
			t.Fatalf("assignment %+v, want ladder top", as)
		}
		if as.MBRBps < as.GBRBps {
			t.Fatalf("MBR %v below GBR %v", as.MBRBps, as.GBRBps)
		}
	}
}

func TestRunEpochPoorChannelGetsLowRate(t *testing.T) {
	a := allocatorWithFlows(t, DefaultConfig(), 4)
	stats := map[int]core.FlowStats{}
	for id := 0; id < 4; id++ {
		stats[id] = core.FlowStats{Bytes: 20_000, RBs: 40_000} // 0.5 B/RB
	}
	var out []Assignment
	for i := 0; i < 3000; i++ {
		out = a.RunEpoch(stats, 4)
	}
	for _, as := range out {
		// 6250 RB/s * 0.5 B/RB * 8 = 25 kbps -> lowest rung.
		if as.TargetLevel != 0 {
			t.Fatalf("poor channel got level %d", as.TargetLevel)
		}
	}
}

func TestRunEpochEwmaIsSlow(t *testing.T) {
	a := allocatorWithFlows(t, DefaultConfig(), 1)
	good := map[int]core.FlowStats{0: {Bytes: 3_000_000, RBs: 100_000}}
	for i := 0; i < 2000; i++ {
		a.RunEpoch(good, 0)
	}
	before := a.RunEpoch(good, 0)[0].TargetLevel
	// One epoch of terrible stats must not crater the assignment:
	// alpha=0.01 smooths hard (that is AVIS's lag).
	bad := map[int]core.FlowStats{0: {Bytes: 1_000, RBs: 100_000}}
	after := a.RunEpoch(bad, 0)[0].TargetLevel
	if after < before-1 {
		t.Fatalf("EWMA reacted too fast: %d -> %d in one epoch", before, after)
	}
}

func TestRunEpochUsesHintWhenIdle(t *testing.T) {
	a := allocatorWithFlows(t, DefaultConfig(), 1)
	stats := map[int]core.FlowStats{0: {BytesPerRBHint: 40}}
	var out []Assignment
	for i := 0; i < 2000; i++ {
		out = a.RunEpoch(stats, 0)
	}
	if out[0].TargetLevel != 5 {
		t.Fatalf("hint ignored: level %d", out[0].TargetLevel)
	}
}

func TestRunEpochEmpty(t *testing.T) {
	a := NewAllocator(DefaultConfig())
	if out := a.RunEpoch(nil, 3); out != nil {
		t.Fatalf("assignments for empty allocator: %v", out)
	}
}

func TestRunEpochMoreDataFlowsShrinksVideo(t *testing.T) {
	mkstats := func() map[int]core.FlowStats {
		return map[int]core.FlowStats{0: {Bytes: 1_000_000, RBs: 100_000}}
	}
	few := allocatorWithFlows(t, DefaultConfig(), 1)
	many := allocatorWithFlows(t, DefaultConfig(), 1)
	var fewOut, manyOut []Assignment
	for i := 0; i < 2000; i++ {
		fewOut = few.RunEpoch(mkstats(), 1)
		manyOut = many.RunEpoch(mkstats(), 7)
	}
	if manyOut[0].GBRBps > fewOut[0].GBRBps {
		t.Fatalf("more data flows raised the video rate: %v > %v",
			manyOut[0].GBRBps, fewOut[0].GBRBps)
	}
}
