package oneapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
)

// Client is the FLARE plugin's HTTP side: it opens the flow's session,
// polls assignments, and closes the session on teardown. One Client per
// video flow.
type Client struct {
	baseURL string
	http    *http.Client
	cellID  int
	flowID  int
}

// NewClient creates a plugin client for one flow. baseURL is the OneAPI
// server root (e.g. "http://127.0.0.1:8480"); httpc nil uses the default
// client.
func NewClient(baseURL string, cellID, flowID int, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{baseURL: baseURL, http: httpc, cellID: cellID, flowID: flowID}
}

// Open registers the session with the flow's ladder and preferences.
func (c *Client) Open(ladder has.Ladder, prefs core.Preferences) error {
	body, err := json.Marshal(SessionRequest{
		FlowID:      c.flowID,
		LadderBps:   ladder,
		Preferences: prefs,
	})
	if err != nil {
		return fmt.Errorf("oneapi: marshal session request: %w", err)
	}
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/sessions", c.baseURL, c.cellID)
	resp, err := c.http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("oneapi: open session: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("oneapi: open session: %s", readErr(resp.Body, resp.StatusCode))
	}
	return nil
}

// Poll fetches the flow's current assignment. ok is false (without
// error) when no BAI has assigned this flow yet.
func (c *Client) Poll() (AssignmentResponse, bool, error) {
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/assignments/%d", c.baseURL, c.cellID, c.flowID)
	resp, err := c.http.Get(url)
	if err != nil {
		return AssignmentResponse{}, false, fmt.Errorf("oneapi: poll: %w", err)
	}
	defer drainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		var a AssignmentResponse
		if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
			return AssignmentResponse{}, false, fmt.Errorf("oneapi: decode assignment: %w", err)
		}
		return a, true, nil
	case http.StatusNotFound:
		return AssignmentResponse{}, false, nil
	default:
		return AssignmentResponse{}, false, fmt.Errorf("oneapi: poll: %s", readErr(resp.Body, resp.StatusCode))
	}
}

// UpdatePreferences replaces the session's client preferences — e.g. a
// bitrate cap while on a metered plan, or the skimming signal.
func (c *Client) UpdatePreferences(prefs core.Preferences) error {
	body, err := json.Marshal(prefs)
	if err != nil {
		return fmt.Errorf("oneapi: marshal preferences: %w", err)
	}
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/sessions/%d/preferences", c.baseURL, c.cellID, c.flowID)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("oneapi: update preferences: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("oneapi: update preferences: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("oneapi: update preferences: %s", readErr(resp.Body, resp.StatusCode))
	}
	return nil
}

// Close tears down the session.
func (c *Client) Close() error {
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/sessions/%d", c.baseURL, c.cellID, c.flowID)
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return fmt.Errorf("oneapi: close session: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("oneapi: close session: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("oneapi: close session: %s", readErr(resp.Body, resp.StatusCode))
	}
	return nil
}

// ReportStats is the eNodeB Communication Module's client side: POST the
// report, receive the GBR assignments to enforce.
func ReportStats(httpc *http.Client, baseURL string, cellID int, report StatsReport) ([]core.Assignment, error) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	body, err := json.Marshal(report)
	if err != nil {
		return nil, fmt.Errorf("oneapi: marshal stats report: %w", err)
	}
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/stats", baseURL, cellID)
	resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("oneapi: report stats: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("oneapi: report stats: %s", readErr(resp.Body, resp.StatusCode))
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("oneapi: decode stats response: %w", err)
	}
	return sr.Assignments, nil
}

func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc)
	_ = rc.Close()
}

func readErr(r io.Reader, status int) string {
	var e ErrorResponse
	if err := json.NewDecoder(r).Decode(&e); err == nil && e.Error != "" {
		return fmt.Sprintf("HTTP %d: %s", status, e.Error)
	}
	return fmt.Sprintf("HTTP %d", status)
}
