package oneapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/sim"
)

// ClientConfig hardens the plugin client against a lossy control plane.
// The zero value is normalised to the defaults below.
type ClientConfig struct {
	// RequestTimeout bounds each HTTP attempt (default 5 s). The
	// pre-fault-tolerance client used http.DefaultClient with no
	// deadline, so a hung server stalled the plugin forever.
	RequestTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried with
	// backoff (default 3; total attempts = MaxRetries + 1). Retries
	// fire on transport errors and 5xx/408/429 responses only —
	// application-level rejections (404/409) are returned immediately.
	MaxRetries int
	// BackoffBase is the first retry's delay (default 100 ms); each
	// subsequent retry doubles it up to BackoffMax (default 2 s), with
	// ±50% deterministic jitter drawn from JitterSeed.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// JitterSeed seeds the client's private jitter stream, keeping
	// retry timing reproducible in tests and simulations.
	JitterSeed uint64
	// StaleAfterBAIs is the assignment-age threshold M: an assignment
	// whose install sequence lags the cell sequence by at least M BAIs
	// is reported stale by Poll (default 4).
	StaleAfterBAIs int64
}

// DefaultClientConfig returns the production retry/timeout parameters.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		RequestTimeout: 5 * time.Second,
		MaxRetries:     3,
		BackoffBase:    100 * time.Millisecond,
		BackoffMax:     2 * time.Second,
		StaleAfterBAIs: 4,
	}
}

func (c ClientConfig) normalized() ClientConfig {
	d := DefaultClientConfig()
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = d.BackoffMax
	}
	if c.StaleAfterBAIs <= 0 {
		c.StaleAfterBAIs = d.StaleAfterBAIs
	}
	return c
}

// Client is the FLARE plugin's HTTP side: it opens the flow's session,
// polls assignments, and closes the session on teardown. One Client per
// video flow.
//
// The client is hardened for a real control plane: every request runs
// under a context deadline, transient failures are retried with bounded
// exponential backoff and jitter, and a poll that discovers the server
// no longer knows the session (a restart wiped its state) automatically
// re-opens with the remembered ladder and preferences before retrying.
// It is safe for concurrent use.
type Client struct {
	baseURL string
	http    *http.Client
	cellID  int
	flowID  int
	cfg     ClientConfig
	rec     *obs.Recorder // nil = telemetry disabled

	mu       sync.Mutex
	rng      *sim.RNG
	ladder   has.Ladder
	prefs    core.Preferences
	opened   bool
	lastSeq  int64
	reopens  int
	retries  int
	failures int
}

// NewClient creates a plugin client for one flow with the default
// hardening configuration. baseURL is the OneAPI server root (e.g.
// "http://127.0.0.1:8480"); httpc nil uses the default client.
func NewClient(baseURL string, cellID, flowID int, httpc *http.Client) *Client {
	return NewClientWithConfig(baseURL, cellID, flowID, httpc, ClientConfig{})
}

// NewClientWithConfig creates a plugin client with explicit retry,
// timeout, and staleness parameters.
func NewClientWithConfig(baseURL string, cellID, flowID int, httpc *http.Client, cfg ClientConfig) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	cfg = cfg.normalized()
	return &Client{
		baseURL: baseURL, http: httpc, cellID: cellID, flowID: flowID,
		cfg: cfg, rng: sim.NewRNG(cfg.JitterSeed),
	}
}

// SetRecorder attaches a telemetry recorder to the client (nil
// disables). Retries, automatic re-opens, and exhausted-retry failures
// are then emitted as events.
func (c *Client) SetRecorder(rec *obs.Recorder) { c.rec = rec }

// Stats are the client's recovery counters: how often requests were
// retried, how often the session was automatically re-opened, and how
// many requests ultimately failed after exhausting retries.
type ClientStats struct {
	Retries  int
	Reopens  int
	Failures int
}

// Stats returns a snapshot of the recovery counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{Retries: c.retries, Reopens: c.reopens, Failures: c.failures}
}

// Open registers the session with the flow's ladder and preferences,
// remembering both for automatic re-open after a server restart.
func (c *Client) Open(ladder has.Ladder, prefs core.Preferences) error {
	return c.OpenContext(context.Background(), ladder, prefs)
}

// OpenContext is Open bounded by ctx.
func (c *Client) OpenContext(ctx context.Context, ladder has.Ladder, prefs core.Preferences) error {
	body, err := json.Marshal(SessionRequest{
		FlowID:      c.flowID,
		LadderBps:   ladder,
		Preferences: prefs,
	})
	if err != nil {
		return fmt.Errorf("oneapi: marshal session request: %w", err)
	}
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/sessions", c.baseURL, c.cellID)
	resp, err := c.do(ctx, http.MethodPost, url, body)
	if err != nil {
		return fmt.Errorf("oneapi: open session: %w", err)
	}
	defer drainClose(resp.Body)
	// 201 = newly created, 200 = idempotent re-open after a retry or
	// client restart: both leave the session live.
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("oneapi: open session: %w", respErr(resp))
	}
	c.mu.Lock()
	c.ladder = ladder.Clone()
	c.prefs = prefs
	c.opened = true
	c.mu.Unlock()
	return nil
}

// Reopen re-registers the session with the ladder and preferences
// remembered from the last successful Open — the recovery step after a
// OneAPI server restart loses its session table.
func (c *Client) Reopen(ctx context.Context) error {
	c.mu.Lock()
	if !c.opened {
		c.mu.Unlock()
		return fmt.Errorf("oneapi: reopen before first open")
	}
	ladder, prefs := c.ladder, c.prefs
	c.reopens++
	c.mu.Unlock()
	c.rec.Emit(obs.Reopen(int32(c.cellID), int32(c.flowID)))
	return c.OpenContext(ctx, ladder, prefs)
}

// Poll fetches the flow's current assignment. ok is false (without
// error) when no BAI has assigned this flow yet.
func (c *Client) Poll() (AssignmentResponse, bool, error) {
	return c.PollContext(context.Background())
}

// PollContext is Poll bounded by ctx. If the server answers "unknown
// session" — its state was lost in a restart — and the session was
// opened through this client, the client re-opens automatically and
// retries the poll once.
func (c *Client) PollContext(ctx context.Context) (AssignmentResponse, bool, error) {
	a, ok, err := c.pollOnce(ctx)
	if err != nil && errorIsRecoverable(err) && c.canReopen() {
		if rerr := c.Reopen(ctx); rerr == nil {
			a, ok, err = c.pollOnce(ctx)
		}
	}
	if err == nil && ok {
		c.mu.Lock()
		c.lastSeq = a.BAISeq
		c.mu.Unlock()
	}
	return a, ok, err
}

func errorIsRecoverable(err error) bool {
	// Unknown session or unknown cell both mean the server-side state
	// is gone; re-opening recreates it.
	return errors.Is(err, ErrUnknownSession) || errors.Is(err, ErrUnknownCell)
}

func (c *Client) canReopen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opened
}

func (c *Client) pollOnce(ctx context.Context) (AssignmentResponse, bool, error) {
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/assignments/%d", c.baseURL, c.cellID, c.flowID)
	resp, err := c.do(ctx, http.MethodGet, url, nil)
	if err != nil {
		return AssignmentResponse{}, false, fmt.Errorf("oneapi: poll: %w", err)
	}
	defer drainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		var a AssignmentResponse
		if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
			return AssignmentResponse{}, false, fmt.Errorf("oneapi: decode assignment: %w", err)
		}
		return a, true, nil
	case http.StatusNotFound:
		err := respErr(resp)
		if errors.Is(err, ErrNoAssignment) {
			// Session live, first BAI pending: not an error.
			return AssignmentResponse{}, false, nil
		}
		return AssignmentResponse{}, false, fmt.Errorf("oneapi: poll: %w", err)
	default:
		return AssignmentResponse{}, false, fmt.Errorf("oneapi: poll: %w", respErr(resp))
	}
}

// Stale reports whether an assignment previously returned by Poll has
// aged past the configured StaleAfterBAIs threshold — the signal for
// the plugin's fallback policy when the control plane still answers but
// this flow's assignment stopped advancing.
func (c *Client) Stale(a AssignmentResponse) bool {
	return a.AgeBAIs() >= c.cfg.StaleAfterBAIs
}

// UpdatePreferences replaces the session's client preferences — e.g. a
// bitrate cap while on a metered plan, or the skimming signal.
func (c *Client) UpdatePreferences(prefs core.Preferences) error {
	return c.UpdatePreferencesContext(context.Background(), prefs)
}

// UpdatePreferencesContext is UpdatePreferences bounded by ctx.
func (c *Client) UpdatePreferencesContext(ctx context.Context, prefs core.Preferences) error {
	body, err := json.Marshal(prefs)
	if err != nil {
		return fmt.Errorf("oneapi: marshal preferences: %w", err)
	}
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/sessions/%d/preferences", c.baseURL, c.cellID, c.flowID)
	resp, err := c.do(ctx, http.MethodPut, url, body)
	if err != nil {
		return fmt.Errorf("oneapi: update preferences: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("oneapi: update preferences: %w", respErr(resp))
	}
	c.mu.Lock()
	c.prefs = prefs
	c.mu.Unlock()
	return nil
}

// Close tears down the session.
func (c *Client) Close() error {
	return c.CloseContext(context.Background())
}

// CloseContext is Close bounded by ctx.
func (c *Client) CloseContext(ctx context.Context) error {
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/sessions/%d", c.baseURL, c.cellID, c.flowID)
	resp, err := c.do(ctx, http.MethodDelete, url, nil)
	if err != nil {
		return fmt.Errorf("oneapi: close session: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("oneapi: close session: %w", respErr(resp))
	}
	c.mu.Lock()
	c.opened = false
	c.mu.Unlock()
	return nil
}

// do issues one HTTP request with per-attempt timeouts and bounded
// exponential backoff with jitter on transient failures (transport
// errors, 5xx, 408, 429). The final response (or error) is returned.
func (c *Client) do(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			delay := c.backoffLocked(attempt)
			c.mu.Unlock()
			c.rec.Emit(obs.Retry(int32(c.cellID), int32(c.flowID), int64(attempt)))
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				c.countFailure()
				return nil, fmt.Errorf("backoff interrupted: %w", ctx.Err())
			}
		}
		attemptCtx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
		resp, err := c.attempt(attemptCtx, method, url, body)
		if err != nil {
			cancel()
			lastErr = err
			if ctx.Err() != nil {
				break // caller's context is gone; stop retrying
			}
			continue
		}
		if retryableStatus(resp.StatusCode) && !terminalReject(resp) {
			drainClose(resp.Body)
			cancel()
			lastErr = fmt.Errorf("transient HTTP %d from %s", resp.StatusCode, url)
			continue
		}
		// Hand the body to the caller; cancelling the attempt context
		// now would sever it, so tie cleanup to body close instead.
		resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
		return resp, nil
	}
	c.countFailure()
	return nil, fmt.Errorf("after %d attempt(s): %w", c.cfg.MaxRetries+1, lastErr)
}

func (c *Client) attempt(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, reader)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.http.Do(req)
}

func (c *Client) countFailure() {
	c.mu.Lock()
	c.failures++
	c.mu.Unlock()
	c.rec.Emit(obs.ClientFail(int32(c.cellID), int32(c.flowID)))
}

// backoffLocked computes attempt n's delay: base·2^(n-1) capped at
// BackoffMax, scaled by a deterministic jitter in [0.5, 1.5).
func (c *Client) backoffLocked(attempt int) time.Duration {
	d := c.cfg.BackoffBase << uint(attempt-1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	jitter := 0.5 + c.rng.Float64()
	return time.Duration(float64(d) * jitter)
}

func retryableStatus(status int) bool {
	return status >= 500 || status == http.StatusRequestTimeout || status == http.StatusTooManyRequests
}

// terminalReject peeks a 503's error envelope: an admission rejection
// is a deliberate application answer — retrying inside do() would just
// hammer a saturated cell through its own backpressure signal — so it
// must escape the retry loop with the typed envelope intact. The body
// is restored for the caller's decoder either way.
func terminalReject(resp *http.Response) bool {
	if resp.StatusCode != http.StatusServiceUnavailable {
		return false
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	_ = resp.Body.Close()
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	if err != nil {
		return false
	}
	var env ErrorResponse
	return json.Unmarshal(raw, &env) == nil && env.Code == CodeAdmissionReject
}

// cancelOnClose defers an attempt context's cancellation until the
// caller has consumed the response body.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// ReportStats is the eNodeB Communication Module's client side: POST the
// report, receive the GBR assignments to enforce. Kept for callers that
// do not need cancellation; it delegates to ReportStatsContext with a
// background context and the default request timeout.
func ReportStats(httpc *http.Client, baseURL string, cellID int, report StatsReport) ([]core.Assignment, error) {
	resp, err := ReportStatsContext(context.Background(), httpc, baseURL, cellID, report)
	if err != nil {
		return nil, err
	}
	return resp.Assignments, nil
}

// ReportStatsContext POSTs one statistics report under ctx (plus the
// default per-request timeout) and returns the full response, including
// the BAI sequence and any partial-enforcement failures. A stale
// sequenced report surfaces as ErrStaleReport.
func ReportStatsContext(ctx context.Context, httpc *http.Client, baseURL string, cellID int, report StatsReport) (StatsResponse, error) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	body, err := json.Marshal(report)
	if err != nil {
		return StatsResponse{}, fmt.Errorf("oneapi: marshal stats report: %w", err)
	}
	reqCtx, cancel := context.WithTimeout(ctx, DefaultClientConfig().RequestTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/oneapi/v4/cells/%d/stats", baseURL, cellID)
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return StatsResponse{}, fmt.Errorf("oneapi: build stats request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := httpc.Do(req)
	if err != nil {
		return StatsResponse{}, fmt.Errorf("oneapi: report stats: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return StatsResponse{}, fmt.Errorf("oneapi: report stats: %w", respErr(resp))
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return StatsResponse{}, fmt.Errorf("oneapi: decode stats response: %w", err)
	}
	return sr, nil
}

// ReportStatsBatch POSTs many cells' reports in one exchange — the
// aggregation-site client side of /oneapi/v4/stats/batch. The server
// fans the BAI rounds across its worker pool; results come back in
// request order with per-cell errors inside the envelope (one stale
// cell cannot fail its neighbours).
func ReportStatsBatch(ctx context.Context, httpc *http.Client, baseURL string, reports []CellReport) (BatchStatsResponse, error) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	body, err := json.Marshal(BatchStatsRequest{Reports: reports})
	if err != nil {
		return BatchStatsResponse{}, fmt.Errorf("oneapi: marshal batch stats request: %w", err)
	}
	reqCtx, cancel := context.WithTimeout(ctx, DefaultClientConfig().RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, baseURL+"/oneapi/v4/stats/batch", bytes.NewReader(body))
	if err != nil {
		return BatchStatsResponse{}, fmt.Errorf("oneapi: build batch stats request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := httpc.Do(req)
	if err != nil {
		return BatchStatsResponse{}, fmt.Errorf("oneapi: report stats batch: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return BatchStatsResponse{}, fmt.Errorf("oneapi: report stats batch: %w", respErr(resp))
	}
	var br BatchStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return BatchStatsResponse{}, fmt.Errorf("oneapi: decode batch stats response: %w", err)
	}
	return br, nil
}

func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc)
	_ = rc.Close()
}

// httpError carries a decoded ErrorResponse while unwrapping to the
// matching sentinel, so HTTP-side callers can use errors.Is just like
// in-process ones.
type httpError struct {
	status     int
	envelope   ErrorResponse
	retryAfter time.Duration
}

func (e *httpError) Error() string {
	if e.envelope.Error != "" {
		return fmt.Sprintf("HTTP %d: %s", e.status, e.envelope.Error)
	}
	return fmt.Sprintf("HTTP %d", e.status)
}

func (e *httpError) Unwrap() error { return errorForCode(e.envelope.Code) }

// respErr decodes a non-success response into an httpError.
func respErr(resp *http.Response) error {
	var env ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&env)
	e := &httpError{status: resp.StatusCode, envelope: env}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			e.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// RetryAfterHint extracts the server's Retry-After delay from an error
// returned by this package's HTTP paths (typically an admission
// rejection), or 0 when the error carries no hint.
func RetryAfterHint(err error) time.Duration {
	var he *httpError
	if errors.As(err, &he) {
		return he.retryAfter
	}
	return 0
}
