package oneapi

import (
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/has"
)

// TestServerSetWallClockPropagates: the server-level injection must
// reach controllers created before AND after the call, so SolveTimes
// reflects the fake clock for every cell.
func TestServerSetWallClockPropagates(t *testing.T) {
	s := serverForTest()

	// Cell 0's controller exists before the injection...
	if err := s.OpenSession(0, SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}

	fake := time.Unix(1_700_000_000, 0)
	s.SetWallClock(func() time.Time {
		fake = fake.Add(2 * time.Millisecond)
		return fake
	})

	// ...cell 1's only after.
	if err := s.OpenSession(1, SessionRequest{FlowID: 2, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}

	pcef := PCEFFunc(func(int, float64) error { return nil })
	for _, cell := range []int{0, 1} {
		if _, err := s.RunBAI(cell, StatsReport{}, pcef); err != nil {
			t.Fatalf("cell %d: %v", cell, err)
		}
	}
	for _, cell := range []int{0, 1} {
		times := s.SolveTimes(cell)
		if len(times) != 1 {
			t.Fatalf("cell %d: %d solve times, want 1", cell, len(times))
		}
		// SolveTimes reports seconds; each RunBAI reads the fake twice,
		// so exactly one 2ms step.
		if times[0] != 0.002 {
			t.Fatalf("cell %d: solve time %vs through fake clock, want 0.002s", cell, times[0])
		}
	}
}
