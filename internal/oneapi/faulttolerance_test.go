package oneapi

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
)

// fastClientConfig keeps retry tests quick: millisecond backoff.
func fastClientConfig() ClientConfig {
	return ClientConfig{
		RequestTimeout: 2 * time.Second,
		MaxRetries:     3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
	}
}

// TestRunBAIPartialPCEFFailure is the regression test for the
// partial-GBR-install bug: a PCEF that fails mid-BAI must not leave the
// cell half-updated. Failed flows keep their previous assignment and
// install sequence; healthy flows commit.
func TestRunBAIPartialPCEFFailure(t *testing.T) {
	s := serverForTest()
	for _, flow := range []int{1, 2} {
		if err := s.OpenSession(0, SessionRequest{FlowID: flow, LadderBps: has.SimLadder()}); err != nil {
			t.Fatal(err)
		}
	}
	report := StatsReport{Flows: map[int]core.FlowStats{
		1: {Bytes: 1_000_000, RBs: 25_000},
		2: {Bytes: 1_000_000, RBs: 25_000},
	}}

	// BAI 1: both installs succeed.
	healthy := PCEFFunc(func(int, float64) error { return nil })
	if _, err := s.RunBAIReport(0, report, healthy); err != nil {
		t.Fatal(err)
	}
	before, err := s.AssignmentErr(0, 2)
	if err != nil {
		t.Fatal(err)
	}

	// BAIs 2 and 3: flow 2's GBR install fails at the PCEF.
	flaky := PCEFFunc(func(flowID int, gbr float64) error {
		if flowID == 2 {
			return fmt.Errorf("pcef: bearer modify rejected")
		}
		return nil
	})
	for i := 0; i < 2; i++ {
		resp, err := s.RunBAIReport(0, report, flaky)
		var ee *EnforceError
		if !errors.As(err, &ee) {
			t.Fatalf("BAI with failing PCEF returned %v, want *EnforceError", err)
		}
		if len(ee.Failed) != 1 || ee.Failed[0].FlowID != 2 {
			t.Fatalf("failed set %+v", ee.Failed)
		}
		if len(resp.Failed) != 1 || resp.Failed[0].FlowID != 2 {
			t.Fatalf("response failed set %+v", resp.Failed)
		}
		// The healthy flow committed in the same BAI.
		committed := false
		for _, a := range resp.Assignments {
			if a.FlowID == 2 {
				t.Fatalf("failed flow 2 listed as committed: %+v", a)
			}
			if a.FlowID == 1 {
				committed = true
			}
		}
		if !committed {
			t.Fatal("healthy flow 1 did not commit")
		}
	}

	// Flow 1 advanced to BAI 3; flow 2 kept its BAI-1 assignment, and
	// its age (CellSeq − BAISeq) exposes the enforcement failures to a
	// polling plugin.
	a1, err := s.AssignmentErr(0, 1)
	if err != nil || a1.BAISeq != 3 {
		t.Fatalf("flow 1 assignment %+v err %v", a1, err)
	}
	a2, err := s.AssignmentErr(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.BAISeq != 1 || a2.RateBps != before.RateBps {
		t.Fatalf("failed flow lost its previous assignment: %+v (was %+v)", a2, before)
	}
	if a2.CellSeq != 3 || a2.AgeBAIs() != 2 {
		t.Fatalf("staleness not exposed: %+v age %d", a2, a2.AgeBAIs())
	}
}

// TestRunBAIFailedDowngradePublished is the regression test for the
// overload error path: when a PCEF install fails for an assignment
// *lower* than the flow's current one, the lower assignment must still
// be published to polls. Keeping the stale high assignment visible is
// what starves a saturated cell — plugins would keep requesting a rate
// the optimiser just revoked. The install sequence keeps lagging either
// way, so the staleness signal survives. A failed *upgrade* keeps the
// previous (lower) assignment, as before.
func TestRunBAIFailedDowngradePublished(t *testing.T) {
	s := serverForTest()
	if err := s.OpenSession(0, SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	solo := StatsReport{Flows: map[int]core.FlowStats{
		1: {Bytes: 1_000_000, RBs: 50_000},
	}}
	// Crowded report: two newcomers join, and the margined RB budget
	// cannot hold flow 1 at its solo level alongside them — the
	// optimiser must assign it a lower one.
	crowded := StatsReport{Flows: map[int]core.FlowStats{
		1: {Bytes: 1_000_000, RBs: 25_000},
		2: {Bytes: 1_000_000, RBs: 25_000},
		3: {Bytes: 1_000_000, RBs: 25_000},
	}}

	// BAI 1: flow 1 alone in the cell, healthy PCEF — a high assignment.
	healthy := PCEFFunc(func(int, float64) error { return nil })
	if _, err := s.RunBAIReport(0, solo, healthy); err != nil {
		t.Fatal(err)
	}
	high, err := s.AssignmentErr(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, flow := range []int{2, 3} {
		if err := s.OpenSession(0, SessionRequest{FlowID: flow, LadderBps: has.SimLadder()}); err != nil {
			t.Fatal(err)
		}
	}

	// The solver is deterministic, so a mirror server fed the same
	// reports through a healthy PCEF reveals the assignment flow 1
	// *would* have gotten — that is what the broken server must publish.
	mirror := serverForTest()
	if err := mirror.OpenSession(0, SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.RunBAIReport(0, solo, healthy); err != nil {
		t.Fatal(err)
	}
	for _, flow := range []int{2, 3} {
		if err := mirror.OpenSession(0, SessionRequest{FlowID: flow, LadderBps: has.SimLadder()}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mirror.RunBAIReport(0, crowded, healthy); err != nil {
		t.Fatal(err)
	}
	want, err := mirror.AssignmentErr(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want.RateBps >= high.RateBps {
		t.Fatalf("test premise broken: crowded rate %.0f not below solo rate %.0f", want.RateBps, high.RateBps)
	}

	// BAI 2: the cell fills up, flow 1's (now lower) install fails.
	broken := PCEFFunc(func(flowID int, gbr float64) error {
		if flowID == 1 {
			return fmt.Errorf("pcef: bearer modify rejected")
		}
		return nil
	})
	resp, err := s.RunBAIReport(0, crowded, broken)
	var ee *EnforceError
	if !errors.As(err, &ee) {
		t.Fatalf("BAI with failing PCEF returned %v, want *EnforceError", err)
	}
	for _, f := range resp.Failed {
		if f.FlowID != 1 {
			t.Fatalf("unexpected enforcement failure %+v", f)
		}
	}
	for _, a := range resp.Assignments {
		if a.FlowID == 1 {
			t.Fatalf("failed flow 1 listed as committed: %+v", a)
		}
	}

	a1, err := s.AssignmentErr(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a1.RateBps != want.RateBps {
		t.Fatalf("failed downgrade not published: polls see %.0f bps, want %.0f (stale high was %.0f)",
			a1.RateBps, want.RateBps, high.RateBps)
	}
	if a1.BAISeq != 1 || a1.CellSeq != 2 || a1.AgeBAIs() != 1 {
		t.Fatalf("staleness signal lost on published downgrade: %+v age %d", a1, a1.AgeBAIs())
	}

	// BAI 3: flow 2 leaves, flow 1's assignment rises again — but the
	// install still fails, so the failed *upgrade* must NOT be published.
	if _, err := s.RunBAIReport(0, solo, broken); err == nil {
		t.Fatal("failing PCEF reported success")
	}
	a1, err = s.AssignmentErr(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a1.RateBps != want.RateBps {
		t.Fatalf("failed upgrade leaked to polls: %.0f bps, want still %.0f", a1.RateBps, want.RateBps)
	}
	if a1.BAISeq != 1 || a1.AgeBAIs() != 2 {
		t.Fatalf("install sequence advanced without an install: %+v", a1)
	}
}

// TestRunBAIRejectsStaleReports: sequenced statistics reports must be
// applied at most once and in order; unsequenced reports (Seq 0) keep
// the legacy behaviour.
func TestRunBAIRejectsStaleReports(t *testing.T) {
	s := serverForTest()
	if err := s.OpenSession(0, SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	report := StatsReport{Flows: map[int]core.FlowStats{1: {Bytes: 500_000, RBs: 20_000}}}

	report.Seq = 1
	if _, err := s.RunBAIReport(0, report, nil); err != nil {
		t.Fatal(err)
	}
	// A duplicate (retransmitted) report is rejected without running a BAI.
	if _, err := s.RunBAIReport(0, report, nil); !errors.Is(err, ErrStaleReport) {
		t.Fatalf("duplicate seq accepted: %v", err)
	}
	// An older report arriving late is rejected too.
	report.Seq = 0
	report2 := report
	report2.Seq = 5
	if _, err := s.RunBAIReport(0, report2, nil); err != nil {
		t.Fatal(err)
	}
	report2.Seq = 3
	if _, err := s.RunBAIReport(0, report2, nil); !errors.Is(err, ErrStaleReport) {
		t.Fatalf("out-of-order seq accepted: %v", err)
	}
	// Unsequenced reports are always accepted.
	if _, err := s.RunBAIReport(0, report, nil); err != nil {
		t.Fatal(err)
	}
	if times := s.SolveTimes(0); len(times) != 3 {
		t.Fatalf("%d BAIs ran, want 3 (stale reports must not solve)", len(times))
	}
}

// TestHTTPStaleReportConflict checks the wire mapping: a stale sequenced
// report answers 409 with the stale_report code, and the eNB-side helper
// surfaces it as ErrStaleReport.
func TestHTTPStaleReportConflict(t *testing.T) {
	s := serverForTest()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	if err := s.OpenSession(0, SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	report := StatsReport{
		Seq:   9,
		Flows: map[int]core.FlowStats{1: {Bytes: 500_000, RBs: 20_000}},
	}
	resp, err := ReportStatsContext(context.Background(), ts.Client(), ts.URL, 0, report)
	if err != nil {
		t.Fatal(err)
	}
	if resp.BAISeq != 1 || len(resp.Assignments) != 1 {
		t.Fatalf("stats response %+v", resp)
	}
	if _, err := ReportStatsContext(context.Background(), ts.Client(), ts.URL, 0, report); !errors.Is(err, ErrStaleReport) {
		t.Fatalf("retransmitted report over HTTP: %v", err)
	}
}

// TestHTTPPartialEnforcementOnWire: the stats response carries the
// per-flow enforcement failures so the eNB sees exactly which GBRs did
// not install.
func TestHTTPPartialEnforcementOnWire(t *testing.T) {
	s := serverForTest()
	s.SetPCEF(PCEFFunc(func(flowID int, gbr float64) error {
		if flowID == 2 {
			return fmt.Errorf("pcef: down")
		}
		return nil
	}))
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	for _, flow := range []int{1, 2} {
		if err := s.OpenSession(0, SessionRequest{FlowID: flow, LadderBps: has.SimLadder()}); err != nil {
			t.Fatal(err)
		}
	}
	report := StatsReport{Flows: map[int]core.FlowStats{
		1: {Bytes: 1_000_000, RBs: 25_000},
		2: {Bytes: 1_000_000, RBs: 25_000},
	}}
	resp, err := ReportStatsContext(context.Background(), ts.Client(), ts.URL, 0, report)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Failed) != 1 || resp.Failed[0].FlowID != 2 || resp.Failed[0].Reason == "" {
		t.Fatalf("wire failures %+v", resp.Failed)
	}
	if len(resp.Assignments) != 1 || resp.Assignments[0].FlowID != 1 {
		t.Fatalf("wire assignments %+v", resp.Assignments)
	}
}

// TestHTTPErrorPaths exercises the binding's failure surface: malformed
// JSON, non-integer path segments, and unknown cells/flows, each with
// its machine-readable error code.
func TestHTTPErrorPaths(t *testing.T) {
	s := serverForTest()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	client := NewClientWithConfig(ts.URL, 0, 1, ts.Client(), fastClientConfig())

	post := func(path, body string) (int, ErrorResponse) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		e := respErr(resp)
		drainClose(resp.Body)
		var he *httpError
		errors.As(e, &he)
		return resp.StatusCode, he.envelope
	}

	// Malformed JSON.
	if code, env := post("/oneapi/v4/cells/0/sessions", "{not json"); code != 400 || env.Code != CodeBadRequest {
		t.Fatalf("malformed session JSON: %d %+v", code, env)
	}
	if code, env := post("/oneapi/v4/cells/0/stats", "][ "); code != 400 || env.Code != CodeBadRequest {
		t.Fatalf("malformed stats JSON: %d %+v", code, env)
	}
	// Non-integer path segments.
	if code, _ := post("/oneapi/v4/cells/zero/sessions", "{}"); code != 400 {
		t.Fatalf("non-integer cell: %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/oneapi/v4/cells/0/assignments/seven")
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != 400 {
		t.Fatalf("non-integer flow: %d", resp.StatusCode)
	}
	// Unknown cell (no session ever opened there).
	_, _, err = NewClientWithConfig(ts.URL, 42, 1, ts.Client(), fastClientConfig()).Poll()
	if !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("unknown cell poll: %v", err)
	}
	// Known cell, unknown flow.
	if err := client.Open(has.SimLadder(), core.Preferences{}); err != nil {
		t.Fatal(err)
	}
	_, _, err = NewClientWithConfig(ts.URL, 0, 99, ts.Client(), fastClientConfig()).Poll()
	if !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown flow poll: %v", err)
	}
}

// TestClientRetriesTransientFailures: 5xx answers are retried with
// backoff until the server recovers; the recovery counters record it.
func TestClientRetriesTransientFailures(t *testing.T) {
	s := serverForTest()
	inner := Handler(s)
	var failures atomic.Int32
	failures.Store(2)
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Load() > 0 {
			failures.Add(-1)
			http.Error(w, "upstream hiccup", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := NewClientWithConfig(ts.URL, 0, 1, ts.Client(), fastClientConfig())
	if err := c.Open(has.SimLadder(), core.Preferences{}); err != nil {
		t.Fatalf("open did not survive transient 503s: %v", err)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats %+v, want 2 retries 0 failures", st)
	}
}

// TestClientExhaustsRetriesAgainstDeadServer: a hard-down server yields
// an error after MaxRetries+1 attempts — bounded, not infinite.
func TestClientExhaustsRetriesAgainstDeadServer(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "dead", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := NewClientWithConfig(ts.URL, 0, 1, ts.Client(), fastClientConfig())
	if err := c.Open(has.SimLadder(), core.Preferences{}); err == nil {
		t.Fatal("open succeeded against a dead server")
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("%d attempts, want MaxRetries+1 = 4", got)
	}
	if st := c.Stats(); st.Failures != 1 || st.Retries != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestClientBlackoutAndRecovery drives the plugin client through an
// injected control-plane blackout using the faults RoundTripper: inside
// the window every request is dropped at the transport; after it ends
// the same client works again untouched.
func TestClientBlackoutAndRecovery(t *testing.T) {
	s := serverForTest()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	var now atomic.Int64 // simulated time in seconds
	inj := faults.New(faults.Config{
		Seed:      1,
		Blackouts: []faults.Window{{From: 10 * time.Second, To: 20 * time.Second}},
	})
	httpc := &http.Client{Transport: faults.NewRoundTripper(
		ts.Client().Transport, inj,
		func() time.Duration { return time.Duration(now.Load()) * time.Second },
	)}
	c := NewClientWithConfig(ts.URL, 0, 1, httpc, fastClientConfig())

	// Before the blackout: healthy open + BAI + poll.
	if err := c.Open(has.SimLadder(), core.Preferences{}); err != nil {
		t.Fatal(err)
	}
	report := StatsReport{Flows: map[int]core.FlowStats{1: {Bytes: 500_000, RBs: 20_000}}}
	if _, err := s.RunBAI(0, report, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Poll(); err != nil || !ok {
		t.Fatalf("pre-blackout poll: ok=%v err=%v", ok, err)
	}

	// Inside the blackout: every attempt (including retries) drops.
	now.Store(15)
	if _, _, err := c.Poll(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("blackout poll error = %v, want ErrInjected", err)
	}

	// After the blackout: recovery with no manual intervention.
	now.Store(25)
	a, ok, err := c.Poll()
	if err != nil || !ok {
		t.Fatalf("post-blackout poll: ok=%v err=%v", ok, err)
	}
	if a.RateBps <= 0 {
		t.Fatalf("post-blackout assignment %+v", a)
	}
	if n := inj.Counts().BlackoutDrops; n == 0 {
		t.Fatal("injector recorded no blackout drops")
	}
}

// TestClientReopensAfterServerRestart: a restarted OneAPI server has an
// empty session table; the client's next poll detects unknown-session,
// re-registers with the remembered ladder and preferences, and carries
// on.
func TestClientReopensAfterServerRestart(t *testing.T) {
	s1 := serverForTest()
	var current atomic.Pointer[http.Handler]
	h1 := Handler(s1)
	current.Store(&h1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*current.Load()).ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClientWithConfig(ts.URL, 0, 1, ts.Client(), fastClientConfig())
	prefs := core.Preferences{MaxBps: 700_000}
	if err := c.Open(has.SimLadder(), prefs); err != nil {
		t.Fatal(err)
	}
	report := StatsReport{Flows: map[int]core.FlowStats{1: {Bytes: 500_000, RBs: 20_000}}}
	if _, err := s1.RunBAI(0, report, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Poll(); err != nil || !ok {
		t.Fatalf("pre-restart poll: ok=%v err=%v", ok, err)
	}

	// "Restart" the server: fresh process, empty state.
	s2 := serverForTest()
	h2 := Handler(s2)
	current.Store(&h2)

	// The next poll transparently re-opens; with no BAI yet on the new
	// server it reports "no assignment" rather than an error.
	if _, ok, err := c.Poll(); err != nil || ok {
		t.Fatalf("post-restart poll: ok=%v err=%v", ok, err)
	}
	if st := c.Stats(); st.Reopens != 1 {
		t.Fatalf("stats %+v, want 1 reopen", st)
	}
	// The re-opened session kept its preferences: the 700 kbps cap binds.
	var last core.Assignment
	for i := 0; i < 20; i++ {
		as, err := s2.RunBAI(0, report, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != 1 {
			t.Fatalf("new server sees %d sessions after re-open", len(as))
		}
		last = as[0]
	}
	if last.RateBps > 700_000 {
		t.Fatalf("re-open lost preferences: assigned %v", last.RateBps)
	}
	a, ok, err := c.Poll()
	if err != nil || !ok || a.RateBps <= 0 {
		t.Fatalf("post-recovery poll: %+v ok=%v err=%v", a, ok, err)
	}
}

// TestClientStaleDetection: the client flags assignments whose install
// sequence lags the cell's BAI sequence by the configured threshold.
func TestClientStaleDetection(t *testing.T) {
	c := NewClientWithConfig("http://unused", 0, 1, nil, ClientConfig{StaleAfterBAIs: 4})
	fresh := AssignmentResponse{BAISeq: 10, CellSeq: 12}
	if c.Stale(fresh) {
		t.Fatal("age-2 assignment flagged stale at threshold 4")
	}
	old := AssignmentResponse{BAISeq: 10, CellSeq: 14}
	if !c.Stale(old) {
		t.Fatal("age-4 assignment not flagged stale")
	}
}

// TestMiddlewareBlackoutOverHTTP wraps the whole OneAPI handler in the
// server-side fault middleware: a blackout makes the API answer 503 to
// everyone, which the retrying client treats as transient.
func TestMiddlewareBlackoutOverHTTP(t *testing.T) {
	s := serverForTest()
	var now atomic.Int64
	inj := faults.New(faults.Config{
		Seed:      2,
		Blackouts: []faults.Window{{From: 0, To: 5 * time.Second}},
	})
	ts := httptest.NewServer(faults.MiddlewareClock(inj,
		func() time.Duration { return time.Duration(now.Load()) * time.Second },
		Handler(s)))
	defer ts.Close()

	c := NewClientWithConfig(ts.URL, 0, 1, ts.Client(), fastClientConfig())
	if err := c.Open(has.SimLadder(), core.Preferences{}); err == nil {
		t.Fatal("open succeeded through a server-side blackout")
	}
	now.Store(10)
	if err := c.Open(has.SimLadder(), core.Preferences{}); err != nil {
		t.Fatalf("open after blackout lifted: %v", err)
	}
}
