package oneapi

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors the server and client surface for control-plane
// failure handling. Wrap-aware callers use errors.Is/As.
var (
	// ErrStaleReport rejects a statistics report whose sequence number
	// is not newer than the last accepted one for the cell — a delayed
	// or duplicated report must not rewind the BAI state.
	ErrStaleReport = errors.New("oneapi: stale or out-of-order stats report")

	// ErrUnknownSession marks a flow the server has no session for —
	// after a server restart this is the client's signal to re-open.
	ErrUnknownSession = errors.New("oneapi: unknown session")

	// ErrUnknownCell marks a cell the server has never seen.
	ErrUnknownCell = errors.New("oneapi: unknown cell")

	// ErrNoAssignment marks a live session that no BAI has assigned
	// yet; distinct from ErrUnknownSession so clients do not re-open
	// needlessly.
	ErrNoAssignment = errors.New("oneapi: no assignment yet")

	// ErrSessionConflict rejects an open for a flow ID that is already
	// registered with a *different* ladder; re-opening with identical
	// parameters is idempotent and succeeds.
	ErrSessionConflict = errors.New("oneapi: session exists with different parameters")

	// ErrAdmissionRejected refuses a new session the admission predicate
	// cannot fit: the cell's RB budget cannot hold every admitted flow's
	// floor level plus the candidate's. The HTTP binding maps it to 503
	// with a Retry-After hint; the session may have been parked on the
	// cell's wait queue for later promotion, so clients should retry
	// the open after the hint (not treat the flow as denied forever).
	ErrAdmissionRejected = errors.New("oneapi: session rejected by admission control")

	// ErrDraining refuses new sessions and new BAI rounds while the
	// server is shutting down gracefully (BeginDrain); in-flight rounds
	// still complete. The HTTP binding maps it to 503 with a Retry-After
	// hint so load balancers and clients fail over cleanly.
	ErrDraining = errors.New("oneapi: server is draining")
)

// Machine-readable error codes carried in the HTTP binding's
// ErrorResponse.Code, so clients can react without string matching.
const (
	CodeStaleReport     = "stale_report"
	CodeUnknownSession  = "unknown_session"
	CodeUnknownCell     = "unknown_cell"
	CodeNoAssignment    = "no_assignment"
	CodeConflict        = "conflict"
	CodeAdmissionReject = "admission_reject"
	CodeDraining        = "draining"
	CodeBadRequest      = "bad_request"
	CodeInternal        = "internal"
)

// codeFor maps a server error to its wire code.
func codeFor(err error) string {
	switch {
	case errors.Is(err, ErrStaleReport):
		return CodeStaleReport
	case errors.Is(err, ErrUnknownSession):
		return CodeUnknownSession
	case errors.Is(err, ErrUnknownCell):
		return CodeUnknownCell
	case errors.Is(err, ErrNoAssignment):
		return CodeNoAssignment
	case errors.Is(err, ErrSessionConflict):
		return CodeConflict
	case errors.Is(err, ErrAdmissionRejected):
		return CodeAdmissionReject
	case errors.Is(err, ErrDraining):
		return CodeDraining
	default:
		return CodeInternal
	}
}

// errorForCode maps a wire code back to the sentinel, so HTTP clients
// get the same errors.Is behaviour as in-process callers.
func errorForCode(code string) error {
	switch code {
	case CodeStaleReport:
		return ErrStaleReport
	case CodeUnknownSession:
		return ErrUnknownSession
	case CodeUnknownCell:
		return ErrUnknownCell
	case CodeNoAssignment:
		return ErrNoAssignment
	case CodeConflict:
		return ErrSessionConflict
	case CodeAdmissionReject:
		return ErrAdmissionRejected
	case CodeDraining:
		return ErrDraining
	default:
		return nil
	}
}

// EnforcementFailure records one flow whose GBR install failed during a
// BAI; the flow keeps its previous assignment and GBR.
type EnforcementFailure struct {
	FlowID int    `json:"flow_id"`
	Reason string `json:"reason"`
}

// EnforceError reports a partially enforced BAI: the optimisation ran
// and every *other* flow's assignment was installed, but the listed
// flows' PCEF installs failed and their previous assignments were kept.
// It is returned alongside the committed assignments so callers can
// treat partial enforcement as degraded, not fatal.
type EnforceError struct {
	// BAISeq is the sequence number of the partially enforced BAI.
	BAISeq int64
	// Failed lists the flows left on their previous assignment.
	Failed []EnforcementFailure
}

// Error implements error.
func (e *EnforceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oneapi: BAI %d partially enforced (%d flow(s) kept previous GBR):",
		e.BAISeq, len(e.Failed))
	for _, f := range e.Failed {
		fmt.Fprintf(&b, " flow %d: %s;", f.FlowID, f.Reason)
	}
	return strings.TrimSuffix(b.String(), ";")
}
