package oneapi

import (
	"errors"
	"runtime"
	"testing"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
)

// soakCycle is one churn arrival/departure: open (admission-gated), one
// BAI with a stats report, close. Fresh flow IDs every cycle, like the
// churn generator's.
func soakCycle(t *testing.T, s *Server, flowID int) {
	t.Helper()
	err := s.OpenSession(0, SessionRequest{FlowID: flowID, LadderBps: has.SimLadder()})
	if err != nil && !errors.Is(err, ErrAdmissionRejected) {
		t.Fatal(err)
	}
	report := StatsReport{Flows: map[int]core.FlowStats{
		flowID: {Bytes: 500_000, RBs: 20_000},
	}}
	if _, err := s.RunBAIReport(0, report, nil); err != nil {
		t.Fatal(err)
	}
	s.CloseSession(0, flowID)
}

// TestChurnSoakBoundedMemory is the ROADMAP item-5 churn-soak bound: 10k
// session arrive/depart cycles through an admission-gated server must
// not grow the session table, the wait queue, or the flight-recorder
// ring — and must not retain per-flow state on the heap. Telemetry that
// grows per BAI by design (the solver wall-time log, ~16 B/BAI) fits
// comfortably inside the slack; a leak of even a bare session struct
// per cycle blows through it.
func TestChurnSoakBoundedMemory(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Delta = 1
	cfg.AdmissionControl = true
	cfg.DowngradeLadder = true
	s := NewServer(cfg, nil)
	rec := obs.New(obs.Options{RingSize: 512})
	s.SetRecorder(rec)

	const warmup, cycles = 1_000, 10_000
	for i := 0; i < warmup; i++ {
		soakCycle(t, s, i)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)

	for i := 0; i < cycles; i++ {
		soakCycle(t, s, warmup+i)
	}

	// Structural bounds: nothing per-flow survives its departure.
	c := s.lookup(0)
	c.mu.Lock()
	nFlows := c.controller.NumFlows()
	nCurrent, nInstall, nQueue := len(c.current), len(c.installSeq), len(c.queue)
	c.mu.Unlock()
	if nFlows != 0 || nCurrent != 0 || nInstall != 0 {
		t.Errorf("session state retained after churn: %d flows, %d assignments, %d install seqs",
			nFlows, nCurrent, nInstall)
	}
	if nQueue != 0 {
		t.Errorf("wait queue retained %d departed flows", nQueue)
	}
	if n := len(rec.Snapshot()); n > 512 {
		t.Errorf("flight-recorder ring grew past its capacity: %d events", n)
	}

	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	// 10k leaked sessions would retain >2 MB; the per-BAI solve-time
	// log retains ~160 KB over the window. 1 MB splits them cleanly.
	const maxGrowth = 1 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > maxGrowth {
		t.Errorf("heap grew %d bytes across %d churn cycles (bound %d): per-flow state is leaking",
			grew, cycles, int64(maxGrowth))
	}
}
