package oneapi

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
)

// healthyReport builds a statistics report in which every listed flow
// has ample radio headroom, so the optimiser places them high and PCEF
// installs run every round.
func healthyReport(flows ...int) StatsReport {
	m := make(map[int]core.FlowStats, len(flows))
	for _, f := range flows {
		m[f] = core.FlowStats{Bytes: 1_000_000, RBs: 50_000}
	}
	return StatsReport{Flows: m}
}

// TestShardedRaceHammer exercises the whole per-cell surface —
// OpenSession, RunBAIReport, Assignment polls, SetPreferences,
// CloseSession, and cross-shard Handover — concurrently across many
// cells. It asserts nothing beyond "no unexpected error": its real
// teeth are the race detector (make check runs the package under
// -race) and the deadlock timeout.
func TestShardedRaceHammer(t *testing.T) {
	const (
		cells    = 48 // spread across all DefaultShards stripes
		flows    = 4
		rounds   = 6
		handoffs = 64
	)
	s := serverForTest() // DefaultShards-way sharded
	errc := make(chan error, 256)
	var wg sync.WaitGroup

	// One goroutine per cell: the eNodeB loop (open, report, poll, close).
	for c := 0; c < cells; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := c * 1000
			ids := make([]int, flows)
			for i := range ids {
				ids[i] = base + i
				if err := s.OpenSession(c, SessionRequest{FlowID: ids[i], LadderBps: has.SimLadder()}); err != nil {
					errc <- fmt.Errorf("cell %d open %d: %w", c, ids[i], err)
					return
				}
			}
			for r := 0; r < rounds; r++ {
				if _, err := s.RunBAIReport(c, healthyReport(ids...), nil); err != nil {
					errc <- fmt.Errorf("cell %d round %d: %w", c, r, err)
					return
				}
				for _, f := range ids {
					if _, err := s.AssignmentErr(c, f); err != nil && !errors.Is(err, ErrUnknownSession) {
						// ErrUnknownSession is legal: a handover
						// goroutine may have moved the flow away.
						errc <- fmt.Errorf("cell %d poll %d: %w", c, f, err)
						return
					}
				}
				if err := s.SetPreferences(c, ids[0], core.Preferences{MaxBps: 2_000_000}); err != nil && !errors.Is(err, ErrUnknownSession) {
					errc <- fmt.Errorf("cell %d prefs: %w", c, err)
					return
				}
			}
			// Churn the last flow: close then re-open.
			s.CloseSession(c, ids[flows-1])
			if err := s.OpenSession(c, SessionRequest{FlowID: ids[flows-1], LadderBps: has.SimLadder()}); err != nil {
				errc <- fmt.Errorf("cell %d re-open: %w", c, err)
			}
		}(c)
	}

	// Handover goroutines shuttle dedicated flows between cell pairs on
	// different shards while the eNodeB loops run.
	for h := 0; h < handoffs; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			from, to := h%cells, (h+17)%cells
			if from == to {
				return
			}
			flow := 500_000 + h
			if err := s.OpenSession(from, SessionRequest{FlowID: flow, LadderBps: has.SimLadder()}); err != nil {
				errc <- fmt.Errorf("handover open %d: %w", flow, err)
				return
			}
			for i := 0; i < 4; i++ {
				if err := s.Handover(from, to, flow); err != nil {
					errc <- fmt.Errorf("handover %d->%d flow %d: %w", from, to, flow, err)
					return
				}
				from, to = to, from
			}
		}(h)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestHandoverContinuity pins the shard-to-shard transfer semantics:
// the flow keeps its session ID and current assignment across the
// move, and the assignment's age in BAIs — the staleness signal
// polling plugins act on — is preserved relative to the target cell's
// own BAI history.
func TestHandoverContinuity(t *testing.T) {
	s := serverForTest()
	const flow = 1

	// Source cell 0: first BAI installs the flow at the ladder top...
	if err := s.OpenSession(0, SessionRequest{FlowID: flow, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunBAI(0, healthyReport(flow), nil); err != nil {
		t.Fatal(err)
	}
	// ...then two rounds of PCEF failure age it: the re-offered rate is
	// not lower, so the previous assignment is kept and installSeq lags.
	failing := PCEFFunc(func(int, float64) error { return errors.New("pcef down") })
	for i := 0; i < 2; i++ {
		if _, err := s.RunBAI(0, healthyReport(flow), failing); err == nil {
			t.Fatal("failing PCEF round reported success")
		}
	}
	before, err := s.AssignmentErr(0, flow)
	if err != nil {
		t.Fatal(err)
	}
	if before.AgeBAIs() != 2 {
		t.Fatalf("pre-handover age = %d, want 2", before.AgeBAIs())
	}

	// Target cell 33 (a different shard than cell 0 under DefaultShards)
	// has its own BAI history, deeper than the assignment's age.
	if err := s.OpenSession(33, SessionRequest{FlowID: 9, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.RunBAI(33, healthyReport(9), nil); err != nil {
			t.Fatal(err)
		}
	}

	if err := s.Handover(0, 33, flow); err != nil {
		t.Fatal(err)
	}

	// Same session ID, same published assignment, same age — now
	// expressed against the target cell's sequence numbers.
	after, err := s.AssignmentErr(33, flow)
	if err != nil {
		t.Fatalf("post-handover poll: %v", err)
	}
	if after.FlowID != flow || after.RateBps != before.RateBps || after.Level != before.Level {
		t.Fatalf("assignment changed across handover: %+v -> %+v", before, after)
	}
	if after.CellSeq != 5 || after.AgeBAIs() != 2 {
		t.Fatalf("age not preserved: CellSeq=%d age=%d, want 5 and 2", after.CellSeq, after.AgeBAIs())
	}

	// The source cell no longer knows the session...
	if _, err := s.AssignmentErr(0, flow); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("source poll after handover: %v, want ErrUnknownSession", err)
	}
	if err := s.Handover(0, 33, flow); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("repeat handover: %v, want ErrUnknownSession", err)
	}
	// ...and the target's next BAI re-optimises the flow with a fresh
	// install (history restarts: the source cell's radio costs are
	// meaningless at the new eNodeB).
	if _, err := s.RunBAI(33, healthyReport(9, flow), nil); err != nil {
		t.Fatal(err)
	}
	fresh, err := s.AssignmentErr(33, flow)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.AgeBAIs() != 0 {
		t.Fatalf("post-BAI age = %d, want 0 (fresh install)", fresh.AgeBAIs())
	}
}

// TestHandoverToFreshCell: when the target cell is younger than the
// assignment's age, the age clamps to the target's full history — the
// new shard can only vouch for BAIs it ran.
func TestHandoverToFreshCell(t *testing.T) {
	s := serverForTest()
	if err := s.OpenSession(0, SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunBAI(0, healthyReport(1), nil); err != nil {
		t.Fatal(err)
	}
	failing := PCEFFunc(func(int, float64) error { return errors.New("pcef down") })
	for i := 0; i < 3; i++ {
		if _, err := s.RunBAI(0, healthyReport(1), failing); err == nil {
			t.Fatal("failing PCEF round reported success")
		}
	}
	// Age 3, target cell brand new (baiSeq 0): clamp to 0.
	if err := s.Handover(0, 7, 1); err != nil {
		t.Fatal(err)
	}
	a, err := s.AssignmentErr(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.BAISeq != 0 || a.CellSeq != 0 || a.AgeBAIs() != 0 {
		t.Fatalf("fresh-cell handover: %+v, want clamped zero age", a)
	}
}

// TestHandoverHTTP covers the wire binding of the transfer.
func TestHandoverHTTP(t *testing.T) {
	s := serverForTest()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	if err := s.OpenSession(0, SessionRequest{FlowID: 4, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	post := func(cell, flow, toCell int) *http.Response {
		t.Helper()
		url := fmt.Sprintf("%s/oneapi/v4/cells/%d/sessions/%d/handover", srv.URL, cell, flow)
		resp, err := http.Post(url, "application/json", strings.NewReader(fmt.Sprintf(`{"to_cell":%d}`, toCell)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(0, 4, 2); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("handover status %d, want 204", resp.StatusCode)
	}
	if _, err := s.AssignmentErr(2, 4); errors.Is(err, ErrUnknownSession) {
		t.Fatal("session did not move to cell 2")
	}
	// Unknown session (already moved away) is a 404, not a 400.
	if resp := post(0, 4, 2); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stale handover status %d, want 404", resp.StatusCode)
	}
	// Same-cell transfer is a request error.
	if resp := post(2, 4, 2); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("self handover status %d, want 400", resp.StatusCode)
	}
}

// TestBatchPCEFEquivalence runs the same session population and report
// stream through a per-flow PCEF and a batch PCEF with the same
// per-flow outcomes, asserting identical responses, identical
// published assignments, and the identical downgrade/upgrade fold —
// batching must be an amortisation, never a semantic change.
func TestBatchPCEFEquivalence(t *testing.T) {
	// fail marks which flows' installs fail each round.
	fail := func(flowID int) bool { return flowID == 2 }
	perFlow := PCEFFunc(func(flowID int, _ float64) error {
		if fail(flowID) {
			return errors.New("bearer busy")
		}
		return nil
	})
	var batchCalls int
	batch := PCEFBatchFunc(func(installs []GBRInstall) []error {
		batchCalls++
		errs := make([]error, len(installs))
		any := false
		for i, in := range installs {
			if fail(in.FlowID) {
				errs[i] = errors.New("bearer busy")
				any = true
			}
		}
		if !any {
			return nil
		}
		return errs
	})

	run := func(pcef PCEF) (responses []StatsResponse, views []AssignmentResponse) {
		s := serverForTest()
		for _, f := range []int{1, 2, 3} {
			if err := s.OpenSession(0, SessionRequest{FlowID: f, LadderBps: has.SimLadder()}); err != nil {
				t.Fatal(err)
			}
		}
		// Three rounds with shifting radio stats so assignments move
		// (the failing flow hits both the first-install and the
		// keep-previous folds).
		for r := 0; r < 3; r++ {
			rep := StatsReport{Flows: map[int]core.FlowStats{
				1: {Bytes: 1_000_000, RBs: 50_000},
				2: {Bytes: 400_000 + int64(r)*100_000, RBs: 30_000},
				3: {Bytes: 200_000, RBs: 20_000 + int64(r)*5_000},
			}}
			resp, err := s.RunBAIReport(0, rep, pcef)
			var ee *EnforceError
			if err != nil && !errors.As(err, &ee) {
				t.Fatal(err)
			}
			responses = append(responses, resp)
		}
		for _, f := range []int{1, 2, 3} {
			v, err := s.AssignmentErr(0, f)
			if err != nil && !errors.Is(err, ErrNoAssignment) {
				t.Fatal(err)
			}
			views = append(views, v)
		}
		return responses, views
	}

	wantResp, wantViews := run(perFlow)
	gotResp, gotViews := run(batch)
	if fmt.Sprintf("%+v", gotResp) != fmt.Sprintf("%+v", wantResp) {
		t.Errorf("batch responses diverged\n got: %+v\nwant: %+v", gotResp, wantResp)
	}
	if fmt.Sprintf("%+v", gotViews) != fmt.Sprintf("%+v", wantViews) {
		t.Errorf("batch poll views diverged\n got: %+v\nwant: %+v", gotViews, wantViews)
	}
	if batchCalls != 3 {
		t.Errorf("batch PCEF called %d times, want 3 (one grouped call per round)", batchCalls)
	}
}

// TestBatchPCEFBrokenContract: a batch implementation returning the
// wrong result count fails every install in the round — no flow
// silently advances on an unaccounted result.
func TestBatchPCEFBrokenContract(t *testing.T) {
	s := serverForTest()
	for _, f := range []int{1, 2} {
		if err := s.OpenSession(0, SessionRequest{FlowID: f, LadderBps: has.SimLadder()}); err != nil {
			t.Fatal(err)
		}
	}
	broken := PCEFBatchFunc(func(installs []GBRInstall) []error {
		return make([]error, len(installs)+1)
	})
	resp, err := s.RunBAIReport(0, healthyReport(1, 2), broken)
	var ee *EnforceError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *EnforceError", err)
	}
	if len(resp.Failed) != 2 || len(resp.Assignments) != 0 {
		t.Fatalf("broken batch committed flows: %+v", resp)
	}
	for _, f := range resp.Failed {
		if !strings.Contains(f.Reason, "batch pcef returned") {
			t.Errorf("failure reason %q does not name the contract breach", f.Reason)
		}
	}
}

// TestRunBAIRoundsMatchesSequential: the pooled batch entry point must
// produce, per cell, exactly what sequential RunBAIReport calls produce
// — slotted by input index regardless of pool scheduling.
func TestRunBAIRoundsMatchesSequential(t *testing.T) {
	const cells = 9
	build := func() *Server {
		s := serverForTest()
		for c := 0; c < cells; c++ {
			for f := 0; f < 3; f++ {
				if err := s.OpenSession(c, SessionRequest{FlowID: c*10 + f, LadderBps: has.SimLadder()}); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s
	}
	reports := make([]CellReport, cells)
	for c := 0; c < cells; c++ {
		reports[c] = CellReport{CellID: c, Report: healthyReport(c*10, c*10+1, c*10+2)}
	}

	seq := build()
	want := make([]StatsResponse, cells)
	for c, r := range reports {
		resp, err := seq.RunBAIReport(r.CellID, r.Report, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[c] = resp
	}

	pooled := build()
	defer pooled.Close()
	outcomes := pooled.RunBAIRounds(reports, nil)
	if len(outcomes) != cells {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), cells)
	}
	for i, o := range outcomes {
		if o.CellID != reports[i].CellID {
			t.Errorf("outcome %d is cell %d, want %d (index slotting broken)", i, o.CellID, reports[i].CellID)
		}
		if o.Err != nil {
			t.Errorf("cell %d: %v", o.CellID, o.Err)
			continue
		}
		if fmt.Sprintf("%+v", o.Resp) != fmt.Sprintf("%+v", want[i]) {
			t.Errorf("cell %d diverged from sequential\n got: %+v\nwant: %+v", o.CellID, o.Resp, want[i])
		}
	}
}
