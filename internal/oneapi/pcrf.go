package oneapi

import "sync"

// PCRF is the policy-and-charging-rules stand-in: the network function
// that "manages and monitors all flows in the network" and tells the
// OneAPI server how many non-video flows share each cell.
type PCRF struct {
	mu    sync.Mutex
	cells map[int]map[int]struct{} // cell -> data flow IDs
}

// NewPCRF creates an empty flow registry.
func NewPCRF() *PCRF {
	return &PCRF{cells: make(map[int]map[int]struct{})}
}

// RegisterDataFlow records a non-video flow in a cell.
func (p *PCRF) RegisterDataFlow(cellID, flowID int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.cells[cellID]
	if !ok {
		c = make(map[int]struct{})
		p.cells[cellID] = c
	}
	c[flowID] = struct{}{}
}

// UnregisterDataFlow removes a departed data flow.
func (p *PCRF) UnregisterDataFlow(cellID, flowID int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.cells[cellID], flowID)
}

// NumDataFlows returns the live data-flow count for a cell.
func (p *PCRF) NumDataFlows(cellID int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cells[cellID])
}
