package oneapi

import (
	"fmt"
	"sync"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
)

// PCEF is the enforcement interface: the policy-and-charging enforcement
// pathway through which the OneAPI server installs each video flow's GBR
// at the eNodeB (the Continuous GBR Updater in the testbed MAC).
type PCEF interface {
	// SetGBR installs a guaranteed bit rate for a bearer.
	SetGBR(flowID int, gbrBps float64) error
}

// PCEFFunc adapts a function to the PCEF interface.
type PCEFFunc func(flowID int, gbrBps float64) error

// SetGBR implements PCEF.
func (f PCEFFunc) SetGBR(flowID int, gbrBps float64) error { return f(flowID, gbrBps) }

type cellState struct {
	controller *core.Controller
	baiSeq     int64
	current    map[int]core.Assignment
	// installSeq records, per flow, the BAI sequence at which the
	// flow's current assignment was successfully installed; it lags
	// baiSeq for flows whose PCEF installs failed, which is how
	// polling plugins detect their own staleness.
	installSeq map[int]int64
	// lastReportSeq is the highest accepted StatsReport.Seq (0 before
	// the first sequenced report).
	lastReportSeq int64
	// queue holds sessions the admission predicate refused, in arrival
	// order. It is a plain slice FIFO — promotion pops the head, never
	// iterates a map — so promotion order is deterministic. Bounded by
	// Config.AdmissionQueue.
	queue []SessionRequest
}

// Server is the OneAPI server: one FLARE controller per managed cell
// ("a single OneAPI server can manage multiple BSs, though the bitrates
// are calculated independently for each network cell"). It is safe for
// concurrent use — the HTTP binding serves it from multiple goroutines.
type Server struct {
	cfg  core.Config
	pcrf *PCRF

	mu    sync.Mutex
	cells map[int]*cellState
	// pcef is the server-side enforcement hook, used by BAIs whose
	// caller passes no PCEF — notably the HTTP stats endpoint, where the
	// PCEF lives next to the server rather than the eNodeB. Nil means
	// enforcement is the response consumer's job (the wire contract).
	pcef PCEF
	// rec is the telemetry recorder (nil = disabled) shared by every
	// per-cell controller this server creates.
	rec *obs.Recorder
	// wallClock, when non-nil, replaces time.Now as each controller's
	// solver-latency clock (see core.Controller.SetWallClock). Tests
	// fake it; production leaves it nil.
	wallClock func() time.Time
}

// NewServer builds a OneAPI server that creates controllers with cfg.
func NewServer(cfg core.Config, pcrf *PCRF) *Server {
	if pcrf == nil {
		pcrf = NewPCRF()
	}
	return &Server{cfg: cfg, pcrf: pcrf, cells: make(map[int]*cellState)}
}

// PCRF exposes the server's flow registry.
func (s *Server) PCRF() *PCRF { return s.pcrf }

// SetRecorder attaches a telemetry recorder (nil disables). Controllers
// created afterwards inherit it; controllers that already exist are
// re-pointed too, so attach order does not matter.
func (s *Server) SetRecorder(rec *obs.Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = rec
	for id, c := range s.cells {
		c.controller.SetRecorder(rec, id)
	}
}

// SetWallClock injects the wall-clock source controllers use to time
// BAI solves (nil restores time.Now). Like SetRecorder, it re-points
// controllers that already exist, so attach order does not matter.
func (s *Server) SetWallClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wallClock = now
	for _, c := range s.cells {
		c.controller.SetWallClock(now)
	}
}

// Recorder returns the attached telemetry recorder (nil when disabled).
func (s *Server) Recorder() *obs.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// SetPCEF installs the server-side enforcement hook: BAIs triggered
// with a nil PCEF (e.g. over HTTP) install GBRs through it. Failures
// are collected per flow, never aborting the BAI (see RunBAIReport).
func (s *Server) SetPCEF(p PCEF) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pcef = p
}

func (s *Server) cell(cellID int) *cellState {
	c, ok := s.cells[cellID]
	if !ok {
		c = &cellState{
			controller: core.NewController(s.cfg),
			current:    make(map[int]core.Assignment),
			installSeq: make(map[int]int64),
		}
		c.controller.SetRecorder(s.rec, cellID)
		if s.wallClock != nil {
			c.controller.SetWallClock(s.wallClock)
		}
		s.cells[cellID] = c
	}
	return c
}

// OpenSession registers a video flow in a cell. Re-registering an
// already-open flow with the same ladder is idempotent and succeeds —
// a client retrying after a control-plane timeout, or re-opening after
// its own restart, must not be rejected. Re-registering with a
// different ladder returns ErrSessionConflict.
func (s *Server) OpenSession(cellID int, req SessionRequest) error {
	_, err := s.Open(cellID, req)
	return err
}

// Open is OpenSession with an extra created flag: true when the call
// registered a new session, false when it matched an existing one
// idempotently (the HTTP binding maps these to 201 vs 200).
func (s *Server) Open(cellID int, req SessionRequest) (created bool, err error) {
	ladder := has.Ladder(req.LadderBps)
	// Validate before the admission predicate, which prices the
	// candidate by its floor rung and so assumes a non-empty ladder.
	if err := ladder.Validate(); err != nil {
		return false, fmt.Errorf("oneapi: open session flow %d: %w", req.FlowID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cell(cellID)
	if snap, snapErr := c.controller.Snapshot(req.FlowID); snapErr == nil {
		// The flow is already registered: idempotent when the ladder
		// matches (preferences are simply refreshed), conflict when it
		// does not.
		if !sameLadder(snap.Ladder, ladder) {
			return false, fmt.Errorf("oneapi: open session flow %d: %w", req.FlowID, ErrSessionConflict)
		}
		if err := c.controller.SetPreferences(req.FlowID, req.Preferences); err != nil {
			return false, fmt.Errorf("oneapi: open session: %w", err)
		}
		return false, nil
	}
	if s.cfg.AdmissionControl && !c.controller.CanAdmit(ladder) {
		queued := s.enqueueLocked(c, req)
		s.rec.Emit(obs.Reject(int32(cellID), int32(req.FlowID), queued))
		return false, fmt.Errorf("oneapi: open session flow %d: %w", req.FlowID, ErrAdmissionRejected)
	}
	if err := c.controller.Register(req.FlowID, ladder, req.Preferences); err != nil {
		return false, fmt.Errorf("oneapi: open session: %w", err)
	}
	s.dequeueLocked(c, req.FlowID)
	s.rec.Emit(obs.SessionOpen(int32(cellID), int32(req.FlowID)))
	if s.cfg.AdmissionControl {
		s.rec.Emit(obs.Admit(int32(cellID), int32(req.FlowID), false))
	}
	return true, nil
}

// queueCap resolves Config.AdmissionQueue: 0 means the default depth,
// negative disables queueing.
func (s *Server) queueCap() int {
	switch {
	case s.cfg.AdmissionQueue > 0:
		return s.cfg.AdmissionQueue
	case s.cfg.AdmissionQueue < 0:
		return 0
	default:
		return 8
	}
}

// enqueueLocked parks a rejected session on the cell's wait queue,
// reporting whether it is (still) queued. A repeat open for a flow
// already waiting refreshes its request in place rather than
// double-queueing it.
func (s *Server) enqueueLocked(c *cellState, req SessionRequest) bool {
	for i := range c.queue {
		if c.queue[i].FlowID == req.FlowID {
			c.queue[i] = req
			return true
		}
	}
	if len(c.queue) >= s.queueCap() {
		return false
	}
	c.queue = append(c.queue, req)
	return true
}

// dequeueLocked drops a flow from the wait queue (it was admitted by a
// direct retry, or its session closed before promotion).
func (s *Server) dequeueLocked(c *cellState, flowID int) {
	for i := range c.queue {
		if c.queue[i].FlowID == flowID {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// promoteLocked admits queued sessions head-first while the admission
// predicate holds. Called whenever capacity may have freed: after a
// session close and after each BAI (radio costs shift the floor
// demand). Registration failures drop the entry — the client will
// retry its open and get a fresh verdict.
func (s *Server) promoteLocked(cellID int, c *cellState) {
	if !s.cfg.AdmissionControl {
		return
	}
	for len(c.queue) > 0 {
		req := c.queue[0]
		if !c.controller.CanAdmit(has.Ladder(req.LadderBps)) {
			return
		}
		c.queue = c.queue[1:]
		if err := c.controller.Register(req.FlowID, has.Ladder(req.LadderBps), req.Preferences); err != nil {
			continue
		}
		s.rec.Emit(obs.SessionOpen(int32(cellID), int32(req.FlowID)))
		s.rec.Emit(obs.QueuePromote(int32(cellID), int32(req.FlowID), int32(len(c.queue))))
		s.rec.Emit(obs.Admit(int32(cellID), int32(req.FlowID), true))
	}
}

// QueueDepth returns the number of sessions waiting for admission in a
// cell (0 for unknown cells).
func (s *Server) QueueDepth(cellID int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.cells[cellID]; ok {
		return len(c.queue)
	}
	return 0
}

func sameLadder(a, b has.Ladder) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CloseSession removes a video flow.
func (s *Server) CloseSession(cellID, flowID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.cells[cellID]; ok {
		c.controller.Unregister(flowID)
		delete(c.current, flowID)
		delete(c.installSeq, flowID)
		s.dequeueLocked(c, flowID)
		s.rec.Emit(obs.SessionClose(int32(cellID), int32(flowID)))
		s.promoteLocked(cellID, c)
	}
}

// Handover moves a video session between cells (the multi-BS deployment:
// the UE re-attaches at a neighbouring eNodeB and its session follows).
// The session's ladder and preferences move with it; its bitrate level
// restarts from the new cell's first unconstrained BAI, since the old
// cell's radio-cost history is meaningless there.
func (s *Server) Handover(fromCell, toCell, flowID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	from, ok := s.cells[fromCell]
	if !ok {
		return fmt.Errorf("oneapi: handover: unknown source cell %d", fromCell)
	}
	snap, err := from.controller.Snapshot(flowID)
	if err != nil {
		return fmt.Errorf("oneapi: handover: %w", err)
	}
	to := s.cell(toCell)
	if err := to.controller.Register(flowID, snap.Ladder, snap.Preferences); err != nil {
		return fmt.Errorf("oneapi: handover: %w", err)
	}
	from.controller.Unregister(flowID)
	delete(from.current, flowID)
	delete(from.installSeq, flowID)
	return nil
}

// SetPreferences updates a session's client preferences.
func (s *Server) SetPreferences(cellID, flowID int, prefs core.Preferences) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[cellID]
	if !ok {
		return fmt.Errorf("oneapi: unknown cell %d", cellID)
	}
	return c.controller.SetPreferences(flowID, prefs)
}

// RunBAI consumes one statistics report for a cell, runs the bitrate
// optimisation, installs GBRs through the PCEF (when non-nil), and
// returns the committed assignments. A report's NumDataFlows of -1
// defers to the PCRF registry.
//
// Enforcement is crash-safe and per-flow atomic: a SetGBR failure for
// one flow no longer abandons the remaining flows mid-loop. Every flow
// is attempted; flows whose install fails keep their previous
// assignment (and previous install sequence), and the failures are
// reported collectively via a *EnforceError returned alongside the
// successfully committed assignments — callers decide whether partial
// enforcement is fatal.
func (s *Server) RunBAI(cellID int, report StatsReport, pcef PCEF) ([]core.Assignment, error) {
	resp, err := s.RunBAIReport(cellID, report, pcef)
	return resp.Assignments, err
}

// RunBAIReport is RunBAI returning the full wire-shaped outcome: the
// committed assignments, the BAI sequence they belong to, and any
// per-flow enforcement failures. err is *EnforceError (with resp still
// valid) on partial enforcement, ErrStaleReport for an out-of-order
// sequenced report, or another error when the optimisation itself
// failed (in which case no state changed).
func (s *Server) RunBAIReport(cellID int, report StatsReport, pcef PCEF) (StatsResponse, error) {
	nData := report.NumDataFlows
	if nData < 0 {
		nData = s.pcrf.NumDataFlows(cellID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if pcef == nil {
		pcef = s.pcef // server-side hook (may still be nil)
	}
	c := s.cell(cellID)
	if report.Seq > 0 && report.Seq <= c.lastReportSeq {
		s.rec.Emit(obs.StaleReport(int32(cellID), report.Seq))
		return StatsResponse{}, fmt.Errorf("oneapi: cell %d: report seq %d <= last accepted %d: %w",
			cellID, report.Seq, c.lastReportSeq, ErrStaleReport)
	}
	assignments, err := c.controller.RunBAI(report.Flows, nData)
	if err != nil {
		return StatsResponse{}, fmt.Errorf("oneapi: cell %d: %w", cellID, err)
	}
	if report.Seq > 0 {
		c.lastReportSeq = report.Seq
	}
	c.baiSeq++
	committed := make([]core.Assignment, 0, len(assignments))
	var failed []EnforcementFailure
	for _, a := range assignments {
		if pcef != nil {
			if err := pcef.SetGBR(a.FlowID, a.RateBps); err != nil {
				// All-installed-or-previous-kept per flow: the flow's
				// previous assignment and install sequence survive, so
				// polling plugins see its age grow. Downgrades are the
				// exception: under overload a failed install must not
				// leave the flow advertising a higher rate than the
				// optimiser just chose — the stale high assignment is
				// what starves the cell — so the lower assignment is
				// published to polls while installSeq keeps lagging
				// (the staleness signal stays intact).
				failed = append(failed, EnforcementFailure{FlowID: a.FlowID, Reason: err.Error()})
				s.rec.Emit(obs.InstallFail(int32(cellID), int32(a.FlowID), c.baiSeq, int32(a.Level), a.RateBps))
				if prev, ok := c.current[a.FlowID]; ok && a.RateBps < prev.RateBps {
					c.current[a.FlowID] = a
				}
				continue
			}
		}
		c.current[a.FlowID] = a
		c.installSeq[a.FlowID] = c.baiSeq
		committed = append(committed, a)
		s.rec.Emit(obs.Install(int32(cellID), int32(a.FlowID), c.baiSeq, int32(a.Level), a.RateBps))
	}
	s.promoteLocked(cellID, c)
	resp := StatsResponse{Assignments: committed, BAISeq: c.baiSeq, Failed: failed}
	if len(failed) > 0 {
		return resp, &EnforceError{BAISeq: c.baiSeq, Failed: failed}
	}
	return resp, nil
}

// Assignment returns a flow's most recent assignment, for polling
// plugins. ok is false before the flow's first BAI.
func (s *Server) Assignment(cellID, flowID int) (AssignmentResponse, bool) {
	a, err := s.AssignmentErr(cellID, flowID)
	return a, err == nil
}

// AssignmentErr is Assignment with typed failure modes: ErrUnknownCell,
// ErrUnknownSession (the flow has no live session — after a server
// restart this tells the client to re-open), or ErrNoAssignment (the
// session is live but no BAI has assigned it yet).
func (s *Server) AssignmentErr(cellID, flowID int) (AssignmentResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[cellID]
	if !ok {
		return AssignmentResponse{}, fmt.Errorf("oneapi: cell %d: %w", cellID, ErrUnknownCell)
	}
	a, ok := c.current[flowID]
	if !ok {
		if _, err := c.controller.Snapshot(flowID); err != nil {
			return AssignmentResponse{}, fmt.Errorf("oneapi: cell %d flow %d: %w", cellID, flowID, ErrUnknownSession)
		}
		return AssignmentResponse{}, fmt.Errorf("oneapi: cell %d flow %d: %w", cellID, flowID, ErrNoAssignment)
	}
	return AssignmentResponse{
		FlowID:  a.FlowID,
		RateBps: a.RateBps,
		Level:   a.Level,
		BAISeq:  c.installSeq[flowID],
		CellSeq: c.baiSeq,
	}, nil
}

// SolveTimes returns the per-BAI optimiser wall times for a cell.
func (s *Server) SolveTimes(cellID int) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[cellID]
	if !ok {
		return nil
	}
	times := c.controller.SolveTimes()
	out := make([]float64, len(times))
	for i, d := range times {
		out[i] = d.Seconds()
	}
	return out
}
