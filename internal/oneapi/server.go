package oneapi

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/sim"
)

// PCEF is the enforcement interface: the policy-and-charging enforcement
// pathway through which the OneAPI server installs each video flow's GBR
// at the eNodeB (the Continuous GBR Updater in the testbed MAC).
type PCEF interface {
	// SetGBR installs a guaranteed bit rate for a bearer.
	SetGBR(flowID int, gbrBps float64) error
}

// PCEFFunc adapts a function to the PCEF interface.
type PCEFFunc func(flowID int, gbrBps float64) error

// SetGBR implements PCEF.
func (f PCEFFunc) SetGBR(flowID int, gbrBps float64) error { return f(flowID, gbrBps) }

// GBRInstall is one entry of a batched PCEF install: the GBR a BAI
// round wants enforced for one bearer.
type GBRInstall struct {
	FlowID int     `json:"flow_id"`
	GBRBps float64 `json:"gbr_bps"`
}

// BatchPCEF is an optional PCEF capability: install a whole BAI round's
// GBRs in one grouped call instead of one round trip per flow. The
// result slice must be parallel to installs (nil error = installed); a
// nil slice means every install succeeded. The server folds the results
// exactly as it folds per-flow SetGBR calls — failed downgrades are
// published to polls, failed upgrades keep the previous assignment —
// so batching is an amortisation, never a semantic change.
type BatchPCEF interface {
	PCEF
	SetGBRBatch(installs []GBRInstall) []error
}

// PCEFBatchFunc adapts a function to BatchPCEF; its per-flow SetGBR
// view wraps single-entry batches.
type PCEFBatchFunc func(installs []GBRInstall) []error

// SetGBRBatch implements BatchPCEF.
func (f PCEFBatchFunc) SetGBRBatch(installs []GBRInstall) []error { return f(installs) }

// SetGBR implements PCEF.
func (f PCEFBatchFunc) SetGBR(flowID int, gbrBps float64) error {
	errs := f([]GBRInstall{{FlowID: flowID, GBRBps: gbrBps}})
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

type cellState struct {
	// mu serializes operations on this cell only: BAI rounds, session
	// lifecycle, polls. Distinct cells never contend on it.
	mu sync.Mutex

	id         int
	controller *core.Controller
	// rec and pcef are per-cell copies of the server-level hooks, made
	// at cell creation (and re-pointed by SetRecorder/SetPCEF) so the
	// hot paths never read server-global state.
	rec  *obs.Recorder
	pcef PCEF

	baiSeq  int64
	current map[int]core.Assignment
	// installSeq records, per flow, the BAI sequence at which the
	// flow's current assignment was successfully installed; it lags
	// baiSeq for flows whose PCEF installs failed, which is how
	// polling plugins detect their own staleness.
	installSeq map[int]int64
	// lastReportSeq is the highest accepted StatsReport.Seq (0 before
	// the first sequenced report).
	lastReportSeq int64
	// queue holds sessions the admission predicate refused, in arrival
	// order. It is a plain slice FIFO — promotion pops the head, never
	// iterates a map — so promotion order is deterministic. Bounded by
	// Config.AdmissionQueue.
	queue []SessionRequest
}

// cellIndex maps cell IDs to their state within one shard. It is
// published copy-on-write through shard.index, so lookups of existing
// cells are a single atomic load plus a map read — no lock at all.
type cellIndex = map[int]*cellState

// shard is one lock stripe of the control plane. The shard mutex guards
// only index *mutation* (cell creation); per-cell operations take the
// cell's own mutex, so sessions, reports, and polls on distinct cells —
// even cells of the same shard — never serialize on shared state.
type shard struct {
	mu    sync.Mutex
	index atomic.Pointer[cellIndex]
	// inflight counts BAI rounds currently executing in this shard's
	// cells; the graceful drain waits for every shard to idle.
	inflight atomic.Int64
}

// DefaultShards is the shard count NewServer uses. Shard count never
// changes behaviour — only contention — so the default just needs to
// comfortably exceed the core counts the server runs on.
const DefaultShards = 16

// Server is the OneAPI server: one FLARE controller per managed cell
// ("a single OneAPI server can manage multiple BSs, though the bitrates
// are calculated independently for each network cell"). It is safe for
// concurrent use — the HTTP binding serves it from multiple goroutines
// — and is sharded by cell: per-cell state lives in lock-striped shards
// with a copy-on-write index, so operations on distinct cells proceed
// in parallel and shards=1 is semantically identical to shards=N.
type Server struct {
	cfg    core.Config
	pcrf   *PCRF
	shards []shard

	// optMu guards the creation-time defaults below (the values copied
	// into each new cellState) and orders Set* re-pointing against cell
	// creation. It is never taken on per-cell hot paths.
	optMu sync.Mutex
	// pcef is the server-side enforcement hook, used by BAIs whose
	// caller passes no PCEF — notably the HTTP stats endpoint, where the
	// PCEF lives next to the server rather than the eNodeB. Nil means
	// enforcement is the response consumer's job (the wire contract).
	pcef PCEF
	// rec is the telemetry recorder (nil = disabled) shared by every
	// per-cell controller this server creates.
	rec *obs.Recorder
	// wallClock, when non-nil, replaces time.Now as each controller's
	// solver-latency clock (see core.Controller.SetWallClock). Tests
	// fake it; production leaves it nil.
	wallClock func() time.Time

	// draining refuses new sessions and new BAI rounds once a graceful
	// shutdown has begun; in-flight rounds complete (see BeginDrain).
	draining atomic.Bool

	// baiPool fans RunBAIRounds batches across cells. It is created
	// lazily (in-process simulation servers never batch) and driven
	// under poolMu because sim.WorkerPool is single-driver.
	poolMu  sync.Mutex
	baiPool *sim.WorkerPool
}

// NewServer builds a OneAPI server that creates controllers with cfg,
// sharded DefaultShards ways.
func NewServer(cfg core.Config, pcrf *PCRF) *Server {
	return NewServerSharded(cfg, pcrf, DefaultShards)
}

// NewServerSharded is NewServer with an explicit shard count (values
// below 1 are clamped to 1). Shard count is a contention knob only:
// results are byte-identical at every count.
func NewServerSharded(cfg core.Config, pcrf *PCRF, shards int) *Server {
	if pcrf == nil {
		pcrf = NewPCRF()
	}
	if shards < 1 {
		shards = 1
	}
	s := &Server{cfg: cfg, pcrf: pcrf, shards: make([]shard, shards)}
	for i := range s.shards {
		empty := make(cellIndex)
		s.shards[i].index.Store(&empty)
	}
	return s
}

// Shards returns the server's shard count.
func (s *Server) Shards() int { return len(s.shards) }

// shardFor maps a cell ID onto its shard. Fibonacci hashing spreads
// consecutive cell IDs (the common numbering) across stripes.
func (s *Server) shardFor(cellID int) *shard {
	h := uint32(cellID) * 2654435761 // Knuth's multiplicative hash
	return &s.shards[h%uint32(len(s.shards))]
}

// lookup finds an existing cell without taking any lock: one atomic
// index load plus a map read.
func (s *Server) lookup(cellID int) *cellState {
	return (*s.shardFor(cellID).index.Load())[cellID]
}

// cell returns the cell's state, creating it on first contact. The
// fast path is the lock-free lookup; creation takes optMu (so the
// copied defaults are stable) and the shard mutex (so concurrent
// creators agree), then publishes a fresh index copy-on-write.
func (s *Server) cell(cellID int) *cellState {
	if c := s.lookup(cellID); c != nil {
		return c
	}
	s.optMu.Lock()
	defer s.optMu.Unlock()
	sh := s.shardFor(cellID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.index.Load()
	if c, ok := old[cellID]; ok {
		return c
	}
	c := &cellState{
		id:         cellID,
		controller: core.NewController(s.cfg),
		rec:        s.rec,
		pcef:       s.pcef,
		current:    make(map[int]core.Assignment),
		installSeq: make(map[int]int64),
	}
	c.controller.SetRecorder(s.rec, cellID)
	if s.wallClock != nil {
		c.controller.SetWallClock(s.wallClock)
	}
	next := make(cellIndex, len(old)+1)
	for id, st := range old {
		next[id] = st
	}
	next[cellID] = c
	sh.index.Store(&next)
	return c
}

// forEachCell visits every live cell. Iteration order is unspecified;
// callers must not rely on it (it is used only for re-pointing hooks).
func (s *Server) forEachCell(fn func(*cellState)) {
	for i := range s.shards {
		for _, c := range *s.shards[i].index.Load() {
			fn(c)
		}
	}
}

// PCRF exposes the server's flow registry.
func (s *Server) PCRF() *PCRF { return s.pcrf }

// SetRecorder attaches a telemetry recorder (nil disables). Controllers
// created afterwards inherit it; controllers that already exist are
// re-pointed too, so attach order does not matter.
func (s *Server) SetRecorder(rec *obs.Recorder) {
	s.optMu.Lock()
	defer s.optMu.Unlock()
	s.rec = rec
	s.forEachCell(func(c *cellState) {
		c.mu.Lock()
		c.rec = rec
		c.controller.SetRecorder(rec, c.id)
		c.mu.Unlock()
	})
}

// SetWallClock injects the wall-clock source controllers use to time
// BAI solves (nil restores time.Now). Like SetRecorder, it re-points
// controllers that already exist, so attach order does not matter.
func (s *Server) SetWallClock(now func() time.Time) {
	s.optMu.Lock()
	defer s.optMu.Unlock()
	s.wallClock = now
	s.forEachCell(func(c *cellState) {
		c.mu.Lock()
		c.controller.SetWallClock(now)
		c.mu.Unlock()
	})
}

// Recorder returns the attached telemetry recorder (nil when disabled).
func (s *Server) Recorder() *obs.Recorder {
	s.optMu.Lock()
	defer s.optMu.Unlock()
	return s.rec
}

// SetPCEF installs the server-side enforcement hook: BAIs triggered
// with a nil PCEF (e.g. over HTTP) install GBRs through it. Failures
// are collected per flow, never aborting the BAI (see RunBAIReport).
func (s *Server) SetPCEF(p PCEF) {
	s.optMu.Lock()
	defer s.optMu.Unlock()
	s.pcef = p
	s.forEachCell(func(c *cellState) {
		c.mu.Lock()
		c.pcef = p
		c.mu.Unlock()
	})
}

// BeginDrain puts the server into drain mode: new sessions and new BAI
// rounds are refused with ErrDraining while rounds already executing
// run to completion — no BAI is ever dropped mid-install. Polls and
// closes keep working so clients can read final state on their way out.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainWait blocks until every shard's in-flight BAI rounds have
// completed, or ctx-style deadline d elapses (d <= 0 waits up to a
// second). It returns the number of rounds still in flight (0 on a
// clean drain). Callers normally BeginDrain first.
func (s *Server) DrainWait(d time.Duration) int {
	if d <= 0 {
		d = time.Second
	}
	deadline := time.Now().Add(d)
	for {
		var inflight int64
		for i := range s.shards {
			inflight += s.shards[i].inflight.Load()
		}
		if inflight == 0 {
			return 0
		}
		if time.Now().After(deadline) {
			return int(inflight)
		}
		time.Sleep(time.Millisecond)
	}
}

// OpenSession registers a video flow in a cell. Re-registering an
// already-open flow with the same ladder is idempotent and succeeds —
// a client retrying after a control-plane timeout, or re-opening after
// its own restart, must not be rejected. Re-registering with a
// different ladder returns ErrSessionConflict.
func (s *Server) OpenSession(cellID int, req SessionRequest) error {
	_, err := s.Open(cellID, req)
	return err
}

// Open is OpenSession with an extra created flag: true when the call
// registered a new session, false when it matched an existing one
// idempotently (the HTTP binding maps these to 201 vs 200).
func (s *Server) Open(cellID int, req SessionRequest) (created bool, err error) {
	ladder := has.Ladder(req.LadderBps)
	// Validate before the admission predicate, which prices the
	// candidate by its floor rung and so assumes a non-empty ladder.
	if err := ladder.Validate(); err != nil {
		return false, fmt.Errorf("oneapi: open session flow %d: %w", req.FlowID, err)
	}
	if s.draining.Load() {
		return false, fmt.Errorf("oneapi: open session flow %d: %w", req.FlowID, ErrDraining)
	}
	c := s.cell(cellID)
	c.mu.Lock()
	defer c.mu.Unlock()
	if snap, snapErr := c.controller.Snapshot(req.FlowID); snapErr == nil {
		// The flow is already registered: idempotent when the ladder
		// matches (preferences are simply refreshed), conflict when it
		// does not.
		if !sameLadder(snap.Ladder, ladder) {
			return false, fmt.Errorf("oneapi: open session flow %d: %w", req.FlowID, ErrSessionConflict)
		}
		if err := c.controller.SetPreferences(req.FlowID, req.Preferences); err != nil {
			return false, fmt.Errorf("oneapi: open session: %w", err)
		}
		return false, nil
	}
	if s.cfg.AdmissionControl && !c.controller.CanAdmit(ladder) {
		queued := s.enqueueLocked(c, req)
		c.rec.Emit(obs.Reject(int32(cellID), int32(req.FlowID), queued))
		return false, fmt.Errorf("oneapi: open session flow %d: %w", req.FlowID, ErrAdmissionRejected)
	}
	if err := c.controller.Register(req.FlowID, ladder, req.Preferences); err != nil {
		return false, fmt.Errorf("oneapi: open session: %w", err)
	}
	s.dequeueLocked(c, req.FlowID)
	c.rec.Emit(obs.SessionOpen(int32(cellID), int32(req.FlowID)))
	if s.cfg.AdmissionControl {
		c.rec.Emit(obs.Admit(int32(cellID), int32(req.FlowID), false))
	}
	return true, nil
}

// queueCap resolves Config.AdmissionQueue: 0 means the default depth,
// negative disables queueing.
func (s *Server) queueCap() int {
	switch {
	case s.cfg.AdmissionQueue > 0:
		return s.cfg.AdmissionQueue
	case s.cfg.AdmissionQueue < 0:
		return 0
	default:
		return 8
	}
}

// enqueueLocked parks a rejected session on the cell's wait queue,
// reporting whether it is (still) queued. A repeat open for a flow
// already waiting refreshes its request in place rather than
// double-queueing it.
func (s *Server) enqueueLocked(c *cellState, req SessionRequest) bool {
	for i := range c.queue {
		if c.queue[i].FlowID == req.FlowID {
			c.queue[i] = req
			return true
		}
	}
	if len(c.queue) >= s.queueCap() {
		return false
	}
	c.queue = append(c.queue, req)
	return true
}

// dequeueLocked drops a flow from the wait queue (it was admitted by a
// direct retry, or its session closed before promotion).
func (s *Server) dequeueLocked(c *cellState, flowID int) {
	for i := range c.queue {
		if c.queue[i].FlowID == flowID {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// promoteLocked admits queued sessions head-first while the admission
// predicate holds. Called whenever capacity may have freed: after a
// session close, after a handover departure, and after each BAI (radio
// costs shift the floor demand). Registration failures drop the entry —
// the client will retry its open and get a fresh verdict.
func (s *Server) promoteLocked(cellID int, c *cellState) {
	if !s.cfg.AdmissionControl {
		return
	}
	for len(c.queue) > 0 {
		req := c.queue[0]
		if !c.controller.CanAdmit(has.Ladder(req.LadderBps)) {
			return
		}
		c.queue = c.queue[1:]
		if err := c.controller.Register(req.FlowID, has.Ladder(req.LadderBps), req.Preferences); err != nil {
			continue
		}
		c.rec.Emit(obs.SessionOpen(int32(cellID), int32(req.FlowID)))
		c.rec.Emit(obs.QueuePromote(int32(cellID), int32(req.FlowID), int32(len(c.queue))))
		c.rec.Emit(obs.Admit(int32(cellID), int32(req.FlowID), true))
	}
}

// QueueDepth returns the number of sessions waiting for admission in a
// cell (0 for unknown cells).
func (s *Server) QueueDepth(cellID int) int {
	c := s.lookup(cellID)
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

func sameLadder(a, b has.Ladder) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CloseSession removes a video flow.
func (s *Server) CloseSession(cellID, flowID int) {
	c := s.lookup(cellID)
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.controller.Unregister(flowID)
	delete(c.current, flowID)
	delete(c.installSeq, flowID)
	s.dequeueLocked(c, flowID)
	c.rec.Emit(obs.SessionClose(int32(cellID), int32(flowID)))
	s.promoteLocked(cellID, c)
}

// Handover moves a live video session between cells — a shard-to-shard
// state transfer, not a close+reopen: the flow keeps its session ID,
// its ladder and preferences move with it, and its current assignment
// is carried so polls keep answering during the gap before the target
// cell's first BAI. The assignment's age (CellSeq−BAISeq) is preserved
// across the transfer, so staleness detectors keep ageing it honestly;
// the bitrate itself is re-optimised at the target's next BAI, since
// the source cell's radio-cost history is meaningless there.
//
// Handover bypasses the admission predicate deliberately: in cellular
// admission control, handover calls outrank new calls (dropping a
// session in motion is worse than refusing a new one). Capacity the
// flow frees in the source cell promotes its wait queue immediately.
func (s *Server) Handover(fromCell, toCell, flowID int) error {
	if fromCell == toCell {
		return fmt.Errorf("oneapi: handover: flow %d is already in cell %d", flowID, toCell)
	}
	from := s.lookup(fromCell)
	if from == nil {
		return fmt.Errorf("oneapi: handover: unknown source cell %d", fromCell)
	}
	to := s.cell(toCell)
	// Both cells (possibly on different shards) are locked for the
	// transfer; global cell-ID order keeps concurrent handovers
	// deadlock-free.
	first, second := from, to
	if toCell < fromCell {
		first, second = to, from
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	//flare:allow lockorder: equal-rank by design — both cells are locked in global cell-ID order (first/second above), so concurrent handovers cannot form a cycle
	second.mu.Lock()
	defer second.mu.Unlock()

	snap, err := from.controller.Snapshot(flowID)
	if err != nil {
		return fmt.Errorf("oneapi: handover flow %d from cell %d: %w", flowID, fromCell, ErrUnknownSession)
	}
	if err := to.controller.Register(flowID, snap.Ladder, snap.Preferences); err != nil {
		return fmt.Errorf("oneapi: handover: %w", err)
	}
	if a, ok := from.current[flowID]; ok {
		age := from.baiSeq - from.installSeq[flowID]
		inst := to.baiSeq - age
		if inst < 0 {
			// The target cell is younger than the assignment's age:
			// clamp — the age signal saturates at the target's own
			// BAI count, which is every BAI the new shard can vouch for.
			inst = 0
		}
		to.current[flowID] = a
		to.installSeq[flowID] = inst
	}
	from.controller.Unregister(flowID)
	delete(from.current, flowID)
	delete(from.installSeq, flowID)
	s.dequeueLocked(from, flowID)
	s.promoteLocked(fromCell, from)
	to.rec.Emit(obs.Handover(int32(fromCell), int32(toCell), int32(flowID)))
	return nil
}

// SetPreferences updates a session's client preferences.
func (s *Server) SetPreferences(cellID, flowID int, prefs core.Preferences) error {
	c := s.lookup(cellID)
	if c == nil {
		return fmt.Errorf("oneapi: unknown cell %d", cellID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.controller.SetPreferences(flowID, prefs)
}

// RunBAI consumes one statistics report for a cell, runs the bitrate
// optimisation, installs GBRs through the PCEF (when non-nil), and
// returns the committed assignments. A report's NumDataFlows of -1
// defers to the PCRF registry.
//
// Enforcement is crash-safe and per-flow atomic: a SetGBR failure for
// one flow no longer abandons the remaining flows mid-loop. Every flow
// is attempted; flows whose install fails keep their previous
// assignment (and previous install sequence), and the failures are
// reported collectively via a *EnforceError returned alongside the
// successfully committed assignments — callers decide whether partial
// enforcement is fatal.
func (s *Server) RunBAI(cellID int, report StatsReport, pcef PCEF) ([]core.Assignment, error) {
	resp, err := s.RunBAIReport(cellID, report, pcef)
	return resp.Assignments, err
}

// RunBAIReport is RunBAI returning the full wire-shaped outcome: the
// committed assignments, the BAI sequence they belong to, and any
// per-flow enforcement failures. err is *EnforceError (with resp still
// valid) on partial enforcement, ErrStaleReport for an out-of-order
// sequenced report, ErrDraining during a graceful shutdown, or another
// error when the optimisation itself failed (in which case no state
// changed).
//
// When the PCEF implements BatchPCEF the round's installs go down in
// one grouped call — one install sequence bump, one round trip — and
// the per-flow results are folded in assignment order, byte-identically
// to the per-flow path.
func (s *Server) RunBAIReport(cellID int, report StatsReport, pcef PCEF) (StatsResponse, error) {
	nData := report.NumDataFlows
	if nData < 0 {
		nData = s.pcrf.NumDataFlows(cellID)
	}
	sh := s.shardFor(cellID)
	sh.inflight.Add(1)
	defer sh.inflight.Add(-1)
	if s.draining.Load() {
		return StatsResponse{}, fmt.Errorf("oneapi: cell %d: %w", cellID, ErrDraining)
	}
	c := s.cell(cellID)
	c.mu.Lock()
	defer c.mu.Unlock()
	if pcef == nil {
		pcef = c.pcef // server-side hook (may still be nil)
	}
	if report.Seq > 0 && report.Seq <= c.lastReportSeq {
		c.rec.Emit(obs.StaleReport(int32(cellID), report.Seq))
		return StatsResponse{}, fmt.Errorf("oneapi: cell %d: report seq %d <= last accepted %d: %w",
			cellID, report.Seq, c.lastReportSeq, ErrStaleReport)
	}
	assignments, err := c.controller.RunBAI(report.Flows, nData)
	if err != nil {
		return StatsResponse{}, fmt.Errorf("oneapi: cell %d: %w", cellID, err)
	}
	if report.Seq > 0 {
		c.lastReportSeq = report.Seq
	}
	c.baiSeq++

	// Enforcement: one grouped PCEF call when the capability is there,
	// the per-flow loop otherwise. Either way installErrs[i] is flow
	// i's outcome and the fold below is shared, so the two paths are
	// observationally identical.
	installErrs := installGBRs(pcef, assignments)

	committed := make([]core.Assignment, 0, len(assignments))
	var failed []EnforcementFailure
	for i, a := range assignments {
		if installErrs != nil && installErrs[i] != nil {
			// All-installed-or-previous-kept per flow: the flow's
			// previous assignment and install sequence survive, so
			// polling plugins see its age grow. Downgrades are the
			// exception: under overload a failed install must not
			// leave the flow advertising a higher rate than the
			// optimiser just chose — the stale high assignment is
			// what starves the cell — so the lower assignment is
			// published to polls while installSeq keeps lagging
			// (the staleness signal stays intact).
			failed = append(failed, EnforcementFailure{FlowID: a.FlowID, Reason: installErrs[i].Error()})
			c.rec.Emit(obs.InstallFail(int32(cellID), int32(a.FlowID), c.baiSeq, int32(a.Level), a.RateBps))
			if prev, ok := c.current[a.FlowID]; ok && a.RateBps < prev.RateBps {
				c.current[a.FlowID] = a
			}
			continue
		}
		c.current[a.FlowID] = a
		c.installSeq[a.FlowID] = c.baiSeq
		committed = append(committed, a)
		c.rec.Emit(obs.Install(int32(cellID), int32(a.FlowID), c.baiSeq, int32(a.Level), a.RateBps))
	}
	s.promoteLocked(cellID, c)
	resp := StatsResponse{Assignments: committed, BAISeq: c.baiSeq, Failed: failed}
	if len(failed) > 0 {
		return resp, &EnforceError{BAISeq: c.baiSeq, Failed: failed}
	}
	return resp, nil
}

// installGBRs pushes one BAI round's assignments through the PCEF and
// returns the per-assignment outcomes (nil slice when pcef is nil or
// every install succeeded through a batch). A batch implementation
// returning the wrong result count breaks its contract; every install
// is then treated as failed so no flow silently advances.
func installGBRs(pcef PCEF, assignments []core.Assignment) []error {
	if pcef == nil || len(assignments) == 0 {
		return nil
	}
	if bp, ok := pcef.(BatchPCEF); ok {
		installs := make([]GBRInstall, len(assignments))
		for i, a := range assignments {
			installs[i] = GBRInstall{FlowID: a.FlowID, GBRBps: a.RateBps}
		}
		errs := bp.SetGBRBatch(installs)
		if errs == nil {
			return nil
		}
		if len(errs) != len(installs) {
			bad := fmt.Errorf("oneapi: batch pcef returned %d results for %d installs", len(errs), len(installs))
			errs = make([]error, len(installs))
			for i := range errs {
				errs[i] = bad
			}
		}
		return errs
	}
	errs := make([]error, len(assignments))
	for i, a := range assignments {
		errs[i] = pcef.SetGBR(a.FlowID, a.RateBps)
	}
	return errs
}

// CellReport pairs a cell with one statistics report, for batched BAI
// rounds (RunBAIRounds and the stats/batch HTTP endpoint).
type CellReport struct {
	CellID int         `json:"cell_id"`
	Report StatsReport `json:"report"`
}

// RoundOutcome is one cell's result in a batched BAI round.
type RoundOutcome struct {
	CellID int
	Resp   StatsResponse
	Err    error
}

// RunBAIRounds executes one BAI per report, fanning the solves across a
// bounded worker pool so an aggregation site reporting many cells at
// once amortises solver work across cores. Outcomes are slotted by
// input index, so the result order is deterministic regardless of pool
// width. Cell IDs within one batch should be distinct: duplicates
// serialize on the cell's lock in unspecified order (sequenced reports
// then reject the loser as stale).
func (s *Server) RunBAIRounds(reports []CellReport, pcef PCEF) []RoundOutcome {
	out := make([]RoundOutcome, len(reports))
	if len(reports) == 0 {
		return out
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.baiPool == nil {
		s.baiPool = sim.NewWorkerPool(runtime.GOMAXPROCS(0))
	}
	s.baiPool.Do(len(reports), &roundRunner{s: s, reports: reports, pcef: pcef, out: out})
	return out
}

// roundRunner adapts a batch of BAI rounds to sim.RangeRunner: each
// worker owns a disjoint slice of report indices and writes only its
// own outcome slots.
type roundRunner struct {
	s       *Server
	reports []CellReport
	pcef    PCEF
	out     []RoundOutcome
}

// RunRange implements sim.RangeRunner.
func (r *roundRunner) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		cr := r.reports[i]
		resp, err := r.s.RunBAIReport(cr.CellID, cr.Report, r.pcef)
		r.out[i] = RoundOutcome{CellID: cr.CellID, Resp: resp, Err: err}
	}
}

// Close releases the server's worker pool (if RunBAIRounds ever created
// one). The server must not be used after Close.
func (s *Server) Close() {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.baiPool != nil {
		s.baiPool.Close()
		s.baiPool = nil
	}
}

// Assignment returns a flow's most recent assignment, for polling
// plugins. ok is false before the flow's first BAI.
func (s *Server) Assignment(cellID, flowID int) (AssignmentResponse, bool) {
	a, err := s.AssignmentErr(cellID, flowID)
	return a, err == nil
}

// AssignmentErr is Assignment with typed failure modes: ErrUnknownCell,
// ErrUnknownSession (the flow has no live session — after a server
// restart this tells the client to re-open), or ErrNoAssignment (the
// session is live but no BAI has assigned it yet).
func (s *Server) AssignmentErr(cellID, flowID int) (AssignmentResponse, error) {
	c := s.lookup(cellID)
	if c == nil {
		return AssignmentResponse{}, fmt.Errorf("oneapi: cell %d: %w", cellID, ErrUnknownCell)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.current[flowID]
	if !ok {
		if _, err := c.controller.Snapshot(flowID); err != nil {
			return AssignmentResponse{}, fmt.Errorf("oneapi: cell %d flow %d: %w", cellID, flowID, ErrUnknownSession)
		}
		return AssignmentResponse{}, fmt.Errorf("oneapi: cell %d flow %d: %w", cellID, flowID, ErrNoAssignment)
	}
	return AssignmentResponse{
		FlowID:  a.FlowID,
		RateBps: a.RateBps,
		Level:   a.Level,
		BAISeq:  c.installSeq[flowID],
		CellSeq: c.baiSeq,
	}, nil
}

// SolveTimes returns the per-BAI optimiser wall times for a cell.
func (s *Server) SolveTimes(cellID int) []float64 {
	c := s.lookup(cellID)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	times := c.controller.SolveTimes()
	out := make([]float64, len(times))
	for i, d := range times {
		out[i] = d.Seconds()
	}
	return out
}
