package oneapi

import (
	"fmt"
	"sync"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
)

// PCEF is the enforcement interface: the policy-and-charging enforcement
// pathway through which the OneAPI server installs each video flow's GBR
// at the eNodeB (the Continuous GBR Updater in the testbed MAC).
type PCEF interface {
	// SetGBR installs a guaranteed bit rate for a bearer.
	SetGBR(flowID int, gbrBps float64) error
}

// PCEFFunc adapts a function to the PCEF interface.
type PCEFFunc func(flowID int, gbrBps float64) error

// SetGBR implements PCEF.
func (f PCEFFunc) SetGBR(flowID int, gbrBps float64) error { return f(flowID, gbrBps) }

type cellState struct {
	controller *core.Controller
	baiSeq     int64
	current    map[int]core.Assignment
}

// Server is the OneAPI server: one FLARE controller per managed cell
// ("a single OneAPI server can manage multiple BSs, though the bitrates
// are calculated independently for each network cell"). It is safe for
// concurrent use — the HTTP binding serves it from multiple goroutines.
type Server struct {
	cfg  core.Config
	pcrf *PCRF

	mu    sync.Mutex
	cells map[int]*cellState
}

// NewServer builds a OneAPI server that creates controllers with cfg.
func NewServer(cfg core.Config, pcrf *PCRF) *Server {
	if pcrf == nil {
		pcrf = NewPCRF()
	}
	return &Server{cfg: cfg, pcrf: pcrf, cells: make(map[int]*cellState)}
}

// PCRF exposes the server's flow registry.
func (s *Server) PCRF() *PCRF { return s.pcrf }

func (s *Server) cell(cellID int) *cellState {
	c, ok := s.cells[cellID]
	if !ok {
		c = &cellState{
			controller: core.NewController(s.cfg),
			current:    make(map[int]core.Assignment),
		}
		s.cells[cellID] = c
	}
	return c
}

// OpenSession registers a video flow in a cell.
func (s *Server) OpenSession(cellID int, req SessionRequest) error {
	ladder := has.Ladder(req.LadderBps)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cell(cellID).controller.Register(req.FlowID, ladder, req.Preferences); err != nil {
		return fmt.Errorf("oneapi: open session: %w", err)
	}
	return nil
}

// CloseSession removes a video flow.
func (s *Server) CloseSession(cellID, flowID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.cells[cellID]; ok {
		c.controller.Unregister(flowID)
		delete(c.current, flowID)
	}
}

// Handover moves a video session between cells (the multi-BS deployment:
// the UE re-attaches at a neighbouring eNodeB and its session follows).
// The session's ladder and preferences move with it; its bitrate level
// restarts from the new cell's first unconstrained BAI, since the old
// cell's radio-cost history is meaningless there.
func (s *Server) Handover(fromCell, toCell, flowID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	from, ok := s.cells[fromCell]
	if !ok {
		return fmt.Errorf("oneapi: handover: unknown source cell %d", fromCell)
	}
	snap, err := from.controller.Snapshot(flowID)
	if err != nil {
		return fmt.Errorf("oneapi: handover: %w", err)
	}
	to := s.cell(toCell)
	if err := to.controller.Register(flowID, snap.Ladder, snap.Preferences); err != nil {
		return fmt.Errorf("oneapi: handover: %w", err)
	}
	from.controller.Unregister(flowID)
	delete(from.current, flowID)
	return nil
}

// SetPreferences updates a session's client preferences.
func (s *Server) SetPreferences(cellID, flowID int, prefs core.Preferences) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[cellID]
	if !ok {
		return fmt.Errorf("oneapi: unknown cell %d", cellID)
	}
	return c.controller.SetPreferences(flowID, prefs)
}

// RunBAI consumes one statistics report for a cell, runs the bitrate
// optimisation, installs GBRs through the PCEF (when non-nil), and
// returns the assignments. A report's NumDataFlows of -1 defers to the
// PCRF registry.
func (s *Server) RunBAI(cellID int, report StatsReport, pcef PCEF) ([]core.Assignment, error) {
	nData := report.NumDataFlows
	if nData < 0 {
		nData = s.pcrf.NumDataFlows(cellID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cell(cellID)
	assignments, err := c.controller.RunBAI(report.Flows, nData)
	if err != nil {
		return nil, fmt.Errorf("oneapi: cell %d: %w", cellID, err)
	}
	c.baiSeq++
	for _, a := range assignments {
		c.current[a.FlowID] = a
		if pcef != nil {
			if err := pcef.SetGBR(a.FlowID, a.RateBps); err != nil {
				return nil, fmt.Errorf("oneapi: enforce GBR for flow %d: %w", a.FlowID, err)
			}
		}
	}
	return assignments, nil
}

// Assignment returns a flow's most recent assignment, for polling
// plugins. ok is false before the flow's first BAI.
func (s *Server) Assignment(cellID, flowID int) (AssignmentResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[cellID]
	if !ok {
		return AssignmentResponse{}, false
	}
	a, ok := c.current[flowID]
	if !ok {
		return AssignmentResponse{}, false
	}
	return AssignmentResponse{
		FlowID:  a.FlowID,
		RateBps: a.RateBps,
		Level:   a.Level,
		BAISeq:  c.baiSeq,
	}, true
}

// SolveTimes returns the per-BAI optimiser wall times for a cell.
func (s *Server) SolveTimes(cellID int) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[cellID]
	if !ok {
		return nil
	}
	times := c.controller.SolveTimes()
	out := make([]float64, len(times))
	for i, d := range times {
		out[i] = d.Seconds()
	}
	return out
}
