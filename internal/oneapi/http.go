package oneapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/flare-sim/flare/internal/core"
)

// Handler binds the server to JSON-over-HTTP in the shape of the OMA
// RESTful Network APIs the paper builds on:
//
//	POST   /oneapi/v4/cells/{cell}/sessions            open a session
//	DELETE /oneapi/v4/cells/{cell}/sessions/{flow}     close a session
//	POST   /oneapi/v4/cells/{cell}/stats               eNB report -> BAI
//	POST   /oneapi/v4/stats/batch                      many cells' reports -> parallel BAIs
//	GET    /oneapi/v4/cells/{cell}/assignments/{flow}  plugin poll
//	POST   /oneapi/v4/cells/{cell}/sessions/{flow}/handover  move session to another cell
//
// The stats POST doubles as the enforcement channel: its response body
// carries the GBR assignments for the eNodeB's Continuous GBR Updater,
// so no server-initiated connection to the eNodeB is needed.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /oneapi/v4/cells/{cell}/sessions", func(w http.ResponseWriter, r *http.Request) {
		cellID, err := pathInt(r, "cell")
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var req SessionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode session request: %w", err))
			return
		}
		created, err := s.Open(cellID, req)
		switch {
		case errors.Is(err, ErrSessionConflict):
			writeErr(w, http.StatusConflict, err)
		case errors.Is(err, ErrAdmissionRejected), errors.Is(err, ErrDraining):
			// Overload refusal or graceful drain, not failure: 503 with
			// a Retry-After of one BAI — for admission, the earliest
			// moment the predicate can re-evaluate; for a drain, a sane
			// fail-over pause.
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s)))
			writeErr(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeErr(w, http.StatusBadRequest, err)
		case created:
			w.WriteHeader(http.StatusCreated)
		default:
			// Idempotent re-open (client retry / restart): 200, not 409.
			w.WriteHeader(http.StatusOK)
		}
	})

	mux.HandleFunc("PUT /oneapi/v4/cells/{cell}/sessions/{flow}/preferences", func(w http.ResponseWriter, r *http.Request) {
		cellID, err1 := pathInt(r, "cell")
		flowID, err2 := pathInt(r, "flow")
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad path"))
			return
		}
		var prefs core.Preferences
		if err := json.NewDecoder(r.Body).Decode(&prefs); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode preferences: %w", err))
			return
		}
		if err := s.SetPreferences(cellID, flowID, prefs); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("DELETE /oneapi/v4/cells/{cell}/sessions/{flow}", func(w http.ResponseWriter, r *http.Request) {
		cellID, err1 := pathInt(r, "cell")
		flowID, err2 := pathInt(r, "flow")
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad path"))
			return
		}
		s.CloseSession(cellID, flowID)
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /oneapi/v4/cells/{cell}/stats", func(w http.ResponseWriter, r *http.Request) {
		cellID, err := pathInt(r, "cell")
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var report StatsReport
		if err := json.NewDecoder(r.Body).Decode(&report); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode stats report: %w", err))
			return
		}
		resp, err := s.RunBAIReport(cellID, report, nil)
		var enforceErr *EnforceError
		switch {
		case errors.Is(err, ErrStaleReport):
			writeErr(w, http.StatusConflict, err)
			return
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s)))
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		case errors.As(err, &enforceErr):
			// Partial enforcement: the BAI ran; the response carries
			// both the committed assignments and the failures.
		case err != nil:
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /oneapi/v4/stats/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchStatsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode batch stats request: %w", err))
			return
		}
		outcomes := s.RunBAIRounds(req.Reports, nil)
		resp := BatchStatsResponse{Results: make([]BatchStatsResult, len(outcomes))}
		for i, o := range outcomes {
			res := BatchStatsResult{CellID: o.CellID, StatsResponse: o.Resp}
			// Per-cell errors ride inside the 200 envelope: one stale
			// or draining cell must not fail the other cells' rounds.
			var enforceErr *EnforceError
			if o.Err != nil && !errors.As(o.Err, &enforceErr) {
				res.Error = o.Err.Error()
				res.Code = codeFor(o.Err)
			}
			resp.Results[i] = res
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /oneapi/v4/cells/{cell}/sessions/{flow}/handover", func(w http.ResponseWriter, r *http.Request) {
		fromCell, err1 := pathInt(r, "cell")
		flowID, err2 := pathInt(r, "flow")
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad path"))
			return
		}
		var req HandoverRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode handover request: %w", err))
			return
		}
		if err := s.Handover(fromCell, req.ToCell, flowID); err != nil {
			switch {
			case errors.Is(err, ErrUnknownSession), errors.Is(err, ErrUnknownCell):
				writeErr(w, http.StatusNotFound, err)
			default:
				writeErr(w, http.StatusBadRequest, err)
			}
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /oneapi/v4/cells/{cell}/assignments/{flow}", func(w http.ResponseWriter, r *http.Request) {
		cellID, err1 := pathInt(r, "cell")
		flowID, err2 := pathInt(r, "flow")
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad path"))
			return
		}
		a, err := s.AssignmentErr(cellID, flowID)
		if err != nil {
			// 404 either way, but the code disambiguates "no BAI yet"
			// (keep polling) from "no such session" (re-open): after a
			// server restart the second tells clients to recover.
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, a)
	})

	return mux
}

// retryAfterSeconds is the Retry-After hint for admission rejections:
// one BAI rounded up to a whole second (the header's granularity).
func retryAfterSeconds(s *Server) int {
	secs := int(s.cfg.BAI / time.Second)
	if s.cfg.BAI%time.Second != 0 || secs == 0 {
		secs++
	}
	return secs
}

func pathInt(r *http.Request, key string) (int, error) {
	v, err := strconv.Atoi(r.PathValue(key))
	if err != nil {
		return 0, fmt.Errorf("path segment %q is not an integer", key)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding to a live ResponseWriter can only fail on a broken
	// connection; nothing actionable remains at that point.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	code := codeFor(err)
	if status == http.StatusBadRequest && code == CodeInternal {
		code = CodeBadRequest
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}
