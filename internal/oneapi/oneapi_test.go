package oneapi

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
)

func TestPCRFCounts(t *testing.T) {
	p := NewPCRF()
	if p.NumDataFlows(1) != 0 {
		t.Fatal("empty PCRF nonzero")
	}
	p.RegisterDataFlow(1, 10)
	p.RegisterDataFlow(1, 11)
	p.RegisterDataFlow(2, 12)
	if p.NumDataFlows(1) != 2 || p.NumDataFlows(2) != 1 {
		t.Fatalf("counts %d/%d", p.NumDataFlows(1), p.NumDataFlows(2))
	}
	p.RegisterDataFlow(1, 10) // idempotent
	if p.NumDataFlows(1) != 2 {
		t.Fatal("duplicate registration counted twice")
	}
	p.UnregisterDataFlow(1, 10)
	if p.NumDataFlows(1) != 1 {
		t.Fatal("unregister failed")
	}
	p.UnregisterDataFlow(9, 99) // unknown cell is a no-op
}

func TestPCRFConcurrent(t *testing.T) {
	p := NewPCRF()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.RegisterDataFlow(i%4, i)
			p.NumDataFlows(i % 4)
			p.UnregisterDataFlow(i%4, i)
		}(i)
	}
	wg.Wait()
	for c := 0; c < 4; c++ {
		if p.NumDataFlows(c) != 0 {
			t.Fatalf("cell %d leaked flows", c)
		}
	}
}

func serverForTest() *Server {
	cfg := core.DefaultConfig()
	cfg.Delta = 1
	return NewServer(cfg, nil)
}

func TestServerSessionLifecycle(t *testing.T) {
	s := serverForTest()
	req := SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}
	if err := s.OpenSession(0, req); err != nil {
		t.Fatal(err)
	}
	// Re-opening the same flow with the same ladder is idempotent: a
	// client retry/restart must not conflict with its own session.
	if err := s.OpenSession(0, req); err != nil {
		t.Fatalf("idempotent re-open rejected: %v", err)
	}
	// Re-opening with a *different* ladder is a real conflict.
	other := SessionRequest{FlowID: 1, LadderBps: []float64{100_000, 900_000}}
	if err := s.OpenSession(0, other); !errors.Is(err, ErrSessionConflict) {
		t.Fatalf("conflicting re-open: err = %v", err)
	}
	// Same flow ID in a different cell is a separate controller.
	if err := s.OpenSession(1, req); err != nil {
		t.Fatal(err)
	}
	s.CloseSession(0, 1)
	if err := s.OpenSession(0, req); err != nil {
		t.Fatalf("re-open after close failed: %v", err)
	}
	if err := s.OpenSession(0, SessionRequest{FlowID: 9, LadderBps: []float64{}}); err == nil {
		t.Fatal("empty ladder accepted")
	}
}

func TestServerRunBAIEnforcesGBR(t *testing.T) {
	s := serverForTest()
	if err := s.OpenSession(0, SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	gbrs := map[int]float64{}
	pcef := PCEFFunc(func(flowID int, gbr float64) error {
		gbrs[flowID] = gbr
		return nil
	})
	report := StatsReport{
		Flows:        map[int]core.FlowStats{1: {Bytes: 1_000_000, RBs: 50_000}},
		NumDataFlows: 0,
	}
	as, err := s.RunBAI(0, report, pcef)
	if err != nil {
		t.Fatal(err)
	}
	// The flow is alone in an empty cell with a healthy radio report:
	// the unconstrained first BAI places it at the ladder top.
	if len(as) != 1 || as[0].RateBps != 3_000_000 {
		t.Fatalf("first BAI assignments %v", as)
	}
	if gbrs[1] != 3_000_000 {
		t.Fatalf("PCEF got GBR %v", gbrs[1])
	}
	// Polling view matches.
	a, ok := s.Assignment(0, 1)
	if !ok || a.RateBps != 3_000_000 || a.BAISeq != 1 {
		t.Fatalf("Assignment = %+v, %v", a, ok)
	}
	if _, ok := s.Assignment(0, 99); ok {
		t.Fatal("assignment for unknown flow")
	}
	if _, ok := s.Assignment(9, 1); ok {
		t.Fatal("assignment for unknown cell")
	}
}

func TestServerUsesPCRFWhenReportDefers(t *testing.T) {
	s := serverForTest()
	s.PCRF().RegisterDataFlow(0, 100)
	if err := s.OpenSession(0, SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	// NumDataFlows -1 defers to the PCRF; just verify it runs.
	if _, err := s.RunBAI(0, StatsReport{NumDataFlows: -1}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerClimbsOverBAIs(t *testing.T) {
	s := serverForTest()
	if err := s.OpenSession(0, SessionRequest{FlowID: 7, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	report := StatsReport{
		Flows: map[int]core.FlowStats{7: {Bytes: 2_000_000, RBs: 50_000}},
	}
	var last core.Assignment
	for i := 0; i < 40; i++ {
		as, err := s.RunBAI(0, report, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = as[0]
	}
	if last.Level != has.SimLadder().Len()-1 {
		t.Fatalf("flow stuck at level %d", last.Level)
	}
	if times := s.SolveTimes(0); len(times) != 40 {
		t.Fatalf("%d solve times", len(times))
	}
	if times := s.SolveTimes(5); times != nil {
		t.Fatal("solve times for unknown cell")
	}
}

func TestServerSetPreferences(t *testing.T) {
	s := serverForTest()
	if err := s.SetPreferences(0, 1, core.Preferences{}); err == nil {
		t.Fatal("preferences for unknown cell accepted")
	}
	if err := s.OpenSession(0, SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPreferences(0, 1, core.Preferences{MaxBps: 250_000}); err != nil {
		t.Fatal(err)
	}
	report := StatsReport{Flows: map[int]core.FlowStats{1: {Bytes: 2_000_000, RBs: 50_000}}}
	var last core.Assignment
	for i := 0; i < 30; i++ {
		as, err := s.RunBAI(0, report, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = as[0]
	}
	if last.RateBps > 250_000 {
		t.Fatalf("preference cap violated: %v", last.RateBps)
	}
}

// --- HTTP binding ---

func TestHTTPEndToEnd(t *testing.T) {
	s := serverForTest()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	plugin := NewClient(ts.URL, 0, 3, ts.Client())
	if err := plugin.Open(has.SimLadder(), core.Preferences{}); err != nil {
		t.Fatal(err)
	}
	// Duplicate open with the same ladder is idempotent (200 OK).
	if err := plugin.Open(has.SimLadder(), core.Preferences{}); err != nil {
		t.Fatalf("idempotent re-open over HTTP rejected: %v", err)
	}
	// A different ladder conflicts (409) and maps back to the sentinel.
	conflicting := NewClient(ts.URL, 0, 3, ts.Client())
	if err := conflicting.Open(has.Ladder{100_000, 900_000}, core.Preferences{}); !errors.Is(err, ErrSessionConflict) {
		t.Fatalf("conflicting open: err = %v", err)
	}
	// No assignment before the first BAI.
	if _, ok, err := plugin.Poll(); err != nil || ok {
		t.Fatalf("pre-BAI poll: ok=%v err=%v", ok, err)
	}
	// eNB reports stats; the response carries the GBR assignments.
	report := StatsReport{
		Flows: map[int]core.FlowStats{3: {Bytes: 1_000_000, RBs: 50_000}},
	}
	as, err := ReportStats(ts.Client(), ts.URL, 0, report)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].FlowID != 3 {
		t.Fatalf("assignments %v", as)
	}
	// The plugin now sees its assignment.
	a, ok, err := plugin.Poll()
	if err != nil || !ok {
		t.Fatalf("poll failed: ok=%v err=%v", ok, err)
	}
	if a.RateBps <= 0 || a.BAISeq != 1 {
		t.Fatalf("polled assignment %+v", a)
	}
	if err := plugin.Close(); err != nil {
		t.Fatal(err)
	}
	// After close the assignment is gone.
	if _, ok, _ := plugin.Poll(); ok {
		t.Fatal("assignment survived close")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s := serverForTest()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// Non-integer cell.
	resp, err := ts.Client().Post(ts.URL+"/oneapi/v4/cells/abc/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != 400 {
		t.Fatalf("status %d for bad cell", resp.StatusCode)
	}
	// Malformed JSON body.
	resp, err = ts.Client().Post(ts.URL+"/oneapi/v4/cells/0/stats", "application/json",
		nil)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != 400 {
		t.Fatalf("status %d for empty stats body", resp.StatusCode)
	}
	// Empty ladder must 400, not panic: with admission control on, the
	// predicate prices the candidate by its floor rung before Register's
	// validation would catch it.
	cfg := core.DefaultConfig()
	cfg.AdmissionControl = true
	admitting := httptest.NewServer(Handler(NewServer(cfg, nil)))
	defer admitting.Close()
	resp, err = admitting.Client().Post(admitting.URL+"/oneapi/v4/cells/0/sessions",
		"application/json", strings.NewReader(`{"flow_id": 1, "ladder_bps": []}`))
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != 400 {
		t.Fatalf("status %d for empty-ladder open under admission control", resp.StatusCode)
	}
}

func TestServerConcurrentAccess(t *testing.T) {
	s := serverForTest()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cell := i % 2
			if err := s.OpenSession(cell, SessionRequest{FlowID: i, LadderBps: has.SimLadder()}); err != nil {
				t.Error(err)
				return
			}
			report := StatsReport{Flows: map[int]core.FlowStats{i: {Bytes: 100_000, RBs: 10_000}}}
			if _, err := s.RunBAI(cell, report, nil); err != nil {
				t.Error(err)
			}
			s.Assignment(cell, i)
		}(i)
	}
	wg.Wait()
}

func TestHTTPPreferencesUpdate(t *testing.T) {
	s := serverForTest()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	plugin := NewClient(ts.URL, 0, 1, ts.Client())
	// Preferences for an unknown session 404.
	if err := plugin.UpdatePreferences(core.Preferences{MaxBps: 1}); err == nil {
		t.Fatal("preferences for unknown session accepted")
	}
	if err := plugin.Open(has.SimLadder(), core.Preferences{}); err != nil {
		t.Fatal(err)
	}
	if err := plugin.UpdatePreferences(core.Preferences{MaxBps: 250_000}); err != nil {
		t.Fatal(err)
	}
	// The cap binds on the next BAI.
	report := StatsReport{Flows: map[int]core.FlowStats{1: {Bytes: 2_000_000, RBs: 50_000}}}
	var last core.Assignment
	for i := 0; i < 20; i++ {
		as, err := s.RunBAI(0, report, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = as[0]
	}
	if last.RateBps > 250_000 {
		t.Fatalf("HTTP preference cap ignored: %v", last.RateBps)
	}
	// Skimming pins to the floor even with a rich radio.
	if err := plugin.UpdatePreferences(core.Preferences{Skimming: true}); err != nil {
		t.Fatal(err)
	}
	as, err := s.RunBAI(0, report, nil)
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Level != 0 {
		t.Fatalf("skimming session assigned level %d", as[0].Level)
	}
}

func TestHandoverMovesSessionBetweenCells(t *testing.T) {
	s := serverForTest()
	prefs := core.Preferences{MaxBps: 500_000}
	if err := s.OpenSession(0, SessionRequest{FlowID: 7, LadderBps: has.SimLadder(), Preferences: prefs}); err != nil {
		t.Fatal(err)
	}
	report := StatsReport{Flows: map[int]core.FlowStats{7: {Bytes: 1_000_000, RBs: 50_000}}}
	if _, err := s.RunBAI(0, report, nil); err != nil {
		t.Fatal(err)
	}
	// Move the session to cell 1.
	if err := s.Handover(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	// Gone from the source cell.
	if _, ok := s.Assignment(0, 7); ok {
		t.Fatal("assignment survived handover at the source")
	}
	if _, err := s.RunBAI(0, StatsReport{}, nil); err != nil {
		t.Fatal(err)
	}
	// Live in the target cell, preferences intact (the 500k cap binds).
	var last core.Assignment
	for i := 0; i < 10; i++ {
		as, err := s.RunBAI(1, report, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != 1 {
			t.Fatalf("target cell has %d sessions", len(as))
		}
		last = as[0]
	}
	if last.RateBps > 500_000 {
		t.Fatalf("preferences lost in handover: assigned %v", last.RateBps)
	}
	// Error paths.
	if err := s.Handover(9, 1, 7); err == nil {
		t.Fatal("handover from unknown cell accepted")
	}
	if err := s.Handover(1, 0, 99); err == nil {
		t.Fatal("handover of unknown flow accepted")
	}
	// Handover onto a cell where the ID is taken conflicts.
	if err := s.OpenSession(0, SessionRequest{FlowID: 7, LadderBps: has.SimLadder()}); err != nil {
		t.Fatal(err)
	}
	if err := s.Handover(1, 0, 7); err == nil {
		t.Fatal("handover onto an occupied flow ID accepted")
	}
}
