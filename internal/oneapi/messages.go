// Package oneapi implements the coordination overlay between the FLARE
// client plugins, the network (PCRF/PCEF), and the per-cell bitrate
// controller — the role the paper assigns to an OMA OneAPI server.
//
// The server is transport-agnostic: simulations call it in-process, and
// the femtocell testbed binds it to JSON-over-HTTP (see Handler), the
// shape of the OMA RESTful Network API the paper builds on. Clients
// register only their bitrate ladder and optional preferences — never
// the video identity — matching the paper's privacy-minimisation
// principle.
package oneapi

import "github.com/flare-sim/flare/internal/core"

// SessionRequest registers a video flow with the OneAPI server: the
// plugin sends the bitrate ladder parsed from the MPD (with identifying
// metadata removed) and its optional client preferences.
type SessionRequest struct {
	FlowID      int              `json:"flow_id"`
	LadderBps   []float64        `json:"ladder_bps"`
	Preferences core.Preferences `json:"preferences"`
}

// StatsReport is the eNodeB Communication Module's periodic report: the
// per-flow RB/byte accounting for the last BAI plus the PCRF's count of
// concurrent data flows in the cell.
type StatsReport struct {
	Flows        map[int]core.FlowStats `json:"flows"`
	NumDataFlows int                    `json:"num_data_flows"`
}

// StatsResponse carries the enforcement decisions back to the eNodeB:
// the GBR to install per video bearer (the PCEF pathway piggybacked on
// the report exchange).
type StatsResponse struct {
	Assignments []core.Assignment `json:"assignments"`
}

// AssignmentResponse is what a polling plugin receives: its current
// bitrate assignment and the BAI sequence number it was computed in.
type AssignmentResponse struct {
	FlowID  int     `json:"flow_id"`
	RateBps float64 `json:"rate_bps"`
	Level   int     `json:"level"`
	BAISeq  int64   `json:"bai_seq"`
}

// ErrorResponse is the JSON error envelope of the HTTP binding.
type ErrorResponse struct {
	Error string `json:"error"`
}
