// Package oneapi implements the coordination overlay between the FLARE
// client plugins, the network (PCRF/PCEF), and the per-cell bitrate
// controller — the role the paper assigns to an OMA OneAPI server.
//
// The server is transport-agnostic: simulations call it in-process, and
// the femtocell testbed binds it to JSON-over-HTTP (see Handler), the
// shape of the OMA RESTful Network API the paper builds on. Clients
// register only their bitrate ladder and optional preferences — never
// the video identity — matching the paper's privacy-minimisation
// principle.
package oneapi

import "github.com/flare-sim/flare/internal/core"

// SessionRequest registers a video flow with the OneAPI server: the
// plugin sends the bitrate ladder parsed from the MPD (with identifying
// metadata removed) and its optional client preferences.
type SessionRequest struct {
	FlowID      int              `json:"flow_id"`
	LadderBps   []float64        `json:"ladder_bps"`
	Preferences core.Preferences `json:"preferences"`
}

// StatsReport is the eNodeB Communication Module's periodic report: the
// per-flow RB/byte accounting for the last BAI plus the PCRF's count of
// concurrent data flows in the cell.
type StatsReport struct {
	Flows        map[int]core.FlowStats `json:"flows"`
	NumDataFlows int                    `json:"num_data_flows"`
	// Seq, when positive, orders reports from one eNodeB: the server
	// rejects a report whose Seq is not greater than the last accepted
	// one (ErrStaleReport), so a delayed or duplicated report — e.g. a
	// retransmission after a control-plane timeout — cannot rewind the
	// BAI state. Zero means unsequenced (always accepted, the
	// pre-fault-tolerance wire format).
	Seq int64 `json:"seq,omitempty"`
}

// StatsResponse carries the enforcement decisions back to the eNodeB:
// the GBR to install per video bearer (the PCEF pathway piggybacked on
// the report exchange), the BAI sequence the decisions came from, and —
// when the server enforces through its own PCEF — the flows whose GBR
// install failed and kept their previous assignment.
type StatsResponse struct {
	Assignments []core.Assignment    `json:"assignments"`
	BAISeq      int64                `json:"bai_seq,omitempty"`
	Failed      []EnforcementFailure `json:"failed,omitempty"`
}

// AssignmentResponse is what a polling plugin receives: its current
// bitrate assignment, the BAI sequence number it was installed in, and
// the cell's current BAI sequence. A widening CellSeq-BAISeq gap means
// the flow's assignment is going stale (e.g. its PCEF installs keep
// failing) even though the control plane is reachable.
type AssignmentResponse struct {
	FlowID  int     `json:"flow_id"`
	RateBps float64 `json:"rate_bps"`
	Level   int     `json:"level"`
	BAISeq  int64   `json:"bai_seq"`
	CellSeq int64   `json:"cell_seq,omitempty"`
}

// AgeBAIs is how many BAIs have run in the cell since this assignment
// was installed (0 = fresh).
func (a AssignmentResponse) AgeBAIs() int64 {
	if a.CellSeq <= a.BAISeq {
		return 0
	}
	return a.CellSeq - a.BAISeq
}

// ErrorResponse is the JSON error envelope of the HTTP binding. Code is
// machine-readable (see the Code* constants); Error is human-readable.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// HandoverRequest asks the server to move a live session into another
// cell (the session and source cell are in the URL path).
type HandoverRequest struct {
	ToCell int `json:"to_cell"`
}

// BatchStatsRequest carries many cells' statistics reports in one POST
// — the aggregation-site wire format. The server fans the BAI rounds
// across its worker pool (RunBAIRounds).
type BatchStatsRequest struct {
	Reports []CellReport `json:"reports"`
}

// BatchStatsResult is one cell's outcome in a batched stats exchange.
// Per-cell failures ride inside the 200 envelope — Error/Code are set
// and the embedded response empty — so one stale cell cannot fail its
// neighbours' rounds.
type BatchStatsResult struct {
	CellID int `json:"cell_id"`
	StatsResponse
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// BatchStatsResponse is the reply to a BatchStatsRequest, results in
// request order.
type BatchStatsResponse struct {
	Results []BatchStatsResult `json:"results"`
}
