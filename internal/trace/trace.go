// Package trace generates synthetic per-UE link-quality traces — the
// "trace based model" row of the paper's Table III. The authors replay
// recorded LTE bandwidth traces in ns-3; we synthesise traces with the
// same statistical texture (bounded random walk, correlated dwell times,
// occasional deep fades) so the trace-driven scenarios exercise the same
// code paths.
package trace

import (
	"fmt"

	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/sim"
)

// Profile shapes the synthetic trace statistics.
type Profile struct {
	// MinITbs and MaxITbs bound the walk.
	MinITbs, MaxITbs int
	// StepStdev is the per-step Gaussian step size in iTbs units.
	StepStdev float64
	// FadeProbability is the per-step chance of entering a deep fade.
	FadeProbability float64
	// FadeDepth is how many iTbs levels a fade subtracts.
	FadeDepth int
	// FadeSteps is the fade duration in steps.
	FadeSteps int
}

// Pedestrian returns a slowly varying profile (walking users).
func Pedestrian() Profile {
	return Profile{
		MinITbs: 4, MaxITbs: 24,
		StepStdev:       0.6,
		FadeProbability: 0.005,
		FadeDepth:       6,
		FadeSteps:       4,
	}
}

// Vehicular returns a rapidly varying profile (the paper's mobile
// scenario texture: vehicles crossing coverage transitions).
func Vehicular() Profile {
	return Profile{
		MinITbs: 0, MaxITbs: 26,
		StepStdev:       1.8,
		FadeProbability: 0.02,
		FadeDepth:       10,
		FadeSteps:       6,
	}
}

func (p Profile) validate() error {
	minI, maxI := lte.ClampITbs(p.MinITbs), lte.ClampITbs(p.MaxITbs)
	if minI > maxI {
		return fmt.Errorf("trace: min iTbs %d above max %d", p.MinITbs, p.MaxITbs)
	}
	if p.StepStdev < 0 {
		return fmt.Errorf("trace: negative step stdev %v", p.StepStdev)
	}
	if p.FadeProbability < 0 || p.FadeProbability > 1 {
		return fmt.Errorf("trace: fade probability %v out of [0,1]", p.FadeProbability)
	}
	return nil
}

// Generate produces one iTbs trace of n steps under the profile, using
// its own stream split from rng.
func Generate(p Profile, n int, rng *sim.RNG) ([]int, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: non-positive length %d", n)
	}
	r := rng.Split()
	minI, maxI := lte.ClampITbs(p.MinITbs), lte.ClampITbs(p.MaxITbs)
	span := maxI - minI

	out := make([]int, n)
	level := float64(minI) + r.Float64()*float64(span)
	fadeLeft := 0
	for i := 0; i < n; i++ {
		level += r.Norm(0, p.StepStdev)
		if level < float64(minI) {
			level = float64(minI)
		}
		if level > float64(maxI) {
			level = float64(maxI)
		}
		v := int(level + 0.5)
		if fadeLeft == 0 && p.FadeProbability > 0 && r.Float64() < p.FadeProbability {
			fadeLeft = p.FadeSteps
		}
		if fadeLeft > 0 {
			fadeLeft--
			v -= p.FadeDepth
			if v < minI {
				v = minI
			}
		}
		out[i] = v
	}
	return out, nil
}

// GenerateSet produces one trace per UE, each from an independent stream.
func GenerateSet(p Profile, numUEs, n int, rng *sim.RNG) ([][]int, error) {
	if numUEs <= 0 {
		return nil, fmt.Errorf("trace: non-positive UE count %d", numUEs)
	}
	out := make([][]int, numUEs)
	for u := range out {
		tr, err := Generate(p, n, rng)
		if err != nil {
			return nil, err
		}
		out[u] = tr
	}
	return out, nil
}
