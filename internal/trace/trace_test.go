package trace

import (
	"testing"

	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/sim"
)

func TestGenerateBounds(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, p := range []Profile{Pedestrian(), Vehicular()} {
		tr, err := Generate(p, 5000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr) != 5000 {
			t.Fatalf("length %d", len(tr))
		}
		for i, v := range tr {
			if v < lte.MinITbs || v > lte.MaxITbs {
				t.Fatalf("step %d out of range: %d", i, v)
			}
			if v < p.MinITbs-p.FadeDepth || v > p.MaxITbs {
				t.Fatalf("step %d outside profile: %d", i, v)
			}
		}
	}
}

func TestGenerateVaries(t *testing.T) {
	tr, err := Generate(Vehicular(), 2000, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range tr {
		seen[v] = true
	}
	if len(seen) < 8 {
		t.Fatalf("vehicular trace too flat: %d distinct values", len(seen))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Pedestrian(), 100, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Pedestrian(), 100, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Generate(Profile{MinITbs: 10, MaxITbs: 2}, 10, rng); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := Generate(Profile{StepStdev: -1}, 10, rng); err == nil {
		t.Error("negative stdev accepted")
	}
	if _, err := Generate(Profile{FadeProbability: 2}, 10, rng); err == nil {
		t.Error("bad probability accepted")
	}
	if _, err := Generate(Pedestrian(), 0, rng); err == nil {
		t.Error("zero length accepted")
	}
}

func TestGenerateSet(t *testing.T) {
	set, err := GenerateSet(Vehicular(), 4, 500, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("%d traces", len(set))
	}
	// Traces must be mutually distinct.
	same := 0
	for i := 0; i < 500; i++ {
		if set[0][i] == set[1][i] {
			same++
		}
	}
	if same > 250 {
		t.Fatalf("traces too correlated: %d/500 equal steps", same)
	}
	if _, err := GenerateSet(Vehicular(), 0, 10, sim.NewRNG(1)); err == nil {
		t.Error("zero UEs accepted")
	}
}
