package lint_test

import (
	"strings"
	"testing"
	"unicode"

	"github.com/flare-sim/flare/internal/lint"
)

// FuzzDirective fuzzes the directive grammar shared by the runner, the
// stale-waiver audit, and the suppression filter. Invariants:
//
//   - ParseDirective never panics, whatever bytes arrive;
//   - a bare //flare:allow (no reason, or reason not separated by a
//     space) is always malformed and never yields a reason;
//   - a malformed or non-allow parse never returns reason text;
//   - well-formed reasons survive a FormatAllow round-trip verbatim.
func FuzzDirective(f *testing.F) {
	seeds := []string{
		"//flare:allow fixture: keys are sorted on the next line",
		"//flare:allow",
		"//flare:allow ",
		"//flare:allow\tno leading space",
		"//flare:allowx not a directive",
		"//flare:hotpath",
		"//flare:hotpath with a trailing note",
		"// ordinary comment",
		"/* block comment */",
		"",
		"//flare:allow reason with // nested markers /* and */ inside",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		kind, reason, malformed := lint.ParseDirective(text)

		if kind == lint.DirectiveNone || malformed {
			if reason != "" {
				t.Fatalf("ParseDirective(%q) = kind %v, malformed %v, but leaked reason %q", text, kind, malformed, reason)
			}
		}
		if strings.HasPrefix(text, "//flare:allow") && kind != lint.DirectiveAllow {
			t.Fatalf("ParseDirective(%q) did not classify an allow-prefixed comment (got kind %v)", text, kind)
		}
		if kind == lint.DirectiveAllow && !malformed {
			if reason == "" {
				t.Fatalf("ParseDirective(%q) = well-formed allow with empty reason", text)
			}
			if strings.TrimSpace(reason) != reason {
				t.Fatalf("ParseDirective(%q) returned untrimmed reason %q", text, reason)
			}
		}
		if text == "//flare:allow" || text == "//flare:allow " || text == "//flare:allow\t" {
			if !malformed {
				t.Fatalf("ParseDirective(%q): bare allow must be malformed", text)
			}
		}

		// Round-trip: any trimmed, newline-free, non-empty reason must
		// come back verbatim through FormatAllow.
		rt := strings.TrimFunc(text, unicode.IsSpace)
		if rt != "" && !strings.ContainsAny(rt, "\n\r") {
			kind2, reason2, malformed2 := lint.ParseDirective(lint.FormatAllow(rt))
			if kind2 != lint.DirectiveAllow || malformed2 || reason2 != rt {
				t.Fatalf("round-trip failed for reason %q: kind %v, malformed %v, reason %q", rt, kind2, malformed2, reason2)
			}
		}
	})
}
