package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
	"github.com/flare-sim/flare/internal/lint/linttest"
)

// TestDeterminism covers the three forbidden constructs (map range,
// time.Now/Since, global math/rand), the reasoned allow waiver, the
// non-suppressing bare allow, and the seeded-generator escape hatch.
func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/determinism", "fixture/determinism", lint.Determinism)
}

// TestDeterminismScope pins the package-selection rule: determinism is
// in the suite for sim-clock packages and absent everywhere else.
func TestDeterminismScope(t *testing.T) {
	for _, path := range []string{
		lint.ModulePath + "/internal/cellsim",
		lint.ModulePath + "/internal/cellsim/driver",
		lint.ModulePath + "/internal/core",
		lint.ModulePath + "/internal/lte",
		lint.ModulePath + "/internal/sim",
		lint.ModulePath + "/internal/transport",
		lint.ModulePath + "/internal/has",
	} {
		if !hasAnalyzer(lint.AnalyzersFor(path), "determinism") {
			t.Errorf("determinism missing for sim-clock package %s", path)
		}
	}
	for _, path := range []string{
		lint.ModulePath + "/internal/oneapi", // live HTTP server: wall clock is its job
		lint.ModulePath + "/internal/obs",
		lint.ModulePath + "/cmd/flarevet",
	} {
		if hasAnalyzer(lint.AnalyzersFor(path), "determinism") {
			t.Errorf("determinism wrongly applied to wall-clock package %s", path)
		}
	}
}

func hasAnalyzer(as []*lint.Analyzer, name string) bool {
	for _, a := range as {
		if a.Name == name {
			return true
		}
	}
	return false
}
