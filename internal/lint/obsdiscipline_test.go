package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
	"github.com/flare-sim/flare/internal/lint/linttest"
)

// TestObsDiscipline: outside internal/obs, Event composite literals
// (value and pointer) are flagged; constructors, container literals,
// and a reasoned allow are not.
func TestObsDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/obsdiscipline", "fixture/obsdiscipline", lint.ObsDiscipline)
}

// TestObsDisciplineAllowedSubtree: the same construct is legal when the
// package lives inside the internal/obs subtree (the fixture has no
// want comments, so any diagnostic fails the test).
func TestObsDisciplineAllowedSubtree(t *testing.T) {
	linttest.Run(t, "testdata/obsdiscipline_allowed",
		lint.ObsPackage+"/fixture", lint.ObsDiscipline)
}
