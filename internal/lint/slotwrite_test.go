package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
	"github.com/flare-sim/flare/internal/lint/linttest"
)

// TestSlotWrite co-runs determinism and slotwrite, as the sim-clock
// suite does: the //flare:allow on a worker-pool go statement is
// consumed by the determinism finding it waives, and the same waiver
// marks the goroutine body as a slot-checked scope. The fixture covers
// both scopes (RunRange methods, waived-go bodies including a static
// callee), sanctioned input-index stores, offset/counter/constant
// violations, and scope-local slices.
func TestSlotWrite(t *testing.T) {
	linttest.Run(t, "testdata/slotwrite", "fixture/slotfix",
		lint.Determinism, lint.SlotWrite)
}
