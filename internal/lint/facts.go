// The fact store: cross-package state shared by one analysis session.
//
// The loader type-checks packages in dependency order and reuses the
// in-session *types.Package for every import edge, so a *types.Func
// seen at a call site in package P IS the object the summarizer saw
// when it processed P's dependency earlier. That identity is what lets
// per-function facts (hotpath allocation summaries, seed-sink
// parameters) flow from callee packages to caller packages without any
// serialization: the store is just maps keyed by the objects
// themselves. This mirrors x/tools' analysis.Fact machinery, collapsed
// to the single-process case flarevet always runs in.
//
// The store also merges every package's //flare:allow directives into
// one index. Two things depend on that being session-global rather
// than per-package: transitive hotpath findings are positioned at the
// callee's site — possibly in an earlier-loaded package — and must be
// suppressible by a waiver in THAT file; and the stale-waiver check
// can only run once every package has had the chance to consume every
// directive.
package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// A FactStore accumulates cross-package analysis state for one session
// (one cmd/flarevet invocation, one tree test, one fixture run). Create
// it with NewFactStore, thread it through RunWithFacts for every
// package in dependency order, then harvest StaleWaivers.
type FactStore struct {
	// dirs indexes every reasoned //flare:allow in the session, with
	// consumption bits. Files are unique across packages, so merging
	// is plain map union.
	dirs directives
	// summaries holds the hotpath allocation summary of every function
	// the session has analyzed, hot or not (hot roots DFS through
	// them).
	summaries map[*types.Func]*hotSummary
	// seedSinks marks parameter indices that a function forwards into
	// an RNG constructor: call sites must pass config-seed-derived
	// arguments there.
	seedSinks map[*types.Func]map[int]bool
	// reported dedupes findings that several roots can reach (two
	// hotpath roots sharing a helper report its defer once).
	reported map[string]bool
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		dirs: directives{
			allowLines: make(map[string]map[int]*allowSite),
		},
		summaries: make(map[*types.Func]*hotSummary),
		seedSinks: make(map[*types.Func]map[int]bool),
		reported:  make(map[string]bool),
	}
}

// mergeDirectives folds one package's directive index into the session
// index.
func (s *FactStore) mergeDirectives(d *directives) {
	for file, lines := range d.allowLines {
		dst := s.dirs.allowLines[file]
		if dst == nil {
			dst = make(map[int]*allowSite, len(lines))
			s.dirs.allowLines[file] = dst
		}
		for line, site := range lines {
			dst[line] = site
		}
	}
}

// claimReport reserves a (analyzer, position) report slot, returning
// false if an earlier pass already reported there.
func (s *FactStore) claimReport(analyzer string, pos token.Position) bool {
	key := fmt.Sprintf("%s|%s:%d:%d", analyzer, pos.Filename, pos.Line, pos.Column)
	if s.reported[key] {
		return false
	}
	s.reported[key] = true
	return true
}

// addSeedSink records that callers of fn must pass a config-seed-
// derived value as parameter param. Returns true if the fact is new.
func (s *FactStore) addSeedSink(fn *types.Func, param int) bool {
	m := s.seedSinks[fn]
	if m == nil {
		m = make(map[int]bool)
		s.seedSinks[fn] = m
	}
	if m[param] {
		return false
	}
	m[param] = true
	return true
}

// StaleWaivers returns one finding per //flare:allow directive that no
// analyzer consumed during the session: a waiver that suppresses
// nothing documents a hazard that no longer exists, and its reason —
// written for a different line of code — misleads the next reader.
// Call it only after every package of the session has been analyzed
// (narrow pattern runs skip it: the consuming finding may live in a
// package the pattern did not select).
//
// Stale findings are deliberately exempt from //flare:allow
// suppression — the fix is deleting the directive, not waiving the
// waiver.
func (s *FactStore) StaleWaivers() []Diagnostic {
	var out []Diagnostic
	for _, lines := range s.dirs.allowLines {
		for _, site := range lines {
			if site.used {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      site.pos,
				Analyzer: "directive",
				Message: fmt.Sprintf("stale //flare:allow (%s): no finding is suppressed here; delete the directive or restore the code it excused",
					site.reason),
			})
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
