// Package hasfix is loaded under the import path
// github.com/flare-sim/flare/internal/has/fixture, so the REAL
// LayerRules table applies: the has subtree must not import obs.
package hasfix

import (
	"github.com/flare-sim/flare/internal/obs" // want `must not import github.com/flare-sim/flare/internal/obs`
)

var _ = obs.KindClamp
