// Package hotfix exercises the hotpath analyzer: all four forbidden
// constructs inside an annotated function, the same constructs passing
// in an unannotated one, a reasoned waiver, and a stray directive.
package hotfix

import "fmt"

func cleanup() {}

// tick carries the annotation, so everything below is flagged.
//
//flare:hotpath
func tick(names []string) string {
	defer cleanup() // want `defer in //flare:hotpath function tick`
	total := 0
	joined := ""
	for _, n := range names {
		joined += n // want `string concatenation in loop`
		total += len(n)
	}
	fmt.Println(total)               // want `fmt.Println in //flare:hotpath function tick`
	f := func() int { return total } // want `capturing closure in //flare:hotpath function tick \(captures total\)`
	_ = f
	return joined
}

// clean is annotated but uses only permitted forms: a non-capturing
// closure and concatenation outside any loop.
//
//flare:hotpath
func clean(xs []int, prefix, suffix string) string {
	g := func(a, b int) int { return a + b }
	s := 0
	for _, x := range xs {
		s = g(s, x)
	}
	_ = s
	return prefix + suffix
}

// notHot has no annotation: the same constructs draw no findings.
func notHot(names []string) string {
	defer cleanup()
	out := ""
	for _, n := range names {
		out += n
	}
	fmt.Println(out)
	return out
}

// withWaiver shows a reasoned allow inside a hotpath function.
//
//flare:hotpath
func withWaiver() {
	//flare:allow fixture: guards a once-per-run unlock, not per-tick work
	defer cleanup()
}

/* want "flare:hotpath must appear in a function declaration's doc comment" */ //flare:hotpath
var strayTarget = 0

var (
	_ = tick
	_ = clean
	_ = notHot
	_ = withWaiver
	_ = strayTarget
)
