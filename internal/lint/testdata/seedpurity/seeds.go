// Package seedfix exercises the seedpurity analyzer: wall-clock and
// process-identity seeds (flagged at the source), package-level RNG
// state, RNGs escaping into go statements, seed-sink propagation
// through in-package helpers, and the pure forms — Config-seed
// ancestry mixed with arbitrary indices, seed-named derivation
// functions, constants, and draws from an already-seeded RNG.
package seedfix

import (
	"math/rand"
	"os"
	"time"
)

// Config carries the run's declared seed.
type Config struct {
	Seed int64
}

// globalRNG is package-level RNG state: flagged regardless of how it
// was seeded.
var globalRNG = rand.New(rand.NewSource(7)) // want `package-level RNG globalRNG`

// wallSeed is the classic time.Now().UnixNano() seed.
func wallSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time.Now\(\) seeds NewSource: sim-clock RNGs must be seeded from a Config/spec seed, never time.Now\(\)`
}

// pidSeed seeds from process identity; the conversion is transparent.
func pidSeed() *rand.Rand {
	return rand.New(rand.NewSource(int64(os.Getpid()))) // want `os.Getpid\(\) seeds NewSource`
}

// pureMix is the sanctioned shape: the config seed xor'd with any
// index is still seed-derived.
func pureMix(cfg Config, cell int) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed ^ int64(cell)))
}

// constSeed is pure: an all-constant expression.
func constSeed() rand.Source {
	return rand.NewSource(40*1000 + 2)
}

// runSeed is a seed-named derivation: callers of NewSource(runSeed(..))
// are pure, whatever they pass in.
func runSeed(run, cell int) int64 {
	return int64(run*1000003 + cell)
}

func derivedSeed() rand.Source {
	return rand.NewSource(runSeed(3, 4))
}

// splitRNG draws the child seed from an already-threaded RNG.
func splitRNG(parent *rand.Rand) rand.Source {
	return rand.NewSource(parent.Int63())
}

// newWorker forwards its salt into a constructor: salt becomes a seed
// sink, and every call site is checked instead.
func newWorker(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(salt))
}

// spawnPure feeds the sink from the config seed: clean.
func spawnPure(cfg Config) *rand.Rand {
	return newWorker(cfg.Seed + 1)
}

// spawnWall feeds the sink from the wall clock: the trace through
// newWorker catches it.
func spawnWall() *rand.Rand {
	return newWorker(time.Now().UnixNano()) // want `time.Now\(\) seeds newWorker`
}

// counter is an opaque in-package value source (not seed-named, not an
// RNG draw).
func counter() int64 { return 1 }

// spawnOpaque feeds the sink from a local with no seed ancestry.
func spawnOpaque() *rand.Rand {
	v := counter()
	return newWorker(v) // want `seed for newWorker has no Config-seed ancestry \(depends on counter\(\.\.\.\)\); thread the run/cell seed here`
}

// fanOut shares one RNG across a goroutine: goroutines draw in
// scheduler order, so the fan-out must split first.
func fanOut(r *rand.Rand, out chan<- int64) {
	go func() {
		out <- r.Int63() // want `RNG r escapes into a go statement`
	}()
}

var (
	_ = globalRNG
	_ = wallSeed
	_ = pidSeed
	_ = pureMix
	_ = constSeed
	_ = derivedSeed
	_ = splitRNG
	_ = spawnPure
	_ = spawnWall
	_ = spawnOpaque
	_ = fanOut
)
