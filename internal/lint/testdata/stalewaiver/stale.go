// Package stalefix exercises the stale-waiver audit: a //flare:allow
// that suppresses a live finding is consumed and healthy; one that
// suppresses nothing (the code it excused was deleted or moved) is
// itself a finding, so waivers cannot silently outlive their reasons.
package stalefix

func cleanup() {}

// consumed: the waiver excuses the defer finding below it.
//
//flare:hotpath
func withWaiver() {
	//flare:allow fixture: guards a once-per-run teardown, not per-tick work
	defer cleanup()
}

// orphaned: nothing is reported at the line below this waiver.
func calm() int {
	/* want `stale //flare:allow \(fixture: this excused a finding that no longer exists\): no finding is suppressed here` */ //flare:allow fixture: this excused a finding that no longer exists
	return 1
}

var (
	_ = withWaiver
	_ = calm
)
