// Package obsfix exercises the obsdiscipline analyzer outside the
// internal/obs subtree: literals are flagged, constructors and
// container literals are not, and a reasoned allow waives.
package obsfix

import "github.com/flare-sim/flare/internal/obs"

func build(cell, flow int32) []obs.Event {
	bad := obs.Event{Kind: obs.KindInstall, Cell: cell, Flow: flow} // want `obs.Event literal outside`
	ptr := &obs.Event{Kind: obs.KindDeliver}                       // want `obs.Event literal outside`
	good := obs.Install(cell, flow, 1, 3, 2.5e6)
	//flare:allow fixture: demonstrates a reasoned waiver
	waived := obs.Event{Kind: obs.KindStale}
	// A slice literal OF events is not an Event literal.
	return []obs.Event{bad, *ptr, good, waived}
}

var _ = build
