// Package slotfix exercises the slotwrite analyzer in both scopes:
// RunRange(lo, hi int) methods (the sim.RangeRunner contract) and the
// body of a //flare:allow-waived go statement (the worker-pool
// fan-out). Sanctioned stores index a shared slice by the input-index
// variable, bare; offset indices, private counters, and constant slots
// are findings; scope-local slices are free.
package slotfix

// phase is a RangeRunner-shaped worker over shared input/output.
type phase struct {
	in  []float64
	out []float64
}

// RunRange is the checked scope: i over [lo, hi) is the only
// sanctioned index into shared slices.
func (p *phase) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		p.out[i] = 2 * p.in[i]
	}
	for i := lo; i < hi; i++ {
		p.out[i+1] = p.in[i] // want `shared-slice store p.out\[i\+1\] in a RunRange indexes by i\+1, not the input-index variable`
	}
	j := 0
	for i := lo; i < hi; i++ {
		p.out[j] = p.in[i] // want `shared-slice store p.out\[j\] in a RunRange indexes by j`
		j++
	}
	p.out[0] = 0 // want `shared-slice store p.out\[0\] in a RunRange indexes by 0`
	scratch := make([]float64, hi)
	for i := lo; i < hi; i++ {
		scratch[0] += p.in[i] // scope-local: private, any index is fine
	}
}

// RunRange on a second runner with a <= bound is still sanctioned.
type inclusivePhase struct {
	out []int
}

func (p *inclusivePhase) RunRange(lo, hi int) {
	for i := lo; i <= hi; i++ {
		p.out[i] = i
	}
}

// notRunRange has the wrong shape (one param): not a checked scope.
func (p *phase) notRunRange(lo int) {
	p.out[0] = 1
}

// fanOut is the waived-go worker-pool shape: the goroutine ranges over
// a job channel, and the channel key is the sanctioned index.
func fanOut(jobs chan int, results []float64, weights []float64) {
	//flare:allow fixture: worker-pool fan-out — each worker owns the result slot of the job index it is handed, and the caller folds in index order
	go func() {
		var acc float64
		for i := range jobs {
			results[i] = weights[i] * 2
			acc += weights[i]
			results[i+1] = acc // want `shared-slice store results\[i\+1\] in a worker goroutine indexes by i\+1`
		}
	}()
}

// namedWorker shows the static-callee form: go worker(...) follows the
// declaration, so the worker body is in scope too.
func namedWorker(jobs chan int, results []float64) {
	//flare:allow fixture: worker-pool fan-out — slot writes are checked in the worker body below
	go worker(jobs, results)
}

func worker(jobs chan int, results []float64) {
	local := make([]float64, 4)
	for i := range jobs {
		results[i] = 1
		local[3] = 2 // scope-local
		results[3] = 3 // want `shared-slice store results\[3\] in a worker goroutine indexes by 3`
	}
}

// unwaivedGo is not a checked scope for slotwrite (no waiver); the go
// statement itself is the determinism analyzer's finding.
func unwaivedGo(results []float64) {
	go func() { // want `go statement spawns scheduler-ordered work`
		results[0] = 1
	}()
}

var (
	_ = (&phase{}).RunRange
	_ = (&inclusivePhase{}).RunRange
	_ = (&phase{}).notRunRange
	_ = fanOut
	_ = namedWorker
	_ = worker
	_ = unwaivedGo
)
