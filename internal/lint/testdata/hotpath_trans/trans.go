// Package hottrans exercises hotpath v2: budgets propagate through the
// static call graph (a helper's defer is reported at the helper, with
// the chain from the annotated root), interface calls at the frontier
// are opaque unless waived, in-loop map/slice literals allocate per
// iteration, findings reachable from two roots are reported once, and
// helpers not reachable from any annotated root stay silent.
package hottrans

func cleanup() {}

// helperDefer is clean in isolation; it is flagged only because an
// annotated root reaches it.
func helperDefer() {
	defer cleanup() // want `defer in helperDefer, reachable from //flare:hotpath function tick via mid -> helperDefer`
}

// mid is the intermediate hop: no sites of its own.
func mid() {
	helperDefer()
}

//flare:hotpath
func tick() {
	mid()
}

// tick2 reaches the same helper; the finding is claimed once (by
// tick's walk), so this root adds nothing.
//
//flare:hotpath
func tick2() {
	mid()
}

// unreached has the same defer but no annotated caller: silent.
func unreached() {
	defer cleanup()
}

// Stepper is the interface frontier.
type Stepper interface {
	Step()
}

//flare:hotpath
func drive(s Stepper) {
	s.Step() // want `opaque interface call hottrans.Stepper.Step in //flare:hotpath function drive: the allocation budget cannot follow it`
}

//flare:hotpath
func driveWaived(s Stepper) {
	//flare:allow fixture: the only Step impl is a field increment; the driver benchmark gates it
	s.Step()
}

// litLoop allocates a map literal per iteration.
//
//flare:hotpath
func litLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := map[int]int{i: i} // want `map literal in loop in //flare:hotpath function litLoop allocates per iteration`
		total += len(m)
	}
	return total
}

// sliceHelper's in-loop slice literal is transitive, two hops down.
func sliceHelper(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		s := []int{i} // want `slice literal in loop in sliceHelper allocates per iteration, reachable from //flare:hotpath function sweep via sliceHelper`
		total += len(s)
	}
	return total
}

//flare:hotpath
func sweep(n int) int {
	return sliceHelper(n)
}

var (
	_ = tick
	_ = tick2
	_ = unreached
	_ = drive
	_ = driveWaived
	_ = litLoop
	_ = sweep
)
