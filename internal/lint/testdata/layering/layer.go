// Package layerfix exercises the layering analyzer under a
// fixture-local ruleset (see layering_test.go) that forbids this
// package from importing errors and os.
package layerfix

import (
	"errors" // want `must not import errors`
	"sort"

	//flare:allow fixture: demonstrates a reasoned waiver on a forbidden import
	"os"
)

var (
	_ = errors.New
	_ = sort.Ints
	_ = os.Getpid
)
