// Package determfix exercises the determinism analyzer: the three
// forbidden constructs, the reasoned //flare:allow waiver, and the rule
// that a bare (reasonless) allow suppresses nothing and is itself a
// finding.
package determfix

import (
	"math/rand"
	"sort"
	"time"
)

// mapRange feeds unordered iteration straight into its result.
func mapRange(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `range over map`
		sum += v
	}
	return sum
}

// sortedKeys is the canonical safe pattern: collect, then sort. The
// reasoned allow on the line above the range suppresses the finding.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//flare:allow fixture: keys are sorted on the next line, iteration order never escapes
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// bareAllow shows that an allow without a reason is rejected AND does
// not suppress the finding below it.
func bareAllow(m map[string]int) {
	/* want "flare:allow requires a reason" */ //flare:allow
	for range m { // want `range over map`
	}
}

// wallClock reads real time twice.
func wallClock() time.Duration {
	start := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(start) // want `time.Since reads the wall clock`
}

//flare:allow fixture: observational only, the value never reaches sim state
var bootTime = time.Now()

// globalRand draws from the shared source.
func globalRand() int {
	return rand.Intn(6) // want `global math/rand.Intn`
}

// seededRand owns its generator: constructors and methods are fine.
func seededRand() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}

var (
	_ = mapRange
	_ = sortedKeys
	_ = bareAllow
	_ = wallClock
	_ = bootTime
	_ = globalRand
	_ = seededRand
)
