// Package determfix exercises the determinism analyzer: the forbidden
// constructs (map range, wall clock, global rand, and the concurrency
// trio — go statements, sync/atomic mutations, sync.Map), the reasoned
// //flare:allow waiver, and the rule that a bare (reasonless) allow
// suppresses nothing and is itself a finding.
package determfix

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// mapRange feeds unordered iteration straight into its result.
func mapRange(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `range over map`
		sum += v
	}
	return sum
}

// sortedKeys is the canonical safe pattern: collect, then sort. The
// reasoned allow on the line above the range suppresses the finding.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//flare:allow fixture: keys are sorted on the next line, iteration order never escapes
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// bareAllow shows that an allow without a reason is rejected AND does
// not suppress the finding below it.
func bareAllow(m map[string]int) {
	/* want "flare:allow requires a reason" */ //flare:allow
	for range m { // want `range over map`
	}
}

// wallClock reads real time twice.
func wallClock() time.Duration {
	start := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(start) // want `time.Since reads the wall clock`
}

//flare:allow fixture: observational only, the value never reaches sim state
var bootTime = time.Now()

// globalRand draws from the shared source.
func globalRand() int {
	return rand.Intn(6) // want `global math/rand.Intn`
}

// seededRand owns its generator: constructors and methods are fine.
func seededRand() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}

// spawn is an unannotated goroutine: its work lands in scheduler
// order, so the analyzer demands the fixed-reduction-order argument.
func spawn(ch chan int) {
	go func() { ch <- 1 }() // want `go statement spawns scheduler-ordered work`
}

// orderedSpawn carries that argument and is waived.
func orderedSpawn(out []int) {
	done := make(chan struct{})
	//flare:allow fixture: the goroutine writes only index 0 and the caller folds slots in index order after <-done
	go func() {
		out[0] = 1
		close(done)
	}()
	<-done
}

// atomicReduce accumulates concurrently: package function and typed
// method forms are both unordered reductions. Plain loads are not
// flagged — a racy read is the writer's finding.
func atomicReduce(word *int64, ctr *atomic.Int64) int64 {
	atomic.AddInt64(word, 1) // want `sync/atomic.AddInt64 is an unordered concurrent reduction`
	ctr.Store(2)             // want `sync/atomic.Store is an unordered concurrent reduction`
	return ctr.Load() + atomic.LoadInt64(word)
}

// concurrentMap uses sync.Map, which has no deterministic order.
func concurrentMap(m *sync.Map) {
	m.Store("k", 1) // want `sync.Map.Store has no deterministic order`
	m.Range(func(k, v any) bool { // want `sync.Map.Range has no deterministic order`
		return true
	})
}

var (
	_ = mapRange
	_ = sortedKeys
	_ = bareAllow
	_ = wallClock
	_ = bootTime
	_ = globalRand
	_ = seededRand
	_ = spawn
	_ = orderedSpawn
	_ = atomicReduce
	_ = concurrentMap
)
