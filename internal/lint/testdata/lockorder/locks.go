// Package lockfix exercises the lockorder analyzer under a
// fixture-local rank table mirroring the control plane's hierarchy:
// regMu (50) > Server.optMu (30) > Shard.mu (20) > Cell.mu (10).
// It covers descending acquisition (clean), direct inversion, the
// equal-rank Handover shape (flagged, and waived when the code imposes
// a global order itself), transitive acquisition through a helper,
// deferred unlocks holding to exit, fresh goroutine held-sets, and
// closures inheriting the definition point's held-set.
package lockfix

import "sync"

// regMu is a package-level mutex (rank 50, outermost).
var regMu sync.Mutex

// Cell is the innermost lock owner (rank 10).
type Cell struct {
	mu   sync.Mutex
	load int
}

// Shard sits above cells (rank 20).
type Shard struct {
	mu    sync.Mutex
	cells map[int]*Cell
}

// Server owns the outer optimizer lock (rank 30).
type Server struct {
	optMu  sync.Mutex
	shards []*Shard
}

// ordered acquires strictly descending ranks: clean.
func ordered(s *Server, sh *Shard, c *Cell) {
	regMu.Lock()
	s.optMu.Lock()
	sh.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	sh.mu.Unlock()
	s.optMu.Unlock()
	regMu.Unlock()
}

// inverted takes the shard lock while holding a cell lock.
func inverted(sh *Shard, c *Cell) {
	c.mu.Lock()
	sh.mu.Lock() // want `lock order inversion in inverted: acquiring lockfix.Shard.mu \(rank 20\) while holding lockfix.Cell.mu \(rank 10\)`
	sh.mu.Unlock()
	c.mu.Unlock()
}

// globalInverted takes the package-level mutex innermost.
func globalInverted(c *Cell) {
	c.mu.Lock()
	regMu.Lock() // want `acquiring lockfix.regMu \(rank 50\) while holding lockfix.Cell.mu \(rank 10\)`
	regMu.Unlock()
	c.mu.Unlock()
}

// handover locks two equal-rank cells with no declared order: the
// AB-BA shape two concurrent handovers deadlock on.
func handover(a, b *Cell) {
	a.mu.Lock()
	b.mu.Lock() // want `acquiring lockfix.Cell.mu \(rank 10\) while holding lockfix.Cell.mu \(rank 10\)`
	a.load, b.load = b.load, a.load
	b.mu.Unlock()
	a.mu.Unlock()
}

// handoverOrdered is the sanctioned version: the caller guarantees
// a global order and says so, which waives the equal-rank finding.
func handoverOrdered(first, second *Cell) {
	first.mu.Lock()
	//flare:allow fixture: equal-rank by design — callers pass cells in global ID order, so concurrent handovers cannot form a cycle
	second.mu.Lock()
	first.load, second.load = second.load, first.load
	second.mu.Unlock()
	first.mu.Unlock()
}

// grabShard is clean in isolation; it only matters who calls it.
func grabShard(sh *Shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.cells = nil
}

// under calls grabShard while holding a cell lock: the inversion is
// transitive, reported at the call site.
func under(sh *Shard, c *Cell) {
	c.mu.Lock()
	grabShard(sh) // want `call to grabShard acquires lockfix.Shard.mu \(rank 20\) while holding lockfix.Cell.mu \(rank 10\)`
	c.mu.Unlock()
}

// deferHeld shows a deferred unlock keeps the class held to exit.
func deferHeld(sh *Shard, c *Cell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh.mu.Lock() // want `acquiring lockfix.Shard.mu \(rank 20\) while holding lockfix.Cell.mu \(rank 10\)`
	sh.mu.Unlock()
}

// releasedEarly unlocks before taking the higher rank: clean.
func releasedEarly(sh *Shard, c *Cell) {
	c.mu.Lock()
	c.mu.Unlock()
	sh.mu.Lock()
	sh.mu.Unlock()
}

// goFresh spawns a goroutine while holding a cell lock; the goroutine
// starts with nothing held, so its shard acquisition is clean.
func goFresh(sh *Shard, c *Cell) {
	c.mu.Lock()
	go func() {
		sh.mu.Lock()
		sh.mu.Unlock()
	}()
	c.mu.Unlock()
}

// closureInherits defines a closure at a point where the cell lock is
// held (the forEachCell pattern): the closure's shard acquisition is
// an inversion.
func closureInherits(sh *Shard, c *Cell) {
	c.mu.Lock()
	f := func() {
		sh.mu.Lock() // want `acquiring lockfix.Shard.mu \(rank 20\) while holding lockfix.Cell.mu \(rank 10\)`
		sh.mu.Unlock()
	}
	f()
	c.mu.Unlock()
}

// branches walks each arm with its own held-set copy: clean.
func branches(sh *Shard, c *Cell, swap bool) {
	if swap {
		sh.mu.Lock()
		sh.mu.Unlock()
	}
	c.mu.Lock()
	c.mu.Unlock()
}

var (
	_ = ordered
	_ = inverted
	_ = globalInverted
	_ = handover
	_ = handoverOrdered
	_ = under
	_ = deferHeld
	_ = releasedEarly
	_ = goFresh
	_ = closureInherits
	_ = branches
)
