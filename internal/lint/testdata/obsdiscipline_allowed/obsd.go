// Package obsallowed is loaded under an import path INSIDE the
// internal/obs subtree, where the analyzer stands down: the typed
// constructors themselves must be able to build literals.
package obsallowed

import "github.com/flare-sim/flare/internal/obs"

var zero = obs.Event{Kind: obs.KindInstall}

var _ = zero
