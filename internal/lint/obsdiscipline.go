package lint

import (
	"go/ast"
	"go/types"
)

// ObsDiscipline keeps the flare-trace/1 schema single-sourced: an
// obs.Event may be built as a composite literal only inside the
// internal/obs subtree. Every other layer goes through the typed
// constructors obs exports (obs.BAISolve, obs.Clamp, obs.Install, ...),
// so a field rename or semantic change touches exactly one package and
// the wire schema, the constructors, and the documentation move
// together — instead of nineteen hand-rolled literals drifting apart.
var ObsDiscipline = NewObsDiscipline(ObsPackage, ObsPackage)

// NewObsDiscipline builds the analyzer for an explicit event package:
// eventPkg is where the Event type lives, allowedPkg the subtree whose
// literals are legal (tests point these at fixtures).
func NewObsDiscipline(eventPkg, allowedPkg string) *Analyzer {
	a := &Analyzer{
		Name: "obsdiscipline",
		Doc:  "obs.Event composite literals are legal only inside internal/obs; everywhere else use the typed constructors so the flare-trace/1 schema stays single-sourced",
	}
	a.Run = func(pass *Pass) {
		if pathMatches(allowedPkg, pass.PkgPath) {
			return
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				t := pass.Info.TypeOf(lit)
				if t == nil {
					return true
				}
				named, ok := t.(*types.Named)
				if !ok {
					return true
				}
				obj := named.Obj()
				if obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == eventPkg {
					pass.Reportf(lit.Pos(),
						"obs.Event literal outside %s; use the typed obs constructors so the trace schema stays single-sourced", eventPkg)
				}
				return true
			})
		}
	}
	return a
}
