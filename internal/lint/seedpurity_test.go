package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
	"github.com/flare-sim/flare/internal/lint/linttest"
)

// TestSeedPurity covers the forbidden seed sources (wall clock at the
// source, process identity), package-level RNG state, RNG escape into
// a go statement, seed-sink propagation through an in-package helper
// (both the caught wall-clock call site and the no-ancestry local),
// and the pure forms: Config-seed mixing, constants, seed-named
// derivation functions, and draws from an existing RNG.
func TestSeedPurity(t *testing.T) {
	linttest.Run(t, "testdata/seedpurity", "fixture/seedfix", lint.SeedPurity)
}
