// The seedpurity analyzer: every RNG constructed in a sim-clock
// package must be seeded with config-seed ancestry.
//
// PRs 7 and 9 made determinism compositional: each run, cell, and
// worker derives its RNG from the spec's Seed (directly, or mixed with
// salts and indices — sim.NewRNG(cfg.Seed ^ churnSalt),
// runSeed(run, cell)). The determinism analyzer already bans the
// global math/rand source; this analyzer checks the seeds themselves:
//
//   - at every call whose callee demands a seed — math/rand
//     NewSource/NewPCG/NewChaCha8, sim.NewRNG, and any function with a
//     parameter whose name contains "seed" — the argument expression
//     is classified by its leaves. Wall-clock reads (time.Now,
//     UnixNano) and process identity (os.Getpid) are flagged where
//     they appear; an expression with at least one seed-named leaf
//     (or a method call on an existing RNG) is pure no matter what
//     indices it mixes in; an all-constant expression is pure; and an
//     expression with neither ancestry nor constancy is flagged.
//   - a non-seed-named parameter that flows into an RNG constructor
//     turns the parameter into a seed sink (a cross-package fact), and
//     every call site is re-checked against it — the trace back
//     through the call graph the invariant asks for.
//   - package-level RNG variables are flagged: RNG state must be owned
//     by the run or cell that seeded it.
//   - an RNG that escapes into a go statement is flagged: goroutines
//     draw in scheduler order, so per-worker RNGs must be split
//     deterministically before the fan-out, never shared across it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeedPurity applies in sim-clock packages only (AnalyzersFor): live
// servers and CLIs may seed from the wall clock if they wish.
var SeedPurity = &Analyzer{
	Name: "seedpurity",
	Doc: "requires RNG seeds in sim-clock packages to derive from a Config/spec seed " +
		"(traced through the call graph), and forbids package-level RNGs and RNGs " +
		"escaping into go statements",
	Run: runSeedPurity,
}

// simRNGPackage is where sim.RNG lives.
const simRNGPackage = ModulePath + "/internal/sim"

func runSeedPurity(pass *Pass) {
	s := &seedChecker{pass: pass, graph: buildCallGraph(pass)}
	s.checkGlobals()
	s.checkEscapes()
	s.checkSeeds()
}

type seedChecker struct {
	pass  *Pass
	graph *callGraph
}

// ---- package-level RNG state ----

func (s *seedChecker) checkGlobals() {
	for _, f := range s.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // blank discards the value; no state outlives the init
					}
					obj := s.pass.Info.Defs[name]
					if obj != nil && isRNGType(obj.Type()) {
						s.pass.Reportf(name.Pos(),
							"package-level RNG %s: RNG state must be owned by the run/cell that seeds it; construct it from a Config seed where it is used", name.Name)
					}
				}
			}
		}
	}
}

// ---- RNGs escaping into goroutines ----

func (s *seedChecker) checkEscapes() {
	for _, fd := range s.graph.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			seen := map[types.Object]bool{}
			ast.Inspect(g.Call, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := s.pass.Info.Uses[id].(*types.Var)
				if !ok || seen[v] || !isRNGType(v.Type()) {
					return true
				}
				// Only variables declared outside the go'd expression
				// escape into it.
				if v.Pos() >= g.Call.Pos() && v.Pos() < g.Call.End() {
					return true
				}
				seen[v] = true
				s.pass.Reportf(id.Pos(),
					"RNG %s escapes into a go statement: goroutines draw in scheduler order; Split a per-worker RNG deterministically before the fan-out", v.Name())
				return true
			})
			return true
		})
	}
}

// isRNGType recognizes *sim.RNG, sim.RNG, and the math/rand generator
// and source types.
func isRNGType(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch pkg {
	case simRNGPackage:
		return name == "RNG"
	case "math/rand":
		return name == "Rand" || name == "Source"
	case "math/rand/v2":
		return name == "Rand" || name == "PCG" || name == "ChaCha8" || name == "Source"
	}
	return false
}

// ---- seed argument purity ----

// seedCall is one call site, remembered so sink facts discovered later
// in the fixpoint can re-check earlier calls.
type seedCall struct {
	call      *ast.CallExpr
	enclosing *types.Func
}

func (s *seedChecker) checkSeeds() {
	// Collect every call site with its enclosing declared function.
	var calls []seedCall
	for _, fd := range s.graph.decls {
		fn := s.graph.funcOf[fd]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				calls = append(calls, seedCall{call, fn})
			}
			return true
		})
	}

	// Fixpoint: checking a call can mint a new sink fact (a parameter
	// of an in-package function that feeds a constructor), which makes
	// earlier calls to that function checkable. Facts only accumulate,
	// so re-sweeping until quiet terminates.
	checked := map[*ast.CallExpr]map[int]bool{}
	for {
		grew := false
		for _, sc := range calls {
			callee, kind := classifyCall(s.pass.Info, sc.call)
			if kind != callStatic {
				continue
			}
			for _, idx := range s.sinkParams(callee) {
				if idx >= len(sc.call.Args) {
					continue
				}
				if checked[sc.call] == nil {
					checked[sc.call] = map[int]bool{}
				}
				if checked[sc.call][idx] {
					continue
				}
				checked[sc.call][idx] = true
				if s.checkSeedArg(sc.call.Args[idx], callee, sc.enclosing) {
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
}

// sinkParams returns the parameter indices of fn that must receive
// config-seed-derived values: hardcoded stdlib/sim constructors,
// seed-named parameters, and fact-store sinks minted by earlier
// packages or earlier fixpoint rounds.
func (s *seedChecker) sinkParams(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	add := func(i int) {
		for _, j := range out {
			if j == i {
				return
			}
		}
		out = append(out, i)
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "math/rand":
			if fn.Name() == "NewSource" || fn.Name() == "Seed" {
				add(0)
			}
		case "math/rand/v2":
			switch fn.Name() {
			case "NewPCG":
				add(0)
				add(1)
			case "NewChaCha8", "NewSource":
				add(0)
			}
		case simRNGPackage:
			if fn.Name() == "NewRNG" {
				add(0)
			}
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isSeedName(sig.Params().At(i).Name()) {
			add(i)
		}
	}
	for i := range s.pass.store.seedSinks[fn] {
		add(i)
	}
	return out
}

// checkSeedArg classifies arg and reports impurity. It returns true
// when a new sink fact was minted (the fixpoint must re-sweep).
func (s *seedChecker) checkSeedArg(arg ast.Expr, callee, enclosing *types.Func) bool {
	v := &seedVerdict{}
	s.classify(arg, enclosing, map[types.Object]bool{}, v)
	switch {
	case v.forbiddenDesc != "":
		s.pass.Reportf(v.forbiddenPos,
			"%s seeds %s: sim-clock RNGs must be seeded from a Config/spec seed, never %s",
			v.forbiddenDesc, callee.Name(), v.forbiddenDesc)
	case v.hasSeed || len(v.unknown) == 0:
		// Pure: seed ancestry, or an all-constant expression.
	default:
		// If the impurity is (only) the enclosing function's own
		// parameters, defer judgment: the parameters become seed
		// sinks and the call sites are checked instead.
		if params := s.paramIndices(v.unknown, enclosing); params != nil {
			grew := false
			for _, idx := range params {
				if s.pass.store.addSeedSink(enclosing, idx) {
					grew = true
				}
			}
			return grew
		}
		s.pass.Reportf(arg.Pos(),
			"seed for %s has no Config-seed ancestry (depends on %s); thread the run/cell seed here",
			callee.Name(), strings.Join(v.unknownNames, ", "))
	}
	return false
}

// paramIndices maps the unknown leaves to parameter indices of
// enclosing iff EVERY leaf is such a parameter; otherwise nil.
func (s *seedChecker) paramIndices(unknown []types.Object, enclosing *types.Func) []int {
	if enclosing == nil || len(unknown) == 0 {
		return nil
	}
	sig, ok := enclosing.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	for _, obj := range unknown {
		found := -1
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == obj {
				found = i
				break
			}
		}
		if found < 0 {
			return nil
		}
		out = append(out, found)
	}
	return out
}

// seedVerdict accumulates the classification of one seed expression.
type seedVerdict struct {
	hasSeed       bool
	forbiddenPos  token.Pos
	forbiddenDesc string
	unknown       []types.Object
	unknownNames  []string
}

func (v *seedVerdict) addUnknown(obj types.Object, name string) {
	for _, o := range v.unknown {
		if o == obj {
			return
		}
	}
	v.unknown = append(v.unknown, obj)
	v.unknownNames = append(v.unknownNames, name)
}

// classify walks a seed expression down to its leaves. enclosing is
// the function whose body the expression sits in (for local-variable
// tracing); visited breaks def-use cycles.
func (s *seedChecker) classify(e ast.Expr, enclosing *types.Func, visited map[types.Object]bool, v *seedVerdict) {
	if e == nil {
		return
	}
	// Constants (literals, named consts, constant arithmetic) are pure
	// leaves wherever they appear.
	if tv, ok := s.pass.Info.Types[e]; ok && tv.Value != nil {
		return
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := s.pass.Info.Uses[e]
		if obj == nil {
			return
		}
		if isSeedName(obj.Name()) {
			v.hasSeed = true
			return
		}
		if lv, ok := obj.(*types.Var); ok && !visited[lv] {
			visited[lv] = true
			if init := s.localInit(lv, enclosing); init != nil {
				s.classify(init, enclosing, visited, v)
				return
			}
		}
		v.addUnknown(obj, obj.Name())
	case *ast.SelectorExpr:
		// cfg.Seed, spec.JitterSeed, s.cfg.Churn.Seed, ...
		if isSeedName(e.Sel.Name) {
			v.hasSeed = true
			return
		}
		if obj := s.pass.Info.Uses[e.Sel]; obj != nil {
			v.addUnknown(obj, exprString(e))
		}
	case *ast.BinaryExpr:
		s.classify(e.X, enclosing, visited, v)
		s.classify(e.Y, enclosing, visited, v)
	case *ast.UnaryExpr:
		s.classify(e.X, enclosing, visited, v)
	case *ast.StarExpr:
		s.classify(e.X, enclosing, visited, v)
	case *ast.IndexExpr:
		// seeds[i]: ancestry comes from the container, the index is a
		// mixer.
		s.classify(e.X, enclosing, visited, v)
	case *ast.CallExpr:
		s.classifyCallLeaf(e, enclosing, visited, v)
	default:
		v.addUnknown(nil, exprString(e))
	}
}

// classifyCallLeaf handles a call appearing inside a seed expression.
func (s *seedChecker) classifyCallLeaf(call *ast.CallExpr, enclosing *types.Func, visited map[types.Object]bool, v *seedVerdict) {
	// A conversion — uint64(x) — is transparent.
	if len(call.Args) == 1 {
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, isType := s.pass.Info.Uses[fun].(*types.TypeName); isType {
				s.classify(call.Args[0], enclosing, visited, v)
				return
			}
		case *ast.SelectorExpr:
			if _, isType := s.pass.Info.Uses[fun.Sel].(*types.TypeName); isType {
				s.classify(call.Args[0], enclosing, visited, v)
				return
			}
		}
	}
	fn, _ := classifyCall(s.pass.Info, call)
	if fn == nil {
		v.addUnknown(nil, exprString(call.Fun)+"(...)")
		return
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	// Wall-clock and process-identity sources: the classic
	// time.Now().UnixNano() seed, flagged at the source.
	if pkg == "time" && fn.Name() == "Now" {
		v.forbiddenPos, v.forbiddenDesc = call.Pos(), "time.Now()"
		return
	}
	if recv := receiverNamed(fn); recv != nil && recv.Obj().Pkg() != nil &&
		recv.Obj().Pkg().Path() == "time" && strings.HasPrefix(fn.Name(), "Unix") {
		v.forbiddenPos, v.forbiddenDesc = call.Pos(), "a wall-clock Unix timestamp"
		// Keep walking: the receiver may itself be time.Now().
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			s.classify(sel.X, enclosing, visited, v)
		}
		return
	}
	if pkg == "os" && (fn.Name() == "Getpid" || fn.Name() == "Getppid") {
		v.forbiddenPos, v.forbiddenDesc = call.Pos(), "os."+fn.Name()+"()"
		return
	}
	// A function named for seeds (runSeed, CellSeed, ...) is a pure
	// derivation; a method on an existing RNG draws from
	// already-threaded state.
	if isSeedName(fn.Name()) {
		v.hasSeed = true
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isRNGType(recv.Type()) {
		v.hasSeed = true
		return
	}
	v.addUnknown(nil, fn.Name()+"(...)")
}

// localInit finds the initializer of a local variable: `x := expr` or
// `var x = expr` in the enclosing function, first write only.
func (s *seedChecker) localInit(v *types.Var, enclosing *types.Func) ast.Expr {
	if enclosing == nil {
		return nil
	}
	fd := s.graph.declOf[enclosing]
	if fd == nil || v.Pos() < fd.Pos() || v.Pos() >= fd.End() {
		return nil
	}
	var init ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if init != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && s.pass.Info.Defs[id] == v {
					init = n.Rhs[i]
					return false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if s.pass.Info.Defs[name] == v && i < len(n.Values) {
					init = n.Values[i]
					return false
				}
			}
		}
		return true
	})
	return init
}

// receiverNamed returns the named type of fn's receiver, or nil.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// isSeedName reports whether an identifier names seed-derived data.
func isSeedName(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// exprString renders a short display form of an expression.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	default:
		return fmt.Sprintf("%T", e)
	}
}
