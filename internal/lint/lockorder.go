// The lockorder analyzer: enforces the declared mutex hierarchy in
// lockranks.go over an intra-package lock-acquisition graph.
//
// For every function the analyzer simulates the held-lock set along a
// source-order walk of the body: sync.Mutex/RWMutex Lock/RLock sites
// on ranked mutexes push their class, Unlock/RUnlock sites pop it, and
// a deferred unlock holds the class to function exit. Acquiring a
// class whose rank is >= the rank of any held class is a finding — the
// hierarchy demands strictly descending acquisition, and equal rank is
// the self-deadlock/AB-BA shape that two cellState locks produce
// unless the code imposes a global order itself (Handover does, by
// cell ID, and says so with a waiver).
//
// Calls propagate: at a call site with a non-empty held set, the
// callee's transitive acquisition set (memoized over the intra-package
// call graph) is checked against every held class, so a helper that
// takes shard.mu is flagged when invoked under cellState.mu even
// though neither function is wrong in isolation. Interface and
// func-value calls are an explicit frontier: they contribute nothing,
// which is sound for the tree because the control plane never hands a
// locked receiver across an interface edge.
//
// Control flow is approximated conservatively in the direction of
// silence: branches are walked with a copy of the held set and their
// effects discarded afterwards (lock/unlock is balanced within a
// branch in this tree), goroutine bodies start empty, and function
// literals are walked with the held set at their definition point —
// the forEachCell pattern, where the closure runs under the caller's
// optMu, is exactly why.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces LockRanks over the real tree.
var LockOrder = NewLockOrder(LockRanks)

// NewLockOrder builds a lockorder analyzer over a rank table (fixtures
// supply their own).
func NewLockOrder(ranks []LockClass) *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc: "enforces the declared mutex hierarchy (lockranks.go): while a ranked lock is held, " +
			"only strictly lower-ranked locks may be acquired, directly or via any statically " +
			"resolvable callee",
		Run: func(pass *Pass) { runLockOrder(pass, ranks) },
	}
}

// lockOp classifies a call as a lock acquisition or release.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

type lockWalker struct {
	pass  *Pass
	ranks []LockClass
	graph *callGraph
	// acq memoizes each function's transitive acquisition set:
	// class index -> position of the acquiring Lock call. A nil entry
	// marks in-progress computation (recursion breaks to empty).
	acq map[*types.Func]map[int]token.Pos
}

func runLockOrder(pass *Pass, ranks []LockClass) {
	w := &lockWalker{
		pass:  pass,
		ranks: ranks,
		graph: buildCallGraph(pass),
		acq:   make(map[*types.Func]map[int]token.Pos),
	}
	for _, fd := range w.graph.decls {
		w.stmt(fd.Body, map[int]token.Pos{}, fd.Name.Name)
	}
}

// stmt walks one statement, mutating held (class index -> acquisition
// position) for straight-line effects and cloning it for branches.
func (w *lockWalker) stmt(s ast.Stmt, held map[int]token.Pos, fnName string) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub, held, fnName)
		}
	case *ast.IfStmt:
		w.stmt(s.Init, held, fnName)
		w.exprs(s.Cond, held, fnName)
		w.stmt(s.Body, clonePos(held), fnName)
		w.stmt(s.Else, clonePos(held), fnName)
	case *ast.ForStmt:
		w.stmt(s.Init, held, fnName)
		w.exprs(s.Cond, held, fnName)
		inner := clonePos(held)
		w.stmt(s.Body, inner, fnName)
		w.stmt(s.Post, inner, fnName)
	case *ast.RangeStmt:
		w.exprs(s.X, held, fnName)
		w.stmt(s.Body, clonePos(held), fnName)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held, fnName)
		w.exprs(s.Tag, held, fnName)
		w.stmt(s.Body, clonePos(held), fnName)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held, fnName)
		w.stmt(s.Assign, held, fnName)
		w.stmt(s.Body, clonePos(held), fnName)
	case *ast.SelectStmt:
		w.stmt(s.Body, clonePos(held), fnName)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.exprs(e, held, fnName)
		}
		inner := clonePos(held)
		for _, sub := range s.Body {
			w.stmt(sub, inner, fnName)
		}
	case *ast.CommClause:
		w.stmt(s.Comm, held, fnName)
		inner := clonePos(held)
		for _, sub := range s.Body {
			w.stmt(sub, inner, fnName)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held, fnName)
	case *ast.DeferStmt:
		// A deferred unlock keeps the class held to function exit —
		// exactly what the walk models by not removing it. Any other
		// deferred work runs at exit under an unknowable held set;
		// skip it.
	case *ast.GoStmt:
		// A new goroutine starts with nothing held. Its body (if a
		// literal) is walked fresh; a named callee is covered by its
		// own declaration walk.
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmt(lit.Body, map[int]token.Pos{}, fnName)
		}
		for _, arg := range s.Call.Args {
			w.exprs(arg, held, fnName)
		}
	default:
		// Expression-bearing statements: scan for calls in source
		// order.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				w.call(n, held, fnName)
				return true // still descend: nested calls in args
			case *ast.FuncLit:
				// Walked with the held set at the definition point:
				// closures here are typically invoked on the caller's
				// behalf while its locks are held (forEachCell).
				w.stmt(n.Body, clonePos(held), fnName)
				return false
			case ast.Stmt:
				if _, isExpr := n.(*ast.ExprStmt); !isExpr && n != s {
					w.stmt(n, held, fnName)
					return false
				}
			}
			return true
		})
	}
}

// exprs scans an expression for calls and function literals.
func (w *lockWalker) exprs(e ast.Expr, held map[int]token.Pos, fnName string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n, held, fnName)
		case *ast.FuncLit:
			w.stmt(n.Body, clonePos(held), fnName)
			return false
		}
		return true
	})
}

// call handles one call site: a ranked Lock/Unlock mutates held; a
// statically resolved callee is checked for transitive acquisitions
// against the held set.
func (w *lockWalker) call(call *ast.CallExpr, held map[int]token.Pos, fnName string) {
	if idx, op := w.lockOpOf(call); op != opNone {
		switch op {
		case opLock:
			for h := range held {
				if w.ranks[h].Rank <= w.ranks[idx].Rank {
					w.pass.Reportf(call.Pos(),
						"lock order inversion in %s: acquiring %s (rank %d) while holding %s (rank %d); the declared order acquires strictly higher ranks first",
						fnName, w.ranks[idx], w.ranks[idx].Rank, w.ranks[h], w.ranks[h].Rank)
				}
			}
			held[idx] = call.Pos()
		case opUnlock:
			delete(held, idx)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	fn, kind := classifyCall(w.pass.Info, call)
	if kind != callStatic {
		return
	}
	for idx := range w.transAcquires(fn) {
		for h := range held {
			if w.ranks[h].Rank <= w.ranks[idx].Rank {
				w.pass.Reportf(call.Pos(),
					"lock order inversion in %s: call to %s acquires %s (rank %d) while holding %s (rank %d)",
					fnName, fn.Name(), w.ranks[idx], w.ranks[idx].Rank, w.ranks[h], w.ranks[h].Rank)
			}
		}
	}
}

// transAcquires returns the set of ranked classes fn acquires anywhere
// in its body or in any statically reachable intra-package callee.
func (w *lockWalker) transAcquires(fn *types.Func) map[int]token.Pos {
	if m, ok := w.acq[fn]; ok {
		return m // nil while in progress: recursion contributes nothing
	}
	w.acq[fn] = nil
	out := map[int]token.Pos{}
	if fd := w.graph.declOf[fn]; fd != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if idx, op := w.lockOpOf(call); op == opLock {
				if _, seen := out[idx]; !seen {
					out[idx] = call.Pos()
				}
				return true
			}
			if callee, kind := classifyCall(w.pass.Info, call); kind == callStatic {
				for idx, pos := range w.transAcquires(callee) {
					if _, seen := out[idx]; !seen {
						out[idx] = pos
					}
				}
			}
			return true
		})
	}
	w.acq[fn] = out
	return out
}

// lockOpOf recognizes m.Lock()/m.RLock()/m.TryLock() and
// m.Unlock()/m.RUnlock() on a ranked sync mutex and returns the class
// index.
func (w *lockWalker) lockOpOf(call *ast.CallExpr) (int, lockOp) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, opNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return 0, opNone
	}
	fn, ok := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, opNone
	}
	idx, ok := w.classOf(sel.X)
	if !ok {
		return 0, opNone
	}
	return idx, op
}

// classOf resolves the mutex expression (the x in x.Lock()) to a rank
// table entry.
func (w *lockWalker) classOf(x ast.Expr) (int, bool) {
	switch x := unparen(x).(type) {
	case *ast.SelectorExpr:
		// A struct field: s.optMu, sh.mu, s.shards[i].mu, ...
		named := namedOf(w.pass.Info.TypeOf(x.X))
		if named == nil || named.Obj().Pkg() == nil {
			return 0, false
		}
		return w.lookup(named.Obj().Pkg().Path(), named.Obj().Name(), x.Sel.Name)
	case *ast.Ident:
		// A package-level mutex variable.
		v, ok := w.pass.Info.Uses[x].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return 0, false
		}
		return w.lookup(v.Pkg().Path(), "", v.Name())
	}
	return 0, false
}

func (w *lockWalker) lookup(pkg, typ, field string) (int, bool) {
	for i, c := range w.ranks {
		if c.Pkg == pkg && c.Type == typ && c.Field == field {
			return i, true
		}
	}
	return 0, false
}

func clonePos(m map[int]token.Pos) map[int]token.Pos {
	out := make(map[int]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
